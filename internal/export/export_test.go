package export

import (
	"strings"
	"testing"

	"rocc/internal/stats"
	"rocc/internal/telemetry"
)

func TestSeriesCSV(t *testing.T) {
	a := &stats.Series{Name: "queue"}
	b := &stats.Series{Name: "rate"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(10*i))
		b.Add(float64(i), float64(i))
	}
	var sb strings.Builder
	if err := Series(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,queue,rate" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Errorf("rows = %d", len(lines))
	}
	if lines[2] != "1,10,1" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestSeriesCSVMismatch(t *testing.T) {
	a := &stats.Series{Name: "a"}
	a.Add(0, 1)
	b := &stats.Series{Name: "b"}
	var sb strings.Builder
	if err := Series(&sb, a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Series(&sb); err == nil {
		t.Error("empty call accepted")
	}
}

func TestSeriesRaggedCSV(t *testing.T) {
	// a samples at t=0,1,2; b only at t=1,3. The union has four rows and
	// each series fills only the instants it actually sampled.
	a := &stats.Series{Name: "a"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(10*i))
	}
	b := &stats.Series{Name: "b"}
	b.Add(1, 5)
	b.Add(3, 7)
	var sb strings.Builder
	if err := SeriesRagged(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := []string{"t,a,b", "0,0,", "1,10,5", "2,20,", "3,,7"}
	if len(lines) != len(want) {
		t.Fatalf("rows = %d, want %d:\n%s", len(lines), len(want), sb.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("row %d = %q, want %q", i, lines[i], w)
		}
	}
	if err := SeriesRagged(&sb); err == nil {
		t.Error("empty call accepted")
	}
}

func TestSeriesRaggedMatchesSeriesWhenAligned(t *testing.T) {
	a := &stats.Series{Name: "x"}
	b := &stats.Series{Name: "y"}
	for i := 0; i < 4; i++ {
		a.Add(float64(i), float64(i*i))
		b.Add(float64(i), float64(-i))
	}
	var dense, ragged strings.Builder
	if err := Series(&dense, a, b); err != nil {
		t.Fatal(err)
	}
	if err := SeriesRagged(&ragged, a, b); err != nil {
		t.Fatal(err)
	}
	if dense.String() != ragged.String() {
		t.Errorf("aligned series diverge:\n%s\nvs\n%s", dense.String(), ragged.String())
	}
}

func TestMetricsCSV(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("netsim.drops").Add(3)
	reg.GaugeFunc("sim.events_pending", func() float64 { return 42 })
	h := reg.Histogram("netsim.queue_depth_bytes")
	for i := 1; i <= 4; i++ {
		h.Observe(int64(i))
	}
	var sb strings.Builder
	if err := Metrics(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "kind,name,value,count,min,max,mean,p50,p95,p99\n") {
		t.Errorf("header wrong: %q", out)
	}
	for _, want := range []string{
		"counter,netsim.drops,3,",
		"gauge,sim.events_pending,42,",
		"histogram,netsim.queue_depth_bytes,10,4,1,4,2.5,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBinsCSV(t *testing.T) {
	bins := []stats.BinStat{
		{UpperBytes: 1000, Count: 5, AvgMs: 0.5, P90Ms: 0.9, P99Ms: 1.2},
	}
	var sb strings.Builder
	if err := Bins(&sb, "RoCC", bins); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "protocol,bin_bytes,count,avg_ms,p90_ms,p99_ms") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "RoCC,1000,5,0.5,0.9,1.2") {
		t.Errorf("row missing: %q", out)
	}
}

func TestSamplesCSV(t *testing.T) {
	var rec stats.FCTRecorder
	rec.Record(1000, 0.001)
	var sb strings.Builder
	if err := Samples(&sb, &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1000,0.001,8e+06") {
		t.Errorf("sample row wrong: %q", sb.String())
	}
}
