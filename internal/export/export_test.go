package export

import (
	"strings"
	"testing"

	"rocc/internal/stats"
)

func TestSeriesCSV(t *testing.T) {
	a := &stats.Series{Name: "queue"}
	b := &stats.Series{Name: "rate"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(10*i))
		b.Add(float64(i), float64(i))
	}
	var sb strings.Builder
	if err := Series(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,queue,rate" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Errorf("rows = %d", len(lines))
	}
	if lines[2] != "1,10,1" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestSeriesCSVMismatch(t *testing.T) {
	a := &stats.Series{Name: "a"}
	a.Add(0, 1)
	b := &stats.Series{Name: "b"}
	var sb strings.Builder
	if err := Series(&sb, a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Series(&sb); err == nil {
		t.Error("empty call accepted")
	}
}

func TestBinsCSV(t *testing.T) {
	bins := []stats.BinStat{
		{UpperBytes: 1000, Count: 5, AvgMs: 0.5, P90Ms: 0.9, P99Ms: 1.2},
	}
	var sb strings.Builder
	if err := Bins(&sb, "RoCC", bins); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "protocol,bin_bytes,count,avg_ms,p90_ms,p99_ms") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "RoCC,1000,5,0.5,0.9,1.2") {
		t.Errorf("row missing: %q", out)
	}
}

func TestSamplesCSV(t *testing.T) {
	var rec stats.FCTRecorder
	rec.Record(1000, 0.001)
	var sb strings.Builder
	if err := Samples(&sb, &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1000,0.001,8e+06") {
		t.Errorf("sample row wrong: %q", sb.String())
	}
}
