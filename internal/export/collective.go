package export

import (
	"encoding/csv"
	"io"
	"strconv"

	"rocc/internal/collective"
)

// CollectiveSummary writes one row per protocol × mode collective cell:
// completion status, exact iteration-time percentiles, straggler spread
// and the fabric counters that distinguish operating modes.
func CollectiveSummary(w io.Writer, results ...collective.ExpResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"protocol", "mode", "pattern", "ranks", "message_bytes", "chunks", "iterations",
		"completed", "stalled", "pending_iter", "pending_step", "deadlock",
		"iter_p50_ns", "iter_p95_ns", "iter_p99_ns", "straggler_p99_ns", "elapsed_ns",
		"drops", "pfc_frames", "retx_bytes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range results {
		cfg := r.Config
		row := []string{
			string(cfg.Protocol),
			cfg.Mode.String(),
			string(cfg.Collective.Pattern),
			strconv.Itoa(cfg.Collective.Participants),
			strconv.FormatInt(cfg.Collective.MessageBytes, 10),
			strconv.Itoa(cfg.Collective.Chunks),
			strconv.Itoa(cfg.Collective.Iterations),
			strconv.Itoa(r.Run.Completed),
			strconv.FormatBool(r.Stalled()),
			strconv.Itoa(r.Run.PendingIter),
			strconv.Itoa(r.Run.PendingStep),
			r.Deadlock,
			g(r.IterP50), g(r.IterP95), g(r.IterP99), g(r.StragglerP99),
			strconv.FormatInt(int64(r.Run.Elapsed), 10),
			strconv.Itoa(r.Drops),
			strconv.Itoa(r.PFCFrames),
			strconv.FormatInt(r.RetxBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CollectiveSteps writes long-form per-step rows for every cell: one row
// per completed step with its start time, completion time and straggler
// spread (last finisher minus first — how long the slowest flow held the
// barrier). The protocol and mode columns label which cell a row
// belongs to, so a whole sweep fits in one file.
func CollectiveSteps(w io.Writer, results ...collective.ExpResult) error {
	cw := csv.NewWriter(w)
	header := []string{"protocol", "mode", "iter", "step", "flows", "start_ns", "duration_ns", "straggler_ns"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		proto, mode := string(r.Config.Protocol), r.Config.Mode.String()
		for _, s := range r.Run.Steps {
			row := []string{
				proto, mode,
				strconv.Itoa(s.Iter),
				strconv.Itoa(s.Step),
				strconv.Itoa(s.Flows),
				strconv.FormatInt(int64(s.Start), 10),
				strconv.FormatInt(int64(s.Duration), 10),
				strconv.FormatInt(int64(s.Straggler), 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
