// Package export writes experiment outputs as CSV so the paper's figures
// can be regenerated with external plotting tools (gnuplot, matplotlib).
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rocc/internal/stats"
)

// Series writes one or more time series as CSV: a shared "t" column (the
// union is not merged — series must share sampling instants, as all
// Sampler-produced series do) followed by one column per series.
func Series(w io.Writer, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("export: no series")
	}
	n := len(series[0].Points)
	for _, s := range series[1:] {
		if len(s.Points) != n {
			return fmt.Errorf("export: series %q has %d points, want %d (sample together)",
				s.Name, len(s.Points), n)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"t"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].Points[i].T, 'g', -1, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Points[i].V, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bins writes per-size-bin FCT statistics (Figs. 14-16 rows) as CSV.
func Bins(w io.Writer, protocol string, bins []stats.BinStat) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"protocol", "bin_bytes", "count", "avg_ms", "p90_ms", "p99_ms"}); err != nil {
		return err
	}
	for _, b := range bins {
		err := cw.Write([]string{
			protocol,
			strconv.Itoa(b.UpperBytes),
			strconv.Itoa(b.Count),
			strconv.FormatFloat(b.AvgMs, 'g', -1, 64),
			strconv.FormatFloat(b.P90Ms, 'g', -1, 64),
			strconv.FormatFloat(b.P99Ms, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Samples writes raw FCT samples (size, fct seconds, rate bits/s) as CSV.
func Samples(w io.Writer, rec *stats.FCTRecorder) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"size_bytes", "fct_s", "rate_bps"}); err != nil {
		return err
	}
	for _, s := range rec.Samples {
		err := cw.Write([]string{
			strconv.Itoa(s.Size),
			strconv.FormatFloat(s.Seconds, 'g', -1, 64),
			strconv.FormatFloat(s.Rate, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
