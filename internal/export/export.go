// Package export writes experiment outputs as CSV so the paper's figures
// can be regenerated with external plotting tools (gnuplot, matplotlib).
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"rocc/internal/stats"
	"rocc/internal/telemetry"
)

// Series writes one or more time series as CSV: a shared "t" column (the
// union is not merged — series must share sampling instants, as all
// Sampler-produced series do) followed by one column per series.
func Series(w io.Writer, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("export: no series")
	}
	n := len(series[0].Points)
	for _, s := range series[1:] {
		if len(s.Points) != n {
			return fmt.Errorf("export: series %q has %d points, want %d (sample together)",
				s.Name, len(s.Points), n)
		}
	}
	cw := csv.NewWriter(w)
	header := []string{"t"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatFloat(series[0].Points[i].T, 'g', -1, 64)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Points[i].V, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesRagged writes series that need not share sampling instants. The
// "t" column is the sorted union of every series' instants; a series
// with no point at an instant gets an empty cell there. Use this for
// series from different samplers (e.g. a fixed-cadence queue series next
// to event-driven rate updates); Series remains the stricter, denser
// format when the instants are known to align.
func SeriesRagged(w io.Writer, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("export: no series")
	}
	union := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			union[p.T] = true
		}
	}
	ts := make([]float64, 0, len(union))
	for t := range union {
		ts = append(ts, t)
	}
	sort.Float64s(ts)

	cw := csv.NewWriter(w)
	header := []string{"t"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	// Each series is consumed with its own cursor; points are assumed to
	// be in time order (all Sampler-produced series are).
	idx := make([]int, len(series))
	row := make([]string, len(series)+1)
	for _, t := range ts {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for j, s := range series {
			row[j+1] = ""
			for idx[j] < len(s.Points) && s.Points[idx[j]].T == t {
				row[j+1] = strconv.FormatFloat(s.Points[idx[j]].V, 'g', -1, 64)
				idx[j]++
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Metrics writes a telemetry registry snapshot as long-form CSV: one row
// per instrument with kind (counter/gauge/histogram) and, for
// histograms, the distribution summary columns filled in.
func Metrics(w io.Writer, snap telemetry.Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "value", "count", "min", "max", "mean", "p50", "p95", "p99"}); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range snap.Counters {
		if err := cw.Write([]string{"counter", c.Name, g(c.Value), "", "", "", "", "", "", ""}); err != nil {
			return err
		}
	}
	for _, gv := range snap.Gauges {
		if err := cw.Write([]string{"gauge", gv.Name, g(gv.Value), "", "", "", "", "", "", ""}); err != nil {
			return err
		}
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, h := range snap.Histograms {
		row := []string{"histogram", h.Name, u(h.Sum), u(h.Count),
			u(h.Min), u(h.Max), g(h.Mean), u(h.P50), u(h.P95), u(h.P99)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bins writes per-size-bin FCT statistics (Figs. 14-16 rows) as CSV.
func Bins(w io.Writer, protocol string, bins []stats.BinStat) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"protocol", "bin_bytes", "count", "avg_ms", "p90_ms", "p99_ms"}); err != nil {
		return err
	}
	for _, b := range bins {
		err := cw.Write([]string{
			protocol,
			strconv.Itoa(b.UpperBytes),
			strconv.Itoa(b.Count),
			strconv.FormatFloat(b.AvgMs, 'g', -1, 64),
			strconv.FormatFloat(b.P90Ms, 'g', -1, 64),
			strconv.FormatFloat(b.P99Ms, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Samples writes raw FCT samples (size, fct seconds, rate bits/s) as CSV.
func Samples(w io.Writer, rec *stats.FCTRecorder) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"size_bytes", "fct_s", "rate_bps"}); err != nil {
		return err
	}
	for _, s := range rec.Samples {
		err := cw.Write([]string{
			strconv.Itoa(s.Size),
			strconv.FormatFloat(s.Seconds, 'g', -1, 64),
			strconv.FormatFloat(s.Rate, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
