package export

import (
	"encoding/csv"
	"strings"
	"testing"

	"rocc/internal/collective"
	"rocc/internal/experiments"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// cellFixture is a hand-built two-cell sweep: one clean hybrid cell with
// two completed steps, one stalled lossy cell with a deadlock note.
func cellFixture() []collective.ExpResult {
	cfg := collective.ExpConfig{
		Collective: collective.Config{
			Pattern: collective.Ring, Participants: 4,
			MessageBytes: 1 << 20, Chunks: 2, Iterations: 3,
		},
		Protocol: experiments.ProtoRoCC,
		Mode:     netsim.ModeHybrid,
	}.Filled()
	ok := collective.ExpResult{
		Config: cfg,
		Run: collective.Result{
			Config:    cfg.Collective,
			Completed: 3,
			Steps: []collective.StepRecord{
				{Iter: 0, Step: 0, Flows: 4, Start: 0, Duration: 100 * sim.Microsecond, Straggler: 10 * sim.Microsecond},
				{Iter: 0, Step: 1, Flows: 4, Start: 100 * sim.Microsecond, Duration: 120 * sim.Microsecond, Straggler: 15 * sim.Microsecond},
			},
			Elapsed: 220 * sim.Microsecond,
		},
		IterP50: 1.1e6, IterP95: 1.2e6, IterP99: 1.3e6,
		StragglerP99: 1.5e4,
	}
	bad := ok
	bad.Config.Protocol = experiments.ProtoDCQCN
	bad.Config.Mode = netsim.ModePFCOnly
	bad.Run.Completed = 1
	bad.Run.Stalled = true
	bad.Run.PendingIter = 1
	bad.Run.PendingStep = 5
	bad.Deadlock = "edge0->core0->edge0"
	bad.Drops = 0
	bad.PFCFrames = 4242
	return []collective.ExpResult{ok, bad}
}

func TestCollectiveSummaryCSV(t *testing.T) {
	var sb strings.Builder
	if err := CollectiveSummary(&sb, cellFixture()...); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2 cells", len(rows))
	}
	head := rows[0]
	col := func(name string) int {
		for i, h := range head {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	if got := rows[1][col("protocol")]; got != "RoCC" {
		t.Errorf("protocol = %q", got)
	}
	if got := rows[1][col("mode")]; got != "hybrid" {
		t.Errorf("mode = %q", got)
	}
	if got := rows[1][col("completed")]; got != "3" {
		t.Errorf("completed = %q", got)
	}
	if got := rows[1][col("stalled")]; got != "false" {
		t.Errorf("stalled = %q", got)
	}
	if got := rows[2][col("mode")]; got != "pfconly" {
		t.Errorf("stalled cell mode = %q", got)
	}
	if got := rows[2][col("deadlock")]; got != "edge0->core0->edge0" {
		t.Errorf("deadlock = %q", got)
	}
	if got := rows[2][col("pending_step")]; got != "5" {
		t.Errorf("pending_step = %q", got)
	}
	if got := rows[2][col("pfc_frames")]; got != "4242" {
		t.Errorf("pfc_frames = %q", got)
	}
}

func TestCollectiveStepsCSV(t *testing.T) {
	var sb strings.Builder
	if err := CollectiveSteps(&sb, cellFixture()...); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 steps from each cell (the fixture's stalled cell shares
	// the clean cell's step records).
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want header + 4 steps", len(rows))
	}
	if want := []string{"protocol", "mode", "iter", "step", "flows", "start_ns", "duration_ns", "straggler_ns"}; strings.Join(rows[0], ",") != strings.Join(want, ",") {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "RoCC" || rows[1][1] != "hybrid" {
		t.Errorf("cell label = %v", rows[1][:2])
	}
	if rows[2][3] != "1" || rows[2][6] != "120000" || rows[2][7] != "15000" {
		t.Errorf("step row = %v", rows[2])
	}
	if rows[3][0] != "DCQCN" || rows[3][1] != "pfconly" {
		t.Errorf("second cell label = %v", rows[3][:2])
	}
}
