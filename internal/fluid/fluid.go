// Package fluid integrates the paper's §5.1 fluid model of the RoCC
// control loop — the delay-differential system
//
//	dQ/dt = (ΔF·N·F(t−T) − C) / ΔQ        (Eq. 2)
//	F updated every T by Alg. 1            (discrete controller)
//
// against the *actual* controller implementation in internal/core. It
// serves two purposes:
//
//   - Cross-validation: the packet simulator and the fluid model must
//     agree on equilibrium (Eq. 1: F* = (C − BW_mice)/N) and on
//     qualitative transient behaviour; tests in this package and in
//     internal/roccnet assert both.
//   - Fast exploration: a fluid run is O(duration/T) instead of
//     O(packets), so stability can be swept over hundreds of (N, gain)
//     points in milliseconds, mirroring the paper's §5 analysis with the
//     real quantized controller rather than its linearization.
package fluid

import (
	"math"

	"rocc/internal/core"
)

// Config describes one fluid scenario.
type Config struct {
	CP       core.CPConfig
	N        int     // flows tracking the fair rate
	LinkMbps float64 // bottleneck capacity C
	MiceMbps float64 // innocent traffic not tracking the fair rate (Eq. 1)
	T        float64 // update interval in seconds (40 µs in §6)

	// FeedbackDelay is the extra loop delay before a computed rate takes
	// effect at the sources (RTT + NIC reaction), in seconds.
	FeedbackDelay float64

	// Steps is the number of controller updates to simulate.
	Steps int
}

// Result is the trajectory of one fluid run.
type Result struct {
	QueueBytes []float64 // queue at each update instant
	RateMbps   []float64 // fair rate after each update
	Equilibr   float64   // Eq. 1 prediction: (C - mice)/N
}

// FinalRate returns the last computed fair rate.
func (r Result) FinalRate() float64 { return r.RateMbps[len(r.RateMbps)-1] }

// FinalQueue returns the last queue value in bytes.
func (r Result) FinalQueue() float64 { return r.QueueBytes[len(r.QueueBytes)-1] }

// Converged reports whether the trailing fraction of the run stays
// within tol (fractional) of the Eq. 1 equilibrium.
func (r Result) Converged(tol float64) bool {
	if r.Equilibr <= 0 {
		return false
	}
	tail := len(r.RateMbps) / 4
	for _, v := range r.RateMbps[len(r.RateMbps)-tail:] {
		if math.Abs(v-r.Equilibr)/r.Equilibr > tol {
			return false
		}
	}
	return true
}

// MaxOvershootBytes returns the peak queue over the run.
func (r Result) MaxOvershootBytes() float64 {
	max := 0.0
	for _, q := range r.QueueBytes {
		if q > max {
			max = q
		}
	}
	return max
}

// Run integrates the loop. Sources start unthrottled (rate limiters
// uninstalled), as in the paper's experiments, so the initial transient
// includes the MD phase.
func Run(cfg Config) Result {
	if cfg.Steps <= 0 {
		cfg.Steps = 2000
	}
	if cfg.T <= 0 {
		cfg.T = 40e-6
	}
	cp := core.NewCP(cfg.CP)
	res := Result{
		Equilibr: (cfg.LinkMbps - cfg.MiceMbps) / float64(cfg.N),
	}

	// The rate pipeline models the feedback delay as a whole number of
	// update intervals (at least one: rates computed now apply next T).
	delaySlots := 1 + int(cfg.FeedbackDelay/cfg.T)
	pipe := make([]float64, delaySlots)
	for i := range pipe {
		pipe[i] = cfg.CP.FmaxMbps // unthrottled start
	}

	q := 0.0
	sub := 20 // queue integration sub-steps per controller interval
	dt := cfg.T / float64(sub)
	for step := 0; step < cfg.Steps; step++ {
		applied := pipe[0]
		copy(pipe, pipe[1:])

		// Integrate Eq. 2 over one interval with the applied rate.
		input := math.Min(applied*float64(cfg.N), cfg.CP.FmaxMbps*float64(cfg.N)) + cfg.MiceMbps
		for i := 0; i < sub; i++ {
			q += (input - cfg.LinkMbps) * 1e6 / 8 * dt
			if q < 0 {
				q = 0
			}
		}
		units := cp.Update(int(q))
		pipe[delaySlots-1] = float64(units) * cfg.CP.DeltaFMbps
		res.QueueBytes = append(res.QueueBytes, q)
		res.RateMbps = append(res.RateMbps, cp.FairRateMbps())
	}
	return res
}

// SweepStability runs the fluid loop over a range of N and reports the
// largest N for which the loop converges within tol — the §5 stability
// question answered with the real quantized controller.
func SweepStability(cfg Config, maxN int, tol float64) (maxStableN int) {
	for n := 2; n <= maxN; n *= 2 {
		c := cfg
		c.N = n
		if Run(c).Converged(tol) {
			maxStableN = n
		}
	}
	return maxStableN
}
