package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"rocc/internal/core"
)

func base(n int) Config {
	return Config{
		CP:       core.CPConfig40G(),
		N:        n,
		LinkMbps: 40000,
		T:        40e-6,
		Steps:    4000,
	}
}

func TestEquilibriumMatchesEq1(t *testing.T) {
	for _, n := range []int{2, 4, 10, 50, 100} {
		r := Run(base(n))
		want := 40000.0 / float64(n)
		if math.Abs(r.FinalRate()-want)/want > 0.1 {
			t.Errorf("N=%d: F = %.1f, want ~%.1f", n, r.FinalRate(), want)
		}
		if !r.Converged(0.15) {
			t.Errorf("N=%d: did not converge", n)
		}
	}
}

func TestQueueSettlesAtQref(t *testing.T) {
	r := Run(base(10))
	qref := float64(core.CPConfig40G().QrefBytes)
	if math.Abs(r.FinalQueue()-qref)/qref > 0.2 {
		t.Errorf("queue = %.0f, want ~%.0f", r.FinalQueue(), qref)
	}
}

func TestMiceTrafficReducesFairShare(t *testing.T) {
	// Eq. 1: innocent traffic shrinks the pool the tracked flows share.
	cfg := base(10)
	cfg.MiceMbps = 10000
	r := Run(cfg)
	want := (40000.0 - 10000) / 10
	if math.Abs(r.FinalRate()-want)/want > 0.15 {
		t.Errorf("F with mice = %.1f, want ~%.1f", r.FinalRate(), want)
	}
}

func TestUnthrottledStartTriggersMDOvershoot(t *testing.T) {
	r := Run(base(10))
	// 10 unthrottled flows blast the queue well past Qmax before the
	// first cut takes effect.
	if r.MaxOvershootBytes() < float64(core.CPConfig40G().QmaxBytes) {
		t.Errorf("overshoot %.0f below Qmax; MD path untested", r.MaxOvershootBytes())
	}
}

func TestLongerFeedbackDelayWorsensOvershoot(t *testing.T) {
	short := base(10)
	long := base(10)
	long.FeedbackDelay = 10 * 40e-6
	a, b := Run(short), Run(long)
	if b.MaxOvershootBytes() <= a.MaxOvershootBytes() {
		t.Errorf("delay did not worsen overshoot: %.0f vs %.0f",
			a.MaxOvershootBytes(), b.MaxOvershootBytes())
	}
}

func TestAutoTuneExtendsStableRange(t *testing.T) {
	// With auto-tune on, the loop converges across the full N range; a
	// pinned aggressive gain destabilizes (or at least fails) large N.
	tuned := base(2)
	if got := SweepStability(tuned, 128, 0.15); got < 128 {
		t.Errorf("auto-tuned loop stable only to N=%d", got)
	}
	pinned := base(2)
	pinned.CP.DisableAutoTune = true
	pinned.CP.AlphaTilde = 0.3
	pinned.CP.BetaTilde = 3
	if got := SweepStability(pinned, 128, 0.15); got >= 128 {
		t.Errorf("pinned aggressive gains reported stable to N=%d; expected failure at large N", got)
	}
}

func TestHundredGbpsProfile(t *testing.T) {
	cfg := Config{
		CP:       core.CPConfig100G(),
		N:        10,
		LinkMbps: 100000,
		T:        40e-6,
		Steps:    4000,
	}
	r := Run(cfg)
	if math.Abs(r.FinalRate()-10000)/10000 > 0.1 {
		t.Errorf("100G F = %.1f, want ~10000", r.FinalRate())
	}
}

// Property: across random N and mice share, the fluid loop converges to
// Eq. 1 with the paper's 40G parameters.
func TestEq1FixedPointProperty(t *testing.T) {
	f := func(nRaw, miceRaw uint8) bool {
		n := int(nRaw%100) + 2
		mice := float64(miceRaw%64) * 300 // up to ~19.2G of innocent load
		cfg := base(n)
		cfg.MiceMbps = mice
		cfg.Steps = 6000
		r := Run(cfg)
		want := (40000 - mice) / float64(n)
		return math.Abs(r.FinalRate()-want)/want < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDefaults(t *testing.T) {
	cfg := base(4)
	cfg.Steps = 0
	cfg.T = 0
	r := Run(cfg)
	if len(r.RateMbps) != 2000 {
		t.Errorf("default steps = %d", len(r.RateMbps))
	}
}
