//go:build poolcheck

package netsim

import "fmt"

// PoolcheckEnabled reports whether this binary was built with the
// poolcheck lifecycle checker (-tags poolcheck).
const PoolcheckEnabled = true

// pcheck generation-stamps pooled packets so lifecycle violations fail
// loudly at the violating call site instead of silently corrupting a
// later packet. gen counts pool cycles; live is true between acquire and
// release.
type pcheck struct {
	gen  uint32
	live bool
}

func (pkt *Packet) stampAcquire() {
	if pkt.pc.live {
		panic(fmt.Sprintf("netsim: poolcheck: acquired packet already live (gen %d) — free-list corruption", pkt.pc.gen))
	}
	pkt.pc.gen++
	pkt.pc.live = true
}

func (pkt *Packet) stampRelease() {
	if !pkt.pc.live {
		panic(fmt.Sprintf("netsim: poolcheck: double release of %s packet flow=%d seq=%d (gen %d)",
			pkt.Kind, pkt.Flow, pkt.Seq, pkt.pc.gen))
	}
	pkt.pc.live = false
}

// checkLive panics if pkt is a pooled packet that was already released —
// the caller is holding a stale pointer past the packet's terminal point.
func (pkt *Packet) checkLive(where string) {
	if pkt.pooled && !pkt.pc.live {
		panic(fmt.Sprintf("netsim: poolcheck: use after release at %s: %s packet flow=%d seq=%d (gen %d)",
			where, pkt.Kind, pkt.Flow, pkt.Seq, pkt.pc.gen))
	}
}
