package netsim

import (
	"fmt"
	"sort"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// Topology failure and recovery. A FailLink or FailSwitch event models a
// hard fabric failure: the affected links go down at both ends, the
// port-owning switches invalidate their ECMP entries over those links
// immediately (link-layer detection is local and fast), and a global
// route recomputation is scheduled after ReconvergeDelay (the control
// plane's reconvergence time). Between the two, traffic falls into one
// of three deterministic sinks:
//
//   - surviving equal-cost entries at the detecting switch (instant
//     local repair, the common case in multipath fabrics),
//   - the downed link itself, for packets already queued behind it
//     (LinkDownDrops at transmit time), or
//   - a blackhole drop, when a switch is left with no entry at all for
//     the destination (single-path destinations, killed switches).
//
// Restore is symmetric: the links come back up, but routes only re-adopt
// them at the next reconvergence — restored capacity returns after the
// delay, exactly like a real fabric. Every reconvergence notifies the
// flow controllers that implement RouteAware (see cc.go), so protocols
// whose state encodes the old path (HPCC's INT baseline, TIMELY's RTT
// baseline, RoCC's pinned congestion point) re-baseline instead of
// steering on stale measurements.

// DefaultReconvergeDelay is the failure-detection plus route-recompute
// latency applied when Network.ReconvergeDelay is zero. 250 µs sits
// between optical-layer detection (~µs) and BGP-style reconvergence
// (~ms+) and keeps the blackhole window meaningful at millisecond
// simulation scales.
const DefaultReconvergeDelay = 250 * sim.Microsecond

// DefaultMaxHops bounds packet forwarding when Network.MaxHops is zero.
// The deepest shipped topology is 4 hops; 64 tolerates any plausible
// extension while turning a transient routing loop into a bounded drop.
const DefaultMaxHops = 64

func (n *Network) reconvergeDelay() sim.Time {
	if n.ReconvergeDelay > 0 {
		return n.ReconvergeDelay
	}
	return DefaultReconvergeDelay
}

func (n *Network) maxHops() int {
	if n.MaxHops > 0 {
		return n.MaxHops
	}
	return DefaultMaxHops
}

// peerPort returns the port at the far end of p's link.
func peerPort(p *Port) *Port {
	return p.PeerNode.Ports()[p.PeerPort]
}

// FailLink hard-fails the link attached to port p (either end names the
// link): both ends go down, the port-owning switches drop their ECMP
// entries over the link at once, and a route recomputation is scheduled
// after ReconvergeDelay. Failing an already-down link only re-schedules
// the reconvergence.
func (n *Network) FailLink(p *Port) {
	peer := peerPort(p)
	n.routesDynamic = true
	p.SetLinkDown(true)
	peer.SetLinkDown(true)
	n.invalidatePort(p)
	n.invalidatePort(peer)
	n.recordTopoEvent("fail_link", p.owner.ID())
	n.scheduleReconverge()
}

// RestoreLink brings a failed link back up. The link carries traffic
// again immediately for routes that still reference it, but invalidated
// entries only return at the scheduled reconvergence.
func (n *Network) RestoreLink(p *Port) {
	peer := peerPort(p)
	n.routesDynamic = true
	p.SetLinkDown(false)
	peer.SetLinkDown(false)
	n.recordTopoEvent("restore_link", p.owner.ID())
	n.scheduleReconverge()
}

// FailSwitch hard-fails a whole switch: every attached link goes down,
// the peers invalidate their entries toward it, and its own forwarding
// table is cleared (the control plane died with it). Packets already
// buffered inside keep serializing into the dead links and are released
// there; packets still in flight toward it blackhole on arrival.
func (n *Network) FailSwitch(s *Switch) {
	n.routesDynamic = true
	s.failed = true
	s.routes = make(map[NodeID][]int)
	for _, p := range s.ports {
		peer := peerPort(p)
		p.SetLinkDown(true)
		peer.SetLinkDown(true)
		n.invalidatePort(peer)
	}
	n.recordTopoEvent("fail_switch", s.id)
	n.scheduleReconverge()
}

// RestoreSwitch brings a failed switch back: links up, forwarding
// resumes at the next reconvergence (its table stays empty until then,
// so early arrivals blackhole rather than loop).
func (n *Network) RestoreSwitch(s *Switch) {
	n.routesDynamic = true
	s.failed = false
	for _, p := range s.ports {
		p.SetLinkDown(false)
		peerPort(p).SetLinkDown(false)
	}
	n.recordTopoEvent("restore_switch", s.id)
	n.scheduleReconverge()
}

// invalidatePort removes a downed port from every ECMP entry of the
// switch that owns it; entries left with no choices are deleted, and
// packets for those destinations blackhole until reconvergence finds an
// alternate path (or the restore brings this one back).
func (n *Network) invalidatePort(p *Port) {
	s, ok := p.owner.(*Switch)
	if !ok {
		return
	}
	for dst, choices := range s.routes {
		kept := choices[:0]
		for _, i := range choices {
			if i != p.Index {
				kept = append(kept, i)
			}
		}
		if len(kept) == 0 {
			delete(s.routes, dst)
		} else {
			s.routes[dst] = kept
		}
	}
}

// scheduleReconverge arms one route recomputation per topology event.
// Each event waits its own full delay; an earlier event's recomputation
// firing in between simply sees (and adapts to) the newer state too, so
// the delay is the minimum time to the first adaptation, not a barrier.
func (n *Network) scheduleReconverge() {
	eventAt := n.Engine.Now()
	n.Engine.After(n.reconvergeDelay(), func() {
		n.reconverge(eventAt)
	})
}

// reconverge recomputes the routing tables over the live topology and
// notifies RouteAware flow controllers that their path may have changed.
func (n *Network) reconverge(eventAt sim.Time) {
	n.ComputeRoutes()
	n.reconverges++
	n.tm.reconverges.Inc()
	now := n.Engine.Now()
	n.tm.reconvergeLatency.Observe(int64(now - eventAt))
	n.rec.Record(telemetry.Event{
		At:    int64(now),
		Kind:  telemetry.KindInstant,
		Cat:   "route",
		Name:  "reconverge",
		Value: float64(now - eventAt),
	})
	n.notifyReroute(now)
}

// notifyReroute delivers OnReroute to every registered flow whose
// controller opts in, in FlowID order so the callback sequence is
// deterministic regardless of map layout.
func (n *Network) notifyReroute(now sim.Time) {
	ids := make([]FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if ra, ok := n.flows[id].CC.(RouteAware); ok {
			ra.OnReroute(now)
		}
	}
}

// RoutesComplete checks post-recovery reachability: every non-failed
// switch holds at least one live (link-up) ECMP entry for every host.
// On a connected topology with all failures restored and reconverged
// this must hold — a missing or dead entry is a permanent blackhole.
// The failure detail names the first gap found.
func (n *Network) RoutesComplete() (string, bool) {
	for _, s := range n.switches {
		if s.failed {
			return fmt.Sprintf("switch %s still failed", s.Name), false
		}
		for _, h := range n.hosts {
			choices, ok := s.routes[h.id]
			if !ok {
				return fmt.Sprintf("switch %s has no route to host %s", s.Name, h.Name), false
			}
			live := false
			for _, i := range choices {
				if !s.ports[i].linkDown {
					live = true
					break
				}
			}
			if !live {
				return fmt.Sprintf("switch %s routes to host %s only over downed links", s.Name, h.Name), false
			}
		}
	}
	return "", true
}

// recordTopoEvent files a fail/restore instant into the flight recorder.
func (n *Network) recordTopoEvent(name string, node NodeID) {
	n.rec.Record(telemetry.Event{
		At:   int64(n.Engine.Now()),
		Kind: telemetry.KindInstant,
		Cat:  "route",
		Name: name,
		Node: int64(node),
	})
}

// recordLoopDrop files one hop-cap drop (mirrors recordDrop).
func (n *Network) recordLoopDrop(s *Switch, pkt *Packet) {
	n.tm.loopDrops.Inc()
	n.rec.Record(telemetry.Event{
		At:    int64(s.eng.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "route",
		Name:  "loop_drop",
		Node:  int64(s.id),
		Flow:  int64(pkt.Flow),
		Value: float64(pkt.Size),
	})
}

// recordBlackhole files one no-route drop (mirrors recordDrop).
func (n *Network) recordBlackhole(s *Switch, pkt *Packet) {
	n.tm.blackholeDrops.Inc()
	n.rec.Record(telemetry.Event{
		At:    int64(s.eng.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "route",
		Name:  "blackhole",
		Node:  int64(s.id),
		Flow:  int64(pkt.Flow),
		Value: float64(pkt.Size),
	})
}
