package netsim

import (
	"fmt"
	"sort"
	"testing"

	"rocc/internal/harness"
	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// failover reports s0's live ECMP choices toward dst in the diamond.
func failover(s0 *Switch, dst *Host) []int {
	return s0.routes[dst.ID()]
}

func TestFailLinkLocalRepair(t *testing.T) {
	// Failing one diamond path must instantly fall back to the survivor:
	// the detecting switch drops the dead entry before any reconvergence.
	engine, net, src, dst, s0 := diamond()
	f := net.StartFlow(src, dst, FlowConfig{Size: -1})
	engine.RunUntil(100 * sim.Microsecond)
	sentBefore := f.SentBytes()

	var deadPort *Port
	for _, i := range s0.routes[dst.ID()] {
		deadPort = s0.ports[i]
		break
	}
	net.FailLink(deadPort)
	if got := len(failover(s0, dst)); got != 1 {
		t.Fatalf("after FailLink s0 has %d entries toward dst, want 1", got)
	}
	engine.RunUntil(500 * sim.Microsecond)
	if f.DeliveredBytes() == 0 || f.SentBytes() == sentBefore {
		t.Error("flow stalled despite a surviving equal-cost path")
	}
	if net.BlackholeDrops() != 0 {
		t.Errorf("local repair blackholed %d packets", net.BlackholeDrops())
	}
	if net.Reconverges() != 1 {
		t.Errorf("reconverges = %d, want 1", net.Reconverges())
	}
	f.Stop()
}

func TestFailLinkBlackholeWindowAndRecovery(t *testing.T) {
	// Single-path topology: killing the only link to dst blackholes until
	// the restore's reconvergence, then a reliable flow must recover.
	engine, net, a, b, sw := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: -1, Reliable: true})
	engine.RunUntil(200 * sim.Microsecond)

	egress := sw.PortTo(b)
	engine.At(200*sim.Microsecond, func() { net.FailLink(egress) })
	engine.RunUntil(1 * sim.Millisecond)
	if net.BlackholeDrops() == 0 {
		t.Error("no blackhole drops while the only path was invalidated")
	}
	// Reconvergence over the broken fabric cannot resurrect the route.
	if _, ok := sw.routes[b.ID()]; ok {
		t.Error("switch still routes to dst over a dead link")
	}
	if detail, ok := net.RoutesComplete(); ok {
		t.Error("RoutesComplete passed with an unreachable host")
	} else if detail == "" {
		t.Error("RoutesComplete gave no detail for the gap")
	}

	delivered := f.DeliveredBytes()
	engine.At(1*sim.Millisecond, func() { net.RestoreLink(egress) })
	engine.RunUntil(4 * sim.Millisecond)
	if detail, ok := net.RoutesComplete(); !ok {
		t.Errorf("routes incomplete after restore+reconverge: %s", detail)
	}
	if f.DeliveredBytes() <= delivered {
		t.Errorf("flow stuck at %d bytes after restore", delivered)
	}
	f.Stop()
}

func TestRestoreReadoptsEqualCostPath(t *testing.T) {
	engine, net, _, dst, s0 := diamond()
	deadPort := s0.ports[s0.routes[dst.ID()][0]]
	net.FailLink(deadPort)
	engine.RunUntil(sim.Millisecond) // past reconvergence
	if got := len(failover(s0, dst)); got != 1 {
		t.Fatalf("post-fail reconvergence kept %d entries, want 1", got)
	}
	net.RestoreLink(deadPort)
	// Up again, but the entry only returns at the next reconvergence.
	if got := len(failover(s0, dst)); got != 1 {
		t.Fatalf("restored path adopted before reconvergence (%d entries)", got)
	}
	engine.RunUntil(2 * sim.Millisecond)
	if got := len(failover(s0, dst)); got != 2 {
		t.Errorf("after restore+reconverge s0 has %d entries, want 2", got)
	}
	if net.Reconverges() != 2 {
		t.Errorf("reconverges = %d, want 2 (one per event)", net.Reconverges())
	}
}

func TestFailSwitchBlackholesInFlight(t *testing.T) {
	// Packets already past the host NIC when the switch dies arrive at a
	// cleared forwarding table and must blackhole — counted, released,
	// never panicking.
	engine, net, a, b, sw := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: -1, Reliable: true})
	engine.RunUntil(300 * sim.Microsecond)
	engine.At(300*sim.Microsecond, func() { net.FailSwitch(sw) })
	engine.RunUntil(600 * sim.Microsecond)
	if sw.BlackholeDrops == 0 {
		t.Error("switch kill blackholed nothing despite packets in flight")
	}
	if detail, ok := net.RoutesComplete(); ok {
		t.Error("RoutesComplete passed with a failed switch")
	} else if detail == "" {
		t.Error("no detail for the failed switch")
	}

	delivered := f.DeliveredBytes()
	engine.At(600*sim.Microsecond, func() { net.RestoreSwitch(sw) })
	engine.RunUntil(5 * sim.Millisecond)
	if detail, ok := net.RoutesComplete(); !ok {
		t.Errorf("routes incomplete after switch restore: %s", detail)
	}
	if f.DeliveredBytes() <= delivered {
		t.Error("reliable flow never recovered after switch restore")
	}
	f.Stop()
}

func TestRestoredSwitchForwardsOnlyAfterReconverge(t *testing.T) {
	_, net, _, b, sw := pair(Gbps(40))
	net.FailSwitch(sw)
	net.RestoreSwitch(sw)
	// Table cleared at fail, links back up at restore: an early arrival
	// must blackhole rather than loop or panic.
	if len(sw.routes) != 0 {
		t.Fatal("failed switch kept forwarding state")
	}
	pkt := net.AcquirePacket()
	pkt.Dst = b.ID()
	pkt.Kind = KindData
	pkt.Cls = ClassData
	pkt.Size = 100
	before := sw.BlackholeDrops
	sw.Arrive(pkt, 0)
	if sw.BlackholeDrops != before+1 {
		t.Error("early post-restore arrival did not blackhole")
	}
}

func TestLoopDropAtHopCap(t *testing.T) {
	_, net, _, b, sw := pair(Gbps(40))
	net.routesDynamic = true
	pkt := net.AcquirePacket()
	pkt.Dst = b.ID()
	pkt.Kind = KindData
	pkt.Cls = ClassData
	pkt.Size = 100
	pkt.hops = DefaultMaxHops // one more traversal exceeds the cap
	sw.Arrive(pkt, 0)
	if sw.LoopDrops != 1 {
		t.Errorf("LoopDrops = %d, want 1", sw.LoopDrops)
	}
	if net.LoopDrops() != 1 {
		t.Errorf("network LoopDrops = %d, want 1", net.LoopDrops())
	}
}

func TestStaticRoutingStillPanicsOnMissingRoute(t *testing.T) {
	// Without any topology event the old contract holds: a missing route
	// is a wiring bug, not a blackhole.
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b") // never connected
	net.Connect(a, sw, Gbps(40), 1500)
	net.ComputeRoutes()
	defer func() {
		if recover() == nil {
			t.Error("static missing route did not panic")
		}
	}()
	sw.Arrive(&Packet{Dst: b.ID(), Kind: KindData, Cls: ClassData, Size: 100}, 0)
}

// rerouteSpy is a RouteAware NoCC recording reconvergence callbacks.
type rerouteSpy struct {
	NoCC
	calls []sim.Time
}

func (s *rerouteSpy) OnReroute(now sim.Time) { s.calls = append(s.calls, now) }

func TestReconvergeNotifiesRouteAware(t *testing.T) {
	engine, net, src, dst, s0 := diamond()
	spy := &rerouteSpy{}
	f := net.StartFlow(src, dst, FlowConfig{Size: -1, CC: spy})
	failAt := 100 * sim.Microsecond
	engine.At(failAt, func() { net.FailLink(s0.ports[s0.routes[dst.ID()][0]]) })
	engine.RunUntil(sim.Millisecond)
	if len(spy.calls) != 1 {
		t.Fatalf("OnReroute called %d times, want 1", len(spy.calls))
	}
	if want := failAt + DefaultReconvergeDelay; spy.calls[0] != want {
		t.Errorf("OnReroute at %v, want %v (fail + reconverge delay)", spy.calls[0], want)
	}
	f.Stop()
}

func TestTopoFailTelemetry(t *testing.T) {
	// No traffic: per-packet events would flood the recorder ring and
	// evict the route instants this test is about.
	engine, net, _, dst, s0 := diamond()
	reg := telemetry.New()
	rec := telemetry.NewRecorder(4096, 0, 0)
	net.SetTelemetry(reg, rec)
	deadPort := s0.ports[s0.routes[dst.ID()][0]]
	engine.At(100*sim.Microsecond, func() { net.FailLink(deadPort) })
	engine.At(500*sim.Microsecond, func() { net.RestoreLink(deadPort) })
	engine.RunUntil(sim.Millisecond)

	if got := reg.Counter("netsim.route.reconverges").Value(); got != net.Reconverges() {
		t.Errorf("reconverges counter = %d, accessor = %d", got, net.Reconverges())
	}
	if got := reg.Counter("netsim.route.reconverges").Value(); got != 2 {
		t.Errorf("reconverges counter = %d, want 2", got)
	}
	h := reg.Histogram("netsim.route.reconverge_ns")
	if h.Count() != 2 {
		t.Errorf("reconvergence latency histogram has %d samples, want 2", h.Count())
	}
	if q := h.Quantile(0.5); q < uint64(DefaultReconvergeDelay) {
		t.Errorf("median reconvergence latency %d ns below the configured delay", q)
	}
	names := map[string]int{}
	for _, e := range rec.Events() {
		if e.Cat == "route" {
			names[e.Name]++
		}
	}
	for _, want := range []string{"fail_link", "restore_link", "reconverge"} {
		if names[want] == 0 {
			t.Errorf("flight recorder missing route event %q (got %v)", want, names)
		}
	}
}

// routeTable serializes a network's full forwarding state into a
// canonical string for equality comparison.
func routeTable(net *Network) string {
	var sb []string
	for _, s := range net.switches {
		dsts := make([]NodeID, 0, len(s.routes))
		for d := range s.routes {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, d := range dsts {
			choices := append([]int(nil), s.routes[d]...)
			sort.Ints(choices)
			sb = append(sb, fmt.Sprintf("%s->%d:%v", s.Name, d, choices))
		}
	}
	return fmt.Sprint(sb)
}

func TestECMPTablesDeterministicAcrossRunsAndWorkers(t *testing.T) {
	// Route computation must be a pure function of the topology: identical
	// tables run-over-run, and identical when many topologies are built
	// concurrently on the harness worker pool (no shared-state leakage,
	// no map-iteration-order dependence).
	build := func() string {
		_, net, _, _, _ := diamond()
		// A failure/restore cycle exercises the dynamic recompute path too.
		p := net.switches[0].ports[net.switches[0].routes[net.hosts[1].id][0]]
		net.FailLink(p)
		net.RestoreLink(p)
		net.ComputeRoutes()
		return routeTable(net)
	}
	want := build()
	for _, workers := range []int{1, 4, 8} {
		rs := harness.Run(16, harness.Options{Workers: workers}, func(i int) (string, error) {
			return build(), nil
		})
		tables, err := harness.Values(rs)
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range tables {
			if got != want {
				t.Fatalf("workers=%d cell %d: route table diverged:\n got %s\nwant %s",
					workers, i, got, want)
			}
		}
	}
}
