package netsim

import (
	"sort"

	"rocc/internal/sim"
)

// This file is the dataplane's side of the sharded engine (sim.Group):
// node→shard assignment, per-shard packet pools with ownership transfer
// on cross-shard handoff, and the deferred flow-completion machinery
// that keeps flow-registry mutation and user callbacks on the global
// lane.
//
// Lane encoding for the (at, k1, seq) event keys — see sim.event.k1:
//
//	0                 global/setup lane: events scheduled by global-lane
//	                  code (workload arrivals, monitors, tickers created
//	                  at setup) and their descendants. Sorts first.
//	1<<62 | nodeID    a node's local lane: everything a node does in
//	                  reaction to a packet arrival.
//	2<<62 | portID    a directed link's arrival lane, sequenced by the
//	                  transmitting port's own counter.
//
// All three are derived from topology identity, never from shard
// assignment, so same-timestamp ordering — and therefore the whole run —
// is byte-identical for every shard count.
const (
	laneLocalBase = uint64(1) << 62
	laneArrBase   = uint64(2) << 62
)

func localLane(id NodeID) uint64 { return laneLocalBase | uint64(id) }

// shardState is per-shard deferred work, appended single-writer during a
// window and drained by the coordinator at the barrier.
type shardState struct {
	done   []*Flow     // flows whose last byte arrived this window
	retire []retireReq // reliable flows fully acknowledged this window
}

type retireReq struct {
	f  *Flow
	at sim.Time
}

// Sharded reports whether the network runs on a sharded engine group.
func (n *Network) Sharded() bool { return n.group != nil }

// Group returns the engine group the network was sharded onto, or nil.
func (n *Network) Group() *sim.Group { return n.group }

// EnableSharding partitions the network across the shards of g:
// assign[nodeID] names the shard owning each node. Call it after the
// topology is complete (every Connect done) and before any traffic or
// protocol attachments. g's global lane must be the engine the network
// was built on; every existing scheduling site against n.Engine keeps
// working and runs at window barriers.
//
// The lookahead contract is the caller's (the topology partitioner's)
// responsibility: every link between nodes on different shards must
// have PropDelay >= g.Lookahead().
func (n *Network) EnableSharding(g *sim.Group, assign []int) {
	if g.Global() != n.Engine {
		panic("netsim: sharding group must wrap the network's engine")
	}
	if len(assign) != len(n.nodes) {
		panic("netsim: shard assignment must cover every node")
	}
	if len(n.flows) > 0 || n.nextFlow != 0 {
		panic("netsim: EnableSharding must run before any traffic")
	}
	n.group = g
	k := g.Shards()
	n.pools = make([]packetPool, k)
	for i := range n.pools {
		n.pools[i].disabled = n.pool.disabled
	}
	n.shardSt = make([]shardState, k)
	for id, node := range n.nodes {
		sh := assign[id]
		if sh < 0 || sh >= k {
			panic("netsim: shard assignment out of range")
		}
		eng := g.Shard(sh)
		switch v := node.(type) {
		case *Host:
			v.eng, v.shard = eng, sh
		case *Switch:
			v.eng, v.shard = eng, sh
		}
		for _, p := range node.Ports() {
			p.eng, p.shard = eng, sh
		}
		for _, p := range node.Ports() {
			if p.PropDelay < g.Lookahead() && assign[p.PeerNode.ID()] != sh {
				panic("netsim: cross-shard link faster than group lookahead")
			}
		}
	}
	for _, node := range n.nodes {
		for _, p := range node.Ports() {
			p.peerShard = assign[p.PeerNode.ID()]
			p.peerCtx = localLane(p.PeerNode.ID())
		}
	}
	g.OnBarrier(n.drainShardCompletions)
	g.SetTransfer(n.transferOwnership)
}

// nodeShard returns the shard a node lives on (0 when unsharded).
func nodeShard(node Node) int {
	switch v := node.(type) {
	case *Host:
		return v.shard
	case *Switch:
		return v.shard
	}
	return 0
}

// AcquirePacketFor returns a pooled packet owned by node's shard.
// Protocol elements running inside a node's event context (CNP
// generators, receiver hooks) must use this in sharded runs so the
// free-list stays shard-local; unsharded it is identical to
// AcquirePacket.
func (n *Network) AcquirePacketFor(node Node) *Packet {
	if n.group == nil {
		return n.AcquirePacket()
	}
	return n.acquireFrom(int32(nodeShard(node)))
}

// transferOwnership moves a mailbox-handoff packet to the destination
// shard's pool. It runs on the coordinator with every shard quiesced —
// the only moment a packet may change pools.
func (n *Network) transferOwnership(_, b any, dst int) {
	pkt, ok := b.(*Packet)
	if !ok || !pkt.pooled {
		return
	}
	n.movePacket(pkt, dst)
}

func (n *Network) movePacket(pkt *Packet, dst int) {
	if int(pkt.pool) == dst {
		return
	}
	n.pools[pkt.pool].live--
	n.pools[dst].live++
	pkt.pool = int32(dst)
}

// drainShardCompletions is the window-barrier hook: it replays the
// flow completions and retirements each shard deferred, in a
// partition-independent order, on the global lane. Completion callbacks
// (OnFlowDone) may start new flows or stop the engine; registry
// mutation (removeFlowLater) happens here too, so in-window code only
// ever reads the flow map.
func (n *Network) drainShardCompletions(now sim.Time) {
	nd, nr := 0, 0
	for i := range n.shardSt {
		nd += len(n.shardSt[i].done)
		nr += len(n.shardSt[i].retire)
	}
	if nd > 0 {
		n.doneScratch = n.doneScratch[:0]
		for i := range n.shardSt {
			st := &n.shardSt[i]
			n.doneScratch = append(n.doneScratch, st.done...)
			for j := range st.done {
				st.done[j] = nil
			}
			st.done = st.done[:0]
		}
		sort.Slice(n.doneScratch, func(a, b int) bool {
			x, y := n.doneScratch[a], n.doneScratch[b]
			if x.FinishTime != y.FinishTime {
				return x.FinishTime < y.FinishTime
			}
			if x.dstID != y.dstID {
				return x.dstID < y.dstID
			}
			return x.ID < y.ID
		})
		for _, f := range n.doneScratch {
			if n.OnFlowDone != nil {
				n.OnFlowDone(f)
			}
			if !f.Reliable {
				n.removeFlowLater(f)
			}
		}
	}
	if nr > 0 {
		n.retireScratch = n.retireScratch[:0]
		for i := range n.shardSt {
			st := &n.shardSt[i]
			n.retireScratch = append(n.retireScratch, st.retire...)
			for j := range st.retire {
				st.retire[j] = retireReq{}
			}
			st.retire = st.retire[:0]
		}
		sort.Slice(n.retireScratch, func(a, b int) bool {
			x, y := n.retireScratch[a], n.retireScratch[b]
			if x.at != y.at {
				return x.at < y.at
			}
			if x.f.srcID != y.f.srcID {
				return x.f.srcID < y.f.srcID
			}
			return x.f.ID < y.f.ID
		})
		for _, r := range n.retireScratch {
			n.removeFlowLater(r.f)
		}
	}
}

// scheduleArrival puts a serialized packet's arrival on the right heap:
// legacy AfterCall when unsharded; otherwise the keyed form, through the
// cross-shard mailbox when the peer lives elsewhere and a window is
// executing. The (lane, seq) pair comes from the transmitting port, so
// arrival order at equal timestamps is partition-independent.
func (p *Port) scheduleArrival(delay sim.Time, pkt *Packet) {
	g := p.net.group
	if g == nil {
		p.net.Engine.AfterCall(delay, portArrive, p, pkt)
		return
	}
	if delay < 0 {
		delay = 0
	}
	at := p.eng.Now() + delay
	seq := p.linkSeq
	p.linkSeq++
	switch {
	case p.peerShard == p.shard:
		p.eng.AtKeyed(at, p.arrLane, seq, p.peerCtx, portArrive, p, pkt)
	case g.InWindow():
		g.Send(p.shard, p.peerShard, at, p.arrLane, seq, p.peerCtx, portArrive, p, pkt)
	default:
		// Barrier/global context: every heap is quiescent, so push
		// directly (and move pool ownership inline, as the mailbox
		// drain would have).
		if pkt.pooled {
			p.net.movePacket(pkt, p.peerShard)
		}
		g.Shard(p.peerShard).AtKeyed(at, p.arrLane, seq, p.peerCtx, portArrive, p, pkt)
	}
}

// NodeCount returns how many nodes (hosts and switches) the network has —
// the length a shard-assignment slice must cover.
func (n *Network) NodeCount() int { return len(n.nodes) }
