package netsim

import (
	"sync/atomic"

	"rocc/internal/ringq"
	"rocc/internal/sim"
)

// Port is one end of a link. It owns per-class strict-priority queues and
// serializes packets at the link rate. The data class can be paused by PFC.
type Port struct {
	net   *Network
	owner Node
	Index int // port index at the owner

	PeerNode Node
	PeerPort int

	LinkRate  Rate
	PropDelay sim.Time

	queues     [NumClasses]ringq.Queue[*Packet]
	queueBytes [NumClasses]int
	busy       bool
	paused     bool // PFC pause applies to ClassData only

	// Refill, if set, is asked for a data packet when the port would
	// otherwise go idle (host pull model). Switches leave it nil.
	Refill func() *Packet

	// OnDequeue, if set, runs when a data packet leaves the queue and
	// starts transmission (switch egress pipeline hook).
	OnDequeue func(pkt *Packet, qlen int)

	// CC is the switch-side congestion-control attachment, if any.
	CC PortCC

	// Fault, when set, adjudicates every packet leaving this port
	// (drop/duplicate/delay/corrupt — see internal/faults). Nil means a
	// perfect link.
	Fault FaultHook

	// Tracer, when set, records this port's enqueue/dequeue/pause events
	// into a bounded ring for debugging.
	Tracer *Tracer

	linkDown bool     // packets transmitted while down are lost
	upSince  sim.Time // when the link last (re-)established at this end

	// Sharded-engine wiring (see shard.go). eng is the engine this
	// port's events run on — the network engine until EnableSharding
	// re-homes the owner onto a shard. arrLane keys this directed link's
	// arrival lane (creation-order port id), linkSeq sequences arrivals
	// within it, and peerShard/peerCtx cache the far end's shard and
	// local lane.
	eng       *sim.Engine
	shard     int
	peerShard int
	peerCtx   uint64
	arrLane   uint64
	linkSeq   uint64

	// losslessOff marks the data class as storm-disabled by a PFC
	// watchdog: incoming pause frames are ignored (and counted) and the
	// owning switch drops data routed to this egress, until the
	// watchdog's cooldown re-enables the class. See internal/adversary.
	losslessOff bool

	// Counters.
	TxBytes       uint64 // all classes
	TxDataBytes   uint64
	TxPackets     uint64
	LinkDownDrops uint64 // packets lost to a downed link
	pausedFor     sim.Time // completed pause intervals
	pausedAt      sim.Time
}

// PausedFor returns the cumulative time the data class has spent
// PFC-paused, including the in-progress pause if the port is currently
// paused — so sampling a paused port mid-pause does not undercount.
func (p *Port) PausedFor() sim.Time {
	t := p.pausedFor
	if p.paused {
		t += p.eng.Now() - p.pausedAt
	}
	return t
}

// CurrentPauseSpan returns how long the in-progress PFC pause has been
// asserted, or zero when the port is not paused. This is the signal a
// storm watchdog compares against its deadline — PausedFor would also
// count long-completed healthy pauses.
func (p *Port) CurrentPauseSpan() sim.Time {
	if !p.paused {
		return 0
	}
	return p.eng.Now() - p.pausedAt
}

// LosslessOff reports whether a storm watchdog has disabled the
// lossless (data) class on this port.
func (p *Port) LosslessOff() bool { return p.losslessOff }

// SetLosslessOff disables or re-enables the lossless class. Disabling
// releases any pause in progress (ending its span) so the port drains;
// while disabled, acceptPause discards incoming PFC frames and the
// owning switch drops data routed here. Re-enabling restores normal
// 802.1Qbb behaviour from the next pause frame onward.
func (p *Port) SetLosslessOff(off bool) {
	if p.losslessOff == off {
		return
	}
	p.losslessOff = off
	if off && p.paused {
		p.SetPaused(false)
	}
}

// Owner returns the node the port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Engine returns the engine this port's events run on: the network
// engine, or the owner's shard engine in sharded runs. Switch-side
// congestion-control attachments must schedule their timers here.
func (p *Port) Engine() *sim.Engine { return p.eng }

// QueueBytes returns the queued bytes of one class (excluding the packet
// currently being serialized).
func (p *Port) QueueBytes(c Class) int { return p.queueBytes[c] }

// DataQueueBytes returns the data-class backlog in bytes. This is the
// quantity the RoCC congestion point reads as Qcur.
func (p *Port) DataQueueBytes() int { return p.queueBytes[ClassData] }

// Paused reports whether the data class is PFC-paused.
func (p *Port) Paused() bool { return p.paused }

// LinkDown reports whether the link is administratively down at this end.
func (p *Port) LinkDown() bool { return p.linkDown }

// SetLinkDown takes this end of the link down or brings it back up. While
// down, everything the port transmits (including PFC frames) is lost.
// Bringing the link up models an 802.1Qbb re-establishment: pause state
// is link-local, so the received-pause flag and the owner's sent-Xoff
// bookkeeping are cleared — a pause deadline must not survive a flap.
// The fault layer flaps both ends of a link together (see faults.Flap).
func (p *Port) SetLinkDown(down bool) {
	if p.linkDown == down {
		return
	}
	p.linkDown = down
	if down {
		// Pause state dies with the link: the span ends here, so a long
		// outage reads as an outage (LinkDownDrops), not a pause storm.
		if p.paused {
			p.SetPaused(false)
		}
		return
	}
	p.upSince = p.eng.Now()
	if p.paused {
		p.SetPaused(false)
	}
	if r, ok := p.owner.(pfcResetter); ok {
		r.resetPFC(p.Index)
	}
	p.kick()
}

// QueuedPackets returns the number of packets parked across all class
// queues (excluding the packet currently serializing). The pool
// accounting invariant uses it: after the engine drains, every
// outstanding pooled packet must be parked in some queue.
func (p *Port) QueuedPackets() int {
	total := 0
	for c := range p.queues {
		total += p.queues[c].Len()
	}
	return total
}

// Enqueue appends a packet to its class queue and starts transmission if
// the port is idle. The queue takes ownership of the packet.
func (p *Port) Enqueue(pkt *Packet) {
	pkt.checkLive("port enqueue")
	c := pkt.Cls
	p.queues[c].Push(pkt)
	p.queueBytes[c] += pkt.Size
	p.trace("enqueue", pkt)
	if c == ClassData {
		p.net.recordQueueDepth(p)
	}
	p.kick()
}

// SetPaused applies or releases a PFC pause on the data class.
func (p *Port) SetPaused(on bool) {
	if p.paused == on {
		return
	}
	p.paused = on
	now := p.eng.Now()
	if on {
		p.pausedAt = now
		p.trace("pause", pauseTraceStub)
	} else {
		p.pausedFor += now - p.pausedAt
		p.trace("resume", pauseTraceStub)
		p.net.recordPauseSpan(p, p.pausedAt, now)
		p.kick()
	}
}

// pauseTraceStub stands in for a packet in pause/resume trace records,
// which carry no per-packet data. Tracers only read fields, so one shared
// stub avoids allocating a throwaway Packet per pause transition.
var pauseTraceStub = &Packet{Kind: KindPause}

// nextPacket pops the highest-priority transmittable packet, consulting the
// Refill hook when the data queue is empty.
func (p *Port) nextPacket() *Packet {
	for c := ClassCtrl; c < NumClasses; c++ {
		if c == ClassData && p.paused {
			continue
		}
		if p.queues[c].Len() > 0 {
			pkt := p.queues[c].Pop()
			p.queueBytes[c] -= pkt.Size
			return pkt
		}
		if c == ClassData && p.Refill != nil {
			if pkt := p.Refill(); pkt != nil {
				return pkt
			}
		}
	}
	return nil
}

// kick starts transmission if the port is idle and work is available.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.nextPacket()
	if pkt == nil {
		return
	}
	p.busy = true
	now := p.eng.Now()
	p.trace("dequeue", pkt)
	if pkt.Kind == KindData {
		if p.OnDequeue != nil {
			p.OnDequeue(pkt, p.queueBytes[ClassData])
		}
		if p.CC != nil {
			p.CC.OnDequeue(now, pkt, p.queueBytes[ClassData])
		}
	}
	txTime := p.LinkRate.TxTime(pkt.Size)
	p.eng.AfterCall(txTime, portTxDone, p, pkt)
}

// portTxDone fires when a packet finishes serializing: counters, hand-off
// to the wire, and the next transmission. Scheduled via AfterCall so the
// per-packet tx event reuses pooled slots instead of allocating a closure.
func portTxDone(a, b any) {
	p := a.(*Port)
	pkt := b.(*Packet)
	p.busy = false
	p.TxBytes += uint64(pkt.Size)
	p.TxPackets++
	p.net.tm.txPackets.Inc()
	p.net.tm.txBytes.Add(uint64(pkt.Size))
	if pkt.Kind == KindData {
		p.TxDataBytes += uint64(pkt.Size)
		if pkt.CE {
			p.net.tm.ecnMarks.Inc()
		}
	}
	p.deliver(pkt, p.PropDelay)
	p.kick()
}

// deliver puts a serialized packet on the wire toward the link peer: it
// consults the link state and the fault hook, then schedules the arrival
// after delay. With the link up and no hook attached this schedules
// exactly one event, identical to a direct delivery.
func (p *Port) deliver(pkt *Packet, delay sim.Time) {
	if p.linkDown {
		p.LinkDownDrops++
		p.net.tm.linkDownDrops.Inc()
		p.net.ReleasePacket(pkt)
		return
	}
	if p.Fault != nil {
		v := p.Fault.OnTransmit(p.eng.Now(), pkt)
		if v.Pkt == nil {
			// The link lost the packet: this is its terminal point.
			p.net.ReleasePacket(pkt)
			return
		}
		if v.Pkt != pkt {
			// The hook substituted a corrupted clone; the original is done.
			p.net.ReleasePacket(pkt)
		}
		delay += v.ExtraDelay
		pkt = v.Pkt
		if v.Duplicate {
			// Schedule the original first so it keeps arriving ahead of its
			// duplicate (same timestamp, earlier sequence number).
			p.scheduleArrival(delay, pkt)
			p.scheduleArrival(delay, p.net.ClonePacket(pkt))
			return
		}
	}
	p.scheduleArrival(delay, pkt)
}

// portArrive lands a packet at the link peer after propagation. Peer
// wiring is read at fire time — ports never re-peer after Connect — so
// the event carries only the transmitting port and the packet.
func portArrive(a, b any) {
	p := a.(*Port)
	p.PeerNode.Arrive(b.(*Packet), p.PeerPort)
}

// sendPauseFrame delivers a PFC pause/resume to the link peer out of band
// (PFC frames preempt data in real hardware; we model them as a fixed
// serialization plus propagation delay that does not occupy the queue).
// Pause frames traverse deliver like everything else, so a downed or
// faulty link can lose them — the peer then stays paused (or unpaused)
// until the link-up reset clears the state.
func (p *Port) sendPauseFrame(on bool) {
	pkt := p.net.AcquirePacketFor(p.owner)
	pkt.Kind = KindPause
	pkt.Cls = ClassCtrl
	pkt.Size = PauseBytes
	pkt.PauseOn = on
	pkt.SendTS = p.eng.Now()
	p.deliver(pkt, p.LinkRate.TxTime(PauseBytes)+p.PropDelay)
}

// acceptPause decides whether an arriving PFC frame may change this
// port's pause state. Pause state is link-local and does not survive a
// flap (SetLinkDown already resets it at link-up), so a frame serialized
// before the link's last re-establishment is stale: honoring a pre-flap
// Xoff after the reset would re-pause the port with no matching resume
// on record upstream — a permanent deadlock. The same applies while the
// link is down: the physical layer that would carry the frame is gone.
func (p *Port) acceptPause(pkt *Packet) bool {
	if p.losslessOff {
		// A storm watchdog disabled the lossless class here: the storm's
		// pause frames are ignored until the cooldown re-enables it.
		// Atomic: ports on different shards bump this concurrently.
		atomic.AddUint64(&p.net.watchdogPauseIgnores, 1)
		p.net.tm.watchdogPauseIgnores.Inc()
		return false
	}
	if p.linkDown || pkt.SendTS < p.upSince {
		atomic.AddUint64(&p.net.stalePauseDrops, 1)
		p.net.tm.stalePauseDrops.Inc()
		return false
	}
	return true
}

// Utilization returns the fraction of link capacity used by transmissions
// between two byte counters sampled interval apart.
func Utilization(txBytesDelta uint64, rate Rate, interval sim.Time) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(txBytesDelta) * 8 / (float64(rate) * interval.Seconds())
}
