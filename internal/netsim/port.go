package netsim

import (
	"rocc/internal/ringq"
	"rocc/internal/sim"
)

// Port is one end of a link. It owns per-class strict-priority queues and
// serializes packets at the link rate. The data class can be paused by PFC.
type Port struct {
	net   *Network
	owner Node
	Index int // port index at the owner

	PeerNode Node
	PeerPort int

	LinkRate  Rate
	PropDelay sim.Time

	queues     [NumClasses]ringq.Queue[*Packet]
	queueBytes [NumClasses]int
	busy       bool
	paused     bool // PFC pause applies to ClassData only

	// Refill, if set, is asked for a data packet when the port would
	// otherwise go idle (host pull model). Switches leave it nil.
	Refill func() *Packet

	// OnDequeue, if set, runs when a data packet leaves the queue and
	// starts transmission (switch egress pipeline hook).
	OnDequeue func(pkt *Packet, qlen int)

	// CC is the switch-side congestion-control attachment, if any.
	CC PortCC

	// Tracer, when set, records this port's enqueue/dequeue/pause events
	// into a bounded ring for debugging.
	Tracer *Tracer

	// Counters.
	TxBytes     uint64 // all classes
	TxDataBytes uint64
	TxPackets   uint64
	pausedFor   sim.Time // completed pause intervals
	pausedAt    sim.Time
}

// PausedFor returns the cumulative time the data class has spent
// PFC-paused, including the in-progress pause if the port is currently
// paused — so sampling a paused port mid-pause does not undercount.
func (p *Port) PausedFor() sim.Time {
	t := p.pausedFor
	if p.paused {
		t += p.net.Engine.Now() - p.pausedAt
	}
	return t
}

// Owner returns the node the port belongs to.
func (p *Port) Owner() Node { return p.owner }

// QueueBytes returns the queued bytes of one class (excluding the packet
// currently being serialized).
func (p *Port) QueueBytes(c Class) int { return p.queueBytes[c] }

// DataQueueBytes returns the data-class backlog in bytes. This is the
// quantity the RoCC congestion point reads as Qcur.
func (p *Port) DataQueueBytes() int { return p.queueBytes[ClassData] }

// Paused reports whether the data class is PFC-paused.
func (p *Port) Paused() bool { return p.paused }

// Enqueue appends a packet to its class queue and starts transmission if
// the port is idle.
func (p *Port) Enqueue(pkt *Packet) {
	c := pkt.Cls
	p.queues[c].Push(pkt)
	p.queueBytes[c] += pkt.Size
	p.trace("enqueue", pkt)
	p.kick()
}

// SetPaused applies or releases a PFC pause on the data class.
func (p *Port) SetPaused(on bool) {
	if p.paused == on {
		return
	}
	p.paused = on
	now := p.net.Engine.Now()
	if on {
		p.pausedAt = now
		p.trace("pause", &Packet{Kind: KindPause})
	} else {
		p.pausedFor += now - p.pausedAt
		p.trace("resume", &Packet{Kind: KindPause})
		p.kick()
	}
}

// nextPacket pops the highest-priority transmittable packet, consulting the
// Refill hook when the data queue is empty.
func (p *Port) nextPacket() *Packet {
	for c := ClassCtrl; c < NumClasses; c++ {
		if c == ClassData && p.paused {
			continue
		}
		if p.queues[c].Len() > 0 {
			pkt := p.queues[c].Pop()
			p.queueBytes[c] -= pkt.Size
			return pkt
		}
		if c == ClassData && p.Refill != nil {
			if pkt := p.Refill(); pkt != nil {
				return pkt
			}
		}
	}
	return nil
}

// kick starts transmission if the port is idle and work is available.
func (p *Port) kick() {
	if p.busy {
		return
	}
	pkt := p.nextPacket()
	if pkt == nil {
		return
	}
	p.busy = true
	now := p.net.Engine.Now()
	p.trace("dequeue", pkt)
	if pkt.Kind == KindData {
		if p.OnDequeue != nil {
			p.OnDequeue(pkt, p.queueBytes[ClassData])
		}
		if p.CC != nil {
			p.CC.OnDequeue(now, pkt, p.queueBytes[ClassData])
		}
	}
	txTime := p.LinkRate.TxTime(pkt.Size)
	p.net.Engine.After(txTime, func() {
		p.busy = false
		p.TxBytes += uint64(pkt.Size)
		p.TxPackets++
		if pkt.Kind == KindData {
			p.TxDataBytes += uint64(pkt.Size)
		}
		peer, peerPort := p.PeerNode, p.PeerPort
		p.net.Engine.After(p.PropDelay, func() {
			peer.Arrive(pkt, peerPort)
		})
		p.kick()
	})
}

// sendPauseFrame delivers a PFC pause/resume to the link peer out of band
// (PFC frames preempt data in real hardware; we model them as a fixed
// serialization plus propagation delay that does not occupy the queue).
func (p *Port) sendPauseFrame(on bool) {
	pkt := &Packet{Kind: KindPause, Cls: ClassCtrl, Size: PauseBytes, PauseOn: on}
	delay := p.LinkRate.TxTime(PauseBytes) + p.PropDelay
	peer, peerPort := p.PeerNode, p.PeerPort
	p.net.Engine.After(delay, func() {
		peer.Arrive(pkt, peerPort)
	})
}

// Utilization returns the fraction of link capacity used by transmissions
// between two byte counters sampled interval apart.
func Utilization(txBytesDelta uint64, rate Rate, interval sim.Time) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(txBytesDelta) * 8 / (float64(rate) * interval.Seconds())
}
