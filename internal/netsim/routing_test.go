package netsim

import (
	"testing"
	"testing/quick"

	"rocc/internal/sim"
)

// diamond builds src — s0 — {s1, s2} — s3 — dst with equal-cost paths.
func diamond() (*sim.Engine, *Network, *Host, *Host, *Switch) {
	engine := sim.New()
	net := New(engine, 1)
	s0 := net.AddSwitch("s0", BufferConfig{})
	s1 := net.AddSwitch("s1", BufferConfig{})
	s2 := net.AddSwitch("s2", BufferConfig{})
	s3 := net.AddSwitch("s3", BufferConfig{})
	src := net.AddHost("src")
	dst := net.AddHost("dst")
	r := Gbps(40)
	net.Connect(src, s0, r, 1500)
	net.Connect(s0, s1, r, 1500)
	net.Connect(s0, s2, r, 1500)
	net.Connect(s1, s3, r, 1500)
	net.Connect(s2, s3, r, 1500)
	net.Connect(s3, dst, r, 1500)
	net.ComputeRoutes()
	return engine, net, src, dst, s0
}

func TestECMPEqualCostPathsDiscovered(t *testing.T) {
	_, _, _, dst, s0 := diamond()
	routes := s0.routes[dst.ID()]
	if len(routes) != 2 {
		t.Fatalf("s0 has %d equal-cost ports toward dst, want 2", len(routes))
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	// All packets of one flow must take the same path (no reordering).
	_, _, _, dst, s0 := diamond()
	pkt := func(flow FlowID) *Port {
		return s0.egressFor(&Packet{Flow: flow, Dst: dst.ID(), Kind: KindData})
	}
	for flow := FlowID(1); flow < 20; flow++ {
		first := pkt(flow)
		for i := 0; i < 10; i++ {
			if pkt(flow) != first {
				t.Fatalf("flow %d switched paths", flow)
			}
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	_, _, _, dst, s0 := diamond()
	counts := map[*Port]int{}
	for flow := FlowID(1); flow <= 1000; flow++ {
		counts[s0.egressFor(&Packet{Flow: flow, Dst: dst.ID()})]++
	}
	if len(counts) != 2 {
		t.Fatalf("flows hashed onto %d paths, want 2", len(counts))
	}
	for p, c := range counts {
		if c < 400 || c > 600 {
			t.Errorf("port %d got %d of 1000 flows; imbalanced", p.Index, c)
		}
	}
}

func TestEndToEndAcrossECMP(t *testing.T) {
	engine, net, src, dst, _ := diamond()
	f := net.StartFlow(src, dst, FlowConfig{Size: 1_000_000})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow across the diamond did not complete")
	}
}

func TestRoutingAllPairsReachable(t *testing.T) {
	// Random-ish multi-tier topology: every host pair must complete a
	// small flow.
	engine := sim.New()
	net := New(engine, 1)
	core := net.AddSwitch("core", BufferConfig{})
	var hosts []*Host
	for e := 0; e < 3; e++ {
		edge := net.AddSwitch("edge", BufferConfig{})
		net.Connect(edge, core, Gbps(100), 1500)
		for h := 0; h < 3; h++ {
			host := net.AddHost("h")
			net.Connect(host, edge, Gbps(40), 1500)
			hosts = append(hosts, host)
		}
	}
	net.ComputeRoutes()
	var flows []*Flow
	for i, a := range hosts {
		for j, b := range hosts {
			if i == j {
				continue
			}
			flows = append(flows, net.StartFlow(a, b, FlowConfig{Size: 5000}))
		}
	}
	engine.RunUntil(50 * sim.Millisecond)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d undelivered", i)
		}
	}
}

func TestNoRoutePanics(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b") // never connected
	net.Connect(a, sw, Gbps(40), 1500)
	net.ComputeRoutes()
	defer func() {
		if recover() == nil {
			t.Error("routing a packet to an unreachable host did not panic")
		}
	}()
	sw.Arrive(&Packet{Dst: b.ID(), Kind: KindData, Cls: ClassData, Size: 100}, 0)
	_ = engine
}

func TestDoubleNICPanics(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	net.Connect(a, sw, Gbps(40), 1500)
	defer func() {
		if recover() == nil {
			t.Error("second NIC on a host did not panic")
		}
	}()
	net.Connect(a, sw, Gbps(40), 1500)
}

// Property: ecmpHash distributes flows near-uniformly for any switch id.
func TestECMPHashUniformityProperty(t *testing.T) {
	f := func(swID uint32, nPorts uint8) bool {
		ports := int(nPorts%7) + 2
		counts := make([]int, ports)
		const flows = 2000
		for fl := 0; fl < flows; fl++ {
			counts[ecmpHash(uint64(fl), uint64(swID))%uint64(ports)]++
		}
		for _, c := range counts {
			expect := flows / ports
			if c < expect/2 || c > expect*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSwitchPortTo(t *testing.T) {
	_, net, src, _, s0 := diamond()
	if s0.PortTo(src) == nil {
		t.Error("PortTo(src) = nil")
	}
	other := net.AddHost("other")
	if s0.PortTo(other) != nil {
		t.Error("PortTo(unconnected) != nil")
	}
}
