package netsim

import (
	"sync/atomic"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// netMetrics holds the dataplane's resolved telemetry instruments. The
// zero value (all nil) is the disabled state: every method on a nil
// metric is a no-op, so the hot paths below instrument unconditionally.
type netMetrics struct {
	drops         *telemetry.Counter
	pfcPause      *telemetry.Counter
	pfcResume     *telemetry.Counter
	txPackets     *telemetry.Counter
	txBytes       *telemetry.Counter
	ecnMarks      *telemetry.Counter
	linkDownDrops *telemetry.Counter
	pfcStorm      *telemetry.Counter   // completed pauses >= PauseStormSpan
	queueDepth    *telemetry.Histogram // bytes, sampled at data enqueue
	pauseSpans    *telemetry.Histogram // ns per completed PFC pause

	// Topology-failure instruments (topofail.go).
	reconverges       *telemetry.Counter   // route recomputations completed
	blackholeDrops    *telemetry.Counter   // no-route drops in failure windows
	loopDrops         *telemetry.Counter   // hop-cap (TTL) drops
	stalePauseDrops   *telemetry.Counter   // pre-flap PFC frames discarded
	reconvergeLatency *telemetry.Histogram // ns from topology event to recompute

	// Defense instruments (internal/adversary seams).
	policedDrops         *telemetry.Counter // data denied by Police hooks
	watchdogDrops        *telemetry.Counter // data dropped on storm-disabled ports
	watchdogPauseIgnores *telemetry.Counter // PFC frames ignored while lossless off
}

// SetTelemetry attaches a metrics registry and an optional flight
// recorder to the network. Pass nil for either to leave it disabled;
// attaching after the simulation started is allowed (counters simply
// begin at the attach point). Gauges over engine and topology state are
// registered as lazy funcs, so they cost nothing until a snapshot.
func (n *Network) SetTelemetry(reg *telemetry.Registry, rec *telemetry.Recorder) {
	n.rec = rec
	n.tm = netMetrics{
		drops:         reg.Counter("netsim.drops"),
		pfcPause:      reg.Counter("netsim.pfc_pause_frames"),
		pfcResume:     reg.Counter("netsim.pfc_resume_frames"),
		txPackets:     reg.Counter("netsim.tx_packets"),
		txBytes:       reg.Counter("netsim.tx_bytes"),
		ecnMarks:      reg.Counter("netsim.ecn_marks"),
		linkDownDrops: reg.Counter("netsim.link_down_drops"),
		pfcStorm:      reg.Counter("netsim.pfc.pause_storm"),
		queueDepth:    reg.Histogram("netsim.queue_depth_bytes"),
		pauseSpans:    reg.Histogram("netsim.pfc_pause_ns"),

		reconverges:       reg.Counter("netsim.route.reconverges"),
		blackholeDrops:    reg.Counter("netsim.route.blackhole_drops"),
		loopDrops:         reg.Counter("netsim.route.loop_drops"),
		stalePauseDrops:   reg.Counter("netsim.pfc.stale_pause_drops"),
		reconvergeLatency: reg.Histogram("netsim.route.reconverge_ns"),

		policedDrops:         reg.Counter("netsim.police.drops"),
		watchdogDrops:        reg.Counter("netsim.watchdog.drops"),
		watchdogPauseIgnores: reg.Counter("netsim.watchdog.pause_ignores"),
	}
	if reg == nil {
		return
	}
	n.reg = reg
	// The sim.* gauges report fabric-wide truth: in sharded runs they
	// aggregate over every shard engine plus the global lane (the group
	// is consulted at snapshot time, so attach order vs. EnableSharding
	// does not matter).
	reg.GaugeFunc("sim.events_fired", func() float64 {
		if n.group != nil {
			return float64(n.group.Fired())
		}
		return float64(n.Engine.Fired())
	})
	reg.GaugeFunc("sim.events_pending", func() float64 {
		if n.group != nil {
			return float64(n.group.Pending())
		}
		return float64(n.Engine.Pending())
	})
	reg.GaugeFunc("sim.events_max_pending", func() float64 {
		if n.group != nil {
			return float64(n.group.MaxPending())
		}
		return float64(n.Engine.MaxPending())
	})
	reg.GaugeFunc("netsim.active_flows", func() float64 { return float64(n.ActiveFlowCount()) })
	reg.GaugeFunc("netsim.pfc.longest_pause_span_ns", func() float64 {
		return float64(n.LongestPauseSpan())
	})
	reg.GaugeFunc("netsim.buffer_max_bytes", func() float64 {
		max := 0
		for _, s := range n.switches {
			if s.MaxBufferUsed > max {
				max = s.MaxBufferUsed
			}
		}
		return float64(max)
	})
}

// TelemetryRegistry returns the registry attached with SetTelemetry, or
// nil when telemetry is disabled.
func (n *Network) TelemetryRegistry() *telemetry.Registry { return n.reg }

// TelemetryEvents drains the attached flight recorder's retained events,
// oldest first. Nil-safe: returns nil when no recorder is attached.
func (n *Network) TelemetryEvents() []telemetry.Event { return n.rec.Events() }

// Recorder returns the attached flight recorder (nil when disabled).
func (n *Network) Recorder() *telemetry.Recorder { return n.rec }

// recordPauseSpan files one completed PFC pause interval, tracking the
// longest span seen and counting pause storms (spans at or above
// Network.PauseStormSpan).
func (n *Network) recordPauseSpan(p *Port, start, end sim.Time) {
	span := end - start
	// Atomic CAS-max / add: ports on different shards complete pauses
	// concurrently. Reads happen on the global lane between windows.
	for {
		cur := sim.Time(atomic.LoadInt64((*int64)(&n.longestPause)))
		if span <= cur || atomic.CompareAndSwapInt64((*int64)(&n.longestPause), int64(cur), int64(span)) {
			break
		}
	}
	if n.PauseStormSpan > 0 && span >= n.PauseStormSpan {
		atomic.AddUint64(&n.pauseStorms, 1)
		n.tm.pfcStorm.Inc()
	}
	n.tm.pauseSpans.Observe(int64(end - start))
	n.rec.Record(telemetry.Event{
		At:   int64(start),
		Dur:  int64(end - start),
		Kind: telemetry.KindSpan,
		Cat:  "pfc",
		Name: "pause",
		Node: int64(p.owner.ID()),
		Tid:  int64(p.Index),
	})
}

// recordQueueDepth files the data-class backlog after an enqueue, both
// into the histogram and as a counter-track event for the Chrome trace.
// The event is deliberately not flow-tagged: queue depth is a port
// property, and skipping the per-flow ring keeps this per-packet hook to
// a single ring push.
func (n *Network) recordQueueDepth(p *Port) {
	q := p.queueBytes[ClassData]
	n.tm.queueDepth.Observe(int64(q))
	n.rec.Record(telemetry.Event{
		At:    int64(p.eng.Now()),
		Kind:  telemetry.KindCounter,
		Cat:   "netsim",
		Name:  "qdepth_bytes",
		Node:  int64(p.owner.ID()),
		Tid:   int64(p.Index),
		Value: float64(q),
	})
}

// recordDrop files a tail drop as an instant event.
func (n *Network) recordDrop(s *Switch, pkt *Packet) {
	n.tm.drops.Inc()
	n.rec.Record(telemetry.Event{
		At:    int64(s.eng.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "netsim",
		Name:  "drop",
		Node:  int64(s.id),
		Flow:  int64(pkt.Flow),
		Value: float64(pkt.Size),
	})
}

// recordPolicedDrop files a compliance-policer denial as an instant
// event, flow-tagged so quarantined flows are identifiable in traces.
func (n *Network) recordPolicedDrop(s *Switch, pkt *Packet) {
	n.tm.policedDrops.Inc()
	n.rec.Record(telemetry.Event{
		At:    int64(s.eng.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "adversary",
		Name:  "policed_drop",
		Node:  int64(s.id),
		Flow:  int64(pkt.Flow),
		Value: float64(pkt.Size),
	})
}

// recordWatchdogDrop files a storm-disabled-port data drop.
func (n *Network) recordWatchdogDrop(s *Switch, pkt *Packet) {
	n.tm.watchdogDrops.Inc()
	n.rec.Record(telemetry.Event{
		At:    int64(s.eng.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "adversary",
		Name:  "watchdog_drop",
		Node:  int64(s.id),
		Flow:  int64(pkt.Flow),
		Value: float64(pkt.Size),
	})
}

// EmitTo replays the tracer's retained ring into a telemetry recorder,
// bridging per-port debug traces into the unified event stream (and from
// there into the Chrome-trace exporter). Pause/resume pairs become
// instants here — the live path in SetPaused emits proper spans.
func (t *Tracer) EmitTo(rec *telemetry.Recorder) {
	for _, e := range t.Events() {
		kind := telemetry.KindCounter
		name := "qdepth_bytes"
		v := float64(e.QLen)
		if e.What == "pause" || e.What == "resume" || e.What == "drop" {
			kind = telemetry.KindInstant
			name = e.What
			v = float64(e.Bytes)
		}
		rec.Record(telemetry.Event{
			At:    int64(e.At),
			Kind:  kind,
			Cat:   "netsim",
			Name:  name,
			Node:  int64(e.Node),
			Tid:   int64(e.Port),
			Flow:  int64(e.Flow),
			Value: v,
		})
	}
}
