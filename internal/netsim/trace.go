package netsim

import (
	"fmt"
	"io"

	"rocc/internal/sim"
)

// TraceEvent is one recorded dataplane event.
type TraceEvent struct {
	At    sim.Time
	Node  NodeID
	Port  int
	What  string // "enqueue", "dequeue", "drop", "pause", "resume"
	Flow  FlowID
	Kind  Kind
	Bytes int
	QLen  int // data-class backlog after the event
}

// String renders the event on one line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%-12s node=%-3d port=%-2d %-7s flow=%-4d %-5s %4dB q=%d",
		e.At, e.Node, e.Port, e.What, e.Flow, e.Kind, e.Bytes, e.QLen)
}

// Tracer records dataplane events into a bounded ring buffer, so the
// recent history before an anomaly can be dumped without unbounded
// memory. Attach with Port.Tracer (per port) — typically on the
// bottleneck port under investigation.
type Tracer struct {
	ring  []TraceEvent
	next  int
	count uint64
}

// NewTracer creates a tracer retaining the last n events.
func NewTracer(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{ring: make([]TraceEvent, 0, n)}
}

// Record appends an event, evicting the oldest when full.
func (t *Tracer) Record(e TraceEvent) {
	t.count++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % cap(t.ring)
}

// Total returns how many events were recorded over the tracer's lifetime
// (including evicted ones).
func (t *Tracer) Total() uint64 { return t.count }

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	if len(t.ring) < cap(t.ring) {
		out := make([]TraceEvent, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]TraceEvent, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the retained events to w, oldest first.
//
// Deprecated: prefer EmitTo with a telemetry.Recorder and the
// Chrome-trace exporter (telemetry.WriteChromeTrace), which produce a
// loadable timeline instead of a text log. Dump remains for quick
// ad-hoc inspection.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}

// trace records an event if the port has a tracer attached.
func (p *Port) trace(what string, pkt *Packet) {
	if p.Tracer == nil {
		return
	}
	p.Tracer.Record(TraceEvent{
		At:    p.net.Engine.Now(),
		Node:  p.owner.ID(),
		Port:  p.Index,
		What:  what,
		Flow:  pkt.Flow,
		Kind:  pkt.Kind,
		Bytes: pkt.Size,
		QLen:  p.queueBytes[ClassData],
	})
}
