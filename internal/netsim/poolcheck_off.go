//go:build !poolcheck

package netsim

// PoolcheckEnabled reports whether this binary was built with the
// poolcheck lifecycle checker (-tags poolcheck).
const PoolcheckEnabled = false

// pcheck is the poolcheck lifecycle stamp. In normal builds it is empty
// and every stamp/check below compiles to nothing, so the release build
// pays zero bytes and zero branches for the debug machinery.
type pcheck struct{}

func (pkt *Packet) stampAcquire() {}
func (pkt *Packet) stampRelease() {}

// checkLive panics (poolcheck builds only) if pkt is a pooled packet that
// was already released — i.e. the caller is using a stale pointer.
func (pkt *Packet) checkLive(where string) {}
