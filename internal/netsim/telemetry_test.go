package netsim

import (
	"strings"
	"testing"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

func TestNetworkTelemetryCounters(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	reg := telemetry.New()
	rec := telemetry.NewRecorder(4096, 128, 64)
	net.SetTelemetry(reg, rec)
	f := net.StartFlow(a, b, FlowConfig{Size: 200 * 1000})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow not complete")
	}
	snap := reg.Snapshot()
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["netsim.tx_packets"] == 0 || counters["netsim.tx_bytes"] == 0 {
		t.Errorf("tx counters empty: %v", counters)
	}
	if counters["netsim.drops"] != 0 {
		t.Errorf("unexpected drops on an unlimited buffer: %v", counters["netsim.drops"])
	}
	var qdepth *telemetry.HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "netsim.queue_depth_bytes" {
			qdepth = &snap.Histograms[i].HistogramSnapshot
		}
	}
	if qdepth == nil || qdepth.Count == 0 {
		t.Fatal("queue depth histogram not populated")
	}
	// Engine gauges are lazy funcs over live state.
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["sim.events_fired"] != float64(engine.Fired()) {
		t.Errorf("events_fired gauge = %v, engine says %d", gauges["sim.events_fired"], engine.Fired())
	}
	if gauges["sim.events_max_pending"] < 1 {
		t.Error("max pending gauge not tracked")
	}
	// The recorder saw per-port queue-depth counter events.
	evs := net.TelemetryEvents()
	if len(evs) == 0 {
		t.Fatal("recorder captured no events")
	}
	var sb strings.Builder
	if err := telemetry.WriteChromeTrace(&sb, evs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "qdepth_bytes") {
		t.Error("chrome trace missing queue depth track")
	}
}

func TestTelemetryDropsAndPFC(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	reg := telemetry.New()
	net.SetTelemetry(reg, telemetry.NewRecorder(1024, 0, 0))
	// Tiny shared buffer with PFC on: the 40G->10G dumbbell overloads the
	// egress, forcing pauses; a second run with PFC off forces drops.
	sw := net.AddSwitch("s", BufferConfig{TotalBytes: 30 * 1000, PFCEnabled: true, PFCThreshold: 10 * 1000})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, Gbps(40), 1000*sim.Nanosecond)
	net.Connect(sw, b, Gbps(10), 1000*sim.Nanosecond)
	net.ComputeRoutes()
	f := net.StartFlow(a, b, FlowConfig{Size: -1})
	engine.RunUntil(2 * sim.Millisecond)
	f.Stop()
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["netsim.pfc_pause_frames"] == 0 {
		t.Error("no pause frames counted under overload")
	}
	if int(vals["netsim.pfc_pause_frames"]) != net.TotalPFCFrames() {
		t.Errorf("telemetry pause frames %v != switch counters %d",
			vals["netsim.pfc_pause_frames"], net.TotalPFCFrames())
	}
	// Completed pause spans landed in the histogram and the recorder.
	for _, h := range snap.Histograms {
		if h.Name == "netsim.pfc_pause_ns" && h.Count == 0 && vals["netsim.pfc_resume_frames"] > 0 {
			t.Error("resumes counted but no pause spans recorded")
		}
	}
	_ = sw
}

func TestTelemetryDropCounterMatchesSwitch(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	reg := telemetry.New()
	net.SetTelemetry(reg, nil)
	sw := net.AddSwitch("s", BufferConfig{TotalBytes: 5 * 1000}) // no PFC: tail drop
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, Gbps(40), 1000*sim.Nanosecond)
	net.Connect(sw, b, Gbps(10), 1000*sim.Nanosecond)
	net.ComputeRoutes()
	f := net.StartFlow(a, b, FlowConfig{Size: -1})
	engine.RunUntil(2 * sim.Millisecond)
	f.Stop()
	if sw.Drops == 0 {
		t.Fatal("test topology did not produce drops")
	}
	if got := reg.Counter("netsim.drops").Value(); got != uint64(sw.Drops) {
		t.Errorf("telemetry drops = %d, switch says %d", got, sw.Drops)
	}
}

func TestTracerEmitTo(t *testing.T) {
	engine, net, a, b, sw := pair(Gbps(40))
	tr := NewTracer(64)
	sw.Port(1).Tracer = tr
	f := net.StartFlow(a, b, FlowConfig{Size: 20 * 1000})
	engine.RunUntil(5 * sim.Millisecond)
	if !f.Done() || tr.Total() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	rec := telemetry.NewRecorder(256, 0, 0)
	tr.EmitTo(rec)
	evs := rec.Events()
	if uint64(len(evs)) != uint64(len(tr.Events())) {
		t.Fatalf("emitted %d events, tracer retained %d", len(evs), len(tr.Events()))
	}
	for _, e := range evs {
		if e.Cat != "netsim" || e.Name == "" {
			t.Fatalf("malformed bridged event: %+v", e)
		}
	}
}
