package netsim

import "rocc/internal/sim"

// NodeID identifies a node (host or switch) within a Network.
type NodeID int

// FlowID identifies a flow within a Network.
type FlowID int64

// Kind discriminates packet roles.
type Kind uint8

// Packet kinds.
const (
	KindData  Kind = iota // flow payload
	KindAck               // cumulative ACK (possibly NACK) from the receiver
	KindCNP               // congestion notification (RoCC switch CNP or DCQCN receiver CNP)
	KindPause             // PFC pause/resume frame (link-local)
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindCNP:
		return "cnp"
	case KindPause:
		return "pause"
	}
	return "unknown"
}

// Class is a strict-priority traffic class on a port.
type Class uint8

// Priority classes, highest first. Only ClassData is subject to PFC.
const (
	ClassCtrl Class = iota // CNPs and pause-adjacent control
	ClassAck               // ACKs/NACKs
	ClassData              // flow payload (the lossless RDMA class)
	NumClasses
)

// INTRecord is one hop's in-band network telemetry, as HPCC uses.
type INTRecord struct {
	TxBytes uint64   // cumulative bytes transmitted by the egress port
	QLen    int      // egress data-queue length in bytes at departure
	TS      sim.Time // departure timestamp
	Rate    Rate     // egress link bandwidth
}

// CPID identifies a congestion point: an egress port on a switch.
type CPID struct {
	Node NodeID
	Port int
}

// Zero is the CPID zero value, meaning "no congestion point".
func (c CPID) Zero() bool { return c == CPID{} }

// CNPInfo is the payload of a RoCC CNP (§3.3). RateUnits carries the fair
// rate in multiples of ΔF. In host-computed mode (§3.6) the CP instead
// ships its queue observation and the host runs the PI controller.
type CNPInfo struct {
	CP        CPID
	RateUnits int // fair rate, multiples of ΔF (switch-computed mode)

	// Host-computed mode (§3.6): raw queue observations in ΔQ units.
	// QOldUnits is the CP's previous observation, shipped because the
	// host does not see every update interval.
	HostComputed bool
	QCurUnits    int
	QOldUnits    int
}

// Packet is the unit of transmission. Packets are passed by pointer and
// owned by exactly one queue or in-flight event at a time; that owner is
// responsible for handing the packet on (enqueue, deliver) or releasing
// it back to the network pool (Network.ReleasePacket) at exactly one of
// the terminal points: sink consumption, drop, ACK/CNP absorption, or
// pause-frame delivery. Protocol hooks (FlowCC, PortCC, ReceiverHook)
// observe packets but never own them — see the contracts in cc.go.
type Packet struct {
	Flow FlowID
	Src  NodeID // originating node
	Dst  NodeID // destination node
	Kind Kind
	Cls  Class
	Size int // bytes on the wire, headers included

	// Data packets.
	Seq     int64 // byte offset of the first payload byte
	Payload int   // payload bytes carried
	Last    bool  // last byte of the flow is included

	// ACK packets.
	AckSeq  int64       // cumulative: receiver expects this byte next
	Nack    bool        // gap detected; go-back-N rewind requested
	EchoTS  sim.Time    // echo of the data packet's SendTS (RTT measurement)
	EchoINT []INTRecord // INT records echoed back to the sender (HPCC)

	// ECN.
	ECT bool // ECN-capable transport
	CE  bool // congestion experienced (set by marking switches)

	// In-band telemetry collected hop by hop (HPCC).
	INT []INTRecord

	// RoCC / DCQCN congestion notification payload.
	CNP *CNPInfo

	// PFC pause frames.
	PauseOn bool // true = Xoff, false = Xon/resume

	SendTS sim.Time // when the packet was first put on the wire

	ingress int // transient: arrival port at the switch currently buffering it
	hops    int // transient: switches traversed, for the loop-drop TTL

	// cnpStore is the pool-cycle-stable backing for CNP: pooled packets
	// point CNP at their own embedded record (see EnsureCNP) so carrying
	// a congestion payload costs no allocation.
	cnpStore CNPInfo

	// pooled marks packets acquired from the network pool. Only pooled
	// packets return to the free list on release and count toward
	// Network.OutstandingPackets; hand-built packets (tests, external
	// callers) pass through release unharmed and fall to the GC.
	pooled bool

	// pc is the poolcheck lifecycle stamp. Without the poolcheck build
	// tag it is an empty struct and every check compiles to nothing.
	pc pcheck

	// pool is the index of the shard-local pool that owns this packet
	// (always 0 unsharded). Cross-shard handoffs re-stamp it at the
	// mailbox drain, so acquire and release always touch the pool of the
	// shard currently holding the packet.
	pool int32
}

// EnsureCNP attaches a zeroed congestion payload to the packet, stored
// inline so pooled CNPs allocate nothing, and returns it for filling.
func (pkt *Packet) EnsureCNP() *CNPInfo {
	pkt.cnpStore = CNPInfo{}
	pkt.CNP = &pkt.cnpStore
	return pkt.CNP
}

// reset clears a packet for reuse, preserving the INT/EchoINT backing
// arrays (capacity survives pool cycles — the point of pooling them) and
// the poolcheck generation stamp.
func (pkt *Packet) reset() {
	intBuf := pkt.INT[:0]
	echoBuf := pkt.EchoINT[:0]
	pc := pkt.pc
	*pkt = Packet{INT: intBuf, EchoINT: echoBuf, pooled: true, pc: pc, pool: pkt.pool}
}

// dataPacket builds a payload packet for a flow from the network pool.
func dataPacket(f *Flow, seq int64, payload int, last bool, now sim.Time) *Packet {
	pkt := f.net.AcquirePacketFor(f.src)
	pkt.Flow = f.ID
	pkt.Src = f.srcID
	pkt.Dst = f.dstID
	pkt.Kind = KindData
	pkt.Cls = ClassData
	pkt.Size = payload + HeaderBytes
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.Last = last
	pkt.ECT = true
	pkt.SendTS = now
	return pkt
}
