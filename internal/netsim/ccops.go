package netsim

import "fmt"

// CongestionOps bundles everything one congestion-control scheme needs
// wired into a fabric — the shape of ns-3's RdmaCongestionOps, adapted to
// this simulator's split between switch-side attachments (PortCC),
// destination-side hooks (ReceiverHook) and per-flow controllers (FlowCC).
// A scheme implements it once; the experiments layer then composes any
// set of schemes on one network, attaching the union of their switch and
// receiver elements and handing each flow its own controller.
//
// Implementations are per-fabric descriptors, not singletons: one
// CongestionOps instance serves one network and may carry shared state
// (an RNG for probabilistic marking, a table of attached congestion
// points), so it must never be reused across networks.
type CongestionOps interface {
	// Name returns the scheme's canonical name ("RoCC", "DCQCN", ...),
	// used in conflict diagnostics and registry lookups.
	Name() string

	// Features reports the packet-level capacities the scheme needs from
	// the fabric. The composer applies the max over all schemes in play.
	Features() CCFeatures

	// AttachPort installs the scheme's switch-side element on one egress
	// port and returns it, or nil when the switch takes no action
	// (TIMELY). Placement on Port.CC is the caller's decision — a scheme
	// alone on a port is installed directly, schemes sharing a port go
	// behind a per-flow demultiplexer — so implementations must not
	// assume the returned value ends up on Port.CC verbatim.
	AttachPort(net *Network, sw *Switch, port *Port) PortCC

	// NewReceiver returns the scheme's destination-side hook for host h,
	// or nil when the receiver takes no protocol action.
	NewReceiver(net *Network, h *Host) ReceiverHook

	// NewFlowCC builds a per-flow controller for a flow sourced at src.
	NewFlowCC(net *Network, src *Host) FlowCC

	// AckEvery is the receiver ACK cadence flows of this scheme need:
	// 0 none, 1 per-packet (HPCC's INT echoes), N every N packets
	// (TIMELY's RTT sampling). Derived from the same configuration the
	// controller for src uses, so cadence follows the NIC rate.
	AckEvery(src *Host) int
}

// CCFeatures are the packet-level capacities a scheme requires. When
// several schemes share a fabric each capacity is sized to the maximum
// over the set.
type CCFeatures struct {
	// INTHops presizes pooled packets' INT/EchoINT backing arrays to this
	// hop count so per-hop stamping never grows an allocation in the hot
	// path. Zero for schemes that do not use INT.
	INTHops int

	// ExtraHeaderBytes is the per-data-packet wire overhead the scheme
	// imposes (HPCC's INT stack).
	ExtraHeaderBytes int

	// CNPClass is the traffic class the scheme's congestion notifications
	// travel in, when it generates any (UsesCNP). Informational: it
	// documents the contract and feeds conformance checks; the class on
	// the wire is set by the generating element.
	CNPClass Class

	// UsesCNP reports whether the scheme signals congestion with
	// KindCNP packets at all.
	UsesCNP bool
}

// ProtocolNamer is implemented by switch-side attachments that can report
// which scheme installed them. The experiments composer uses it to name
// both sides of a port double-attach conflict instead of overwriting
// silently.
type ProtocolNamer interface {
	CCProtocol() string
}

// CCProtocolName names a port attachment for diagnostics: the installing
// scheme when known, otherwise the concrete type.
func CCProtocolName(cc PortCC) string {
	if cc == nil {
		return "none"
	}
	if n, ok := cc.(ProtocolNamer); ok {
		return n.CCProtocol()
	}
	return fmt.Sprintf("%T", cc)
}
