package netsim

import (
	"testing"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// pauseCycle wires two switches back to back with a host behind each and
// forces a pause-wait cycle: each switch's port toward the other is
// paused, so neither inter-switch queue can drain — the topology of a
// PFC deadlock, held in place without needing real circular traffic.
func pauseCycle() (*sim.Engine, *Network, *Port, *Port) {
	engine := sim.New()
	net := New(engine, 1)
	buf := BufferConfig{PFCEnabled: true, PFCThreshold: 100 * KB}
	s0 := net.AddSwitch("s0", buf)
	s1 := net.AddSwitch("s1", buf)
	h0 := net.AddHost("h0")
	h1 := net.AddHost("h1")
	net.Connect(h0, s0, Gbps(40), 1500)
	net.Connect(h1, s1, Gbps(40), 1500)
	p01, p10 := net.Connect(s0, s1, Gbps(40), 1500)
	net.ComputeRoutes()
	p01.SetPaused(true)
	p10.SetPaused(true)
	return engine, net, p01, p10
}

// snapshotValue finds a named counter or gauge in a snapshot.
func snapshotValue(t *testing.T, vals []telemetry.NamedValue, name string) float64 {
	t.Helper()
	for _, v := range vals {
		if v.Name == name {
			return v.Value
		}
	}
	t.Fatalf("snapshot has no instrument %q", name)
	return 0
}

func TestLongestPauseSpanSeesInProgressPause(t *testing.T) {
	engine, net, _, _ := pauseCycle()
	reg := telemetry.New()
	net.SetTelemetry(reg, nil)

	engine.RunUntil(5 * sim.Millisecond)
	if got := net.LongestPauseSpan(); got < 5*sim.Millisecond {
		t.Fatalf("LongestPauseSpan = %v during a 5ms wedged pause cycle", got)
	}
	// The deadlock monitor and dashboards read the same gauge.
	snap := reg.Snapshot()
	if g := snapshotValue(t, snap.Gauges, "netsim.pfc.longest_pause_span_ns"); g < float64(5*sim.Millisecond) {
		t.Fatalf("longest_pause_span_ns gauge = %v, want >= 5ms worth of ns", g)
	}
	// The pauses never completed, so no storm was *counted* yet — the
	// gauge is what exposes a live deadlock.
	if net.PauseStorms() != 0 {
		t.Fatalf("PauseStorms = %d before any pause completed", net.PauseStorms())
	}
}

func TestPauseStormCountsCompletedLongPauses(t *testing.T) {
	engine, net, p01, p10 := pauseCycle()
	reg := telemetry.New()
	net.SetTelemetry(reg, nil)

	engine.RunUntil(3 * sim.Millisecond)
	p01.SetPaused(false) // cycle broken: both spans complete
	p10.SetPaused(false)
	if net.PauseStorms() != 2 {
		t.Fatalf("PauseStorms = %d after two 3ms pauses (threshold %v)", net.PauseStorms(), net.PauseStormSpan)
	}
	snap := reg.Snapshot()
	if c := snapshotValue(t, snap.Counters, "netsim.pfc.pause_storm"); c != 2 {
		t.Fatalf("pause_storm counter = %v, want 2", c)
	}
	// Completed spans persist in the gauge even after release.
	if got := net.LongestPauseSpan(); got < 3*sim.Millisecond {
		t.Fatalf("LongestPauseSpan = %v after 3ms completed pauses", got)
	}
}

func TestShortPausesAreNotStorms(t *testing.T) {
	engine, net, p01, _ := pauseCycle()
	engine.RunUntil(100 * sim.Microsecond)
	p01.SetPaused(false)
	if net.PauseStorms() != 0 {
		t.Fatalf("PauseStorms = %d for a 100µs pause", net.PauseStorms())
	}
}
