// Package netsim is a packet-level datacenter network model built on the
// discrete-event engine in internal/sim. It provides the substrate the
// RoCC paper's evaluation runs on:
//
//   - Links with configurable bandwidth and propagation delay.
//   - Ports with three strict-priority classes (control > ack > data), so
//     switch-originated CNPs are prioritized exactly as §3.3 requires.
//   - Switches with shared buffers, ECMP routing, optional tail-drop
//     (lossy) operation, and an IEEE 802.1Qbb PFC model with per-ingress
//     Xoff/Xon accounting and pause-frame counters.
//   - Hosts modeling an RDMA NIC: per-flow rate limiters or windows are
//     plugged in through the FlowCC interface, receivers through
//     ReceiverHook, and go-back-N loss recovery is available for the
//     lossy-network experiments (App. A.2).
//
// Congestion-control algorithms attach to egress ports via PortCC (ECN
// marking for DCQCN, INT stamping for HPCC, the RoCC congestion point) and
// to sender flows via FlowCC (the RoCC reaction point and all baselines).
package netsim
