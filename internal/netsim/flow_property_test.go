package netsim

import (
	"testing"
	"testing/quick"

	"rocc/internal/sim"
)

// Property: any flow size in (0, 1MB] is delivered exactly once, byte for
// byte, with and without reliability.
func TestFlowDeliveryProperty(t *testing.T) {
	f := func(sizeRaw uint32, reliable bool) bool {
		size := int64(sizeRaw%1_000_000) + 1
		engine, net, a, b, _ := pair(Gbps(40))
		fl := net.StartFlow(a, b, FlowConfig{Size: size, Reliable: reliable})
		engine.RunUntil(50 * sim.Millisecond)
		return fl.Done() && fl.DeliveredBytes() == size && fl.SentBytes() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with K concurrent equal flows from distinct sources through
// one bottleneck (no CC), the bottleneck is fully utilized and nothing is
// lost (PFC keeps it lossless).
func TestIncastLosslessProperty(t *testing.T) {
	f := func(kRaw uint8, seed int64) bool {
		k := int(kRaw%6) + 2
		engine := sim.New()
		net := New(engine, seed)
		sw := net.AddSwitch("s", BufferConfig{PFCEnabled: true, PFCThreshold: 200 * KB})
		dst := net.AddHost("dst")
		size := int64(300_000)
		var flows []*Flow
		for i := 0; i < k; i++ {
			h := net.AddHost("src")
			net.Connect(h, sw, Gbps(40), 1500)
			flows = append(flows, nil) // placeholder; filled after routing
		}
		net.Connect(sw, dst, Gbps(40), 1500)
		net.ComputeRoutes()
		for i, h := range net.Hosts()[1 : k+1] {
			flows[i] = net.StartFlow(h, dst, FlowConfig{Size: size})
		}
		engine.RunUntil(100 * sim.Millisecond)
		for _, fl := range flows {
			if fl == nil || !fl.Done() || fl.DeliveredBytes() != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the application-rate pacer never overshoots its budget by
// more than one packet's worth over any run prefix.
func TestAppPacerNeverExceedsBudget(t *testing.T) {
	f := func(mbpsRaw uint16, msRaw uint8) bool {
		mbps := float64(mbpsRaw%2000) + 50
		dur := sim.Time(int(msRaw%10)+1) * sim.Millisecond
		engine, net, a, b, _ := pair(Gbps(40))
		fl := net.StartFlow(a, b, FlowConfig{Size: -1, MaxRate: Mbps(mbps)})
		engine.RunUntil(dur)
		budget := mbps * 1e6 / 8 * dur.Seconds()
		sent := float64(fl.SentBytes())
		fl.Stop()
		// Wire overhead means payload sent is at most the wire budget.
		return sent <= budget+MTUPayload+HeaderBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestManyFlowsOneHostAllComplete(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	net.Connect(a, sw, Gbps(40), 1500)
	var dsts []*Host
	for i := 0; i < 8; i++ {
		d := net.AddHost("d")
		net.Connect(sw, d, Gbps(40), 1500)
		dsts = append(dsts, d)
	}
	net.ComputeRoutes()
	var flows []*Flow
	for i := 0; i < 64; i++ {
		flows = append(flows, net.StartFlow(a, dsts[i%len(dsts)], FlowConfig{Size: int64(1000 * (i + 1))}))
	}
	engine.RunUntil(50 * sim.Millisecond)
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d incomplete", i)
		}
	}
	if got := a.ActiveFlows(); got != 0 {
		t.Errorf("ActiveFlows = %d after completion", got)
	}
}

func TestAckEveryCadence(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	var acks int
	size := int64(16 * MTUPayload)
	f := net.StartFlow(a, b, FlowConfig{Size: size, AckEvery: 4, CC: ackCounter{&acks}})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// 16 packets, one ack per 4: exactly 4 acks.
	if acks != 4 {
		t.Errorf("acks = %d, want 4", acks)
	}
}

type ackCounter struct{ n *int }

func (a ackCounter) Allow(now sim.Time, payload int) (sim.Time, bool) { return now, true }
func (a ackCounter) OnSent(sim.Time, *Packet)                         {}
func (a ackCounter) OnAck(now sim.Time, pkt *Packet)                  { *a.n++ }
func (a ackCounter) OnCNP(sim.Time, *Packet)                          {}
func (a ackCounter) CurrentRate() Rate                                { return Rate(1e15) }

func TestLastPacketAlwaysAcked(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	var acks int
	// 5 packets with AckEvery=4: acks at packet 4 and at the last packet.
	f := net.StartFlow(a, b, FlowConfig{Size: int64(5 * MTUPayload), AckEvery: 4, CC: ackCounter{&acks}})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if acks != 2 {
		t.Errorf("acks = %d, want 2 (cadence + final)", acks)
	}
}

func TestEchoTSRoundTrip(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	var rtts []sim.Time
	cc := &rttProbe{engine: engine, rtts: &rtts}
	f := net.StartFlow(a, b, FlowConfig{Size: 100 * MTUPayload, AckEvery: 1, CC: cc})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if len(rtts) == 0 {
		t.Fatal("no RTT samples")
	}
	// Base RTT: 2 hops out (~200ns+1500ns each) + ack back. Must be
	// positive and under 100us on an idle fabric.
	for _, r := range rtts {
		if r <= 0 || r > 100*sim.Microsecond {
			t.Fatalf("implausible RTT %v", r)
		}
	}
}

type rttProbe struct {
	engine *sim.Engine
	rtts   *[]sim.Time
}

func (p *rttProbe) Allow(now sim.Time, payload int) (sim.Time, bool) { return now, true }
func (p *rttProbe) OnSent(sim.Time, *Packet)                         {}
func (p *rttProbe) OnAck(now sim.Time, pkt *Packet) {
	if pkt.EchoTS > 0 {
		*p.rtts = append(*p.rtts, now-pkt.EchoTS)
	}
}
func (p *rttProbe) OnCNP(sim.Time, *Packet) {}
func (p *rttProbe) CurrentRate() Rate       { return Rate(1e15) }
