package netsim

import (
	"testing"

	"rocc/internal/sim"
)

// congested builds a 2-source incast into a slow egress so queues grow.
func congested(buf BufferConfig) (*sim.Engine, *Network, []*Host, *Host, *Switch, *Port) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", buf)
	dst := net.AddHost("dst")
	var srcs []*Host
	for i := 0; i < 2; i++ {
		h := net.AddHost("src")
		net.Connect(h, sw, Gbps(40), 1500)
		srcs = append(srcs, h)
	}
	egress, _ := net.Connect(sw, dst, Gbps(40), 1500)
	net.ComputeRoutes()
	return engine, net, srcs, dst, sw, egress
}

func TestPFCPausesAndResumes(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 100 * KB,
	})
	var flows []*Flow
	for _, s := range srcs {
		flows = append(flows, net.StartFlow(s, dst, FlowConfig{Size: -1}))
	}
	engine.RunUntil(sim.Millisecond)
	if sw.PauseFrames == 0 {
		t.Fatal("overloaded switch sent no pause frames")
	}
	if sw.ResumeFrames == 0 {
		t.Fatal("no resume frames despite ongoing drain")
	}
	// PFC must keep the buffer bounded: shared trigger at 2x threshold,
	// plus at most a propagation+serialization skid.
	if sw.MaxBufferUsed > 2*100*KB+50*KB {
		t.Errorf("buffer reached %d bytes despite PFC", sw.MaxBufferUsed)
	}
	// Lossless: nothing dropped.
	if sw.Drops != 0 {
		t.Errorf("drops = %d with PFC enabled", sw.Drops)
	}
	for _, f := range flows {
		f.Stop()
	}
}

func TestPFCLossless(t *testing.T) {
	// Every byte sent during a PFC storm must still arrive.
	engine, net, srcs, dst, _, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 50 * KB,
	})
	size := int64(2_000_000)
	f1 := net.StartFlow(srcs[0], dst, FlowConfig{Size: size})
	f2 := net.StartFlow(srcs[1], dst, FlowConfig{Size: size})
	engine.RunUntil(20 * sim.Millisecond)
	if !f1.Done() || !f2.Done() {
		t.Fatal("flows did not complete under PFC")
	}
	if f1.DeliveredBytes() != size || f2.DeliveredBytes() != size {
		t.Error("bytes lost despite lossless configuration")
	}
}

func TestHostRespectsPause(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 50 * KB,
	})
	f := net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	// Run until a pause fires, then verify the host NIC is paused.
	for sw.PauseFrames == 0 && engine.Now() < 10*sim.Millisecond {
		engine.Step()
	}
	if sw.PauseFrames == 0 {
		t.Fatal("no pause generated")
	}
	// Advance past the pause frame's flight time.
	engine.RunUntil(engine.Now() + 10*sim.Microsecond)
	paused := srcs[0].NIC().Paused() || srcs[1].NIC().Paused()
	if !paused {
		t.Error("no source NIC paused after Xoff")
	}
	f.Stop()
}

func TestLossyTailDrop(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		TotalBytes: 50 * KB,
	})
	f1 := net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	f2 := net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	engine.RunUntil(sim.Millisecond)
	if sw.Drops == 0 {
		t.Error("no drops despite tiny lossy buffer")
	}
	if sw.MaxBufferUsed > 50*KB {
		t.Errorf("buffer %d exceeded its cap", sw.MaxBufferUsed)
	}
	if sw.PauseFrames != 0 {
		t.Error("pause frames sent with PFC disabled")
	}
	f1.Stop()
	f2.Stop()
}

func TestGoBackNRecoversFromLoss(t *testing.T) {
	engine, net, srcs, dst, _, _ := congested(BufferConfig{
		TotalBytes: 30 * KB, // small enough to force drops
	})
	size := int64(500_000)
	f1 := net.StartFlow(srcs[0], dst, FlowConfig{Size: size, Reliable: true, RTO: 200 * sim.Microsecond})
	f2 := net.StartFlow(srcs[1], dst, FlowConfig{Size: size, Reliable: true, RTO: 200 * sim.Microsecond})
	engine.RunUntil(200 * sim.Millisecond)
	if !f1.Done() || !f2.Done() {
		t.Fatalf("reliable flows incomplete: %d/%d and %d/%d bytes",
			f1.DeliveredBytes(), size, f2.DeliveredBytes(), size)
	}
	if net.RetxBytesTotal == 0 {
		t.Error("no retransmissions recorded despite drops")
	}
}

func TestGoBackNWithoutLossHasNoRetx(t *testing.T) {
	engine, net, a, b, _ := func() (*sim.Engine, *Network, *Host, *Host, *Switch) {
		return pair(Gbps(40))
	}()
	f := net.StartFlow(a, b, FlowConfig{Size: 300_000, Reliable: true})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if f.RetxBytes != 0 {
		t.Errorf("spurious retransmissions: %d bytes", f.RetxBytes)
	}
}

func TestBufferConfigDefaults(t *testing.T) {
	b := BufferConfig{PFCThreshold: 500 * KB}
	if got := b.resume(); got != 480*KB {
		t.Errorf("resume = %d, want threshold-20KB", got)
	}
	b.PFCResume = 100
	if b.resume() != 100 {
		t.Error("explicit resume ignored")
	}
	tiny := BufferConfig{PFCThreshold: 30 * KB}
	if got := tiny.resume(); got != 15*KB {
		t.Errorf("tiny resume = %d, want half threshold", got)
	}
	s := BufferConfig{PFCThreshold: 100}
	if s.sharedXoff() != 200 {
		t.Errorf("sharedXoff = %d, want 2x threshold", s.sharedXoff())
	}
	s.SharedFactor = 3
	if s.sharedXoff() != 300 {
		t.Errorf("sharedXoff = %d with factor 3", s.sharedXoff())
	}
}

// TestPFCStateClearedByLinkFlap is the regression test for pause state
// surviving a link flap: 802.1Qbb pause is link-local, so when a link
// drops and re-establishes, the receiver's pause deadline and the
// sender's Xoff bookkeeping must both reset. Otherwise a resume frame
// lost to the outage wedges the host paused forever.
func TestPFCStateClearedByLinkFlap(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 40 * KB,
	})
	net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	for sw.PauseFrames == 0 && engine.Now() < 10*sim.Millisecond {
		engine.Step()
	}
	engine.RunUntil(engine.Now() + 10*sim.Microsecond)
	var host *Host
	for _, s := range srcs {
		if s.NIC().Paused() {
			host = s
		}
	}
	if host == nil {
		t.Fatal("no source paused after Xoff")
	}
	hostPort, swPort := host.NIC(), sw.PortTo(host)
	if !sw.pausedIngress[swPort.Index] {
		t.Fatal("switch has no Xoff record for the paused ingress")
	}
	// Flap: both ends down (the outage would eat any resume frame), then
	// back up.
	swPort.SetLinkDown(true)
	hostPort.SetLinkDown(true)
	engine.RunUntil(engine.Now() + 100*sim.Microsecond)
	swPort.SetLinkDown(false)
	hostPort.SetLinkDown(false)
	if hostPort.Paused() {
		t.Error("pause state survived the link flap")
	}
	if sw.pausedIngress[swPort.Index] {
		t.Error("switch Xoff record survived the link flap")
	}
	// The incast is still running, so congestion must re-pause the
	// ingress through the normal path — the cleared record may not block
	// future pause generation.
	before := sw.PauseFrames
	engine.RunUntil(engine.Now() + sim.Millisecond)
	if sw.PauseFrames == before {
		t.Error("no re-pause after the flap despite ongoing congestion")
	}
}

func TestPauseFrameStopsOnlyData(t *testing.T) {
	engine, net, srcs, dst, sw, egress := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 40 * KB,
	})
	f := net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	for sw.PauseFrames == 0 && engine.Now() < 10*sim.Millisecond {
		engine.Step()
	}
	engine.RunUntil(engine.Now() + 10*sim.Microsecond)
	// A CNP injected now must still reach the (paused) source.
	before := srcs[0].CNPsRx
	sw.Inject(&Packet{Flow: f.ID, Src: sw.ID(), Dst: srcs[0].ID(), Kind: KindCNP, Cls: ClassCtrl, Size: CNPBytes})
	engine.RunUntil(engine.Now() + 100*sim.Microsecond)
	if srcs[0].CNPsRx != before+1 {
		t.Error("control traffic blocked by PFC pause")
	}
	_ = egress
}
