package netsim

import "rocc/internal/sim"

// BufferConfig describes the shared packet buffer of a switch and its PFC
// behaviour. The paper's defaults (per §6): 500 KB PFC threshold for
// 40 Gb/s fabrics and 800 KB for 100 Gb/s.
type BufferConfig struct {
	// TotalBytes caps data-class buffering across all egress queues.
	// Zero means unlimited (no drops), the paper's lossless default.
	TotalBytes int

	// PFCEnabled turns on per-ingress pause generation.
	PFCEnabled bool

	// PFCThreshold is the per-ingress Xoff watermark in bytes.
	PFCThreshold int

	// PFCResume is the Xon watermark. Zero defaults to PFCThreshold - 20 KB
	// (floored at half the threshold).
	PFCResume int

	// SharedFactor scales the shared-buffer Xoff trigger: when total
	// data-class occupancy exceeds SharedFactor × PFCThreshold, every
	// contributing ingress is paused (shared-buffer pressure). Zero
	// defaults to 2. Per-ingress accounting still pauses an individual
	// ingress at PFCThreshold.
	SharedFactor int
}

func (b BufferConfig) sharedXoff() int {
	f := b.SharedFactor
	if f <= 0 {
		f = 2
	}
	return f * b.PFCThreshold
}

func (b BufferConfig) sharedXon() int {
	return b.sharedXoff() - (b.PFCThreshold - b.resume())
}

func (b BufferConfig) resume() int {
	if b.PFCResume > 0 {
		return b.PFCResume
	}
	r := b.PFCThreshold - 20*KB
	if min := b.PFCThreshold / 2; r < min {
		r = min
	}
	return r
}

// Switch is a shared-buffer output-queued switch with ECMP routing, an
// 802.1Qbb PFC model, and per-port congestion-control attachments.
type Switch struct {
	net    *Network
	id     NodeID
	Name   string
	ports  []*Port
	routes map[NodeID][]int // destination -> equal-cost egress ports
	Buffer BufferConfig

	bufferUsed    int
	ingressUsage  []int
	pausedIngress []bool
	sharedOver    bool // shared-buffer occupancy above the PFC threshold

	// InjectGate, when set, vetoes locally generated packets (RoCC CNPs)
	// before they enter the egress pipeline: the fault layer uses it for
	// CP stall windows and probabilistic feedback loss. Nil admits all.
	InjectGate func(pkt *Packet) bool

	// Police, when set, adjudicates every data packet after egress
	// resolution but before any buffer accounting: returning false makes
	// this the packet's terminal point (a policed drop, counted
	// separately from tail drops). The adversary compliance policer uses
	// it for per-flow byte metering and quarantine enforcement. Nil — the
	// default — leaves the admission path untouched.
	Police func(now sim.Time, pkt *Packet, inPort int, egress *Port) bool

	// failed marks a switch killed by FailSwitch: its table is cleared and
	// ComputeRoutes skips it until RestoreSwitch (see topofail.go).
	failed bool

	// eng is the engine this switch's events run on (the network engine
	// until EnableSharding re-homes the switch onto a shard).
	eng   *sim.Engine
	shard int

	// Counters.
	PauseFrames   int // Xoff frames sent (the paper's "PFC activations")
	ResumeFrames  int
	Drops         int
	MaxBufferUsed int

	// BlackholeDrops counts packets with no surviving route (topology
	// failure windows); LoopDrops counts packets that exceeded the hop cap.
	BlackholeDrops uint64
	LoopDrops      uint64

	// PolicedDrops counts data packets denied by the Police hook;
	// WatchdogDrops counts data packets discarded because their egress
	// port's lossless class was disabled by a PFC storm watchdog
	// (including stuck-queue flushes). Both are deliberate defensive
	// drops, kept separate from Drops so lossless-mode invariants still
	// hold when defenses fire.
	PolicedDrops  int
	WatchdogDrops int
}

// ID returns the switch's node id.
func (s *Switch) ID() NodeID { return s.id }

// Engine returns the engine this switch's events run on: the network
// engine, or the switch's shard engine in sharded runs. Switch-side
// congestion points and defense tickers must schedule their timers here.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// Ports returns the switch's ports.
func (s *Switch) Ports() []*Port { return s.ports }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// PortTo returns the first port whose link peer is the given node, or nil.
func (s *Switch) PortTo(peer Node) *Port {
	for _, p := range s.ports {
		if p.PeerNode == peer {
			return p
		}
	}
	return nil
}

// BufferUsed returns the current data-class buffer occupancy in bytes.
func (s *Switch) BufferUsed() int { return s.bufferUsed }

func (s *Switch) addPort(p *Port) {
	p.Index = len(s.ports)
	p.OnDequeue = s.onDataDequeue
	s.ports = append(s.ports, p)
	s.ingressUsage = append(s.ingressUsage, 0)
	s.pausedIngress = append(s.pausedIngress, false)
}

// Arrive implements Node. Pause frames are absorbed (and released) here;
// everything else is handed on to an egress queue, except tail drops,
// blackhole drops and loop drops, which are the packet's terminal point.
func (s *Switch) Arrive(pkt *Packet, inPort int) {
	pkt.checkLive("switch arrive")
	if pkt.Kind == KindPause {
		if !s.ports[inPort].acceptPause(pkt) {
			s.net.ReleasePacket(pkt)
			return
		}
		s.ports[inPort].SetPaused(pkt.PauseOn)
		s.net.ReleasePacket(pkt)
		return
	}
	pkt.hops++
	if pkt.hops > s.net.maxHops() {
		s.LoopDrops++
		s.net.recordLoopDrop(s, pkt)
		s.net.ReleasePacket(pkt)
		return
	}
	egress := s.egressFor(pkt)
	if egress == nil {
		if s.net.routesDynamic {
			// A topology event removed every route for this destination:
			// the packet falls into the blackhole window and is released
			// here, before any buffer accounting.
			s.BlackholeDrops++
			s.net.recordBlackhole(s, pkt)
			s.net.ReleasePacket(pkt)
			return
		}
		panic("netsim: switch " + s.Name + " has no route for packet destination")
	}
	if pkt.Kind != KindData {
		// Control and ACK classes are small and exempt from buffer and
		// PFC accounting; they ride the high-priority queues.
		egress.Enqueue(pkt)
		return
	}
	if egress.losslessOff {
		// A storm watchdog disabled the lossless class on this egress:
		// data headed into the wedged downstream is dropped instead of
		// parked behind a pause that will never lift.
		s.WatchdogDrops++
		s.net.recordWatchdogDrop(s, pkt)
		s.net.ReleasePacket(pkt)
		return
	}
	if s.Police != nil && !s.Police(s.eng.Now(), pkt, inPort, egress) {
		s.PolicedDrops++
		s.net.recordPolicedDrop(s, pkt)
		s.net.ReleasePacket(pkt)
		return
	}
	if s.Buffer.TotalBytes > 0 && s.bufferUsed+pkt.Size > s.Buffer.TotalBytes {
		s.Drops++
		s.net.recordDrop(s, pkt)
		s.net.ReleasePacket(pkt)
		return
	}
	s.bufferUsed += pkt.Size
	if s.bufferUsed > s.MaxBufferUsed {
		s.MaxBufferUsed = s.bufferUsed
	}
	pkt.ingress = inPort
	s.ingressUsage[inPort] += pkt.Size
	if s.Buffer.PFCEnabled {
		// 802.1Qbb pauses an upstream sender when the buffer it is
		// responsible for crosses Xoff. We model both triggers real
		// switches use: per-ingress accounting, and shared-buffer
		// pressure (which pauses every contributing ingress).
		if !s.sharedOver && s.bufferUsed >= s.Buffer.sharedXoff() {
			s.sharedOver = true
		}
		if !s.pausedIngress[inPort] &&
			(s.sharedOver || s.ingressUsage[inPort] >= s.Buffer.PFCThreshold) {
			s.pausedIngress[inPort] = true
			s.PauseFrames++
			s.net.tm.pfcPause.Inc()
			s.ports[inPort].sendPauseFrame(true)
		}
	}
	if egress.CC != nil {
		egress.CC.OnEnqueue(s.eng.Now(), pkt, egress.QueueBytes(ClassData)+pkt.Size)
	}
	egress.Enqueue(pkt)
}

// onDataDequeue releases buffer and PFC accounting when a data packet
// starts transmission on any egress port.
func (s *Switch) onDataDequeue(pkt *Packet, qlen int) {
	s.bufferUsed -= pkt.Size
	in := pkt.ingress
	s.ingressUsage[in] -= pkt.Size
	if !s.Buffer.PFCEnabled {
		return
	}
	if s.sharedOver && s.bufferUsed <= s.Buffer.sharedXon() {
		// Shared pressure released: resume every ingress that is also
		// individually below its watermark.
		s.sharedOver = false
		for i := range s.pausedIngress {
			if s.pausedIngress[i] && s.ingressUsage[i] <= s.Buffer.resume() {
				s.resume(i)
			}
		}
		return
	}
	if s.pausedIngress[in] && !s.sharedOver && s.ingressUsage[in] <= s.Buffer.resume() {
		s.resume(in)
	}
}

func (s *Switch) resume(in int) {
	s.pausedIngress[in] = false
	s.ResumeFrames++
	s.net.tm.pfcResume.Inc()
	s.ports[in].sendPauseFrame(false)
}

// FlushPortData discards every packet parked in one egress port's data
// queue, running the normal dequeue accounting (buffer occupancy, PFC
// resume) for each so upstream pause state unwinds exactly as if the
// packets had been transmitted. The PFC storm watchdog calls it when it
// disables the lossless class on a port: the stuck queue is the storm's
// hostage, and dropping it is the deployed mitigation. Returns the
// packet and byte counts flushed.
func (s *Switch) FlushPortData(p *Port) (pkts, bytes int) {
	for p.queues[ClassData].Len() > 0 {
		pkt := p.queues[ClassData].Pop()
		p.queueBytes[ClassData] -= pkt.Size
		pkts++
		bytes += pkt.Size
		s.onDataDequeue(pkt, p.queueBytes[ClassData])
		s.WatchdogDrops++
		s.net.recordWatchdogDrop(s, pkt)
		s.net.ReleasePacket(pkt)
	}
	return pkts, bytes
}

// egressFor picks the egress port for a packet, hashing flows across
// equal-cost paths (ECMP).
func (s *Switch) egressFor(pkt *Packet) *Port {
	choices := s.routes[pkt.Dst]
	switch len(choices) {
	case 0:
		return nil
	case 1:
		return s.ports[choices[0]]
	}
	h := ecmpHash(uint64(pkt.Flow), uint64(s.id))
	return s.ports[choices[h%uint64(len(choices))]]
}

// resetPFC clears the sent-Xoff record for one ingress after its link
// re-established (the peer's pause state did not survive the flap). If
// the ingress is still over its watermark the next data arrival re-sends
// Xoff through the normal path.
func (s *Switch) resetPFC(portIndex int) {
	s.pausedIngress[portIndex] = false
}

// Inject routes a locally generated packet (a RoCC CNP) out of the switch.
// A gate veto is the packet's terminal point.
func (s *Switch) Inject(pkt *Packet) {
	if s.InjectGate != nil && !s.InjectGate(pkt) {
		s.net.ReleasePacket(pkt)
		return
	}
	egress := s.egressFor(pkt)
	if egress == nil {
		if s.net.routesDynamic {
			s.BlackholeDrops++
			s.net.recordBlackhole(s, pkt)
			s.net.ReleasePacket(pkt)
			return
		}
		panic("netsim: switch " + s.Name + " has no route for injected packet")
	}
	egress.Enqueue(pkt)
}

// ecmpHash mixes a flow id and switch id into a uniform 64-bit value
// (splitmix64 finalizer), so a flow hashes independently at each hop.
func ecmpHash(flow, sw uint64) uint64 {
	x := flow*0x9e3779b97f4a7c15 + sw
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
