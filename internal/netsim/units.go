package netsim

import (
	"fmt"

	"rocc/internal/sim"
)

// Rate is a bandwidth or sending rate in bits per second.
type Rate float64

// Gbps returns a Rate of g gigabits per second.
func Gbps(g float64) Rate { return Rate(g * 1e9) }

// Mbps returns a Rate of m megabits per second.
func Mbps(m float64) Rate { return Rate(m * 1e6) }

// Gbps returns the rate expressed in gigabits per second.
func (r Rate) Gbps() float64 { return float64(r) / 1e9 }

// Mbps returns the rate expressed in megabits per second.
func (r Rate) Mbps() float64 { return float64(r) / 1e6 }

// TxTime returns the serialization delay of a packet of the given size.
func (r Rate) TxTime(bytes int) sim.Time {
	if r <= 0 {
		panic("netsim: TxTime on non-positive rate")
	}
	ns := float64(bytes) * 8 * 1e9 / float64(r)
	t := sim.Time(ns)
	if float64(t) < ns {
		t++
	}
	return t
}

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fGb/s", r.Gbps())
	case r >= 1e6:
		return fmt.Sprintf("%.2fMb/s", r.Mbps())
	default:
		return fmt.Sprintf("%.0fb/s", float64(r))
	}
}

// Wire and protocol sizing. Data payloads are segmented at MTUPayload
// bytes; every packet carries HeaderBytes of framing (Ethernet + IP + UDP +
// transport headers, approximating RoCEv2 overhead).
const (
	MTUPayload  = 1000 // max payload bytes per data packet
	HeaderBytes = 48   // per-packet header overhead on the wire
	AckBytes    = 64   // wire size of an ACK/NACK
	CNPBytes    = 64   // wire size of a congestion notification packet
	PauseBytes  = 64   // wire size of a PFC pause frame
	KB          = 1000 // queue thresholds in the paper use decimal KB
)
