package netsim

import (
	"testing"

	"rocc/internal/sim"
)

func TestPacketPoolRecyclesStructs(t *testing.T) {
	net := New(sim.New(), 1)
	p1 := net.AcquirePacket()
	if !p1.pooled {
		t.Fatal("acquired packet not marked pooled")
	}
	p1.Seq = 99
	p1.INT = append(p1.INT, INTRecord{QLen: 7})
	net.ReleasePacket(p1)
	p2 := net.AcquirePacket()
	if p2 != p1 {
		t.Fatal("pool did not reuse the released struct")
	}
	if p2.Seq != 0 || len(p2.INT) != 0 {
		t.Fatalf("recycled packet not reset: seq=%d len(INT)=%d", p2.Seq, len(p2.INT))
	}
	if cap(p2.INT) == 0 {
		t.Fatal("INT capacity did not survive the pool cycle")
	}
	if net.PacketSlots() != 1 {
		t.Fatalf("PacketSlots = %d, want 1", net.PacketSlots())
	}
}

func TestPacketPoolAccounting(t *testing.T) {
	net := New(sim.New(), 1)
	a := net.AcquirePacket()
	b := net.AcquirePacket()
	if got := net.OutstandingPackets(); got != 2 {
		t.Fatalf("outstanding = %d, want 2", got)
	}
	net.ReleasePacket(a)
	if got := net.OutstandingPackets(); got != 1 {
		t.Fatalf("outstanding = %d, want 1", got)
	}
	net.ReleasePacket(b)
	if got := net.OutstandingPackets(); got != 0 {
		t.Fatalf("outstanding = %d, want 0", got)
	}
	if net.PacketsAcquired() != 2 {
		t.Fatalf("acquired = %d, want 2", net.PacketsAcquired())
	}
}

func TestReleaseUnpooledPacketIsNoOp(t *testing.T) {
	net := New(sim.New(), 1)
	net.ReleasePacket(nil)
	net.ReleasePacket(&Packet{Seq: 5}) // hand-built, as tests construct them
	if got := net.OutstandingPackets(); got != 0 {
		t.Fatalf("outstanding = %d after unpooled releases, want 0", got)
	}
	if p := net.AcquirePacket(); p.Seq != 0 {
		t.Fatal("hand-built packet leaked into the free list")
	}
}

func TestEnsureCNPIsInline(t *testing.T) {
	net := New(sim.New(), 1)
	pkt := net.AcquirePacket()
	info := pkt.EnsureCNP()
	info.RateUnits = 42
	if pkt.CNP != &pkt.cnpStore || pkt.CNP.RateUnits != 42 {
		t.Fatal("EnsureCNP did not attach the embedded store")
	}
	net.ReleasePacket(pkt)
	again := net.AcquirePacket()
	if again.CNP != nil || again.cnpStore.RateUnits != 0 {
		t.Fatal("CNP payload survived the pool cycle")
	}
}

func TestClonePacketIsIndependent(t *testing.T) {
	net := New(sim.New(), 1)
	orig := net.AcquirePacket()
	orig.Flow = 3
	orig.INT = append(orig.INT, INTRecord{QLen: 1})
	orig.EnsureCNP().RateUnits = 7

	c := net.ClonePacket(orig)
	if c.Flow != 3 || len(c.INT) != 1 || c.CNP == nil || c.CNP.RateUnits != 7 {
		t.Fatalf("clone lost fields: %+v", c)
	}
	if c.CNP == orig.CNP {
		t.Fatal("clone shares the original's CNP storage")
	}
	// Releasing and recycling the original must not disturb the clone.
	net.ReleasePacket(orig)
	reused := net.AcquirePacket()
	reused.INT = append(reused.INT, INTRecord{QLen: 99})
	reused.EnsureCNP().RateUnits = 99
	if c.INT[0].QLen != 1 || c.CNP.RateUnits != 7 {
		t.Fatal("recycling the original corrupted the clone")
	}
	if got := net.OutstandingPackets(); got != 2 {
		t.Fatalf("outstanding = %d, want 2 (clone + reused)", got)
	}
}

func TestUnpooledCloneIsIndependent(t *testing.T) {
	net := New(sim.New(), 1)
	orig := net.AcquirePacket()
	orig.EnsureCNP().RateUnits = 5
	c := orig.Clone()
	if c.pooled {
		t.Fatal("Packet.Clone produced a pooled packet")
	}
	net.ReleasePacket(orig)
	net.AcquirePacket().EnsureCNP().RateUnits = 88
	if c.CNP.RateUnits != 5 {
		t.Fatal("recycling the original corrupted the unpooled clone")
	}
	net.ReleasePacket(c) // must be a no-op
	if net.OutstandingPackets() != 1 {
		t.Fatal("releasing an unpooled clone changed the ledger")
	}
}

func TestSetPoolingOffAllocatesFresh(t *testing.T) {
	net := New(sim.New(), 1)
	net.SetPooling(false)
	a := net.AcquirePacket()
	if a.pooled {
		t.Fatal("pooling disabled but packet marked pooled")
	}
	net.ReleasePacket(a)
	if b := net.AcquirePacket(); b == a {
		t.Fatal("pooling disabled but struct was reused")
	}
	if net.OutstandingPackets() != 0 {
		t.Fatal("disabled pool kept accounting")
	}
}

func TestAcquireReleaseZeroAlloc(t *testing.T) {
	net := New(sim.New(), 1)
	net.ReleasePacket(net.AcquirePacket()) // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		pkt := net.AcquirePacket()
		pkt.INT = append(pkt.INT, INTRecord{})
		net.ReleasePacket(pkt)
	})
	if allocs != 0 {
		t.Fatalf("acquire/release allocated %.1f objects per cycle, want 0", allocs)
	}
}

// TestPoolSteadyStateOnLink drives the canonical one-switch saturated
// topology and asserts the pool reaches a fixed point: packet structs
// stop being allocated once the pipeline is primed, and the ledger
// balances after the flow drains.
func TestPoolSteadyStateOnLink(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	c := net.AddHost("c")
	net.Connect(a, sw, Gbps(100), 1500*sim.Nanosecond)
	net.Connect(sw, c, Gbps(100), 1500*sim.Nanosecond)
	net.ComputeRoutes()
	f := net.StartFlow(a, c, FlowConfig{Size: -1})
	for i := 0; i < 50000; i++ {
		engine.Step()
	}
	slots := net.PacketSlots()
	for i := 0; i < 50000; i++ {
		engine.Step()
	}
	if grew := net.PacketSlots() - slots; grew != 0 {
		t.Fatalf("pool allocated %d new packets in steady state", grew)
	}
	if net.PacketsAcquired() < 1000 {
		t.Fatalf("only %d acquisitions; topology not exercising the pool", net.PacketsAcquired())
	}
	f.Stop()
	engine.Run()
	if live := net.OutstandingPackets(); live != int64(net.QueuedPackets()) {
		t.Fatalf("after drain: %d outstanding vs %d queued (leak or double release)",
			live, net.QueuedPackets())
	}
}
