package netsim

import "rocc/internal/sim"

// Host models an RDMA endpoint: a NIC with per-flow rate limiters
// (reaction points), a pull-based packet scheduler, and receiver logic with
// optional go-back-N reliability.
//
// The NIC never queues data internally: when its link goes idle it pulls
// the next packet from the eligible flow whose pacing deadline is earliest,
// matching how an RDMA NIC arbitrates between rate-limited queue pairs.
type Host struct {
	net  *Network
	id   NodeID
	Name string
	port *Port

	// RPDelay is the NIC reaction delay applied to incoming congestion
	// notifications before the flow controller sees them (15 µs in §6).
	RPDelay sim.Time

	// Receiver is the protocol hook run for every arriving data packet
	// (e.g. DCQCN's receiver-side CNP generation).
	Receiver ReceiverHook

	flows   []*Flow // sending flows
	rrIndex int
	wake    sim.Handle

	// eng is the engine this host's events run on (the network engine
	// until EnableSharding re-homes the host onto a shard).
	eng   *sim.Engine
	shard int

	// Counters.
	RxDataBytes uint64
	CNPsRx      uint64
}

// ID returns the host's node id.
func (h *Host) ID() NodeID { return h.id }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Engine returns the engine this host's events run on: the network
// engine, or the host's shard engine in sharded runs. Per-flow
// controllers (reaction points) must schedule their timers here.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Ports returns the host's single NIC port, or nothing before the host
// is connected.
func (h *Host) Ports() []*Port {
	if h.port == nil {
		return nil
	}
	return []*Port{h.port}
}

// NIC returns the host's NIC port.
func (h *Host) NIC() *Port { return h.port }

// ActiveFlows returns the number of flows with data left to send.
func (h *Host) ActiveFlows() int {
	n := 0
	for _, f := range h.flows {
		if !f.senderDone() {
			n++
		}
	}
	return n
}

// Kick re-arms the NIC scheduler. Flow controllers call this (through
// Network.Kick) after timers change pacing state.
func (h *Host) Kick() { h.port.kick() }

// addFlow registers a sending flow with the NIC scheduler.
func (h *Host) addFlow(f *Flow) {
	h.flows = append(h.flows, f)
	h.port.kick()
}

// refill is the NIC pull hook: pick the next transmittable packet, or
// schedule a wake-up at the earliest pacing deadline.
func (h *Host) refill() *Packet {
	now := h.eng.Now()
	h.cleanup()
	n := len(h.flows)
	if n == 0 {
		return nil
	}
	var chosen *Flow
	earliest := sim.Time(-1)
	// Round-robin over flows so simultaneously-eligible flows share the
	// NIC fairly.
	for i := 0; i < n; i++ {
		idx := (h.rrIndex + 1 + i) % n
		f := h.flows[idx]
		at, ok := f.allow(now)
		if !ok {
			continue
		}
		if at <= now {
			chosen = f
			h.rrIndex = idx
			break
		}
		if earliest < 0 || at < earliest {
			earliest = at
		}
	}
	if chosen != nil {
		return chosen.makePacket(now)
	}
	if earliest >= 0 {
		h.scheduleWake(earliest)
	}
	return nil
}

// cleanup drops flows that finished sending (and, when reliable, are fully
// acknowledged) from the scheduler.
func (h *Host) cleanup() {
	out := h.flows[:0]
	for _, f := range h.flows {
		if !f.removable() {
			out = append(out, f)
		}
	}
	for i := len(out); i < len(h.flows); i++ {
		h.flows[i] = nil
	}
	h.flows = out
	if h.rrIndex >= len(h.flows) {
		h.rrIndex = 0
	}
}

func (h *Host) scheduleWake(at sim.Time) {
	if !h.wake.Cancelled() && h.wake.At() <= at {
		return
	}
	h.wake.Cancel()
	h.wake = h.eng.AtCall(at, hostWake, h, nil)
}

// hostWake re-arms the NIC scheduler; scheduled via AtCall so pacing
// wake-ups reuse pooled event slots instead of allocating a closure.
func hostWake(a, _ any) { a.(*Host).port.kick() }

// hostCNPReady delivers a CNP to its flow's reaction point after the NIC
// reaction delay. The flow is looked up at fire time (flow ids are never
// reused) so a flow torn down during the delay drops the CNP, matching
// the pre-pool closure's registry re-check. The packet is owned by this
// event and released here.
func hostCNPReady(a, b any) {
	h := a.(*Host)
	pkt := b.(*Packet)
	if f := h.net.flows[pkt.Flow]; f != nil {
		f.CC.OnCNP(h.eng.Now(), pkt)
		h.port.kick()
	}
	h.net.ReleasePacket(pkt)
}

// Arrive implements Node. The host is a terminal point for every packet
// kind except CNPs, whose ownership moves to the reaction-delay event:
// data, ACKs and pause frames are absorbed here and released back to the
// pool once the flow/receiver hooks — which may read but not retain the
// packet — have run.
func (h *Host) Arrive(pkt *Packet, inPort int) {
	pkt.checkLive("host arrive")
	now := h.eng.Now()
	switch pkt.Kind {
	case KindPause:
		if h.port.acceptPause(pkt) {
			h.port.SetPaused(pkt.PauseOn)
		}
		h.net.ReleasePacket(pkt)
	case KindData:
		h.RxDataBytes += uint64(pkt.Size)
		f := h.net.flows[pkt.Flow]
		if f != nil {
			if h.Receiver != nil {
				if resp := h.Receiver.OnData(now, pkt); resp != nil {
					h.Send(resp)
				}
			}
			f.onDataArrive(now, pkt)
		}
		h.net.ReleasePacket(pkt)
	case KindAck:
		f := h.net.flows[pkt.Flow]
		if f != nil {
			f.onAckArrive(now, pkt)
		}
		h.net.ReleasePacket(pkt)
	case KindCNP:
		h.CNPsRx++
		if h.net.flows[pkt.Flow] == nil {
			h.net.ReleasePacket(pkt)
			return
		}
		// NIC reaction delay before the reaction point processes the CNP.
		h.eng.AfterCall(h.RPDelay, hostCNPReady, h, pkt)
	}
}

// Send transmits a locally generated control packet (ACK, CNP response)
// through the NIC.
func (h *Host) Send(pkt *Packet) {
	h.port.Enqueue(pkt)
}
