package netsim

// packetPool is the network-owned free list of Packet structs. The
// simulator is single-threaded (one engine drives one network), so the
// pool needs no locking. Packets acquired here carry their INT/EchoINT
// backing arrays across cycles, so a warmed-up simulation sends, stamps
// and acknowledges without touching the allocator.
//
// The lifecycle contract the pool enforces (and poolcheck polices):
//
//	AcquirePacket → enqueue/deliver hand-offs → exactly one release at a
//	terminal point (sink consumption, drop, ACK/CNP absorption, pause
//	delivery).
//
// Releasing a packet that did not come from the pool is a safe no-op on
// the free list: the packet simply falls to the GC. That keeps hand-built
// packets (tests, external drivers) working without registration.
type packetPool struct {
	free []*Packet

	acquired  uint64 // AcquirePacket calls
	released  uint64 // ReleasePacket calls on pooled packets
	allocated uint64 // fresh Packet structs ever created by the pool
	live      int64  // pooled packets currently owned outside the pool

	disabled bool // byte-identity escape hatch: allocate fresh, never reuse
}

// SetPooling enables or disables packet reuse. With pooling off every
// acquire allocates a fresh Packet and releases fall to the GC — the
// pre-pool behaviour, kept as a runtime toggle so fixed-seed runs can
// assert byte-identity between the two paths. Toggle before the first
// packet is sent; flipping mid-run is safe (the free list is simply
// ignored or resumed) but pointless.
func (n *Network) SetPooling(on bool) {
	n.pool.disabled = !on
	for i := range n.pools {
		n.pools[i].disabled = !on
	}
}

// PoolingEnabled reports whether packet reuse is active.
func (n *Network) PoolingEnabled() bool { return !n.pool.disabled }

// AcquirePacket returns a zeroed packet owned by the caller. Protocol
// elements that inject packets (CNP generators, receiver hooks) must use
// this instead of &Packet{} so the hot path stays allocation-free; the
// network releases the packet at its terminal point.
//
// In sharded runs this form has no shard context, so it returns a fresh
// unpooled packet (safe from any goroutine; the GC reclaims it).
// In-context callers use AcquirePacketFor, which stays pooled.
func (n *Network) AcquirePacket() *Packet {
	if n.group != nil || n.pool.disabled {
		pkt := &Packet{}
		n.preallocINT(pkt)
		return pkt
	}
	return n.acquireFrom(0)
}

// acquireFrom pops a packet from one shard-local pool (pool 0 doubles as
// the unsharded pool).
func (n *Network) acquireFrom(idx int32) *Packet {
	p := &n.pool
	if n.pools != nil {
		p = &n.pools[idx]
	}
	if p.disabled {
		pkt := &Packet{pool: idx}
		n.preallocINT(pkt)
		return pkt
	}
	p.acquired++
	p.live++
	var pkt *Packet
	if m := len(p.free); m > 0 {
		pkt = p.free[m-1]
		p.free[m-1] = nil
		p.free = p.free[:m-1]
	} else {
		p.allocated++
		pkt = &Packet{pooled: true, pool: idx}
		n.preallocINT(pkt)
	}
	pkt.stampAcquire()
	return pkt
}

// preallocINT reserves INT/EchoINT hop capacity on a fresh packet so the
// first INT stamping pass never reallocates (HPCC grows one record per
// hop; without this every new packet pays log2(hops) grows before its
// backing array reaches steady state).
func (n *Network) preallocINT(pkt *Packet) {
	if n.INTHopCap > 0 {
		pkt.INT = make([]INTRecord, 0, n.INTHopCap)
		pkt.EchoINT = make([]INTRecord, 0, n.INTHopCap)
	}
}

// ReleasePacket returns a packet to the pool at its terminal lifecycle
// point. Nil-safe. Packets not acquired from the pool are ignored (GC
// reclaims them); pooled packets must not be touched after release —
// build with -tags poolcheck to panic on use-after-release and
// double-release instead of corrupting a later packet.
func (n *Network) ReleasePacket(pkt *Packet) {
	if pkt == nil || !pkt.pooled {
		return
	}
	pkt.stampRelease()
	p := &n.pool
	if n.pools != nil {
		// Sharded: the packet returns to the free list of the shard that
		// currently owns it — cross-shard handoffs re-stamped pkt.pool at
		// the mailbox drain, so release always lands on the caller's own
		// (data-race-free) pool.
		p = &n.pools[pkt.pool]
	}
	p.released++
	p.live--
	if p.disabled {
		pkt.pooled = false // pool drained at toggle time; let the GC take it
		return
	}
	pkt.reset()
	p.free = append(p.free, pkt)
}

// ClonePacket copies a packet for duplicate delivery through the pool:
// the clone owns its own INT/EchoINT backing arrays and CNP payload, so
// both copies can be mutated and released independently.
func (n *Network) ClonePacket(pkt *Packet) *Packet {
	// The clone joins the original's pool: cloning happens on the sending
	// side of a link, and the duplicate crosses the same link (and the
	// same ownership transfer) as the original. A clone of an unpooled
	// packet stays unpooled — in sharded runs pkt.pool says nothing about
	// which shard is holding it.
	var c *Packet
	if pkt.pooled {
		c = n.acquireFrom(pkt.pool)
	} else {
		c = &Packet{}
		n.preallocINT(c)
	}
	intBuf, echoBuf := c.INT, c.EchoINT
	pooled, pc, pool := c.pooled, c.pc, c.pool
	*c = *pkt
	c.pooled, c.pc, c.pool = pooled, pc, pool
	c.INT = append(intBuf[:0], pkt.INT...)
	c.EchoINT = append(echoBuf[:0], pkt.EchoINT...)
	if pkt.CNP != nil {
		c.cnpStore = *pkt.CNP
		c.CNP = &c.cnpStore
	} else {
		c.CNP = nil
		c.cnpStore = CNPInfo{}
	}
	return c
}

// OutstandingPackets returns the number of pooled packets currently owned
// outside the pool: queued on a port, in flight on a link, or parked in
// a delayed-delivery event. After a full drain (engine queue empty, all
// port queues empty) this must be zero — the chaos packet-accounting
// invariant — and it can only go negative through a double release.
// Sharded runs sum the shard-local pools (read between windows).
func (n *Network) OutstandingPackets() int64 {
	if n.pools == nil {
		return n.pool.live
	}
	total := int64(0)
	for i := range n.pools {
		total += n.pools[i].live
	}
	return total
}

// PacketsAcquired returns the lifetime count of pool acquisitions.
func (n *Network) PacketsAcquired() uint64 {
	if n.pools == nil {
		return n.pool.acquired
	}
	total := uint64(0)
	for i := range n.pools {
		total += n.pools[i].acquired
	}
	return total
}

// PacketSlots returns how many Packet structs the pool ever allocated.
// In an allocation-free steady state this stops growing: it tracks the
// peak number of simultaneously live packets, not the number sent.
// Sharded runs sum the shard-local pools.
func (n *Network) PacketSlots() uint64 {
	if n.pools == nil {
		return n.pool.allocated
	}
	total := uint64(0)
	for i := range n.pools {
		total += n.pools[i].allocated
	}
	return total
}

// QueuedPackets counts packets sitting in port queues across the whole
// network (all nodes, all classes). Together with OutstandingPackets it
// closes the accounting loop: after the engine drains, every outstanding
// packet must be parked in some queue (normally zero of both).
func (n *Network) QueuedPackets() int {
	total := 0
	for _, node := range n.nodes {
		for _, p := range node.Ports() {
			total += p.QueuedPackets()
		}
	}
	return total
}
