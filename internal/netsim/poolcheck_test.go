//go:build poolcheck

package netsim

import (
	"testing"

	"rocc/internal/sim"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under poolcheck", what)
		}
	}()
	fn()
}

func TestPoolcheckDoubleReleasePanics(t *testing.T) {
	net := New(sim.New(), 1)
	pkt := net.AcquirePacket()
	net.ReleasePacket(pkt)
	mustPanic(t, "double release", func() { net.ReleasePacket(pkt) })
}

func TestPoolcheckUseAfterReleasePanics(t *testing.T) {
	net := New(sim.New(), 1)
	pkt := net.AcquirePacket()
	pkt.checkLive("test use") // live: must not panic
	net.ReleasePacket(pkt)
	mustPanic(t, "use after release", func() { pkt.checkLive("test use") })
}

func TestPoolcheckUnpooledPacketExempt(t *testing.T) {
	pkt := &Packet{Seq: 1}
	pkt.checkLive("hand-built") // never pooled, never checked
}
