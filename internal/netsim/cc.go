package netsim

import "rocc/internal/sim"

// FlowCC is the per-flow congestion controller at the sender (the paper's
// reaction point, and the equivalent state machine of every baseline).
// Implementations pace by rate, limit by window, or both.
//
// Ownership contract: every *Packet passed to a FlowCC method is on loan
// for the duration of the call. The packet returns to the network pool
// (and its INT/EchoINT/CNP storage is recycled) as soon as the caller
// regains control, so implementations must not retain the pointer or
// alias its slices — copy out whatever outlives the call, as the HPCC
// controller does with its EchoINT records.
type FlowCC interface {
	// Allow reports whether the flow may put a packet with the given
	// payload size on the wire. If pacing delays transmission it returns
	// ok=true with the eligible time (possibly in the future). If the flow
	// is window-blocked it returns ok=false; the host re-polls when an ACK
	// or CNP arrives or a controller timer fires.
	Allow(now sim.Time, payload int) (at sim.Time, ok bool)

	// OnSent is invoked when a packet starts transmission. Window-based
	// controllers read pkt.Seq and pkt.Payload to track bytes in flight.
	OnSent(now sim.Time, pkt *Packet)

	// OnAck is invoked for every ACK the flow receives.
	OnAck(now sim.Time, pkt *Packet)

	// OnCNP is invoked for every congestion notification addressed to the
	// flow, after the NIC reaction delay.
	OnCNP(now sim.Time, pkt *Packet)

	// CurrentRate reports the controller's nominal sending rate, used by
	// instrumentation only.
	CurrentRate() Rate
}

// NoCC is a FlowCC that never limits the flow. Flows run at the offered
// (application) rate, bounded only by the NIC link.
type NoCC struct{}

// Allow always permits transmission immediately.
func (NoCC) Allow(now sim.Time, payload int) (sim.Time, bool) { return now, true }

// OnSent is a no-op.
func (NoCC) OnSent(sim.Time, *Packet) {}

// OnAck is a no-op.
func (NoCC) OnAck(sim.Time, *Packet) {}

// OnCNP is a no-op.
func (NoCC) OnCNP(sim.Time, *Packet) {}

// CurrentRate reports an effectively unlimited rate.
func (NoCC) CurrentRate() Rate { return Rate(1e15) }

// RouteAware is an optional FlowCC extension for controllers whose state
// encodes properties of the flow's path. After every route reconvergence
// (a topology failure or restore followed by ReconvergeDelay — see
// topofail.go) the network calls OnReroute on every registered flow that
// implements it, in FlowID order. Implementations should discard
// path-bound state: RoCC re-homes its congestion point through the
// staleness machinery, HPCC drops its INT baseline, TIMELY resets its
// RTT gradient. The callback is advisory — the path may in fact be
// unchanged — so reactions must be safe under false positives.
type RouteAware interface {
	OnReroute(now sim.Time)
}

// RetxAware is an optional FlowCC extension for window-based controllers
// driving reliable (go-back-N) flows. OnRewind reports that the transport
// declared every byte at or above seq lost and is about to retransmit it
// from seq. A window controller must drop those bytes from its in-flight
// accounting: after a blackhole window (a failed link or switch) the lost
// bytes never ACK, so without this callback inflight stays pinned at the
// window and Allow blocks the very retransmissions that would free it —
// a permanent wedge. Rate-based controllers keep pacing regardless and
// do not need this.
type RetxAware interface {
	OnRewind(now sim.Time, seq int64)
}

// PortCC is the switch-side congestion-control attachment for one egress
// port: ECN marking (DCQCN), INT stamping (HPCC), or the RoCC congestion
// point's flow table. Periodic behaviour (the RoCC fair-rate timer) is
// implemented with engine tickers owned by the attachment.
//
// Ownership contract: pkt is on loan for the duration of the call. Hooks
// may mutate it in place (set CE, append an INT record) but must not
// retain the pointer or alias its slices past the return — the packet is
// pool-recycled at its terminal point and the storage will be reused.
type PortCC interface {
	// OnEnqueue runs when a data packet is accepted into the egress queue.
	// qlen is the data-class queue length in bytes including pkt.
	OnEnqueue(now sim.Time, pkt *Packet, qlen int)

	// OnDequeue runs when a data packet starts transmission. qlen is the
	// remaining data-class queue length in bytes.
	OnDequeue(now sim.Time, pkt *Packet, qlen int)
}

// ReceiverHook lets a protocol react to data arriving at the destination
// host (e.g. DCQCN's receiver-generated CNPs). The returned packet, if any,
// is sent back through the network.
//
// Ownership contract: pkt is on loan for the duration of the call and is
// released to the pool right after — do not retain it or alias its
// slices. The returned packet is the opposite: ownership transfers to the
// network, so build it from Network.AcquirePacket and do not touch it
// after returning.
type ReceiverHook interface {
	OnData(now sim.Time, pkt *Packet) *Packet
}

// Pacer serializes transmissions at a configurable rate. It is the building
// block rate-based FlowCC implementations share.
type Pacer struct {
	next sim.Time
}

// Next returns the earliest time the next packet may start, without
// consuming the slot.
func (p *Pacer) Next(now sim.Time) sim.Time {
	if p.next < now {
		return now
	}
	return p.next
}

// Consume charges a transmission of wire size bytes at the pacing rate,
// advancing the next eligible time.
func (p *Pacer) Consume(now sim.Time, rate Rate, bytes int) {
	start := p.next
	if start < now {
		start = now
	}
	p.next = start + rate.TxTime(bytes)
}

// Reset clears pacing state so the next packet is immediately eligible.
func (p *Pacer) Reset() { p.next = 0 }
