package netsim

import (
	"testing"

	"rocc/internal/sim"
)

func TestLinkDownClearsPauseState(t *testing.T) {
	// Pause state is link-local: it must die with the link. A host paused
	// by PFC whose uplink then fails would otherwise sit frozen for the
	// whole outage and read as a pause storm instead of a link failure.
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 30 * KB,
	})
	var flows []*Flow
	for _, s := range srcs {
		flows = append(flows, net.StartFlow(s, dst, FlowConfig{Size: -1}))
	}
	nic := srcs[0].NIC()
	var when sim.Time
	for when = 10 * sim.Microsecond; when < 5*sim.Millisecond; when += 10 * sim.Microsecond {
		engine.RunUntil(when)
		if nic.Paused() {
			break
		}
	}
	if !nic.Paused() {
		t.Fatal("incast never paused the source NIC; fixture broken")
	}
	net.FailLink(nic)
	if nic.Paused() {
		t.Error("NIC still paused after its link went down")
	}
	// The pause span ended at the down-transition; a long outage must
	// account as LinkDownDrops, not one giant pause interval.
	spanAtFail := nic.PausedFor()
	engine.RunUntil(when + sim.Millisecond)
	if nic.PausedFor() != spanAtFail {
		t.Error("pause span kept accumulating across the outage")
	}
	for _, f := range flows {
		f.Stop()
	}
	_ = sw
}

func TestStalePauseFrameRejected(t *testing.T) {
	// A pause frame launched before a flap must not freeze the port after
	// it: acceptPause rejects frames older than the link's last
	// up-transition (and anything arriving while the link is down).
	engine, net, a, _, sw := pair(Gbps(40))
	nic := a.NIC()
	engine.RunUntil(100 * sim.Microsecond)

	stale := &Packet{Kind: KindPause, PauseOn: true, SendTS: 50 * sim.Microsecond}
	net.FailLink(nic)
	if nic.acceptPause(stale) {
		t.Error("pause accepted while the link was down")
	}
	net.RestoreLink(nic) // upSince = 100 µs, after the frame's SendTS
	if nic.acceptPause(stale) {
		t.Error("pre-flap pause frame accepted after the link came back")
	}
	if net.StalePauseDrops() != 2 {
		t.Errorf("StalePauseDrops = %d, want 2", net.StalePauseDrops())
	}
	fresh := &Packet{Kind: KindPause, PauseOn: true, SendTS: engine.Now()}
	if !nic.acceptPause(fresh) {
		t.Error("post-flap pause frame rejected")
	}
	_ = sw
}

func TestFlapDuringPauseNoDeadlock(t *testing.T) {
	// Forced regression for the stale-pause wedge: flap the source's
	// access link at the instant a pause frame is in flight toward it.
	// The frame lands after the up-transition, must be discarded as
	// stale, and traffic must keep flowing — no port may stay paused.
	engine, net, srcs, dst, _, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 30 * KB,
	})
	var flows []*Flow
	for _, s := range srcs {
		flows = append(flows, net.StartFlow(s, dst, FlowConfig{Size: -1}))
	}
	nic := srcs[0].NIC()
	swPort := peerPort(nic) // switch side of the access link, the pause sender

	// Step in sub-propagation increments until the switch has just sent a
	// pause frame; it is then in flight for LinkDelay (1500 ns).
	var pausesSeen int
	flapped := false
	for when := sim.Time(0); when < 5*sim.Millisecond; when += 500 * sim.Nanosecond {
		engine.RunUntil(when)
		s := swPort.owner.(*Switch)
		if s.PauseFrames > pausesSeen {
			pausesSeen = s.PauseFrames
			if when > 200*sim.Microsecond { // let the incast establish first
				net.FailLink(nic)
				net.RestoreLink(nic)
				flapped = true
				break
			}
		}
	}
	if !flapped {
		t.Fatal("never caught a pause frame in flight; fixture broken")
	}
	if nic.Paused() {
		t.Fatal("NIC paused immediately after the flap")
	}
	engine.RunUntil(engine.Now() + 100*sim.Microsecond)
	if net.StalePauseDrops() == 0 {
		t.Error("the in-flight pause frame was not dropped as stale")
	}

	// The fabric must make progress after the flap and end unpaused.
	before := int64(0)
	for _, f := range flows {
		before += f.DeliveredBytes()
	}
	engine.RunUntil(engine.Now() + 2*sim.Millisecond)
	after := int64(0)
	for _, f := range flows {
		f.Stop()
	}
	engine.RunUntil(engine.Now() + 5*sim.Millisecond) // drain
	for _, f := range flows {
		after += f.DeliveredBytes()
	}
	if after <= before {
		t.Error("no bytes delivered after the flap: stale-pause deadlock")
	}
	for _, s := range net.Switches() {
		for _, p := range s.Ports() {
			if p.Paused() {
				t.Errorf("switch %s port %d still paused after drain", s.Name, p.Index)
			}
		}
	}
	for _, h := range net.Hosts() {
		if h.NIC().Paused() {
			t.Errorf("host %s NIC still paused after drain", h.Name)
		}
	}
}
