package netsim

import (
	"sync/atomic"

	"rocc/internal/sim"
)

// FlowConfig describes a flow to start.
type FlowConfig struct {
	// Size is the message size in bytes. Negative means unbounded (a
	// persistent flow, stopped explicitly with Flow.Stop).
	Size int64

	// MaxRate caps the application's offered rate (the micro-benchmarks
	// offer 90% of link bandwidth per source). Zero means line rate.
	MaxRate Rate

	// CC is the flow's congestion controller. Nil means NoCC.
	CC FlowCC

	// Reliable enables go-back-N loss recovery with per-packet cumulative
	// ACKs (App. A.2). Requires AckEvery == 0 or 1.
	Reliable bool

	// AckEvery makes the receiver acknowledge every N-th data packet (with
	// RTT echo and INT echo), as window- and RTT-based protocols need.
	// Zero disables ACKs unless Reliable is set.
	AckEvery int

	// RTO is the go-back-N retransmission timeout. Zero defaults to 1 ms.
	RTO sim.Time

	// ExtraHeader adds per-packet wire overhead beyond HeaderBytes
	// (HPCC's in-band telemetry bytes).
	ExtraHeader int
}

// Flow is a unidirectional message transfer between two hosts, including
// sender scheduling state and receiver assembly state.
type Flow struct {
	ID    FlowID
	net   *Network
	src   *Host
	dst   *Host
	srcID NodeID
	dstID NodeID

	Size        int64
	MaxRate     Rate
	CC          FlowCC
	Reliable    bool
	AckEvery    int
	RTO         sim.Time
	ExtraHeader int

	StartTime sim.Time

	// Sender state.
	nextSeq  int64
	sentHigh int64
	appPacer Pacer
	stopped  bool

	// Go-back-N sender state.
	ackedSeq       int64
	lastRewindSeq  int64
	lastRewindTime sim.Time
	RetxBytes      int64
	rtoEv          sim.Handle

	// Receiver state.
	rcvdContig int64
	acksOwed   int
	done       bool
	FinishTime sim.Time
}

// Src returns the sending host.
func (f *Flow) Src() *Host { return f.src }

// Dst returns the receiving host.
func (f *Flow) Dst() *Host { return f.dst }

// Done reports whether the receiver has the complete message.
func (f *Flow) Done() bool { return f.done }

// DeliveredBytes returns the contiguous bytes delivered to the receiver.
func (f *Flow) DeliveredBytes() int64 { return f.rcvdContig }

// SentBytes returns the highest payload byte handed to the wire.
func (f *Flow) SentBytes() int64 { return f.sentHigh }

// FCT returns the flow completion time, valid once Done.
func (f *Flow) FCT() sim.Time { return f.FinishTime - f.StartTime }

// Stop halts an unbounded flow at the sender and tears down its controller.
func (f *Flow) Stop() {
	f.stopped = true
	f.rtoEv.Cancel()
	f.net.removeFlowLater(f)
}

// remaining returns the payload size of the next packet to send.
func (f *Flow) remaining() int {
	if f.Size < 0 {
		return MTUPayload
	}
	left := f.Size - f.nextSeq
	if left > MTUPayload {
		return MTUPayload
	}
	return int(left)
}

// senderDone reports whether the sender has nothing (new) left to send.
func (f *Flow) senderDone() bool {
	if f.stopped {
		return true
	}
	return f.Size >= 0 && f.nextSeq >= f.Size
}

// removable reports whether the flow can leave the NIC scheduler.
func (f *Flow) removable() bool {
	if f.stopped {
		return true
	}
	if f.Size < 0 {
		return false
	}
	if f.nextSeq < f.Size {
		return false
	}
	if f.Reliable {
		// Keep the flow schedulable until fully acknowledged so go-back-N
		// rewinds can retransmit.
		return f.ackedSeq >= f.Size
	}
	return true
}

// allow reports when the flow may transmit its next packet, combining the
// application's offered-rate pacer with the congestion controller.
func (f *Flow) allow(now sim.Time) (sim.Time, bool) {
	if f.senderDone() {
		return 0, false
	}
	payload := f.remaining()
	at, ok := f.CC.Allow(now, payload)
	if !ok {
		return 0, false
	}
	if f.MaxRate > 0 {
		if appAt := f.appPacer.Next(now); appAt > at {
			at = appAt
		}
	}
	return at, true
}

// makePacket builds and charges the flow's next data packet.
func (f *Flow) makePacket(now sim.Time) *Packet {
	payload := f.remaining()
	last := f.Size >= 0 && f.nextSeq+int64(payload) >= f.Size
	pkt := dataPacket(f, f.nextSeq, payload, last, now)
	pkt.Size += f.ExtraHeader
	if f.MaxRate > 0 {
		f.appPacer.Consume(now, f.MaxRate, pkt.Size)
	}
	f.CC.OnSent(now, pkt)
	f.nextSeq += int64(payload)
	if f.nextSeq > f.sentHigh {
		f.sentHigh = f.nextSeq
	}
	if f.Reliable {
		f.armRTO(now)
	}
	return pkt
}

func (f *Flow) armRTO(now sim.Time) {
	f.rtoEv.Cancel()
	// AfterCall with a package-level func: arming the RTO per packet must
	// not allocate a bound-method closure. The timer lives on the sender's
	// engine — RTO state is sender-side.
	f.rtoEv = f.src.eng.AfterCall(f.RTO, flowRTO, f, nil)
}

// flowRTO is the go-back-N backstop: rewind to the last acknowledged byte.
func flowRTO(a, _ any) {
	f := a.(*Flow)
	f.rtoEv = sim.Handle{}
	if f.stopped || f.ackedSeq >= f.Size && f.Size >= 0 {
		return
	}
	f.rewind(f.src.eng.Now(), f.ackedSeq)
	f.armRTO(f.src.eng.Now())
	f.src.Kick()
}

// rewind implements the go-back-N retransmission: resume sending from seq.
func (f *Flow) rewind(now sim.Time, seq int64) {
	if seq >= f.nextSeq {
		return
	}
	// Suppress rewind storms from duplicate NACKs for the same gap.
	if seq == f.lastRewindSeq && now-f.lastRewindTime < 50*sim.Microsecond {
		return
	}
	f.lastRewindSeq = seq
	f.lastRewindTime = now
	f.RetxBytes += f.nextSeq - seq
	// Atomic: flows on different shards rewind concurrently.
	atomic.AddInt64(&f.net.RetxBytesTotal, f.nextSeq-seq)
	f.nextSeq = seq
	if cc, ok := f.CC.(RetxAware); ok {
		cc.OnRewind(now, seq)
	}
}

// onDataArrive runs at the receiving host.
func (f *Flow) onDataArrive(now sim.Time, pkt *Packet) {
	advanced := false
	if f.Reliable {
		switch {
		case pkt.Seq == f.rcvdContig:
			f.rcvdContig += int64(pkt.Payload)
			advanced = true
			f.sendAck(now, pkt, false)
		case pkt.Seq > f.rcvdContig:
			// Gap: go-back-N discards and NACKs the expected sequence.
			f.sendAck(now, pkt, true)
		default:
			// Duplicate of already-delivered data; re-acknowledge.
			f.sendAck(now, pkt, false)
		}
	} else {
		// Lossless single-path fabric delivers in order.
		f.rcvdContig += int64(pkt.Payload)
		advanced = true
		if f.AckEvery > 0 {
			f.acksOwed++
			if f.acksOwed >= f.AckEvery || pkt.Last {
				f.acksOwed = 0
				f.sendAck(now, pkt, false)
			}
		}
	}
	if advanced && !f.done && f.Size >= 0 && f.rcvdContig >= f.Size {
		f.done = true
		f.FinishTime = now
		if f.net.group != nil {
			// Sharded: completion callbacks mutate the flow registry and
			// may start new flows or stop the run — global-lane work.
			// Defer to the window barrier; the coordinator replays the
			// list in (FinishTime, dst, flow) order, which is
			// partition-independent.
			st := &f.net.shardSt[f.dst.shard]
			st.done = append(st.done, f)
			return
		}
		if f.net.OnFlowDone != nil {
			f.net.OnFlowDone(f)
		}
		if !f.Reliable {
			f.net.removeFlowLater(f)
		}
	}
}

// sendAck emits a cumulative ACK (or NACK) with RTT and INT echoes. The
// INT records are copied into the ACK's own (capacity-recycled) buffer:
// aliasing the data packet's slice would dangle once the data packet
// returns to the pool.
func (f *Flow) sendAck(now sim.Time, data *Packet, nack bool) {
	ack := f.net.AcquirePacketFor(f.dst)
	ack.Flow = f.ID
	ack.Src = f.dstID
	ack.Dst = f.srcID
	ack.Kind = KindAck
	ack.Cls = ClassAck
	ack.Size = AckBytes
	ack.AckSeq = f.rcvdContig
	ack.Nack = nack
	ack.EchoTS = data.SendTS
	ack.EchoINT = append(ack.EchoINT[:0], data.INT...)
	ack.SendTS = now
	f.dst.Send(ack)
}

// onAckArrive runs at the sending host.
func (f *Flow) onAckArrive(now sim.Time, pkt *Packet) {
	if pkt.AckSeq > f.ackedSeq {
		f.ackedSeq = pkt.AckSeq
		if f.Reliable {
			if f.Size >= 0 && f.ackedSeq >= f.Size {
				f.rtoEv.Cancel()
				if f.net.group != nil {
					// Sharded: registry mutation and controller teardown
					// defer to the window barrier (see onDataArrive).
					st := &f.net.shardSt[f.src.shard]
					st.retire = append(st.retire, retireReq{f: f, at: now})
				} else {
					f.net.removeFlowLater(f)
				}
			} else {
				f.armRTO(now)
			}
		}
	}
	if pkt.Nack {
		f.rewind(now, pkt.AckSeq)
	}
	f.CC.OnAck(now, pkt)
	f.src.Kick()
}
