package netsim

import (
	"fmt"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// Node is a network element: a Host or a Switch.
type Node interface {
	ID() NodeID
	Ports() []*Port
	Arrive(pkt *Packet, inPort int)
}

// Network owns the topology, the flow registry and global configuration.
type Network struct {
	Engine *sim.Engine
	Rand   *sim.Rand

	nodes    []Node
	hosts    []*Host
	switches []*Switch

	flows    map[FlowID]*Flow
	nextFlow FlowID

	// OnFlowDone is invoked when a flow's last byte reaches its receiver.
	OnFlowDone func(*Flow)

	// OnFlowRemoved is invoked when a completed flow is finally dropped
	// from the registry, after the post-completion grace period for late
	// control packets. Composers keyed by FlowID (the experiments Mix)
	// use it to retire their per-flow routing state.
	OnFlowRemoved func(*Flow)

	// DefaultRPDelay is applied to hosts created after it is set (15 µs
	// per §6). It can be overridden per host.
	DefaultRPDelay sim.Time

	// RetxBytesTotal accumulates go-back-N retransmitted bytes across all
	// flows, including completed ones (App. A.2 reporting).
	RetxBytesTotal int64

	// PauseStormSpan is the completed-pause duration at or above which a
	// pause interval counts as a pause storm (netsim.pfc.pause_storm).
	// Healthy PFC pauses in the paper's fabrics last microseconds; a
	// millisecond-scale pause means an upstream queue is wedged.
	PauseStormSpan sim.Time

	// INTHopCap, when positive, presizes the INT/EchoINT slices of every
	// pool-fresh packet so per-hop telemetry stamping never grows the
	// backing array. Set it to the topology diameter (the experiment stack
	// uses 8 for HPCC); zero leaves the slices nil until first use.
	INTHopCap int

	// ReconvergeDelay is how long after a FailLink/FailSwitch/Restore
	// event the routing tables are recomputed (the control plane's
	// detection + reconvergence time). Zero selects
	// DefaultReconvergeDelay. Packets in the window that reach a switch
	// with no surviving ECMP entry blackhole deterministically.
	ReconvergeDelay sim.Time

	// MaxHops bounds how many switches a packet may traverse before it is
	// dropped as looping (a TTL). Transient routing states can only loop
	// while tables are inconsistent; the cap turns that into a
	// deterministic terminal drop. Zero selects DefaultMaxHops.
	MaxHops int

	// routesDynamic flips on at the first topology event. Before that, a
	// missing route is a wiring bug and panics; after, it is a blackhole
	// window and packets are dropped with a terminal pool release.
	routesDynamic bool

	// reconverges counts route recomputations; stalePauseDrops counts PFC
	// frames discarded because they predate their link's re-establishment;
	// watchdogPauseIgnores counts PFC frames discarded on ports whose
	// lossless class a storm watchdog disabled.
	reconverges          uint64
	stalePauseDrops      uint64
	watchdogPauseIgnores uint64

	// pool recycles Packet structs; see pool.go for the lifecycle contract.
	// In sharded runs (EnableSharding) pools replaces it with one
	// shard-local free list per shard, and shardSt carries each shard's
	// deferred flow completions.
	pool    packetPool
	group   *sim.Group
	pools   []packetPool
	shardSt []shardState

	// Barrier-drain scratch (shard.go), reused so steady-state barriers
	// do not allocate.
	doneScratch   []*Flow
	retireScratch []retireReq

	// portSeq numbers ports in creation order; the sharded engine keys
	// every directed link's arrival lane by it.
	portSeq uint64

	// longestPause is the longest completed PFC pause interval seen so
	// far; LongestPauseSpan extends it with in-progress pauses so a true
	// deadlock (a pause that never completes) is still visible.
	longestPause sim.Time
	pauseStorms  uint64

	// Telemetry attachments (see SetTelemetry). All nil when disabled;
	// the instruments are nil-safe so hot paths never branch on these.
	reg *telemetry.Registry
	rec *telemetry.Recorder
	tm  netMetrics
}

// New creates an empty network on the given engine.
func New(engine *sim.Engine, seed int64) *Network {
	return &Network{
		Engine:         engine,
		Rand:           sim.NewRand(seed),
		flows:          make(map[FlowID]*Flow),
		DefaultRPDelay: 15 * sim.Microsecond,
		PauseStormSpan: sim.Millisecond,
	}
}

// AddHost creates a host.
func (n *Network) AddHost(name string) *Host {
	h := &Host{net: n, id: NodeID(len(n.nodes)), Name: name, RPDelay: n.DefaultRPDelay, eng: n.Engine}
	n.nodes = append(n.nodes, h)
	n.hosts = append(n.hosts, h)
	return h
}

// AddSwitch creates a switch with the given buffer configuration.
func (n *Network) AddSwitch(name string, buf BufferConfig) *Switch {
	s := &Switch{
		net:    n,
		id:     NodeID(len(n.nodes)),
		Name:   name,
		Buffer: buf,
		routes: make(map[NodeID][]int),
		eng:    n.Engine,
	}
	n.nodes = append(n.nodes, s)
	n.switches = append(n.switches, s)
	return s
}

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Flow returns a registered flow, or nil after it completed.
func (n *Network) Flow(id FlowID) *Flow { return n.flows[id] }

// Connect links two nodes with a full-duplex link of the given rate and
// propagation delay, returning the two port ends (a's, then b's).
func (n *Network) Connect(a, b Node, rate Rate, delay sim.Time) (*Port, *Port) {
	pa := &Port{net: n, owner: a, LinkRate: rate, PropDelay: delay, eng: n.Engine, arrLane: laneArrBase | n.portSeq}
	pb := &Port{net: n, owner: b, LinkRate: rate, PropDelay: delay, eng: n.Engine, arrLane: laneArrBase | (n.portSeq + 1)}
	n.portSeq += 2
	n.attach(a, pa)
	n.attach(b, pb)
	pa.PeerNode, pa.PeerPort = b, pb.Index
	pb.PeerNode, pb.PeerPort = a, pa.Index
	return pa, pb
}

func (n *Network) attach(node Node, p *Port) {
	switch v := node.(type) {
	case *Host:
		if v.port != nil {
			panic("netsim: host " + v.Name + " already has a NIC port")
		}
		p.Index = 0
		p.Refill = v.refill
		v.port = p
	case *Switch:
		v.addPort(p)
	default:
		panic(fmt.Sprintf("netsim: unknown node type %T", node))
	}
}

// ComputeRoutes builds shortest-path ECMP routing tables for every host
// destination, over the live links only (downed links and failed
// switches carry no routes). Call after the topology is complete; the
// reconvergence machinery (topofail.go) calls it again after every
// FailLink/FailSwitch/Restore window.
func (n *Network) ComputeRoutes() {
	for _, s := range n.switches {
		s.routes = make(map[NodeID][]int)
	}
	for _, dst := range n.hosts {
		dist := n.bfs(dst)
		for _, s := range n.switches {
			if s.failed {
				continue
			}
			ds, ok := dist[s.id]
			if !ok {
				continue
			}
			var next []int
			for i, p := range s.ports {
				if p.linkDown {
					continue
				}
				if dp, ok := dist[p.PeerNode.ID()]; ok && dp == ds-1 {
					next = append(next, i)
				}
			}
			if len(next) > 0 {
				s.routes[dst.id] = next
			}
		}
	}
}

// bfs returns hop distances from every node to dst over live links.
func (n *Network) bfs(dst Node) map[NodeID]int {
	dist := map[NodeID]int{dst.ID(): 0}
	queue := []Node{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range cur.Ports() {
			peer := p.PeerNode
			if peer == nil || p.linkDown {
				continue
			}
			if s, ok := peer.(*Switch); ok && s.failed {
				continue
			}
			if _, seen := dist[peer.ID()]; !seen {
				dist[peer.ID()] = dist[cur.ID()] + 1
				queue = append(queue, peer)
			}
		}
	}
	return dist
}

// StartFlow begins a flow from src to dst with the given configuration.
func (n *Network) StartFlow(src, dst *Host, cfg FlowConfig) *Flow {
	if src == dst {
		panic("netsim: flow source equals destination")
	}
	n.nextFlow++
	cc := cfg.CC
	if cc == nil {
		cc = NoCC{}
	}
	rto := cfg.RTO
	if rto == 0 {
		rto = sim.Millisecond
	}
	ackEvery := cfg.AckEvery
	if cfg.Reliable && ackEvery == 0 {
		ackEvery = 1
	}
	f := &Flow{
		ID:          n.nextFlow,
		net:         n,
		src:         src,
		dst:         dst,
		srcID:       src.id,
		dstID:       dst.id,
		Size:        cfg.Size,
		MaxRate:     cfg.MaxRate,
		CC:          cc,
		Reliable:    cfg.Reliable,
		AckEvery:    ackEvery,
		RTO:         rto,
		ExtraHeader: cfg.ExtraHeader,
		StartTime:   n.Engine.Now(),
	}
	n.flows[f.ID] = f
	src.addFlow(f)
	return f
}

// removeFlowLater tears down a completed flow's controller timers and
// schedules its removal from the registry after a grace period, so ACKs
// and CNPs still in flight (up to a few RTTs behind the last data byte)
// reach the flow instead of being dropped.
func (n *Network) removeFlowLater(f *Flow) {
	if s, ok := f.CC.(interface{ Stop() }); ok {
		s.Stop()
	}
	id := f.ID
	n.Engine.After(removeGrace, func() {
		if n.flows[id] == f {
			delete(n.flows, id)
			if n.OnFlowRemoved != nil {
				n.OnFlowRemoved(f)
			}
		}
	})
}

// removeGrace is how long a completed flow stays addressable for late
// control packets.
const removeGrace = 200 * sim.Microsecond

// ActiveFlowCount returns the number of registered (incomplete) flows.
func (n *Network) ActiveFlowCount() int { return len(n.flows) }

// TotalPFCFrames sums Xoff pause frames across all switches.
func (n *Network) TotalPFCFrames() int {
	total := 0
	for _, s := range n.switches {
		total += s.PauseFrames
	}
	return total
}

// LongestPauseSpan returns the longest PFC pause interval observed so
// far on any port, including pauses still in progress — so a pause-wait
// deadlock, whose pauses never complete, is as visible as a long pause
// that did. This is the signal the chaos deadlock monitor and the
// netsim.pfc.longest_pause_span_ns gauge share.
func (n *Network) LongestPauseSpan() sim.Time {
	longest := n.longestPause
	now := n.Engine.Now()
	for _, node := range n.nodes {
		for _, p := range node.Ports() {
			if p.paused {
				if span := now - p.pausedAt; span > longest {
					longest = span
				}
			}
		}
	}
	return longest
}

// PauseStorms returns how many completed pause intervals reached
// PauseStormSpan.
func (n *Network) PauseStorms() uint64 { return n.pauseStorms }

// TotalDrops sums tail drops across all switches.
func (n *Network) TotalDrops() int {
	total := 0
	for _, s := range n.switches {
		total += s.Drops
	}
	return total
}

// BlackholeDrops sums packets dropped at switches that had no surviving
// route for the destination (topology-failure windows).
func (n *Network) BlackholeDrops() uint64 {
	total := uint64(0)
	for _, s := range n.switches {
		total += s.BlackholeDrops
	}
	return total
}

// LoopDrops sums packets dropped for exceeding the hop cap.
func (n *Network) LoopDrops() uint64 {
	total := uint64(0)
	for _, s := range n.switches {
		total += s.LoopDrops
	}
	return total
}

// LinkDownDrops sums packets lost serializing into downed links, across
// every switch port and host NIC.
func (n *Network) LinkDownDrops() uint64 {
	total := uint64(0)
	for _, s := range n.switches {
		for _, p := range s.ports {
			total += p.LinkDownDrops
		}
	}
	for _, h := range n.hosts {
		total += h.port.LinkDownDrops
	}
	return total
}

// PolicedDrops sums data packets denied by switch Police hooks.
func (n *Network) PolicedDrops() int {
	total := 0
	for _, s := range n.switches {
		total += s.PolicedDrops
	}
	return total
}

// WatchdogDrops sums data packets discarded on storm-disabled egress
// ports (including stuck-queue flushes at watchdog trips).
func (n *Network) WatchdogDrops() int {
	total := 0
	for _, s := range n.switches {
		total += s.WatchdogDrops
	}
	return total
}

// WatchdogPauseIgnores returns how many PFC frames were discarded on
// ports whose lossless class a storm watchdog had disabled.
func (n *Network) WatchdogPauseIgnores() uint64 { return n.watchdogPauseIgnores }

// FlowPathCPs enumerates the congestion points — (switch, egress port)
// pairs — a flow's data packets traverse from src to dst under the
// current routing tables, following the same ECMP hash the dataplane
// uses. The RoCC reaction point's forged-feedback defense treats this
// set as the witness list: a CNP claiming a congestion point off the
// flow's path was never earned by the flow's own packets. Returns nil
// when the path is broken (blackhole window) or the ids are not hosts.
func (n *Network) FlowPathCPs(flow FlowID, src, dst NodeID) []CPID {
	if int(src) >= len(n.nodes) || int(dst) >= len(n.nodes) {
		return nil
	}
	h, ok := n.nodes[src].(*Host)
	if !ok || h.port == nil {
		return nil
	}
	probe := Packet{Flow: flow, Dst: dst}
	node := h.port.PeerNode
	var out []CPID
	for hops := 0; hops <= n.maxHops(); hops++ {
		sw, ok := node.(*Switch)
		if !ok {
			return out // reached a host (the destination)
		}
		p := sw.egressFor(&probe)
		if p == nil {
			return out
		}
		out = append(out, CPID{Node: sw.id, Port: p.Index})
		node = p.PeerNode
	}
	return out
}

// Reconverges returns how many route recomputations have completed.
func (n *Network) Reconverges() uint64 { return n.reconverges }

// StalePauseDrops returns how many PFC frames were discarded because
// they predate the receiving link's last re-establishment.
func (n *Network) StalePauseDrops() uint64 { return n.stalePauseDrops }
