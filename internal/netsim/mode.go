package netsim

import "fmt"

// OperatingMode is a fabric's loss discipline: how the network divides
// the work of absorbing congestion between PFC backpressure and
// congestion control. The three modes are the deployment question every
// RoCEv2 operator answers (NCCL-over-RoCE practice): pure PFC, pure
// CC over a lossy fabric, or CC with PFC as the backstop.
type OperatingMode int

const (
	// ModeHybrid is the paper's default: congestion control carries the
	// load and PFC, armed at the tier threshold, backstops transients.
	// The fabric is lossless.
	ModeHybrid OperatingMode = iota

	// ModePFCOnly disables congestion control entirely: sources blast at
	// their caps and PFC hop-by-hop backpressure is the only brake. The
	// fabric is lossless but carries the full pause load — head-of-line
	// blocking, pause cascades, and deadlock exposure come with it.
	ModePFCOnly

	// ModeCCOnlyLossy disables PFC: ECN/rate/window control carries all
	// the load, the buffer is capped at 3x the PFC threshold, and
	// anything past it tail-drops (App. A.2's lossy regime). Transfers
	// that must complete ride go-back-N.
	ModeCCOnlyLossy
)

// AllOperatingModes returns the three modes in sweep order.
func AllOperatingModes() []OperatingMode {
	return []OperatingMode{ModeHybrid, ModePFCOnly, ModeCCOnlyLossy}
}

func (m OperatingMode) String() string {
	switch m {
	case ModeHybrid:
		return "hybrid"
	case ModePFCOnly:
		return "pfconly"
	case ModeCCOnlyLossy:
		return "cconly"
	}
	return "unknown"
}

// ParseOperatingMode resolves a mode name. The empty string is Hybrid —
// the default discipline — so serialized configs omit it.
func ParseOperatingMode(s string) (OperatingMode, error) {
	switch s {
	case "", "hybrid":
		return ModeHybrid, nil
	case "pfconly", "pfc", "pfc-only":
		return ModePFCOnly, nil
	case "cconly", "cc-only", "lossy", "cconlylossy":
		return ModeCCOnlyLossy, nil
	}
	return ModeHybrid, fmt.Errorf("netsim: unknown operating mode %q (want hybrid, pfconly or cconly)", s)
}

// CCEnabled reports whether flows run congestion control in this mode.
func (m OperatingMode) CCEnabled() bool { return m != ModePFCOnly }

// Lossless reports whether the fabric guarantees zero tail drops (PFC
// armed on every switch).
func (m OperatingMode) Lossless() bool { return m != ModeCCOnlyLossy }

// BufferConfig derives the switch buffer configuration for this mode
// from the fabric's PFC threshold — the one place lossy buffer sizing
// (3x the threshold, App. A.2) and PFC arming are decided.
func (m OperatingMode) BufferConfig(pfcThreshold int) BufferConfig {
	if m == ModeCCOnlyLossy {
		return BufferConfig{TotalBytes: 3 * pfcThreshold}
	}
	return BufferConfig{PFCEnabled: true, PFCThreshold: pfcThreshold}
}

// Apply rewrites every switch's buffer configuration for the mode,
// deriving each from the switch's current PFC threshold. Topology
// builders arm PFC at the tier threshold, so applying ModeHybrid (or
// ModePFCOnly) is an identity on a freshly built fabric; ModeCCOnlyLossy
// disarms PFC and caps the buffer.
func (m OperatingMode) Apply(switches []*Switch) {
	for _, s := range switches {
		s.Buffer = m.BufferConfig(s.Buffer.PFCThreshold)
	}
}
