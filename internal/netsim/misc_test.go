package netsim

import (
	"strings"
	"testing"

	"rocc/internal/sim"
)

func TestPausedForAccounting(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	h := net.AddHost("h")
	_, hp := net.Connect(sw, h, Gbps(40), 1500)
	_ = hp
	port := sw.Port(0)
	port.SetPaused(true)
	// Regression: reading mid-pause must include the in-progress pause,
	// not just completed intervals (the Fig 17b-adjacent undercount).
	engine.At(60*sim.Microsecond, func() {
		if got := port.PausedFor(); got != 60*sim.Microsecond {
			t.Errorf("mid-pause PausedFor = %v, want 60us", got)
		}
	})
	engine.At(100*sim.Microsecond, func() { port.SetPaused(false) })
	engine.RunUntil(200 * sim.Microsecond)
	if port.PausedFor() != 100*sim.Microsecond {
		t.Errorf("PausedFor = %v, want 100us", port.PausedFor())
	}
	port.SetPaused(false) // idempotent
	if port.PausedFor() != 100*sim.Microsecond {
		t.Error("double unpause changed accounting")
	}
}

func TestInjectWithoutRoutePanics(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	defer func() {
		if recover() == nil {
			t.Error("Inject without route did not panic")
		}
	}()
	sw.Inject(&Packet{Dst: 99, Kind: KindCNP, Cls: ClassCtrl, Size: 64})
}

func TestNetworkCounters(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{TotalBytes: 30 * KB})
	f := net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	engine.RunUntil(sim.Millisecond)
	if net.TotalDrops() != sw.Drops {
		t.Error("TotalDrops does not match the switch")
	}
	if net.TotalPFCFrames() != 0 {
		t.Error("PFC frames counted with PFC disabled")
	}
	if net.ActiveFlowCount() != 2 {
		t.Errorf("ActiveFlowCount = %d, want 2", net.ActiveFlowCount())
	}
	f.Stop()
	engine.RunUntil(2 * sim.Millisecond)
	if net.ActiveFlowCount() != 1 {
		t.Errorf("ActiveFlowCount after stop = %d, want 1", net.ActiveFlowCount())
	}
}

func TestCompletedFlowStaysAddressableBriefly(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: 1000})
	engine.RunUntil(50 * sim.Microsecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if net.Flow(f.ID) == nil {
		t.Error("flow unregistered before the grace period")
	}
	engine.RunUntil(engine.Now() + removeGrace + sim.Microsecond)
	if net.Flow(f.ID) != nil {
		t.Error("flow still registered after the grace period")
	}
}

func TestExtraHeaderChargedOnWire(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: 5000, ExtraHeader: 42})
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	want := uint64(5000 + 5*(HeaderBytes+42))
	if b.RxDataBytes != want {
		t.Errorf("wire bytes = %d, want %d", b.RxDataBytes, want)
	}
}

func TestNoCCBehaviour(t *testing.T) {
	var cc NoCC
	at, ok := cc.Allow(123, 1000)
	if !ok || at != 123 {
		t.Error("NoCC must always allow immediately")
	}
	if cc.CurrentRate() <= Gbps(1000) {
		t.Error("NoCC rate should be effectively unlimited")
	}
	cc.OnSent(0, nil)
	cc.OnAck(0, nil)
	cc.OnCNP(0, nil) // no-ops must not panic
}

func TestPacerConsumeAdvances(t *testing.T) {
	var p Pacer
	now := sim.Time(1000)
	if p.Next(now) != now {
		t.Error("fresh pacer should be immediately eligible")
	}
	p.Consume(now, Gbps(8), 1000) // 1 us per 1000B at 8G
	if got := p.Next(now); got != now+sim.Microsecond {
		t.Errorf("next = %v, want now+1us", got)
	}
	p.Reset()
	if p.Next(now) != now {
		t.Error("reset pacer not immediately eligible")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindData: "data", KindAck: "ack", KindCNP: "cnp", KindPause: "pause", Kind(99): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCPIDZero(t *testing.T) {
	if !(CPID{}).Zero() {
		t.Error("zero CPID not Zero")
	}
	if (CPID{Node: 1}).Zero() {
		t.Error("non-zero CPID reported Zero")
	}
}

func TestConnectUnknownNodeTypePanics(t *testing.T) {
	engine := sim.New()
	net := New(engine, 1)
	h := net.AddHost("h")
	defer func() {
		if recover() == nil {
			t.Error("unknown node type did not panic")
		}
	}()
	net.Connect(h, fakeNode{}, Gbps(1), 1)
}

type fakeNode struct{}

func (fakeNode) ID() NodeID                 { return 999 }
func (fakeNode) Ports() []*Port             { return nil }
func (fakeNode) Arrive(pkt *Packet, in int) {}

func TestTracerRecordsPortEvents(t *testing.T) {
	engine, net, a, b, sw := pair(Gbps(40))
	port := sw.Port(1) // toward b
	port.Tracer = NewTracer(8)
	f := net.StartFlow(a, b, FlowConfig{Size: 5000})
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	events := port.Tracer.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	// 5 packets enqueue + 5 dequeue = 10 total; ring keeps last 8.
	if port.Tracer.Total() != 10 {
		t.Errorf("Total = %d, want 10", port.Tracer.Total())
	}
	if len(events) != 8 {
		t.Errorf("retained %d, want ring size 8", len(events))
	}
	// Oldest-first ordering by time.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events not oldest-first")
		}
	}
	var sb strings.Builder
	port.Tracer.Dump(&sb)
	if !strings.Contains(sb.String(), "dequeue") {
		t.Error("dump missing dequeue events")
	}
}

func TestTracerPauseEvents(t *testing.T) {
	engine, net, srcs, dst, sw, _ := congested(BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 40 * KB,
	})
	// The pause lands on the upstream sender's NIC port.
	in := srcs[0].NIC()
	in.Tracer = NewTracer(64)
	srcs[1].NIC().Tracer = in.Tracer
	_ = sw
	f1 := net.StartFlow(srcs[0], dst, FlowConfig{Size: -1})
	f2 := net.StartFlow(srcs[1], dst, FlowConfig{Size: -1})
	engine.RunUntil(2 * sim.Millisecond)
	pauses := 0
	for _, e := range in.Tracer.Events() {
		if e.What == "pause" || e.What == "resume" {
			pauses++
		}
	}
	if pauses == 0 {
		t.Error("no pause/resume events traced under PFC")
	}
	f1.Stop()
	f2.Stop()
}
