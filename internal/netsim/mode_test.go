package netsim

import (
	"testing"

	"rocc/internal/sim"
)

func TestOperatingModeRoundTrip(t *testing.T) {
	for _, m := range AllOperatingModes() {
		got, err := ParseOperatingMode(m.String())
		if err != nil {
			t.Fatalf("ParseOperatingMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseOperatingMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if m, err := ParseOperatingMode(""); err != nil || m != ModeHybrid {
		t.Fatalf("empty mode: got %v, %v; want hybrid", m, err)
	}
	if _, err := ParseOperatingMode("bogus"); err == nil {
		t.Fatal("ParseOperatingMode accepted a bogus mode")
	}
}

func TestOperatingModeProperties(t *testing.T) {
	cases := []struct {
		mode     OperatingMode
		cc       bool
		lossless bool
	}{
		{ModeHybrid, true, true},
		{ModePFCOnly, false, true},
		{ModeCCOnlyLossy, true, false},
	}
	for _, c := range cases {
		if c.mode.CCEnabled() != c.cc {
			t.Errorf("%v CCEnabled = %v, want %v", c.mode, c.mode.CCEnabled(), c.cc)
		}
		if c.mode.Lossless() != c.lossless {
			t.Errorf("%v Lossless = %v, want %v", c.mode, c.mode.Lossless(), c.lossless)
		}
	}
}

func TestOperatingModeBufferConfig(t *testing.T) {
	const thr = 500 * KB
	hybrid := ModeHybrid.BufferConfig(thr)
	if !hybrid.PFCEnabled || hybrid.PFCThreshold != thr || hybrid.TotalBytes != 0 {
		t.Fatalf("hybrid buffer config %+v", hybrid)
	}
	pfc := ModePFCOnly.BufferConfig(thr)
	if pfc != hybrid {
		t.Fatalf("pfconly buffer %+v differs from hybrid %+v", pfc, hybrid)
	}
	lossy := ModeCCOnlyLossy.BufferConfig(thr)
	if lossy.PFCEnabled || lossy.TotalBytes != 3*thr {
		t.Fatalf("cconly buffer config %+v", lossy)
	}
}

// Applying the hybrid mode to a freshly built lossless fabric must be an
// identity: the topology builders and the mode helper agree on what a
// hybrid switch looks like.
func TestApplyHybridIsIdentity(t *testing.T) {
	net := New(sim.New(), 1)
	sw := net.AddSwitch("s0", BufferConfig{PFCEnabled: true, PFCThreshold: 500 * KB})
	before := sw.Buffer
	ModeHybrid.Apply(net.Switches())
	if sw.Buffer != before {
		t.Fatalf("hybrid Apply changed the config: %+v -> %+v", before, sw.Buffer)
	}
	ModeCCOnlyLossy.Apply(net.Switches())
	if sw.Buffer.PFCEnabled || sw.Buffer.TotalBytes != 3*500*KB {
		t.Fatalf("cconly Apply produced %+v", sw.Buffer)
	}
}
