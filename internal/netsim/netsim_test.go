package netsim

import (
	"testing"

	"rocc/internal/sim"
)

// pair builds host—switch—host with the given link rate.
func pair(rate Rate) (*sim.Engine, *Network, *Host, *Host, *Switch) {
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, rate, 1500*sim.Nanosecond)
	net.Connect(sw, b, rate, 1500*sim.Nanosecond)
	net.ComputeRoutes()
	return engine, net, a, b, sw
}

func TestRateUnits(t *testing.T) {
	if Gbps(40).Gbps() != 40 {
		t.Error("Gbps round trip failed")
	}
	if Mbps(250).Mbps() != 250 {
		t.Error("Mbps round trip failed")
	}
	if got := Gbps(40).TxTime(1000); got != 200 {
		t.Errorf("1000B @ 40G = %v ns, want 200", got)
	}
	if got := Gbps(100).TxTime(1000); got != 80 {
		t.Errorf("1000B @ 100G = %v ns, want 80", got)
	}
	// Ceil behaviour: 1 byte at 100G is 0.08 ns -> 1 ns.
	if got := Gbps(100).TxTime(1); got != 1 {
		t.Errorf("1B @ 100G = %v, want 1 (ceil)", got)
	}
}

func TestRateString(t *testing.T) {
	cases := map[string]Rate{
		"40.00Gb/s":  Gbps(40),
		"250.00Mb/s": Mbps(250),
		"100b/s":     Rate(100),
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestTxTimeZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TxTime with zero rate did not panic")
		}
	}()
	Rate(0).TxTime(100)
}

func TestFlowDeliversExactly(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: 55555})
	engine.RunUntil(10 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow not complete")
	}
	if f.DeliveredBytes() != 55555 {
		t.Errorf("delivered %d, want 55555", f.DeliveredBytes())
	}
}

func TestFCTMatchesTheory(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	size := int64(100 * 1000)
	f := net.StartFlow(a, b, FlowConfig{Size: size})
	engine.RunUntil(10 * sim.Millisecond)
	// Store-and-forward over 2 hops: total wire bytes / rate + pipeline.
	packets := (size + MTUPayload - 1) / MTUPayload
	wire := size + packets*HeaderBytes
	serialization := Gbps(40).TxTime(int(wire))
	perHop := Gbps(40).TxTime(MTUPayload+HeaderBytes) + 1500*sim.Nanosecond
	ideal := serialization + perHop + 1500*sim.Nanosecond
	got := f.FCT()
	if got < ideal || got > ideal+ideal/10 {
		t.Errorf("FCT = %v, want within 10%% above %v", got, ideal)
	}
}

func TestOfferedRateCap(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: -1, MaxRate: Gbps(4)})
	engine.RunUntil(10 * sim.Millisecond)
	rate := float64(f.DeliveredBytes()) * 8 / 0.010
	if rate > 4.05e9 || rate < 3.6e9 {
		t.Errorf("delivered rate = %.2f Gb/s, want ~4 (app-paced)", rate/1e9)
	}
	f.Stop()
}

func TestUnboundedFlowStops(t *testing.T) {
	engine, net, a, b, _ := pair(Gbps(40))
	f := net.StartFlow(a, b, FlowConfig{Size: -1})
	engine.RunUntil(sim.Millisecond)
	f.Stop()
	sent := f.SentBytes()
	engine.RunUntil(2 * sim.Millisecond)
	if f.SentBytes() != sent {
		t.Error("flow kept sending after Stop")
	}
	if net.ActiveFlowCount() != 0 {
		t.Error("stopped flow still registered")
	}
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	// With NoCC, the NIC round-robin on the shared source gives equal
	// shares to two flows from one host.
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	c := net.AddHost("c")
	net.Connect(a, sw, Gbps(40), 1500)
	net.Connect(sw, b, Gbps(40), 1500)
	net.Connect(sw, c, Gbps(40), 1500)
	net.ComputeRoutes()
	f1 := net.StartFlow(a, b, FlowConfig{Size: -1})
	f2 := net.StartFlow(a, c, FlowConfig{Size: -1})
	engine.RunUntil(5 * sim.Millisecond)
	d1, d2 := f1.DeliveredBytes(), f2.DeliveredBytes()
	ratio := float64(d1) / float64(d2)
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("round-robin shares unequal: %d vs %d", d1, d2)
	}
}

func TestSelfFlowPanics(t *testing.T) {
	_, net, a, _, _ := pair(Gbps(40))
	defer func() {
		if recover() == nil {
			t.Error("self-flow did not panic")
		}
	}()
	net.StartFlow(a, a, FlowConfig{Size: 1000})
}

func TestPortStrictPriorityPop(t *testing.T) {
	// Direct unit test of the per-class strict priority: with ctrl, ack
	// and data all queued, pops come out in class order.
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	b := net.AddHost("b")
	p, _ := net.Connect(sw, b, Gbps(1), 1500)
	net.ComputeRoutes()
	// Stuff queues directly while the port is busy with a first packet.
	p.Enqueue(&Packet{Kind: KindData, Cls: ClassData, Size: MTUPayload, Dst: b.ID()})
	p.Enqueue(&Packet{Kind: KindData, Cls: ClassData, Size: MTUPayload, Dst: b.ID()})
	p.Enqueue(&Packet{Kind: KindAck, Cls: ClassAck, Size: AckBytes, Dst: b.ID()})
	p.Enqueue(&Packet{Kind: KindCNP, Cls: ClassCtrl, Size: CNPBytes, Dst: b.ID()})
	// First pop already happened (a data packet, the queue was empty on
	// arrival). The next pops must be ctrl, then ack, then data.
	order := []*Packet{p.nextPacket(), p.nextPacket(), p.nextPacket()}
	want := []Class{ClassCtrl, ClassAck, ClassData}
	for i, pkt := range order {
		if pkt == nil || pkt.Cls != want[i] {
			t.Fatalf("pop %d = %+v, want class %d", i, pkt, want[i])
		}
	}
	_ = engine
}

func TestCtrlClassBypassesDataBacklog(t *testing.T) {
	// Quantitative version: with a standing data backlog, a CNP's
	// one-way latency must stay near serialization+propagation, far
	// below the data queueing delay.
	engine := sim.New()
	net := New(engine, 1)
	sw := net.AddSwitch("s", BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, Gbps(10), 1500)
	swPort, _ := net.Connect(sw, b, Gbps(1), 1500) // bottleneck builds a queue
	net.ComputeRoutes()
	f := net.StartFlow(a, b, FlowConfig{Size: -1})
	engine.RunUntil(2 * sim.Millisecond)
	backlog := swPort.QueueBytes(ClassData)
	if backlog < 100*KB {
		t.Fatalf("backlog only %d bytes; topology wrong", backlog)
	}
	sent := engine.Now()
	sw.Inject(&Packet{Flow: f.ID, Src: sw.ID(), Dst: b.ID(), Kind: KindCNP, Cls: ClassCtrl, Size: CNPBytes})
	for b.CNPsRx == 0 && engine.Now() < sent+sim.Millisecond {
		engine.Step()
	}
	latency := engine.Now() - sent
	dataDelay := Rate(1e9).TxTime(backlog)
	if latency > dataDelay/10 {
		t.Errorf("CNP latency %v vs data backlog delay %v: not prioritized", latency, dataDelay)
	}
	f.Stop()
}

func TestUtilizationHelper(t *testing.T) {
	if got := Utilization(5e9/8, Gbps(10), sim.Second); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if Utilization(100, Gbps(10), 0) != 0 {
		t.Error("zero interval should give 0")
	}
}
