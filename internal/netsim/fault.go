package netsim

import "rocc/internal/sim"

// FaultHook intercepts packets the moment they finish serializing on a
// port and are about to propagate to the link peer. It is the seam the
// fault-injection layer (internal/faults) attaches to: the simulator
// calls it for every packet on a link — data, ACKs, CNPs and PFC pause
// frames alike — and the hook decides the packet's fate. Ports without a
// hook behave exactly as if this file did not exist (no extra events, no
// RNG draws), so fault-free runs are byte-identical with or without the
// layer compiled in.
type FaultHook interface {
	// OnTransmit returns the fate of pkt on this link. The returned
	// verdict's Pkt is what actually propagates: pkt itself (healthy),
	// a mangled clone (corruption), or nil (the link lost the packet).
	OnTransmit(now sim.Time, pkt *Packet) FaultVerdict
}

// FaultVerdict is a FaultHook's decision for one packet.
type FaultVerdict struct {
	// Pkt is the packet to deliver, or nil if the link dropped it.
	Pkt *Packet

	// ExtraDelay is added to the link's propagation delay, landing the
	// packet behind later transmissions (reordering / late feedback).
	ExtraDelay sim.Time

	// Duplicate delivers a second, cloned copy of Pkt.
	Duplicate bool
}

// Deliver is the identity verdict: pkt propagates unharmed.
func Deliver(pkt *Packet) FaultVerdict { return FaultVerdict{Pkt: pkt} }

// Clone copies a packet outside the pool (fault hooks use it to build
// corrupted substitutes). Packets are normally owned by exactly one queue
// or in-flight event, so the copy gets its own CNP payload and INT
// slices — the receiver and any switch pipeline may mutate them
// independently, and the clone outlives the original's release. The
// clone is unpooled: releasing it is a no-op and the GC reclaims it. For
// a pooled copy use Network.ClonePacket.
func (pkt *Packet) Clone() *Packet {
	c := *pkt
	c.pooled = false
	c.pc = pcheck{}
	if pkt.CNP != nil {
		c.cnpStore = *pkt.CNP
		c.CNP = &c.cnpStore
	}
	// Slices must not share backing arrays with the (releasable) original,
	// even at zero length — a later append would write into its buffer.
	c.INT = append([]INTRecord(nil), pkt.INT...)
	c.EchoINT = append([]INTRecord(nil), pkt.EchoINT...)
	return &c
}

// pfcResetter is implemented by nodes whose sent-pause bookkeeping must
// be cleared when one of their links re-establishes (see Port.SetLinkDown).
type pfcResetter interface {
	resetPFC(portIndex int)
}
