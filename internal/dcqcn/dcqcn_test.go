package dcqcn

import (
	"math"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestDefaultConfigScaling(t *testing.T) {
	c40 := DefaultConfig(40)
	if c40.RAIMbps != 40 || c40.RHAIMbps != 400 {
		t.Errorf("40G steps = %v/%v", c40.RAIMbps, c40.RHAIMbps)
	}
	if c40.KminBytes != 40000 || c40.KmaxBytes != 200000 {
		t.Errorf("40G marking band = %d..%d", c40.KminBytes, c40.KmaxBytes)
	}
	c100 := DefaultConfig(100)
	if c100.KminBytes != 100000 || c100.RAIMbps != 100 {
		t.Errorf("100G scaling wrong: %+v", c100)
	}
	c10 := DefaultConfig(10)
	if c10.RAIMbps != 40 {
		t.Errorf("sub-40G must not scale down: %v", c10.RAIMbps)
	}
}

func TestMarkerZones(t *testing.T) {
	cfg := DefaultConfig(40)
	m := NewMarker(cfg, sim.NewRand(1))
	mark := func(qlen int, n int) int {
		marked := 0
		for i := 0; i < n; i++ {
			pkt := &netsim.Packet{ECT: true, Kind: netsim.KindData}
			m.OnEnqueue(0, pkt, qlen)
			if pkt.CE {
				marked++
			}
		}
		return marked
	}
	if got := mark(cfg.KminBytes, 1000); got != 0 {
		t.Errorf("marked %d below Kmin", got)
	}
	if got := mark(cfg.KmaxBytes, 1000); got != 1000 {
		t.Errorf("marked %d/1000 above Kmax", got)
	}
	// Midpoint: probability Pmax/2 = 0.5%; binomial over 20000 trials.
	mid := (cfg.KminBytes + cfg.KmaxBytes) / 2
	got := mark(mid, 20000)
	if got < 40 || got > 180 {
		t.Errorf("midpoint marks = %d/20000, want ~100", got)
	}
}

func TestMarkerIgnoresNonECT(t *testing.T) {
	m := NewMarker(DefaultConfig(40), sim.NewRand(1))
	pkt := &netsim.Packet{ECT: false}
	m.OnEnqueue(0, pkt, 10_000_000)
	if pkt.CE {
		t.Error("non-ECT packet marked")
	}
	if m.Seen != 0 {
		t.Error("non-ECT packet counted")
	}
}

func TestReceiverCNPModeration(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	r := NewReceiver(DefaultConfig(40), h)

	marked := &netsim.Packet{Flow: 7, Src: 3, CE: true, Kind: netsim.KindData}
	if cnp := r.OnData(0, marked); cnp == nil {
		t.Fatal("no CNP for first marked packet")
	} else {
		if cnp.Kind != netsim.KindCNP || cnp.Dst != 3 || cnp.Flow != 7 {
			t.Errorf("CNP fields wrong: %+v", cnp)
		}
		if cnp.Cls != netsim.ClassCtrl {
			t.Error("CNP not prioritized")
		}
	}
	// Within the interval: suppressed.
	if cnp := r.OnData(49*sim.Microsecond, marked); cnp != nil {
		t.Error("CNP not moderated within 50us")
	}
	// After the interval: allowed.
	if cnp := r.OnData(51*sim.Microsecond, marked); cnp == nil {
		t.Error("CNP suppressed after the interval")
	}
	// Other flows moderate independently.
	other := &netsim.Packet{Flow: 8, Src: 3, CE: true, Kind: netsim.KindData}
	if cnp := r.OnData(52*sim.Microsecond, other); cnp == nil {
		t.Error("unrelated flow's CNP suppressed")
	}
	// Unmarked packets never generate CNPs.
	clean := &netsim.Packet{Flow: 9, Src: 3, CE: false}
	if cnp := r.OnData(sim.Second, clean); cnp != nil {
		t.Error("CNP for unmarked packet")
	}
}

func newSenderFixture() (*sim.Engine, *netsim.Host, *FlowCC) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cc := NewFlowCC(engine, h, DefaultConfig(40))
	return engine, h, cc
}

func TestSenderCutSequence(t *testing.T) {
	_, _, cc := newSenderFixture()
	if cc.CurrentRate().Mbps() != 40000 {
		t.Fatalf("initial rate = %v", cc.CurrentRate().Mbps())
	}
	cnp := &netsim.Packet{Kind: netsim.KindCNP}
	cc.OnCNP(0, cnp)
	// First CNP: alpha = (1-g)·1 + g = 1 -> wait, alpha starts at 1 and
	// stays ~1, so the first cut is ~Rc/2.
	r1 := cc.CurrentRate().Mbps()
	if math.Abs(r1-20000) > 100 {
		t.Errorf("rate after first cut = %v, want ~20000", r1)
	}
	cc.OnCNP(0, cnp)
	r2 := cc.CurrentRate().Mbps()
	if r2 >= r1 {
		t.Error("second CNP did not cut further")
	}
	if cc.Cuts != 2 {
		t.Errorf("Cuts = %d", cc.Cuts)
	}
}

func TestSenderRateFloor(t *testing.T) {
	_, _, cc := newSenderFixture()
	cnp := &netsim.Packet{Kind: netsim.KindCNP}
	for i := 0; i < 100; i++ {
		cc.OnCNP(0, cnp)
	}
	if got := cc.CurrentRate().Mbps(); got < 10 {
		t.Errorf("rate %v below floor", got)
	}
}

func TestSenderTimerRecovery(t *testing.T) {
	engine, _, cc := newSenderFixture()
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	cut := cc.CurrentRate().Mbps()
	// Fast recovery: each timer tick moves Rc halfway back to Rt.
	engine.RunUntil(3 * 55 * sim.Microsecond)
	r := cc.CurrentRate().Mbps()
	if r <= cut {
		t.Errorf("no recovery: %v <= %v", r, cut)
	}
	if r > 40000 {
		t.Errorf("rate exceeded line rate: %v", r)
	}
	// Long idle: hyper increase drives the rate back to line rate.
	engine.RunUntil(20 * sim.Millisecond)
	if got := cc.CurrentRate().Mbps(); got != 40000 {
		t.Errorf("rate after long recovery = %v, want line rate", got)
	}
	cc.Stop()
}

func TestSenderAlphaDecays(t *testing.T) {
	engine, _, cc := newSenderFixture()
	cnp := &netsim.Packet{Kind: netsim.KindCNP}
	for i := 0; i < 10; i++ {
		cc.OnCNP(0, cnp)
	}
	// After many idle alpha periods, a new CNP cuts much less than 1/2.
	engine.RunUntil(60 * sim.Millisecond)
	before := cc.CurrentRate().Mbps()
	cc.OnCNP(engine.Now(), cnp)
	after := cc.CurrentRate().Mbps()
	cutFraction := 1 - after/before
	if cutFraction > 0.1 {
		t.Errorf("cut fraction %v after alpha decay, want small", cutFraction)
	}
	cc.Stop()
}

func TestSenderByteCounterStage(t *testing.T) {
	engine, _, cc := newSenderFixture()
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	// Push a byte counter's worth of traffic through OnSent.
	pkt := &netsim.Packet{Size: 1048, Seq: 0, Payload: 1000}
	for sent := int64(0); sent < 10_000_000; sent += 1048 {
		cc.OnSent(0, pkt)
	}
	if cc.stageByte == 0 {
		t.Error("byte counter stage never advanced")
	}
	if cc.Increases == 0 {
		t.Error("no increase events from the byte counter")
	}
	_ = engine
	cc.Stop()
}

func TestStopCancelsTimers(t *testing.T) {
	engine, _, cc := newSenderFixture()
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	cc.Stop()
	r := cc.CurrentRate().Mbps()
	engine.RunUntil(10 * sim.Millisecond)
	if cc.CurrentRate().Mbps() != r {
		t.Error("timers still firing after Stop")
	}
	if engine.Pending() != 0 {
		t.Errorf("%d events still pending after Stop", engine.Pending())
	}
}

func TestPacingHonorsRate(t *testing.T) {
	_, _, cc := newSenderFixture()
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP}) // 20G
	var now sim.Time
	bytes := 0
	for i := 0; i < 100; i++ {
		at, ok := cc.Allow(now, 1000)
		if !ok {
			t.Fatal("rate-based CC blocked")
		}
		if at > now {
			now = at
		}
		cc.OnSent(now, &netsim.Packet{Size: 1048})
		bytes += 1048
	}
	rate := float64(bytes) * 8 / now.Seconds()
	if math.Abs(rate-20e9)/20e9 > 0.02 {
		t.Errorf("paced at %.2f Gb/s, want ~20", rate/1e9)
	}
}
