package dcqcn

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Ops is DCQCN's netsim.CongestionOps descriptor: RED-style markers on
// switch egress ports, CNP-generating receivers, and the g/α rate
// controller per flow. Config derives parameters from each element's
// local link rate, so mixed-speed fabrics get correctly scaled marking
// curves and rate steps.
type Ops struct {
	// Rand drives probabilistic marking; all markers built by this
	// descriptor share it (one stream per fabric).
	Rand *sim.Rand

	// Config maps a link/NIC rate to DCQCN parameters. Nil selects
	// DefaultConfig.
	Config func(gbps float64) Config
}

func (o *Ops) config(gbps float64) Config {
	if o.Config != nil {
		return o.Config(gbps)
	}
	return DefaultConfig(gbps)
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "DCQCN" }

// Features implements netsim.CongestionOps.
func (o *Ops) Features() netsim.CCFeatures {
	return netsim.CCFeatures{UsesCNP: true, CNPClass: netsim.ClassCtrl}
}

// AttachPort implements netsim.CongestionOps.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	r := o.Rand
	if net.Sharded() {
		// Sharded fabrics give each marker its own stream, seeded
		// deterministically from the shared one at attach order: markers
		// on different shards draw concurrently, and a shared stream
		// would race (and make draw order partition-dependent).
		r = o.Rand.Split()
	}
	return NewMarker(o.config(port.LinkRate.Gbps()), r)
}

// NewReceiver implements netsim.CongestionOps: at most one CNP per flow
// per CNPInterval when marked packets arrive.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook {
	return NewReceiver(o.config(h.NIC().LinkRate.Gbps()), h)
}

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src.Engine(), src, o.config(src.NIC().LinkRate.Gbps()))
}

// AckEvery implements netsim.CongestionOps: DCQCN needs no flow ACKs.
func (o *Ops) AckEvery(src *netsim.Host) int { return 0 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (m *Marker) CCProtocol() string { return "DCQCN" }
