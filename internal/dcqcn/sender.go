package dcqcn

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// FlowCC is the DCQCN reaction point for one flow.
type FlowCC struct {
	engine *sim.Engine
	host   *netsim.Host
	cfg    Config

	rc    float64 // current rate, Mb/s
	rt    float64 // target rate, Mb/s
	alpha float64

	bytesSinceInc int64
	stageByte     int
	stageTime     int

	alphaTimer sim.Handle
	rateTimer  sim.Handle
	pacer      netsim.Pacer

	// Counters.
	Cuts      int
	Increases int
}

// NewFlowCC builds a DCQCN rate controller starting at line rate.
func NewFlowCC(engine *sim.Engine, host *netsim.Host, cfg Config) *FlowCC {
	if cfg.RmaxMbps == 0 {
		cfg.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	cc := &FlowCC{
		engine: engine,
		host:   host,
		cfg:    cfg,
		rc:     cfg.RmaxMbps,
		rt:     cfg.RmaxMbps,
		alpha:  1,
	}
	cc.armAlphaTimer()
	cc.armRateTimer()
	return cc
}

// Allow implements netsim.FlowCC: pure rate pacing.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	cc.pacer.Consume(now, netsim.Mbps(cc.rc), pkt.Size)
	cc.bytesSinceInc += int64(pkt.Size)
	if cc.bytesSinceInc >= cc.cfg.ByteCounter {
		cc.bytesSinceInc = 0
		cc.stageByte++
		cc.increase()
	}
}

// OnAck implements netsim.FlowCC. DCQCN ignores ACKs.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {}

// OnCNP implements netsim.FlowCC: the DCQCN rate decrease.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {
	cc.rt = cc.rc
	cc.alpha = (1-cc.cfg.G)*cc.alpha + cc.cfg.G
	cc.rc = cc.rc * (1 - cc.alpha/2)
	if cc.rc < cc.cfg.RminMbps {
		cc.rc = cc.cfg.RminMbps
	}
	cc.stageByte = 0
	cc.stageTime = 0
	cc.bytesSinceInc = 0
	cc.Cuts++
	cc.armAlphaTimer()
	cc.armRateTimer()
}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate { return netsim.Mbps(cc.rc) }

// Stop cancels internal timers (for teardown in long experiments).
func (cc *FlowCC) Stop() {
	cc.alphaTimer.Cancel()
	cc.rateTimer.Cancel()
}

// The repeating timers reschedule through package-level callbacks so a
// long-running sender's timer wheel reuses pooled event slots instead of
// allocating a closure per tick.

func (cc *FlowCC) armAlphaTimer() {
	cc.alphaTimer.Cancel()
	cc.alphaTimer = cc.engine.AfterCall(cc.cfg.AlphaTimer, alphaTick, cc, nil)
}

func alphaTick(a, _ any) {
	cc := a.(*FlowCC)
	cc.alpha = (1 - cc.cfg.G) * cc.alpha
	cc.armAlphaTimer()
}

func (cc *FlowCC) armRateTimer() {
	cc.rateTimer.Cancel()
	cc.rateTimer = cc.engine.AfterCall(cc.cfg.RateTimer, rateTick, cc, nil)
}

func rateTick(a, _ any) {
	cc := a.(*FlowCC)
	cc.stageTime++
	cc.increase()
	cc.armRateTimer()
}

// increase runs one rate-increase event: fast recovery, then additive,
// then hyper increase once both counters pass FastSteps.
func (cc *FlowCC) increase() {
	switch {
	case cc.stageByte > cc.cfg.FastSteps && cc.stageTime > cc.cfg.FastSteps:
		cc.rt += cc.cfg.RHAIMbps
	case cc.stageByte > cc.cfg.FastSteps || cc.stageTime > cc.cfg.FastSteps:
		cc.rt += cc.cfg.RAIMbps
	}
	if cc.rt > cc.cfg.RmaxMbps {
		cc.rt = cc.cfg.RmaxMbps
	}
	cc.rc = (cc.rt + cc.rc) / 2
	if cc.rc > cc.cfg.RmaxMbps {
		cc.rc = cc.cfg.RmaxMbps
	}
	cc.Increases++
	cc.host.Kick()
}
