// Package dcqcn reimplements DCQCN (Zhu et al., SIGCOMM 2015), the
// production RoCEv2 congestion control the paper compares against:
//
//   - Switch: RED-style probabilistic ECN marking between Kmin and Kmax.
//   - Receiver: at most one CNP per flow per CNPInterval when marked
//     packets arrive.
//   - Sender: multiplicative decrease with the g/α EWMA, then fast
//     recovery, additive increase, and hyper increase driven by a byte
//     counter and a timer.
package dcqcn

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds DCQCN parameters. Defaults follow the SIGCOMM'15 paper and
// common 40 GbE deployments; Scale adapts rate steps for faster links.
type Config struct {
	// Marking (congestion point).
	KminBytes int     // no marking below this queue length
	KmaxBytes int     // always mark above this queue length
	Pmax      float64 // marking probability at Kmax

	// Receiver (notification point).
	CNPInterval sim.Time // minimum CNP spacing per flow (50 µs)

	// Sender (reaction point).
	G           float64  // α EWMA gain (1/256)
	AlphaTimer  sim.Time // α decay interval without CNPs (55 µs)
	RateTimer   sim.Time // rate-increase timer period (55 µs)
	ByteCounter int64    // rate-increase byte counter (10 MB)
	FastSteps   int      // fast-recovery iterations before additive (5)
	RAIMbps     float64  // additive increase step (40 Mb/s)
	RHAIMbps    float64  // hyper increase step (400 Mb/s)
	RminMbps    float64  // rate floor (10 Mb/s)
	RmaxMbps    float64  // line rate; 0 = host NIC rate
}

// DefaultConfig returns the standard parameter set for a link of the given
// bandwidth in Gb/s.
func DefaultConfig(gbps float64) Config {
	scale := gbps / 40
	if scale < 1 {
		scale = 1
	}
	return Config{
		// Marking thresholds scale with line rate so the marking band
		// covers a comparable queuing delay at every port speed.
		KminBytes:   int(40 * netsim.KB * scale),
		KmaxBytes:   int(200 * netsim.KB * scale),
		Pmax:        0.01,
		CNPInterval: 50 * sim.Microsecond,
		G:           1.0 / 256,
		AlphaTimer:  55 * sim.Microsecond,
		RateTimer:   55 * sim.Microsecond,
		ByteCounter: 10 * 1000 * 1000,
		FastSteps:   5,
		RAIMbps:     40 * scale,
		RHAIMbps:    400 * scale,
		RminMbps:    10,
		RmaxMbps:    gbps * 1000,
	}
}

// Marker is the DCQCN congestion point: probabilistic ECN marking on
// enqueue. Attach to egress ports via Port.CC.
type Marker struct {
	cfg  Config
	rand *sim.Rand

	Marked uint64
	Seen   uint64
}

// NewMarker builds an ECN marker; rand drives the marking probability.
func NewMarker(cfg Config, rand *sim.Rand) *Marker {
	return &Marker{cfg: cfg, rand: rand}
}

// OnEnqueue implements netsim.PortCC.
func (m *Marker) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if !pkt.ECT {
		return
	}
	m.Seen++
	switch {
	case qlen <= m.cfg.KminBytes:
		return
	case qlen >= m.cfg.KmaxBytes:
		pkt.CE = true
	default:
		p := m.cfg.Pmax * float64(qlen-m.cfg.KminBytes) / float64(m.cfg.KmaxBytes-m.cfg.KminBytes)
		if m.rand.Float64() < p {
			pkt.CE = true
		}
	}
	if pkt.CE {
		m.Marked++
	}
}

// OnDequeue implements netsim.PortCC.
func (m *Marker) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {}

// Receiver is the DCQCN notification point: it converts marked data
// packets into CNPs, at most one per flow per CNPInterval.
type Receiver struct {
	cfg     Config
	host    *netsim.Host
	lastCNP map[netsim.FlowID]sim.Time

	CNPsSent uint64
}

// NewReceiver builds the notification-point hook for a destination host.
func NewReceiver(cfg Config, host *netsim.Host) *Receiver {
	return &Receiver{cfg: cfg, host: host, lastCNP: make(map[netsim.FlowID]sim.Time)}
}

// OnData implements netsim.ReceiverHook.
func (r *Receiver) OnData(now sim.Time, pkt *netsim.Packet) *netsim.Packet {
	if !pkt.CE {
		return nil
	}
	if last, ok := r.lastCNP[pkt.Flow]; ok && now-last < r.cfg.CNPInterval {
		return nil
	}
	r.lastCNP[pkt.Flow] = now
	r.CNPsSent++
	cnp := r.host.Network().AcquirePacketFor(r.host)
	cnp.Flow = pkt.Flow
	cnp.Src = r.host.ID()
	cnp.Dst = pkt.Src
	cnp.Kind = netsim.KindCNP
	cnp.Cls = netsim.ClassCtrl
	cnp.Size = netsim.CNPBytes
	cnp.SendTS = now
	return cnp
}
