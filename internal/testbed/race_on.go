//go:build race

package testbed

// raceEnabled reports whether the race detector is active. The real-time
// convergence tests are skipped under -race: instrumentation slows the
// software switch ~10x, which breaks its pacing budget (a performance
// artifact, not a correctness issue).
const raceEnabled = true
