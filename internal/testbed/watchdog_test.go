package testbed

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogFiresWithGoroutineDump simulates a hung scenario: the
// watchdog is armed and never stopped, and must deliver a multi-
// goroutine stack dump to the timeout handler.
func TestWatchdogFiresWithGoroutineDump(t *testing.T) {
	fired := make(chan string, 1)
	w := StartWatchdog(50*time.Millisecond, "hung-scenario", func(name string, stacks []byte) {
		fired <- name + "\n" + string(stacks)
	})
	defer w.Stop()

	select {
	case dump := <-fired:
		if !strings.Contains(dump, "hung-scenario") {
			t.Errorf("dump does not name the scenario: %.200s", dump)
		}
		// A whole-process dump always contains more than one goroutine
		// header (at minimum the test runner and the timer goroutine).
		if strings.Count(dump, "goroutine ") < 2 {
			t.Errorf("expected a multi-goroutine dump, got:\n%.500s", dump)
		}
		if !w.Fired.Load() {
			t.Error("Fired flag not set")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
}

// TestWatchdogStopDisarms: a scenario that finishes in time must never
// see the timeout handler run.
func TestWatchdogStopDisarms(t *testing.T) {
	var fired atomic.Bool
	w := StartWatchdog(30*time.Millisecond, "ok-scenario", func(string, []byte) {
		fired.Store(true)
	})
	w.Stop()
	w.Stop() // idempotent
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("watchdog fired after Stop")
	}
	if w.Fired.Load() {
		t.Fatal("Fired flag set after Stop")
	}
}

// TestScenarioRunWithWatchdog: a healthy run under a generous deadline
// completes normally with the watchdog armed.
func TestScenarioRunWithWatchdog(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time testbed run")
	}
	cfg := DefaultConfig()
	cfg.Watchdog = 30 * time.Second
	res, err := Run(cfg, Uniform, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.CNPs == 0 {
		t.Error("no CNPs observed in a congested uniform run")
	}
}
