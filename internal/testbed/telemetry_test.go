package testbed

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rocc/internal/telemetry"
)

// TestSwitchTelemetrySnapshot runs a short real-socket exchange with a
// registry attached and checks the gauges agree with the atomics they
// wrap. Snapshots race with the socket loops by design — run under
// -race, this is the "race-safe runtime snapshots" contract.
func TestSwitchTelemetrySnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = telemetry.New()
	cfg.PprofAddr = "127.0.0.1:0"
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	c, err := NewClient(cfg, 7, sw, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.After(3 * time.Second)
	for sw.Forwarded.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("switch never forwarded a datagram")
		case <-time.After(10 * time.Millisecond):
			_ = cfg.Metrics.Snapshot() // hammer snapshots while loops run
		}
	}
	snap := cfg.Metrics.Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["testbed.switch.forwarded"] < 1 {
		t.Errorf("forwarded gauge = %v", gauges["testbed.switch.forwarded"])
	}
	if _, ok := gauges["testbed.client.7.sent_bytes"]; !ok {
		t.Error("client gauge not registered")
	}
	if gauges["testbed.client.7.sent_bytes"] < 1 {
		t.Errorf("client sent_bytes gauge = %v", gauges["testbed.client.7.sent_bytes"])
	}
	// The debug server exposes the same snapshot over HTTP.
	addr := sw.DebugAddr()
	if addr == "" {
		t.Fatal("debug server not started")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "testbed.switch.forwarded") {
		t.Errorf("/metrics missing switch gauges:\n%s", body)
	}
}
