package testbed

import (
	"testing"
	"time"
)

func TestSwitchLifecycle(t *testing.T) {
	sw, err := NewSwitch(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sw.Addr() == nil || sw.Addr().Port == 0 {
		t.Error("switch has no address")
	}
	if sw.QueueBytes() != 0 {
		t.Error("fresh switch has a queue")
	}
	sw.Close() // must not hang or panic
}

// TestCloseWaitsForSinkLoop is the regression test for the untracked
// sinkLoop goroutine: NewSwitch started four goroutines but registered
// only three in the WaitGroup, so Close could return while sinkLoop was
// still reading the sink socket. With the WaitGroup fix, Close must not
// return until sinkLoop has exited.
func TestCloseWaitsForSinkLoop(t *testing.T) {
	for i := 0; i < 10; i++ {
		sw, err := NewSwitch(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sw.Close()
		if !sw.sinkExited.Load() {
			t.Fatal("Close returned before sinkLoop exited")
		}
	}
}

func TestClientLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	c, err := NewClient(cfg, 1, sw, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if c.SentBytes.Load() == 0 {
		t.Error("client sent nothing")
	}
	c.Close()
}

func TestDataFlowsThroughSwitch(t *testing.T) {
	cfg := DefaultConfig()
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	c, err := NewClient(cfg, 1, sw, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for sw.Forwarded.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if sw.Forwarded.Load() == 0 {
		t.Fatal("switch forwarded nothing")
	}
}

func TestClientPacingApproximatesOfferedRate(t *testing.T) {
	cfg := DefaultConfig()
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	const offered = 80e6
	c, err := NewClient(cfg, 1, sw, offered)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(200 * time.Millisecond)
	start := c.SentBytes.Load()
	time.Sleep(500 * time.Millisecond)
	rate := float64(c.SentBytes.Load()-start) * 8 / 0.5
	if rate < offered*0.7 || rate > offered*1.3 {
		t.Errorf("client paced at %.0f bps, offered %.0f", rate, offered)
	}
}

// TestUniformScenarioConverges is the Fig. 13 integration check on real
// sockets: three full-rate clients must share the switch fairly with the
// queue under control. Real-time and scheduler-dependent, so tolerances
// are loose and the whole test is skipped in -short runs.
func TestUniformScenarioConverges(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("real-time testbed run (skipped under -short and -race)")
	}
	cfg := DefaultConfig()
	res, err := Run(cfg, Uniform, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ideal := cfg.DrainRate / 3 / 1e6
	for i, r := range res.ClientRates {
		if r < ideal*0.6 || r > ideal*1.2 {
			t.Errorf("client %d at %.1f Mb/s, ideal %.1f", i, r, ideal)
		}
	}
	// Fairness across the three equal clients must be tight even when
	// absolute throughput drifts with scheduling.
	min, max := res.ClientRates[0], res.ClientRates[0]
	for _, r := range res.ClientRates {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if (max-min)/max > 0.15 {
		t.Errorf("client rates spread too wide: %v", res.ClientRates)
	}
	if res.SteadyQueKB > float64(cfg.CP.QmaxBytes)/1000 {
		t.Errorf("queue %.0f KB above Qmax", res.SteadyQueKB)
	}
	if res.CNPs == 0 {
		t.Error("no CNPs delivered")
	}
}

func TestMixedScenarioProtectsInnocents(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("real-time testbed run (skipped under -short and -race)")
	}
	cfg := DefaultConfig()
	res, err := Run(cfg, Mixed, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Client 3 offers 10% of the drain rate: far below fair share, it
	// must get (nearly) everything it asks for.
	innocent := res.ClientRates[2]
	offered := 0.1 * cfg.DrainRate / 1e6
	if innocent < offered*0.8 {
		t.Errorf("innocent flow got %.1f of %.1f Mb/s", innocent, offered)
	}
	// Client 1 (greedy) must get more than the lower offers but not
	// starve them.
	if res.ClientRates[0] < res.ClientRates[2] {
		t.Errorf("greedy flow below innocent flow: %v", res.ClientRates)
	}
}

func TestCNPDropProbValidated(t *testing.T) {
	for _, p := range []float64{-0.1, 1.5} {
		cfg := DefaultConfig()
		cfg.CNPDropProb = p
		if _, err := NewSwitch(cfg); err == nil {
			t.Errorf("CNPDropProb %v accepted", p)
		}
	}
}

// TestCNPDropCounterFires checks the control-path fault injection: with a
// lossy CNP path the switch must count drops, the client must still
// receive the surviving CNPs, and the run must shut down cleanly.
func TestCNPDropCounterFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CNPDropProb = 0.5
	cfg.FaultSeed = 7
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	c, err := NewClient(cfg, 1, sw, cfg.DrainRate)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if sw.CNPsDropped.Load() > 0 && c.CNPsRecv.Load() > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sw.CNPsDropped.Load() == 0 {
		t.Error("no CNPs dropped at 50% loss")
	}
	if sw.CNPsSent.Load() == 0 {
		t.Error("no CNPs survived 50% loss")
	}
	if c.CNPsRecv.Load() == 0 {
		t.Error("client received no CNPs")
	}
}

// TestCleanShutdownNoReadErrors: a fault-free run followed by an orderly
// Close must record zero transient read errors — the deadline-polling
// loops exit on the done channel, never by observing a closed socket.
func TestCleanShutdownNoReadErrors(t *testing.T) {
	cfg := DefaultConfig()
	sw, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(cfg, 1, sw, 50e6)
	if err != nil {
		sw.Close()
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	c.Close()
	sw.Close()
	if d := time.Since(start); d > time.Second {
		t.Errorf("shutdown took %v, deadline polls should notice done within ~%v", d, readPoll)
	}
	if n := sw.ReadErrors.Load(); n != 0 {
		t.Errorf("switch survived %d read errors during a clean run", n)
	}
	if n := c.ReadErrors.Load(); n != 0 {
		t.Errorf("client survived %d read errors during a clean run", n)
	}
}
