package testbed

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// Watchdog is a per-scenario hang detector. The testbed runs in real
// time on real sockets, so a wedged loop (a socket that never errors, a
// loop stuck on a lock) hangs the whole run instead of failing it; the
// watchdog turns that hang into a diagnosable event by firing a full
// goroutine dump when the deadline passes without Stop being called.
type Watchdog struct {
	timer   *time.Timer
	stopped atomic.Bool
	Fired   atomic.Bool
}

// StartWatchdog arms a watchdog: if Stop has not been called within d,
// onTimeout receives the name and a dump of every goroutine's stack.
// A nil onTimeout writes the dump to stderr and panics, which is what a
// CI run wants — a loud corpse instead of a silent hang. Tests supply
// their own onTimeout (a panic in the timer goroutine is unrecoverable).
func StartWatchdog(d time.Duration, name string, onTimeout func(name string, stacks []byte)) *Watchdog {
	if onTimeout == nil {
		onTimeout = func(name string, stacks []byte) {
			fmt.Fprintf(os.Stderr, "testbed: watchdog %q fired after %v; goroutine dump:\n%s\n", name, d, stacks)
			panic("testbed: watchdog " + name + " fired")
		}
	}
	w := &Watchdog{}
	w.timer = time.AfterFunc(d, func() {
		if w.stopped.Load() {
			return
		}
		w.Fired.Store(true)
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		onTimeout(name, buf[:n])
	})
	return w
}

// Stop disarms the watchdog. Safe to call more than once; a watchdog
// that already fired stays fired.
func (w *Watchdog) Stop() {
	w.stopped.Store(true)
	w.timer.Stop()
}
