// Package testbed deploys the RoCC CP and RP algorithms over real UDP
// sockets on the loopback interface, standing in for the paper's DPDK
// evaluation (§6.2): a user-space software switch forwards client
// datagrams to a sink at a configured drain rate, runs the fair-rate
// timer over its real egress queue, and sends CNPs back to the clients
// on a control socket (the analog of the paper's ICMP type 253).
//
// Unlike the simulator, everything here runs in real time on the OS
// network stack: kernel scheduling jitter, socket buffering, and timer
// coarseness all perturb the control loop, which is exactly what the
// paper's DPDK experiment was designed to validate. Link speed is scaled
// down (a software switch cannot drain 10 Gb/s of 1 KB datagrams), with
// the CP parameters scaled per §5.2's bandwidth-delay guidance.
package testbed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rocc/internal/core"
	"rocc/internal/ringq"
	"rocc/internal/telemetry"
)

// Message types on the wire.
const (
	msgData byte = 1
	msgCNP  byte = 2
)

// headerLen is flow id (4) + type (1) + padding (3).
const headerLen = 8

// Read-loop hardening parameters: every read carries a short deadline so
// the loop observes shutdown without the socket being closed under it,
// and transient errors (ICMP port-unreachable surfacing as ECONNREFUSED,
// EINTR, momentary buffer pressure) are retried with bounded backoff
// instead of killing the loop or spamming stderr.
const (
	readPoll       = 20 * time.Millisecond
	maxReadRetries = 8
	readBackoffMax = 100 * time.Millisecond
)

// pollRead reads one datagram under the deadline-polling regime. It
// returns ok=false when the caller should exit: done closed, socket
// closed, or the transient-error retry budget exhausted. Transient errors
// are counted in errCount, never logged.
func pollRead(conn *net.UDPConn, buf []byte, done <-chan struct{}, errCount *atomic.Int64) (n int, addr *net.UDPAddr, ok bool) {
	retries := 0
	backoff := time.Millisecond
	for {
		select {
		case <-done:
			return 0, nil, false
		default:
		}
		conn.SetReadDeadline(time.Now().Add(readPoll))
		n, addr, err := conn.ReadFromUDP(buf)
		if err == nil {
			return n, addr, true
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			// Deadline poll: the socket is healthy, there was just nothing
			// to read. Reset the transient-error budget.
			retries = 0
			backoff = time.Millisecond
			continue
		}
		if errors.Is(err, net.ErrClosed) {
			return 0, nil, false
		}
		errCount.Add(1)
		if retries++; retries > maxReadRetries {
			return 0, nil, false
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > readBackoffMax {
			backoff = readBackoffMax
		}
	}
}

// Config parameterizes a testbed run.
type Config struct {
	// DrainRate is the software switch's egress bandwidth in bits/s.
	DrainRate float64

	// T is the CP update interval.
	T time.Duration

	// CP holds the Alg. 1 parameters. Zero selects the §6.2 thresholds
	// (75/150/210 KB) with ΔF scaled to the drain rate.
	CP core.CPConfig

	// Payload is the datagram payload size.
	Payload int

	// RecoveryTimer is the RP fast-recovery interval.
	RecoveryTimer time.Duration

	// CNPDropProb makes the switch lose each CNP it would send with this
	// probability — feedback loss on the control path. The clients must
	// then survive on fast recovery alone until the next CNP lands. Zero
	// (the default) sends every CNP and draws no random numbers.
	CNPDropProb float64

	// FaultSeed seeds the CNP-drop randomness; runs with the same seed
	// drop the same sequence of decisions. Zero selects seed 1.
	FaultSeed int64

	// Metrics, when non-nil, receives the testbed's gauges and counters.
	// All values are read from the existing atomics via lazy gauge funcs,
	// so attaching a registry adds no work to the socket loops.
	Metrics *telemetry.Registry

	// PprofAddr, when non-empty, serves net/http/pprof and a /metrics
	// text snapshot on this address (e.g. "127.0.0.1:0") for the
	// switch's lifetime.
	PprofAddr string

	// Watchdog, when positive, bounds each scenario run in wall-clock
	// time: if the run has not finished within the deadline, the
	// watchdog dumps every goroutine's stack and panics instead of
	// letting a wedged socket loop hang the process silently.
	Watchdog time.Duration
}

// DefaultConfig returns a laptop-friendly configuration: a 400 Mb/s
// software switch with the paper's testbed queue thresholds and T scaled
// to keep T·C/2 ≈ Qref.
func DefaultConfig() Config {
	cfg := core.CPConfig40G()
	cfg.DeltaFMbps = 1 // finer rate units at software speeds
	// The derivative gain is softened relative to the paper's switch
	// values: kernel scheduling makes arrivals bursty at the quantum
	// scale, and a full-strength β term rectifies that noise into a
	// downward rate bias (the queue cannot go below zero).
	cfg.BetaTilde = 0.5
	cfg.QrefBytes = 75 * 1000
	cfg.QmidBytes = 150 * 1000
	cfg.QmaxBytes = 210 * 1000
	cfg.FminMbps = 1
	cfg.FmaxMbps = 400
	return Config{
		DrainRate:     400e6,
		T:             1500 * time.Microsecond, // ≈ 2·Qref/C at 400 Mb/s, per §5.2
		CP:            cfg,
		Payload:       1000,
		RecoveryTimer: 6 * time.Millisecond,
	}
}

// Switch is the user-space software switch with one congestion point.
type Switch struct {
	cfg  Config
	conn *net.UDPConn
	sink *net.UDPConn // local socket of the sink receiver

	mu        sync.Mutex
	queue     ringq.Queue[[]byte]
	queueSize int
	flowBytes map[uint32]int
	flowSeen  map[uint32]time.Time
	flowAddr  map[uint32]*net.UDPAddr
	cp        *core.CP

	fairRate atomic.Int64 // milli-Mb/s for atomic reads
	qlen     atomic.Int64

	done       chan struct{}
	wg         sync.WaitGroup
	sinkExited atomic.Bool // set when sinkLoop returns (close-ordering regression check)
	cnpRand    *rand.Rand  // CNP-drop fault stream; nil when CNPDropProb is 0 (cpLoop only)
	dbg        *telemetry.DebugServer

	// Counters.
	Forwarded   atomic.Int64
	CNPsSent    atomic.Int64
	CNPsDropped atomic.Int64 // CNPs lost to injected control-path faults
	ReadErrors  atomic.Int64 // transient socket read errors survived
}

// NewSwitch starts a software switch listening on a loopback UDP port.
func NewSwitch(cfg Config) (*Switch, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("testbed: switch listen: %w", err)
	}
	conn.SetReadBuffer(4 << 20) // keep the fabric lossless under bursts
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("testbed: sink listen: %w", err)
	}
	sink.SetReadBuffer(4 << 20)
	s := &Switch{
		cfg:       cfg,
		conn:      conn,
		sink:      sink,
		flowBytes: make(map[uint32]int),
		flowSeen:  make(map[uint32]time.Time),
		flowAddr:  make(map[uint32]*net.UDPAddr),
		cp:        core.NewCP(cfg.CP),
		done:      make(chan struct{}),
	}
	if cfg.CNPDropProb < 0 || cfg.CNPDropProb > 1 {
		conn.Close()
		sink.Close()
		return nil, fmt.Errorf("testbed: CNP drop probability %v out of range", cfg.CNPDropProb)
	}
	if cfg.CNPDropProb > 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		s.cnpRand = rand.New(rand.NewSource(seed))
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("testbed.switch.forwarded", func() float64 { return float64(s.Forwarded.Load()) })
		reg.GaugeFunc("testbed.switch.cnps_sent", func() float64 { return float64(s.CNPsSent.Load()) })
		reg.GaugeFunc("testbed.switch.cnps_dropped", func() float64 { return float64(s.CNPsDropped.Load()) })
		reg.GaugeFunc("testbed.switch.read_errors", func() float64 { return float64(s.ReadErrors.Load()) })
		reg.GaugeFunc("testbed.switch.queue_bytes", func() float64 { return float64(s.qlen.Load()) })
		reg.GaugeFunc("testbed.switch.fair_rate_mbps", s.FairRateMbps)
	}
	if cfg.PprofAddr != "" {
		dbg, err := telemetry.ServeDebug(cfg.PprofAddr, cfg.Metrics)
		if err != nil {
			conn.Close()
			sink.Close()
			return nil, fmt.Errorf("testbed: debug server: %w", err)
		}
		s.dbg = dbg
	}
	s.wg.Add(4)
	go s.receiveLoop()
	go s.drainLoop()
	go s.cpLoop()
	go s.sinkLoop()
	return s, nil
}

// DebugAddr returns the pprof/metrics listen address, or "" when
// Config.PprofAddr was empty.
func (s *Switch) DebugAddr() string {
	if s.dbg == nil {
		return ""
	}
	return s.dbg.Addr()
}

// Addr returns the switch's data address clients send to.
func (s *Switch) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// QueueBytes returns the current egress queue occupancy.
func (s *Switch) QueueBytes() int { return int(s.qlen.Load()) }

// FairRateMbps returns the CP's current fair rate.
func (s *Switch) FairRateMbps() float64 { return float64(s.fairRate.Load()) / 1000 }

// Close stops the switch: signal done, let every loop notice it at its
// next deadline poll, then close the sockets. The loops never see their
// socket closed while running, so shutdown produces no spurious errors.
func (s *Switch) Close() {
	close(s.done)
	s.wg.Wait()
	s.conn.Close()
	s.sink.Close()
	if s.dbg != nil {
		s.dbg.Close()
	}
}

// receiveLoop ingests client datagrams into the egress queue.
func (s *Switch) receiveLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, ok := pollRead(s.conn, buf, s.done, &s.ReadErrors)
		if !ok {
			return
		}
		if n < headerLen || buf[4] != msgData {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		flow := binary.BigEndian.Uint32(pkt[0:4])
		s.mu.Lock()
		s.queue.Push(pkt)
		s.queueSize += n
		s.flowAddr[flow] = addr
		s.flowSeen[flow] = time.Now()
		s.flowBytes[flow] += n
		s.qlen.Store(int64(s.queueSize))
		s.mu.Unlock()
	}
}

// drainLoop forwards queued datagrams to the sink at the drain rate.
// Sub-millisecond sleeps overshoot badly on a stock kernel, so the loop
// runs a token bucket with sub-millisecond quanta: it forwards a
// quantum's worth of bytes back to back, then sleeps.
func (s *Switch) drainLoop() {
	defer s.wg.Done()
	sinkAddr := s.sink.LocalAddr().(*net.UDPAddr)
	const quantum = 250 * time.Microsecond
	credit := 0.0 // bytes
	last := time.Now()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		now := time.Now()
		elapsed := now.Sub(last)
		last = now
		credit += s.cfg.DrainRate / 8 * elapsed.Seconds()
		if max := s.cfg.DrainRate / 8 * 0.002; credit > max {
			credit = max // cap burst at 2 ms worth
		}
		for {
			s.mu.Lock()
			var pkt []byte
			if s.queue.Len() > 0 && credit >= float64(len(s.queue.Front())) {
				pkt = s.queue.Pop()
				s.queueSize -= len(pkt)
				flow := binary.BigEndian.Uint32(pkt[0:4])
				if b := s.flowBytes[flow] - len(pkt); b > 0 {
					s.flowBytes[flow] = b
				} else {
					delete(s.flowBytes, flow)
				}
				s.qlen.Store(int64(s.queueSize))
			}
			s.mu.Unlock()
			if pkt == nil {
				break
			}
			credit -= float64(len(pkt))
			s.conn.WriteToUDP(pkt, sinkAddr)
			s.Forwarded.Add(1)
		}
		time.Sleep(quantum)
	}
}

// cpLoop runs Alg. 1 every T and sends CNPs to queued flows.
func (s *Switch) cpLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.T)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		q := s.queueSize
		rateUnits := s.cp.Update(q)
		s.fairRate.Store(int64(s.cp.FairRateMbps() * 1000))
		type dest struct {
			flow uint32
			addr *net.UDPAddr
		}
		var dests []dest
		// Recipients: every flow seen recently (a single-CP deployment
		// keeps sources pinned to the fair rate; the bounded/age-based
		// table of §3.4 option 2). Stale flows age out.
		cutoff := time.Now().Add(-5 * s.cfg.T)
		for flow, seen := range s.flowSeen {
			if seen.Before(cutoff) {
				delete(s.flowSeen, flow)
				delete(s.flowAddr, flow)
				continue
			}
			dests = append(dests, dest{flow, s.flowAddr[flow]})
		}
		s.mu.Unlock()
		for _, d := range dests {
			if s.cnpRand != nil && s.cnpRand.Float64() < s.cfg.CNPDropProb {
				s.CNPsDropped.Add(1)
				continue
			}
			cnp := make([]byte, headerLen+4)
			binary.BigEndian.PutUint32(cnp[0:4], d.flow)
			cnp[4] = msgCNP
			binary.BigEndian.PutUint32(cnp[headerLen:], uint32(rateUnits))
			s.conn.WriteToUDP(cnp, d.addr)
			s.CNPsSent.Add(1)
		}
	}
}

// sinkLoop drains the sink socket (the destination host).
func (s *Switch) sinkLoop() {
	defer s.wg.Done()
	defer s.sinkExited.Store(true) // runs before wg.Done (LIFO)
	buf := make([]byte, 65536)
	for {
		if _, _, ok := pollRead(s.sink, buf, s.done, &s.ReadErrors); !ok {
			return
		}
	}
}

// Client is a traffic source with a RoCC reaction point.
type Client struct {
	cfg     Config
	flow    uint32
	conn    *net.UDPConn
	swAddr  *net.UDPAddr
	offered float64 // bits/s

	mu    sync.Mutex
	rp    *core.RP
	timer *time.Timer

	done chan struct{}
	wg   sync.WaitGroup

	SentBytes  atomic.Int64
	CNPsRecv   atomic.Int64
	ReadErrors atomic.Int64 // transient socket read errors survived
}

// NewClient starts a client sending flow `flow` at the offered rate
// (bits/s) toward the switch.
func NewClient(cfg Config, flow uint32, sw *Switch, offeredBps float64) (*Client, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("testbed: client listen: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		flow:    flow,
		conn:    conn,
		swAddr:  sw.Addr(),
		offered: offeredBps,
		rp: core.NewRP(core.RPConfig{
			DeltaFMbps: cfg.CP.DeltaFMbps,
			RmaxMbps:   cfg.CP.FmaxMbps,
			// The control socket is best-effort UDP (and CNPDropProb can
			// make it lossy on purpose), so staleness handling stays on.
			StaleK: core.DefaultStaleK,
		}),
		done: make(chan struct{}),
	}
	// Mirror the RP's counters into the registry (aggregated across
	// clients; the counters are atomic, so no lock ordering issues).
	c.rp.SetTelemetry(core.RPTelemetryFrom(cfg.Metrics))
	if reg := cfg.Metrics; reg != nil {
		name := fmt.Sprintf("testbed.client.%d.sent_bytes", flow)
		reg.GaugeFunc(name, func() float64 { return float64(c.SentBytes.Load()) })
	}
	c.wg.Add(2)
	go c.sendLoop()
	go c.cnpLoop()
	return c, nil
}

// Rate returns the client's current sending rate in Mb/s.
func (c *Client) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentRateLocked() / 1e6
}

func (c *Client) currentRateLocked() float64 {
	rate := c.offered
	if c.rp.Installed() {
		if r := c.rp.RateMbps() * 1e6; r < rate {
			rate = r
		}
	}
	if rate < 1e6 {
		rate = 1e6
	}
	return rate
}

// Close stops the client (see Switch.Close for the ordering).
func (c *Client) Close() {
	close(c.done)
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
	c.wg.Wait()
	c.conn.Close()
}

// sendLoop paces data datagrams at min(offered, RP rate).
func (c *Client) sendLoop() {
	defer c.wg.Done()
	pkt := make([]byte, headerLen+c.cfg.Payload)
	binary.BigEndian.PutUint32(pkt[0:4], c.flow)
	pkt[4] = msgData
	// Token-bucket pacing with sub-millisecond quanta (see drainLoop).
	const quantum = 250 * time.Microsecond
	credit := 0.0
	last := time.Now()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		now := time.Now()
		elapsed := now.Sub(last)
		last = now
		c.mu.Lock()
		rate := c.currentRateLocked()
		c.mu.Unlock()
		credit += rate / 8 * elapsed.Seconds()
		if max := rate / 8 * 0.002; credit > max {
			credit = max
		}
		for credit >= float64(len(pkt)) {
			c.conn.WriteToUDP(pkt, c.swAddr)
			c.SentBytes.Add(int64(len(pkt)))
			credit -= float64(len(pkt))
		}
		time.Sleep(quantum)
	}
}

// cnpLoop processes CNPs through Alg. 2 with a real fast-recovery timer.
func (c *Client) cnpLoop() {
	defer c.wg.Done()
	buf := make([]byte, 2048)
	cpKey := core.CPKey{Node: 1, Port: 0}
	for {
		n, _, ok := pollRead(c.conn, buf, c.done, &c.ReadErrors)
		if !ok {
			return
		}
		if n < headerLen+4 || buf[4] != msgCNP {
			continue
		}
		rateUnits := int(binary.BigEndian.Uint32(buf[headerLen:]))
		c.CNPsRecv.Add(1)
		c.mu.Lock()
		if c.rp.ProcessCNP(rateUnits, cpKey) {
			c.resetTimerLocked()
		}
		c.mu.Unlock()
	}
}

func (c *Client) resetTimerLocked() {
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timer = time.AfterFunc(c.cfg.RecoveryTimer, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		select {
		case <-c.done:
			return
		default:
		}
		if !c.rp.TimerExpired() {
			c.resetTimerLocked()
		}
	})
}

// MDCounts reports how many times the CP's multiplicative-decrease paths
// fired (instrumentation for tuning and tests).
func (s *Switch) MDCounts() (floor, halve int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.MDFloorCount, s.cp.MDHalveCount
}
