// Package testbed deploys the RoCC CP and RP algorithms over real UDP
// sockets on the loopback interface, standing in for the paper's DPDK
// evaluation (§6.2): a user-space software switch forwards client
// datagrams to a sink at a configured drain rate, runs the fair-rate
// timer over its real egress queue, and sends CNPs back to the clients
// on a control socket (the analog of the paper's ICMP type 253).
//
// Unlike the simulator, everything here runs in real time on the OS
// network stack: kernel scheduling jitter, socket buffering, and timer
// coarseness all perturb the control loop, which is exactly what the
// paper's DPDK experiment was designed to validate. Link speed is scaled
// down (a software switch cannot drain 10 Gb/s of 1 KB datagrams), with
// the CP parameters scaled per §5.2's bandwidth-delay guidance.
package testbed

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rocc/internal/core"
	"rocc/internal/ringq"
)

// Message types on the wire.
const (
	msgData byte = 1
	msgCNP  byte = 2
)

// headerLen is flow id (4) + type (1) + padding (3).
const headerLen = 8

// Config parameterizes a testbed run.
type Config struct {
	// DrainRate is the software switch's egress bandwidth in bits/s.
	DrainRate float64

	// T is the CP update interval.
	T time.Duration

	// CP holds the Alg. 1 parameters. Zero selects the §6.2 thresholds
	// (75/150/210 KB) with ΔF scaled to the drain rate.
	CP core.CPConfig

	// Payload is the datagram payload size.
	Payload int

	// RecoveryTimer is the RP fast-recovery interval.
	RecoveryTimer time.Duration
}

// DefaultConfig returns a laptop-friendly configuration: a 400 Mb/s
// software switch with the paper's testbed queue thresholds and T scaled
// to keep T·C/2 ≈ Qref.
func DefaultConfig() Config {
	cfg := core.CPConfig40G()
	cfg.DeltaFMbps = 1 // finer rate units at software speeds
	// The derivative gain is softened relative to the paper's switch
	// values: kernel scheduling makes arrivals bursty at the quantum
	// scale, and a full-strength β term rectifies that noise into a
	// downward rate bias (the queue cannot go below zero).
	cfg.BetaTilde = 0.5
	cfg.QrefBytes = 75 * 1000
	cfg.QmidBytes = 150 * 1000
	cfg.QmaxBytes = 210 * 1000
	cfg.FminMbps = 1
	cfg.FmaxMbps = 400
	return Config{
		DrainRate:     400e6,
		T:             1500 * time.Microsecond, // ≈ 2·Qref/C at 400 Mb/s, per §5.2
		CP:            cfg,
		Payload:       1000,
		RecoveryTimer: 6 * time.Millisecond,
	}
}

// Switch is the user-space software switch with one congestion point.
type Switch struct {
	cfg  Config
	conn *net.UDPConn
	sink *net.UDPConn // local socket of the sink receiver

	mu        sync.Mutex
	queue     ringq.Queue[[]byte]
	queueSize int
	flowBytes map[uint32]int
	flowSeen  map[uint32]time.Time
	flowAddr  map[uint32]*net.UDPAddr
	cp        *core.CP

	fairRate atomic.Int64 // milli-Mb/s for atomic reads
	qlen     atomic.Int64

	done       chan struct{}
	wg         sync.WaitGroup
	sinkExited atomic.Bool // set when sinkLoop returns (close-ordering regression check)

	// Counters.
	Forwarded atomic.Int64
	CNPsSent  atomic.Int64
}

// NewSwitch starts a software switch listening on a loopback UDP port.
func NewSwitch(cfg Config) (*Switch, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("testbed: switch listen: %w", err)
	}
	conn.SetReadBuffer(4 << 20) // keep the fabric lossless under bursts
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("testbed: sink listen: %w", err)
	}
	sink.SetReadBuffer(4 << 20)
	s := &Switch{
		cfg:       cfg,
		conn:      conn,
		sink:      sink,
		flowBytes: make(map[uint32]int),
		flowSeen:  make(map[uint32]time.Time),
		flowAddr:  make(map[uint32]*net.UDPAddr),
		cp:        core.NewCP(cfg.CP),
		done:      make(chan struct{}),
	}
	s.wg.Add(4)
	go s.receiveLoop()
	go s.drainLoop()
	go s.cpLoop()
	go s.sinkLoop()
	return s, nil
}

// Addr returns the switch's data address clients send to.
func (s *Switch) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// QueueBytes returns the current egress queue occupancy.
func (s *Switch) QueueBytes() int { return int(s.qlen.Load()) }

// FairRateMbps returns the CP's current fair rate.
func (s *Switch) FairRateMbps() float64 { return float64(s.fairRate.Load()) / 1000 }

// Close stops the switch.
func (s *Switch) Close() {
	close(s.done)
	s.conn.Close()
	s.sink.Close()
	s.wg.Wait()
}

// receiveLoop ingests client datagrams into the egress queue.
func (s *Switch) receiveLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n < headerLen || buf[4] != msgData {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		flow := binary.BigEndian.Uint32(pkt[0:4])
		s.mu.Lock()
		s.queue.Push(pkt)
		s.queueSize += n
		s.flowAddr[flow] = addr
		s.flowSeen[flow] = time.Now()
		s.flowBytes[flow] += n
		s.qlen.Store(int64(s.queueSize))
		s.mu.Unlock()
	}
}

// drainLoop forwards queued datagrams to the sink at the drain rate.
// Sub-millisecond sleeps overshoot badly on a stock kernel, so the loop
// runs a token bucket with sub-millisecond quanta: it forwards a
// quantum's worth of bytes back to back, then sleeps.
func (s *Switch) drainLoop() {
	defer s.wg.Done()
	sinkAddr := s.sink.LocalAddr().(*net.UDPAddr)
	const quantum = 250 * time.Microsecond
	credit := 0.0 // bytes
	last := time.Now()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		now := time.Now()
		elapsed := now.Sub(last)
		last = now
		credit += s.cfg.DrainRate / 8 * elapsed.Seconds()
		if max := s.cfg.DrainRate / 8 * 0.002; credit > max {
			credit = max // cap burst at 2 ms worth
		}
		for {
			s.mu.Lock()
			var pkt []byte
			if s.queue.Len() > 0 && credit >= float64(len(s.queue.Front())) {
				pkt = s.queue.Pop()
				s.queueSize -= len(pkt)
				flow := binary.BigEndian.Uint32(pkt[0:4])
				if b := s.flowBytes[flow] - len(pkt); b > 0 {
					s.flowBytes[flow] = b
				} else {
					delete(s.flowBytes, flow)
				}
				s.qlen.Store(int64(s.queueSize))
			}
			s.mu.Unlock()
			if pkt == nil {
				break
			}
			credit -= float64(len(pkt))
			s.conn.WriteToUDP(pkt, sinkAddr)
			s.Forwarded.Add(1)
		}
		time.Sleep(quantum)
	}
}

// cpLoop runs Alg. 1 every T and sends CNPs to queued flows.
func (s *Switch) cpLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.T)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		q := s.queueSize
		rateUnits := s.cp.Update(q)
		s.fairRate.Store(int64(s.cp.FairRateMbps() * 1000))
		type dest struct {
			flow uint32
			addr *net.UDPAddr
		}
		var dests []dest
		// Recipients: every flow seen recently (a single-CP deployment
		// keeps sources pinned to the fair rate; the bounded/age-based
		// table of §3.4 option 2). Stale flows age out.
		cutoff := time.Now().Add(-5 * s.cfg.T)
		for flow, seen := range s.flowSeen {
			if seen.Before(cutoff) {
				delete(s.flowSeen, flow)
				delete(s.flowAddr, flow)
				continue
			}
			dests = append(dests, dest{flow, s.flowAddr[flow]})
		}
		s.mu.Unlock()
		for _, d := range dests {
			cnp := make([]byte, headerLen+4)
			binary.BigEndian.PutUint32(cnp[0:4], d.flow)
			cnp[4] = msgCNP
			binary.BigEndian.PutUint32(cnp[headerLen:], uint32(rateUnits))
			s.conn.WriteToUDP(cnp, d.addr)
			s.CNPsSent.Add(1)
		}
	}
}

// sinkLoop drains the sink socket (the destination host).
func (s *Switch) sinkLoop() {
	defer s.wg.Done()
	defer s.sinkExited.Store(true) // runs before wg.Done (LIFO)
	buf := make([]byte, 65536)
	for {
		n, _, err := s.sink.ReadFromUDP(buf)
		if err != nil {
			return
		}
		_ = n
	}
}

// Client is a traffic source with a RoCC reaction point.
type Client struct {
	cfg     Config
	flow    uint32
	conn    *net.UDPConn
	swAddr  *net.UDPAddr
	offered float64 // bits/s

	mu    sync.Mutex
	rp    *core.RP
	timer *time.Timer

	done chan struct{}
	wg   sync.WaitGroup

	SentBytes atomic.Int64
	CNPsRecv  atomic.Int64
}

// NewClient starts a client sending flow `flow` at the offered rate
// (bits/s) toward the switch.
func NewClient(cfg Config, flow uint32, sw *Switch, offeredBps float64) (*Client, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("testbed: client listen: %w", err)
	}
	c := &Client{
		cfg:     cfg,
		flow:    flow,
		conn:    conn,
		swAddr:  sw.Addr(),
		offered: offeredBps,
		rp: core.NewRP(core.RPConfig{
			DeltaFMbps: cfg.CP.DeltaFMbps,
			RmaxMbps:   cfg.CP.FmaxMbps,
		}),
		done: make(chan struct{}),
	}
	c.wg.Add(2)
	go c.sendLoop()
	go c.cnpLoop()
	return c, nil
}

// Rate returns the client's current sending rate in Mb/s.
func (c *Client) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentRateLocked() / 1e6
}

func (c *Client) currentRateLocked() float64 {
	rate := c.offered
	if c.rp.Installed() {
		if r := c.rp.RateMbps() * 1e6; r < rate {
			rate = r
		}
	}
	if rate < 1e6 {
		rate = 1e6
	}
	return rate
}

// Close stops the client.
func (c *Client) Close() {
	close(c.done)
	c.conn.Close()
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// sendLoop paces data datagrams at min(offered, RP rate).
func (c *Client) sendLoop() {
	defer c.wg.Done()
	pkt := make([]byte, headerLen+c.cfg.Payload)
	binary.BigEndian.PutUint32(pkt[0:4], c.flow)
	pkt[4] = msgData
	// Token-bucket pacing with sub-millisecond quanta (see drainLoop).
	const quantum = 250 * time.Microsecond
	credit := 0.0
	last := time.Now()
	for {
		select {
		case <-c.done:
			return
		default:
		}
		now := time.Now()
		elapsed := now.Sub(last)
		last = now
		c.mu.Lock()
		rate := c.currentRateLocked()
		c.mu.Unlock()
		credit += rate / 8 * elapsed.Seconds()
		if max := rate / 8 * 0.002; credit > max {
			credit = max
		}
		for credit >= float64(len(pkt)) {
			c.conn.WriteToUDP(pkt, c.swAddr)
			c.SentBytes.Add(int64(len(pkt)))
			credit -= float64(len(pkt))
		}
		time.Sleep(quantum)
	}
}

// cnpLoop processes CNPs through Alg. 2 with a real fast-recovery timer.
func (c *Client) cnpLoop() {
	defer c.wg.Done()
	buf := make([]byte, 2048)
	cpKey := core.CPKey{Node: 1, Port: 0}
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < headerLen+4 || buf[4] != msgCNP {
			continue
		}
		rateUnits := int(binary.BigEndian.Uint32(buf[headerLen:]))
		c.CNPsRecv.Add(1)
		c.mu.Lock()
		if c.rp.ProcessCNP(rateUnits, cpKey) {
			c.resetTimerLocked()
		}
		c.mu.Unlock()
	}
}

func (c *Client) resetTimerLocked() {
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timer = time.AfterFunc(c.cfg.RecoveryTimer, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		select {
		case <-c.done:
			return
		default:
		}
		if !c.rp.TimerExpired() {
			c.resetTimerLocked()
		}
	})
}

// MDCounts reports how many times the CP's multiplicative-decrease paths
// fired (instrumentation for tuning and tests).
func (s *Switch) MDCounts() (floor, halve int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.MDFloorCount, s.cp.MDHalveCount
}
