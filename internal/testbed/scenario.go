package testbed

import (
	"fmt"
	"time"

	"rocc/internal/stats"
)

// Scenario mirrors the two §6.2 traffic mixes, scaled to the software
// switch's drain rate C: "uni" offers C from each of 3 clients; "mix"
// offers C, 0.3C and 0.1C.
type Scenario string

// The §6.2 scenarios.
const (
	Uniform Scenario = "uni"
	Mixed   Scenario = "mix"
)

// Result is one testbed run's outcome.
type Result struct {
	Scenario     Scenario
	Queue        *stats.Series // KB over time
	FairRate     *stats.Series // Mb/s over time
	ClientRates  []float64     // mean per-client goodput over 2nd half, Mb/s
	SteadyQueKB  float64
	SteadyRateMb float64
	CNPs         int64
}

// Run executes a scenario for the given duration on a fresh switch and
// three clients, sampling every 20 ms.
func Run(cfg Config, scenario Scenario, duration time.Duration) (Result, error) {
	if cfg.Watchdog > 0 {
		wd := StartWatchdog(cfg.Watchdog, "scenario-"+string(scenario), nil)
		defer wd.Stop()
	}
	sw, err := NewSwitch(cfg)
	if err != nil {
		return Result{}, err
	}
	defer sw.Close()

	offered := []float64{cfg.DrainRate, cfg.DrainRate, cfg.DrainRate}
	if scenario == Mixed {
		offered = []float64{cfg.DrainRate, 0.3 * cfg.DrainRate, 0.1 * cfg.DrainRate}
	}
	clients := make([]*Client, len(offered))
	for i, o := range offered {
		c, err := NewClient(cfg, uint32(i+1), sw, o)
		if err != nil {
			return Result{}, err
		}
		clients[i] = c
		defer c.Close()
	}

	res := Result{
		Scenario: scenario,
		Queue:    &stats.Series{Name: "queue"},
		FairRate: &stats.Series{Name: "fair-rate"},
	}
	start := time.Now()
	half := duration / 2
	var halfSent []int64
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for now := range ticker.C {
		elapsed := now.Sub(start)
		res.Queue.Add(elapsed.Seconds(), float64(sw.QueueBytes())/1000)
		res.FairRate.Add(elapsed.Seconds(), sw.FairRateMbps())
		if halfSent == nil && elapsed >= half {
			halfSent = make([]int64, len(clients))
			for i, c := range clients {
				halfSent[i] = c.SentBytes.Load()
			}
		}
		if elapsed >= duration {
			break
		}
	}
	window := (duration - half).Seconds()
	for i, c := range clients {
		base := int64(0)
		if halfSent != nil {
			base = halfSent[i]
		}
		res.ClientRates = append(res.ClientRates, float64(c.SentBytes.Load()-base)*8/window/1e6)
		res.CNPs += c.CNPsRecv.Load()
	}
	halfSec := half.Seconds()
	res.SteadyQueKB = res.Queue.MeanAfter(halfSec)
	res.SteadyRateMb = res.FairRate.MeanAfter(halfSec)
	return res, nil
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("testbed-%s: queue=%.0fKB fair=%.1fMb/s clients=%v",
		r.Scenario, r.SteadyQueKB, r.SteadyRateMb, r.ClientRates)
}
