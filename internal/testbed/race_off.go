//go:build !race

package testbed

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
