package core

import (
	"testing"
	"testing/quick"
)

func newTestRP() *RP {
	return NewRP(RPConfig{DeltaFMbps: 10, RmaxMbps: 40000})
}

// newStaleRP enables the opt-in staleness handling.
func newStaleRP() *RP {
	return NewRP(RPConfig{DeltaFMbps: 10, RmaxMbps: 40000, StaleK: DefaultStaleK})
}

func TestRPConfigValidate(t *testing.T) {
	if (RPConfig{DeltaFMbps: 0, RmaxMbps: 1}).Validate() == nil {
		t.Error("zero ΔF accepted")
	}
	if (RPConfig{DeltaFMbps: 1, RmaxMbps: 0}).Validate() == nil {
		t.Error("zero Rmax accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRP with invalid config did not panic")
		}
	}()
	NewRP(RPConfig{})
}

func TestRPStartsUninstalled(t *testing.T) {
	rp := newTestRP()
	if rp.Installed() {
		t.Error("new RP should be uninstalled")
	}
	if rp.RateMbps() != 40000 {
		t.Errorf("initial rate = %v, want Rmax", rp.RateMbps())
	}
}

func TestFirstCNPInstalls(t *testing.T) {
	rp := newTestRP()
	cp := CPKey{Node: 1}
	if !rp.ProcessCNP(500, cp) {
		t.Error("first CNP not accepted")
	}
	if !rp.Installed() || rp.RateMbps() != 5000 || rp.CurrentCP() != cp {
		t.Errorf("state after first CNP: installed=%v rate=%v cp=%v",
			rp.Installed(), rp.RateMbps(), rp.CurrentCP())
	}
}

func TestAcceptLowerRateFromOtherCP(t *testing.T) {
	rp := newTestRP()
	cp1, cp2 := CPKey{Node: 1}, CPKey{Node: 2}
	rp.ProcessCNP(500, cp1)
	if !rp.ProcessCNP(300, cp2) {
		t.Error("lower rate from a different CP must be accepted (Alg. 2 line 4)")
	}
	if rp.RateMbps() != 3000 || rp.CurrentCP() != cp2 {
		t.Errorf("rate=%v cp=%v after accepting lower rate", rp.RateMbps(), rp.CurrentCP())
	}
}

func TestRejectHigherRateFromOtherCP(t *testing.T) {
	rp := newTestRP()
	cp1, cp2 := CPKey{Node: 1}, CPKey{Node: 2}
	rp.ProcessCNP(300, cp1)
	if rp.ProcessCNP(500, cp2) {
		t.Error("higher rate from a different CP must be ignored")
	}
	if rp.RateMbps() != 3000 || rp.CurrentCP() != cp1 {
		t.Error("state changed by ignored CNP")
	}
	if rp.CNPsIgnored != 1 {
		t.Errorf("CNPsIgnored = %d", rp.CNPsIgnored)
	}
}

func TestAcceptHigherRateFromSameCP(t *testing.T) {
	rp := newTestRP()
	cp1 := CPKey{Node: 1}
	rp.ProcessCNP(300, cp1)
	if !rp.ProcessCNP(500, cp1) {
		t.Error("same-CP CNP must always be accepted")
	}
	if rp.RateMbps() != 5000 {
		t.Errorf("rate = %v, want 5000", rp.RateMbps())
	}
}

func TestFastRecoveryDoubles(t *testing.T) {
	rp := newTestRP()
	rp.ProcessCNP(100, CPKey{Node: 1}) // 1000 Mb/s
	for i, want := range []float64{2000, 4000, 8000, 16000, 32000} {
		if rp.TimerExpired() {
			t.Fatalf("step %d: uninstalled early", i)
		}
		if rp.RateMbps() != want {
			t.Fatalf("step %d: rate = %v, want %v", i, rp.RateMbps(), want)
		}
	}
	// 32000*2 = 64000 > Rmax: one more doubling then uninstall.
	if rp.TimerExpired() {
		t.Fatal("expected one more recovery step before uninstall")
	}
	if !rp.TimerExpired() {
		t.Fatal("rate above Rmax must uninstall the limiter")
	}
	if rp.Installed() {
		t.Error("still installed after uninstall")
	}
	if rp.RateMbps() != 40000 {
		t.Errorf("rate after uninstall = %v, want Rmax", rp.RateMbps())
	}
	if rp.CurrentCP() != NoCP {
		t.Error("CPcur not cleared on uninstall")
	}
}

func TestTimerOnUninstalledRP(t *testing.T) {
	rp := newTestRP()
	if !rp.TimerExpired() {
		t.Error("timer on uninstalled RP should report uninstall")
	}
}

func TestReinstallAfterUninstall(t *testing.T) {
	rp := newTestRP()
	rp.ProcessCNP(4100, CPKey{Node: 1}) // above Rmax
	rp.TimerExpired()                   // uninstalls immediately
	if rp.Installed() {
		t.Fatal("should be uninstalled")
	}
	if !rp.ProcessCNP(200, CPKey{Node: 2}) {
		t.Error("CNP after uninstall must reinstall")
	}
	if rp.RateMbps() != 2000 {
		t.Errorf("rate = %v", rp.RateMbps())
	}
}

// Property: the accept rule guarantees the accepted rate never exceeds
// the minimum of the most recent rates from the flow's current CP.
func TestAcceptRuleNeverRaisesAcrossCPs(t *testing.T) {
	f := func(events []uint16) bool {
		rp := newTestRP()
		for _, e := range events {
			rate := int(e%1000) + 1
			cp := CPKey{Node: int64(e % 3)}
			before := rp.RateMbps()
			sameCP := rp.Installed() && cp == rp.CurrentCP()
			accepted := rp.ProcessCNP(rate, cp)
			if accepted && !sameCP && rp.Installed() && float64(rate)*10 > before && before > 0 && rp.CNPsAccepted > 1 {
				// A different CP may only lower the rate.
				return false
			}
			_ = accepted
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHostCPMatchesSwitchCP(t *testing.T) {
	// The §3.6 host-computed replica must reproduce the switch-side
	// fair-rate sequence exactly when fed the same queue observations.
	cfg := CPConfig40G()
	swCP := NewCP(cfg)
	host := NewHostCP(func(CPKey) CPConfig { return cfg })
	key := CPKey{Node: 9, Port: 1}
	queues := []int{0, 50000, 150000, 300000, 400000, 200000, 150000, 100000, 0, 0}
	qold := 0
	for _, q := range queues {
		units := q / cfg.DeltaQBytes
		want := swCP.Update(units * cfg.DeltaQBytes)
		got := host.Compute(key, units, qold)
		qold = units
		if got != want {
			t.Fatalf("q=%d: host=%d switch=%d", q, got, want)
		}
	}
	if host.Replicas() != 1 {
		t.Errorf("replicas = %d", host.Replicas())
	}
}

func TestHostCPTracksPerCPState(t *testing.T) {
	host := NewHostCP(nil) // default registry
	a := host.Compute(CPKey{Node: 1}, 600, 0)
	b := host.Compute(CPKey{Node: 2}, 0, 0)
	if host.Replicas() != 2 {
		t.Fatalf("replicas = %d, want 2", host.Replicas())
	}
	// Different queue histories must give independent rates.
	if a == b {
		t.Log("rates equal by coincidence; advancing")
		a = host.Compute(CPKey{Node: 1}, 600, 600)
		b = host.Compute(CPKey{Node: 2}, 0, 0)
		if a == b {
			t.Error("per-CP replicas do not evolve independently")
		}
	}
}

// TestRejectMalformedFeedback fuzzes ProcessCNP with the garbage a
// corrupt wire or buggy CP can produce: every malformed CNP must be
// rejected without touching the rate, the pinned CP or the streak state.
func TestRejectMalformedFeedback(t *testing.T) {
	cp := CPKey{Node: 1}
	evil := CPKey{Node: 666}
	cases := []struct {
		name      string
		rateUnits int
	}{
		{"negative", -1},
		{"very negative", -1 << 40},
		{"bit-flipped high", 1 << 30},
		{"max int", int(^uint(0) >> 1)},
		{"just past bound", 16*40000/10 + 1},
	}
	for _, tc := range cases {
		rp := newTestRP()
		rp.ProcessCNP(500, cp) // install at 5000 Mb/s
		if rp.ProcessCNP(tc.rateUnits, evil) {
			t.Errorf("%s: malformed CNP accepted", tc.name)
		}
		if rp.RateMbps() != 5000 || rp.CurrentCP() != cp {
			t.Errorf("%s: rate=%v cp=%v perturbed by rejected CNP",
				tc.name, rp.RateMbps(), rp.CurrentCP())
		}
		if rp.CNPsRejected != 1 {
			t.Errorf("%s: CNPsRejected = %d, want 1", tc.name, rp.CNPsRejected)
		}
	}
}

func TestValidCNPBounds(t *testing.T) {
	rp := newTestRP() // Rmax 40000, ΔF 10 → default bound 64000 units
	if !rp.ValidCNP(0) || !rp.ValidCNP(64000) {
		t.Error("in-bound rate units rejected")
	}
	if rp.ValidCNP(-1) || rp.ValidCNP(64001) {
		t.Error("out-of-bound rate units accepted")
	}
	loose := NewRP(RPConfig{DeltaFMbps: 10, RmaxMbps: 40000, MaxRateUnits: -1})
	if !loose.ValidCNP(1 << 40) {
		t.Error("negative MaxRateUnits must disable the upper bound")
	}
	if loose.ValidCNP(-5) {
		t.Error("negative units accepted even with the bound disabled")
	}
	tight := NewRP(RPConfig{DeltaFMbps: 10, RmaxMbps: 40000, MaxRateUnits: 100})
	if tight.ValidCNP(101) || !tight.ValidCNP(100) {
		t.Error("explicit MaxRateUnits not honored")
	}
}

// TestStaleFeedbackUnpinsCP: after StaleK silent recovery intervals the
// RP must unpin its congestion point so feedback from any CP re-homes
// the flow immediately, instead of being ignored against a dead CP.
func TestStaleFeedbackUnpinsCP(t *testing.T) {
	rp := newStaleRP()
	dead := CPKey{Node: 1}
	rp.ProcessCNP(100, dead) // install at 1000 Mb/s, pinned to dead
	for i := 0; i < 2; i++ {
		rp.TimerExpired()
		if rp.CurrentCP() != dead || rp.StaleRecoveries != 0 {
			t.Fatalf("unpinned after only %d expiries", i+1)
		}
	}
	rp.TimerExpired() // third consecutive silent expiry
	if rp.CurrentCP() != NoCP {
		t.Error("CP still pinned after StaleK silent expiries")
	}
	if rp.StaleRecoveries != 1 {
		t.Errorf("StaleRecoveries = %d, want 1", rp.StaleRecoveries)
	}
	// rcur has doubled to 8000 Mb/s. A 9000 Mb/s CNP from a new CP would
	// normally be ignored (Alg. 2 line 4: higher rate, different CP),
	// but the unpinned state accepts it like an install — one CNP
	// re-homes the flow.
	other := CPKey{Node: 2}
	if !rp.ProcessCNP(900, other) {
		t.Error("higher-rate CNP after staleness not accepted")
	}
	if rp.CurrentCP() != other || rp.RateMbps() != 9000 {
		t.Errorf("re-home failed: cp=%v rate=%v", rp.CurrentCP(), rp.RateMbps())
	}
	// Re-homed: normal acceptance applies again.
	if rp.ProcessCNP(1000, CPKey{Node: 3}) {
		t.Error("higher rate from a third CP accepted after re-homing")
	}
}

// TestAcceptedCNPResetsStaleStreak: the staleness counter only counts
// consecutive silent intervals.
func TestAcceptedCNPResetsStaleStreak(t *testing.T) {
	rp := newStaleRP()
	cp := CPKey{Node: 1}
	rp.ProcessCNP(100, cp)
	rp.TimerExpired()
	rp.TimerExpired()
	rp.ProcessCNP(100, cp) // feedback resumed: streak resets
	rp.TimerExpired()
	rp.TimerExpired()
	if rp.StaleRecoveries != 0 || rp.CurrentCP() != cp {
		t.Errorf("streak not reset by accepted CNP: stale=%d cp=%v",
			rp.StaleRecoveries, rp.CurrentCP())
	}
	rp.TimerExpired()
	if rp.StaleRecoveries != 1 {
		t.Error("staleness did not fire after streak rebuilt")
	}
}

// TestRejectedCNPDoesNotResetStaleStreak: garbage feedback is not
// feedback — only accepted CNPs prove the control path alive.
func TestRejectedCNPDoesNotResetStaleStreak(t *testing.T) {
	rp := newStaleRP()
	cp := CPKey{Node: 1}
	rp.ProcessCNP(100, cp)
	rp.TimerExpired()
	rp.TimerExpired()
	rp.ProcessCNP(-7, cp) // rejected: must not count as liveness
	rp.TimerExpired()
	if rp.StaleRecoveries != 1 {
		t.Errorf("StaleRecoveries = %d after 3 silent expiries with a rejected CNP in between, want 1", rp.StaleRecoveries)
	}
}

func TestStaleKDisabledByDefault(t *testing.T) {
	for _, k := range []int{0, -1} {
		rp := NewRP(RPConfig{DeltaFMbps: 10, RmaxMbps: 40000, StaleK: k})
		cp := CPKey{Node: 1}
		rp.ProcessCNP(100, cp)
		for i := 0; i < 5; i++ {
			rp.TimerExpired()
		}
		if rp.StaleRecoveries != 0 || rp.CurrentCP() != cp {
			t.Errorf("StaleK=%d: staleness fired despite being disabled", k)
		}
	}
}
