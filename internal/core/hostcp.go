package core

// HostCP implements the §3.6 deployment option: the switch does not run
// the PI controller; its CNP carries only the raw queue observation (Qcur
// in ΔQ units) and the host replicates the fair-rate computation using a
// local parameter registry. Each (flow, CP) pair maintains one replica so
// Qold is tracked per congestion point, and the resulting rate feeds the
// ordinary RP acceptance rule.
type HostCP struct {
	registry func(cp CPKey) CPConfig // per-CP parameter lookup (§3.6 option 2)
	replicas map[CPKey]*CP
}

// NewHostCP builds a host-side fair-rate computer. registry resolves the
// CP parameters for a congestion point; a nil registry uses the 40G
// defaults everywhere.
func NewHostCP(registry func(cp CPKey) CPConfig) *HostCP {
	if registry == nil {
		registry = func(CPKey) CPConfig { return CPConfig40G() }
	}
	return &HostCP{registry: registry, replicas: make(map[CPKey]*CP)}
}

// Compute runs one fair-rate iteration for the given CP from its raw
// queue observations (current and previous, both in ΔQ units — the CNP
// carries both per §3.6 option 1, because the host does not see every CP
// interval and a locally tracked Qold would be stale). It returns the
// rate in ΔF units exactly as a switch-computed CNP would carry.
func (h *HostCP) Compute(cp CPKey, qcurUnits, qoldUnits int) int {
	rep, ok := h.replicas[cp]
	if !ok {
		rep = NewCP(h.registry(cp))
		h.replicas[cp] = rep
	}
	rep.SetQoldUnits(qoldUnits)
	return rep.Update(qcurUnits * rep.cfg.DeltaQBytes)
}

// Replicas returns the number of tracked congestion points.
func (h *HostCP) Replicas() int { return len(h.replicas) }
