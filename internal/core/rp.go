package core

import (
	"fmt"
	"math"
)

// CPKey identifies a congestion point across the network, used by the RP's
// CNP acceptance rule (Alg. 2 line 4).
type CPKey struct {
	Node int64
	Port int
}

// NoCP is the zero CPKey, meaning "no CNP accepted yet".
var NoCP = CPKey{}

// RPConfig holds the reaction-point parameters.
type RPConfig struct {
	DeltaFMbps float64 // ΔF, must match the CPs' configuration
	RmaxMbps   float64 // maximum send rate, usually the NIC link bandwidth

	// MaxRateUnits bounds the fair rate a CNP may carry before the RP
	// rejects it as corrupt. Zero selects the default: a generous
	// multiple of Rmax/ΔF (CPs on faster links legitimately advertise
	// rates above this NIC's bandwidth, so the bound only catches
	// garbage, not cross-speed feedback). Negative disables the bound.
	MaxRateUnits int

	// StaleK is the number of consecutive fast-recovery expiries without
	// an accepted CNP after which the RP declares its feedback stale and
	// unpins the congestion point (see TimerExpired). Zero or negative
	// disables staleness handling — the default, because CPs also go
	// silent legitimately (queue drained below the signalling floor) and
	// re-homing then would alter fault-free trajectories. Deployments
	// expecting feedback loss set DefaultStaleK.
	StaleK int

	// Witness, when set, is the forged-feedback defense: a CNP whose
	// congestion point the witness does not recognize — a CP id never
	// seen on this flow's path — is rejected before it can steer the
	// rate limiter, exactly like corrupt rate units. Nil (the default)
	// preserves the historical accept-any-origin behaviour; deployments
	// expecting spoofed CNPs wire a path-derived witness (the simulator
	// uses netsim.FlowPathCPs).
	Witness func(cp CPKey) bool
}

// rejectFactor is the slack on MaxRateUnits' default: CPs on links up to
// rejectFactor times faster than this NIC stay within the bound.
const rejectFactor = 16

// DefaultStaleK is the recommended consecutive-expiry threshold for
// declaring feedback stale: short enough to re-home within a few
// recovery intervals of an outage, long enough that a single delayed
// CNP does not trigger it.
const DefaultStaleK = 3

func (c RPConfig) maxRateUnits() int {
	if c.MaxRateUnits != 0 {
		return c.MaxRateUnits
	}
	return int(rejectFactor * c.RmaxMbps / c.DeltaFMbps)
}

func (c RPConfig) staleK() int {
	if c.StaleK > 0 {
		return c.StaleK
	}
	return 0
}

// Validate reports configuration errors.
func (c RPConfig) Validate() error {
	if c.DeltaFMbps <= 0 {
		return fmt.Errorf("core: RP ΔF must be positive")
	}
	if c.RmaxMbps <= 0 {
		return fmt.Errorf("core: RP Rmax must be positive")
	}
	return nil
}

// RP is the per-flow reaction point (Alg. 2): it tracks the current send
// rate, accepts or rejects CNPs by the most-congested-CP rule, and doubles
// the rate during fast recovery. Timer scheduling is the caller's job —
// the simulator uses virtual-time events and the testbed real timers —
// via ProcessCNP's resetTimer result and TimerExpired.
type RP struct {
	cfg RPConfig

	rcur        float64 // current send rate in Mb/s
	cpcur       CPKey   // CP that generated the last accepted CNP
	installed   bool    // rate limiter active
	staleStreak int     // consecutive timer expiries without an accepted CNP
	stale       bool    // feedback declared stale; next valid CNP re-homes the flow

	// Counters for instrumentation and tests.
	CNPsAccepted    int
	CNPsIgnored     int
	CNPsRejected    int // malformed feedback discarded by validation
	CNPsSpoofed     int // CNPs rejected by the path witness (forged origin)
	Recoveries      int
	StaleRecoveries int // recoveries past the staleness threshold (feedback lost)
	Suspects        int // externally signalled path changes (SuspectStale)

	// tm mirrors the counters above into a registry (SetTelemetry).
	tm RPTelemetry
}

// NewRP returns an uninstalled reaction point (the flow transmits at Rmax
// until the first CNP arrives, per §3.5).
func NewRP(cfg RPConfig) *RP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RP{cfg: cfg, rcur: cfg.RmaxMbps}
}

// Installed reports whether the rate limiter is active.
func (rp *RP) Installed() bool { return rp.installed }

// RateMbps returns the current send rate; meaningful while Installed.
func (rp *RP) RateMbps() float64 { return rp.rcur }

// CurrentCP returns the congestion point of the last accepted CNP.
func (rp *RP) CurrentCP() CPKey { return rp.cpcur }

// RmaxMbps returns the configured NIC line rate — the uninstalled send
// rate and the fast-recovery ceiling.
func (rp *RP) RmaxMbps() float64 { return rp.cfg.RmaxMbps }

// RateBoundMbps returns the hard ceiling the RP's state machine can ever
// hold rcur at: the ValidCNP admission bound (MaxRateUnits × ΔF, default
// 16×Rmax for cross-speed CPs), or 0 when the bound is disabled. Any
// observed rate above this means validation was bypassed — the invariant
// the chaos monitors check.
func (rp *RP) RateBoundMbps() float64 {
	max := rp.cfg.maxRateUnits()
	if max <= 0 {
		return 0
	}
	return float64(max) * rp.cfg.DeltaFMbps
}

// ValidCNP reports whether a CNP's rate units are plausible feedback:
// non-negative, finite once scaled by ΔF, and within the configured
// bound. Corrupt feedback (bit flips, malicious or buggy CPs) fails here
// and must not steer the rate limiter.
func (rp *RP) ValidCNP(rateUnits int) bool {
	if rateUnits < 0 {
		return false
	}
	if max := rp.cfg.maxRateUnits(); max > 0 && rateUnits > max {
		return false
	}
	rrcvd := float64(rateUnits) * rp.cfg.DeltaFMbps
	return !math.IsNaN(rrcvd) && !math.IsInf(rrcvd, 0)
}

// ValidCNPFrom extends ValidCNP with the origin check: when a Witness is
// configured, a CNP claiming a congestion point the flow's packets never
// traversed is forged feedback and fails validation. With no Witness the
// check reduces to ValidCNP.
func (rp *RP) ValidCNPFrom(rateUnits int, cp CPKey) bool {
	if !rp.ValidCNP(rateUnits) {
		return false
	}
	if rp.cfg.Witness != nil && !rp.cfg.Witness(cp) {
		rp.CNPsSpoofed++
		return false
	}
	return true
}

// ProcessCNP implements Process_CNP (Alg. 2 lines 1-7). rateUnits is the
// fair rate from the CNP in ΔF units and cp identifies its origin. It
// returns whether the CNP was accepted, in which case the caller must
// (re)arm the fast-recovery timer. Malformed feedback is rejected before
// it can touch the rate (graceful degradation under corruption).
func (rp *RP) ProcessCNP(rateUnits int, cp CPKey) (accepted bool) {
	if !rp.ValidCNPFrom(rateUnits, cp) {
		rp.CountRejected()
		return false
	}
	rrcvd := float64(rateUnits) * rp.cfg.DeltaFMbps // Line 2
	if !rp.installed {
		// First CNP installs the rate limiter.
		rp.installed = true
		rp.rcur = rrcvd
		rp.cpcur = cp
		rp.CNPsAccepted++
		rp.tm.CNPsAccepted.Inc()
		rp.staleStreak = 0
		rp.stale = false
		return true
	}
	// Line 4, with one extension: after a declared feedback outage (see
	// TimerExpired) the doubled rcur is a guess, so the first fresh
	// feedback is accepted unconditionally, exactly like the initial
	// install. A boolean carries the stale state — comparing cpcur
	// against NoCP would collide with a legitimate CP at node 0, port 0.
	if rrcvd <= rp.rcur || cp == rp.cpcur || rp.stale {
		rp.rcur = rrcvd // Line 5
		rp.cpcur = cp   // Line 6
		rp.CNPsAccepted++
		rp.tm.CNPsAccepted.Inc()
		rp.staleStreak = 0
		rp.stale = false
		return true // Line 7: Reset_Timer
	}
	rp.CNPsIgnored++
	rp.tm.CNPsIgnored.Inc()
	return false
}

// SuspectStale unpins the congestion point on external evidence of a
// path change — the network's route-reconvergence notification. The
// flow's packets may now traverse different CPs, so the pinned CP's last
// fair rate no longer describes the path; unpinning makes ProcessCNP
// accept the next valid CNP from any CP unconditionally (the same
// re-homing the StaleK expiry path provides, without waiting for the
// recovery timer to notice the silence). A no-op unless staleness
// handling is configured and a CP is pinned, so fabrics that opt out of
// StaleK keep byte-identical trajectories.
func (rp *RP) SuspectStale() {
	if rp.cfg.staleK() <= 0 || !rp.installed || rp.stale {
		return
	}
	rp.cpcur = NoCP
	rp.stale = true
	rp.Suspects++
}

// TimerExpired implements Timer_Expired (Alg. 2 lines 8-13). It returns
// uninstall=true when the rate limiter should be removed (the flow then
// transmits unconstrained); otherwise the caller re-arms the timer.
//
// Every expiry means one recovery interval passed without an accepted
// CNP. After StaleK consecutive expiries the RP declares its feedback
// stale — the pinned CP has stopped talking (lost CNPs, a downed link,
// a stalled CP timer) — and unpins cpcur while it keeps doubling. The
// unpinned state makes ProcessCNP accept the next valid CNP from *any*
// congestion point unconditionally (like the initial install), so the
// flow re-homes in one CNP instead of ignoring higher-rate feedback
// against a dead CP's last rate until the doubling cascade catches up.
func (rp *RP) TimerExpired() (uninstall bool) {
	if !rp.installed {
		return true
	}
	if rp.rcur > rp.cfg.RmaxMbps { // Line 9
		rp.installed = false // Line 10: remove the rate limiter
		rp.rcur = rp.cfg.RmaxMbps
		rp.cpcur = NoCP
		rp.staleStreak = 0
		rp.stale = false
		return true
	}
	rp.rcur *= 2 // Line 12: exponential fast recovery
	rp.Recoveries++
	rp.tm.Recoveries.Inc()
	if k := rp.cfg.staleK(); k > 0 {
		rp.staleStreak++
		if rp.staleStreak >= k {
			rp.cpcur = NoCP
			rp.stale = true
			rp.StaleRecoveries++
			rp.tm.StaleRecoveries.Inc()
		}
	}
	return false // Line 13: Reset_Timer
}
