package core

import "fmt"

// CPKey identifies a congestion point across the network, used by the RP's
// CNP acceptance rule (Alg. 2 line 4).
type CPKey struct {
	Node int64
	Port int
}

// NoCP is the zero CPKey, meaning "no CNP accepted yet".
var NoCP = CPKey{}

// RPConfig holds the reaction-point parameters.
type RPConfig struct {
	DeltaFMbps float64 // ΔF, must match the CPs' configuration
	RmaxMbps   float64 // maximum send rate, usually the NIC link bandwidth
}

// Validate reports configuration errors.
func (c RPConfig) Validate() error {
	if c.DeltaFMbps <= 0 {
		return fmt.Errorf("core: RP ΔF must be positive")
	}
	if c.RmaxMbps <= 0 {
		return fmt.Errorf("core: RP Rmax must be positive")
	}
	return nil
}

// RP is the per-flow reaction point (Alg. 2): it tracks the current send
// rate, accepts or rejects CNPs by the most-congested-CP rule, and doubles
// the rate during fast recovery. Timer scheduling is the caller's job —
// the simulator uses virtual-time events and the testbed real timers —
// via ProcessCNP's resetTimer result and TimerExpired.
type RP struct {
	cfg RPConfig

	rcur      float64 // current send rate in Mb/s
	cpcur     CPKey   // CP that generated the last accepted CNP
	installed bool    // rate limiter active

	// Counters for instrumentation and tests.
	CNPsAccepted int
	CNPsIgnored  int
	Recoveries   int
}

// NewRP returns an uninstalled reaction point (the flow transmits at Rmax
// until the first CNP arrives, per §3.5).
func NewRP(cfg RPConfig) *RP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &RP{cfg: cfg, rcur: cfg.RmaxMbps}
}

// Installed reports whether the rate limiter is active.
func (rp *RP) Installed() bool { return rp.installed }

// RateMbps returns the current send rate; meaningful while Installed.
func (rp *RP) RateMbps() float64 { return rp.rcur }

// CurrentCP returns the congestion point of the last accepted CNP.
func (rp *RP) CurrentCP() CPKey { return rp.cpcur }

// ProcessCNP implements Process_CNP (Alg. 2 lines 1-7). rateUnits is the
// fair rate from the CNP in ΔF units and cp identifies its origin. It
// returns whether the CNP was accepted, in which case the caller must
// (re)arm the fast-recovery timer.
func (rp *RP) ProcessCNP(rateUnits int, cp CPKey) (accepted bool) {
	rrcvd := float64(rateUnits) * rp.cfg.DeltaFMbps // Line 2
	if !rp.installed {
		// First CNP installs the rate limiter.
		rp.installed = true
		rp.rcur = rrcvd
		rp.cpcur = cp
		rp.CNPsAccepted++
		return true
	}
	if rrcvd <= rp.rcur || cp == rp.cpcur { // Line 4
		rp.rcur = rrcvd // Line 5
		rp.cpcur = cp   // Line 6
		rp.CNPsAccepted++
		return true // Line 7: Reset_Timer
	}
	rp.CNPsIgnored++
	return false
}

// TimerExpired implements Timer_Expired (Alg. 2 lines 8-13). It returns
// uninstall=true when the rate limiter should be removed (the flow then
// transmits unconstrained); otherwise the caller re-arms the timer.
func (rp *RP) TimerExpired() (uninstall bool) {
	if !rp.installed {
		return true
	}
	if rp.rcur > rp.cfg.RmaxMbps { // Line 9
		rp.installed = false // Line 10: remove the rate limiter
		rp.rcur = rp.cfg.RmaxMbps
		rp.cpcur = NoCP
		return true
	}
	rp.rcur *= 2 // Line 12: exponential fast recovery
	rp.Recoveries++
	return false // Line 13: Reset_Timer
}
