package core_test

import (
	"fmt"

	"rocc/internal/core"
)

// ExampleCP drives the congestion point's fair-rate computation by hand:
// a deep queue triggers the multiplicative decrease, and a stable queue
// at the reference holds the rate still.
func ExampleCP() {
	cp := core.NewCP(core.CPConfig40G())
	fmt.Printf("start: %.0f Mb/s\n", cp.FairRateMbps())

	cp.Update(400_000) // above Qmax: MD floors the rate
	fmt.Printf("after overrun: %.0f Mb/s\n", cp.FairRateMbps())

	for i := 0; i < 2000; i++ { // empty queue: the PI climbs back
		cp.Update(0)
	}
	fmt.Printf("after recovery: %.0f Mb/s\n", cp.FairRateMbps())
	// Output:
	// start: 40000 Mb/s
	// after overrun: 100 Mb/s
	// after recovery: 40000 Mb/s
}

// ExampleRP shows the reaction point's CNP acceptance rule: the flow
// follows the most congested CP on its path.
func ExampleRP() {
	rp := core.NewRP(core.RPConfig{DeltaFMbps: 10, RmaxMbps: 40000})
	hop1 := core.CPKey{Node: 1}
	hop2 := core.CPKey{Node: 2}

	rp.ProcessCNP(500, hop1) // 5 Gb/s from the first congested hop
	fmt.Printf("rate: %.0f Mb/s via node %d\n", rp.RateMbps(), rp.CurrentCP().Node)

	rp.ProcessCNP(800, hop2) // higher rate from another hop: ignored
	fmt.Printf("rate: %.0f Mb/s via node %d\n", rp.RateMbps(), rp.CurrentCP().Node)

	rp.ProcessCNP(300, hop2) // lower rate: the new bottleneck wins
	fmt.Printf("rate: %.0f Mb/s via node %d\n", rp.RateMbps(), rp.CurrentCP().Node)
	// Output:
	// rate: 5000 Mb/s via node 1
	// rate: 5000 Mb/s via node 1
	// rate: 3000 Mb/s via node 2
}
