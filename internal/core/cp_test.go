package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigAnchors(t *testing.T) {
	c40 := CPConfig40G()
	if c40.QrefBytes != 150000 || c40.QmidBytes != 300000 || c40.QmaxBytes != 360000 {
		t.Errorf("40G thresholds = %d/%d/%d", c40.QrefBytes, c40.QmidBytes, c40.QmaxBytes)
	}
	if c40.FmaxMbps != 40000 || c40.FminMbps != 100 {
		t.Errorf("40G rates = %v/%v", c40.FminMbps, c40.FmaxMbps)
	}
	if c40.AlphaTilde != 0.3 || c40.BetaTilde != 1.5 {
		t.Errorf("40G gains = %v/%v", c40.AlphaTilde, c40.BetaTilde)
	}
	c100 := CPConfig100G()
	if c100.QrefBytes != 300000 || c100.FmaxMbps != 100000 {
		t.Errorf("100G config = %+v", c100)
	}
	if c100.AlphaTilde != 0.45 || c100.BetaTilde != 2.25 {
		t.Errorf("100G gains = %v/%v", c100.AlphaTilde, c100.BetaTilde)
	}
}

func TestConfigForGbpsAnchorsExact(t *testing.T) {
	if CPConfigForGbps(40) != CPConfig40G() {
		t.Error("CPConfigForGbps(40) != CPConfig40G()")
	}
	if CPConfigForGbps(100) != CPConfig100G() {
		t.Error("CPConfigForGbps(100) != CPConfig100G()")
	}
}

func TestConfigForGbpsScaling(t *testing.T) {
	c10 := CPConfigForGbps(10)
	// Sub-40G links floor at the paper's §6.2 testbed thresholds.
	if c10.QrefBytes != 75000 || c10.QmidBytes != 150000 || c10.QmaxBytes != 210000 {
		t.Errorf("10G thresholds = %d/%d/%d, want 75/150/210 KB", c10.QrefBytes, c10.QmidBytes, c10.QmaxBytes)
	}
	if c10.FmaxMbps != 10000 {
		t.Errorf("10G Fmax = %v", c10.FmaxMbps)
	}
	if c10.AlphaTilde != 0.3 {
		t.Errorf("10G alpha = %v, want unchanged 0.3", c10.AlphaTilde)
	}
	c60 := CPConfigForGbps(60)
	if err := c60.Validate(); err != nil {
		t.Errorf("60G config invalid: %v", err)
	}
	if c60.AlphaTilde <= 0.3 || c60.AlphaTilde >= 0.45 {
		t.Errorf("60G alpha = %v, want between anchors", c60.AlphaTilde)
	}
}

func TestConfigValidate(t *testing.T) {
	base := CPConfig40G()
	bad := []func(*CPConfig){
		func(c *CPConfig) { c.DeltaQBytes = 0 },
		func(c *CPConfig) { c.DeltaFMbps = 0 },
		func(c *CPConfig) { c.QmidBytes = c.QmaxBytes + 1 },
		func(c *CPConfig) { c.QrefBytes = c.QmidBytes },
		func(c *CPConfig) { c.QrefBytes = 0 },
		func(c *CPConfig) { c.FminMbps = 0 },
		func(c *CPConfig) { c.FmaxMbps = c.FminMbps },
		func(c *CPConfig) { c.AlphaTilde = 0 },
		func(c *CPConfig) { c.BetaTilde = -1 },
		func(c *CPConfig) { c.MaxLevel = 1 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config passed Validate", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewCPPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCP with invalid config did not panic")
		}
	}()
	NewCP(CPConfig{})
}

func TestInitialFairRateIsFmax(t *testing.T) {
	cp := NewCP(CPConfig40G())
	if got := cp.FairRateMbps(); got != 40000 {
		t.Errorf("initial rate = %v, want Fmax", got)
	}
}

func TestMDFloorOnQmax(t *testing.T) {
	cp := NewCP(CPConfig40G())
	cp.Update(360000) // Qcur >= Qmax with F = Fmax > Fmax/8
	if got := cp.FairRateMbps(); got != 100 {
		t.Errorf("rate after MD floor = %v, want Fmin=100", got)
	}
	if cp.MDFloorCount != 1 {
		t.Errorf("MDFloorCount = %d", cp.MDFloorCount)
	}
}

func TestMDHalveOnGrowth(t *testing.T) {
	cp := NewCP(CPConfig40G())
	cp.Update(10000) // establish Qold small; PI path
	before := cp.FairRateMbps()
	cp.Update(10000 + 330000) // growth > Qmid (but below Qmax trigger at F high? Qcur=340000 < Qmax)
	if got := cp.FairRateMbps(); math.Abs(got-before/2) > 1 {
		t.Errorf("rate after MD halve = %v, want ~%v", got, before/2)
	}
	if cp.MDHalveCount != 1 {
		t.Errorf("MDHalveCount = %d", cp.MDHalveCount)
	}
}

func TestMDSkippedWhenRateAlreadyLow(t *testing.T) {
	cp := NewCP(CPConfig40G())
	cp.SetFairRateMbps(40000.0 / 8) // exactly Fmax/8: not > Fmax/8
	cp.Update(400000)
	if cp.MDFloorCount != 0 {
		t.Error("MD floor fired although F <= Fmax/8")
	}
}

func TestMDFloorPrecedesHalve(t *testing.T) {
	cp := NewCP(CPConfig40G())
	// Both conditions true: queue above Qmax and huge growth.
	cp.Update(500000)
	if cp.MDFloorCount != 1 || cp.MDHalveCount != 0 {
		t.Errorf("floor/halve = %d/%d, want 1/0", cp.MDFloorCount, cp.MDHalveCount)
	}
}

func TestDisableMD(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableMD = true
	cp := NewCP(cfg)
	cp.Update(500000)
	if cp.MDFloorCount != 0 {
		t.Error("MD fired despite DisableMD")
	}
	if cp.FairRateMbps() >= 40000 {
		t.Error("PI path did not reduce the rate")
	}
}

func TestPIDecreasesAboveRef(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableMD = true
	cp := NewCP(cfg)
	cp.SetFairRateMbps(20000)
	cp.Update(200000) // above Qref, growing from 0
	if cp.FairRateMbps() >= 20000 {
		t.Error("rate did not decrease with queue above reference")
	}
}

func TestPIIncreasesBelowRef(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableMD = true
	cp := NewCP(cfg)
	cp.SetFairRateMbps(20000)
	// A steady queue below Qref must pull the rate up once the initial
	// derivative transient (Qold starts at zero) has passed.
	for i := 0; i < 30; i++ {
		cp.Update(100000)
	}
	if cp.FairRateMbps() <= 20000 {
		t.Error("rate did not increase with queue below reference")
	}
}

func TestPIStableAtReference(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableMD = true
	cp := NewCP(cfg)
	cp.SetFairRateMbps(20000)
	cp.Update(cfg.QrefBytes) // absorbs the Qold=0 transient
	ref := cp.FairRateMbps()
	cp.Update(cfg.QrefBytes) // Q = Qref, no trend: equilibrium
	if got := cp.FairRateMbps(); math.Abs(got-ref) > 1e-9 {
		t.Errorf("rate moved at equilibrium: %v -> %v", ref, got)
	}
}

func TestClampToBounds(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableMD = true
	cp := NewCP(cfg)
	for i := 0; i < 200; i++ {
		cp.Update(0) // deep underload: rate must not exceed Fmax
	}
	if got := cp.FairRateMbps(); got != 40000 {
		t.Errorf("rate = %v, want clamped at Fmax", got)
	}
	for i := 0; i < 2000; i++ {
		cp.Update(10_000_000) // overload: rate must not go below Fmin
	}
	if got := cp.FairRateMbps(); got != 100 {
		t.Errorf("rate = %v, want clamped at Fmin", got)
	}
}

func TestAutoTuneLevels(t *testing.T) {
	cp := NewCP(CPConfig40G())
	cases := []struct {
		rateMbps float64
		level    int
	}{
		{30000, 2}, // F >= Fmax/2
		{15000, 4}, // Fmax/4 <= F < Fmax/2
		{8000, 8},
		{4000, 16},
		{2000, 32},
		{900, 64},
		{100, 64}, // capped at MaxLevel
	}
	for _, c := range cases {
		cp.SetFairRateMbps(c.rateMbps)
		cp.Update(CPConfig40G().QrefBytes) // PI path, no movement pressure
		if cp.Level() != c.level {
			t.Errorf("F=%v: level = %d, want %d", c.rateMbps, cp.Level(), c.level)
		}
	}
}

func TestDisableAutoTune(t *testing.T) {
	cfg := CPConfig40G()
	cfg.DisableAutoTune = true
	cp := NewCP(cfg)
	cp.SetFairRateMbps(100)
	cp.Update(cfg.QrefBytes)
	if cp.Level() != 2 {
		t.Errorf("level = %d with auto-tune disabled, want 2", cp.Level())
	}
}

func TestFairRateUnitsRounding(t *testing.T) {
	cp := NewCP(CPConfig40G())
	cp.SetFairRateMbps(104) // 10.4 units
	if got := cp.FairRateUnits(); got != 10 {
		t.Errorf("units = %d, want 10", got)
	}
	cp.SetFairRateMbps(106) // 10.6 units
	if got := cp.FairRateUnits(); got != 11 {
		t.Errorf("units = %d, want 11", got)
	}
}

// fluidLoop simulates the §5.1 queue dynamic against the real CP: N flows
// paced exactly at the broadcast fair rate into a link of capacity
// linkMbps, updated every T = 40 µs.
func fluidLoop(cp *CP, n int, linkMbps float64, steps int) (qBytes float64) {
	const T = 40e-6
	q := 0.0
	for i := 0; i < steps; i++ {
		units := cp.Update(int(q))
		rateMbps := float64(units) * cp.Config().DeltaFMbps
		input := rateMbps * float64(n)
		q += (input - linkMbps) * 1e6 / 8 * T
		if q < 0 {
			q = 0
		}
	}
	return q
}

func TestFluidConvergenceToFairShare(t *testing.T) {
	for _, n := range []int{2, 5, 10, 50, 100} {
		cp := NewCP(CPConfig40G())
		q := fluidLoop(cp, n, 40000, 3000) // 120 ms
		want := 40000.0 / float64(n)
		got := cp.FairRateMbps()
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("N=%d: fair rate = %.1f, want ~%.1f", n, got, want)
		}
		ref := float64(CPConfig40G().QrefBytes)
		if math.Abs(q-ref)/ref > 0.35 {
			t.Errorf("N=%d: queue = %.0f, want ~%.0f", n, q, ref)
		}
	}
}

// Property: for random N and link speed, the fluid loop's fair rate lands
// near capacity/N — the Eq. 1 fixed point.
func TestFluidFixedPointProperty(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw%64) + 2
		gbps := []float64{40, 100}[int(gRaw)%2]
		cp := NewCP(CPConfigForGbps(gbps))
		fluidLoop(cp, n, gbps*1000, 4000)
		want := gbps * 1000 / float64(n)
		return math.Abs(cp.FairRateMbps()-want)/want < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the fair rate always stays within [Fmin, Fmax] whatever queue
// sequence is observed.
func TestRateBoundsProperty(t *testing.T) {
	f := func(queues []uint32) bool {
		cp := NewCP(CPConfig40G())
		for _, q := range queues {
			cp.Update(int(q % 2_000_000))
			r := cp.FairRateMbps()
			if r < 100-1e-9 || r > 40000+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
