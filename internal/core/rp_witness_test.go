package core

import "testing"

// newWitnessRP admits only CPs the supplied set vouches for — the
// forged-feedback defense a transport wires up from its path knowledge.
func newWitnessRP(onPath ...CPKey) *RP {
	set := make(map[CPKey]bool, len(onPath))
	for _, cp := range onPath {
		set[cp] = true
	}
	return NewRP(RPConfig{
		DeltaFMbps: 10,
		RmaxMbps:   40000,
		Witness:    func(cp CPKey) bool { return set[cp] },
	})
}

func TestWitnessRejectsSpoofedCP(t *testing.T) {
	onPath := CPKey{Node: 1}
	rp := newWitnessRP(onPath)
	spoof := CPKey{Node: 66, Port: 3}
	if rp.ProcessCNP(5, spoof) {
		t.Error("CNP from an off-path CP was accepted")
	}
	if rp.Installed() || rp.RateMbps() != 40000 {
		t.Errorf("spoofed CNP moved the rate: installed=%v rate=%v",
			rp.Installed(), rp.RateMbps())
	}
	if rp.CNPsSpoofed != 1 || rp.CNPsRejected != 1 {
		t.Errorf("spoof counters: spoofed=%d rejected=%d, want 1/1",
			rp.CNPsSpoofed, rp.CNPsRejected)
	}
	// Genuine feedback still lands.
	if !rp.ProcessCNP(500, onPath) {
		t.Error("on-path CNP rejected by the witness")
	}
	if rp.RateMbps() != 5000 {
		t.Errorf("rate after genuine CNP = %v, want 5000", rp.RateMbps())
	}
}

func TestWitnessChecksAfterPlausibility(t *testing.T) {
	rp := newWitnessRP(CPKey{Node: 1})
	// An implausible rate from an off-path CP is a plain rejection, not
	// a spoof detection — plausibility runs first, so the spoof counter
	// only counts well-formed forgeries.
	if rp.ProcessCNP(-1, CPKey{Node: 66}) {
		t.Error("implausible CNP accepted")
	}
	if rp.CNPsSpoofed != 0 || rp.CNPsRejected != 1 {
		t.Errorf("counters after implausible CNP: spoofed=%d rejected=%d",
			rp.CNPsSpoofed, rp.CNPsRejected)
	}
}

func TestNilWitnessKeepsHistoricalBehavior(t *testing.T) {
	rp := newTestRP()
	if !rp.ProcessCNP(500, CPKey{Node: 66, Port: 3}) {
		t.Error("without a witness, any well-formed origin must be accepted")
	}
	if rp.CNPsSpoofed != 0 {
		t.Error("nil witness counted a spoof")
	}
	if !rp.ValidCNPFrom(300, CPKey{Node: 9}) {
		t.Error("ValidCNPFrom with nil witness rejected a valid CNP")
	}
}
