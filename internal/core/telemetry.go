package core

import "rocc/internal/telemetry"

// RPTelemetry mirrors the RP's instrumentation counters into a metrics
// registry, so per-flow reaction points aggregate into one set of
// network-wide counters. The zero value is the disabled state: nil
// telemetry counters ignore Inc, so the RP increments unconditionally.
type RPTelemetry struct {
	CNPsAccepted    *telemetry.Counter
	CNPsIgnored     *telemetry.Counter
	CNPsRejected    *telemetry.Counter
	Recoveries      *telemetry.Counter
	StaleRecoveries *telemetry.Counter
}

// RPTelemetryFrom resolves the standard rocc.rp.* counter set from a
// registry. A nil registry yields the zero (disabled) RPTelemetry.
func RPTelemetryFrom(reg *telemetry.Registry) RPTelemetry {
	return RPTelemetry{
		CNPsAccepted:    reg.Counter("rocc.rp.cnps_accepted"),
		CNPsIgnored:     reg.Counter("rocc.rp.cnps_ignored"),
		CNPsRejected:    reg.Counter("rocc.rp.cnps_rejected"),
		Recoveries:      reg.Counter("rocc.rp.recoveries"),
		StaleRecoveries: reg.Counter("rocc.rp.stale_recoveries"),
	}
}

// SetTelemetry attaches registry-backed mirrors of the RP counters.
func (rp *RP) SetTelemetry(t RPTelemetry) { rp.tm = t }

// CountRejected records one malformed CNP discarded before it reached
// ProcessCNP (callers validate transport-level fields the core never
// sees, e.g. host-computed queue observations).
func (rp *RP) CountRejected() {
	rp.CNPsRejected++
	rp.tm.CNPsRejected.Inc()
}
