// Package core implements the RoCC congestion-control algorithms from the
// paper exactly as specified, independent of any particular dataplane:
//
//   - CP: the congestion-point fair-rate computation (Alg. 1) — a PI
//     controller on the egress queue with two-level multiplicative
//     decrease and quantized auto-tuning of the control parameters
//     (§3.2, §5.3).
//   - RP: the reaction-point rate limiter (Alg. 2) — the multi-CP CNP
//     acceptance rule and exponential fast recovery (§3.5).
//   - HostCP: the §3.6 variant in which the switch ships raw queue
//     observations and the host replicates the fair-rate computation.
//
// The same code drives both the packet-level simulator (internal/roccnet)
// and the real-socket testbed (internal/testbed), mirroring how the paper
// evaluates one algorithm in OMNeT++ and in DPDK.
//
// Quantization follows §3.2 and Table 2: queue lengths are handled in
// multiples of ΔQ bytes and rates in multiples of ΔF Mb/s. The fair rate
// keeps fixed-point (fractional) precision internally, as the paper's
// simulation model does, and is rounded to whole ΔF units only when
// emitted in a CNP.
package core
