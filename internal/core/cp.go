package core

import "fmt"

// CPConfig holds the congestion-point parameters of Table 2 / §6.
// Queue quantities are in bytes and rates in Mb/s; the CP converts to ΔQ
// and ΔF units internally.
type CPConfig struct {
	DeltaQBytes int     // ΔQ: queue resolution in bytes (600 B in §6)
	DeltaFMbps  float64 // ΔF: rate resolution in Mb/s (10 Mb/s in §6)

	QrefBytes int // reference queue length
	QmidBytes int // queue-growth threshold for MD (F ← F/2)
	QmaxBytes int // queue-length threshold for MD (F ← Fmin)

	FminMbps float64 // minimum fair rate
	FmaxMbps float64 // maximum fair rate (the link bandwidth)

	AlphaTilde float64 // α̃: static PI proportional weight
	BetaTilde  float64 // β̃: static PI derivative weight

	// DisableMD turns off the multiplicative-decrease fast path
	// (ablation; the paper's design always enables it).
	DisableMD bool

	// DisableAutoTune pins α, β to α̃, β̃ (ablation for §5.3).
	DisableAutoTune bool

	// MaxLevel bounds the auto-tune quantization (64 in Alg. 1, giving
	// six α:β regions).
	MaxLevel int
}

// CPConfig40G returns the paper's §6 parameters for a 40 Gb/s egress link.
func CPConfig40G() CPConfig {
	return CPConfig{
		DeltaQBytes: 600,
		DeltaFMbps:  10,
		QrefBytes:   150 * 1000,
		QmidBytes:   300 * 1000,
		QmaxBytes:   360 * 1000,
		FminMbps:    100,   // Fmin = 10 units of ΔF
		FmaxMbps:    40000, // Fmax = 4000 units
		AlphaTilde:  0.3,
		BetaTilde:   1.5,
		MaxLevel:    64,
	}
}

// CPConfig100G returns the paper's §6 parameters for a 100 Gb/s egress link.
func CPConfig100G() CPConfig {
	return CPConfig{
		DeltaQBytes: 600,
		DeltaFMbps:  10,
		QrefBytes:   300 * 1000,
		QmidBytes:   600 * 1000,
		QmaxBytes:   660 * 1000,
		FminMbps:    100,
		FmaxMbps:    100000, // Fmax = 10000 units
		AlphaTilde:  0.45,
		BetaTilde:   2.25,
		MaxLevel:    64,
	}
}

// CPConfigForGbps derives a parameter set for an arbitrary link
// bandwidth, keeping the paper's 40G and 100G anchor points exact. Queue
// thresholds scale with the line rate (they approximate a bandwidth-delay
// budget, §5.2) but never below a packet-scale floor; the PI gains do
// not scale down — the open-loop gain K = κNα/T is independent of link
// capacity, and the paper's own anchors grow only mildly (0.3 → 0.45)
// from 40G to 100G.
func CPConfigForGbps(gbps float64) CPConfig {
	switch gbps {
	case 40:
		return CPConfig40G()
	case 100:
		return CPConfig100G()
	}
	scale := gbps / 40
	cfg := CPConfig40G()
	// Scale thresholds with line rate, but never below the paper's §6.2
	// 10 Gb/s testbed anchors (75/150/210 KB): tighter thresholds leave
	// the MD path too little headroom over PI overshoot, which §3.2
	// warns destabilizes the controller.
	scaleQ := func(q, floor int) int {
		s := int(float64(q) * scale)
		if s < floor {
			s = floor
		}
		return s
	}
	cfg.QrefBytes = scaleQ(cfg.QrefBytes, 75*1000)
	cfg.QmidBytes = scaleQ(cfg.QmidBytes, 150*1000)
	cfg.QmaxBytes = scaleQ(cfg.QmaxBytes, 210*1000)
	cfg.FmaxMbps = gbps * 1000
	if gbps > 40 {
		// Interpolate the paper's 40G → 100G gain growth.
		f := (gbps - 40) / 60
		cfg.AlphaTilde = 0.3 + 0.15*f
		cfg.BetaTilde = 1.5 + 0.75*f
	}
	return cfg
}

// Validate reports configuration errors, enforcing the §3.2 ordering
// Qmax > Qmid > Qref that prevents the MD path from destabilizing the PI.
func (c CPConfig) Validate() error {
	if c.DeltaQBytes <= 0 || c.DeltaFMbps <= 0 {
		return fmt.Errorf("core: ΔQ and ΔF must be positive")
	}
	if !(c.QmaxBytes > c.QmidBytes && c.QmidBytes > c.QrefBytes && c.QrefBytes > 0) {
		return fmt.Errorf("core: need Qmax > Qmid > Qref > 0, got %d/%d/%d",
			c.QmaxBytes, c.QmidBytes, c.QrefBytes)
	}
	if c.FminMbps <= 0 || c.FmaxMbps <= c.FminMbps {
		return fmt.Errorf("core: need Fmax > Fmin > 0, got %v/%v", c.FmaxMbps, c.FminMbps)
	}
	if c.AlphaTilde <= 0 || c.BetaTilde <= 0 {
		return fmt.Errorf("core: α̃ and β̃ must be positive")
	}
	if c.MaxLevel < 2 {
		return fmt.Errorf("core: MaxLevel must be at least 2")
	}
	return nil
}

// CP is the congestion-point fair-rate calculator (Alg. 1) for one egress
// queue. It is not safe for concurrent use; callers serialize Update.
type CP struct {
	cfg CPConfig

	// Quantized parameters (units of ΔQ and ΔF).
	qref, qmid, qmax float64
	fmin, fmax       float64

	f    float64 // current fair rate, ΔF units, fixed-point precision
	qold float64 // previous queue observation, ΔQ units

	level int // last auto-tune level (instrumentation)

	// Counters for instrumentation and tests.
	MDFloorCount int // times MD set F ← Fmin
	MDHalveCount int // times MD set F ← F/2
	Updates      int
}

// NewCP returns a CP initialized with F = Fmax (no congestion yet).
// It panics if cfg is invalid; use cfg.Validate to check first.
func NewCP(cfg CPConfig) *CP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cp := &CP{
		cfg:  cfg,
		qref: float64(cfg.QrefBytes) / float64(cfg.DeltaQBytes),
		qmid: float64(cfg.QmidBytes) / float64(cfg.DeltaQBytes),
		qmax: float64(cfg.QmaxBytes) / float64(cfg.DeltaQBytes),
		fmin: cfg.FminMbps / cfg.DeltaFMbps,
		fmax: cfg.FmaxMbps / cfg.DeltaFMbps,
	}
	cp.f = cp.fmax
	return cp
}

// Config returns the CP's configuration.
func (cp *CP) Config() CPConfig { return cp.cfg }

// Update runs one iteration of Calculate_Fair_Rate (Alg. 1) with the
// current queue length in bytes, returning the fair rate in whole ΔF units
// as carried by the CNP.
func (cp *CP) Update(qcurBytes int) int {
	cp.Updates++
	qcur := float64(qcurBytes) / float64(cp.cfg.DeltaQBytes)
	switch {
	case !cp.cfg.DisableMD && qcur >= cp.qmax && cp.f > cp.fmax/8:
		cp.f = cp.fmin // Line 3: queue overrun imminent
		cp.MDFloorCount++
	case !cp.cfg.DisableMD && qcur-cp.qold >= cp.qmid && cp.f > cp.fmax/8:
		cp.f = cp.f / 2 // Line 5: sharp queue growth
		cp.MDHalveCount++
	default:
		alpha, beta := cp.autoTune()
		cp.f = cp.f - alpha*(qcur-cp.qref) - beta*(qcur-cp.qold) // Line 8
	}
	if cp.f > cp.fmax {
		cp.f = cp.fmax
	}
	if cp.f < cp.fmin {
		cp.f = cp.fmin
	}
	cp.qold = qcur
	return cp.FairRateUnits()
}

// autoTune implements Auto_Tune (Alg. 1, lines 15-21): quantize the fair
// rate range into regions and scale α̃, β̃ down by the region's ratio.
func (cp *CP) autoTune() (alpha, beta float64) {
	if cp.cfg.DisableAutoTune {
		cp.level = 2
		return cp.cfg.AlphaTilde, cp.cfg.BetaTilde
	}
	level := 2
	for cp.f < cp.fmax/float64(level) && level < cp.cfg.MaxLevel {
		level *= 2
	}
	cp.level = level
	ratio := float64(level / 2)
	return cp.cfg.AlphaTilde / ratio, cp.cfg.BetaTilde / ratio
}

// Level returns the auto-tune level selected by the last Update
// (2, 4, ..., MaxLevel).
func (cp *CP) Level() int { return cp.level }

// FairRateUnits returns the current fair rate rounded to whole ΔF units.
func (cp *CP) FairRateUnits() int {
	u := int(cp.f + 0.5)
	if u < 1 {
		u = 1
	}
	return u
}

// FairRateMbps returns the current (fixed-point) fair rate in Mb/s.
func (cp *CP) FairRateMbps() float64 { return cp.f * cp.cfg.DeltaFMbps }

// SetQoldUnits overrides the previous queue observation (in ΔQ units).
// The §3.6 host-computed replica synchronizes Qold from the CNP before
// each update, since it does not observe every CP interval.
func (cp *CP) SetQoldUnits(units int) { cp.qold = float64(units) }

// SetFairRateMbps overrides the controller state (used by tests and by the
// host-computed replica when synchronizing with the CP).
func (cp *CP) SetFairRateMbps(mbps float64) {
	cp.f = mbps / cp.cfg.DeltaFMbps
	if cp.f > cp.fmax {
		cp.f = cp.fmax
	}
	if cp.f < cp.fmin {
		cp.f = cp.fmin
	}
}
