package faults

import (
	"testing"

	"rocc/internal/sim"
)

func TestLinkConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  LinkConfig
		ok   bool
	}{
		{"zero", LinkConfig{}, true},
		{"typical", LinkConfig{Drop: 0.1, Corrupt: 0.05, Duplicate: 0.02, Reorder: 0.1}, true},
		{"sum exactly one", LinkConfig{Drop: 0.5, Corrupt: 0.5}, true},
		{"negative drop", LinkConfig{Drop: -0.1}, false},
		{"negative reorder delay", LinkConfig{Reorder: 0.1, ReorderDelay: -sim.Microsecond}, false},
		{"sum past one", LinkConfig{Drop: 0.6, Corrupt: 0.6}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestValidateInvalidConfigStillPanicsOnAttach(t *testing.T) {
	_, net, a, _, _ := pair()
	in := New(net, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("Direction accepted a config Validate rejects")
		}
	}()
	in.Direction(a.NIC(), LinkConfig{Drop: -1})
}

func TestValidateSchedules(t *testing.T) {
	if err := ValidateFlap(sim.Millisecond, 100*sim.Microsecond); err != nil {
		t.Errorf("valid flap rejected: %v", err)
	}
	if ValidateFlap(sim.Millisecond, sim.Millisecond) == nil {
		t.Error("flap with downFor == period accepted")
	}
	if ValidateFlap(0, 0) == nil {
		t.Error("zero flap accepted")
	}
	if err := ValidateStall(sim.Millisecond, 400*sim.Microsecond); err != nil {
		t.Errorf("valid stall rejected: %v", err)
	}
	if ValidateStall(sim.Millisecond, 2*sim.Millisecond) == nil {
		t.Error("stall longer than period accepted")
	}
	if err := ValidateProb(0.3); err != nil {
		t.Errorf("valid probability rejected: %v", err)
	}
	if ValidateProb(1.5) == nil || ValidateProb(-0.1) == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestFlapWindowQuiescesByDeadline(t *testing.T) {
	engine, net, a, _, sw := pair()
	in := New(net, 7)
	link := a.NIC()
	peer := sw.PortTo(a)
	until := 5 * sim.Millisecond
	in.FlapWindow(link, peer, sim.Millisecond, 300*sim.Microsecond, until)
	engine.RunUntil(20 * sim.Millisecond)
	if link.LinkDown() || peer.LinkDown() {
		t.Fatal("link still down after the flap window deadline")
	}
	if got := in.Stats().Flaps; got == 0 || got > 5 {
		t.Fatalf("Flaps = %d, want a handful bounded by the 5ms window", got)
	}
}

func TestStallCPWindowQuiescesByDeadline(t *testing.T) {
	engine, net, _, _, sw := pair()
	in := New(net, 7)
	until := 4 * sim.Millisecond
	in.StallCPWindow(sw, sim.Millisecond, 400*sim.Microsecond, until)
	engine.RunUntil(20 * sim.Millisecond)
	if g := in.gates[sw]; g == nil || g.stalled {
		t.Fatal("CP gate still stalled after the window deadline")
	}
	if got := in.Stats().StallWindows; got == 0 || got > 4 {
		t.Fatalf("StallWindows = %d, want a handful bounded by the 4ms window", got)
	}
}
