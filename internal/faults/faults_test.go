package faults

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// pair builds host → switch → host with 40G links.
func pair() (*sim.Engine, *netsim.Network, *netsim.Host, *netsim.Host, *netsim.Switch) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	return engine, net, a, b, sw
}

func TestZeroConfigInstallsNothing(t *testing.T) {
	_, net, a, _, sw := pair()
	in := New(net, 7)
	in.Direction(a.NIC(), LinkConfig{})
	in.Link(a.NIC(), sw.PortTo(a), LinkConfig{})
	in.DropCNPs(sw, 0)
	in.Flap(a.NIC(), sw.PortTo(a), 0, 0)
	in.StallCP(sw, 0, 0)
	if a.NIC().Fault != nil || sw.PortTo(a).Fault != nil {
		t.Error("zero link config installed a fault hook")
	}
	if sw.InjectGate != nil {
		t.Error("zero CNP drop installed an inject gate")
	}
	if in.Stats() != (Stats{}) {
		t.Error("zero config produced nonzero stats")
	}
}

// TestZeroFaultRunIdentical: a run with a zero-config injector attached
// must transfer exactly the same bytes in exactly the same virtual time
// as a run without the fault layer at all.
func TestZeroFaultRunIdentical(t *testing.T) {
	run := func(withInjector bool) (int64, sim.Time) {
		engine, net, a, b, sw := pair()
		if withInjector {
			in := New(net, 99)
			in.Direction(a.NIC(), LinkConfig{})
			in.DropCNPs(sw, 0)
		}
		f := net.StartFlow(a, b, netsim.FlowConfig{Size: 300_000})
		engine.RunUntil(5 * sim.Millisecond)
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		return f.DeliveredBytes(), f.FCT()
	}
	bytes0, t0 := run(false)
	bytes1, t1 := run(true)
	if bytes0 != bytes1 || t0 != t1 {
		t.Errorf("zero-fault run diverged: %d bytes at %v vs %d bytes at %v",
			bytes0, t0, bytes1, t1)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, int64) {
		engine, net, a, b, _ := pair()
		in := New(net, 42)
		in.Direction(a.NIC(), LinkConfig{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, Match: MatchData})
		f := net.StartFlow(a, b, netsim.FlowConfig{Size: 500_000})
		engine.RunUntil(5 * sim.Millisecond)
		return in.Stats(), f.DeliveredBytes()
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s1, d1, s2, d2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Reordered == 0 {
		t.Errorf("fault paths never exercised: %+v", s1)
	}
}

func TestDropLosesData(t *testing.T) {
	engine, net, a, b, _ := pair()
	in := New(net, 3)
	in.Direction(a.NIC(), LinkConfig{Drop: 1, Match: MatchData})
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: 100_000})
	engine.RunUntil(2 * sim.Millisecond)
	if f.DeliveredBytes() != 0 {
		t.Errorf("delivered %d bytes through a 100%% drop link", f.DeliveredBytes())
	}
	if in.Stats().Dropped == 0 {
		t.Error("no drops counted")
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	engine, net, a, b, _ := pair()
	in := New(net, 3)
	in.Direction(a.NIC(), LinkConfig{Duplicate: 1, Match: MatchData})
	size := int64(100_000)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: size})
	engine.RunUntil(2 * sim.Millisecond)
	// Unreliable flows count every arrived byte, so a fully duplicated
	// wire doubles the tally — proving the clone really was delivered.
	if got := f.DeliveredBytes(); got != 2*size {
		t.Errorf("delivered %d bytes, want %d (every packet doubled)", got, 2*size)
	}
	if in.Stats().Duplicated == 0 {
		t.Error("no duplicates counted")
	}
}

func TestReorderDelaysDelivery(t *testing.T) {
	engine, net, a, b, _ := pair()
	in := New(net, 3)
	in.Direction(a.NIC(), LinkConfig{Reorder: 1, ReorderDelay: 50 * sim.Microsecond, Match: MatchData})
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: 100_000})
	engine.RunUntil(5 * sim.Millisecond)
	if f.DeliveredBytes() != 100_000 {
		t.Errorf("reordered flow lost bytes: %d", f.DeliveredBytes())
	}
	if in.Stats().Reordered == 0 {
		t.Error("no reorders counted")
	}
}

func TestCorruptMangledCNPSurvivesOthersDropped(t *testing.T) {
	h := &linkHook{in: &Injector{}, cfg: LinkConfig{}, rand: sim.NewRand(5)}
	cnp := &netsim.Packet{Kind: netsim.KindCNP, CNP: &netsim.CNPInfo{RateUnits: 100}}
	for i := 0; i < 16; i++ {
		out := h.corrupt(cnp)
		if out == nil {
			t.Fatal("corrupt CNP must survive the wire (mangled, not lost)")
		}
		if out == cnp || out.CNP == cnp.CNP {
			t.Fatal("corrupt must clone, not mutate the original")
		}
		if u := out.CNP.RateUnits; u >= 0 && u < 1<<29 {
			t.Fatalf("mangled rate units %d still look plausible", u)
		}
	}
	if cnp.CNP.RateUnits != 100 {
		t.Error("original CNP payload mutated")
	}
	host := &netsim.Packet{Kind: netsim.KindCNP, CNP: &netsim.CNPInfo{HostComputed: true, QCurUnits: 5, QOldUnits: 4}}
	out := h.corrupt(host)
	if out.CNP.QCurUnits == 5 && out.CNP.QOldUnits == 4 {
		t.Error("host-computed CNP observations not mangled")
	}
	data := &netsim.Packet{Kind: netsim.KindData}
	if h.corrupt(data) != nil {
		t.Error("corrupt data packet must fail CRC and be dropped")
	}
}

func TestFlapDropsInFlightTraffic(t *testing.T) {
	engine, net, a, b, sw := pair()
	in := New(net, 3)
	in.Flap(a.NIC(), sw.PortTo(a), sim.Millisecond, 200*sim.Microsecond)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(10)})
	// Outages run 1.0–1.2, 2.0–2.2, 3.0–3.2, 4.0–4.2 ms; at 4.5 ms the
	// link is in an up phase with four completed flaps.
	engine.RunUntil(4500 * sim.Microsecond)
	if in.Stats().Flaps != 4 {
		t.Errorf("Flaps = %d, want 4 completed outages by 4.5 ms", in.Stats().Flaps)
	}
	if a.NIC().LinkDownDrops == 0 {
		t.Error("no transmissions lost to the downed link")
	}
	if f.DeliveredBytes() == 0 {
		t.Error("flow made no progress between outages")
	}
	if a.NIC().LinkDown() {
		t.Error("link still down after the flap cycle's up phase")
	}
}

func TestDropCNPsGatesInjectedFeedback(t *testing.T) {
	engine, net, a, _, sw := pair()
	in := New(net, 3)
	in.DropCNPs(sw, 1)
	for i := 0; i < 10; i++ {
		sw.Inject(&netsim.Packet{Dst: a.ID(), Kind: netsim.KindCNP, Cls: netsim.ClassCtrl, Size: netsim.CNPBytes})
	}
	engine.RunUntil(sim.Millisecond)
	if a.CNPsRx != 0 {
		t.Errorf("%d CNPs arrived through a 100%% drop gate", a.CNPsRx)
	}
	if got := in.Stats().CNPsLost; got != 10 {
		t.Errorf("CNPsLost = %d, want 10", got)
	}
	// Data and other kinds pass the gate untouched.
	sw.Inject(&netsim.Packet{Dst: a.ID(), Kind: netsim.KindAck, Cls: netsim.ClassCtrl, Size: 64})
	engine.RunUntil(2 * sim.Millisecond)
}

func TestStallCPSuppressesWindows(t *testing.T) {
	engine, net, a, _, sw := pair()
	in := New(net, 3)
	in.StallCP(sw, sim.Millisecond, 500*sim.Microsecond)
	inject := func() {
		sw.Inject(&netsim.Packet{Dst: a.ID(), Kind: netsim.KindCNP, Cls: netsim.ClassCtrl, Size: netsim.CNPBytes})
	}
	// Before the first window: CNPs flow.
	engine.At(500*sim.Microsecond, inject)
	// Inside the first window (1.0–1.5 ms): suppressed.
	engine.At(1200*sim.Microsecond, inject)
	// After it: flows again.
	engine.At(1700*sim.Microsecond, inject)
	engine.RunUntil(3 * sim.Millisecond)
	if a.CNPsRx != 2 {
		t.Errorf("CNPsRx = %d, want 2 (one suppressed)", a.CNPsRx)
	}
	st := in.Stats()
	if st.CNPsStalled != 1 {
		t.Errorf("CNPsStalled = %d, want 1", st.CNPsStalled)
	}
	if st.StallWindows < 2 {
		t.Errorf("StallWindows = %d, want >= 2 in 3 ms", st.StallWindows)
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	_, net, a, _, sw := pair()
	in := New(net, 1)
	mustPanic("sum > 1", func() {
		in.Direction(a.NIC(), LinkConfig{Drop: 0.5, Corrupt: 0.6})
	})
	mustPanic("negative prob", func() {
		in.Direction(a.NIC(), LinkConfig{Drop: -0.1})
	})
	mustPanic("drop prob > 1", func() { in.DropCNPs(sw, 1.5) })
	mustPanic("down >= period", func() {
		in.Flap(a.NIC(), sw.PortTo(a), sim.Millisecond, sim.Millisecond)
	})
	mustPanic("stall >= period", func() {
		in.StallCP(sw, sim.Millisecond, 2*sim.Millisecond)
	})
	in.Direction(a.NIC(), LinkConfig{Drop: 0.1})
	mustPanic("double attach", func() {
		in.Direction(a.NIC(), LinkConfig{Drop: 0.1})
	})
}
