// Package faults is a deterministic fault-injection layer for the RoCC
// reproduction. The paper's headline claim is robustness; this package
// makes that a measurable property by perturbing the control loop the
// same way real fabrics do — lost, late, duplicated and corrupted
// packets, flapping links, and stalled congestion-point timers — while
// keeping the congestion-control algorithms themselves untouched.
//
// Design rules:
//
//   - Deterministic: an Injector owns a seeded RNG stream that is
//     independent of the network's workload stream, and every attachment
//     derives its own sub-stream (sim.Rand.Split). Two runs with the
//     same seeds produce identical fault sequences, and attaching faults
//     to one link never perturbs another link's sequence. Per-cell
//     seeding makes sweeps harness-compatible (internal/harness).
//
//   - Pay for what you use: attachments with all probabilities at zero
//     install no hooks, schedule no events and draw no random numbers,
//     so a zero-fault run is byte-identical to a run without the layer.
//
//   - Injection sits at the simulator's seams (netsim.Port.Fault,
//     netsim.Switch.InjectGate, Port.SetLinkDown), never inside the
//     algorithms: RoCC and every baseline see faults only as the absence,
//     lateness or garbling of the packets they already handle.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// LinkConfig sets per-packet fault probabilities for one link direction.
// Probabilities are evaluated in the order drop, corrupt, duplicate,
// reorder with a single uniform draw, so their sum must not exceed 1.
type LinkConfig struct {
	Drop      float64 // packet vanishes on the wire
	Corrupt   float64 // payload mangled: CNPs carry garbage rate units, other kinds fail CRC and are discarded
	Duplicate float64 // packet delivered twice
	Reorder   float64 // packet delayed by ReorderDelay, landing behind later transmissions

	// ReorderDelay is the extra propagation applied to reordered
	// packets. Zero defaults to 10 µs (several link RTTs).
	ReorderDelay sim.Time

	// Match restricts the faults to packets it accepts; nil matches all.
	Match func(pkt *netsim.Packet) bool
}

func (c LinkConfig) active() bool {
	return c.Drop > 0 || c.Corrupt > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// Validate reports whether the configuration is usable: probabilities
// must be non-negative and sum to at most 1 (they share a single uniform
// draw). Generators composing random fault schedules (internal/chaos)
// call this to reject a bad config with an error instead of crashing a
// worker pool; direct misuse of the injector still panics via validate.
func (c LinkConfig) Validate() error {
	if c.Drop < 0 || c.Corrupt < 0 || c.Duplicate < 0 || c.Reorder < 0 {
		return errors.New("faults: negative probability")
	}
	if c.Drop+c.Corrupt+c.Duplicate+c.Reorder > 1 {
		return fmt.Errorf("faults: probabilities sum to %v, past 1",
			c.Drop+c.Corrupt+c.Duplicate+c.Reorder)
	}
	if c.ReorderDelay < 0 {
		return errors.New("faults: negative reorder delay")
	}
	return nil
}

func (c LinkConfig) validate() {
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// ValidateFlap reports whether a flap schedule is usable: both durations
// positive and the down time strictly inside the period.
func ValidateFlap(period, downFor sim.Time) error {
	if period <= 0 || downFor <= 0 {
		return errors.New("faults: flap period and down time must be positive")
	}
	if downFor >= period {
		return errors.New("faults: flap down time must be shorter than its period")
	}
	return nil
}

// ValidateStall reports whether a CP stall schedule is usable.
func ValidateStall(period, stallFor sim.Time) error {
	if period <= 0 || stallFor <= 0 {
		return errors.New("faults: stall period and window must be positive")
	}
	if stallFor >= period {
		return errors.New("faults: stall window must be shorter than its period")
	}
	return nil
}

// ValidateProb reports whether p is a probability.
func ValidateProb(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("faults: probability %v out of [0,1]", p)
	}
	return nil
}

// MatchCNPs restricts link faults to congestion notifications.
func MatchCNPs(pkt *netsim.Packet) bool { return pkt.Kind == netsim.KindCNP }

// MatchData restricts link faults to data packets.
func MatchData(pkt *netsim.Packet) bool { return pkt.Kind == netsim.KindData }

// Stats aggregates fault counters across every attachment of an Injector.
type Stats struct {
	Dropped      uint64 // link-level drops (all kinds)
	CNPsLost     uint64 // CNPs lost to link drops and CP gate drops
	Corrupted    uint64 // packets mangled (CNPs) or CRC-discarded (others)
	Duplicated   uint64
	Reordered    uint64
	Flaps        uint64 // completed link-down events
	CNPsStalled  uint64 // CNPs suppressed inside CP stall windows
	StallWindows uint64
	LinkKills    uint64 // scheduled hard link failures executed
	SwitchKills  uint64 // scheduled hard switch failures executed
	Restores     uint64 // scheduled restores executed (links and switches)
}

// Injector owns the fault configuration and RNG streams for one network.
type Injector struct {
	net   *netsim.Network
	rand  *sim.Rand
	stats Stats
	gates map[*netsim.Switch]*cpGate
}

// New creates an injector with its own deterministic RNG stream, seeded
// independently of the network's workload randomness.
func New(net *netsim.Network, seed int64) *Injector {
	return &Injector{
		net:   net,
		rand:  sim.NewRand(seed),
		gates: make(map[*netsim.Switch]*cpGate),
	}
}

// Stats returns a snapshot of the aggregated fault counters. Counters
// are bumped atomically (link hooks and CP gates fire in shard context
// under the parallel engine), so the snapshot loads them atomically too.
func (in *Injector) Stats() Stats {
	return Stats{
		Dropped:      atomic.LoadUint64(&in.stats.Dropped),
		CNPsLost:     atomic.LoadUint64(&in.stats.CNPsLost),
		Corrupted:    atomic.LoadUint64(&in.stats.Corrupted),
		Duplicated:   atomic.LoadUint64(&in.stats.Duplicated),
		Reordered:    atomic.LoadUint64(&in.stats.Reordered),
		Flaps:        atomic.LoadUint64(&in.stats.Flaps),
		CNPsStalled:  atomic.LoadUint64(&in.stats.CNPsStalled),
		StallWindows: atomic.LoadUint64(&in.stats.StallWindows),
		LinkKills:    atomic.LoadUint64(&in.stats.LinkKills),
		SwitchKills:  atomic.LoadUint64(&in.stats.SwitchKills),
		Restores:     atomic.LoadUint64(&in.stats.Restores),
	}
}

// Link attaches the fault configuration to both directions of the link
// between ports a and b. A zero configuration attaches nothing.
func (in *Injector) Link(a, b *netsim.Port, cfg LinkConfig) {
	in.Direction(a, cfg)
	in.Direction(b, cfg)
}

// Direction attaches the fault configuration to packets leaving one
// port. Each call derives a private RNG sub-stream so later attachments
// never perturb earlier ones.
func (in *Injector) Direction(p *netsim.Port, cfg LinkConfig) {
	cfg.validate()
	if !cfg.active() {
		return
	}
	if cfg.ReorderDelay == 0 {
		cfg.ReorderDelay = 10 * sim.Microsecond
	}
	if p.Fault != nil {
		panic("faults: port already has a fault hook")
	}
	p.Fault = &linkHook{in: in, cfg: cfg, rand: in.rand.Split()}
}

// linkHook implements netsim.FaultHook for one link direction.
type linkHook struct {
	in   *Injector
	cfg  LinkConfig
	rand *sim.Rand
}

// OnTransmit rolls one uniform value per matched packet and maps it onto
// the configured probability ranges.
func (h *linkHook) OnTransmit(now sim.Time, pkt *netsim.Packet) netsim.FaultVerdict {
	if h.cfg.Match != nil && !h.cfg.Match(pkt) {
		return netsim.Deliver(pkt)
	}
	u := h.rand.Float64()
	switch {
	case u < h.cfg.Drop:
		atomic.AddUint64(&h.in.stats.Dropped, 1)
		if pkt.Kind == netsim.KindCNP {
			atomic.AddUint64(&h.in.stats.CNPsLost, 1)
		}
		return netsim.FaultVerdict{}
	case u < h.cfg.Drop+h.cfg.Corrupt:
		atomic.AddUint64(&h.in.stats.Corrupted, 1)
		return netsim.FaultVerdict{Pkt: h.corrupt(pkt)}
	case u < h.cfg.Drop+h.cfg.Corrupt+h.cfg.Duplicate:
		atomic.AddUint64(&h.in.stats.Duplicated, 1)
		return netsim.FaultVerdict{Pkt: pkt, Duplicate: true}
	case u < h.cfg.Drop+h.cfg.Corrupt+h.cfg.Duplicate+h.cfg.Reorder:
		atomic.AddUint64(&h.in.stats.Reordered, 1)
		return netsim.FaultVerdict{Pkt: pkt, ExtraDelay: h.cfg.ReorderDelay}
	}
	return netsim.Deliver(pkt)
}

// corrupt mangles a packet's payload. CNPs survive the wire with garbage
// rate units — exercising the reaction point's feedback validation —
// while every other kind fails its CRC at the receiver and is discarded.
func (h *linkHook) corrupt(pkt *netsim.Packet) *netsim.Packet {
	if pkt.Kind != netsim.KindCNP || pkt.CNP == nil {
		return nil
	}
	c := pkt.Clone()
	garbage := func() int {
		if h.rand.Intn(2) == 0 {
			return -1 - h.rand.Intn(1<<20) // negative rate
		}
		return 1<<30 + h.rand.Intn(1<<20) // absurdly large rate
	}
	if c.CNP.HostComputed {
		c.CNP.QCurUnits = garbage()
		c.CNP.QOldUnits = garbage()
	} else {
		c.CNP.RateUnits = garbage()
	}
	return c
}

// Flap schedules a periodic outage on the link between ports a and b:
// every period the link drops for downFor, losing everything in transit
// on it (data, CNPs and PFC frames), then re-establishes with pause
// state cleared on both ends. The first outage starts one period in.
func (in *Injector) Flap(a, b *netsim.Port, period, downFor sim.Time) {
	if period <= 0 || downFor <= 0 {
		return
	}
	if downFor >= period {
		panic("faults: flap down time must be shorter than its period")
	}
	engine := in.net.Engine
	var down func()
	down = func() {
		a.SetLinkDown(true)
		b.SetLinkDown(true)
		engine.After(downFor, func() {
			a.SetLinkDown(false)
			b.SetLinkDown(false)
			atomic.AddUint64(&in.stats.Flaps, 1)
			engine.After(period-downFor, down)
		})
	}
	engine.After(period, down)
}

// FlapWindow is Flap bounded in virtual time: outages whose down window
// would extend past until are not started, and the link is guaranteed
// back up by until. Chaos scenarios use it so every fault schedule
// quiesces before the drain phase the end-of-run invariants check.
func (in *Injector) FlapWindow(a, b *netsim.Port, period, downFor, until sim.Time) {
	if err := ValidateFlap(period, downFor); err != nil {
		panic(err)
	}
	engine := in.net.Engine
	var down func()
	down = func() {
		if engine.Now()+downFor > until {
			return
		}
		a.SetLinkDown(true)
		b.SetLinkDown(true)
		engine.After(downFor, func() {
			a.SetLinkDown(false)
			b.SetLinkDown(false)
			atomic.AddUint64(&in.stats.Flaps, 1)
			engine.After(period-downFor, down)
		})
	}
	engine.After(period, down)
}

// ValidateKill reports whether a topology-kill schedule is usable: the
// kill time must be non-negative and the restore, when scheduled
// (restoreAt > 0), must come strictly after it. restoreAt == 0 means the
// failure is permanent for the run.
func ValidateKill(at, restoreAt sim.Time) error {
	if at < 0 {
		return errors.New("faults: kill time must be non-negative")
	}
	if restoreAt > 0 && restoreAt <= at {
		return errors.New("faults: restore must come after the kill")
	}
	return nil
}

// KillLink schedules a hard failure of the link between ports a and b at
// time at, routed through the network's topology-failure machinery
// (netsim.FailLink): both ends go down, ECMP entries over the link are
// invalidated immediately, and routes reconverge after the network's
// ReconvergeDelay. restoreAt > 0 schedules the symmetric restore. Unlike
// Flap, which only pauses the wire, a kill changes routing — flows
// re-path around the outage. A zero-entry plan (never calling this)
// installs nothing, keeping zero-fault runs byte-identical.
func (in *Injector) KillLink(a, b *netsim.Port, at, restoreAt sim.Time) {
	if err := ValidateKill(at, restoreAt); err != nil {
		panic(err)
	}
	if b.Owner() != a.PeerNode {
		panic("faults: KillLink ports are not ends of one link")
	}
	engine := in.net.Engine
	engine.At(at, func() {
		in.net.FailLink(a) // fails both ends; b names the link for the caller
		atomic.AddUint64(&in.stats.LinkKills, 1)
	})
	if restoreAt > 0 {
		engine.At(restoreAt, func() {
			in.net.RestoreLink(a)
			atomic.AddUint64(&in.stats.Restores, 1)
		})
	}
}

// KillSwitch schedules a hard failure of a whole switch at time at
// (netsim.FailSwitch): every attached link goes down, peers invalidate
// their routes toward it, and its own table is cleared until the restore
// reconverges. restoreAt > 0 schedules the restore; zero leaves it dead.
func (in *Injector) KillSwitch(sw *netsim.Switch, at, restoreAt sim.Time) {
	if err := ValidateKill(at, restoreAt); err != nil {
		panic(err)
	}
	engine := in.net.Engine
	engine.At(at, func() {
		in.net.FailSwitch(sw)
		atomic.AddUint64(&in.stats.SwitchKills, 1)
	})
	if restoreAt > 0 {
		engine.At(restoreAt, func() {
			in.net.RestoreSwitch(sw)
			atomic.AddUint64(&in.stats.Restores, 1)
		})
	}
}

// cpGate filters one switch's locally generated CNPs: probabilistic loss
// plus stall windows, sharing the single netsim.Switch.InjectGate slot.
type cpGate struct {
	in      *Injector
	rand    *sim.Rand
	drop    float64
	stalled bool
}

func (g *cpGate) allow(pkt *netsim.Packet) bool {
	if pkt.Kind != netsim.KindCNP {
		return true
	}
	if g.stalled {
		atomic.AddUint64(&g.in.stats.CNPsStalled, 1)
		return false
	}
	if g.drop > 0 && g.rand.Float64() < g.drop {
		atomic.AddUint64(&g.in.stats.CNPsLost, 1)
		return false
	}
	return true
}

func (in *Injector) gate(sw *netsim.Switch) *cpGate {
	g, ok := in.gates[sw]
	if !ok {
		if sw.InjectGate != nil {
			panic("faults: switch already has an inject gate")
		}
		g = &cpGate{in: in, rand: in.rand.Split()}
		sw.InjectGate = g.allow
		in.gates[sw] = g
	}
	return g
}

// DropCNPs makes the switch lose each CNP it generates with probability
// prob — feedback loss on the control path. Zero attaches nothing.
func (in *Injector) DropCNPs(sw *netsim.Switch, prob float64) {
	if prob < 0 || prob > 1 {
		panic("faults: CNP drop probability out of range")
	}
	if prob == 0 {
		return
	}
	in.gate(sw).drop = prob
}

// StallCP silences the switch's congestion points for stallFor out of
// every period, modeling a stalled CP timer (late feedback): CNPs due in
// the window are suppressed, not queued. The first window opens one
// period in.
func (in *Injector) StallCP(sw *netsim.Switch, period, stallFor sim.Time) {
	if period <= 0 || stallFor <= 0 {
		return
	}
	if stallFor >= period {
		panic("faults: stall window must be shorter than its period")
	}
	g := in.gate(sw)
	engine := in.net.Engine
	var stall func()
	stall = func() {
		g.stalled = true
		atomic.AddUint64(&in.stats.StallWindows, 1)
		engine.After(stallFor, func() {
			g.stalled = false
			engine.After(period-stallFor, stall)
		})
	}
	engine.After(period, stall)
}

// StallCPWindow is StallCP bounded in virtual time: stall windows that
// would extend past until are not opened, so the CP is guaranteed live
// again by until.
func (in *Injector) StallCPWindow(sw *netsim.Switch, period, stallFor, until sim.Time) {
	if err := ValidateStall(period, stallFor); err != nil {
		panic(err)
	}
	g := in.gate(sw)
	engine := in.net.Engine
	var stall func()
	stall = func() {
		if engine.Now()+stallFor > until {
			return
		}
		g.stalled = true
		atomic.AddUint64(&in.stats.StallWindows, 1)
		engine.After(stallFor, func() {
			g.stalled = false
			engine.After(period-stallFor, stall)
		})
	}
	engine.After(period, stall)
}
