package faults

import (
	"strings"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestKillLinkSchedulesFailAndRestore(t *testing.T) {
	engine, net, a, b, sw := pair()
	in := New(net, 7)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, Reliable: true})

	egress := sw.PortTo(b)
	in.KillLink(egress, b.NIC(), 500*sim.Microsecond, 1500*sim.Microsecond)

	engine.RunUntil(600 * sim.Microsecond)
	if !egress.LinkDown() || !b.NIC().LinkDown() {
		t.Fatal("link not down after the scheduled kill")
	}
	if got := in.Stats(); got.LinkKills != 1 || got.Restores != 0 {
		t.Errorf("stats after kill = %+v, want LinkKills=1 Restores=0", got)
	}

	engine.RunUntil(1600 * sim.Microsecond)
	if egress.LinkDown() || b.NIC().LinkDown() {
		t.Fatal("link still down after the scheduled restore")
	}
	if got := in.Stats(); got.Restores != 1 {
		t.Errorf("Restores = %d, want 1", got.Restores)
	}

	// Reconverged and healthy: the reliable flow must be moving again.
	delivered := f.DeliveredBytes()
	engine.RunUntil(4 * sim.Millisecond)
	if f.DeliveredBytes() <= delivered {
		t.Error("flow did not resume after restore")
	}
	if detail, ok := net.RoutesComplete(); !ok {
		t.Errorf("routes incomplete after restore: %s", detail)
	}
	f.Stop()
}

func TestKillSwitchSchedulesFailAndRestore(t *testing.T) {
	engine, net, a, b, sw := pair()
	in := New(net, 7)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, Reliable: true})
	in.KillSwitch(sw, 500*sim.Microsecond, 1500*sim.Microsecond)

	engine.RunUntil(sim.Millisecond)
	if _, ok := net.RoutesComplete(); ok {
		t.Fatal("RoutesComplete passed while the only switch was dead")
	}
	if got := in.Stats(); got.SwitchKills != 1 {
		t.Errorf("SwitchKills = %d, want 1", got.SwitchKills)
	}

	delivered := f.DeliveredBytes()
	engine.RunUntil(4 * sim.Millisecond)
	if got := in.Stats(); got.Restores != 1 {
		t.Errorf("Restores = %d, want 1", got.Restores)
	}
	if f.DeliveredBytes() <= delivered {
		t.Error("flow did not resume after the switch came back")
	}
	f.Stop()
}

func TestKillLinkPermanentWhenNoRestore(t *testing.T) {
	engine, net, _, b, sw := pair()
	in := New(net, 7)
	in.KillLink(sw.PortTo(b), b.NIC(), 100*sim.Microsecond, 0)
	engine.RunUntil(5 * sim.Millisecond)
	if !sw.PortTo(b).LinkDown() {
		t.Error("permanent kill (restoreAt=0) came back up")
	}
	if got := in.Stats(); got.LinkKills != 1 || got.Restores != 0 {
		t.Errorf("stats = %+v, want LinkKills=1 Restores=0", got)
	}
}

func TestValidateKillRejectsBadSchedules(t *testing.T) {
	if err := ValidateKill(-1, 0); err == nil {
		t.Error("negative kill time accepted")
	}
	if err := ValidateKill(100, 100); err == nil {
		t.Error("restore at the kill instant accepted")
	}
	if err := ValidateKill(100, 50); err == nil {
		t.Error("restore before the kill accepted")
	}
	if err := ValidateKill(100, 0); err != nil {
		t.Errorf("permanent kill rejected: %v", err)
	}
	if err := ValidateKill(100, 200); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestKillLinkMismatchedPortsPanics(t *testing.T) {
	_, net, a, _, sw := pair()
	in := New(net, 7)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("KillLink with ports of two different links did not panic")
		}
		if !strings.Contains(r.(string), "one link") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	// a's NIC and the switch's port toward a's *peer* end is fine; pass a
	// port from the wrong link instead.
	in.KillLink(a.NIC(), sw.PortTo(a), 0, 0) // valid pairing first (sanity)
	in.KillLink(a.NIC(), a.NIC(), 0, 0)      // same port twice: not a link's two ends
}

// TestZeroKillPlanIdentical: attaching an injector with no kill schedule
// must leave the run byte-for-byte identical to no injector at all, for
// every time step — the topology-failure layer costs nothing when idle.
func TestZeroKillPlanIdentical(t *testing.T) {
	run := func(withInjector bool) (int64, sim.Time, uint64) {
		engine, net, a, b, _ := pair()
		if withInjector {
			New(net, 99)
		}
		f := net.StartFlow(a, b, netsim.FlowConfig{Size: 300_000, Reliable: true})
		engine.RunUntil(5 * sim.Millisecond)
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		return f.DeliveredBytes(), f.FCT(), net.Reconverges()
	}
	bytes0, t0, r0 := run(false)
	bytes1, t1, r1 := run(true)
	if bytes0 != bytes1 || t0 != t1 || r0 != r1 {
		t.Errorf("zero-kill run diverged: (%d, %v, %d) vs (%d, %v, %d)",
			bytes0, t0, r0, bytes1, t1, r1)
	}
	if r0 != 0 {
		t.Errorf("reconverges = %d without any topology event", r0)
	}
}
