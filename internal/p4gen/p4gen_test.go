package p4gen

import (
	"encoding/json"
	"strings"
	"testing"

	"rocc/internal/core"
)

func TestProgramStructure(t *testing.T) {
	src, err := Program(Options{})
	if err != nil {
		t.Fatal(err)
	}
	required := []string{
		`@controller_header("packet_out")`, // Listing 1
		"header packetout_t",
		"bit<8> egress_port;",
		"CPU_PORT        = 255",
		"state parse_packetout",
		"steer_cnp",                                   // (3) ingress steering
		"std.deq_qdepth",                              // (4) traffic-manager depth
		"register<bit<32>>(FLOW_TABLE_SIZE) flow_src", // (5i) flow table
		"hdr.icmp.qcur = (bit<32>)std.deq_qdepth",     // (5ii) stamping
		"V1Switch(",
	}
	for _, want := range required {
		if !strings.Contains(src, want) {
			t.Errorf("generated program missing %q", want)
		}
	}
}

func TestProgramBracesBalanced(t *testing.T) {
	src, err := Program(Options{})
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for _, r := range src {
		switch r {
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				t.Fatal("unbalanced closing brace")
			}
		}
	}
	if depth != 0 {
		t.Fatalf("brace depth %d at EOF", depth)
	}
}

func TestProgramParameterEmbedding(t *testing.T) {
	src, err := Program(Options{TMicros: 123, FlowTableSlots: 2048, CPUPort: 192})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"123 us", "FLOW_TABLE_SIZE = 2048", "CPU_PORT        = 192"} {
		if !strings.Contains(src, want) {
			t.Errorf("option not embedded: %q", want)
		}
	}
}

func TestProgramDeterministic(t *testing.T) {
	a, _ := Program(Options{})
	b, _ := Program(Options{})
	if a != b {
		t.Error("generation not deterministic")
	}
}

func TestProgramRejectsInvalidCore(t *testing.T) {
	bad := core.CPConfig40G()
	bad.QrefBytes = bad.QmaxBytes + 1
	if _, err := Program(Options{Core: bad}); err == nil {
		t.Error("invalid core config accepted")
	}
	if _, err := Config(Options{Core: bad}); err == nil {
		t.Error("invalid core config accepted by Config")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	out, err := Config(Options{TMicros: 40})
	if err != nil {
		t.Fatal(err)
	}
	var cp ControlPlane
	if err := json.Unmarshal([]byte(out), &cp); err != nil {
		t.Fatalf("config is not valid JSON: %v", err)
	}
	if cp.TMicros != 40 || cp.QrefUnits != 250 || cp.FmaxUnits != 4000 {
		t.Errorf("config values: %+v", cp)
	}
	if cp.AlphaTilde != 0.3 || cp.BetaTilde != 1.5 {
		t.Errorf("gains: %+v", cp)
	}
	// Quantized units must reproduce the byte thresholds exactly.
	if cp.QrefUnits*cp.DeltaQBytes != 150000 {
		t.Error("Qref unit conversion broken")
	}
}

func TestConfigFor100G(t *testing.T) {
	out, err := Config(Options{Core: core.CPConfig100G()})
	if err != nil {
		t.Fatal(err)
	}
	var cp ControlPlane
	json.Unmarshal([]byte(out), &cp)
	if cp.FmaxUnits != 10000 || cp.QrefUnits != 500 {
		t.Errorf("100G config: %+v", cp)
	}
}
