package sim

import "container/heap"

// Event is a scheduled callback. It may be cancelled before it fires.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once popped or cancelled
	engine *Engine
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancelled reports whether the event was cancelled or already fired.
func (ev *Event) Cancelled() bool { return ev.fn == nil }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was cancelled is a no-op.
func (ev *Event) Cancel() {
	if ev == nil || ev.fn == nil {
		return
	}
	ev.fn = nil
	if ev.index >= 0 {
		heap.Remove(&ev.engine.events, ev.index)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now        Time
	events     eventHeap
	seq        uint64
	stopped    bool
	fired      uint64
	maxPending int
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// MaxPending returns the high-water mark of the event queue, a proxy for
// how bursty the model's scheduling is.
func (e *Engine) MaxPending() int { return e.maxPending }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.events, ev)
	if len(e.events) > e.maxPending {
		e.maxPending = len(e.events)
	}
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue // cancelled after pop ordering; skip
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled after end remain pending.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

// Ticker invokes fn every period, starting at now+period, until cancelled.
type Ticker struct {
	engine *Engine
	period Time
	fn     func()
	ev     *Event
	done   bool
}

// NewTicker starts a periodic callback. period must be positive.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.engine.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.schedule()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}
