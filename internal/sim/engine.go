package sim

import "container/heap"

// event is one scheduled callback slot. Slots are owned by the engine:
// after an event fires or is cancelled its slot returns to an engine free
// list and is reused by a later At/After, so a steady-state simulation
// schedules without allocating. The generation counter makes stale
// Handles (kept by callers across a recycle) permanently inert.
type event struct {
	at  Time
	seq uint64
	gen uint64 // bumped on every recycle; Handles carry the gen they saw

	// k1 is the ordering lane: events with equal timestamps sort by
	// (k1, seq). Legacy (unsharded) scheduling leaves k1 at zero, so the
	// order degenerates to the historical (at, seq) and stays
	// byte-identical. Sharded runs use lanes to make same-timestamp
	// ordering independent of how the topology is partitioned: a lane is
	// shared only by events whose relative seq order is itself
	// partition-independent (see shard.go and DESIGN.md §14).
	//
	// ctx is the lane inherited by children: while this event's callback
	// runs, any event it schedules via At/After/AtCall/AfterCall is
	// stamped k1=ctx=ctx. AtKeyed sets both explicitly.
	k1  uint64
	ctx uint64

	// Exactly one of fn / cb is set while scheduled; both nil once the
	// slot is free. The cb form exists so hot paths can schedule without
	// allocating a closure: cb is typically a package-level func and a, b
	// carry its receiver/argument pointers (pointers boxed in an `any`
	// do not allocate).
	fn   func()
	cb   Callback
	a, b any

	index  int // heap index, -1 once popped or cancelled
	engine *Engine
}

// Callback is the allocation-free callback form: a package-level (or
// otherwise pre-built) function receiving the two values it was scheduled
// with. See Engine.AtCall.
type Callback func(a, b any)

// Handle refers to a scheduled event. It is a small value (no heap
// allocation) and stays safe across the event's whole lifecycle: once the
// event fires or is cancelled, the engine recycles the slot and every
// outstanding Handle to it becomes inert — Cancel on a stale Handle is a
// no-op even if the slot now carries an unrelated event. The zero Handle
// is valid and behaves like an already-cancelled event.
type Handle struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its scheduled event.
func (h Handle) live() bool {
	return h.ev != nil && h.ev.gen == h.gen && (h.ev.fn != nil || h.ev.cb != nil)
}

// At returns the virtual time the event is scheduled for, or 0 if the
// event already fired or was cancelled.
func (h Handle) At() Time {
	if !h.live() {
		return 0
	}
	return h.ev.at
}

// Cancelled reports whether the event fired, was cancelled, or was never
// scheduled (the zero Handle).
func (h Handle) Cancelled() bool { return !h.live() }

// Cancel prevents the event from firing. Cancelling an event that already
// fired, was cancelled, or whose slot has since been reused is a no-op.
func (h Handle) Cancel() {
	if !h.live() {
		return
	}
	ev := h.ev
	if ev.index >= 0 {
		heap.Remove(&ev.engine.events, ev.index)
	}
	ev.engine.recycle(ev)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].k1 != h[j].k1 {
		return h[i].k1 < h[j].k1
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now        Time
	events     eventHeap
	free       []*event // recycled slots, reused by At/After
	seq        uint64
	stopped    bool
	fired      uint64
	maxPending int
	allocated  uint64 // event slots ever allocated (pool high-water mark)

	// curCtx is the lane of the event currently executing (zero between
	// events and for all legacy scheduling). New events inherit it.
	curCtx uint64

	// group, when non-nil, marks this engine as the global lane of a
	// sharded Group: Run/RunUntil/Stop delegate to the group's windowed
	// coordinator instead of draining this heap alone.
	group *Group
}

// New returns an engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// MaxPending returns the high-water mark of the event queue, a proxy for
// how bursty the model's scheduling is.
func (e *Engine) MaxPending() int { return e.maxPending }

// EventSlots returns how many event structs the engine ever allocated.
// In an allocation-free steady state this stops growing: it equals the
// peak number of simultaneously pending events, not the number fired.
func (e *Engine) EventSlots() uint64 { return e.allocated }

// acquire returns a free event slot, allocating only when the free list
// is empty (cold start or a new pending high-water mark).
func (e *Engine) acquire() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	e.allocated++
	return &event{engine: e}
}

// recycle clears a slot and returns it to the free list. The generation
// bump invalidates every outstanding Handle to the old event.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cb = nil
	ev.a = nil
	ev.b = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// schedule inserts an acquired, filled slot into the heap.
func (e *Engine) schedule(ev *event, t Time) Handle {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev.at = t
	ev.seq = e.seq
	ev.k1 = e.curCtx
	ev.ctx = e.curCtx
	heap.Push(&e.events, ev)
	if len(e.events) > e.maxPending {
		e.maxPending = len(e.events)
	}
	return Handle{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn func()) Handle {
	ev := e.acquire()
	ev.fn = fn
	return e.schedule(ev, t)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtCall schedules cb(a, b) at absolute virtual time t without allocating:
// the event slot comes from the engine pool and cb is expected to be a
// package-level func (a closure would re-introduce the allocation this
// path exists to avoid). Pointer arguments do not allocate when boxed;
// avoid passing non-pointer values.
func (e *Engine) AtCall(t Time, cb Callback, a, b any) Handle {
	ev := e.acquire()
	ev.cb = cb
	ev.a = a
	ev.b = b
	return e.schedule(ev, t)
}

// AfterCall schedules cb(a, b) d nanoseconds from now. See AtCall.
func (e *Engine) AfterCall(d Time, cb Callback, a, b any) Handle {
	if d < 0 {
		d = 0
	}
	return e.AtCall(e.now+d, cb, a, b)
}

// AtKeyed schedules cb(a, b) at time t with an explicit ordering lane,
// lane-local sequence number, and child context, bypassing the engine's
// own seq counter. Sharded dataplanes use it for packet arrivals: the
// (lane, seq) pair is derived from the transmitting link, so arrival
// order at equal timestamps does not depend on which shard the sender
// landed on. ctx is inherited by everything the callback schedules.
func (e *Engine) AtKeyed(t Time, lane, seq, ctx uint64, cb Callback, a, b any) Handle {
	ev := e.acquire()
	ev.cb = cb
	ev.a = a
	ev.b = b
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev.at = t
	ev.seq = seq
	ev.k1 = lane
	ev.ctx = ctx
	heap.Push(&e.events, ev)
	if len(e.events) > e.maxPending {
		e.maxPending = len(e.events)
	}
	return Handle{ev: ev, gen: ev.gen}
}

// Stop makes Run and RunUntil return after the current event completes.
// On the global lane of a sharded Group this stops the whole group.
func (e *Engine) Stop() {
	e.stopped = true
	if e.group != nil {
		e.group.stopped = true
	}
}

// Step executes the single earliest pending event. It reports whether an
// event was executed. The slot is recycled before the callback runs, so
// callbacks scheduling new events reuse it immediately.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.curCtx = ev.ctx
	fn, cb, a, b := ev.fn, ev.cb, ev.a, ev.b
	e.recycle(ev)
	e.fired++
	if cb != nil {
		cb(a, b)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called. On the
// global lane of a sharded Group it runs the group's windowed schedule.
func (e *Engine) Run() {
	if e.group != nil {
		e.group.Run()
		return
	}
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled after end remain pending. On the global lane of a
// sharded Group it runs the group's windowed schedule.
func (e *Engine) RunUntil(end Time) {
	if e.group != nil {
		e.group.RunUntil(end)
		return
	}
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 || e.events[0].at > end {
			break
		}
		e.Step()
	}
	if e.now < end {
		e.now = end
	}
}

// nextAt returns the timestamp of the earliest pending event, or
// maxTime when the heap is empty.
func (e *Engine) nextAt() Time {
	if len(e.events) == 0 {
		return maxTime
	}
	return e.events[0].at
}

// runWindow executes every pending event strictly before w, then
// fast-forwards the clock to w and resets the inherited lane. It is the
// per-shard body of one conservative-lookahead window: all events < w are
// causally closed within the shard (cross-shard influence cannot arrive
// before w), so shards run their windows concurrently.
func (e *Engine) runWindow(w Time) {
	for len(e.events) > 0 && e.events[0].at < w {
		e.Step()
	}
	if e.now < w {
		e.now = w
	}
	e.curCtx = 0
}

// maxTime is the sentinel "no event" timestamp.
const maxTime = Time(1<<63 - 1)

// Ticker invokes fn every period, starting at now+period, until cancelled.
// Each tick's event slot comes from (and returns to) the engine pool, and
// the rescheduling closure is built once, so a running ticker does not
// allocate.
type Ticker struct {
	engine *Engine
	period Time
	fn     func()
	run    func()
	ev     Handle
	done   bool
}

// NewTicker starts a periodic callback. period must be positive.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.run = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.engine.After(t.period, t.run)
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}
