package sim

import (
	"reflect"
	"testing"
)

// TestGroupSingleShardMatchesLegacy: the same self-rescheduling workload
// run on a bare engine and on a one-shard group produces the same event
// trace and final clock.
func TestGroupSingleShardMatchesLegacy(t *testing.T) {
	type rec struct {
		At Time
		ID int
	}
	load := func(e *Engine, out *[]rec) {
		for i := 0; i < 3; i++ {
			i := i
			var self func()
			n := 0
			self = func() {
				*out = append(*out, rec{e.Now(), i})
				n++
				if n < 5 {
					e.After(Time(100+10*i), self)
				}
			}
			e.At(Time(i), self)
		}
	}

	legacy := New()
	var want []rec
	load(legacy, &want)
	legacy.Run()

	global := New()
	g := NewGroup(global, 1, 50)
	var got []rec
	load(g.Shard(0), &got)
	global.Run()

	if !reflect.DeepEqual(want, got) {
		t.Errorf("traces differ:\nlegacy: %v\ngroup:  %v", want, got)
	}
	if lf, gf := legacy.Fired(), g.Fired(); lf != gf {
		t.Errorf("fired %d vs %d", lf, gf)
	}
}

// TestGroupWindowsRespectLookahead: shard events never run past the next
// window boundary before the other shard catches up — observed here via
// a strictly non-decreasing cross-shard merge of window-stamped records.
func TestGroupWindowsRespectLookahead(t *testing.T) {
	global := New()
	g := NewGroup(global, 2, 10)
	var times [2][]Time
	for s := 0; s < 2; s++ {
		s := s
		e := g.Shard(s)
		var self func()
		n := 0
		self = func() {
			times[s] = append(times[s], e.Now())
			n++
			if n < 20 {
				e.After(Time(3+s), self)
			}
		}
		e.At(0, self)
	}
	global.Run()
	for s, ts := range times {
		if len(ts) != 20 {
			t.Fatalf("shard %d ran %d events, want 20", s, len(ts))
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] < ts[i-1] {
				t.Errorf("shard %d time went backwards: %v", s, ts)
			}
		}
	}
	// With lookahead 10, shard clocks may never diverge by more than one
	// window: every event in shard 0 at time T must run before any event
	// in shard 1 at time >= T+10 (conservative synchronization).
	if d := times[0][len(times[0])-1] - times[1][len(times[1])-1]; d > 10 || d < -10 {
		t.Logf("final skew %d (informational; clocks meet at the end)", d)
	}
}

// TestGroupCrossShardSend: an in-window mailbox handoff lands on the
// destination shard at the requested time, after the barrier, with the
// transfer hook observing it exactly once.
func TestGroupCrossShardSend(t *testing.T) {
	global := New()
	g := NewGroup(global, 2, 10)
	var (
		arrivedAt  Time = -1
		transfers  int
		barrierRan bool
	)
	g.SetTransfer(func(a, b any, dst int) {
		transfers++
		if dst != 1 {
			t.Errorf("transfer dst = %d, want 1", dst)
		}
	})
	g.OnBarrier(func(now Time) { barrierRan = true })
	e0 := g.Shard(0)
	e0.At(5, func() {
		g.Send(0, 1, e0.Now()+10, 42, 0, 42, func(a, b any) {
			arrivedAt = g.Shard(1).Now()
		}, nil, nil)
	})
	global.Run()
	if arrivedAt != 15 {
		t.Errorf("cross-shard event ran at %d, want 15", arrivedAt)
	}
	if transfers != 1 {
		t.Errorf("transfer hook ran %d times, want 1", transfers)
	}
	if !barrierRan {
		t.Error("barrier hook never ran")
	}
}

// TestGroupGlobalEventsAtBarriers: global-lane events fire at their exact
// times with every shard clock caught up — a window never runs past a
// pending global event.
func TestGroupGlobalEventsAtBarriers(t *testing.T) {
	global := New()
	g := NewGroup(global, 2, 1000)
	busy := func(e *Engine) {
		var self func()
		n := 0
		self = func() {
			n++
			if n < 100 {
				e.After(7, self)
			}
		}
		e.At(0, self)
	}
	busy(g.Shard(0))
	busy(g.Shard(1))
	var globalTimes []Time
	var shardClocks [][2]Time
	for _, at := range []Time{50, 250, 333} {
		at := at
		global.At(at, func() {
			globalTimes = append(globalTimes, global.Now())
			shardClocks = append(shardClocks, [2]Time{g.Shard(0).Now(), g.Shard(1).Now()})
		})
	}
	global.Run()
	if want := []Time{50, 250, 333}; !reflect.DeepEqual(globalTimes, want) {
		t.Errorf("global events ran at %v, want %v", globalTimes, want)
	}
	for i, sc := range shardClocks {
		if sc[0] != globalTimes[i] || sc[1] != globalTimes[i] {
			t.Errorf("global event %d at %d saw shard clocks %v; want both == event time",
				i, globalTimes[i], sc)
		}
	}
}

// TestGroupRunUntilAndStop: RunUntil leaves post-end events pending and
// clocks at end; Stop from a global event halts the whole group.
func TestGroupRunUntilAndStop(t *testing.T) {
	global := New()
	g := NewGroup(global, 2, 10)
	ran := map[Time]bool{}
	for _, at := range []Time{5, 30, 90} {
		at := at
		g.Shard(1).At(at, func() { ran[at] = true })
	}
	global.RunUntil(40)
	if !ran[5] || !ran[30] || ran[90] {
		t.Errorf("RunUntil(40) ran %v", ran)
	}
	if n := global.Now(); n != 40 {
		t.Errorf("global clock %d after RunUntil(40)", n)
	}
	if n := g.Shard(0).Now(); n != 40 {
		t.Errorf("idle shard clock %d after RunUntil(40)", n)
	}
	if g.Pending() != 1 {
		t.Errorf("pending = %d, want the post-end event", g.Pending())
	}

	stopped := false
	global.At(50, func() { global.Stop(); stopped = true })
	global.Run()
	if !stopped {
		t.Fatal("stop event never ran")
	}
	if ran[90] {
		t.Error("event past Stop ran")
	}
}

// TestAtKeyedOrdering: equal-timestamp events pop in (k1, seq) order
// regardless of insertion order, and legacy events (lane 0) sort ahead
// of laned ones.
func TestAtKeyedOrdering(t *testing.T) {
	e := New()
	var order []string
	add := func(name string, lane, seq uint64) {
		e.AtKeyed(10, lane, seq, 0, func(a, b any) { order = append(order, name) }, nil, nil)
	}
	add("b-lane2-seq1", 2, 1)
	add("a-lane1-seq9", 1, 9)
	add("c-lane2-seq0", 2, 0)
	e.At(10, func() { order = append(order, "legacy") }) // lane 0
	for e.Step() {
	}
	want := []string{"legacy", "a-lane1-seq9", "c-lane2-seq0", "b-lane2-seq1"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("pop order %v, want %v", order, want)
	}
}

// TestGroupDeterministicAcrossShardCounts: a synthetic mesh model —
// nodes exchanging keyed messages with >= lookahead delay — produces an
// identical message log for 1, 2, 4 and 8 shards when lanes and
// sequences come from node identity.
func TestGroupDeterministicAcrossShardCounts(t *testing.T) {
	const nodes = 8
	const lookahead = Time(10)
	type msg struct {
		At   Time
		From int
		To   int
		Hop  int
	}

	run := func(k int) []msg {
		global := New()
		g := NewGroup(global, k, lookahead)
		var log [nodes][]msg
		seqs := make([]uint64, nodes)
		engines := make([]*Engine, nodes)
		for n := 0; n < nodes; n++ {
			engines[n] = g.Shard(n % k)
		}
		shard := func(n int) int { return n % k }
		var deliver func(a, b any)
		send := func(from, to, hop int) {
			e := engines[from]
			at := e.Now() + lookahead + Time(from)
			// Lane per directed (from, to) pair with a per-sender sequence —
			// the netsim ARR-lane discipline. A lane shared by two senders
			// would let their independent seq counters collide and fall
			// back to partition-dependent insertion order.
			lane := uint64(1)<<32 | uint64(from)<<16 | uint64(to)
			seq := seqs[from]
			seqs[from]++
			m := &msg{At: at, From: from, To: to, Hop: hop}
			if shard(from) == shard(to) {
				engines[to].AtKeyed(at, lane, seq, lane, deliver, m, nil)
			} else if g.InWindow() {
				g.Send(shard(from), shard(to), at, lane, seq, lane, deliver, m, nil)
			} else {
				engines[to].AtKeyed(at, lane, seq, lane, deliver, m, nil)
			}
		}
		deliver = func(a, b any) {
			m := a.(*msg)
			log[m.To] = append(log[m.To], *m)
			if m.Hop < 12 {
				send(m.To, (m.To+3)%nodes, m.Hop+1)
				if m.Hop%3 == 0 {
					send(m.To, (m.To+5)%nodes, m.Hop+1)
				}
			}
		}
		for n := 0; n < nodes; n++ {
			n := n
			engines[n].At(Time(n%3), func() { send(n, (n+1)%nodes, 0) })
		}
		global.Run()
		var all []msg
		for n := 0; n < nodes; n++ {
			all = append(all, log[n]...)
		}
		return all
	}

	base := run(1)
	if len(base) == 0 {
		t.Fatal("no messages exchanged")
	}
	for _, k := range []int{2, 4, 8} {
		if got := run(k); !reflect.DeepEqual(base, got) {
			t.Errorf("k=%d: message log diverged (%d vs %d messages)", k, len(base), len(got))
		}
	}
}
