// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock with nanosecond resolution, a cancellable event queue,
// periodic timers, and seeded random-number helpers.
//
// The engine is single-goroutine by design. All model code runs inside
// event callbacks; determinism follows from the total order on
// (time, insertion sequence).
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
// It is also used for durations.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.500us" or "20ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts a duration in seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }
