package sim

import "math/rand"

// Rand wraps a seeded pseudo-random source with the distributions the
// simulator needs. Every run is reproducible given its seed.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit value.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 { return r.r.ExpFloat64() * mean }

// ExpTime returns an exponentially distributed duration with the given mean.
func (r *Rand) ExpTime(mean Time) Time {
	return Time(r.r.ExpFloat64() * float64(mean))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Shuffle permutes a slice in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }

// Split derives an independent generator, so that subsystems do not perturb
// each other's random streams when one of them draws more values.
func (r *Rand) Split() *Rand { return NewRand(r.r.Int63()) }
