package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000000s"},
		{-1500, "-1.500us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("FromSeconds(0.25) = %v, want 250ms", got)
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []Time
	for _, at := range []Time{30, 10, 20, 10, 5} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	e.Run()
	want := []Time{5, 10, 10, 20, 30}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := New()
	var at Time
	e.At(42, func() { at = e.Now() })
	e.Run()
	if at != 42 {
		t.Errorf("Now() inside event = %v, want 42", at)
	}
	if e.Now() != 42 {
		t.Errorf("Now() after run = %v, want 42", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEventCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	ev.Cancel() // double cancel is a no-op
}

func TestCancelDuringRun(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(20, func() { fired = true })
	e.At(10, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Error("event cancelled by earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=20, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v, want 20", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Errorf("fired %d events total, want 3", len(fired))
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("ran %d events after Stop, want 1", count)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := New()
	fired := false
	e.At(10, func() {
		e.After(-5, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Error("After with negative delay never fired")
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var times []Time
	tk := e.NewTicker(10, func() { times = append(times, e.Now()) })
	e.RunUntil(35)
	tk.Stop()
	e.RunUntil(100)
	if len(times) != 3 {
		t.Fatalf("ticker fired %d times, want 3 (at 10,20,30)", len(times))
	}
	for i, want := range []Time{10, 20, 30} {
		if times[i] != want {
			t.Errorf("tick %d at %v, want %v", i, times[i], want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(10, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.RunUntil(100)
	if count != 2 {
		t.Errorf("ticker fired %d times, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	New().NewTicker(0, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", e.Fired())
	}
}

// Property: for any set of scheduled times, execution order is the sorted
// order of times.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset leaves exactly the others to fire.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(raw []uint16, mask uint64) bool {
		e := New()
		fired := 0
		var events []Handle
		for _, r := range raw {
			events = append(events, e.At(Time(r), func() { fired++ }))
		}
		cancelled := 0
		for i, ev := range events {
			if mask&(1<<(uint(i)%64)) != 0 {
				ev.Cancel()
				cancelled++
			}
		}
		e.Run()
		return fired == len(raw)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- event-slot recycling (the zero-allocation hot path) ---

// TestEventSlotsReused pins the pooling contract: a long run whose
// pending set stays small allocates only a handful of event slots.
func TestEventSlotsReused(t *testing.T) {
	e := New()
	count := 0
	var loop func()
	loop = func() {
		count++
		if count < 10000 {
			e.After(10, loop)
		}
	}
	e.After(10, loop)
	e.Run()
	if count != 10000 {
		t.Fatalf("fired %d events, want 10000", count)
	}
	if e.EventSlots() > 4 {
		t.Errorf("allocated %d event slots for a 1-pending workload, want <= 4", e.EventSlots())
	}
}

// TestStaleHandleCancelIsInert is the generation-counter guarantee: a
// Handle kept across its event's firing must not cancel the unrelated
// event that later reuses the slot.
func TestStaleHandleCancelIsInert(t *testing.T) {
	e := New()
	h1 := e.At(10, func() {})
	e.Run()
	if !h1.Cancelled() {
		t.Fatal("fired event's handle not Cancelled")
	}
	fired := false
	h2 := e.At(20, func() { fired = true }) // reuses h1's slot
	h1.Cancel()                            // stale: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
	if h2.Cancelled() != true { // fired by now
		t.Fatal("fired handle should report Cancelled")
	}
}

// TestZeroHandle: the zero Handle behaves like an already-cancelled event.
func TestZeroHandle(t *testing.T) {
	var h Handle
	if !h.Cancelled() {
		t.Error("zero Handle not Cancelled")
	}
	h.Cancel() // must not panic
	if h.At() != 0 {
		t.Error("zero Handle At != 0")
	}
}

// TestCancelRecyclesSlot: a cancelled event's slot is immediately
// reusable and the cancelling handle stays inert afterwards.
func TestCancelRecyclesSlot(t *testing.T) {
	e := New()
	h := e.At(10, func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	fired := false
	e.At(5, func() { fired = true })
	h.Cancel() // stale again, after the slot was reused
	e.Run()
	if !fired {
		t.Fatal("event scheduled into recycled slot did not fire")
	}
	if e.EventSlots() != 1 {
		t.Errorf("allocated %d slots, want 1 (cancel must recycle)", e.EventSlots())
	}
}

// TestAtCallZeroAlloc holds the hot path's core promise: scheduling and
// firing pooled callback events allocates nothing in steady state.
func TestAtCallZeroAlloc(t *testing.T) {
	e := New()
	cb := Callback(func(a, b any) {})
	// Warm the pool.
	e.AfterCall(1, cb, e, nil)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterCall(1, cb, e, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("AfterCall+Step allocated %.1f per op, want 0", allocs)
	}
}

// TestTickerSteadyStateAllocs: a running ticker must not allocate per
// tick (the rescheduling closure is built once).
func TestTickerSteadyStateAllocs(t *testing.T) {
	e := New()
	tk := e.NewTicker(10, func() {})
	e.RunUntil(100) // warm up
	allocs := testing.AllocsPerRun(500, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("ticker allocated %.1f per tick, want 0", allocs)
	}
	tk.Stop()
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandSplitIndependence(t *testing.T) {
	a := NewRand(7)
	s1 := a.Split()
	// Drawing from s1 must not change a's stream relative to a fresh
	// split at the same point of a's sequence.
	b := NewRand(7)
	_ = b.Split()
	s1.Float64()
	s1.Intn(10)
	if a.Float64() != b.Float64() {
		t.Error("child draws perturbed the parent stream")
	}
}

func TestExpTimeMean(t *testing.T) {
	r := NewRand(1)
	var sum Time
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.ExpTime(Millisecond)
	}
	mean := float64(sum) / float64(n)
	if mean < 0.95e6 || mean > 1.05e6 {
		t.Errorf("ExpTime mean = %.0f ns, want ~1e6", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(rand.Int63())
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}
