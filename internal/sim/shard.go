package sim

import "sync"

// Group couples one global-lane engine with K shard engines under a
// conservative-lookahead window schedule (Chandy–Misra style). The model
// is partitioned so that every cross-shard interaction is a scheduled
// handoff with delay >= the group's lookahead; within one window
// [base, w), w <= base+lookahead, each shard's events are then causally
// closed and the shards execute concurrently. At the window barrier the
// coordinator drains cross-shard mailboxes into the destination heaps,
// runs the model's barrier hook, and executes global-lane events due at
// the barrier time.
//
// Determinism contract: the window-boundary sequence is derived only
// from the union of pending event times (partition-independent), and
// same-timestamp ordering uses the (at, k1, seq) lane keys stamped by
// the scheduling side (see event.k1) — so a fixed-seed run produces
// byte-identical results for any shard count over the same model.
//
// The global lane is the engine the model was built against: existing
// code that schedules timers, monitors, or workload arrivals on it runs
// only at barriers, with every shard quiesced, and may therefore touch
// any shard's state directly.
type Group struct {
	global    *Engine
	shards    []*Engine
	lookahead Time
	stopped   bool

	// mailboxes is a flattened [src*K+dst] matrix of pending cross-shard
	// handoffs. During a window each slice has exactly one writer (the
	// src shard's worker); the coordinator drains and resets them at the
	// barrier, so no locks are needed — the window dispatch/join is the
	// synchronization. Slices keep their capacity across barriers.
	mailboxes [][]mailboxEntry

	// transfer, when set, runs on the coordinator for every drained
	// mailbox entry, letting the model move resource ownership (e.g. a
	// packet's shard-local pool) to the destination shard.
	transfer func(a, b any, dstShard int)

	// onBarrier, when set, runs on the coordinator at every window
	// barrier after mailboxes drain and before global events execute.
	// All shard clocks read the barrier time; all workers are quiesced.
	onBarrier func(now Time)

	inWindow bool // true only while shard workers may be executing

	work    []chan Time
	wg      sync.WaitGroup
	started bool
}

// mailboxEntry is one deferred cross-shard scheduling request, drained
// into the destination shard's heap in (src shard, append seq) order.
// The heap's (at, lane, seq) keys make the insertion order irrelevant to
// execution order; draining in a fixed order keeps the walk cache-warm
// and the transfer hook deterministic.
type mailboxEntry struct {
	at   Time
	lane uint64
	seq  uint64
	ctx  uint64
	cb   Callback
	a, b any
}

// NewGroup wraps an existing engine as the global lane of a sharded
// group with k shard engines. lookahead must be positive: it is the
// minimum cross-shard handoff delay the model guarantees. The global
// engine's Run/RunUntil/Stop delegate to the group from here on.
func NewGroup(global *Engine, k int, lookahead Time) *Group {
	if k < 1 {
		panic("sim: group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: group lookahead must be positive")
	}
	if global.group != nil {
		panic("sim: engine already belongs to a group")
	}
	g := &Group{
		global:    global,
		shards:    make([]*Engine, k),
		lookahead: lookahead,
		mailboxes: make([][]mailboxEntry, k*k),
		work:      make([]chan Time, k),
	}
	for i := range g.shards {
		g.shards[i] = &Engine{now: global.now}
	}
	global.group = g
	return g
}

// Global returns the group's global-lane engine (the one the model was
// constructed with).
func (g *Group) Global() *Engine { return g.global }

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns shard engine i.
func (g *Group) Shard(i int) *Engine { return g.shards[i] }

// Lookahead returns the conservative window size.
func (g *Group) Lookahead() Time { return g.lookahead }

// InWindow reports whether shard workers may currently be executing.
// Model code uses it to choose between the mailbox path (in-window,
// cross-shard) and direct scheduling (barrier/global context, when every
// heap is quiescent). The flag only changes while workers are quiesced,
// so in-window readers always see true.
func (g *Group) InWindow() bool { return g.inWindow }

// SetTransfer installs the cross-shard ownership-transfer hook.
func (g *Group) SetTransfer(fn func(a, b any, dstShard int)) { g.transfer = fn }

// OnBarrier installs the barrier hook.
func (g *Group) OnBarrier(fn func(now Time)) { g.onBarrier = fn }

// Send appends a cross-shard scheduling request to the (src, dst)
// mailbox. It must be called from src's shard context during a window;
// the entry lands in dst's heap at the next barrier. at must be >= the
// end of the current window, which the lookahead guarantees for any
// handoff delayed by at least Lookahead.
func (g *Group) Send(src, dst int, at Time, lane, seq, ctx uint64, cb Callback, a, b any) {
	box := &g.mailboxes[src*len(g.shards)+dst]
	*box = append(*box, mailboxEntry{at: at, lane: lane, seq: seq, ctx: ctx, cb: cb, a: a, b: b})
}

// drainMailboxes moves every pending entry into its destination heap,
// walking (dst, src) in ascending order and each mailbox in append
// order. Entry timestamps are >= the barrier time (the lookahead
// invariant), so insertion never violates a destination clock.
func (g *Group) drainMailboxes() {
	k := len(g.shards)
	for dst := 0; dst < k; dst++ {
		for src := 0; src < k; src++ {
			box := &g.mailboxes[src*k+dst]
			if len(*box) == 0 {
				continue
			}
			for i := range *box {
				e := &(*box)[i]
				if g.transfer != nil {
					g.transfer(e.a, e.b, dst)
				}
				g.shards[dst].AtKeyed(e.at, e.lane, e.seq, e.ctx, e.cb, e.a, e.b)
				*e = mailboxEntry{}
			}
			*box = (*box)[:0]
		}
	}
}

// startWorkers launches one goroutine per shard for the duration of a
// run. Workers block on their channel between windows; a close drains
// them at run end, so an idle Group holds no goroutines.
func (g *Group) startWorkers() {
	if g.started || len(g.shards) == 1 {
		return
	}
	g.started = true
	for i := range g.shards {
		g.work[i] = make(chan Time, 1)
		sh := g.shards[i]
		ch := g.work[i]
		go func() {
			for w := range ch {
				sh.runWindow(w)
				g.wg.Done()
			}
		}()
	}
}

func (g *Group) stopWorkers() {
	if !g.started {
		return
	}
	g.started = false
	for i := range g.work {
		close(g.work[i])
		g.work[i] = nil
	}
}

// runWindows executes one window [*, w) across the shards. Shards with
// no due events are skipped (their clocks advance at the barrier). With
// one busy shard — or a single-shard group — the window runs inline on
// the coordinator, avoiding the channel round-trip.
func (g *Group) runWindows(w Time) {
	busy := 0
	var only *Engine
	for _, sh := range g.shards {
		if sh.nextAt() < w {
			busy++
			only = sh
		}
	}
	if busy == 0 {
		return
	}
	if busy == 1 || len(g.shards) == 1 {
		g.inWindow = true
		only.runWindow(w)
		g.inWindow = false
		return
	}
	g.inWindow = true
	for i, sh := range g.shards {
		if sh.nextAt() < w {
			g.wg.Add(1)
			g.work[i] <- w
		}
	}
	g.wg.Wait()
	g.inWindow = false
}

// advance fast-forwards every clock (shards and global) that is behind t.
func (g *Group) advance(t Time) {
	for _, sh := range g.shards {
		if sh.now < t {
			sh.now = t
		}
	}
	if g.global.now < t {
		g.global.now = t
	}
}

// Run executes the group until every heap drains or Stop is called.
func (g *Group) Run() { g.runUntil(maxTime, true) }

// RunUntil executes every event with timestamp <= end across all shards
// and the global lane, then sets every clock to end.
func (g *Group) RunUntil(end Time) { g.runUntil(end+1, false) }

// Stop makes the group's run return after the current barrier completes.
func (g *Group) Stop() { g.stopped = true }

// runUntil is the coordinator loop. bound is exclusive: events at
// timestamps < bound execute. With drain set, bound is ignored for the
// final clock (Run semantics); otherwise clocks finish at bound-1.
func (g *Group) runUntil(bound Time, drain bool) {
	g.stopped = false
	g.global.stopped = false
	g.startWorkers()
	defer g.stopWorkers()
	for !g.stopped {
		next := g.global.nextAt()
		for _, sh := range g.shards {
			if t := sh.nextAt(); t < next {
				next = t
			}
		}
		if next >= bound {
			break
		}
		base := g.global.now
		if next > base {
			base = next // jump over idle gaps in one window
		}
		w := base + g.lookahead
		if w > bound {
			w = bound
		}
		if gt := g.global.nextAt(); gt < w {
			w = gt // truncate so global events fire exactly on time
		}
		if w > base {
			g.runWindows(w)
		}
		g.advance(w)
		g.drainMailboxes()
		if g.onBarrier != nil {
			g.onBarrier(w)
		}
		for !g.stopped && len(g.global.events) > 0 &&
			g.global.events[0].at <= w && g.global.events[0].at < bound {
			g.global.Step()
		}
	}
	if !drain && !g.stopped {
		g.advance(bound - 1)
		for _, sh := range g.shards {
			if sh.now >= bound {
				sh.now = bound - 1
			}
		}
		if g.global.now >= bound {
			g.global.now = bound - 1
		}
	}
}

// Fired returns the total events executed across the global lane and all
// shards.
func (g *Group) Fired() uint64 {
	n := g.global.fired
	for _, sh := range g.shards {
		n += sh.fired
	}
	return n
}

// Pending returns the total scheduled events across all heaps.
func (g *Group) Pending() int {
	n := g.global.Pending()
	for _, sh := range g.shards {
		n += sh.Pending()
	}
	return n
}

// MaxPending returns the sum of per-engine queue high-water marks — an
// upper bound on the fabric-wide simultaneous backlog (the per-shard
// peaks need not coincide in time).
func (g *Group) MaxPending() int {
	n := g.global.maxPending
	for _, sh := range g.shards {
		n += sh.maxPending
	}
	return n
}

// EventSlots returns the total event structs allocated across all
// engines (the pooled-slot high-water mark).
func (g *Group) EventSlots() uint64 {
	n := g.global.allocated
	for _, sh := range g.shards {
		n += sh.allocated
	}
	return n
}
