package qos

import (
	"math"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// runClasses drives nPerClass flows of each class through one bottleneck
// with the given weights and returns the per-class goodput in Gb/s over
// the second half of the run.
func runClasses(t *testing.T, weights []float64, nPerClass int) []float64 {
	t.Helper()
	engine := sim.New()
	star := topology.BuildStar(engine, 1, len(weights)*nPerClass, netsim.Gbps(40))
	classOf := make(map[netsim.FlowID]int)
	Attach(star.Net, star.Switch, star.Bottleneck, Options{
		Weights:  weights,
		Classify: func(f netsim.FlowID) int { return classOf[f] },
	})
	var flows []*netsim.Flow
	for i, src := range star.Sources {
		f := star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		})
		classOf[f.ID] = i % len(weights)
		flows = append(flows, f)
	}
	engine.RunUntil(10 * sim.Millisecond)
	mid := make([]int64, len(flows))
	for i, f := range flows {
		mid[i] = f.DeliveredBytes()
	}
	engine.RunUntil(20 * sim.Millisecond)
	shares := make([]float64, len(weights))
	for i, f := range flows {
		shares[classOf[f.ID]] += float64(f.DeliveredBytes()-mid[i]) * 8 / 0.010 / 1e9
	}
	return shares
}

func TestEqualWeightsSplitEvenly(t *testing.T) {
	shares := runClasses(t, []float64{1, 1}, 3)
	if math.Abs(shares[0]-shares[1]) > 2 {
		t.Errorf("equal weights split %v", shares)
	}
	if total := shares[0] + shares[1]; total < 36 {
		t.Errorf("total %v Gb/s, link underutilized", total)
	}
}

func TestWeightedSplitTwoToOne(t *testing.T) {
	shares := runClasses(t, []float64{1, 0.5}, 3)
	ratio := shares[0] / shares[1]
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("class split %v, ratio %.2f, want ~2", shares, ratio)
	}
}

func TestThreeClasses(t *testing.T) {
	shares := runClasses(t, []float64{1, 0.5, 0.25}, 2)
	if !(shares[0] > shares[1] && shares[1] > shares[2]) {
		t.Errorf("class ordering broken: %v", shares)
	}
	// 4:2:1 split of ~40G: expect roughly 22/11/5.7.
	if math.Abs(shares[0]-4*shares[2])/shares[0] > 0.35 {
		t.Errorf("4:1 spread off: %v", shares)
	}
}

func TestIntraClassFairness(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 4, netsim.Gbps(40))
	classOf := map[netsim.FlowID]int{}
	Attach(star.Net, star.Switch, star.Bottleneck, Options{
		Weights:  []float64{1, 0.5},
		Classify: func(f netsim.FlowID) int { return classOf[f] },
	})
	var flows []*netsim.Flow
	for i, src := range star.Sources {
		f := star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		})
		classOf[f.ID] = i / 2 // flows 0,1 class 0; flows 2,3 class 1
		flows = append(flows, f)
	}
	engine.RunUntil(20 * sim.Millisecond)
	// Within each class, the two flows must match.
	r0 := float64(flows[0].DeliveredBytes()) / float64(flows[1].DeliveredBytes())
	r1 := float64(flows[2].DeliveredBytes()) / float64(flows[3].DeliveredBytes())
	if r0 < 0.9 || r0 > 1.1 || r1 < 0.9 || r1 > 1.1 {
		t.Errorf("intra-class imbalance: %v %v", r0, r1)
	}
}

func TestQueueStaysControlled(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 6, netsim.Gbps(40))
	classOf := map[netsim.FlowID]int{}
	cp := Attach(star.Net, star.Switch, star.Bottleneck, Options{
		Weights:  []float64{1, 0.25},
		Classify: func(f netsim.FlowID) int { return classOf[f] },
	})
	for i, src := range star.Sources {
		f := star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		})
		classOf[f.ID] = i % 2
	}
	engine.RunUntil(20 * sim.Millisecond)
	q := star.Bottleneck.DataQueueBytes()
	if q < 80*netsim.KB || q > 260*netsim.KB {
		t.Errorf("queue %d bytes, want near Qref", q)
	}
	if cp.BaseRateMbps() <= 0 {
		t.Error("base rate not computed")
	}
	cp.Stop()
}

func TestDefaultsSingleClass(t *testing.T) {
	// With no weights/classifier, qos.CP degenerates to plain RoCC.
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	Attach(star.Net, star.Switch, star.Bottleneck, Options{})
	var flows []*netsim.Flow
	for _, src := range star.Sources {
		flows = append(flows, star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		}))
	}
	engine.RunUntil(15 * sim.Millisecond)
	ratio := float64(flows[0].DeliveredBytes()) / float64(flows[1].DeliveredBytes())
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("single-class split %v", ratio)
	}
}
