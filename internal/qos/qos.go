// Package qos implements the extension the paper names as future work
// (§8): congestion control "with emphasis on QoS, where class-level
// fairness is essential".
//
// The design stays within RoCC's architecture: the congestion point
// still runs one PI controller on the shared egress queue, computing a
// base fair rate F. Each traffic class c carries a weight w_c, and the
// CNP sent to a class-c flow carries w_c·F instead of F. At equilibrium
//
//	Σ_c N_c · w_c · F = C    ⇒    class c's share = N_c·w_c / Σ N_i·w_i
//
// so classes divide the link in proportion to their aggregate weight
// while flows within a class stay max-min fair — class-level fairness
// without touching the dataplane scheduler.
package qos

import (
	"rocc/internal/core"
	"rocc/internal/flowtable"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Classifier maps a flow to its traffic class index.
type Classifier func(netsim.FlowID) int

// Options configures a weighted congestion point.
type Options struct {
	// Core holds the Alg. 1 parameters for the base controller. The
	// zero value selects defaults for the port's bandwidth.
	Core core.CPConfig

	// T is the update interval (40 µs default).
	T sim.Time

	// Weights are the per-class rate multipliers; the highest-weight
	// class should keep w·Fmax within the RP's acceptance bounds, so
	// weights are conventionally normalized with max(w) == 1.
	Weights []float64

	// Classify maps flows to classes. Flows mapping outside
	// [0, len(Weights)) use weight 1.
	Classify Classifier

	// MinSignalBytes mirrors roccnet.CPOptions.MinSignalBytes.
	MinSignalBytes int
}

// CP is a class-aware RoCC congestion point on one egress port.
type CP struct {
	net   *netsim.Network
	sw    *netsim.Switch
	port  *netsim.Port
	core  *core.CP
	table *flowtable.QueueTable
	opts  Options
	tick  *sim.Ticker

	CNPsSent uint64
}

// Attach installs a weighted congestion point on a switch egress port.
func Attach(net *netsim.Network, sw *netsim.Switch, port *netsim.Port, opts Options) *CP {
	if opts.Core.DeltaFMbps == 0 {
		opts.Core = core.CPConfigForGbps(port.LinkRate.Gbps())
	}
	if opts.T == 0 {
		opts.T = 40 * sim.Microsecond
	}
	if len(opts.Weights) == 0 {
		opts.Weights = []float64{1}
	}
	if opts.Classify == nil {
		opts.Classify = func(netsim.FlowID) int { return 0 }
	}
	if opts.MinSignalBytes == 0 {
		opts.MinSignalBytes = 2 * (netsim.MTUPayload + netsim.HeaderBytes)
	}
	cp := &CP{
		net:   net,
		sw:    sw,
		port:  port,
		core:  core.NewCP(opts.Core),
		table: flowtable.NewQueueTable(),
		opts:  opts,
	}
	port.CC = cp
	cp.tick = port.Engine().NewTicker(opts.T, cp.update)
	return cp
}

// Stop cancels the update timer.
func (cp *CP) Stop() { cp.tick.Stop() }

// BaseRateMbps returns the unweighted fair rate F.
func (cp *CP) BaseRateMbps() float64 { return cp.core.FairRateMbps() }

// OnEnqueue implements netsim.PortCC.
func (cp *CP) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	cp.table.OnEnqueue(now, flowtable.FlowID(pkt.Flow), pkt.Size)
}

// OnDequeue implements netsim.PortCC.
func (cp *CP) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	cp.table.OnDequeue(now, flowtable.FlowID(pkt.Flow), pkt.Size)
}

func (cp *CP) weight(f netsim.FlowID) float64 {
	c := cp.opts.Classify(f)
	if c < 0 || c >= len(cp.opts.Weights) {
		return 1
	}
	return cp.opts.Weights[c]
}

func (cp *CP) update() {
	now := cp.port.Engine().Now()
	qcur := cp.port.DataQueueBytes()
	baseUnits := cp.core.Update(qcur)
	if qcur < cp.opts.MinSignalBytes {
		return
	}
	cpid := netsim.CPID{Node: cp.sw.ID(), Port: cp.port.Index}
	for _, fid := range cp.table.Flows(now, nil) {
		f := cp.net.Flow(netsim.FlowID(fid))
		if f == nil {
			continue
		}
		units := int(float64(baseUnits)*cp.weight(f.ID) + 0.5)
		if units < 1 {
			units = 1
		}
		cnp := cp.net.AcquirePacketFor(cp.sw)
		cnp.Flow = f.ID
		cnp.Src = cp.sw.ID()
		cnp.Dst = f.Src().ID()
		cnp.Kind = netsim.KindCNP
		cnp.Cls = netsim.ClassCtrl
		cnp.Size = netsim.CNPBytes
		cnp.SendTS = now
		info := cnp.EnsureCNP()
		info.CP = cpid
		info.RateUnits = units
		cp.sw.Inject(cnp)
		cp.CNPsSent++
	}
}
