package collective

import "testing"

// checkValid asserts every transfer stays inside the rank space and
// never sends to itself.
func checkValid(t *testing.T, cfg Config, steps []Step) {
	t.Helper()
	ranks := cfg.Ranks()
	for si, step := range steps {
		if len(step) == 0 {
			t.Fatalf("%s: step %d is empty", cfg.Pattern, si)
		}
		for _, tr := range step {
			if tr.From < 0 || tr.From >= ranks || tr.To < 0 || tr.To >= ranks {
				t.Fatalf("%s step %d: transfer %+v outside %d ranks", cfg.Pattern, si, tr, ranks)
			}
			if tr.From == tr.To {
				t.Fatalf("%s step %d: self-transfer %+v", cfg.Pattern, si, tr)
			}
			if tr.Bytes <= 0 {
				t.Fatalf("%s step %d: empty transfer %+v", cfg.Pattern, si, tr)
			}
		}
	}
}

func TestStepsValidAcrossPatterns(t *testing.T) {
	for _, p := range AllPatterns() {
		for _, n := range []int{2, 3, 4, 5, 8, 16} {
			for _, chunks := range []int{1, 3} {
				cfg := Config{Pattern: p, Participants: n, MessageBytes: 1 << 20, Chunks: chunks}
				checkValid(t, cfg, Steps(cfg))
			}
		}
	}
}

func TestRingStepCount(t *testing.T) {
	cfg := Config{Pattern: Ring, Participants: 4, MessageBytes: 8192, Chunks: 2}
	steps := Steps(cfg)
	// 2 chunk rounds x 2(N-1) steps, N transfers each.
	if len(steps) != 12 {
		t.Fatalf("ring steps = %d, want 12", len(steps))
	}
	for i, s := range steps {
		if len(s) != 4 {
			t.Fatalf("ring step %d has %d transfers, want 4", i, len(s))
		}
		for _, tr := range s {
			if tr.To != (tr.From+1)%4 {
				t.Fatalf("ring step %d: %+v not a successor send", i, tr)
			}
			if tr.Bytes != 1024 { // 8192/(4 ranks * 2 chunks)
				t.Fatalf("ring segment = %d, want 1024", tr.Bytes)
			}
		}
	}
	if got := TotalBytes(steps); got != 12*4*1024 {
		t.Fatalf("ring total bytes = %d, want %d", got, 12*4*1024)
	}
}

func TestTreeStructure(t *testing.T) {
	// N=8: reduce sweeps of 4, 2, 1 senders, then the mirror broadcast.
	cfg := Config{Pattern: Tree, Participants: 8, MessageBytes: 1 << 20}
	steps := Steps(cfg)
	wantSizes := []int{4, 2, 1, 1, 2, 4}
	if len(steps) != len(wantSizes) {
		t.Fatalf("tree steps = %d, want %d", len(steps), len(wantSizes))
	}
	for i, s := range steps {
		if len(s) != wantSizes[i] {
			t.Fatalf("tree step %d has %d transfers, want %d", i, len(s), wantSizes[i])
		}
	}
	// Reduce: every non-root rank sends exactly once across the sweep.
	sent := make(map[int]int)
	for _, s := range steps[:3] {
		for _, tr := range s {
			sent[tr.From]++
		}
	}
	for r := 1; r < 8; r++ {
		if sent[r] != 1 {
			t.Fatalf("tree reduce: rank %d sent %d times, want 1", r, sent[r])
		}
	}
	if sent[0] != 0 {
		t.Fatal("tree reduce: root sent")
	}
	// Broadcast step i mirrors reduce step (2 - i) with flipped direction.
	for i := 0; i < 3; i++ {
		red, bc := steps[2-i], steps[3+i]
		for j := range red {
			if bc[j].From != red[j].To || bc[j].To != red[j].From {
				t.Fatalf("broadcast step %d not the mirror of reduce: %+v vs %+v", i, bc[j], red[j])
			}
		}
	}
}

func TestTreeNonPowerOfTwo(t *testing.T) {
	cfg := Config{Pattern: Tree, Participants: 5, MessageBytes: 1 << 20}
	steps := Steps(cfg)
	checkValid(t, cfg, steps)
	// Every non-root rank must send exactly once in the reduce half.
	sent := make(map[int]bool)
	for _, s := range steps[:len(steps)/2] {
		for _, tr := range s {
			if sent[tr.From] {
				t.Fatalf("rank %d sent twice in reduce", tr.From)
			}
			sent[tr.From] = true
		}
	}
	for r := 1; r < 5; r++ {
		if !sent[r] {
			t.Fatalf("rank %d never reduced", r)
		}
	}
}

func TestAllToAllCoverage(t *testing.T) {
	cfg := Config{Pattern: AllToAll, Participants: 4, MessageBytes: 3 << 10}
	steps := Steps(cfg)
	if len(steps) != 1 {
		t.Fatalf("alltoall steps = %d, want 1", len(steps))
	}
	// Every ordered pair appears exactly once, each share M/(N-1).
	seen := make(map[[2]int]bool)
	for _, tr := range steps[0] {
		key := [2]int{tr.From, tr.To}
		if seen[key] {
			t.Fatalf("pair %v appears twice", key)
		}
		seen[key] = true
		if tr.Bytes != 1024 {
			t.Fatalf("alltoall share = %d, want 1024", tr.Bytes)
		}
	}
	if len(seen) != 12 {
		t.Fatalf("alltoall covers %d pairs, want 12", len(seen))
	}
}

func TestPSIncastShape(t *testing.T) {
	cfg := Config{Pattern: PS, Participants: 3, MessageBytes: 1 << 20, Chunks: 2}
	if cfg.Ranks() != 4 {
		t.Fatalf("ps ranks = %d, want 4 (3 workers + server)", cfg.Ranks())
	}
	steps := Steps(cfg)
	if len(steps) != 4 { // 2 chunks x (push, pull)
		t.Fatalf("ps steps = %d, want 4", len(steps))
	}
	for i, s := range steps {
		for _, tr := range s {
			if i%2 == 0 && tr.To != 3 {
				t.Fatalf("push step %d: %+v not toward server", i, tr)
			}
			if i%2 == 1 && tr.From != 3 {
				t.Fatalf("pull step %d: %+v not from server", i, tr)
			}
		}
	}
}

func TestStepsDeterministic(t *testing.T) {
	for _, p := range AllPatterns() {
		cfg := Config{Pattern: p, Participants: 6, MessageBytes: 1 << 20, Chunks: 2}
		a, b := Steps(cfg), Steps(cfg)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic step count", p)
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%s: step %d transfer %d differs", p, i, j)
				}
			}
		}
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range AllPatterns() {
		got, err := ParsePattern(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePattern(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePattern("butterfly"); err == nil {
		t.Fatal("ParsePattern accepted an unknown pattern")
	}
}
