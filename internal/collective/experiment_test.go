package collective

import (
	"reflect"
	"testing"

	"rocc/internal/experiments"
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func smallCfg() ExpConfig {
	return ExpConfig{
		Collective: Config{
			Pattern:      Ring,
			Participants: 4,
			MessageBytes: 128 << 10,
			Iterations:   2,
		},
		Protocol: experiments.ProtoRoCC,
		Seed:     7,
	}
}

func TestRunExpCompletesAllModes(t *testing.T) {
	for _, mode := range netsim.AllOperatingModes() {
		cfg := smallCfg()
		cfg.Mode = mode
		res := RunExp(cfg)
		if res.Stalled() {
			t.Fatalf("%v: collective stalled at iter %d step %d",
				mode, res.Run.PendingIter, res.Run.PendingStep)
		}
		if res.Run.Completed != 2 {
			t.Fatalf("%v: completed %d iterations, want 2", mode, res.Run.Completed)
		}
		if res.IterP50 <= 0 || res.IterP99 < res.IterP50 {
			t.Fatalf("%v: bad percentiles p50=%v p99=%v", mode, res.IterP50, res.IterP99)
		}
		if mode.Lossless() && res.Drops != 0 {
			t.Fatalf("%v: %d drops on a lossless fabric", mode, res.Drops)
		}
	}
}

// A sweep must be byte-identical at any worker count: each cell owns a
// private engine, and the harness orders results by index.
func TestRunGridWorkerCountInvariance(t *testing.T) {
	base := smallCfg()
	base.Collective.Iterations = 1
	cells := Cells(base)[:6] // RoCC and DCQCN across the three modes
	values := func(rs []harness.Result[ExpResult]) []ExpResult {
		// Elapsed is wall-clock and legitimately varies; the simulated
		// outcomes must not.
		out := make([]ExpResult, len(rs))
		for i, r := range rs {
			if r.Err != nil {
				t.Fatalf("cell %d: %v", i, r.Err)
			}
			out[i] = r.Value
		}
		return out
	}
	serial := values(RunGrid(cells, 1))
	fanned := values(RunGrid(cells, 4))
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatal("grid results differ between 1 and 4 workers")
	}
}

// The lossy mode must actually drop under incast pressure — and the
// collective must still complete over go-back-N.
func TestCCOnlyLossyDropsAndRecovers(t *testing.T) {
	cfg := ExpConfig{
		Collective: Config{
			Pattern:      PS,
			Participants: 12,
			MessageBytes: 2 << 20,
			Iterations:   1,
		},
		Protocol: experiments.ProtoDCQCN,
		Mode:     netsim.ModeCCOnlyLossy,
		Seed:     3,
	}
	res := RunExp(cfg)
	if res.Stalled() {
		t.Fatalf("lossy incast stalled at iter %d step %d",
			res.Run.PendingIter, res.Run.PendingStep)
	}
	if res.Drops == 0 {
		t.Fatal("12-wide incast into a 3x-threshold buffer dropped nothing")
	}
	if res.PFCFrames != 0 {
		t.Fatalf("lossy mode emitted %d PFC frames", res.PFCFrames)
	}
	if res.RetxBytes == 0 {
		t.Fatal("drops without retransmissions")
	}
}

// A link kill mid-collective: the hybrid fabric must finish anyway
// (reliable transfers reroute and retransmit).
func TestCollectiveSurvivesLinkKill(t *testing.T) {
	cfg := smallCfg()
	cfg.Collective.MessageBytes = 512 << 10
	cfg.Collective.Iterations = 4
	cfg.Kill = KillLink
	cfg.FailAt = 200 * sim.Microsecond
	cfg.RestoreAt = 2 * sim.Millisecond
	res := RunExp(cfg)
	if res.Stalled() {
		t.Fatalf("collective did not survive the link kill: stalled at iter %d step %d",
			res.Run.PendingIter, res.Run.PendingStep)
	}
	if res.Run.Completed != 4 {
		t.Fatalf("completed %d iterations, want 4", res.Run.Completed)
	}
}

func TestCellsCoverGrid(t *testing.T) {
	cells := Cells(smallCfg())
	if len(cells) != len(experiments.AllProtocols())*3 {
		t.Fatalf("cells = %d, want %d", len(cells), len(experiments.AllProtocols())*3)
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		seen[string(c.Protocol)+"/"+c.Mode.String()] = true
	}
	if len(seen) != len(cells) {
		t.Fatal("duplicate protocol/mode cells")
	}
}
