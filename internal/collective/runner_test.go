package collective

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// The barrier invariant: no flow of step N+1 starts before the last
// flow of step N has delivered its final byte.
func TestRunnerBarrierSemantics(t *testing.T) {
	engine := sim.New()
	hostRate := netsim.Gbps(40)
	ft := topology.BuildFatTree(engine, 1, topology.FatTreeConfig{
		Cores: 2, Edges: 2, HostsPerEdge: 2, LinksPerPair: 1,
		HostRate: hostRate, CoreRate: hostRate,
	})
	net := ft.Net
	hosts := []*netsim.Host{ft.Hosts[0][0], ft.Hosts[1][0], ft.Hosts[0][1], ft.Hosts[1][1]}

	cfg := Config{Pattern: Ring, Participants: 4, MessageBytes: 256 << 10, Iterations: 2}
	stepSize := 4 // ring: one transfer per rank per step

	type ev struct {
		id netsim.FlowID
		at sim.Time
	}
	var starts, dones []ev
	// Install before Begin so the runner's chained hook runs first and
	// this one still sees every completion.
	net.OnFlowDone = func(f *netsim.Flow) {
		dones = append(dones, ev{f.ID, engine.Now()})
	}

	r := &Runner{
		Cfg: cfg,
		Start: func(tr Transfer) *netsim.Flow {
			f := net.StartFlow(hosts[tr.From], hosts[tr.To], netsim.FlowConfig{Size: tr.Bytes})
			starts = append(starts, ev{f.ID, engine.Now()})
			return f
		},
	}
	r.Begin(net)
	engine.RunUntil(sim.Second)

	res := r.Result()
	if res.Stalled {
		t.Fatalf("collective stalled at iter %d step %d", res.PendingIter, res.PendingStep)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d iterations, want 2", res.Completed)
	}
	wantSteps := 2 * 2 * (4 - 1) // iterations x 2(N-1)
	if len(res.Steps) != wantSteps {
		t.Fatalf("recorded %d steps, want %d", len(res.Steps), wantSteps)
	}
	if len(starts) != wantSteps*stepSize {
		t.Fatalf("started %d flows, want %d", len(starts), wantSteps*stepSize)
	}

	doneAt := make(map[netsim.FlowID]sim.Time)
	for _, d := range dones {
		doneAt[d.id] = d.at
	}
	// Start calls arrive in step order; group them and compare each
	// group's start instant with the previous group's last completion.
	for g := 1; g < wantSteps; g++ {
		var prevLastDone sim.Time
		for _, s := range starts[(g-1)*stepSize : g*stepSize] {
			at, ok := doneAt[s.id]
			if !ok {
				t.Fatalf("flow %d never completed", s.id)
			}
			if at > prevLastDone {
				prevLastDone = at
			}
		}
		for _, s := range starts[g*stepSize : (g+1)*stepSize] {
			if s.at < prevLastDone {
				t.Fatalf("step %d flow started at %v before step %d finished at %v",
					g, s.at, g-1, prevLastDone)
			}
		}
	}

	// Per-step durations must sum to the iteration durations.
	var sum sim.Time
	for _, s := range res.Steps {
		sum += s.Duration
	}
	var iters sim.Time
	for _, d := range res.IterDurations {
		iters += d
	}
	if sum != iters {
		t.Fatalf("step durations sum %v != iteration durations sum %v", sum, iters)
	}
}

// A deadline that lands mid-collective yields a stalled result that
// locates the pending step.
func TestRunnerStalledReporting(t *testing.T) {
	engine := sim.New()
	hostRate := netsim.Gbps(40)
	ft := topology.BuildFatTree(engine, 1, topology.FatTreeConfig{
		Cores: 2, Edges: 2, HostsPerEdge: 2, LinksPerPair: 1,
		HostRate: hostRate, CoreRate: hostRate,
	})
	net := ft.Net
	hosts := []*netsim.Host{ft.Hosts[0][0], ft.Hosts[1][0]}

	r := &Runner{
		Cfg: Config{Pattern: Ring, Participants: 2, MessageBytes: 1 << 30, Iterations: 1},
		Start: func(tr Transfer) *netsim.Flow {
			return net.StartFlow(hosts[tr.From], hosts[tr.To], netsim.FlowConfig{Size: tr.Bytes})
		},
	}
	r.Begin(net)
	engine.RunUntil(10 * sim.Microsecond) // far too short for 1 GiB segments

	res := r.Result()
	if !res.Stalled {
		t.Fatal("run not reported stalled")
	}
	if res.Completed != 0 || res.PendingIter != 0 || res.PendingStep != 0 {
		t.Fatalf("stall located at iter %d step %d (completed %d), want 0/0/0",
			res.PendingIter, res.PendingStep, res.Completed)
	}
}
