package collective

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// StepRecord is the timing of one completed step: when it started, how
// long until its last flow delivered, and the straggler spread (last
// completion minus first — how much the slowest flow held the barrier).
type StepRecord struct {
	Iter      int
	Step      int
	Flows     int
	Start     sim.Time
	Duration  sim.Time
	Straggler sim.Time
}

// Result is the outcome of a collective run after the engine stops.
type Result struct {
	Config Config

	// Completed counts fully finished iterations; Stalled is set when
	// the run ended mid-iteration (the deadline hit with flows pending —
	// the signature of a deadlocked or collapsed fabric).
	Completed int
	Stalled   bool

	// PendingStep / PendingIter locate the stall (valid when Stalled).
	PendingIter int
	PendingStep int

	// IterDurations are per-iteration collective completion times, in
	// iteration order.
	IterDurations []sim.Time

	// Steps are the per-step records, in completion order.
	Steps []StepRecord

	// Elapsed is first-flow-start to last-iteration-complete (end-to-end
	// collective time across all iterations); zero if nothing completed.
	Elapsed sim.Time
}

// Runner executes a collective on a live network with barrier
// semantics: it launches every flow of a step together and launches
// step N+1 only when the last flow of step N has delivered its final
// byte. Flow starting is delegated to the caller (the experiment layer
// owns protocol wiring and reliability choices); the runner owns the
// dependency structure and the clock.
type Runner struct {
	Cfg Config

	// Start launches the flow for one transfer and returns it. Called
	// once per transfer per iteration, in step order and transfer order.
	Start func(t Transfer) *netsim.Flow

	// Reg, when set, receives the timing histograms: collective.iter_ns,
	// collective.step_ns, collective.straggler_ns.
	Reg *telemetry.Registry

	engine *sim.Engine
	steps  []Step

	iter      int
	step      int
	pending   map[netsim.FlowID]struct{}
	stepStart sim.Time
	iterStart sim.Time
	runStart  sim.Time
	firstDone sim.Time
	lastDone  sim.Time
	done      bool

	result Result
}

// Begin installs the runner on the network and launches the first step
// at the engine's current time. The caller then drives the engine
// (RunUntil) and reads Result when it returns. The network's OnFlowDone
// hook is chained, not replaced.
func (r *Runner) Begin(net *netsim.Network) {
	r.Cfg = r.Cfg.fill()
	if r.Start == nil {
		panic("collective: Runner.Start is nil")
	}
	r.engine = net.Engine
	r.steps = Steps(r.Cfg)
	r.pending = make(map[netsim.FlowID]struct{})
	r.result = Result{Config: r.Cfg}
	r.runStart = r.engine.Now()

	prev := net.OnFlowDone
	net.OnFlowDone = func(f *netsim.Flow) {
		r.onFlowDone(f)
		if prev != nil {
			prev(f)
		}
	}

	r.iterStart = r.engine.Now()
	r.launchStep()
}

// launchStep starts every transfer of the current step.
func (r *Runner) launchStep() {
	now := r.engine.Now()
	r.stepStart = now
	r.firstDone = -1
	step := r.steps[r.step]
	for _, t := range step {
		f := r.Start(t)
		if f == nil || f.Done() {
			// A transfer the starter could not launch (or that completed
			// synchronously) does not hold the barrier.
			continue
		}
		r.pending[f.ID] = struct{}{}
	}
	if len(r.pending) == 0 {
		// Degenerate step (all transfers refused): advance rather than
		// stall the whole collective.
		r.completeStep()
	}
}

func (r *Runner) onFlowDone(f *netsim.Flow) {
	if r.done {
		return
	}
	if _, ok := r.pending[f.ID]; !ok {
		return
	}
	delete(r.pending, f.ID)
	now := r.engine.Now()
	if r.firstDone < 0 {
		r.firstDone = now
	}
	r.lastDone = now
	if len(r.pending) == 0 {
		r.completeStep()
	}
}

func (r *Runner) completeStep() {
	now := r.engine.Now()
	straggler := sim.Time(0)
	if r.firstDone >= 0 {
		straggler = now - r.firstDone
	}
	rec := StepRecord{
		Iter:      r.iter,
		Step:      r.step,
		Flows:     len(r.steps[r.step]),
		Start:     r.stepStart,
		Duration:  now - r.stepStart,
		Straggler: straggler,
	}
	r.result.Steps = append(r.result.Steps, rec)
	r.observe("collective.step_ns", int64(rec.Duration))
	r.observe("collective.straggler_ns", int64(rec.Straggler))

	r.step++
	if r.step >= len(r.steps) {
		iterDur := now - r.iterStart
		r.result.IterDurations = append(r.result.IterDurations, iterDur)
		r.result.Completed++
		r.observe("collective.iter_ns", int64(iterDur))
		r.step = 0
		r.iter++
		if r.iter >= r.Cfg.Iterations {
			r.done = true
			r.result.Elapsed = now - r.runStart
			return
		}
		r.iterStart = now
	}
	// Launch from a fresh event, not from inside a packet-arrival
	// callback: flow starts happen after the completing packet's
	// processing fully unwinds.
	r.engine.After(0, r.launchStep)
}

func (r *Runner) observe(name string, v int64) {
	if r.Reg != nil {
		r.Reg.Histogram(name).Observe(v)
	}
}

// Done reports whether every iteration completed.
func (r *Runner) Done() bool { return r.done }

// Result finalizes and returns the run outcome. Call after the engine
// has stopped; if iterations remain it marks the run stalled and points
// at the pending step.
func (r *Runner) Result() Result {
	res := r.result
	if !r.done {
		res.Stalled = true
		res.PendingIter = r.iter
		res.PendingStep = r.step
		res.Elapsed = r.engine.Now() - r.runStart
	}
	return res
}
