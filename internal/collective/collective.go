// Package collective generates dependency-structured collective
// communication workloads — the traffic of distributed training over
// RoCEv2 — on top of the packet simulator: ring and tree allreduce,
// all-to-all, and parameter-server incast. Unlike the open-loop Poisson
// workloads of internal/workload, a collective is a DAG of transfers
// with barrier semantics: step N+1's flows start only when every flow of
// step N has delivered its last byte. The metric is therefore the
// completion time of the collective (per iteration and end to end), not
// per-flow FCT — one straggling flow delays every rank.
package collective

import "fmt"

// Pattern names a collective communication pattern.
type Pattern string

// The patterns the generator produces.
const (
	// Ring is chunked ring allreduce: 2(N-1) steps per chunk round, each
	// step every rank sending its segment to the next rank. Bandwidth-
	// optimal; latency scales with N.
	Ring Pattern = "ring"
	// Tree is binomial-tree allreduce: a reduce sweep up the tree then a
	// broadcast sweep down. log2(N) depth; the root's links carry the
	// full message each sweep.
	Tree Pattern = "tree"
	// AllToAll is the transpose: every rank sends an equal share to
	// every other rank, in chunk rounds.
	AllToAll Pattern = "alltoall"
	// PS is parameter-server incast: every worker pushes its gradient to
	// one server rank, then pulls the updated model back — the classic
	// N-to-1 incast followed by 1-to-N fanout.
	PS Pattern = "ps"
)

// AllPatterns returns the patterns in presentation order.
func AllPatterns() []Pattern { return []Pattern{Ring, Tree, AllToAll, PS} }

// ParsePattern resolves a pattern name.
func ParsePattern(s string) (Pattern, error) {
	switch Pattern(s) {
	case Ring, Tree, AllToAll, PS:
		return Pattern(s), nil
	}
	return "", fmt.Errorf("collective: unknown pattern %q (want ring, tree, alltoall or ps)", s)
}

// Config sizes one collective operation.
type Config struct {
	Pattern Pattern

	// Participants is the number of ranks taking part (workers, for PS;
	// the server is an extra rank). Minimum 2.
	Participants int

	// MessageBytes is the per-rank payload: the gradient/tensor each
	// rank contributes (allreduce, PS) or the total each rank scatters
	// (all-to-all).
	MessageBytes int64

	// Chunks pipelines the message in sequential rounds: each round
	// moves 1/Chunks of the payload through the full pattern. Zero or
	// one disables chunking.
	Chunks int

	// Iterations repeats the collective back to back (training steps).
	// Zero means one.
	Iterations int
}

func (c Config) fill() Config {
	if c.Pattern == "" {
		c.Pattern = Ring
	}
	if c.Participants < 2 {
		c.Participants = 2
	}
	if c.MessageBytes <= 0 {
		c.MessageBytes = 1 << 20
	}
	if c.Chunks < 1 {
		c.Chunks = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	return c
}

// Filled returns the configuration with defaults applied.
func (c Config) Filled() Config { return c.fill() }

// Ranks returns how many hosts the collective needs: the participants,
// plus the server rank for the PS pattern (always the last rank).
func (c Config) Ranks() int {
	c = c.fill()
	if c.Pattern == PS {
		return c.Participants + 1
	}
	return c.Participants
}

// Transfer is one point-to-point send within a step: rank indices and a
// byte count.
type Transfer struct {
	From  int
	To    int
	Bytes int64
}

// Step is a set of transfers that start together; the step completes
// when the last of them delivers its final byte.
type Step []Transfer

// Steps expands one iteration of the collective into its dependency
// chain: a slice of steps, each a set of concurrent transfers. The
// expansion is pure — same config, same steps — so every replay moves
// the same bytes between the same ranks.
func Steps(cfg Config) []Step {
	c := cfg.fill()
	switch c.Pattern {
	case Ring:
		return ringSteps(c)
	case Tree:
		return treeSteps(c)
	case AllToAll:
		return allToAllSteps(c)
	case PS:
		return psSteps(c)
	}
	panic("collective: unknown pattern " + string(c.Pattern))
}

// ceilDiv splits total into n near-equal positive shares.
func ceilDiv(total int64, n int64) int64 {
	share := (total + n - 1) / n
	if share < 1 {
		share = 1
	}
	return share
}

// ringSteps: per chunk round, 2(N-1) steps. The first N-1 steps are the
// reduce-scatter (each rank forwards a partial segment to its successor);
// the next N-1 the allgather (each rank forwards a reduced segment).
// Every step moves one segment of MessageBytes/(N*Chunks) per rank.
func ringSteps(c Config) []Step {
	n := c.Participants
	seg := ceilDiv(c.MessageBytes, int64(n)*int64(c.Chunks))
	var steps []Step
	for chunk := 0; chunk < c.Chunks; chunk++ {
		for s := 0; s < 2*(n-1); s++ {
			step := make(Step, 0, n)
			for r := 0; r < n; r++ {
				step = append(step, Transfer{From: r, To: (r + 1) % n, Bytes: seg})
			}
			steps = append(steps, step)
		}
	}
	return steps
}

// treeSteps: per chunk round, a binomial reduce toward rank 0 followed by
// the mirrored broadcast. At reduce depth k, rank i with i mod 2^(k+1) ==
// 2^k sends its (partially reduced) chunk — the full MessageBytes/Chunks,
// tree allreduce is latency-optimal, not bandwidth-optimal — to i - 2^k.
func treeSteps(c Config) []Step {
	n := c.Participants
	payload := ceilDiv(c.MessageBytes, int64(c.Chunks))
	var reduce []Step
	for k := 1; k < n; k *= 2 {
		var step Step
		for i := k; i < n; i += 2 * k {
			if i%(2*k) == k {
				step = append(step, Transfer{From: i, To: i - k, Bytes: payload})
			}
		}
		if len(step) > 0 {
			reduce = append(reduce, step)
		}
	}
	var steps []Step
	for chunk := 0; chunk < c.Chunks; chunk++ {
		steps = append(steps, reduce...)
		// Broadcast: the reduce sweep reversed, directions flipped.
		for s := len(reduce) - 1; s >= 0; s-- {
			step := make(Step, 0, len(reduce[s]))
			for _, t := range reduce[s] {
				step = append(step, Transfer{From: t.To, To: t.From, Bytes: t.Bytes})
			}
			steps = append(steps, step)
		}
	}
	return steps
}

// allToAllSteps: per chunk round, one step in which every ordered rank
// pair exchanges MessageBytes/((N-1)*Chunks) — the full transpose hits
// the fabric at once, which is the point of the pattern.
func allToAllSteps(c Config) []Step {
	n := c.Participants
	share := ceilDiv(c.MessageBytes, int64(n-1)*int64(c.Chunks))
	var steps []Step
	for chunk := 0; chunk < c.Chunks; chunk++ {
		step := make(Step, 0, n*(n-1))
		for src := 0; src < n; src++ {
			for off := 1; off < n; off++ {
				step = append(step, Transfer{From: src, To: (src + off) % n, Bytes: share})
			}
		}
		steps = append(steps, step)
	}
	return steps
}

// psSteps: per chunk round, a push step (every worker sends its gradient
// share to the server rank N) then a pull step (the server fans the
// update back out) — the N-to-1 incast and its mirror.
func psSteps(c Config) []Step {
	n := c.Participants
	server := n // the extra rank
	share := ceilDiv(c.MessageBytes, int64(c.Chunks))
	var steps []Step
	for chunk := 0; chunk < c.Chunks; chunk++ {
		push := make(Step, 0, n)
		pull := make(Step, 0, n)
		for w := 0; w < n; w++ {
			push = append(push, Transfer{From: w, To: server, Bytes: share})
			pull = append(pull, Transfer{From: server, To: w, Bytes: share})
		}
		steps = append(steps, push, pull)
	}
	return steps
}

// TotalBytes sums the payload one iteration moves across the fabric.
func TotalBytes(steps []Step) int64 {
	var total int64
	for _, s := range steps {
		for _, t := range s {
			total += t.Bytes
		}
	}
	return total
}
