package collective

import (
	"rocc/internal/chaos"
	"rocc/internal/core"
	"rocc/internal/experiments"
	"rocc/internal/faults"
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/telemetry"
	"rocc/internal/topology"
)

// Kill kinds for ExpConfig.Kill.
const (
	KillNone = "none" // clean fabric
	KillLink = "link" // one edge→core uplink dies mid-run and restores
)

// ExpConfig parameterizes one collective cell: a collective on a
// two-edge fat-tree under one protocol and one operating mode.
type ExpConfig struct {
	Collective Config
	Protocol   experiments.Protocol
	Mode       netsim.OperatingMode

	// Kill optionally fails EdgeUp[0] at FailAt and restores it at
	// RestoreAt — the "does the allreduce survive a link kill" probe.
	Kill      string
	FailAt    sim.Time
	RestoreAt sim.Time

	// Deadline bounds the run; a collective still pending at the
	// deadline is reported stalled (deadlock or collapse), not an error.
	Deadline sim.Time

	// HostRate is the edge link speed (default 40 Gb/s); uplinks are 2:1
	// oversubscribed like the recovery benchmark.
	HostRate netsim.Rate

	Seed int64
}

func (c ExpConfig) fill() ExpConfig {
	c.Collective = c.Collective.Filled()
	if c.Protocol == "" {
		c.Protocol = experiments.ProtoRoCC
	}
	if c.Kill == "" {
		c.Kill = KillNone
	}
	if c.FailAt == 0 {
		c.FailAt = 2 * sim.Millisecond
	}
	if c.RestoreAt == 0 {
		c.RestoreAt = 4 * sim.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = 200 * sim.Millisecond
	}
	if c.HostRate == 0 {
		c.HostRate = netsim.Gbps(40)
	}
	return c
}

// Filled returns the configuration with all defaults applied.
func (c ExpConfig) Filled() ExpConfig { return c.fill() }

// ExpResult is one protocol × mode cell.
type ExpResult struct {
	Config ExpConfig
	Run    Result

	// Iteration completion-time percentiles in nanoseconds, exact over
	// the per-iteration samples (not histogram buckets).
	IterP50 float64
	IterP95 float64
	IterP99 float64

	// StragglerP99 is the p99 straggler spread across steps, ns.
	StragglerP99 float64

	// Deadlock holds the pause-wait cycle if the probe tripped (the run
	// is also stopped and reported stalled).
	Deadlock string

	Drops     int
	PFCFrames int
	RetxBytes int64

	// Metrics is the run's telemetry snapshot (histograms
	// collective.iter_ns / step_ns / straggler_ns) for CSV export.
	Metrics telemetry.Snapshot
}

// Stalled reports whether the collective failed to finish.
func (r ExpResult) Stalled() bool { return r.Run.Stalled }

// RunExp executes one collective cell.
func RunExp(cfg ExpConfig) ExpResult {
	cfg = cfg.fill()
	engine := sim.New()

	// Two edges, ranks split across them so every ring/tree/ps hop
	// crosses the oversubscribed core — the collective stresses the
	// fabric, not just host NICs.
	ranks := cfg.Collective.Ranks()
	hostsPerEdge := (ranks + 1) / 2
	up := float64(hostsPerEdge) * cfg.HostRate.Gbps() / 2
	ft := topology.BuildFatTree(engine, cfg.Seed, topology.FatTreeConfig{
		Cores:        2,
		Edges:        2,
		HostsPerEdge: hostsPerEdge,
		LinksPerPair: 1,
		HostRate:     cfg.HostRate,
		CoreRate:     netsim.Gbps(up / 2),
	})
	net := ft.Net
	cfg.Mode.Apply(net.Switches())

	hosts := make([]*netsim.Host, ranks)
	for r := 0; r < ranks; r++ {
		hosts[r] = ft.Hosts[r%2][r/2]
	}

	// CC wiring only when the mode runs congestion control; in PFC-only
	// mode flows get the default NoCC controller and PFC is the brake.
	var mix *experiments.Mix
	if cfg.Mode.CCEnabled() {
		mix = experiments.NewMix(net, 0)
		mix.RoCCRP.StaleK = core.DefaultStaleK
		mix.Activate(cfg.Protocol)
		mix.EnableAllSwitchPorts()
		mix.AttachReceivers(net.Hosts()...)
	}

	// Lossy fabrics drop; a collective transfer must deliver every byte,
	// so it rides go-back-N there (and during kills, where in-flight
	// packets blackhole).
	reliable := !cfg.Mode.Lossless() || cfg.Kill != KillNone

	reg := telemetry.New()
	runner := &Runner{
		Cfg: cfg.Collective,
		Reg: reg,
		Start: func(t Transfer) *netsim.Flow {
			src, dst := hosts[t.From], hosts[t.To]
			if mix != nil {
				return mix.StartCustomFlow(cfg.Protocol, src, dst, t.Bytes, 0, reliable)
			}
			return net.StartFlow(src, dst, netsim.FlowConfig{Size: t.Bytes, Reliable: reliable})
		},
	}
	runner.Begin(net)

	if cfg.Kill == KillLink {
		inj := faults.New(net, cfg.Seed+0x5eed)
		a := ft.EdgeUp[0]
		b := a.PeerNode.Ports()[a.PeerPort]
		inj.KillLink(a, b, cfg.FailAt, cfg.RestoreAt)
	}

	// Deadlock probe: a pause-wait cycle never drains, so the moment one
	// appears the cell's fate is sealed — stop and report it instead of
	// simulating pause frames until the deadline.
	deadlock := ""
	probe := engine.NewTicker(sim.Millisecond, func() {
		if cycle := chaos.PauseWaitCycle(net.Switches()); cycle != "" {
			deadlock = cycle
			engine.Stop()
		}
	})
	// Stop the engine as soon as the collective completes; no idle tail.
	finish := engine.NewTicker(100*sim.Microsecond, func() {
		if runner.Done() {
			engine.Stop()
		}
	})

	engine.RunUntil(cfg.Deadline)
	probe.Stop()
	finish.Stop()

	res := ExpResult{
		Config:    cfg,
		Run:       runner.Result(),
		Deadlock:  deadlock,
		Drops:     net.TotalDrops(),
		PFCFrames: net.TotalPFCFrames(),
		RetxBytes: net.RetxBytesTotal,
		Metrics:   reg.Snapshot(),
	}
	if n := len(res.Run.IterDurations); n > 0 {
		xs := make([]float64, n)
		for i, d := range res.Run.IterDurations {
			xs[i] = float64(d)
		}
		res.IterP50 = stats.Percentile(xs, 50)
		res.IterP95 = stats.Percentile(xs, 95)
		res.IterP99 = stats.Percentile(xs, 99)
	}
	if n := len(res.Run.Steps); n > 0 {
		xs := make([]float64, n)
		for i, s := range res.Run.Steps {
			xs[i] = float64(s.Straggler)
		}
		res.StragglerP99 = stats.Percentile(xs, 99)
	}
	return res
}

// Cells builds the headline sweep: every protocol × every operating
// mode on the shared base configuration.
func Cells(base ExpConfig) []ExpConfig {
	var cells []ExpConfig
	for _, p := range experiments.AllProtocols() {
		for _, m := range netsim.AllOperatingModes() {
			c := base
			c.Protocol = p
			c.Mode = m
			cells = append(cells, c)
		}
	}
	return cells
}

// RunGrid runs cells across workers; cell i lands at out[i] regardless
// of completion order, so a sweep is byte-identical at any worker
// count (each cell owns a private engine seeded from its config).
func RunGrid(cfgs []ExpConfig, workers int) []harness.Result[ExpResult] {
	return harness.Run(len(cfgs), harness.Options{Workers: workers}, func(i int) (ExpResult, error) {
		return RunExp(cfgs[i]), nil
	})
}
