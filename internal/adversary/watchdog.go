package adversary

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// WatchdogConfig parameterizes one switch's PFC storm watchdog.
type WatchdogConfig struct {
	// Deadline is how long a pause may stay asserted on an egress
	// before it is declared a storm. Default 500 µs — healthy pauses in
	// the paper's fabrics last microseconds; the network-level storm
	// threshold (Network.PauseStormSpan) is 1 ms.
	Deadline sim.Time

	// Cooldown is how long the lossless class stays disabled after a
	// trip before it is re-enabled. Default 1 ms. A storm still active
	// at re-enable re-trips on the next scan.
	Cooldown sim.Time

	// Scan is the port-scan period. Default 50 µs.
	Scan sim.Time
}

func (c WatchdogConfig) fill() WatchdogConfig {
	if c.Deadline <= 0 {
		c.Deadline = 500 * sim.Microsecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = sim.Millisecond
	}
	if c.Scan <= 0 {
		c.Scan = 50 * sim.Microsecond
	}
	return c
}

// WatchdogStats summarizes a watchdog's activity.
type WatchdogStats struct {
	Trips        int // storms detected (lossless disabled)
	Reenables    int // cooldowns completed (lossless restored)
	FlushedPkts  int // stuck-queue packets dropped at trips
	FlushedBytes int
}

// Watchdog is the deployed PFC storm mitigation for one switch: when a
// port's pause has been asserted past Deadline, the lossless class on
// that port is disabled — the stuck queue is flushed (dropped, with
// normal buffer/PFC accounting so upstream pause state unwinds), new
// data routed there is dropped, and the storm's continuing pause frames
// are ignored — until Cooldown re-enables it. Storm-free fabrics see
// only reads: a watchdog that never trips never mutates, preserving
// byte-identical trajectories (the zero-fault identity contract).
type Watchdog struct {
	net *netsim.Network
	sw  *netsim.Switch
	cfg WatchdogConfig

	// reenableAt records, per port index, when the pending cooldown
	// restores the lossless class. The watchdog-liveness invariant
	// checks it: a port still disabled after its recorded deadline
	// means the re-enable was lost.
	reenableAt map[int]sim.Time

	stopped bool
	stats   WatchdogStats
	tm      metrics
}

// NewWatchdog attaches a storm watchdog to the switch and starts its
// scan.
func NewWatchdog(net *netsim.Network, sw *netsim.Switch, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		net:        net,
		sw:         sw,
		cfg:        cfg.fill(),
		reenableAt: make(map[int]sim.Time),
		tm:         metricsFrom(net),
	}
	net.Engine.AfterCall(w.cfg.Scan, watchdogScan, w, nil)
	return w
}

// Stop ends the scan. Pending cooldown re-enables still fire — a
// stopped watchdog must not leave a port lossless-disabled forever.
func (w *Watchdog) Stop() { w.stopped = true }

// Stats returns the activity counters.
func (w *Watchdog) Stats() WatchdogStats { return w.stats }

// DisabledPorts returns how many of the switch's ports currently have
// their lossless class storm-disabled.
func (w *Watchdog) DisabledPorts() int {
	n := 0
	for _, p := range w.sw.Ports() {
		if p.LosslessOff() {
			n++
		}
	}
	return n
}

// StuckDisabled reports a liveness failure: a port whose lossless class
// is disabled past its recorded re-enable deadline (the cooldown event
// was lost). Healthy operation never returns true, including mid-cooldown.
func (w *Watchdog) StuckDisabled(now sim.Time) bool {
	for _, p := range w.sw.Ports() {
		if !p.LosslessOff() {
			continue
		}
		at, ok := w.reenableAt[p.Index]
		if !ok || now > at {
			return true
		}
	}
	return false
}

// Trip force-trips the watchdog on one port — the test hook for the
// forced trip → disable → cooldown → re-enable path.
func (w *Watchdog) Trip(port *netsim.Port) { w.trip(port) }

func (w *Watchdog) trip(port *netsim.Port) {
	if port.LosslessOff() {
		return
	}
	port.SetLosslessOff(true) // releases the in-progress pause span
	pkts, bytes := w.sw.FlushPortData(port)
	w.stats.Trips++
	w.stats.FlushedPkts += pkts
	w.stats.FlushedBytes += bytes
	w.tm.trips.Inc()
	w.reenableAt[port.Index] = w.net.Engine.Now() + w.cfg.Cooldown
	record(w.net, "watchdog_trip", w.sw.ID(), int64(port.Index), float64(bytes))
	w.net.Engine.AfterCall(w.cfg.Cooldown, watchdogReenable, w, port)
}

// watchdogScan checks every port's in-progress pause span against the
// deadline. Reads only, unless a storm is found.
func watchdogScan(a, _ any) {
	w := a.(*Watchdog)
	if w.stopped {
		return
	}
	for _, p := range w.sw.Ports() {
		if p.LosslessOff() {
			continue // cooldown pending
		}
		if p.CurrentPauseSpan() >= w.cfg.Deadline {
			w.trip(p)
		}
	}
	w.net.Engine.AfterCall(w.cfg.Scan, watchdogScan, w, nil)
}

// watchdogReenable restores the lossless class after the cooldown. It
// fires even on a stopped watchdog: disabling is an intervention, and
// interventions must unwind.
func watchdogReenable(a, b any) {
	w := a.(*Watchdog)
	port := b.(*netsim.Port)
	port.SetLosslessOff(false)
	delete(w.reenableAt, port.Index)
	w.stats.Reenables++
	w.tm.reenables.Inc()
	record(w.net, "watchdog_reenable", w.sw.ID(), int64(port.Index), 0)
}
