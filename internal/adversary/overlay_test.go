package adversary

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// fakePortCC marks every packet at dequeue and counts hook calls — a
// stand-in for a genuine marking element under the overlay.
type fakePortCC struct{ enq, deq int }

func (c *fakePortCC) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) { c.enq++ }
func (c *fakePortCC) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	c.deq++
	pkt.CE = true
}

func TestBleachClearsInnerMarks(t *testing.T) {
	_, _, _, _, _, p01 := chain()
	inner := &fakePortCC{}
	p01.CC = inner
	ov := BleachECN(p01)
	pkt := &netsim.Packet{Kind: netsim.KindData, Size: 1000, ECT: true}
	ov.OnEnqueue(0, pkt, 0)
	ov.OnDequeue(0, pkt, 50_000)
	if inner.enq != 1 || inner.deq != 1 {
		t.Errorf("inner element not forwarded to: %+v", inner)
	}
	if pkt.CE {
		t.Error("CE survived the bleach")
	}
	if ov.Bleached != 1 {
		t.Errorf("Bleached = %d, want 1", ov.Bleached)
	}
}

func TestRemarkForcesMarksAtThreshold(t *testing.T) {
	_, _, _, _, _, p01 := chain()
	ov := RemarkECN(p01, 10_000)
	under := &netsim.Packet{Kind: netsim.KindData, Size: 1000}
	ov.OnDequeue(0, under, 5_000)
	if under.CE || ov.Remarked != 0 {
		t.Error("re-marked below the threshold")
	}
	over := &netsim.Packet{Kind: netsim.KindData, Size: 1000}
	ov.OnDequeue(0, over, 20_000)
	if !over.CE || ov.Remarked != 1 {
		t.Error("no mark at a backlog past the threshold")
	}
}

func TestOverlaysCompose(t *testing.T) {
	// Remark first, bleach on top: the bleach is the outer overlay and
	// dequeues run inner-first, so the forced mark is cleared again —
	// the packet leaves unmarked and both counters advance.
	_, _, _, _, _, p01 := chain()
	remark := RemarkECN(p01, 0)
	bleach := BleachECN(p01)
	pkt := &netsim.Packet{Kind: netsim.KindData, Size: 1000}
	bleach.OnDequeue(0, pkt, 1_000)
	if pkt.CE {
		t.Error("outer bleach did not win the composition")
	}
	if remark.Remarked != 1 || bleach.Bleached != 1 {
		t.Errorf("composition counters: remarked=%d bleached=%d", remark.Remarked, bleach.Bleached)
	}
}

// TestBleachKeepsWireClean: end to end, a bleaching egress starves
// everything downstream of marks — every CE the inner marker sets is
// cleared before the packet reaches the wire.
func TestBleachKeepsWireClean(t *testing.T) {
	engine, net, h0, h1, _, p01 := chain()
	inner := &fakePortCC{}
	p01.CC = inner
	ov := BleachECN(p01)
	f := net.StartFlow(h0, h1, netsim.FlowConfig{Size: 100_000})
	engine.RunUntil(2 * sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if inner.deq == 0 {
		t.Error("inner marker never ran")
	}
	if ov.Bleached != inner.deq {
		t.Errorf("bleached %d of %d marked packets", ov.Bleached, inner.deq)
	}
}
