package adversary

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// PolicerConfig parameterizes one switch's compliance policer.
type PolicerConfig struct {
	// Window is the metering interval (default 100 µs). Per-flow
	// arrival bytes are accumulated per egress over each window and
	// compared against the advertised share at its close.
	Window sim.Time

	// Margin is the compliance slack: a flow is over-share in a window
	// when its measured arrival rate exceeds Margin × share. Default
	// 1.5 — transient bursts above fair share are normal (recovery
	// doubling, window growth), sustained 1.5× is not.
	Margin float64

	// TripAfter is the hysteresis on entry: consecutive over-share
	// windows before the flow is quarantined. Default 4.
	TripAfter int

	// ReleaseAfter is the hysteresis on exit: consecutive compliant
	// windows (measured on *offered* arrivals, before policing drops)
	// before a quarantined flow is released. Default 8. A rogue that
	// keeps blasting never looks compliant and never gets out; a
	// reformed or mis-flagged flow drops its offered rate and does.
	ReleaseAfter int

	// PenaltyFraction scales the quarantine rate: a quarantined flow is
	// token-bucket limited to PenaltyFraction × share. Default 0.1.
	PenaltyFraction float64

	// CongestedBytes gates quarantine entry on actual contention: a
	// window only counts toward a flow's overStreak when the egress's
	// data backlog peaked at or above this many bytes during it.
	// Default 20 KB (20 MTUs). The gate exists because advertised rates
	// lag: on an uncongested egress flows legitimately probe past the
	// last advertised share (RoCC's fast recovery doubles every 200 µs
	// while the CP's fair rate climbs additively), and punishing that
	// probing quarantines honest flows — whose packets then never reach
	// the queue, never draw fresh feedback, and never look compliant
	// again. Over-rate flows on an uncongested egress are harmless by
	// definition; the moment they actually congest it, the gate opens.
	CongestedBytes int

	// AdvertisedRate, when set, supplies the share the fabric actually
	// promised flows on an egress — for RoCC, the congestion point's
	// fair rate, the enforcement leverage only a switch-driven scheme
	// has. When nil (or when it reports no rate), the policer falls
	// back to an equal split of the egress link over the non-quarantined
	// flows that arrived in the window — the best a switch can do for
	// end-host schemes that never told it anything.
	AdvertisedRate func(port *netsim.Port) (netsim.Rate, bool)

	// RequireAdvertised restricts compliance evaluation to egresses with
	// an advertised rate: no contract, no policing. The equal-split
	// fallback assumes every arriving flow deserves 1/n of the link,
	// which work-conserving end-host schemes legitimately violate — a
	// window-based flow absorbing slack that rate-capped neighbours left
	// idle is doing its job, not misbehaving — so against a diverse
	// workload the fallback mistakes bursts for rogues. Enforcement
	// (already-quarantined flows) continues either way; only entry and
	// release evaluation pause while an egress has no advertisement.
	RequireAdvertised bool
}

func (c PolicerConfig) fill() PolicerConfig {
	if c.Window <= 0 {
		c.Window = 100 * sim.Microsecond
	}
	if c.Margin <= 0 {
		c.Margin = 1.5
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 4
	}
	if c.ReleaseAfter <= 0 {
		c.ReleaseAfter = 8
	}
	if c.PenaltyFraction <= 0 {
		c.PenaltyFraction = 0.1
	}
	if c.CongestedBytes <= 0 {
		c.CongestedBytes = 20_000
	}
	return c
}

// penaltyBurstBytes caps a quarantined flow's token bucket: a couple of
// MTUs of burst tolerance so the penalty rate is enforceable without
// dropping every packet of a flow that paces exactly at it.
const penaltyBurstBytes = 3072

// flowMeter accumulates one flow's arrivals at one egress per window.
type flowMeter struct {
	bytes      int64 // this window's offered arrivals (pre-drop)
	overStreak int   // consecutive over-share windows (entry hysteresis)
}

// quarantine is one policed flow's enforcement state.
type quarantine struct {
	penalty    netsim.Rate // token refill rate
	tokens     float64     // bytes available
	refillAt   sim.Time    // last refill instant
	calmStreak int         // consecutive compliant windows (exit hysteresis)
}

// PolicerStats summarizes a policer's activity.
type PolicerStats struct {
	Detections int // quarantines entered
	Releases   int // quarantines released
	Drops      int // packets denied while quarantined
}

// Policer is the per-flow byte-accounting non-compliance detector for
// one switch. It installs itself as the switch's Police hook (metering
// and enforcement in one pass over every arriving data packet) plus a
// per-window evaluation ticker. Attach at most one per switch.
type Policer struct {
	net *netsim.Network
	sw  *netsim.Switch
	cfg PolicerConfig

	meters      []map[netsim.FlowID]*flowMeter // by egress port index
	qpeak       []int                          // per-egress peak data backlog this window
	quarantined map[netsim.FlowID]*quarantine

	stopped bool
	stats   PolicerStats
	tm      metrics
}

// NewPolicer attaches a compliance policer to the switch. Panics if the
// switch already carries a Police hook.
func NewPolicer(net *netsim.Network, sw *netsim.Switch, cfg PolicerConfig) *Policer {
	if sw.Police != nil {
		panic("adversary: switch " + sw.Name + " already has a Police hook")
	}
	p := &Policer{
		net:         net,
		sw:          sw,
		cfg:         cfg.fill(),
		meters:      make([]map[netsim.FlowID]*flowMeter, len(sw.Ports())),
		qpeak:       make([]int, len(sw.Ports())),
		quarantined: make(map[netsim.FlowID]*quarantine),
		tm:          metricsFrom(net),
	}
	sw.Police = p.police
	net.Engine.AfterCall(p.cfg.Window, policerTick, p, nil)
	return p
}

// Stop detaches the policer: the hook comes off (any remaining
// quarantines stop being enforced) and the ticker winds down.
func (p *Policer) Stop() {
	p.stopped = true
	if p.sw.Police != nil {
		p.sw.Police = nil
	}
}

// Stats returns the activity counters.
func (p *Policer) Stats() PolicerStats { return p.stats }

// Quarantined reports whether a flow is currently quarantined here.
func (p *Policer) Quarantined(fid netsim.FlowID) bool {
	return p.quarantined[fid] != nil
}

// CurrentQuarantined returns how many flows are quarantined right now.
// The quarantine-accounting invariant ties it to the counters:
// CurrentQuarantined == Detections - Releases.
func (p *Policer) CurrentQuarantined() int { return len(p.quarantined) }

// ForceQuarantine puts a flow under a penalty rate immediately —
// the regression-test hook for exercising quarantine effects without
// reproducing a detection trajectory.
func (p *Policer) ForceQuarantine(fid netsim.FlowID, penalty netsim.Rate) {
	if p.quarantined[fid] != nil {
		return
	}
	p.admitQuarantine(fid, penalty)
}

func (p *Policer) admitQuarantine(fid netsim.FlowID, penalty netsim.Rate) {
	p.quarantined[fid] = &quarantine{
		penalty:  penalty,
		tokens:   penaltyBurstBytes,
		refillAt: p.net.Engine.Now(),
	}
	p.stats.Detections++
	p.tm.detections.Inc()
	record(p.net, "quarantine", p.sw.ID(), int64(fid), float64(penalty))
}

func (p *Policer) release(fid netsim.FlowID) {
	delete(p.quarantined, fid)
	p.stats.Releases++
	p.tm.releases.Inc()
	record(p.net, "release", p.sw.ID(), int64(fid), 0)
}

// police is the Switch.Police hook: meter the arrival, then enforce the
// penalty bucket if the flow is quarantined. Metering happens before
// enforcement so the compliance detector sees *offered* load — a
// quarantined rogue that keeps blasting stays visibly non-compliant
// even though its packets are being dropped.
func (p *Policer) police(now sim.Time, pkt *netsim.Packet, inPort int, egress *netsim.Port) bool {
	m := p.meters[egress.Index]
	if m == nil {
		m = make(map[netsim.FlowID]*flowMeter)
		p.meters[egress.Index] = m
	}
	fm := m[pkt.Flow]
	if fm == nil {
		fm = &flowMeter{}
		m[pkt.Flow] = fm
	}
	fm.bytes += int64(pkt.Size)
	if q := egress.DataQueueBytes(); q > p.qpeak[egress.Index] {
		p.qpeak[egress.Index] = q
	}

	q := p.quarantined[pkt.Flow]
	if q == nil {
		return true
	}
	q.tokens += float64(q.penalty) / 8 * (now - q.refillAt).Seconds()
	q.refillAt = now
	if q.tokens > penaltyBurstBytes {
		q.tokens = penaltyBurstBytes
	}
	if q.tokens >= float64(pkt.Size) {
		q.tokens -= float64(pkt.Size)
		return true
	}
	p.stats.Drops++
	return false
}

// policerTick closes one metering window: compare every metered flow's
// offered rate against the egress's advertised share, advance the
// hysteresis streaks, and reset the meters.
func policerTick(a, _ any) {
	p := a.(*Policer)
	if p.stopped {
		return
	}
	winSeconds := p.cfg.Window.Seconds()
	for portIdx, m := range p.meters {
		if len(m) == 0 {
			continue
		}
		port := p.sw.Port(portIdx)
		share, advertised := p.shareFor(port, m)
		if p.cfg.RequireAdvertised && !advertised {
			// No contract on this egress: close the window without judging
			// anyone. Meters reset (so a later advertised window sees only
			// its own bytes) but streaks and quarantines freeze in place.
			p.qpeak[portIdx] = 0
			for fid, fm := range m {
				fm.bytes = 0
				if p.quarantined[fid] == nil && fm.overStreak == 0 && p.net.Flow(fid) == nil {
					delete(m, fid)
				}
			}
			continue
		}
		limitBytes := float64(share) / 8 * p.cfg.Margin * winSeconds
		congested := p.qpeak[portIdx] >= p.cfg.CongestedBytes
		p.qpeak[portIdx] = 0
		for fid, fm := range m {
			q := p.quarantined[fid]
			if float64(fm.bytes) > limitBytes {
				switch {
				case q != nil:
					q.calmStreak = 0
				case congested:
					// Over-share AND the egress actually hurt: this is
					// the window that counts toward quarantine.
					fm.overStreak++
					if fm.overStreak >= p.cfg.TripAfter {
						penalty := netsim.Rate(float64(share) * p.cfg.PenaltyFraction)
						if penalty < netsim.Mbps(1) {
							penalty = netsim.Mbps(1)
						}
						p.admitQuarantine(fid, penalty)
					}
				default:
					// Over a stale advertised share on an idle egress is
					// legitimate probing, not an offense — and not
					// exculpatory either: the streak just holds.
				}
			} else {
				fm.overStreak = 0
				if q != nil {
					q.calmStreak++
					if q.calmStreak >= p.cfg.ReleaseAfter {
						p.release(fid)
						q = nil
					}
				}
			}
			fm.bytes = 0
			// Retire meters for flows that are gone and unpoliced; a
			// quarantined flow keeps its meter so silence (zero-byte
			// windows) counts toward its release.
			if q == nil && fm.overStreak == 0 && p.net.Flow(fid) == nil {
				delete(m, fid)
			}
		}
	}
	p.net.Engine.AfterCall(p.cfg.Window, policerTick, p, nil)
}

// shareFor resolves the per-flow share the policer holds flows to on
// one egress: the fabric's advertised fair rate when one exists
// (advertised=true), else an equal split of the link over the
// non-quarantined flows that arrived this window.
func (p *Policer) shareFor(port *netsim.Port, m map[netsim.FlowID]*flowMeter) (netsim.Rate, bool) {
	if p.cfg.AdvertisedRate != nil {
		if r, ok := p.cfg.AdvertisedRate(port); ok && r > 0 {
			return r, true
		}
	}
	active := 0
	for fid := range m {
		if p.quarantined[fid] == nil {
			active++
		}
	}
	if active < 1 {
		active = 1
	}
	return netsim.Rate(float64(port.LinkRate) / float64(active)), false
}
