package adversary

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// ECNOverlay is a misconfigured-switch behaviour layered over one
// egress port's congestion-control attachment: it forwards every hook
// to the genuine element, then corrupts the ECN state the element (or
// an upstream switch) left on the packet. Attach after all protocol
// wiring is complete — the overlay captures whatever attachment the
// port carries at that moment (including none).
//
// Two misconfigurations are modelled, composable on one overlay:
//
//   - Bleaching: CE marks are cleared at dequeue, so ECN-based schemes
//     (DCQCN, DCTCP) upstream of this port lose their signal — the
//     classic mid-path ToS/ECN rewrite misconfiguration.
//
//   - Re-marking at the wrong threshold: CE is set whenever the data
//     backlog meets MarkAtBytes, regardless of the protocol's own
//     marking logic. A low threshold over-marks (honest flows collapse);
//     MarkAtBytes 0 marks everything.
type ECNOverlay struct {
	inner  netsim.PortCC
	bleach bool
	markAt int // -1 disables re-marking

	// Counters.
	Bleached int // CE marks cleared
	Remarked int // CE marks forced on
}

// BleachECN installs a mark-clearing overlay on the port.
func BleachECN(port *netsim.Port) *ECNOverlay {
	ov := &ECNOverlay{inner: port.CC, bleach: true, markAt: -1}
	port.CC = ov
	return ov
}

// RemarkECN installs a wrong-threshold marker on the port: CE is set on
// every data packet dequeued while the backlog is at least
// thresholdBytes (0 = always).
func RemarkECN(port *netsim.Port, thresholdBytes int) *ECNOverlay {
	ov := &ECNOverlay{inner: port.CC, markAt: thresholdBytes}
	port.CC = ov
	return ov
}

// OnEnqueue implements netsim.PortCC.
func (ov *ECNOverlay) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if ov.inner != nil {
		ov.inner.OnEnqueue(now, pkt, qlen)
	}
}

// OnDequeue implements netsim.PortCC: the genuine element runs first,
// then the misconfiguration rewrites the mark it (or an earlier hop)
// left. Dequeue is the last touch before the wire, so the corruption
// always wins.
func (ov *ECNOverlay) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if ov.inner != nil {
		ov.inner.OnDequeue(now, pkt, qlen)
	}
	if ov.bleach && pkt.CE {
		pkt.CE = false
		ov.Bleached++
	}
	if ov.markAt >= 0 && !pkt.CE && qlen >= ov.markAt {
		pkt.CE = true
		ov.Remarked++
	}
}

// CCProtocol implements netsim.ProtocolNamer.
func (ov *ECNOverlay) CCProtocol() string {
	name := "ecn-overlay"
	if ov.inner != nil {
		name += "(" + netsim.CCProtocolName(ov.inner) + ")"
	}
	return name
}
