package adversary

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// ForgeConfig drives a spoofed-CNP injection attack: a host fabricates
// congestion notifications addressed to a victim flow's source,
// claiming a congestion point of the attacker's choosing and a fair
// rate designed to throttle the victim. The forged packets are ordinary
// KindCNP traffic — they ride the control class through the real fabric
// and land in the victim's reaction point exactly like genuine
// feedback, which is what makes the core.RPConfig.Witness defense (and
// the roccnet VerifyCPPath/MaxCNPAge options) necessary.
type ForgeConfig struct {
	// Victim is the targeted flow; forged CNPs are addressed to its
	// source host and tagged with its flow id.
	Victim netsim.FlowID

	// CP is the congestion-point identity the forgery claims. An
	// off-path CP is detectable by the path witness; an on-path CP is
	// the strongest spoof (only rate plausibility checks remain).
	CP netsim.CPID

	// RateUnits is the advertised fair rate in ΔF units. Low values
	// drag the victim's rate toward zero.
	RateUnits int

	// Period is the injection cadence. Defaults to 40 µs, one CP
	// update interval — indistinguishable in timing from a real CP.
	Period sim.Time

	// Until stops the attack (no packets injected after it). Zero
	// means the attack runs as long as the victim flow exists.
	Until sim.Time

	// StampAge backdates each forged CNP's send timestamp, modelling a
	// replayed capture instead of a live forgery. Zero stamps the
	// current time (a fresh spoof).
	StampAge sim.Time
}

// Forger injects spoofed CNPs from a host on a fixed schedule.
type Forger struct {
	net  *netsim.Network
	host *netsim.Host
	cfg  ForgeConfig

	stopped bool
	Sent    int // forged CNPs injected
}

// NewForger builds the attacker and schedules its first injection one
// period out. Stop cancels future injections.
func NewForger(host *netsim.Host, cfg ForgeConfig) *Forger {
	if cfg.Period <= 0 {
		cfg.Period = 40 * sim.Microsecond
	}
	f := &Forger{net: host.Network(), host: host, cfg: cfg}
	f.net.Engine.AfterCall(cfg.Period, forgeTick, f, nil)
	return f
}

// Stop ends the attack.
func (f *Forger) Stop() { f.stopped = true }

// forgeTick injects one spoofed CNP and re-arms. A missing victim flow
// (completed, removed) ends the attack; a configured Until bound ends
// it at its deadline.
func forgeTick(a, _ any) {
	f := a.(*Forger)
	if f.stopped {
		return
	}
	now := f.net.Engine.Now()
	if f.cfg.Until > 0 && now > f.cfg.Until {
		return
	}
	victim := f.net.Flow(f.cfg.Victim)
	if victim == nil {
		return
	}
	pkt := f.net.AcquirePacket()
	pkt.Flow = f.cfg.Victim
	pkt.Src = f.host.ID()
	pkt.Dst = victim.Src().ID()
	pkt.Kind = netsim.KindCNP
	pkt.Cls = netsim.ClassCtrl
	pkt.Size = netsim.CNPBytes
	pkt.SendTS = now - f.cfg.StampAge
	info := pkt.EnsureCNP()
	info.CP = f.cfg.CP
	info.RateUnits = f.cfg.RateUnits
	f.host.Send(pkt)
	f.Sent++
	f.net.Engine.AfterCall(f.cfg.Period, forgeTick, f, nil)
}
