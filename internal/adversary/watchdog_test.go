package adversary

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// chain builds h0 → s0 → s1 → h1 with 40G links and returns s0 plus its
// egress toward s1 — the port a wedged pause storms.
func chain() (*sim.Engine, *netsim.Network, *netsim.Host, *netsim.Host, *netsim.Switch, *netsim.Port) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	s0 := net.AddSwitch("s0", netsim.BufferConfig{})
	s1 := net.AddSwitch("s1", netsim.BufferConfig{})
	h0 := net.AddHost("h0")
	h1 := net.AddHost("h1")
	net.Connect(h0, s0, netsim.Gbps(40), 1500)
	net.Connect(h1, s1, netsim.Gbps(40), 1500)
	p01, _ := net.Connect(s0, s1, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	return engine, net, h0, h1, s0, p01
}

// TestWatchdogTripDisableCooldownReenable walks the full storm path:
// a pause wedged past the deadline trips the watchdog, the lossless
// class goes down (stuck queue flushed, new arrivals dropped, storm
// pause frames ignored), and the cooldown restores it.
func TestWatchdogTripDisableCooldownReenable(t *testing.T) {
	engine, net, h0, h1, s0, p01 := chain()
	w := NewWatchdog(net, s0, WatchdogConfig{
		Deadline: 200 * sim.Microsecond,
		Cooldown: 400 * sim.Microsecond,
		Scan:     50 * sim.Microsecond,
	})
	// The storm: the egress toward s1 is pause-wedged from t=0 while a
	// persistent flow keeps stacking data behind it.
	p01.SetPaused(true)
	f := net.StartFlow(h0, h1, netsim.FlowConfig{Size: -1})

	// Mid-storm: past the deadline, before the cooldown ends.
	engine.RunUntil(300 * sim.Microsecond)
	if !p01.LosslessOff() {
		t.Fatal("watchdog did not disable the stormed port")
	}
	if w.Stats().Trips != 1 {
		t.Fatalf("Trips = %d at 300µs, want 1", w.Stats().Trips)
	}
	if w.Stats().FlushedPkts == 0 || w.Stats().FlushedBytes == 0 {
		t.Error("trip flushed nothing despite a stacked queue")
	}
	if p01.Paused() {
		t.Error("disabling lossless must release the wedged pause")
	}
	if w.DisabledPorts() != 1 {
		t.Errorf("DisabledPorts = %d mid-cooldown, want 1", w.DisabledPorts())
	}
	if w.StuckDisabled(engine.Now()) {
		t.Error("StuckDisabled true during a healthy cooldown")
	}
	// The storm keeps screaming: its pause frames bounce off.
	pause := net.AcquirePacket()
	pause.Kind = netsim.KindPause
	pause.Cls = netsim.ClassCtrl
	pause.Size = netsim.PauseBytes
	pause.PauseOn = true
	pause.SendTS = engine.Now()
	s0.Arrive(pause, p01.Index)
	if p01.Paused() {
		t.Error("pause frame honored while lossless is disabled")
	}
	if net.WatchdogPauseIgnores() == 0 {
		t.Error("ignored pause frame not counted")
	}

	// After the cooldown: re-enabled, flowing again.
	engine.RunUntil(2 * sim.Millisecond)
	if p01.LosslessOff() || w.DisabledPorts() != 0 {
		t.Error("lossless class still disabled after the cooldown")
	}
	st := w.Stats()
	if st.Reenables != st.Trips {
		t.Errorf("Reenables = %d, Trips = %d — a cooldown was lost", st.Reenables, st.Trips)
	}
	if w.StuckDisabled(engine.Now()) {
		t.Error("StuckDisabled after full recovery")
	}
	if net.WatchdogDrops() < st.FlushedPkts {
		t.Errorf("WatchdogDrops = %d < FlushedPkts = %d", net.WatchdogDrops(), st.FlushedPkts)
	}
	// Watchdog drops are interventions, not lossless-contract breaches.
	if net.TotalDrops() != 0 {
		t.Errorf("watchdog drops leaked into tail-drop accounting: %d", net.TotalDrops())
	}
	// The flow made progress again once the port was restored.
	if f.DeliveredBytes() == 0 {
		t.Error("flow starved even after the watchdog cleared the storm")
	}
	w.Stop()
}

// TestWatchdogForcedTrip exercises the public Trip hook directly:
// disable → cooldown → re-enable without any pause at all.
func TestWatchdogForcedTrip(t *testing.T) {
	engine, net, _, _, s0, p01 := chain()
	w := NewWatchdog(net, s0, WatchdogConfig{Cooldown: 100 * sim.Microsecond})
	w.Trip(p01)
	if !p01.LosslessOff() || w.Stats().Trips != 1 {
		t.Fatal("forced trip did not disable the port")
	}
	w.Trip(p01) // idempotent while disabled
	if w.Stats().Trips != 1 {
		t.Error("re-tripping a disabled port counted twice")
	}
	engine.RunUntil(200 * sim.Microsecond)
	if p01.LosslessOff() || w.Stats().Reenables != 1 {
		t.Error("forced trip never re-enabled")
	}
}

// TestWatchdogStopStillReenables: stopping the watchdog mid-cooldown
// must not strand the port — interventions unwind.
func TestWatchdogStopStillReenables(t *testing.T) {
	engine, net, _, _, s0, p01 := chain()
	w := NewWatchdog(net, s0, WatchdogConfig{Cooldown: 100 * sim.Microsecond})
	w.Trip(p01)
	w.Stop()
	engine.RunUntil(sim.Millisecond)
	if p01.LosslessOff() {
		t.Error("stopped watchdog stranded a disabled port")
	}
	if w.Stats().Reenables != 1 {
		t.Errorf("Reenables = %d after stop, want 1", w.Stats().Reenables)
	}
}

// TestWatchdogZeroStormIdentity: a watchdog attached to a storm-free
// fabric only reads — the run must be byte-identical in bytes and
// virtual time to one without the watchdog (the zero-fault identity
// contract, as in internal/faults).
func TestWatchdogZeroStormIdentity(t *testing.T) {
	run := func(watched bool) (int64, sim.Time) {
		engine, net, h0, h1, s0, _ := chain()
		var w *Watchdog
		if watched {
			w = NewWatchdog(net, s0, WatchdogConfig{})
		}
		f := net.StartFlow(h0, h1, netsim.FlowConfig{Size: 300_000})
		engine.RunUntil(5 * sim.Millisecond)
		if !f.Done() {
			t.Fatal("flow incomplete")
		}
		if watched && (w.Stats() != WatchdogStats{}) {
			t.Errorf("storm-free run tripped the watchdog: %+v", w.Stats())
		}
		return f.DeliveredBytes(), f.FCT()
	}
	bytes0, t0 := run(false)
	bytes1, t1 := run(true)
	if bytes0 != bytes1 || t0 != t1 {
		t.Errorf("zero-storm run diverged: %d/%v vs %d/%v", bytes0, t0, bytes1, t1)
	}
}
