package adversary

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// recordCC is a fake inner controller that records which hooks fired.
type recordCC struct {
	allows, sents, acks, cnps, reroutes, rewinds, stops int
	lastCE                                              bool
	lastINT                                             int
}

func (c *recordCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	c.allows++
	return now, true
}
func (c *recordCC) OnSent(now sim.Time, pkt *netsim.Packet) { c.sents++ }
func (c *recordCC) OnAck(now sim.Time, pkt *netsim.Packet) {
	c.acks++
	c.lastCE = pkt.CE
	c.lastINT = len(pkt.EchoINT)
}
func (c *recordCC) OnCNP(now sim.Time, pkt *netsim.Packet) { c.cnps++ }
func (c *recordCC) CurrentRate() netsim.Rate               { return netsim.Gbps(7) }
func (c *recordCC) OnReroute(now sim.Time)                 { c.reroutes++ }
func (c *recordCC) OnRewind(now sim.Time, seq int64)       { c.rewinds++ }
func (c *recordCC) Stop()                                  { c.stops++ }

func TestParseRogueKind(t *testing.T) {
	for _, k := range RogueKinds() {
		got, err := ParseRogueKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseRogueKind(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := ParseRogueKind("polite"); err == nil {
		t.Error("ParseRogueKind accepted an unknown kind")
	}
}

func TestCNPDeafSwallowsCNPsOnly(t *testing.T) {
	inner := &recordCC{}
	r := WrapRogue(RogueCNPDeaf, inner, 0)
	ack := &netsim.Packet{Kind: netsim.KindAck, CE: true, EchoINT: make([]netsim.INTRecord, 2)}
	cnp := &netsim.Packet{Kind: netsim.KindCNP}
	r.Allow(0, 1000)
	r.OnSent(0, &netsim.Packet{})
	r.OnAck(0, ack)
	r.OnCNP(0, cnp)
	r.OnReroute(0)
	r.OnRewind(0, 0)
	r.Stop()
	if inner.cnps != 0 {
		t.Error("CNP reached a CNP-deaf controller")
	}
	if inner.allows != 1 || inner.sents != 1 || inner.acks != 1 ||
		inner.reroutes != 1 || inner.rewinds != 1 || inner.stops != 1 {
		t.Errorf("non-CNP hooks not forwarded: %+v", inner)
	}
	if !inner.lastCE || inner.lastINT != 2 {
		t.Error("CNP-deaf rogue altered ACK signals (that is ECN-blind's job)")
	}
	if r.SuppressedCNPs != 1 {
		t.Errorf("SuppressedCNPs = %d, want 1", r.SuppressedCNPs)
	}
	if r.CurrentRate() != netsim.Gbps(7) {
		t.Error("CurrentRate not forwarded")
	}
}

func TestECNBlindStripsAckSignals(t *testing.T) {
	inner := &recordCC{}
	r := WrapRogue(RogueECNBlind, inner, 0)
	ack := &netsim.Packet{Kind: netsim.KindAck, CE: true, EchoINT: make([]netsim.INTRecord, 3)}
	r.OnAck(0, ack)
	r.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	if inner.acks != 1 || inner.lastCE || inner.lastINT != 0 {
		t.Errorf("ACK signals survived the blinding: %+v", inner)
	}
	if inner.cnps != 0 {
		t.Error("CNP reached an ECN-blind controller")
	}
	if r.StrippedAcks != 1 {
		t.Errorf("StrippedAcks = %d, want 1", r.StrippedAcks)
	}
}

func TestBlastIgnoresInnerEntirely(t *testing.T) {
	inner := &recordCC{}
	r := WrapRogue(RogueBlast, inner, netsim.Gbps(20))
	r.Allow(0, 1000)
	r.OnSent(0, &netsim.Packet{Size: 1000})
	r.OnAck(0, &netsim.Packet{Kind: netsim.KindAck})
	r.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	if inner.allows != 0 || inner.sents != 0 || inner.acks != 0 || inner.cnps != 0 {
		t.Errorf("blast forwarded controller hooks: %+v", inner)
	}
	if r.CurrentRate() != netsim.Gbps(20) {
		t.Error("blast CurrentRate is not the configured rate")
	}
}

// TestBlastPacesAtConfiguredRate runs a blast rogue through a real
// fabric and checks the delivered rate tracks the configured blast rate.
func TestBlastPacesAtConfiguredRate(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()

	rate := netsim.Gbps(10)
	f := net.StartFlow(a, b, netsim.FlowConfig{
		Size: -1,
		CC:   WrapRogue(RogueBlast, nil, rate),
	})
	dur := 2 * sim.Millisecond
	engine.RunUntil(dur)
	f.Stop()
	got := float64(f.DeliveredBytes()) * 8 / dur.Seconds()
	if got < 0.8*float64(rate) || got > 1.1*float64(rate) {
		t.Errorf("blast delivered %.1f Gb/s, want ~%.1f", got/1e9, rate.Gbps())
	}
}
