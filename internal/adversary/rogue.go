package adversary

import (
	"fmt"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// RogueKind names a sender misbehaviour. Every kind wraps a real
// protocol controller, so any of the seven protocols can host a rogue —
// the receiver, the switch elements and the ACK machinery keep running
// the genuine protocol while the sender's reaction to feedback is
// subverted.
type RogueKind string

const (
	// RogueCNPDeaf swallows every congestion notification (RoCC/DCQCN
	// CNPs, DCTCP's CE echoes — anything landing in OnCNP) before the
	// controller sees it. Feedback carried on ACKs (HPCC INT, TIMELY
	// RTT) still reaches the controller: the rogue's NIC "loses" CNPs,
	// nothing else.
	RogueCNPDeaf RogueKind = "cnpdeaf"

	// RogueECNBlind is CNP-deaf plus ACK-signal stripping: CE marks and
	// echoed INT telemetry are cleared from every ACK before the
	// controller sees it, blinding window-based schemes (HPCC, DCTCP)
	// that CNP-deafness alone leaves functional.
	RogueECNBlind RogueKind = "ecnblind"

	// RogueBlast replaces the controller outright with a fixed-rate
	// pacer (line rate when the configured rate is zero): the incast
	// bomber's per-source behaviour, and the strongest misbehaviour —
	// no feedback of any kind is consulted.
	RogueBlast RogueKind = "blast"
)

// RogueKinds lists every kind, for sweeps and scenario generators.
func RogueKinds() []RogueKind {
	return []RogueKind{RogueCNPDeaf, RogueECNBlind, RogueBlast}
}

// ParseRogueKind validates a kind string (scenario JSON, CLI flags).
func ParseRogueKind(s string) (RogueKind, error) {
	switch k := RogueKind(s); k {
	case RogueCNPDeaf, RogueECNBlind, RogueBlast:
		return k, nil
	}
	return "", fmt.Errorf("adversary: unknown rogue kind %q", s)
}

// Rogue is a misbehaving flow controller wrapping a real one. It
// implements netsim.FlowCC plus the optional RouteAware/RetxAware/Stop
// contracts, forwarding each to the inner controller when it implements
// them — so a wrapped flow tears down and re-baselines exactly like an
// honest one.
type Rogue struct {
	kind  RogueKind
	inner netsim.FlowCC
	rate  netsim.Rate // blast pacing rate; zero = unpaced (line rate)
	pacer netsim.Pacer

	// Counters.
	SuppressedCNPs int // feedback packets swallowed
	StrippedAcks   int // ACKs whose CE/INT signals were cleared
}

// WrapRogue wraps a protocol controller in the given misbehaviour.
// blastRate only matters for RogueBlast (zero = no pacing, the NIC's
// line rate). The rate-cap-ignoring behaviour is not a wrapper concern:
// netsim enforces Flow.MaxRate in the flow itself, so a rogue simply
// starts with no cap (MaxRate 0) — see chaos and the rogue experiment.
func WrapRogue(kind RogueKind, inner netsim.FlowCC, blastRate netsim.Rate) *Rogue {
	if _, err := ParseRogueKind(string(kind)); err != nil {
		panic(err)
	}
	if inner == nil {
		inner = netsim.NoCC{}
	}
	return &Rogue{kind: kind, inner: inner, rate: blastRate}
}

// Kind returns the wrapped misbehaviour.
func (r *Rogue) Kind() RogueKind { return r.kind }

// Inner returns the genuine controller underneath.
func (r *Rogue) Inner() netsim.FlowCC { return r.inner }

// Allow implements netsim.FlowCC.
func (r *Rogue) Allow(now sim.Time, payload int) (sim.Time, bool) {
	if r.kind == RogueBlast {
		if r.rate > 0 {
			return r.pacer.Next(now), true
		}
		return now, true
	}
	return r.inner.Allow(now, payload)
}

// OnSent implements netsim.FlowCC.
func (r *Rogue) OnSent(now sim.Time, pkt *netsim.Packet) {
	if r.kind == RogueBlast {
		if r.rate > 0 {
			r.pacer.Consume(now, r.rate, pkt.Size)
		}
		return
	}
	r.inner.OnSent(now, pkt)
}

// OnAck implements netsim.FlowCC. The ECN-blind rogue clears the
// congestion signals an ACK carries (CE echo, INT telemetry) before the
// controller sees it; mutating the borrowed packet is safe because the
// host releases it only after this hook returns.
func (r *Rogue) OnAck(now sim.Time, pkt *netsim.Packet) {
	switch r.kind {
	case RogueBlast:
		return
	case RogueECNBlind:
		if pkt.CE || len(pkt.EchoINT) > 0 {
			pkt.CE = false
			pkt.EchoINT = pkt.EchoINT[:0]
			r.StrippedAcks++
		}
	}
	r.inner.OnAck(now, pkt)
}

// OnCNP implements netsim.FlowCC: every kind is deaf to it.
func (r *Rogue) OnCNP(now sim.Time, pkt *netsim.Packet) {
	r.SuppressedCNPs++
}

// CurrentRate implements netsim.FlowCC.
func (r *Rogue) CurrentRate() netsim.Rate {
	if r.kind == RogueBlast {
		return r.rate
	}
	return r.inner.CurrentRate()
}

// OnReroute implements netsim.RouteAware, forwarding when the inner
// controller cares (harmless either way — re-baselining an ignored
// controller changes nothing the rogue consults).
func (r *Rogue) OnReroute(now sim.Time) {
	if ra, ok := r.inner.(netsim.RouteAware); ok {
		ra.OnReroute(now)
	}
}

// OnRewind implements netsim.RetxAware.
func (r *Rogue) OnRewind(now sim.Time, seq int64) {
	if ra, ok := r.inner.(netsim.RetxAware); ok {
		ra.OnRewind(now, seq)
	}
}

// Stop forwards flow teardown so inner timers are cancelled.
func (r *Rogue) Stop() {
	if s, ok := r.inner.(interface{ Stop() }); ok {
		s.Stop()
	}
}

// CCProtocol implements netsim.ProtocolNamer for diagnostics.
func (r *Rogue) CCProtocol() string {
	return "rogue-" + string(r.kind)
}
