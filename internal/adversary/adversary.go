// Package adversary models misbehaving participants — and the
// switch-side defenses against them — for the RoCC reproduction. Where
// internal/faults perturbs the *environment* (lossy links, stalled
// timers, dead switches), this package perturbs the *actors*: senders
// that ignore congestion feedback, hosts that forge CNPs, switches that
// bleach or mis-apply ECN marks. The defenses are the two mechanisms
// deployed fabrics actually run: a per-flow compliance policer that
// quarantines flows sustained above their advertised fair share, and a
// PFC storm watchdog that disables the lossless class on a port whose
// pause has been asserted past a deadline.
//
// The paper's leverage appears exactly here: RoCC's fair rate is
// computed *by the switch*, so the switch knows what each flow was told
// and can police deviations; end-host schemes (DCQCN, TIMELY, DCTCP)
// only ever advise the sender and have nothing to enforce against.
//
// Design rules, shared with internal/faults:
//
//   - Deterministic: nothing here draws random numbers. Rogue wrappers,
//     forgers, overlays, policers and watchdogs are pure functions of
//     simulated time and the traffic they observe, so two runs with the
//     same seeds produce identical attack and defense sequences.
//
//   - Pay for what you use: a fabric with no adversary attachments runs
//     byte-identical to one where this package was never imported — the
//     netsim seams (Switch.Police, Port.SetLosslessOff) are nil/false by
//     default and cost at most a nil check per packet. A watchdog
//     attached to a storm-free fabric observes but never mutates, so its
//     presence preserves trajectories too (the zero-fault identity
//     contract, tested in watchdog_test.go).
//
//   - Injection sits at the simulator's seams (netsim.FlowCC wrapping,
//     Host.Send, Port.CC overlays, Switch.Police), never inside the
//     algorithms: every protocol sees rogues only as traffic that
//     ignores feedback, and defenses only as drops.
package adversary

import (
	"rocc/internal/netsim"
	"rocc/internal/telemetry"
)

// metrics bundles the defense instruments, resolved nil-safe from a
// network's registry (all nil when telemetry is disabled).
type metrics struct {
	detections *telemetry.Counter // policer quarantines entered
	releases   *telemetry.Counter // policer quarantines released
	trips      *telemetry.Counter // watchdog storm trips
	reenables  *telemetry.Counter // watchdog lossless re-enables
}

func metricsFrom(net *netsim.Network) metrics {
	reg := net.TelemetryRegistry()
	return metrics{
		detections: reg.Counter("adversary.police.detections"),
		releases:   reg.Counter("adversary.police.releases"),
		trips:      reg.Counter("adversary.watchdog.trips"),
		reenables:  reg.Counter("adversary.watchdog.reenables"),
	}
}

// record files an instant event into the network's flight recorder
// (nil-safe), tagging the defense action with its switch and flow/port.
func record(net *netsim.Network, name string, node netsim.NodeID, id int64, value float64) {
	net.Recorder().Record(telemetry.Event{
		At:    int64(net.Engine.Now()),
		Kind:  telemetry.KindInstant,
		Cat:   "adversary",
		Name:  name,
		Node:  int64(node),
		Flow:  id,
		Value: value,
	})
}
