package adversary

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
)

// forgeRig: victim a → sw → b under RoCC, attacker host c on the same
// switch injecting spoofed CNPs at the victim's reaction point.
func forgeRig(opts roccnet.RPOptions, forge ForgeConfig) (*roccnet.FlowCC, *netsim.Flow, *Forger, *sim.Engine) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	c := net.AddHost("c")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	net.Connect(b, sw, netsim.Gbps(40), 1500)
	net.Connect(c, sw, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	cc := roccnet.NewFlowCC(engine, a, opts)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, CC: cc})
	forge.Victim = f.ID
	fg := NewForger(c, forge)
	return cc, f, fg, engine
}

// offPathCP is a congestion point no packet of the victim ever crossed.
var offPathCP = netsim.CPID{Node: 66, Port: 3}

// TestForgedCNPThrottlesUndefendedRP: without the witness, spoofed CNPs
// advertising a tiny fair rate are indistinguishable from genuine
// feedback and collapse the victim (5 ΔF units = 50 Mb/s).
func TestForgedCNPThrottlesUndefendedRP(t *testing.T) {
	cc, _, fg, engine := forgeRig(roccnet.RPOptions{}, ForgeConfig{
		CP: offPathCP, RateUnits: 5,
	})
	engine.RunUntil(2 * sim.Millisecond)
	if fg.Sent == 0 {
		t.Fatal("forger injected nothing")
	}
	if got := cc.CurrentRate(); got > netsim.Gbps(1) {
		t.Errorf("undefended victim still at %.2f Gb/s — the spoof should have throttled it",
			got.Gbps())
	}
	if cc.RP().CNPsAccepted == 0 {
		t.Error("undefended RP accepted no forged CNPs")
	}
}

// TestPathWitnessDefeatsSpoofedCP: VerifyCPPath learns the victim's real
// path and rejects the off-path origin — the rate never moves.
func TestPathWitnessDefeatsSpoofedCP(t *testing.T) {
	cc, _, fg, engine := forgeRig(roccnet.RPOptions{VerifyCPPath: true}, ForgeConfig{
		CP: offPathCP, RateUnits: 5,
	})
	engine.RunUntil(2 * sim.Millisecond)
	if fg.Sent == 0 {
		t.Fatal("forger injected nothing")
	}
	rp := cc.RP()
	if rp.CNPsSpoofed == 0 {
		t.Error("witness detected no spoofs")
	}
	if rp.CNPsAccepted != 0 || rp.Installed() {
		t.Errorf("spoofed CNP got through the witness: accepted=%d installed=%v",
			rp.CNPsAccepted, rp.Installed())
	}
	if got := cc.CurrentRate(); got != netsim.Gbps(40) {
		t.Errorf("defended victim throttled to %.2f Gb/s by rejected spoofs", got.Gbps())
	}
}

// TestMaxCNPAgeDefeatsReplay: a replayed capture (backdated send stamp)
// fails the age check before it can steer the rate.
func TestMaxCNPAgeDefeatsReplay(t *testing.T) {
	cc, _, fg, engine := forgeRig(
		roccnet.RPOptions{MaxCNPAge: 250 * sim.Microsecond},
		ForgeConfig{CP: offPathCP, RateUnits: 5, StampAge: sim.Millisecond},
	)
	engine.RunUntil(2 * sim.Millisecond)
	if fg.Sent == 0 {
		t.Fatal("forger injected nothing")
	}
	if cc.Replays == 0 {
		t.Error("no replays detected")
	}
	if cc.RP().CNPsAccepted != 0 {
		t.Error("replayed CNP accepted")
	}
	if got := cc.CurrentRate(); got != netsim.Gbps(40) {
		t.Errorf("victim throttled to %.2f Gb/s by replayed CNPs", got.Gbps())
	}
}

// TestForgerStopsWithVictim: the attack ends when the victim flow goes
// away — no injections into a flow the network no longer knows.
func TestForgerStopsWithVictim(t *testing.T) {
	_, f, fg, engine := forgeRig(roccnet.RPOptions{}, ForgeConfig{
		CP: offPathCP, RateUnits: 5,
	})
	engine.RunUntil(500 * sim.Microsecond)
	f.Stop()
	// Flow teardown is deferred past the drain, so a few in-flight ticks
	// may still land; once the network forgets the flow, silence.
	engine.RunUntil(sim.Millisecond)
	sentAfterDrain := fg.Sent
	engine.RunUntil(3 * sim.Millisecond)
	if fg.Sent != sentAfterDrain {
		t.Errorf("forger kept injecting after the victim left: %d → %d", sentAfterDrain, fg.Sent)
	}
}

// TestForgerUntilBound: a bounded attack stops at its deadline.
func TestForgerUntilBound(t *testing.T) {
	_, _, fg, engine := forgeRig(roccnet.RPOptions{}, ForgeConfig{
		CP: offPathCP, RateUnits: 5, Until: 400 * sim.Microsecond,
	})
	engine.RunUntil(2 * sim.Millisecond)
	// 40 µs cadence into a 400 µs budget: about ten injections, not fifty.
	if fg.Sent == 0 || fg.Sent > 11 {
		t.Errorf("bounded forger sent %d CNPs, want ~10", fg.Sent)
	}
}
