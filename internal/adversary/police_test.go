package adversary

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// star builds nSrc source hosts feeding one destination through a single
// switch with 40G links — the incast fixture the policer defends.
func star(nSrc int) (*sim.Engine, *netsim.Network, []*netsim.Host, *netsim.Host, *netsim.Switch) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	dst := net.AddHost("dst")
	net.Connect(sw, dst, netsim.Gbps(40), 1500)
	srcs := make([]*netsim.Host, nSrc)
	for i := range srcs {
		srcs[i] = net.AddHost("src")
		net.Connect(srcs[i], sw, netsim.Gbps(40), 1500)
	}
	net.ComputeRoutes()
	return engine, net, srcs, dst, sw
}

// TestPolicerQuarantinesBlaster: four victims pace at their 8G fair
// share; one rogue blasts at line rate. The policer must quarantine the
// rogue (and only the rogue), and the victims must recover goodput they
// lose in the undefended run.
func TestPolicerQuarantinesBlaster(t *testing.T) {
	const dur = 3 * sim.Millisecond
	run := func(defended bool) (victimBytes int64, p *Policer, rogueID netsim.FlowID, net *netsim.Network) {
		engine, net, srcs, dst, sw := star(5)
		if defended {
			p = NewPolicer(net, sw, PolicerConfig{})
		}
		victims := make([]*netsim.Flow, 4)
		for i := range victims {
			victims[i] = net.StartFlow(srcs[i], dst, netsim.FlowConfig{
				Size: -1, MaxRate: netsim.Gbps(8),
			})
		}
		rogue := net.StartFlow(srcs[4], dst, netsim.FlowConfig{Size: -1})
		engine.RunUntil(dur)
		for _, v := range victims {
			victimBytes += v.DeliveredBytes()
		}
		return victimBytes, p, rogue.ID, net
	}

	undefended, _, _, _ := run(false)
	defended, p, rogueID, net := run(true)

	if p.Stats().Detections < 1 {
		t.Fatalf("policer never detected the blaster: %+v", p.Stats())
	}
	if !p.Quarantined(rogueID) {
		t.Error("the blaster is not the quarantined flow")
	}
	if got := p.CurrentQuarantined(); got != p.Stats().Detections-p.Stats().Releases {
		t.Errorf("quarantine accounting: current=%d detections=%d releases=%d",
			got, p.Stats().Detections, p.Stats().Releases)
	}
	if p.CurrentQuarantined() != 1 {
		t.Errorf("quarantined %d flows, want only the rogue", p.CurrentQuarantined())
	}
	if net.PolicedDrops() == 0 {
		t.Error("quarantine enforced nothing (no policed drops)")
	}
	// Policed drops are not lossless-contract violations.
	if net.TotalDrops() != 0 {
		t.Errorf("policing leaked into tail-drop accounting: %d", net.TotalDrops())
	}
	if float64(defended) < 1.3*float64(undefended) {
		t.Errorf("victims gained too little from policing: %d defended vs %d undefended bytes",
			defended, undefended)
	}
}

// TestPolicerReleasesCompliantFlow: a mis-flagged flow that stays within
// its share is released after the exit hysteresis (satellite: hysteresis
// and release path, exercised via the ForceQuarantine regression hook).
func TestPolicerReleasesCompliantFlow(t *testing.T) {
	engine, net, srcs, dst, sw := star(2)
	p := NewPolicer(net, sw, PolicerConfig{})
	f := net.StartFlow(srcs[0], dst, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(2)})
	engine.RunUntil(200 * sim.Microsecond)
	p.ForceQuarantine(f.ID, netsim.Gbps(1))
	if !p.Quarantined(f.ID) {
		t.Fatal("ForceQuarantine did not quarantine")
	}
	// ReleaseAfter(8) × Window(100µs) of compliant offered load.
	engine.RunUntil(200*sim.Microsecond + 12*100*sim.Microsecond)
	if p.Quarantined(f.ID) {
		t.Error("compliant flow never released")
	}
	st := p.Stats()
	if st.Releases != 1 || st.Detections != 1 {
		t.Errorf("stats after release: %+v", st)
	}
	if p.CurrentQuarantined() != 0 {
		t.Errorf("CurrentQuarantined = %d after release", p.CurrentQuarantined())
	}
}

// TestPolicerRequireAdvertised: with RequireAdvertised the policer holds
// fire on egresses without a contract — the same line-rate blaster that
// trips the equal-split fallback is untouched until an advertised rate
// appears, and is quarantined once one does.
func TestPolicerRequireAdvertised(t *testing.T) {
	run := func(advertise bool) (*Policer, netsim.FlowID) {
		engine, net, srcs, dst, sw := star(3)
		cfg := PolicerConfig{RequireAdvertised: true}
		if advertise {
			cfg.AdvertisedRate = func(port *netsim.Port) (netsim.Rate, bool) {
				return netsim.Gbps(10), true
			}
		}
		p := NewPolicer(net, sw, cfg)
		for i := 0; i < 2; i++ {
			net.StartFlow(srcs[i], dst, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(8)})
		}
		rogue := net.StartFlow(srcs[2], dst, netsim.FlowConfig{Size: -1})
		engine.RunUntil(3 * sim.Millisecond)
		return p, rogue.ID
	}

	p, _ := run(false)
	if st := p.Stats(); st.Detections != 0 || st.Drops != 0 {
		t.Errorf("policer acted without an advertised contract: %+v", st)
	}
	p, rogueID := run(true)
	if p.Stats().Detections < 1 || !p.Quarantined(rogueID) {
		t.Errorf("advertised contract present but blaster not quarantined: %+v", p.Stats())
	}
}

// TestPolicerDoubleAttachPanics: a switch carries at most one Police hook.
func TestPolicerDoubleAttachPanics(t *testing.T) {
	_, net, _, _, sw := star(1)
	NewPolicer(net, sw, PolicerConfig{})
	defer func() {
		if recover() == nil {
			t.Error("second policer on one switch did not panic")
		}
	}()
	NewPolicer(net, sw, PolicerConfig{})
}

// TestPolicerIdentityOnCompliantFabric: attaching a policer to a fabric
// whose flows all stay within share must not perturb the trajectory —
// the same bytes in the same virtual time (the zero-fault identity
// contract, as in internal/faults).
func TestPolicerIdentityOnCompliantFabric(t *testing.T) {
	run := func(defended bool) (int64, sim.Time) {
		engine, net, srcs, dst, sw := star(2)
		if defended {
			NewPolicer(net, sw, PolicerConfig{})
		}
		f := net.StartFlow(srcs[0], dst, netsim.FlowConfig{
			Size: 400_000, MaxRate: netsim.Gbps(10),
		})
		g := net.StartFlow(srcs[1], dst, netsim.FlowConfig{
			Size: 400_000, MaxRate: netsim.Gbps(10),
		})
		engine.RunUntil(5 * sim.Millisecond)
		if !f.Done() || !g.Done() {
			t.Fatal("flows incomplete")
		}
		return f.DeliveredBytes() + g.DeliveredBytes(), f.FCT() + g.FCT()
	}
	bytes0, t0 := run(false)
	bytes1, t1 := run(true)
	if bytes0 != bytes1 || t0 != t1 {
		t.Errorf("compliant run diverged under policing: %d/%v vs %d/%v",
			bytes0, t0, bytes1, t1)
	}
}
