package roccnet

import "rocc/internal/netsim"

// Ops is RoCC's netsim.CongestionOps descriptor: congestion points on
// switch egress ports, reaction points as flow controllers, no receiver
// hook (CNPs come from switches), no ACK cadence requirement.
//
// CP and RP point at the composer's live option structs so ablation hooks
// that mutate options between construction and wiring (fig. 13's table
// sweep, the chaos runner's StaleK) keep working: options are read at
// attach / flow-start time, exactly as the pre-descriptor stack did.
type Ops struct {
	CP *CPOptions
	RP *RPOptions

	// CPs collects attached congestion points for instrumentation,
	// keyed by port. Assign a shared map to observe attachments from
	// outside; NewOps allocates one otherwise.
	CPs map[*netsim.Port]*CP
}

// NewOps builds the RoCC descriptor around live CP/RP option structs.
func NewOps(cp *CPOptions, rp *RPOptions) *Ops {
	return &Ops{CP: cp, RP: rp, CPs: make(map[*netsim.Port]*CP)}
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "RoCC" }

// Features implements netsim.CongestionOps.
func (o *Ops) Features() netsim.CCFeatures {
	return netsim.CCFeatures{UsesCNP: true, CNPClass: o.CP.CNPClass}
}

// AttachPort implements netsim.CongestionOps: install a congestion point
// and start its fair-rate timer.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	cp := Attach(net, sw, port, *o.CP)
	o.CPs[port] = cp
	return cp
}

// NewReceiver implements netsim.CongestionOps: RoCC receivers take no
// protocol action.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook { return nil }

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src.Engine(), src, *o.RP)
}

// AckEvery implements netsim.CongestionOps: RoCC needs no flow ACKs.
func (o *Ops) AckEvery(src *netsim.Host) int { return 0 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (cp *CP) CCProtocol() string { return "RoCC" }
