package roccnet

import (
	"rocc/internal/core"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// RPOptions configures the per-flow reaction point.
type RPOptions struct {
	// RmaxMbps is the maximum send rate (the NIC link bandwidth).
	RmaxMbps float64

	// DeltaFMbps is ΔF; must match the CPs. Defaults to 10.
	DeltaFMbps float64

	// RecoveryTimer is the fast-recovery interval (Alg. 2's timer).
	// It must comfortably exceed the CP update interval T, or a flow
	// doubles its rate between two consecutive CNPs it legitimately
	// receives and the loop never settles. Defaults to 200 µs (T is
	// 40-100 µs in the paper's configurations).
	RecoveryTimer sim.Time

	// HostRegistry, when non-nil, enables the §3.6 host-computed mode:
	// the RP replicates the CP's fair-rate computation from raw queue
	// observations using this per-CP parameter registry.
	HostRegistry func(cp core.CPKey) core.CPConfig

	// HostT is the CP update interval assumed by the host replica in
	// host-computed mode. When CNPs stop flowing (the flow left the
	// congested queue), the replica runs catch-up iterations with empty
	// queue observations for the missed intervals, exactly as the
	// switch-side controller would have. Defaults to 40 µs.
	HostT sim.Time

	// StaleK is the feedback-staleness threshold forwarded to the core
	// RP: after StaleK consecutive recovery expiries without an accepted
	// CNP the RP unpins its congestion point and accepts the next valid
	// CNP unconditionally. Zero (the default) disables staleness
	// handling; fault-tolerant deployments set core.DefaultStaleK.
	StaleK int

	// MaxRateUnits overrides the core RP's corrupt-feedback bound.
	MaxRateUnits int

	// VerifyCPPath arms the forged-feedback defense: CNPs claiming a
	// congestion point off the flow's current ECMP path (per
	// netsim.FlowPathCPs) are rejected as spoofed. The witness set is
	// learned lazily at the first CNP and extended after each reroute —
	// extended, not replaced, so in-flight CNPs from a just-abandoned
	// path are still honored. Off by default: the witness changes which
	// CNPs a misbehaving fabric can land, so only adversarial
	// deployments opt in.
	VerifyCPPath bool

	// MaxCNPAge, when positive, rejects CNPs whose send timestamp is
	// older than this by delivery time (which includes the host's RP
	// delay) — the replay defense. A recorded CNP replayed later to
	// drag a victim's rate down fails this check. Zero disables it.
	MaxCNPAge sim.Time
}

func (o *RPOptions) fill() {
	if o.DeltaFMbps == 0 {
		o.DeltaFMbps = 10
	}
	if o.RecoveryTimer == 0 {
		o.RecoveryTimer = 200 * sim.Microsecond
	}
	if o.HostT == 0 {
		o.HostT = 40 * sim.Microsecond
	}
}

// maxQueueUnits bounds a host-computed CNP's raw queue observation: in
// ΔQ units of 600 B this is ~10 GB of queue, far past any real buffer.
const maxQueueUnits = 1 << 24

// FlowCC is the RoCC reaction point as a netsim flow controller: it paces
// the flow at the fair rate of its most congested CP and exponentially
// recovers when CNPs stop (§3.5).
type FlowCC struct {
	engine *sim.Engine
	host   *netsim.Host
	opts   RPOptions

	rp       *core.RP
	hostCP   *core.HostCP
	lastCNPs map[core.CPKey]sim.Time
	pacer    netsim.Pacer
	timer    sim.Handle

	// Path-witness state (VerifyCPPath): the set of CPKeys on the
	// flow's path, learned at the first CNP; relearn asks for a
	// refresh after a reroute. Replays counts CNPs rejected for age.
	pathCPs map[core.CPKey]bool
	relearn bool
	Replays int

	// Telemetry (nil-safe; resolved from the host's network at build).
	rec  *telemetry.Recorder
	flow int64 // learned from the first packet seen, for event labelling
}

// NewFlowCC builds a reaction point for a flow originating at host.
func NewFlowCC(engine *sim.Engine, host *netsim.Host, opts RPOptions) *FlowCC {
	opts.fill()
	if opts.RmaxMbps == 0 {
		opts.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	cc := &FlowCC{
		engine: engine,
		host:   host,
		opts:   opts,
	}
	cfg := core.RPConfig{
		DeltaFMbps:   opts.DeltaFMbps,
		RmaxMbps:     opts.RmaxMbps,
		StaleK:       opts.StaleK,
		MaxRateUnits: opts.MaxRateUnits,
	}
	if opts.VerifyCPPath {
		cfg.Witness = cc.witnessCP
	}
	cc.rp = core.NewRP(cfg)
	if opts.HostRegistry != nil {
		cc.hostCP = core.NewHostCP(opts.HostRegistry)
	}
	cc.rp.SetTelemetry(core.RPTelemetryFrom(host.Network().TelemetryRegistry()))
	cc.rec = host.Network().Recorder()
	return cc
}

// RP exposes the underlying Alg. 2 state for instrumentation.
func (cc *FlowCC) RP() *core.RP { return cc.rp }

// Allow implements netsim.FlowCC: unconstrained until the rate limiter is
// installed, then paced at the accepted fair rate.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	if !cc.rp.Installed() {
		return now, true
	}
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	if cc.rp.Installed() {
		cc.pacer.Consume(now, netsim.Mbps(cc.rp.RateMbps()), pkt.Size)
	}
}

// OnAck implements netsim.FlowCC. RoCC does not use ACKs.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {}

// OnCNP implements netsim.FlowCC: Alg. 2's Process_CNP.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {
	info := pkt.CNP
	if info == nil {
		return
	}
	if cc.opts.MaxCNPAge > 0 && now-pkt.SendTS > cc.opts.MaxCNPAge {
		// Too old to describe the path's current state: a replayed (or
		// absurdly delayed) CNP must not steer the rate limiter.
		cc.Replays++
		cc.rp.CountRejected()
		return
	}
	if cc.opts.VerifyCPPath && (cc.pathCPs == nil || cc.relearn) {
		cc.learnPath(pkt.Flow)
	}
	cpKey := core.CPKey{Node: int64(info.CP.Node), Port: info.CP.Port}
	rateUnits := info.RateUnits
	if info.HostComputed {
		// Raw queue observations feed the local CP replica, which carries
		// state across CNPs — garbage here would poison every later rate,
		// not just this one. Reject it before Compute. Real queues are at
		// most a few MB (thousands of ΔQ units); 1<<24 units is ~10 GB.
		if info.QCurUnits < 0 || info.QOldUnits < 0 ||
			info.QCurUnits > maxQueueUnits || info.QOldUnits > maxQueueUnits {
			cc.rp.CountRejected()
			return
		}
		if cc.hostCP == nil {
			cc.hostCP = core.NewHostCP(nil)
		}
		if cc.lastCNPs == nil {
			cc.lastCNPs = make(map[core.CPKey]sim.Time)
		}
		// Catch up on intervals the CP computed but did not signal to
		// this flow (it was not contributing to the queue then, so the
		// queue it would have reported is approximated as empty).
		if last, ok := cc.lastCNPs[cpKey]; ok {
			missed := int((now-last)/cc.opts.HostT) - 1
			if missed > 256 {
				missed = 256
			}
			for i := 0; i < missed; i++ {
				cc.hostCP.Compute(cpKey, 0, 0)
			}
		}
		cc.lastCNPs[cpKey] = now
		rateUnits = cc.hostCP.Compute(cpKey, info.QCurUnits, info.QOldUnits)
	}
	cc.flow = int64(pkt.Flow)
	if cc.rp.ProcessCNP(rateUnits, cpKey) {
		cc.recordRate(now)
		cc.resetTimer()
	}
}

// OnReroute implements netsim.RouteAware: a route reconvergence may have
// moved the flow onto a path with different congestion points, so the
// pinned CP's fair rate is suspect. Re-homing rides the existing StaleK
// machinery — SuspectStale is a no-op when staleness handling is
// disabled, preserving byte-identity for fabrics that opt out.
func (cc *FlowCC) OnReroute(now sim.Time) {
	cc.relearn = cc.pathCPs != nil // refresh the witness set at the next CNP
	cc.rp.SuspectStale()
}

// learnPath extends the witness set with the congestion points on the
// flow's current ECMP path. Entries accumulate across reroutes so a CNP
// emitted on the old path just before the switch-over still validates.
func (cc *FlowCC) learnPath(flow netsim.FlowID) {
	cc.relearn = false
	net := cc.host.Network()
	f := net.Flow(flow)
	if f == nil {
		return
	}
	cps := net.FlowPathCPs(flow, f.Src().ID(), f.Dst().ID())
	if len(cps) == 0 {
		return
	}
	if cc.pathCPs == nil {
		cc.pathCPs = make(map[core.CPKey]bool, len(cps))
	}
	for _, id := range cps {
		cc.pathCPs[core.CPKey{Node: int64(id.Node), Port: id.Port}] = true
	}
}

// witnessCP is the core.RPConfig.Witness hook: before the path is
// learned every origin validates (the first CNP both teaches the path
// and is judged against it — learnPath runs ahead of ProcessCNP in
// OnCNP, so a spoofed first CNP is still caught).
func (cc *FlowCC) witnessCP(cp core.CPKey) bool {
	return cc.pathCPs == nil || cc.pathCPs[cp]
}

// recordRate files the RP's current rate as a per-flow counter track, so
// the Chrome trace shows each flow's rate trajectory next to the CP's
// fair-rate signal and the queue depth.
func (cc *FlowCC) recordRate(now sim.Time) {
	cc.rec.Record(telemetry.Event{
		At:    int64(now),
		Kind:  telemetry.KindCounter,
		Cat:   "rocc",
		Name:  "rp_rate_mbps",
		Node:  int64(cc.host.ID()),
		Flow:  cc.flow,
		Value: cc.rp.RateMbps(),
	})
}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate {
	if !cc.rp.Installed() {
		return netsim.Mbps(cc.opts.RmaxMbps)
	}
	return netsim.Mbps(cc.rp.RateMbps())
}

// Stop cancels the fast-recovery timer (flow teardown).
func (cc *FlowCC) Stop() {
	cc.timer.Cancel()
}

func (cc *FlowCC) resetTimer() {
	cc.timer.Cancel()
	// AfterCall with a package-level func: the recovery timer re-arms on
	// every accepted CNP, so it must not allocate a bound-method closure.
	cc.timer = cc.engine.AfterCall(cc.opts.RecoveryTimer, recoveryExpired, cc, nil)
}

// recoveryExpired is Alg. 2's Timer_Expired: double the rate, or uninstall
// the rate limiter once it exceeds Rmax.
func recoveryExpired(a, _ any) {
	cc := a.(*FlowCC)
	cc.timer = sim.Handle{}
	if cc.rp.TimerExpired() {
		// Rate limiter removed; the flow transmits unconstrained until
		// the next CNP. No timer needed.
		cc.pacer.Reset()
	} else {
		cc.recordRate(cc.engine.Now())
		cc.resetTimer()
	}
	cc.host.Kick()
}
