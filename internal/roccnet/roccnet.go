// Package roccnet binds the pure RoCC algorithms in internal/core to the
// packet-level simulator in internal/netsim: the congestion point attaches
// to switch egress ports (fair-rate timer, flow table, CNP generation) and
// the reaction point implements netsim.FlowCC (rate limiting, fast
// recovery).
package roccnet

import (
	"fmt"

	"rocc/internal/core"
	"rocc/internal/flowtable"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// CPOptions configures one congestion point (an egress port).
type CPOptions struct {
	// Core holds the Alg. 1 parameters. Zero value selects defaults for
	// the port's link bandwidth via core.CPConfigForGbps.
	Core core.CPConfig

	// T is the fair-rate update interval (40 µs in §6).
	T sim.Time

	// Table selects the flow-table implementation (§3.4). Nil uses the
	// paper's default, the queue-occupancy table.
	Table flowtable.Table

	// HostComputed enables the §3.6 mode: CNPs carry raw queue
	// observations and hosts replicate the fair-rate computation.
	HostComputed bool

	// CNPClass is the traffic class CNPs travel in. The paper prioritizes
	// them (ClassCtrl); the ablation benches demote them to ClassData.
	CNPClass netsim.Class

	// MinSignalBytes suppresses feedback while the egress queue is below
	// this occupancy: an (almost) empty queue has no congestion to
	// signal, and §3.4 sends feedback only to flows contributing to
	// queue buildup. Without this, a CP recovering from an MD floor
	// keeps re-trapping transiting flows at its stale-low rate. Zero
	// defaults to two full packets; negative disables the floor.
	MinSignalBytes int
}

// CP is a RoCC congestion point attached to one switch egress port.
type CP struct {
	net      *netsim.Network
	sw       *netsim.Switch
	port     *netsim.Port
	core     *core.CP
	table    flowtable.Table
	opts     CPOptions
	tick     *sim.Ticker
	hostQold int // previous observation in ΔQ units (host-computed mode)

	// CNPsSent counts feedback messages generated.
	CNPsSent uint64

	// Telemetry (nil-safe; resolved from the network at Attach).
	rec      *telemetry.Recorder
	tmCNPs   *telemetry.Counter
	tmFair   *telemetry.Histogram
}

// Attach installs a RoCC congestion point on the given egress port of sw
// and starts its fair-rate timer.
func Attach(net *netsim.Network, sw *netsim.Switch, port *netsim.Port, opts CPOptions) *CP {
	if opts.Core.DeltaFMbps == 0 {
		opts.Core = core.CPConfigForGbps(port.LinkRate.Gbps())
	}
	if opts.T == 0 {
		opts.T = 40 * sim.Microsecond
	}
	if opts.Table == nil {
		opts.Table = flowtable.NewQueueTable()
	}
	if opts.MinSignalBytes == 0 {
		opts.MinSignalBytes = 2 * (netsim.MTUPayload + netsim.HeaderBytes)
	}
	cp := &CP{
		net:   net,
		sw:    sw,
		port:  port,
		core:  core.NewCP(opts.Core),
		table: opts.Table,
		opts:  opts,
	}
	port.CC = cp
	reg := net.TelemetryRegistry()
	cp.rec = net.Recorder()
	cp.tmCNPs = reg.Counter("rocc.cp.cnps_sent")
	cp.tmFair = reg.Histogram("rocc.cp.fair_rate_mbps")
	if reg != nil {
		// Per-CP fair-rate gauge, evaluated lazily at snapshot time.
		name := fmt.Sprintf("rocc.cp.n%dp%d.fair_rate_mbps", sw.ID(), port.Index)
		reg.GaugeFunc(name, cp.FairRateMbps)
	}
	// The fair-rate timer runs on the switch's engine so sharded runs
	// keep every CP local to its shard.
	cp.tick = port.Engine().NewTicker(opts.T, cp.update)
	return cp
}

// Stop cancels the fair-rate timer.
func (cp *CP) Stop() { cp.tick.Stop() }

// Core exposes the underlying Alg. 1 state for instrumentation.
func (cp *CP) Core() *core.CP { return cp.core }

// FairRateMbps returns the current fair rate in Mb/s.
func (cp *CP) FairRateMbps() float64 { return cp.core.FairRateMbps() }

// ID returns the congestion-point identifier carried in CNPs.
func (cp *CP) ID() netsim.CPID {
	return netsim.CPID{Node: cp.sw.ID(), Port: cp.port.Index}
}

// OnEnqueue implements netsim.PortCC.
func (cp *CP) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	cp.table.OnEnqueue(now, flowtable.FlowID(pkt.Flow), pkt.Size)
}

// OnDequeue implements netsim.PortCC.
func (cp *CP) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	cp.table.OnDequeue(now, flowtable.FlowID(pkt.Flow), pkt.Size)
}

// update runs once per T: compute the fair rate from the egress queue and
// send a CNP to every flow-table recipient (§3.2-§3.4).
func (cp *CP) update() {
	now := cp.port.Engine().Now()
	qcur := cp.port.DataQueueBytes()
	var rateUnits, qoldUnits int
	if cp.opts.HostComputed {
		qoldUnits = cp.hostQold
		cp.hostQold = qcur / cp.opts.Core.DeltaQBytes
	} else {
		rateUnits = cp.core.Update(qcur)
		cp.tmFair.Observe(int64(cp.core.FairRateMbps()))
		cp.rec.Record(telemetry.Event{
			At:    int64(now),
			Kind:  telemetry.KindCounter,
			Cat:   "rocc",
			Name:  "fair_rate_mbps",
			Node:  int64(cp.sw.ID()),
			Tid:   int64(cp.port.Index),
			Value: cp.core.FairRateMbps(),
		})
	}
	if !cp.opts.HostComputed && qcur < cp.opts.MinSignalBytes {
		// No congestion to signal (§3.4). In host-computed mode CNPs
		// keep flowing: the queue observation itself is the signal, and
		// a near-empty observation raises the replica's rate rather
		// than trapping the flow at a stale value.
		return
	}
	recipients := cp.table.Flows(now, nil)
	if len(recipients) == 0 {
		return
	}
	cpid := cp.ID()
	for _, fid := range recipients {
		f := cp.net.Flow(netsim.FlowID(fid))
		if f == nil {
			continue
		}
		cnp := cp.net.AcquirePacketFor(cp.sw)
		cnp.Flow = f.ID
		cnp.Src = cp.sw.ID()
		cnp.Dst = f.Src().ID()
		cnp.Kind = netsim.KindCNP
		cnp.Cls = cp.opts.CNPClass
		cnp.Size = netsim.CNPBytes
		cnp.SendTS = now
		info := cnp.EnsureCNP()
		info.CP = cpid
		info.RateUnits = rateUnits
		if cp.opts.HostComputed {
			info.HostComputed = true
			info.QCurUnits = qcur / cp.opts.Core.DeltaQBytes
			info.QOldUnits = qoldUnits
		}
		cp.sw.Inject(cnp)
		cp.CNPsSent++
		cp.tmCNPs.Inc()
	}
}
