package roccnet

import (
	"math"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// buildStar creates n sources and one destination behind a single switch
// with RoCC enabled on the bottleneck egress, returning the network, the
// sources, the destination, and the congestion point.
func buildStar(t testing.TB, engine *sim.Engine, n int, gbps float64) (*netsim.Network, []*netsim.Host, *netsim.Host, *CP) {
	t.Helper()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s0", netsim.BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: 500 * netsim.KB,
	})
	dst := net.AddHost("dst")
	srcs := make([]*netsim.Host, n)
	rate := netsim.Gbps(gbps)
	delay := 1500 * sim.Nanosecond
	for i := range srcs {
		srcs[i] = net.AddHost("src")
		net.Connect(srcs[i], sw, rate, delay)
	}
	swPort, _ := net.Connect(sw, dst, rate, delay)
	net.ComputeRoutes()
	cp := Attach(net, sw, swPort, CPOptions{})
	return net, srcs, dst, cp
}

func TestStarConvergesToFairRate(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 2, 40)
	var flows []*netsim.Flow
	for _, src := range srcs {
		cc := NewFlowCC(engine, src, RPOptions{})
		flows = append(flows, net.StartFlow(src, dst, netsim.FlowConfig{
			Size:    -1,
			MaxRate: netsim.Gbps(36), // 90% offered load
			CC:      cc,
		}))
	}
	engine.RunUntil(5 * sim.Millisecond)
	var midDelivered int64
	for _, f := range flows {
		midDelivered += f.DeliveredBytes()
	}
	engine.RunUntil(10 * sim.Millisecond)

	fair := cp.FairRateMbps()
	if math.Abs(fair-20000) > 2000 {
		t.Errorf("fair rate = %.0f Mb/s, want ~20000", fair)
	}
	q := cp.port.DataQueueBytes()
	if q < 100*netsim.KB || q > 220*netsim.KB {
		t.Errorf("queue = %d B, want near Qref=150KB", q)
	}
	d0 := flows[0].DeliveredBytes()
	d1 := flows[1].DeliveredBytes()
	ratio := float64(d0) / float64(d1)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("delivered bytes ratio = %.2f (d0=%d d1=%d), want ~1", ratio, d0, d1)
	}
	// Bottleneck should be nearly fully utilized at steady state.
	total := float64(d0+d1-midDelivered) * 8 / 0.005
	if total < 0.9*40e9 {
		t.Errorf("steady-state goodput = %.1f Gb/s, want > 36", total/1e9)
	}
	if net.TotalPFCFrames() != 0 {
		t.Logf("note: %d PFC frames generated", net.TotalPFCFrames())
	}
}
