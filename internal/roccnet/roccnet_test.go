package roccnet

import (
	"math"
	"testing"

	"rocc/internal/core"
	"rocc/internal/flowtable"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestFairnessAcrossN(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		engine := sim.New()
		net, srcs, dst, cp := buildStar(t, engine, n, 40)
		var flows []*netsim.Flow
		for _, src := range srcs {
			flows = append(flows, net.StartFlow(src, dst, netsim.FlowConfig{
				Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, src, RPOptions{}),
			}))
		}
		engine.RunUntil(15 * sim.Millisecond)
		want := 40000.0 / float64(n)
		if got := cp.FairRateMbps(); math.Abs(got-want)/want > 0.1 {
			t.Errorf("N=%d: fair rate %v, want ~%v", n, got, want)
		}
		var min, max int64 = 1 << 62, 0
		for _, f := range flows {
			d := f.DeliveredBytes()
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if float64(max-min)/float64(max) > 0.25 {
			t.Errorf("N=%d: delivered spread %d..%d too wide", n, min, max)
		}
	}
}

func TestQueueStabilizesAtQref(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 4, 40)
	for _, src := range srcs {
		net.StartFlow(src, dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, src, RPOptions{}),
		})
	}
	var sum, count float64
	engine.NewTicker(100*sim.Microsecond, func() {
		if engine.Now() > 8*sim.Millisecond {
			sum += float64(cp.port.DataQueueBytes())
			count++
		}
	})
	engine.RunUntil(16 * sim.Millisecond)
	avg := sum / count
	if math.Abs(avg-150_000) > 30_000 {
		t.Errorf("steady queue %f bytes, want ~Qref=150000", avg)
	}
}

func TestCNPCarriesCPIdentity(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 2, 40)
	cc := NewFlowCC(engine, srcs[0], RPOptions{})
	net.StartFlow(srcs[0], dst, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(36), CC: cc})
	net.StartFlow(srcs[1], dst, netsim.FlowConfig{
		Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, srcs[1], RPOptions{}),
	})
	engine.RunUntil(5 * sim.Millisecond)
	if !cc.RP().Installed() {
		t.Fatal("rate limiter never installed")
	}
	want := core.CPKey{Node: int64(cp.sw.ID()), Port: cp.port.Index}
	if cc.RP().CurrentCP() != want {
		t.Errorf("CPcur = %+v, want %+v", cc.RP().CurrentCP(), want)
	}
}

func TestFastRecoveryUninstallsAfterCongestionEnds(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, _ := buildStar(t, engine, 2, 40)
	cc0 := NewFlowCC(engine, srcs[0], RPOptions{})
	f0 := net.StartFlow(srcs[0], dst, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(36), CC: cc0})
	f1 := net.StartFlow(srcs[1], dst, netsim.FlowConfig{
		Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, srcs[1], RPOptions{}),
	})
	engine.RunUntil(8 * sim.Millisecond)
	if !cc0.RP().Installed() {
		t.Fatal("RL not installed under congestion")
	}
	f1.Stop() // congestion ends; offered 36 < 40, queue drains
	engine.RunUntil(20 * sim.Millisecond)
	if cc0.RP().Installed() {
		t.Errorf("RL still installed %v after congestion ended (rate %v)",
			engine.Now(), cc0.RP().RateMbps())
	}
	// The freed flow must be back near its offered rate.
	before := f0.DeliveredBytes()
	engine.RunUntil(25 * sim.Millisecond)
	gbps := float64(f0.DeliveredBytes()-before) * 8 / 0.005 / 1e9
	if gbps < 33 {
		t.Errorf("post-recovery goodput %.1f Gb/s, want ~36", gbps)
	}
}

func TestHostComputedModeConverges(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s0", netsim.BufferConfig{PFCEnabled: true, PFCThreshold: 500 * netsim.KB})
	dst := net.AddHost("dst")
	var srcs []*netsim.Host
	for i := 0; i < 4; i++ {
		h := net.AddHost("src")
		net.Connect(h, sw, netsim.Gbps(40), 1500*sim.Nanosecond)
		srcs = append(srcs, h)
	}
	swPort, _ := net.Connect(sw, dst, netsim.Gbps(40), 1500*sim.Nanosecond)
	net.ComputeRoutes()
	cfg := core.CPConfig40G()
	Attach(net, sw, swPort, CPOptions{HostComputed: true, Core: cfg})
	registry := func(core.CPKey) core.CPConfig { return cfg }
	for _, src := range srcs {
		net.StartFlow(src, dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: NewFlowCC(engine, src, RPOptions{HostRegistry: registry}),
		})
	}
	engine.RunUntil(15 * sim.Millisecond)
	q := swPort.DataQueueBytes()
	if q < 80*netsim.KB || q > 260*netsim.KB {
		t.Errorf("host-computed queue = %d, want near Qref", q)
	}
	tput := float64(dst.RxDataBytes) * 8 / engine.Now().Seconds() / 1e9
	if tput < 30 {
		t.Errorf("host-computed throughput = %.1f Gb/s", tput)
	}
}

func TestFlowTableVariantsAllConverge(t *testing.T) {
	tables := map[string]func() flowtable.Table{
		"queue":        func() flowtable.Table { return flowtable.NewQueueTable() },
		"bounded":      func() flowtable.Table { return flowtable.NewBoundedTable(400, 500*sim.Microsecond) },
		"afd":          func() flowtable.Table { return flowtable.NewAFDTable(3000, 64) },
		"elephanttrap": func() flowtable.Table { return flowtable.NewElephantTrap(0.25, 64, sim.NewRand(7)) },
		"bubblecache":  func() flowtable.Table { return flowtable.NewBubbleCache(0.5, 16, 64, 2, sim.NewRand(7)) },
	}
	for name, mk := range tables {
		engine := sim.New()
		net := netsim.New(engine, 1)
		sw := net.AddSwitch("s0", netsim.BufferConfig{PFCEnabled: true, PFCThreshold: 500 * netsim.KB})
		dst := net.AddHost("dst")
		var srcs []*netsim.Host
		for i := 0; i < 4; i++ {
			h := net.AddHost("src")
			net.Connect(h, sw, netsim.Gbps(40), 1500*sim.Nanosecond)
			srcs = append(srcs, h)
		}
		swPort, _ := net.Connect(sw, dst, netsim.Gbps(40), 1500*sim.Nanosecond)
		net.ComputeRoutes()
		Attach(net, sw, swPort, CPOptions{Table: mk()})
		for _, src := range srcs {
			net.StartFlow(src, dst, netsim.FlowConfig{
				Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, src, RPOptions{}),
			})
		}
		engine.RunUntil(15 * sim.Millisecond)
		tput := float64(dst.RxDataBytes) * 8 / engine.Now().Seconds() / 1e9
		if tput < 25 {
			t.Errorf("%s: throughput %.1f Gb/s, want high", name, tput)
		}
		if q := swPort.DataQueueBytes(); q > 450*netsim.KB {
			t.Errorf("%s: queue %d runaway", name, q)
		}
	}
}

func TestMinSignalSuppressesIdleCNPs(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 1, 40)
	// A single source at 50% load never congests the bottleneck.
	net.StartFlow(srcs[0], dst, netsim.FlowConfig{
		Size: -1, MaxRate: netsim.Gbps(20), CC: NewFlowCC(engine, srcs[0], RPOptions{}),
	})
	engine.RunUntil(5 * sim.Millisecond)
	if cp.CNPsSent != 0 {
		t.Errorf("%d CNPs sent on an uncongested port", cp.CNPsSent)
	}
}

func TestStopCancelsCPTicker(t *testing.T) {
	engine := sim.New()
	_, _, _, cp := buildStar(t, engine, 1, 40)
	updates := cp.Core().Updates
	cp.Stop()
	engine.RunUntil(5 * sim.Millisecond)
	if cp.Core().Updates != updates {
		t.Error("CP still updating after Stop")
	}
}

func TestMDEngagesOnBurst(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 8, 40)
	for _, src := range srcs {
		net.StartFlow(src, dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, src, RPOptions{}),
		})
	}
	engine.RunUntil(2 * sim.Millisecond)
	if cp.Core().MDFloorCount+cp.Core().MDHalveCount == 0 {
		t.Error("8x36G burst into 40G did not trigger MD")
	}
}

func TestCNPsAreICMPLikeAndPrioritized(t *testing.T) {
	engine := sim.New()
	net, srcs, dst, cp := buildStar(t, engine, 4, 40)
	for _, src := range srcs {
		net.StartFlow(src, dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36), CC: NewFlowCC(engine, src, RPOptions{}),
		})
	}
	engine.RunUntil(5 * sim.Millisecond)
	if cp.CNPsSent == 0 {
		t.Fatal("no CNPs under congestion")
	}
	total := uint64(0)
	for _, src := range srcs {
		total += src.CNPsRx
	}
	if total == 0 {
		t.Fatal("CNPs never delivered to sources")
	}
}

// TestOnCNPRejectsMalformedFeedback: garbage feedback — whether a
// mangled fair rate (switch-computed mode) or a mangled queue
// observation (host-computed mode) — must be counted and discarded
// before it can steer the rate or poison the host-side CP replica.
func TestOnCNPRejectsMalformedFeedback(t *testing.T) {
	engine := sim.New()
	_, srcs, _, _ := buildStar(t, engine, 1, 40)
	cc := NewFlowCC(engine, srcs[0], RPOptions{})
	cpid := netsim.CPID{Node: 3}
	cnp := func(info netsim.CNPInfo) *netsim.Packet {
		info.CP = cpid
		return &netsim.Packet{Kind: netsim.KindCNP, CNP: &info}
	}
	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{RateUnits: 200}))
	if !cc.RP().Installed() {
		t.Fatal("valid CNP did not install the rate limiter")
	}
	rate := cc.RP().RateMbps()

	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{RateUnits: -1}))
	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{RateUnits: 1 << 30}))
	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{HostComputed: true, QCurUnits: -5, QOldUnits: 2}))
	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{HostComputed: true, QCurUnits: 1 << 30, QOldUnits: 0}))
	if got := cc.RP().CNPsRejected; got != 4 {
		t.Errorf("CNPsRejected = %d, want 4", got)
	}
	if cc.RP().RateMbps() != rate {
		t.Errorf("rate moved from %v to %v on rejected feedback", rate, cc.RP().RateMbps())
	}
	// The host replica must not have been created/advanced by the
	// rejected observations: a valid host-computed CNP now computes from
	// clean state and still works.
	cc.OnCNP(engine.Now(), cnp(netsim.CNPInfo{HostComputed: true, QCurUnits: 10, QOldUnits: 8}))
	if cc.RP().CNPsRejected != 4 {
		t.Error("valid host-computed CNP rejected")
	}
}
