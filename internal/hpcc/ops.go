package hpcc

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// INTOverheadBytes is the per-data-packet wire cost of HPCC's telemetry
// (the paper cites 42 B of INT for a 5-hop path).
const INTOverheadBytes = 42

// DefaultINTHops presizes pooled packets' INT buffers to the deepest
// path the experiment topologies use (fat-tree: host-leaf-spine-leaf-host
// is 4 stamping hops; 8 leaves headroom) so per-hop stamping never grows
// a backing array.
const DefaultINTHops = 8

// Ops is HPCC's netsim.CongestionOps descriptor: INT stampers on switch
// egress ports, per-packet ACK echoes, and the MeasureInflight/
// ComputeWind window controller.
type Ops struct {
	// BaseRTT is HPCC's T parameter.
	BaseRTT sim.Time

	// INTHops overrides the packet INT presizing depth; zero selects
	// DefaultINTHops.
	INTHops int

	// Config maps a NIC rate and the base RTT to HPCC parameters. Nil
	// selects DefaultConfig.
	Config func(gbps float64, baseRTT sim.Time) Config
}

func (o *Ops) config(gbps float64) Config {
	if o.Config != nil {
		return o.Config(gbps, o.BaseRTT)
	}
	return DefaultConfig(gbps, o.BaseRTT)
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "HPCC" }

// Features implements netsim.CongestionOps: INT presizing depth and the
// per-packet INT wire overhead.
func (o *Ops) Features() netsim.CCFeatures {
	hops := o.INTHops
	if hops <= 0 {
		hops = DefaultINTHops
	}
	return netsim.CCFeatures{INTHops: hops, ExtraHeaderBytes: INTOverheadBytes}
}

// AttachPort implements netsim.CongestionOps: stamp per-hop telemetry on
// departing data packets.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	return NewStamper(port)
}

// NewReceiver implements netsim.CongestionOps: the flow layer's ACK
// echoes already carry the INT stack; no extra hook.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook { return nil }

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src, o.config(src.NIC().LinkRate.Gbps()))
}

// AckEvery implements netsim.CongestionOps: HPCC needs the INT echo on
// every packet.
func (o *Ops) AckEvery(src *netsim.Host) int { return 1 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (s *Stamper) CCProtocol() string { return "HPCC" }
