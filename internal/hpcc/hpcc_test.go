package hpcc

import (
	"math"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func fixture() (*sim.Engine, *netsim.Network, *netsim.Host, *FlowCC, Config) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cfg := DefaultConfig(40, 10*sim.Microsecond)
	cc := NewFlowCC(h, cfg)
	return engine, net, h, cc, cfg
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(40, 10*sim.Microsecond)
	if cfg.Eta != 0.95 || cfg.MaxStage != 5 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.WAIBytes <= 0 {
		t.Error("WAI not positive")
	}
}

func TestInitialWindowIsBDP(t *testing.T) {
	_, _, _, cc, _ := fixture()
	bdp := 40e9 / 8 * 10e-6 // 50 KB
	if math.Abs(cc.Window()-bdp) > 1 {
		t.Errorf("W0 = %v, want %v", cc.Window(), bdp)
	}
}

func TestWindowBlocksAllow(t *testing.T) {
	_, _, _, cc, _ := fixture()
	// Fill the window via OnSent without acking.
	seq := int64(0)
	for {
		_, ok := cc.Allow(0, 1000)
		if !ok {
			break
		}
		cc.OnSent(0, &netsim.Packet{Seq: seq, Payload: 1000, Size: 1048})
		seq += 1000
		if seq > 10_000_000 {
			t.Fatal("window never closed")
		}
	}
	if float64(seq) < cc.Window()-1000 {
		t.Errorf("blocked after only %d bytes with W=%v", seq, cc.Window())
	}
	// An ack opens the window again.
	cc.OnAck(0, &netsim.Packet{AckSeq: 2000})
	if _, ok := cc.Allow(0, 1000); !ok {
		t.Error("still blocked after cumulative ack")
	}
}

func TestStamperAppendsPerHop(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	h := net.AddHost("h")
	port, _ := net.Connect(sw, h, netsim.Gbps(40), 1500)
	st := NewStamper(port)
	pkt := &netsim.Packet{Kind: netsim.KindData, Size: 1048}
	st.OnDequeue(5, pkt, 3000)
	st.OnDequeue(6, pkt, 4000) // second "hop" (same stamper for the test)
	if len(pkt.INT) != 2 {
		t.Fatalf("INT records = %d, want 2", len(pkt.INT))
	}
	if pkt.INT[0].QLen != 3000 || pkt.INT[0].TS != 5 {
		t.Errorf("record 0 = %+v", pkt.INT[0])
	}
	if pkt.INT[0].Rate != netsim.Gbps(40) {
		t.Error("bandwidth not stamped")
	}
}

// ackWithINT fabricates an INT echo for a single-hop path.
func ackWithINT(ackSeq int64, txBytes uint64, qlen int, ts sim.Time) *netsim.Packet {
	return &netsim.Packet{
		Kind:   netsim.KindAck,
		AckSeq: ackSeq,
		EchoINT: []netsim.INTRecord{{
			TxBytes: txBytes,
			QLen:    qlen,
			TS:      ts,
			Rate:    netsim.Gbps(40),
		}},
	}
}

func TestCongestedHopShrinksWindow(t *testing.T) {
	_, _, _, cc, _ := fixture()
	w0 := cc.Window()
	// Baseline sample, then a sample showing a saturated link: the link
	// transmitted at full rate over the interval AND holds a deep queue.
	cc.OnAck(0, ackWithINT(1000, 0, 100000, 0))
	dt := 10 * sim.Microsecond
	bytesAtLineRate := uint64(40e9 / 8 * dt.Seconds())
	cc.OnAck(dt, ackWithINT(2000, bytesAtLineRate, 100000, dt))
	if cc.Window() >= w0 {
		t.Errorf("window did not shrink under congestion: %v >= %v", cc.Window(), w0)
	}
	if cc.MDEvents == 0 {
		t.Error("no multiplicative event recorded")
	}
}

func TestIdleHopGrowsWindowAdditively(t *testing.T) {
	_, _, _, cc, cfg := fixture()
	cc.OnAck(0, ackWithINT(1000, 0, 0, 0))
	w0 := cc.Window()
	dt := 10 * sim.Microsecond
	// Nearly idle link: tiny tx, empty queue.
	cc.OnAck(dt, ackWithINT(2000, 1000, 0, dt))
	w1 := cc.Window()
	if w1 <= w0 {
		t.Errorf("window did not grow on idle path: %v <= %v", w1, w0)
	}
	if w1-w0 > 2*cfg.WAIBytes+1 {
		t.Errorf("idle growth %v exceeds additive step %v", w1-w0, cfg.WAIBytes)
	}
}

func TestMaxStageForcesMultiplicativeUpdate(t *testing.T) {
	_, _, _, cc, cfg := fixture()
	cc.OnAck(0, ackWithINT(500, 0, 0, 0))
	dt := 10 * sim.Microsecond
	now := dt
	seq := int64(1000)
	// Keep the path idle: after MaxStage additive rounds the controller
	// must switch to the multiplicative branch (which with U ~ 0 jumps
	// toward Wc/(U/eta), clamped by the 2xBDP cap).
	for i := 0; i < cfg.MaxStage+3; i++ {
		// New RTT round: ack beyond lastUpdateSeq with fresh sentHigh.
		cc.OnSent(now, &netsim.Packet{Seq: seq, Payload: 1000, Size: 1048})
		cc.OnAck(now, ackWithINT(seq+1000, uint64(i+1)*1000, 0, now))
		seq += 1000
		now += dt
	}
	maxW := cfg.RmaxMbps * 1e6 / 8 * cfg.BaseRTT.Seconds() * 2
	if math.Abs(cc.Window()-maxW) > maxW/10 {
		t.Errorf("window = %v, want near the 2xBDP cap %v after stages", cc.Window(), maxW)
	}
}

func TestWindowFloorAtOnePacket(t *testing.T) {
	_, _, _, cc, _ := fixture()
	cc.OnAck(0, ackWithINT(100, 0, 1_000_000, 0))
	dt := 10 * sim.Microsecond
	huge := uint64(40e9) // absurd tx count: U explodes
	for i := 1; i < 10; i++ {
		cc.OnAck(sim.Time(i)*dt, ackWithINT(int64(100*i), huge*uint64(i), 1_000_000, sim.Time(i)*dt))
	}
	if cc.Window() < netsim.MTUPayload {
		t.Errorf("window %v below one packet", cc.Window())
	}
}

func TestPacingRateTracksWindow(t *testing.T) {
	_, _, _, cc, cfg := fixture()
	r := cc.CurrentRate()
	want := netsim.Rate(cc.Window() * 8 / cfg.BaseRTT.Seconds())
	if want > netsim.Mbps(cfg.RmaxMbps) {
		want = netsim.Mbps(cfg.RmaxMbps)
	}
	if math.Abs(float64(r-want)) > 1 {
		t.Errorf("rate = %v, want %v", r, want)
	}
}

func TestHopCountChangeResetsBaseline(t *testing.T) {
	_, _, _, cc, _ := fixture()
	cc.OnAck(0, ackWithINT(100, 0, 0, 0))
	w0 := cc.Window()
	// Two-hop echo after a one-hop baseline: must re-baseline, not panic,
	// and must not move the window.
	twoHop := &netsim.Packet{AckSeq: 200, EchoINT: []netsim.INTRecord{
		{TxBytes: 1, QLen: 0, TS: 1, Rate: netsim.Gbps(40)},
		{TxBytes: 1, QLen: 0, TS: 1, Rate: netsim.Gbps(100)},
	}}
	cc.OnAck(5, twoHop)
	if cc.Window() != w0 {
		t.Error("window moved on re-baseline")
	}
}

func TestEndToEndUtilizationNearEta(t *testing.T) {
	// One flow through one bottleneck: HPCC should converge near eta x C.
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	swPort, _ := net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	swPort.CC = NewStamper(swPort)
	cfg := DefaultConfig(40, 8*sim.Microsecond)
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, AckEvery: 1, CC: NewFlowCC(a, cfg)})
	engine.RunUntil(10 * sim.Millisecond)
	mid := f.DeliveredBytes()
	engine.RunUntil(20 * sim.Millisecond)
	gbps := float64(f.DeliveredBytes()-mid) * 8 / 0.010 / 1e9
	if gbps < 30 || gbps > 40 {
		t.Errorf("steady throughput = %.1f Gb/s, want ~eta*40", gbps)
	}
	if q := swPort.DataQueueBytes(); q > 50*netsim.KB {
		t.Errorf("HPCC queue = %d bytes, want shallow", q)
	}
	f.Stop()
}
