// Package hpcc reimplements HPCC (Li et al., SIGCOMM 2019), the
// INT-driven window-based baseline:
//
//   - Switch: every departing data packet is stamped with per-hop
//     telemetry (cumulative tx bytes, queue length, timestamp, link
//     bandwidth).
//   - Receiver: echoes the INT stack on per-packet ACKs.
//   - Sender: MeasureInflight/ComputeWind per the paper — estimate the
//     most-utilized hop's normalized inflight U, multiplicatively track
//     W = Wc·η/U + W_AI with at most maxStage additive-only stages, and
//     pace at W/T.
//
// HPCC deliberately keeps U below η < 1, trading bandwidth headroom for
// near-empty queues; the RoCC paper's comparisons exercise exactly this
// trade-off.
package hpcc

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds HPCC parameters (paper defaults).
type Config struct {
	Eta      float64  // target utilization η (0.95)
	MaxStage int      // additive-increase stages per MI round (5)
	BaseRTT  sim.Time // network base RTT T used for BDP and pacing
	WAIBytes float64  // additive increase per update, bytes
	RmaxMbps float64  // line rate; 0 = host NIC rate
}

// DefaultConfig returns the paper's parameters for a sender whose
// bottleneck bandwidth is gbps and whose base RTT is baseRTT.
func DefaultConfig(gbps float64, baseRTT sim.Time) Config {
	bdp := gbps * 1e9 / 8 * baseRTT.Seconds()
	wai := bdp * (1 - 0.95) / 64 // small additive share, per-paper guidance
	if wai < float64(netsim.HeaderBytes) {
		wai = float64(netsim.HeaderBytes)
	}
	return Config{
		Eta:      0.95,
		MaxStage: 5,
		BaseRTT:  baseRTT,
		WAIBytes: wai,
		RmaxMbps: gbps * 1000,
	}
}

// Stamper is the HPCC switch role: INT insertion at the egress pipeline.
// Attach to egress ports via Port.CC.
type Stamper struct {
	port *netsim.Port
}

// NewStamper builds the INT stamper for one egress port.
func NewStamper(port *netsim.Port) *Stamper { return &Stamper{port: port} }

// OnEnqueue implements netsim.PortCC.
func (s *Stamper) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {}

// OnDequeue implements netsim.PortCC: stamp telemetry as the packet leaves.
func (s *Stamper) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	pkt.INT = append(pkt.INT, netsim.INTRecord{
		TxBytes: s.port.TxDataBytes + uint64(pkt.Size),
		QLen:    qlen,
		TS:      now,
		Rate:    s.port.LinkRate,
	})
}

// FlowCC is the HPCC sender for one flow.
type FlowCC struct {
	host *netsim.Host
	cfg  Config

	wc       float64 // reference window, bytes
	w        float64 // current window, bytes
	u        float64 // smoothed normalized inflight
	incStage int

	lastINT       []netsim.INTRecord
	haveBaseline  bool
	lastUpdateSeq int64
	sentHigh      int64
	acked         int64

	pacer netsim.Pacer

	// Counters.
	MDEvents int
	AIEvents int
}

// NewFlowCC builds an HPCC window controller starting at one BDP.
func NewFlowCC(host *netsim.Host, cfg Config) *FlowCC {
	if cfg.RmaxMbps == 0 {
		cfg.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	bdp := cfg.RmaxMbps * 1e6 / 8 * cfg.BaseRTT.Seconds()
	return &FlowCC{host: host, cfg: cfg, wc: bdp, w: bdp}
}

// Window returns the current congestion window in bytes.
func (cc *FlowCC) Window() float64 { return cc.w }

// Allow implements netsim.FlowCC: window limit plus W/T pacing.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	inflight := cc.sentHigh - cc.acked
	if float64(inflight)+float64(payload) > cc.w {
		return 0, false // window-blocked; re-polled on ACK
	}
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	if end := pkt.Seq + int64(pkt.Payload); end > cc.sentHigh {
		cc.sentHigh = end
	}
	cc.pacer.Consume(now, cc.pacingRate(), pkt.Size)
}

func (cc *FlowCC) pacingRate() netsim.Rate {
	r := netsim.Rate(cc.w * 8 / cc.cfg.BaseRTT.Seconds())
	if max := netsim.Mbps(cc.cfg.RmaxMbps); r > max {
		r = max
	}
	if r < netsim.Mbps(1) {
		r = netsim.Mbps(1)
	}
	return r
}

// OnAck implements netsim.FlowCC: the NewAck procedure from the paper.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {
	if pkt.AckSeq > cc.acked {
		cc.acked = pkt.AckSeq
	}
	intRecs := pkt.EchoINT
	if len(intRecs) == 0 {
		return
	}
	if !cc.haveBaseline || len(intRecs) != len(cc.lastINT) {
		cc.lastINT = append(cc.lastINT[:0], intRecs...)
		cc.haveBaseline = true
		return
	}
	u := cc.measureInflight(intRecs)
	updateWc := pkt.AckSeq > cc.lastUpdateSeq
	cc.computeWind(u, updateWc)
	if updateWc {
		cc.lastUpdateSeq = cc.sentHigh
	}
	cc.lastINT = append(cc.lastINT[:0], intRecs...)
}

// measureInflight implements MeasureInflight: the max per-hop normalized
// inflight estimate, EWMA-smoothed over the sampling interval τ.
func (cc *FlowCC) measureInflight(cur []netsim.INTRecord) float64 {
	tBase := cc.cfg.BaseRTT.Seconds()
	var uMax float64
	var tau float64 = tBase
	for i := range cur {
		prev := cc.lastINT[i]
		dt := (cur[i].TS - prev.TS).Seconds()
		if dt <= 0 {
			continue
		}
		txRate := float64(cur[i].TxBytes-prev.TxBytes) * 8 / dt
		b := float64(cur[i].Rate)
		qlen := cur[i].QLen
		if prev.QLen < qlen {
			qlen = prev.QLen
		}
		u := float64(qlen)*8/(b*tBase) + txRate/b
		if u > uMax {
			uMax = u
			tau = dt
		}
	}
	if tau > tBase {
		tau = tBase
	}
	cc.u = (1-tau/tBase)*cc.u + (tau/tBase)*uMax
	return cc.u
}

// computeWind implements ComputeWind.
func (cc *FlowCC) computeWind(u float64, updateWc bool) {
	if u >= cc.cfg.Eta || cc.incStage >= cc.cfg.MaxStage {
		cc.w = cc.wc/(u/cc.cfg.Eta) + cc.cfg.WAIBytes
		if updateWc {
			cc.incStage = 0
			cc.wc = cc.w
		}
		cc.MDEvents++
	} else {
		cc.w = cc.wc + cc.cfg.WAIBytes
		if updateWc {
			cc.incStage++
			cc.wc = cc.w
		}
		cc.AIEvents++
	}
	maxW := cc.cfg.RmaxMbps * 1e6 / 8 * cc.cfg.BaseRTT.Seconds() * 2
	if cc.w > maxW {
		cc.w = maxW
	}
	if cc.w < netsim.MTUPayload {
		cc.w = netsim.MTUPayload
	}
}

// OnReroute implements netsim.RouteAware: after a route reconvergence
// the flow's ACKs may echo INT records from a different hop sequence, so
// the stored baseline no longer pairs hop-for-hop with fresh telemetry.
// Dropping it makes the next ACK re-baseline (the same path OnAck takes
// when the INT stack changes length); the windows wc/w survive, so the
// flow keeps pacing at its last estimate until real measurements arrive.
func (cc *FlowCC) OnReroute(now sim.Time) {
	cc.haveBaseline = false
	cc.lastINT = cc.lastINT[:0]
}

// OnRewind implements netsim.RetxAware: a go-back-N rewind declared every
// byte at or above seq lost, so they leave the in-flight account. Without
// this a blackhole window (failed link or switch) pins inflight at W and
// Allow blocks the retransmissions that would free it.
func (cc *FlowCC) OnRewind(now sim.Time, seq int64) {
	if seq >= cc.sentHigh {
		return
	}
	cc.sentHigh = seq
	if cc.sentHigh < cc.acked {
		cc.sentHigh = cc.acked
	}
	if cc.lastUpdateSeq > cc.sentHigh {
		cc.lastUpdateSeq = cc.sentHigh
	}
}

// OnCNP implements netsim.FlowCC. HPCC has no CNPs.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate { return cc.pacingRate() }
