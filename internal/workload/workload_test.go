package workload

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"rocc/internal/harness"
	"rocc/internal/sim"
)

func TestCDFValidation(t *testing.T) {
	mustPanic := func(name string, points []CDFPoint) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: invalid CDF accepted", name)
			}
		}()
		NewCDF(name, points)
	}
	mustPanic("too-few", []CDFPoint{{100, 1}})
	mustPanic("non-monotone-size", []CDFPoint{{100, 0.5}, {100, 1}})
	mustPanic("non-monotone-prob", []CDFPoint{{100, 0.5}, {200, 0.5}})
	mustPanic("not-ending-at-1", []CDFPoint{{100, 0.5}, {200, 0.9}})
}

func TestPaperBins(t *testing.T) {
	ws := WebSearch()
	wantWS := []int{10000, 20000, 30000, 50000, 80000, 200000, 1000000, 2000000, 5000000, 10000000}
	for i, b := range ws.Bins() {
		if b != wantWS[i] {
			t.Errorf("WebSearch bin %d = %d, want %d", i, b, wantWS[i])
		}
	}
	fb := FBHadoop()
	wantFB := []int{75, 1000, 2500, 6300, 10000, 16000, 23000, 24000, 25000, 100000}
	for i, b := range fb.Bins() {
		if b != wantFB[i] {
			t.Errorf("FB_Hadoop bin %d = %d, want %d", i, b, wantFB[i])
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	c := WebSearch()
	prev := 0
	for u := 0.0; u < 1; u += 0.01 {
		q := c.Quantile(u)
		if q < prev {
			t.Fatalf("quantile not monotone at u=%.2f: %d < %d", u, q, prev)
		}
		prev = q
	}
}

func TestQuantileEndpoints(t *testing.T) {
	c := FBHadoop()
	if q := c.Quantile(0); q < 1 {
		t.Errorf("Quantile(0) = %d, want >= 1", q)
	}
	if q := c.Quantile(0.9999999); q > 100000 {
		t.Errorf("Quantile(~1) = %d, exceeds max", q)
	}
}

func TestSampleWithinSupport(t *testing.T) {
	r := sim.NewRand(1)
	c := WebSearch()
	for i := 0; i < 10000; i++ {
		s := c.Sample(r)
		if s < 1 || s > 10000000 {
			t.Fatalf("sample %d out of support", s)
		}
	}
}

func TestEmpiricalMeanMatchesAnalytic(t *testing.T) {
	r := sim.NewRand(2)
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		var sum float64
		n := 200000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		emp := sum / float64(n)
		if math.Abs(emp-c.MeanBytes())/c.MeanBytes() > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", c.Name(), emp, c.MeanBytes())
		}
	}
}

func TestHeavyTail(t *testing.T) {
	// WebSearch is elephant-dominated: the top 10% of flows by size must
	// carry well over half the bytes.
	c := WebSearch()
	r := sim.NewRand(3)
	var total, big float64
	p90 := float64(c.Quantile(0.9))
	for i := 0; i < 100000; i++ {
		s := float64(c.Sample(r))
		total += s
		if s >= p90 {
			big += s
		}
	}
	if big/total < 0.5 {
		t.Errorf("top decile carries %.0f%% of bytes, want > 50%%", big/total*100)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"WebSearch", "websearch", "FB_Hadoop", "fbhadoop"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestArrivalRate(t *testing.T) {
	c := NewCDF("unit", []CDFPoint{{999, 0.001}, {1000, 1.0}}) // ~1000B flows
	lam := ArrivalRate(c, 8e9, 0.5)                            // 4 Gb/s of ~8000-bit flows
	want := 0.5 * 8e9 / (c.MeanBytes() * 8)
	if math.Abs(lam-want) > 1e-6 {
		t.Errorf("ArrivalRate = %v, want %v", lam, want)
	}
}

func TestPoissonArrivalCount(t *testing.T) {
	engine := sim.New()
	r := sim.NewRand(4)
	count := 0
	gen := NewPoisson(engine, r, FBHadoop(), 10000, func(size int) {
		count++
		if size < 1 {
			t.Fatal("non-positive flow size")
		}
	})
	engine.RunUntil(sim.Second)
	gen.Stop()
	// 10k flows/s over 1s: Poisson(10000); 5 sigma = 500.
	if count < 9500 || count > 10500 {
		t.Errorf("arrivals = %d, want ~10000", count)
	}
	if gen.Started != count {
		t.Errorf("Started = %d, callbacks = %d", gen.Started, count)
	}
}

func TestPoissonStop(t *testing.T) {
	engine := sim.New()
	gen := NewPoisson(engine, sim.NewRand(5), FBHadoop(), 1e6, func(int) {})
	engine.RunUntil(sim.Millisecond)
	gen.Stop()
	at := gen.Started
	engine.RunUntil(10 * sim.Millisecond)
	if gen.Started != at {
		t.Error("arrivals continued after Stop")
	}
}

func TestPoissonRejectsZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero arrival rate accepted")
		}
	}()
	NewPoisson(sim.New(), sim.NewRand(1), FBHadoop(), 0, func(int) {})
}

// Property: quantile inverts sampling — a sample at u is within the bin
// that contains u.
func TestQuantileWithinBracketProperty(t *testing.T) {
	c := WebSearch()
	f := func(uRaw uint32) bool {
		u := float64(uRaw) / float64(math.MaxUint32)
		if u >= 1 {
			return true
		}
		q := c.Quantile(u)
		return q >= 1 && q <= 10000000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Boundary cases the interpolation must pin down exactly: an empty
// point list, a single-point CDF (no segment to interpolate on), and
// evaluation at exactly a knot's cumulative probability.
func TestCDFEmptyRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty CDF accepted")
		}
	}()
	NewCDF("empty", nil)
}

func TestCDFSinglePointRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-point CDF accepted")
		}
	}()
	NewCDF("single", []CDFPoint{{1000, 1}})
}

func TestQuantileExactAtKnots(t *testing.T) {
	// At u equal to a knot's cumulative probability the interpolation
	// fraction is exactly 1, so the knot's own size must come back — no
	// off-by-one from landing on the segment boundary.
	for _, c := range []*CDF{WebSearch(), FBHadoop()} {
		for i, p := range c.points {
			if got := c.Quantile(p.Prob); got != p.Bytes {
				t.Errorf("%s knot %d: Quantile(%g) = %d, want %d",
					c.Name(), i, p.Prob, got, p.Bytes)
			}
		}
	}
}

func TestQuantileAtOne(t *testing.T) {
	// u = 1.0 is the last knot exactly; anything above it clamps there.
	c := WebSearch()
	last := c.points[len(c.points)-1].Bytes
	if got := c.Quantile(1.0); got != last {
		t.Errorf("Quantile(1) = %d, want %d", got, last)
	}
	if got := c.Quantile(1.5); got != last {
		t.Errorf("Quantile(1.5) = %d, want %d", got, last)
	}
}

// TestPoissonDeterministicAcrossWorkers pins the open-loop workload to
// the virtual clock: replaying the same seed on the parallel harness
// yields the identical arrival sequence at any worker count.
func TestPoissonDeterministicAcrossWorkers(t *testing.T) {
	type arrivals struct {
		Sizes []int
		Count int
	}
	run := func(workers int) []arrivals {
		rs := harness.Run(6, harness.Options{Workers: workers}, func(cell int) (arrivals, error) {
			engine := sim.New()
			r := sim.NewRand(100 + int64(cell))
			var a arrivals
			gen := NewPoisson(engine, r, WebSearch(), 50000, func(size int) {
				a.Sizes = append(a.Sizes, size)
			})
			engine.RunUntil(10 * sim.Millisecond)
			gen.Stop()
			a.Count = gen.Started
			return a, nil
		})
		out := make([]arrivals, len(rs))
		for i, r := range rs {
			if r.Err != nil {
				t.Fatalf("cell %d: %v", i, r.Err)
			}
			out[i] = r.Value
		}
		return out
	}
	serial := run(1)
	fanned := run(4)
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatal("Poisson arrival sequences differ between 1 and 4 workers")
	}
	for i, a := range serial {
		if a.Count == 0 || a.Count != len(a.Sizes) {
			t.Fatalf("cell %d: Started=%d with %d sizes", i, a.Count, len(a.Sizes))
		}
	}
}
