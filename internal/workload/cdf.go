// Package workload generates the paper's traffic: heavy-tailed flow-size
// distributions shaped after the public WebSearch [2, 28] and FB_Hadoop
// [28, 35] traces, open-loop Poisson flow arrivals at a target average
// link load, and the incast/permutation patterns of §6.
//
// The CDFs are synthetic stand-ins for the original traces (which are not
// redistributable): their support points are exactly the size bins the
// paper's Figs. 14-16 report, so per-bin FCT comparisons line up, and
// their tails carry the same elephant/mice character the evaluation
// depends on.
package workload

import (
	"fmt"
	"sort"

	"rocc/internal/sim"
)

// CDFPoint is one support point of a flow-size CDF.
type CDFPoint struct {
	Bytes int
	Prob  float64 // cumulative probability at Bytes
}

// CDF is a piecewise-linear flow-size distribution sampled by inverse
// transform.
type CDF struct {
	name   string
	points []CDFPoint
	mean   float64
}

// NewCDF builds a CDF from support points. Points must be strictly
// increasing in both size and probability and end at probability 1.
func NewCDF(name string, points []CDFPoint) *CDF {
	if len(points) < 2 {
		panic("workload: CDF needs at least two points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes <= points[i-1].Bytes || points[i].Prob <= points[i-1].Prob {
			panic(fmt.Sprintf("workload: CDF %q not strictly increasing at %d", name, i))
		}
	}
	if points[len(points)-1].Prob != 1 {
		panic("workload: CDF must end at probability 1")
	}
	c := &CDF{name: name, points: points}
	c.mean = c.computeMean()
	return c
}

// Name returns the distribution name.
func (c *CDF) Name() string { return c.name }

// MeanBytes returns the distribution's mean flow size.
func (c *CDF) MeanBytes() float64 { return c.mean }

func (c *CDF) computeMean() float64 {
	var mean float64
	prev := CDFPoint{Bytes: 0, Prob: 0}
	if c.points[0].Prob > 0 {
		// Mass at/below the first point: treat as uniform (0, first].
		mean += c.points[0].Prob * float64(c.points[0].Bytes) / 2
		prev = c.points[0]
	} else {
		prev = c.points[0]
	}
	for _, p := range c.points[1:] {
		w := p.Prob - prev.Prob
		mean += w * float64(prev.Bytes+p.Bytes) / 2
		prev = p
	}
	return mean
}

// Sample draws a flow size by inverse transform with linear interpolation.
// The result is at least 1 byte.
func (c *CDF) Sample(r *sim.Rand) int {
	u := r.Float64()
	return c.Quantile(u)
}

// Quantile returns the flow size at cumulative probability u in [0, 1).
func (c *CDF) Quantile(u float64) int {
	idx := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= u })
	if idx == 0 {
		frac := u / c.points[0].Prob
		size := frac * float64(c.points[0].Bytes)
		if size < 1 {
			return 1
		}
		return int(size)
	}
	if idx >= len(c.points) {
		return c.points[len(c.points)-1].Bytes
	}
	lo, hi := c.points[idx-1], c.points[idx]
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Bytes + int(frac*float64(hi.Bytes-lo.Bytes))
}

// Bins returns the support sizes, which Figs. 14-16 use as FCT bins.
func (c *CDF) Bins() []int {
	bins := make([]int, len(c.points))
	for i, p := range c.points {
		bins[i] = p.Bytes
	}
	return bins
}

// WebSearch returns the throughput-heavy WebSearch-style distribution.
// Its support matches the paper's WebSearch bins: 10K...80K (mice) and
// 200K...10M (elephants).
func WebSearch() *CDF {
	return NewCDF("WebSearch", []CDFPoint{
		{10 * 1000, 0.15},
		{20 * 1000, 0.20},
		{30 * 1000, 0.30},
		{50 * 1000, 0.40},
		{80 * 1000, 0.53},
		{200 * 1000, 0.60},
		{1000 * 1000, 0.70},
		{2000 * 1000, 0.80},
		{5000 * 1000, 0.90},
		{10000 * 1000, 1.00},
	})
}

// FBHadoop returns the latency-sensitive small-flow distribution. Its
// support matches the paper's FB_Hadoop bins: 75B...10K (mice) and
// 16K...100K (tail).
func FBHadoop() *CDF {
	return NewCDF("FB_Hadoop", []CDFPoint{
		{75, 0.10},
		{1000, 0.32},
		{2500, 0.50},
		{6300, 0.66},
		{10 * 1000, 0.76},
		{16 * 1000, 0.83},
		{23 * 1000, 0.87},
		{24 * 1000, 0.90},
		{25 * 1000, 0.93},
		{100 * 1000, 1.00},
	})
}

// ByName resolves a distribution by its paper name.
func ByName(name string) (*CDF, error) {
	switch name {
	case "WebSearch", "websearch":
		return WebSearch(), nil
	case "FB_Hadoop", "fbhadoop", "fb_hadoop":
		return FBHadoop(), nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}
