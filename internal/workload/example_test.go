package workload_test

import (
	"fmt"

	"rocc/internal/workload"
)

// Example shows the two evaluation workloads' headline statistics: the
// WebSearch mix is elephant-dominated while FB_Hadoop is mice-dominated.
func Example() {
	ws := workload.WebSearch()
	fb := workload.FBHadoop()
	fmt.Printf("%s: mean %.0f KB, median %d B\n", ws.Name(), ws.MeanBytes()/1000, ws.Quantile(0.5))
	fmt.Printf("%s: mean %.1f KB, median %d B\n", fb.Name(), fb.MeanBytes()/1000, fb.Quantile(0.5))
	// Output:
	// WebSearch: mean 1336 KB, median 73076 B
	// FB_Hadoop: mean 9.5 KB, median 2500 B
}
