package workload

import "rocc/internal/sim"

// Poisson drives an open-loop Poisson flow-arrival process for one
// traffic source. Flow sizes come from a CDF; the arrival rate is derived
// from a target average load on the source's access link.
type Poisson struct {
	engine *sim.Engine
	rand   *sim.Rand
	cdf    *CDF
	mean   sim.Time // mean inter-arrival time
	start  func(size int)
	ev     sim.Handle
	done   bool

	Started int
}

// ArrivalRate returns the flow arrival rate (flows/s) that produces the
// given average load fraction on a link of linkBps bits per second, for
// flows drawn from cdf.
func ArrivalRate(cdf *CDF, linkBps float64, load float64) float64 {
	return load * linkBps / (cdf.MeanBytes() * 8)
}

// NewPoisson starts a Poisson arrival process that invokes start with a
// sampled flow size at every arrival. Stop it with Stop.
func NewPoisson(engine *sim.Engine, rand *sim.Rand, cdf *CDF, flowsPerSec float64, start func(size int)) *Poisson {
	if flowsPerSec <= 0 {
		panic("workload: arrival rate must be positive")
	}
	p := &Poisson{
		engine: engine,
		rand:   rand,
		cdf:    cdf,
		mean:   sim.FromSeconds(1 / flowsPerSec),
		start:  start,
	}
	p.schedule()
	return p
}

func (p *Poisson) schedule() {
	gap := p.rand.ExpTime(p.mean)
	p.ev = p.engine.AfterCall(gap, poissonArrive, p, nil)
}

// poissonArrive fires one flow arrival and re-arms; a package-level
// callback so the arrival process does not allocate a closure per flow.
func poissonArrive(a, _ any) {
	p := a.(*Poisson)
	if p.done {
		return
	}
	p.Started++
	p.start(p.cdf.Sample(p.rand))
	p.schedule()
}

// Stop halts the arrival process.
func (p *Poisson) Stop() {
	p.done = true
	p.ev.Cancel()
}
