package flowtable

import "rocc/internal/sim"

// QueueTable is the paper's default flow table (§3.4 option 1): it tracks
// exactly the flows that currently have packets in the egress queue, so
// its size is bounded by the queue size. Feedback goes to every flow
// contributing to the standing queue.
type QueueTable struct {
	set   orderedSet
	bytes map[FlowID]int
}

// NewQueueTable returns an empty queue-occupancy flow table.
func NewQueueTable() *QueueTable {
	return &QueueTable{set: newOrderedSet(), bytes: make(map[FlowID]int)}
}

// OnEnqueue implements Table.
func (t *QueueTable) OnEnqueue(now sim.Time, flow FlowID, bytes int) {
	if t.bytes[flow] == 0 {
		t.set.add(flow)
	}
	t.bytes[flow] += bytes
}

// OnDequeue implements Table.
func (t *QueueTable) OnDequeue(now sim.Time, flow FlowID, bytes int) {
	b, ok := t.bytes[flow]
	if !ok {
		return
	}
	b -= bytes
	if b <= 0 {
		delete(t.bytes, flow)
		t.set.remove(flow)
		return
	}
	t.bytes[flow] = b
}

// Flows implements Table.
func (t *QueueTable) Flows(now sim.Time, dst []FlowID) []FlowID {
	return append(dst, t.set.order...)
}

// Len implements Table.
func (t *QueueTable) Len() int { return t.set.len() }

// QueuedBytes returns the bytes the flow currently has in the queue.
func (t *QueueTable) QueuedBytes(flow FlowID) int { return t.bytes[flow] }
