package flowtable

import "rocc/internal/sim"

// randSource is the minimal randomness the sampled tables need; satisfied
// by *sim.Rand.
type randSource interface {
	Float64() float64
}

// ElephantTrap is §3.4 option 4 (Lu et al., HOTI'07): packets are sampled
// with a fixed probability; sampled flows already in the table increment a
// frequency counter, new flows claim a slot whose counter has decayed to
// zero (least-frequently-used eviction). Persistent heavy flows accumulate
// high counts and stay; mice age out.
type ElephantTrap struct {
	prob     float64
	capacity int
	rand     randSource

	set    orderedSet
	counts map[FlowID]int

	Evictions int
}

// NewElephantTrap builds a trap with the given packet sampling probability
// and table capacity.
func NewElephantTrap(prob float64, capacity int, rand randSource) *ElephantTrap {
	if prob <= 0 || prob > 1 {
		prob = 0.1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &ElephantTrap{
		prob:     prob,
		capacity: capacity,
		rand:     rand,
		set:      newOrderedSet(),
		counts:   make(map[FlowID]int),
	}
}

// OnEnqueue implements Table.
func (t *ElephantTrap) OnEnqueue(now sim.Time, flow FlowID, bytes int) {
	if t.rand.Float64() >= t.prob {
		return
	}
	if t.set.has(flow) {
		t.counts[flow]++
		return
	}
	if t.set.len() < t.capacity {
		t.set.add(flow)
		t.counts[flow] = 1
		return
	}
	// Decay all counters; replace the first flow that hits zero (LFU).
	var victim FlowID
	found := false
	for _, f := range t.set.order {
		if t.counts[f] > 0 {
			t.counts[f]--
		}
		if !found && t.counts[f] == 0 {
			victim = f
			found = true
		}
	}
	if found {
		t.set.remove(victim)
		delete(t.counts, victim)
		t.Evictions++
		t.set.add(flow)
		t.counts[flow] = 1
	}
}

// OnDequeue implements Table.
func (t *ElephantTrap) OnDequeue(now sim.Time, flow FlowID, bytes int) {}

// Flows implements Table.
func (t *ElephantTrap) Flows(now sim.Time, dst []FlowID) []FlowID {
	return append(dst, t.set.order...)
}

// Len implements Table.
func (t *ElephantTrap) Len() int { return t.set.len() }

// Count returns a flow's frequency counter (for tests).
func (t *ElephantTrap) Count(flow FlowID) int { return t.counts[flow] }
