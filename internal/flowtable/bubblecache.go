package flowtable

import "rocc/internal/sim"

// BubbleCache is §3.4 option 5 (Ros-Giralt et al., ISNCC'18): a two-stage
// sampled cache. Sampled flows first land in a small front stage; a flow
// is promoted to the main stage — "bubbles up" — once it has been sampled
// promoteAfter times within the front stage, displacing the coldest main
// entry. Only main-stage flows (established elephants) receive feedback.
type BubbleCache struct {
	prob         float64
	promoteAfter int
	rand         randSource

	front      orderedSet
	frontHits  map[FlowID]int
	frontCap   int
	main       orderedSet
	mainHits   map[FlowID]int
	mainCap    int
	Promotions int
}

// NewBubbleCache builds a bubble cache with the given sampling
// probability, front/main capacities and promotion threshold.
func NewBubbleCache(prob float64, frontCap, mainCap, promoteAfter int, rand randSource) *BubbleCache {
	if prob <= 0 || prob > 1 {
		prob = 0.1
	}
	if frontCap < 1 {
		frontCap = 1
	}
	if mainCap < 1 {
		mainCap = 1
	}
	if promoteAfter < 1 {
		promoteAfter = 2
	}
	return &BubbleCache{
		prob:         prob,
		promoteAfter: promoteAfter,
		rand:         rand,
		front:        newOrderedSet(),
		frontHits:    make(map[FlowID]int),
		frontCap:     frontCap,
		main:         newOrderedSet(),
		mainHits:     make(map[FlowID]int),
		mainCap:      mainCap,
	}
}

// OnEnqueue implements Table.
func (b *BubbleCache) OnEnqueue(now sim.Time, flow FlowID, bytes int) {
	if b.rand.Float64() >= b.prob {
		return
	}
	if b.main.has(flow) {
		b.mainHits[flow]++
		return
	}
	if !b.front.has(flow) {
		if b.front.len() >= b.frontCap {
			// Evict the coldest front entry to make room.
			b.evictColdest(&b.front, b.frontHits)
		}
		b.front.add(flow)
		b.frontHits[flow] = 0
	}
	b.frontHits[flow]++
	if b.frontHits[flow] >= b.promoteAfter {
		b.promote(flow)
	}
}

func (b *BubbleCache) promote(flow FlowID) {
	b.front.remove(flow)
	delete(b.frontHits, flow)
	if b.main.len() >= b.mainCap {
		b.evictColdest(&b.main, b.mainHits)
	}
	b.main.add(flow)
	b.mainHits[flow] = 1
	b.Promotions++
}

func (b *BubbleCache) evictColdest(set *orderedSet, hits map[FlowID]int) {
	if set.len() == 0 {
		return
	}
	victim := set.order[0]
	for _, f := range set.order[1:] {
		if hits[f] < hits[victim] {
			victim = f
		}
	}
	set.remove(victim)
	delete(hits, victim)
}

// OnDequeue implements Table.
func (b *BubbleCache) OnDequeue(now sim.Time, flow FlowID, bytes int) {}

// Flows implements Table: main-stage flows only.
func (b *BubbleCache) Flows(now sim.Time, dst []FlowID) []FlowID {
	return append(dst, b.main.order...)
}

// Len implements Table.
func (b *BubbleCache) Len() int { return b.main.len() }

// FrontLen returns the front-stage occupancy (for tests).
func (b *BubbleCache) FrontLen() int { return b.front.len() }
