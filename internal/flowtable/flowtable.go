// Package flowtable provides the congestion-point flow-table
// implementations enumerated in §3.4 of the RoCC paper. A flow table
// decides which flow sources receive the fair-rate feedback each update
// interval.
//
// All implementations are deterministic: iteration follows insertion
// order, and the sampled variants draw from a caller-provided seeded
// source.
package flowtable

import "rocc/internal/sim"

// FlowID mirrors netsim.FlowID without importing it, keeping this package
// reusable by the testbed.
type FlowID int64

// Table tracks candidate feedback recipients at one congestion point.
type Table interface {
	// OnEnqueue observes a data packet of the flow entering the queue.
	OnEnqueue(now sim.Time, flow FlowID, bytes int)

	// OnDequeue observes a data packet of the flow leaving the queue.
	OnDequeue(now sim.Time, flow FlowID, bytes int)

	// Flows appends the current feedback recipients to dst and returns it.
	// Called once per update interval T.
	Flows(now sim.Time, dst []FlowID) []FlowID

	// Len returns the number of tracked flows.
	Len() int
}

// orderedSet is a map plus stable insertion order, shared by the
// implementations so feedback order is deterministic.
type orderedSet struct {
	index map[FlowID]int
	order []FlowID
}

func newOrderedSet() orderedSet {
	return orderedSet{index: make(map[FlowID]int)}
}

func (s *orderedSet) add(f FlowID) bool {
	if _, ok := s.index[f]; ok {
		return false
	}
	s.index[f] = len(s.order)
	s.order = append(s.order, f)
	return true
}

func (s *orderedSet) remove(f FlowID) {
	i, ok := s.index[f]
	if !ok {
		return
	}
	last := len(s.order) - 1
	moved := s.order[last]
	s.order[i] = moved
	s.index[moved] = i
	s.order = s.order[:last]
	delete(s.index, f)
}

func (s *orderedSet) has(f FlowID) bool { _, ok := s.index[f]; return ok }
func (s *orderedSet) len() int          { return len(s.order) }
