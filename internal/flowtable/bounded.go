package flowtable

import "rocc/internal/sim"

// BoundedTable is §3.4 option 2: because RoCC's fair rate is bounded below
// by Fmin, at most Fmax/Fmin flows can share a link, which bounds the
// table size. Entries are refreshed on every packet and evicted by age.
type BoundedTable struct {
	capacity int
	ageLimit sim.Time

	set      orderedSet
	lastSeen map[FlowID]sim.Time

	Evictions int
}

// NewBoundedTable builds a table with the given capacity (typically
// Fmax/Fmin) and age limit for idle entries.
func NewBoundedTable(capacity int, ageLimit sim.Time) *BoundedTable {
	if capacity < 1 {
		capacity = 1
	}
	if ageLimit <= 0 {
		ageLimit = sim.Millisecond
	}
	return &BoundedTable{
		capacity: capacity,
		ageLimit: ageLimit,
		set:      newOrderedSet(),
		lastSeen: make(map[FlowID]sim.Time),
	}
}

// OnEnqueue implements Table.
func (t *BoundedTable) OnEnqueue(now sim.Time, flow FlowID, bytes int) {
	if t.set.has(flow) {
		t.lastSeen[flow] = now
		return
	}
	if t.set.len() >= t.capacity {
		t.evictOldest()
	}
	if t.set.len() < t.capacity {
		t.set.add(flow)
		t.lastSeen[flow] = now
	}
}

// OnDequeue implements Table. Age-based eviction ignores departures.
func (t *BoundedTable) OnDequeue(now sim.Time, flow FlowID, bytes int) {}

func (t *BoundedTable) evictOldest() {
	var victim FlowID
	var oldest sim.Time
	first := true
	for _, f := range t.set.order {
		if first || t.lastSeen[f] < oldest {
			victim, oldest = f, t.lastSeen[f]
			first = false
		}
	}
	if !first {
		t.set.remove(victim)
		delete(t.lastSeen, victim)
		t.Evictions++
	}
}

// Flows implements Table, expiring idle entries first.
func (t *BoundedTable) Flows(now sim.Time, dst []FlowID) []FlowID {
	for i := 0; i < len(t.set.order); {
		f := t.set.order[i]
		if now-t.lastSeen[f] > t.ageLimit {
			t.set.remove(f)
			delete(t.lastSeen, f)
			t.Evictions++
			continue // remove swapped another entry into position i
		}
		i++
	}
	return append(dst, t.set.order...)
}

// Len implements Table.
func (t *BoundedTable) Len() int { return t.set.len() }
