package flowtable

import "rocc/internal/sim"

// AFDTable is §3.4 option 3: the shadow-buffer sampling scheme of AFD
// (Pan et al., "Approximate Fairness through Differential Dropping"). One
// in every sampleBytes bytes of arriving traffic deposits its flow id into
// a fixed-size shadow buffer ring; a flow's presence in the shadow buffer
// approximates its arrival-rate share, so heavy (elephant) flows dominate
// the feedback recipients while mice are rarely sampled.
type AFDTable struct {
	sampleBytes int
	shadow      []FlowID // ring buffer of sampled flow ids
	next        int
	filled      bool
	acc         int // bytes since last sample
}

// NewAFDTable builds an AFD shadow buffer with the given sampling period
// in bytes and shadow-buffer size in entries.
func NewAFDTable(sampleBytes, shadowSize int) *AFDTable {
	if sampleBytes < 1 {
		sampleBytes = 1
	}
	if shadowSize < 1 {
		shadowSize = 1
	}
	return &AFDTable{sampleBytes: sampleBytes, shadow: make([]FlowID, shadowSize)}
}

// OnEnqueue implements Table: deterministic byte-count sampling.
func (t *AFDTable) OnEnqueue(now sim.Time, flow FlowID, bytes int) {
	t.acc += bytes
	for t.acc >= t.sampleBytes {
		t.acc -= t.sampleBytes
		t.shadow[t.next] = flow
		t.next++
		if t.next == len(t.shadow) {
			t.next = 0
			t.filled = true
		}
	}
}

// OnDequeue implements Table.
func (t *AFDTable) OnDequeue(now sim.Time, flow FlowID, bytes int) {}

// Flows implements Table: the distinct flows currently in the shadow
// buffer, in ring order.
func (t *AFDTable) Flows(now sim.Time, dst []FlowID) []FlowID {
	seen := make(map[FlowID]struct{}, len(t.shadow))
	n := t.next
	if t.filled {
		n = len(t.shadow)
	}
	for i := 0; i < n; i++ {
		f := t.shadow[i]
		if _, ok := seen[f]; ok {
			continue
		}
		seen[f] = struct{}{}
		dst = append(dst, f)
	}
	return dst
}

// Len implements Table.
func (t *AFDTable) Len() int {
	seen := make(map[FlowID]struct{}, len(t.shadow))
	n := t.next
	if t.filled {
		n = len(t.shadow)
	}
	for i := 0; i < n; i++ {
		seen[t.shadow[i]] = struct{}{}
	}
	return len(seen)
}
