package flowtable

import (
	"testing"
	"testing/quick"

	"rocc/internal/sim"
)

func flowsOf(tb Table, now sim.Time) map[FlowID]bool {
	set := make(map[FlowID]bool)
	for _, f := range tb.Flows(now, nil) {
		set[f] = true
	}
	return set
}

func TestQueueTableTracksOccupancy(t *testing.T) {
	tb := NewQueueTable()
	tb.OnEnqueue(0, 1, 1000)
	tb.OnEnqueue(0, 2, 1000)
	tb.OnEnqueue(0, 1, 500)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if tb.QueuedBytes(1) != 1500 {
		t.Errorf("QueuedBytes(1) = %d", tb.QueuedBytes(1))
	}
	tb.OnDequeue(0, 1, 1000)
	if !flowsOf(tb, 0)[1] {
		t.Error("flow 1 evicted while bytes remain")
	}
	tb.OnDequeue(0, 1, 500)
	if flowsOf(tb, 0)[1] {
		t.Error("flow 1 still present with zero bytes")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestQueueTableDequeueUnknownFlow(t *testing.T) {
	tb := NewQueueTable()
	tb.OnDequeue(0, 42, 1000) // must not panic or underflow
	if tb.Len() != 0 {
		t.Error("unknown dequeue created an entry")
	}
}

func TestQueueTableReinsertAfterDrain(t *testing.T) {
	tb := NewQueueTable()
	tb.OnEnqueue(0, 1, 100)
	tb.OnDequeue(0, 1, 100)
	tb.OnEnqueue(0, 1, 200)
	if tb.Len() != 1 || tb.QueuedBytes(1) != 200 {
		t.Errorf("re-inserted flow state: len=%d bytes=%d", tb.Len(), tb.QueuedBytes(1))
	}
}

// Property: QueueTable contents equal the reference set of flows with a
// positive byte balance under any enqueue/dequeue interleaving.
func TestQueueTableMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := NewQueueTable()
		ref := make(map[FlowID]int)
		for _, op := range ops {
			flow := FlowID(op % 8)
			size := int(op%500) + 1
			if op%2 == 0 {
				tb.OnEnqueue(0, flow, size)
				ref[flow] += size
			} else {
				tb.OnDequeue(0, flow, size)
				if ref[flow] > 0 {
					ref[flow] -= size
					if ref[flow] <= 0 {
						delete(ref, flow)
					}
				}
			}
		}
		got := flowsOf(tb, 0)
		if len(got) != len(ref) {
			return false
		}
		for f := range ref {
			if !got[f] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundedTableCapacity(t *testing.T) {
	tb := NewBoundedTable(3, sim.Millisecond)
	for i := 0; i < 10; i++ {
		tb.OnEnqueue(sim.Time(i), FlowID(i), 100)
	}
	if tb.Len() > 3 {
		t.Errorf("Len = %d exceeds capacity 3", tb.Len())
	}
	if tb.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
}

func TestBoundedTableEvictsOldest(t *testing.T) {
	tb := NewBoundedTable(2, sim.Second)
	tb.OnEnqueue(10, 1, 100)
	tb.OnEnqueue(20, 2, 100)
	tb.OnEnqueue(30, 1, 100) // refresh flow 1
	tb.OnEnqueue(40, 3, 100) // evicts flow 2 (oldest)
	got := flowsOf(tb, 40)
	if !got[1] || !got[3] || got[2] {
		t.Errorf("contents = %v, want {1,3}", got)
	}
}

func TestBoundedTableAgesOut(t *testing.T) {
	tb := NewBoundedTable(10, sim.Millisecond)
	tb.OnEnqueue(0, 1, 100)
	tb.OnEnqueue(0, 2, 100)
	tb.OnEnqueue(2*sim.Millisecond, 2, 100) // keep flow 2 fresh
	got := flowsOf(tb, 2*sim.Millisecond+1)
	if got[1] {
		t.Error("stale flow 1 not aged out")
	}
	if !got[2] {
		t.Error("fresh flow 2 aged out")
	}
}

func TestBoundedTableDefaults(t *testing.T) {
	tb := NewBoundedTable(0, 0)
	tb.OnEnqueue(0, 1, 1)
	if tb.Len() != 1 {
		t.Error("degenerate capacity not clamped to 1")
	}
}

func TestAFDSamplingCadence(t *testing.T) {
	tb := NewAFDTable(1000, 8)
	tb.OnEnqueue(0, 1, 999) // below period: no sample
	if tb.Len() != 0 {
		t.Error("sampled before a full period of bytes")
	}
	tb.OnEnqueue(0, 2, 1) // crosses 1000 bytes: sample flow 2
	if got := flowsOf(tb, 0); !got[2] || len(got) != 1 {
		t.Errorf("contents = %v, want {2}", got)
	}
}

func TestAFDMultipleSamplesPerPacket(t *testing.T) {
	tb := NewAFDTable(100, 8)
	tb.OnEnqueue(0, 7, 350) // 3 samples of the same flow
	if tb.Len() != 1 {
		t.Errorf("distinct flows = %d, want 1", tb.Len())
	}
	flows := tb.Flows(0, nil)
	if len(flows) != 1 || flows[0] != 7 {
		t.Errorf("Flows = %v", flows)
	}
}

func TestAFDRingWraps(t *testing.T) {
	tb := NewAFDTable(100, 4)
	for i := 0; i < 10; i++ {
		tb.OnEnqueue(0, FlowID(i), 100)
	}
	if tb.Len() > 4 {
		t.Errorf("shadow retains %d flows, exceeds ring size 4", tb.Len())
	}
	got := flowsOf(tb, 0)
	for i := 6; i < 10; i++ {
		if !got[FlowID(i)] {
			t.Errorf("ring lost recent flow %d", i)
		}
	}
}

func TestElephantTrapFavorsHeavyFlows(t *testing.T) {
	r := sim.NewRand(1)
	tb := NewElephantTrap(0.5, 4, r)
	// One elephant sends 10x the packets of 8 mice.
	for round := 0; round < 200; round++ {
		for i := 0; i < 10; i++ {
			tb.OnEnqueue(0, 100, 1000) // elephant
		}
		tb.OnEnqueue(0, FlowID(round%8), 1000) // rotating mice
	}
	if tb.Len() > 4 {
		t.Fatalf("Len = %d exceeds capacity", tb.Len())
	}
	if !flowsOf(tb, 0)[100] {
		t.Error("elephant not retained")
	}
	if tb.Count(100) < 10 {
		t.Errorf("elephant count = %d, want large", tb.Count(100))
	}
}

func TestElephantTrapCapacityInvariant(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		tb := NewElephantTrap(0.3, 5, sim.NewRand(seed))
		for _, op := range ops {
			tb.OnEnqueue(0, FlowID(op%32), int(op%1500)+1)
			if tb.Len() > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestElephantTrapDefaultsClamp(t *testing.T) {
	tb := NewElephantTrap(0, 0, sim.NewRand(1))
	for i := 0; i < 100; i++ {
		tb.OnEnqueue(0, FlowID(i), 100)
	}
	if tb.Len() > 1 {
		t.Error("capacity clamp failed")
	}
}

func TestBubbleCachePromotion(t *testing.T) {
	tb := NewBubbleCache(1.0, 4, 4, 3, sim.NewRand(1)) // sample everything
	tb.OnEnqueue(0, 1, 100)
	tb.OnEnqueue(0, 1, 100)
	if tb.Len() != 0 {
		t.Error("promoted before reaching the threshold")
	}
	tb.OnEnqueue(0, 1, 100) // third hit: promote
	if tb.Len() != 1 || !flowsOf(tb, 0)[1] {
		t.Error("flow not promoted to the main stage")
	}
	if tb.Promotions != 1 {
		t.Errorf("Promotions = %d", tb.Promotions)
	}
	if tb.FrontLen() != 0 {
		t.Error("promoted flow still in the front stage")
	}
}

func TestBubbleCacheOnlyMainReceivesFeedback(t *testing.T) {
	tb := NewBubbleCache(1.0, 8, 8, 100, sim.NewRand(1))
	tb.OnEnqueue(0, 5, 100) // front only
	if len(tb.Flows(0, nil)) != 0 {
		t.Error("front-stage flow reported as recipient")
	}
}

func TestBubbleCacheEvictsColdest(t *testing.T) {
	tb := NewBubbleCache(1.0, 8, 2, 2, sim.NewRand(1))
	promote := func(f FlowID, hits int) {
		for i := 0; i < 2; i++ {
			tb.OnEnqueue(0, f, 100)
		}
		for i := 0; i < hits; i++ {
			tb.OnEnqueue(0, f, 100) // main-stage hits
		}
	}
	promote(1, 5)
	promote(2, 0)
	promote(3, 0) // main full: must evict flow 2 (coldest), keep hot flow 1
	got := flowsOf(tb, 0)
	if !got[1] || !got[3] || got[2] {
		t.Errorf("main stage = %v, want {1,3}", got)
	}
}

func TestBubbleCacheMainCapacityInvariant(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		tb := NewBubbleCache(0.5, 3, 3, 2, sim.NewRand(seed))
		for _, op := range ops {
			tb.OnEnqueue(0, FlowID(op%32), 100)
			if tb.Len() > 3 || tb.FrontLen() > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOrderedSetRemoveMiddle(t *testing.T) {
	s := newOrderedSet()
	s.add(1)
	s.add(2)
	s.add(3)
	s.remove(2)
	if s.len() != 2 || !s.has(1) || !s.has(3) || s.has(2) {
		t.Errorf("set after remove: order=%v", s.order)
	}
	s.remove(2) // idempotent
	if s.len() != 2 {
		t.Error("double remove changed the set")
	}
}
