package stats

import "sort"

// FCTSample records one completed flow.
type FCTSample struct {
	Size    int     // flow size in bytes
	Seconds float64 // flow completion time
	Rate    float64 // average goodput in bits/s
}

// FCTRecorder accumulates completed-flow samples during a run.
type FCTRecorder struct {
	Samples []FCTSample
}

// Record adds a completed flow.
func (r *FCTRecorder) Record(size int, seconds float64) {
	rate := 0.0
	if seconds > 0 {
		rate = float64(size) * 8 / seconds
	}
	r.Samples = append(r.Samples, FCTSample{Size: size, Seconds: seconds, Rate: rate})
}

// BinStat is the per-size-bin FCT statistic the paper's Figs 14-16 plot.
type BinStat struct {
	UpperBytes int // inclusive upper edge of the bin
	Count      int
	AvgMs      float64
	P90Ms      float64
	P99Ms      float64
}

// BinBysize groups samples into the given size bins (inclusive upper edges,
// ascending; flows above the last edge land in the last bin) and summarizes
// FCT per bin in milliseconds.
func (r *FCTRecorder) BinBySize(edges []int) []BinStat {
	groups := make([][]float64, len(edges))
	for _, s := range r.Samples {
		idx := sort.SearchInts(edges, s.Size)
		if idx >= len(edges) {
			idx = len(edges) - 1
		}
		groups[idx] = append(groups[idx], s.Seconds*1e3)
	}
	out := make([]BinStat, len(edges))
	for i, g := range groups {
		sum := Summarize(g)
		out[i] = BinStat{
			UpperBytes: edges[i],
			Count:      sum.Count,
			AvgMs:      sum.Mean,
			P90Ms:      sum.P90,
			P99Ms:      sum.P99,
		}
	}
	return out
}

// RateStats returns mean and standard deviation of per-flow average rates in
// Mb/s, as Table 3 reports.
func (r *FCTRecorder) RateStats() (meanMbps, stddevMbps float64) {
	rates := make([]float64, 0, len(r.Samples))
	for _, s := range r.Samples {
		rates = append(rates, s.Rate/1e6)
	}
	return Mean(rates), StdDev(rates)
}
