// Package stats provides the small statistical toolkit the evaluation
// harness needs: percentiles, summary statistics, 95% confidence intervals
// across repeated runs, time-series recording, and per-bin aggregation of
// flow completion times.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the statistics the paper reports for a sample set.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	P50    float64
	P90    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. xs is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		P50:    percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		P99:    percentileSorted(sorted, 99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// tCrit95 holds the two-sided Student-t critical values t(0.975, df)
// for df = 1..30. Beyond the table, TCrit95 steps through the standard
// df = 40/60/120 values and then the normal limit.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for a
// sample of n observations (df = n-1), falling back to the normal
// z = 1.96 for large n. It returns 0 for n < 2, where no interval is
// defined.
func TCrit95(n int) float64 {
	df := n - 1
	switch {
	case df < 1:
		return 0
	case df <= len(tCrit95):
		return tCrit95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.96
	}
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// of xs. The paper reports averages of 5 repetitions with 95% confidence
// intervals; at such small n the interval must use the Student-t critical
// value (t(0.975, 4) = 2.776 for n = 5), not the normal z = 1.96, which
// undercovers by ~30%. TCrit95 converges to 1.96 for large samples.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return TCrit95(len(xs)) * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MeanCI returns the mean of xs together with its 95% CI half-width.
func MeanCI(xs []float64) (mean, ci float64) {
	return Mean(xs), CI95(xs)
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²): 1.0 for a
// perfectly even allocation, 1/n when one member takes everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
