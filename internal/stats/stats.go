// Package stats provides the small statistical toolkit the evaluation
// harness needs: percentiles, summary statistics, 95% confidence intervals
// across repeated runs, time-series recording, and per-bin aggregation of
// flow completion times.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the statistics the paper reports for a sample set.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	P50    float64
	P90    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. xs is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		P50:    percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		P99:    percentileSorted(sorted, 99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// of xs, using the normal approximation (1.96 * stderr). The paper reports
// averages of 5 repetitions with 95% confidence intervals.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MeanCI returns the mean of xs together with its 95% CI half-width.
func MeanCI(xs []float64) (mean, ci float64) {
	return Mean(xs), CI95(xs)
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²): 1.0 for a
// perfectly even allocation, 1/n when one member takes everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
