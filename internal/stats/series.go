package stats

// Point is one sample of a time series: a timestamp in seconds and a value.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series used to record queue sizes, fair
// rates and per-flow throughputs over a run.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Last returns the most recent value, or 0 if the series is empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// MeanAfter returns the mean of all samples with T >= t0. It is used to
// measure steady-state values while skipping the transient.
func (s *Series) MeanAfter(t0 float64) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.T >= t0 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxAfter returns the maximum of all samples with T >= t0, or 0 when none.
func (s *Series) MaxAfter(t0 float64) float64 {
	var max float64
	var seen bool
	for _, p := range s.Points {
		if p.T >= t0 {
			if !seen || p.V > max {
				max = p.V
				seen = true
			}
		}
	}
	return max
}

// StdDevAfter returns the sample standard deviation of samples with T >= t0.
func (s *Series) StdDevAfter(t0 float64) float64 {
	var vals []float64
	for _, p := range s.Points {
		if p.T >= t0 {
			vals = append(vals, p.V)
		}
	}
	return StdDev(vals)
}

// Values returns all sample values in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}
