package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of one sample should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2.138, 0.001) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("p100 = %v, want 3", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("p99 of single = %v, want 7", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); got != 15 {
		t.Errorf("p50 of {10,20} = %v, want 15", got)
	}
	if got := Percentile(xs, 25); got != 12.5 {
		t.Errorf("p25 = %v, want 12.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentiles are within [min, max] and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		v1, v2 := Percentile(raw, p1), Percentile(raw, p2)
		return v1 >= sorted[0] && v2 <= sorted[len(sorted)-1] && v1 <= v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Error("Summarize(nil).Count != 0")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of one sample should be 0")
	}
	// n=5 (the paper's repetition count): the interval must use the
	// Student-t critical value t(0.975, 4) = 2.776. StdDev of these
	// samples is sqrt(1.3), so the exact expected half-width is
	// 2.776 * sqrt(1.3) / sqrt(5) = 1.41549... — the pre-fix z=1.96
	// value (0.99938...) is ~30% too narrow and must NOT be returned.
	xs := []float64{10, 12, 9, 11, 10}
	want := 2.776 * math.Sqrt(1.3) / math.Sqrt(5)
	got := CI95(xs)
	if !almost(got, want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if !almost(got, 1.4154878, 1e-6) {
		t.Errorf("CI95 = %v, want 1.4154878 exactly", got)
	}
	zBased := 1.96 * StdDev(xs) / math.Sqrt(5)
	if almost(got, zBased, 1e-6) {
		t.Errorf("CI95 still uses the normal z=1.96 on n=5 (%v)", got)
	}
	mean, ci := MeanCI(xs)
	if mean != Mean(xs) || ci != CI95(xs) {
		t.Error("MeanCI mismatch")
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 0}, // no interval defined
		{2, 12.706}, {3, 4.303}, {5, 2.776}, {10, 2.262}, {31, 2.042},
		{41, 2.021}, {61, 2.000}, {121, 1.980}, {1000, 1.96},
	}
	for _, c := range cases {
		if got := TCrit95(c.n); got != c.want {
			t.Errorf("TCrit95(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// Monotone non-increasing in n: more samples never widen the factor.
	prev := math.Inf(1)
	for n := 2; n <= 200; n++ {
		v := TCrit95(n)
		if v > prev {
			t.Fatalf("TCrit95(%d) = %v > TCrit95(%d) = %v", n, v, n-1, prev)
		}
		prev = v
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 {
		t.Error("empty Last != 0")
	}
	s.Add(0.001, 10)
	s.Add(0.002, 20)
	s.Add(0.003, 30)
	if s.Last() != 30 {
		t.Errorf("Last = %v", s.Last())
	}
	if got := s.MeanAfter(0.002); got != 25 {
		t.Errorf("MeanAfter = %v, want 25", got)
	}
	if got := s.MeanAfter(1); got != 0 {
		t.Errorf("MeanAfter past end = %v, want 0", got)
	}
	if got := s.MaxAfter(0.0015); got != 30 {
		t.Errorf("MaxAfter = %v, want 30", got)
	}
	if got := s.MaxAfter(9); got != 0 {
		t.Errorf("MaxAfter empty window = %v, want 0", got)
	}
	if got := s.StdDevAfter(0.002); !almost(got, StdDev([]float64{20, 30}), 1e-12) {
		t.Errorf("StdDevAfter = %v", got)
	}
	if vs := s.Values(); len(vs) != 3 || vs[2] != 30 {
		t.Errorf("Values = %v", vs)
	}
}

func TestFCTRecorder(t *testing.T) {
	var r FCTRecorder
	r.Record(1000, 0.001) // 8 Mb/s
	r.Record(1000, 0)     // zero-duration guard
	if r.Samples[0].Rate != 8e6 {
		t.Errorf("rate = %v, want 8e6", r.Samples[0].Rate)
	}
	if r.Samples[1].Rate != 0 {
		t.Errorf("zero-duration rate = %v, want 0", r.Samples[1].Rate)
	}
}

func TestBinBySize(t *testing.T) {
	var r FCTRecorder
	r.Record(100, 0.001)
	r.Record(1000, 0.002)
	r.Record(1500, 0.004)
	r.Record(99999, 0.010) // beyond last edge -> last bin
	bins := r.BinBySize([]int{100, 1000, 2000})
	if bins[0].Count != 1 || bins[0].AvgMs != 1 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Count != 1 || bins[1].AvgMs != 2 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[2].Count != 2 {
		t.Errorf("bin2 count = %d, want 2 (1500 and the overflow)", bins[2].Count)
	}
	if bins[2].AvgMs != 7 {
		t.Errorf("bin2 avg = %v, want 7", bins[2].AvgMs)
	}
}

func TestRateStats(t *testing.T) {
	var r FCTRecorder
	r.Record(125000, 1.0) // 1 Mb/s
	r.Record(250000, 1.0) // 2 Mb/s
	mean, std := r.RateStats()
	if !almost(mean, 1.5, 1e-9) {
		t.Errorf("mean = %v, want 1.5", mean)
	}
	if !almost(std, StdDev([]float64{1, 2}), 1e-9) {
		t.Errorf("std = %v", std)
	}
}

// Property: every sample lands in exactly one bin, and bin counts sum to
// the sample count.
func TestBinningPartitionProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		var r FCTRecorder
		for _, s := range sizes {
			r.Record(int(s%200000), 0.001)
		}
		bins := r.BinBySize([]int{1000, 10000, 100000})
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almost(got, 1, 1e-12) {
		t.Errorf("even allocation index = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almost(got, 0.25, 1e-12) {
		t.Errorf("max-unfair index = %v, want 1/n", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	mixed := JainIndex([]float64{4, 2})
	if mixed <= 0.25 || mixed >= 1 {
		t.Errorf("mixed index = %v out of range", mixed)
	}
}
