package chaos

import (
	"reflect"
	"testing"

	"rocc/internal/adversary"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// TestRogueOverlayLeavesBaseStreamIntact: RogueProb must be a pure
// overlay — enabling the adversarial dimension never perturbs the
// scenario a seed has always generated. When the salted coin lands it
// may only mark flows rogue (making them persistent and uncapped),
// force their reliability where another overlay would have, and set
// Defended.
func TestRogueOverlayLeavesBaseStreamIntact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		base := Generate(seed, GenOptions{})
		rogued := Generate(seed, GenOptions{RogueProb: 0.5})

		if !rogued.Defended {
			// The salted coin said no: the scenario must be untouched.
			if rogued.RogueCount() != 0 {
				t.Fatalf("seed %d: rogues without Defended", seed)
			}
			if !reflect.DeepEqual(base, rogued) {
				t.Fatalf("seed %d: no rogues drawn but scenario differs:\n%+v\n%+v",
					seed, base, rogued)
			}
			continue
		}
		if rogued.RogueCount() == 0 {
			t.Fatalf("seed %d: Defended without rogues", seed)
		}
		if !reflect.DeepEqual(base.Topology, rogued.Topology) ||
			base.DurationNs != rogued.DurationNs ||
			base.Protocol != rogued.Protocol ||
			base.Mode != rogued.Mode ||
			!reflect.DeepEqual(base.Faults, rogued.Faults) {
			t.Fatalf("seed %d: rogue overlay changed more than the flows", seed)
		}
		if len(base.Flows) != len(rogued.Flows) {
			t.Fatalf("seed %d: rogue overlay changed the flow count", seed)
		}
		if rogued.Flows[0].Rogue != "" {
			t.Fatalf("seed %d: flow 0 marked rogue (no victim survives by construction)", seed)
		}
		for i := range base.Flows {
			b, m := base.Flows[i], rogued.Flows[i]
			if m.Rogue == "" {
				if !reflect.DeepEqual(b, m) {
					t.Fatalf("seed %d flow %d: honest flow perturbed:\n%+v\n%+v", seed, i, b, m)
				}
				continue
			}
			if _, err := adversary.ParseRogueKind(m.Rogue); err != nil {
				t.Fatalf("seed %d flow %d: %v", seed, i, err)
			}
			if m.SizeBytes != -1 || m.MaxRateMbps != 0 {
				t.Fatalf("seed %d flow %d: rogue not persistent+uncapped: %+v", seed, i, m)
			}
			// Everything but the sanctioned mutations matches the base draw.
			b.SizeBytes, b.MaxRateMbps, b.Reliable, b.Rogue = m.SizeBytes, m.MaxRateMbps, m.Reliable, m.Rogue
			if !reflect.DeepEqual(b, m) {
				t.Fatalf("seed %d flow %d: rogue overlay changed more than sanctioned:\n%+v\n%+v",
					seed, i, base.Flows[i], m)
			}
		}
		if err := rogued.Validate(); err != nil {
			t.Fatalf("seed %d: rogued scenario invalid: %v", seed, err)
		}
	}
}

// TestRogueOverlayDeterministic: same seed, same options, same rogues —
// and a forced draw marks every eligible scenario.
func TestRogueOverlayDeterministic(t *testing.T) {
	sawKind := map[string]bool{}
	for seed := int64(0); seed < 30; seed++ {
		a := Generate(seed, GenOptions{RogueProb: 1})
		b := Generate(seed, GenOptions{RogueProb: 1})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: rogue overlay not deterministic", seed)
		}
		if !a.Defended || a.RogueCount() == 0 {
			t.Fatalf("seed %d: RogueProb=1 drew no rogues (mode %q, %d flows)",
				seed, a.Mode, len(a.Flows))
		}
		for i := range a.Flows {
			if a.Flows[i].Rogue != "" {
				sawKind[a.Flows[i].Rogue] = true
			}
		}
	}
	for _, k := range adversary.RogueKinds() {
		if !sawKind[string(k)] {
			t.Errorf("30 forced seeds never drew rogue kind %q", k)
		}
	}
}

// TestRogueOverlaySkipsPFCOnly: with no controller running there is
// nothing for a rogue to subvert — PFC-only scenarios stay rogue-free
// even at RogueProb 1, and Validate rejects the combination outright.
func TestRogueOverlaySkipsPFCOnly(t *testing.T) {
	sawPFC := false
	for seed := int64(0); seed < 60; seed++ {
		sc := Generate(seed, GenOptions{ModeProb: 1, RogueProb: 1})
		if sc.Mode != netsim.ModePFCOnly.String() {
			continue
		}
		sawPFC = true
		if sc.RogueCount() != 0 || sc.Defended {
			t.Fatalf("seed %d: PFC-only scenario drew rogues", seed)
		}
	}
	if !sawPFC {
		t.Fatal("60 moded seeds never drew PFC-only")
	}

	sc := Scenario{
		Seed:       1,
		Protocol:   "RoCC",
		Topology:   TopologySpec{Kind: TopoStar, N: 2, Gbps: 40},
		DurationNs: int64(2 * sim.Millisecond),
		Mode:       netsim.ModePFCOnly.String(),
		Flows: []FlowSpec{
			{Src: 0, Dst: 2, SizeBytes: -1},
			{Src: 1, Dst: 2, SizeBytes: -1, Rogue: string(adversary.RogueBlast)},
		},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("Validate accepted a rogue flow in PFC-only mode")
	}
	sc.Mode = ""
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate rejected a hybrid rogue scenario: %v", err)
	}
	sc.Flows[1].Rogue = "omniscient"
	if err := sc.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown rogue kind")
	}
}

// TestRogueScenarioContained is the fixed-scenario end-to-end check: a
// defended star with blasting rogues quarantines them, keeps the
// victims delivering, and trips no invariant.
func TestRogueScenarioContained(t *testing.T) {
	sc := Scenario{
		Seed:       21,
		Protocol:   "RoCC",
		Topology:   TopologySpec{Kind: TopoStar, N: 5, Gbps: 10},
		DurationNs: int64(6 * sim.Millisecond),
		Defended:   true,
	}
	for i := 0; i < 3; i++ {
		sc.Flows = append(sc.Flows, FlowSpec{Src: i, Dst: 5, SizeBytes: -1, MaxRateMbps: 10000})
	}
	sc.Flows = append(sc.Flows,
		FlowSpec{Src: 3, Dst: 5, SizeBytes: -1, Rogue: string(adversary.RogueBlast)},
		FlowSpec{Src: 4, Dst: 5, SizeBytes: -1, Rogue: string(adversary.RogueCNPDeaf)},
	)
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("defended rogue scenario tripped %+v", res.Violations)
	}
	if res.Quarantines == 0 {
		t.Error("no rogue was quarantined")
	}
	if res.PolicedDrops == 0 {
		t.Error("quarantined blasters took no policed drops")
	}
	if res.Drops != 0 {
		t.Errorf("%d tail drops in a lossless fabric (policed drops are %d and separate)",
			res.Drops, res.PolicedDrops)
	}
	if res.DeliveredBytes == 0 {
		t.Error("nothing delivered at all")
	}
}

// TestDefendedCleanIdentity pins the observer contract at the chaos
// level: on a fault-free scenario where nothing misbehaves, attaching
// the full defense stack (policers, watchdogs, hardened RoCC RPs) must
// not change the run — same verdicts, same delivery, same counters.
// Faulted scenarios are deliberately out of scope: a flow whose
// feedback the faults destroyed is non-compliant in exactly the way a
// rogue is, and the policer holds it to the advertised share regardless
// of why it stopped listening.
func TestDefendedCleanIdentity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		sc := Generate(seed, GenOptions{FaultScale: -1, MaxDuration: 5 * sim.Millisecond})
		plain, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sc.Defended = true
		defendedRes, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if defendedRes.Quarantines != 0 || defendedRes.PolicedDrops != 0 ||
			defendedRes.WatchdogTrips != 0 || defendedRes.WatchdogDrops != 0 {
			t.Fatalf("seed %d: defenses intervened on a clean fabric: %+v", seed, defendedRes)
		}
		// Zero the defense-only fields and the rest must match exactly.
		defendedRes.Quarantines, defendedRes.Releases = 0, 0
		if !reflect.DeepEqual(plain, defendedRes) {
			t.Fatalf("seed %d: defended run diverged from plain:\n%+v\n%+v", seed, plain, defendedRes)
		}
	}
}

// TestFairnessExcludesQuarantinedFlows is the regression for the
// fairness monitor's quarantine exclusion: force-quarantine 4 of 5
// honest persistent flows (Jain over all five would be ~0.2, under the
// 0.25 floor) and the fairness invariant must not trip, because policed
// flows are being deliberately starved and are outside the contract.
func TestFairnessExcludesQuarantinedFlows(t *testing.T) {
	sc := Scenario{
		Seed:       31,
		Protocol:   "RoCC",
		Topology:   TopologySpec{Kind: TopoStar, N: 5, Gbps: 10},
		DurationNs: int64(6 * sim.Millisecond),
		Defended:   true,
	}
	for i := 0; i < 5; i++ {
		sc.Flows = append(sc.Flows, FlowSpec{Src: i, Dst: 5, SizeBytes: -1, MaxRateMbps: 10000})
	}
	forced := false
	force := CustomMonitor{
		Name: "force_quarantine",
		Sample: func(rt *Runtime) (string, bool) {
			if forced || rt.Engine.Now() < 500*sim.Microsecond {
				return "", false
			}
			for i := 1; i < 5; i++ {
				if rt.Flows[i] == nil {
					return "", false
				}
			}
			for i := 1; i < 5; i++ {
				rt.Policers[0].ForceQuarantine(rt.Flows[i].ID, netsim.Mbps(1))
			}
			forced = true
			return "", false
		},
	}
	res, err := Run(sc, RunOptions{Custom: []CustomMonitor{force}})
	if err != nil {
		t.Fatal(err)
	}
	if !forced {
		t.Fatal("the forced-quarantine hook never fired")
	}
	if res.Violated(InvFairness) {
		t.Error("fairness tripped on deliberately starved (quarantined) flows")
	}
	if res.Violated(InvQuarantine) {
		t.Error("quarantine ledger tripped on forced quarantines")
	}
	if res.Quarantines != 4 {
		t.Errorf("Quarantines = %d, want 4 forced", res.Quarantines)
	}
	if len(res.Violations) != 0 {
		t.Errorf("forced-quarantine run tripped %+v", res.Violations)
	}
}

// TestRoguedSoakBatchClean is the acceptance gate for the adversarial
// dimension: a fixed-seed soak with every scenario rogue-laden (plus
// mixing, modes and kills in the pool) must come back with zero
// invariant failures.
func TestRoguedSoakBatchClean(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 30
	}
	rep := Soak(SoakOptions{
		Seed:  777,
		Count: count,
		Gen:   GenOptions{RogueProb: 1, ModeProb: 0.2, MixProb: 0.2, FailProb: 0.2},
	})
	if rep.Scenarios != count {
		t.Fatalf("ran %d scenarios, want %d", rep.Scenarios, count)
	}
	if rep.Rogued == 0 {
		t.Fatal("no scenario drew rogues at RogueProb=1")
	}
	for _, v := range rep.Verdicts {
		if v.Failed() {
			t.Errorf("seed %d (%s, %s, %s, %d rogues): %+v %s",
				v.Seed, v.ProtocolLabel(), v.Topology, v.ModeLabel(), v.Rogues,
				v.Result.Violations, v.Err)
		}
	}
}
