package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

// soakVerdicts runs a fixed-seed campaign at one shard count and returns
// the verdict sequence serialized — the byte-level artifact the
// determinism contract is stated over.
func soakVerdicts(t *testing.T, count int, shards int) []byte {
	t.Helper()
	rep := Soak(SoakOptions{
		Seed:  2024,
		Count: count,
		Run:   RunOptions{Shards: shards},
	})
	if len(rep.Verdicts) != count {
		t.Fatalf("shards=%d: got %d verdicts, want %d", shards, len(rep.Verdicts), count)
	}
	b, err := json.Marshal(rep.Verdicts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSoakShardDeterminism runs the randomized chaos campaign — mixed
// topologies, protocols, faults, rogues and defenses — at shard counts
// 1, 2 and 8 and requires byte-for-byte identical verdict logs. This is
// the PR's strongest end-to-end determinism check: every subsystem the
// soak touches (mailboxes, barriers, pools, deferred completions,
// defense tickers, fault hooks) must be partition-independent.
func TestSoakShardDeterminism(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	base := soakVerdicts(t, count, 1)
	for _, k := range []int{2, 8} {
		got := soakVerdicts(t, count, k)
		if !bytes.Equal(base, got) {
			diffAt := len(base)
			for i := 0; i < len(base) && i < len(got); i++ {
				if base[i] != got[i] {
					diffAt = i
					break
				}
			}
			lo, hi := diffAt-80, diffAt+80
			if lo < 0 {
				lo = 0
			}
			window := func(b []byte) string {
				h := hi
				if h > len(b) {
					h = len(b)
				}
				if lo >= h {
					return ""
				}
				return string(b[lo:h])
			}
			t.Errorf("shards=%d verdicts diverge from shards=1 at byte %d:\n  1: …%s…\n  %d: …%s…",
				k, diffAt, window(base), k, window(got))
		}
	}
}

// TestRunShardedMatchesItself replays one generated scenario twice at
// the same shard count — the run must also be deterministic against
// itself (no map-order or goroutine-schedule leakage).
func TestRunShardedMatchesItself(t *testing.T) {
	sc := Generate(77, GenOptions{})
	a, err := Run(sc, RunOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, RunOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Errorf("same scenario, same shard count, different results:\n a: %s\n b: %s", ja, jb)
	}
}
