package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rocc/internal/experiments"
	"rocc/internal/harness"
	"rocc/internal/telemetry"
)

// SoakOptions configures a soak campaign.
type SoakOptions struct {
	// Seed is the campaign base seed; scenario i uses Seed + i, so any
	// verdict is replayable from the campaign seed and its index alone.
	Seed int64

	// Count is the number of scenarios to run. When Budget is also set,
	// the campaign ends at whichever limit is hit first; Count <= 0 with
	// a Budget means "until the budget expires".
	Count int

	// Budget is an optional wall-clock cap. Scenarios are launched in
	// batches and no new batch starts after the budget expires. It only
	// gates scheduling — verdicts never depend on it.
	Budget time.Duration

	// Workers bounds the harness pool (<= 0: GOMAXPROCS).
	Workers int

	// Gen and Run tune scenario generation and the monitors.
	Gen GenOptions
	Run RunOptions

	// Shrink minimizes failing scenarios after the sweep; MaxShrinkRuns
	// bounds each minimization (default 400 replays).
	Shrink        bool
	MaxShrinkRuns int

	// MaxRepros caps how many failures are shrunk and written out.
	// Default 5.
	MaxRepros int

	// OutDir, when non-empty, receives one repro per shrunk failure:
	// seed-<S>.json (the minimized scenario) and seed-<S>.trace.json
	// (a Chrome trace of its replay).
	OutDir string

	// OnScenario, if set, is called as each verdict lands (completion
	// order; serialized by the harness).
	OnScenario func(v Verdict)
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Count <= 0 && o.Budget <= 0 {
		o.Count = 100
	}
	if o.MaxShrinkRuns <= 0 {
		o.MaxShrinkRuns = 400
	}
	if o.MaxRepros <= 0 {
		o.MaxRepros = 5
	}
	return o
}

// Verdict is one scenario's outcome in the campaign log. It holds only
// simulation-derived values — no wall-clock — so a soak with the same
// seed and limits produces an identical verdict sequence regardless of
// worker count or machine speed.
type Verdict struct {
	Index    int    `json:"index"`
	Seed     int64  `json:"seed"`
	Protocol string `json:"protocol"`
	// Protocols lists every protocol sharing the fabric when the
	// scenario is mixed (primary first); empty for single-protocol runs.
	Protocols []string `json:"protocols,omitempty"`
	Topology  string   `json:"topology"`
	// Mode is the operating mode; empty means hybrid (the default).
	Mode   string `json:"mode,omitempty"`
	Flows  int    `json:"flows"`
	Faults int    `json:"faults"`
	// Rogues counts the scenario's rogue senders; Defended records
	// whether the switch-side defenses were attached.
	Rogues   int    `json:"rogues,omitempty"`
	Defended bool   `json:"defended,omitempty"`
	Result   Result `json:"result"`
	Err      string `json:"err,omitempty"`
}

// ModeLabel names the scenario's operating mode, spelling out the
// default instead of an empty string.
func (v Verdict) ModeLabel() string {
	if v.Mode == "" {
		return "hybrid"
	}
	return v.Mode
}

// ProtocolLabel names the scenario's protocol set: the primary protocol,
// or a +-joined list for mixed fabrics.
func (v Verdict) ProtocolLabel() string {
	if len(v.Protocols) > 1 {
		label := v.Protocols[0]
		for _, p := range v.Protocols[1:] {
			label += "+" + p
		}
		return label
	}
	return v.Protocol
}

// Failed reports whether the scenario tripped any invariant or errored.
func (v Verdict) Failed() bool {
	return v.Err != "" || len(v.Result.Violations) > 0
}

// Repro is one minimized failing case written to disk.
type Repro struct {
	Seed       int64  `json:"seed"`
	Invariant  string `json:"invariant"`
	ConfigPath string `json:"config_path,omitempty"`
	TracePath  string `json:"trace_path,omitempty"`
	Shrink     ShrinkResult
}

// Report is a whole campaign's outcome.
type Report struct {
	Seed      int64
	Scenarios int
	Failures  int
	Mixed     int // scenarios running ≥2 protocols on one fabric
	Moded     int // scenarios in a non-default operating mode
	Rogued    int // scenarios hosting rogue senders under the defenses
	Verdicts  []Verdict
	Repros    []Repro
}

// Soak runs a randomized scenario campaign: generate scenario i from
// seed base+i, run it under the monitor suite on the harness worker
// pool, and — for up to MaxRepros failures — shrink the scenario and
// emit its minimized repro. Verdicts come back in scenario order.
func Soak(opts SoakOptions) Report {
	o := opts.withDefaults()
	rep := Report{Seed: o.Seed}
	deadline := time.Time{}
	if o.Budget > 0 {
		deadline = time.Now().Add(o.Budget)
	}

	// Launch in batches so a budget-limited campaign stops between
	// batches without a stray goroutine outliving the call.
	const batch = 64
	for {
		remaining := batch
		if o.Count > 0 {
			if left := o.Count - rep.Scenarios; left < remaining {
				remaining = left
			}
		}
		if remaining <= 0 {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		base := rep.Scenarios
		results := harness.Run(remaining, harness.Options{Workers: o.Workers}, func(cell int) (Verdict, error) {
			idx := base + cell
			sc := Generate(o.Seed+int64(idx), o.Gen)
			v := Verdict{
				Index:    idx,
				Seed:     sc.Seed,
				Protocol: sc.Protocol,
				Topology: sc.Topology.Kind,
				Mode:     sc.Mode,
				Flows:    len(sc.Flows),
				Faults:   len(sc.Faults),
				Rogues:   sc.RogueCount(),
				Defended: sc.Defended,
			}
			if protos := sc.Protocols(); len(protos) > 1 {
				for _, p := range protos {
					v.Protocols = append(v.Protocols, string(p))
				}
			}
			res, err := Run(sc, o.Run)
			if err != nil {
				v.Err = err.Error()
			}
			v.Result = res
			return v, nil
		})
		for _, r := range results {
			v := r.Value
			if r.Err != nil { // cell panic
				v.Index = base + r.Index
				v.Seed = o.Seed + int64(v.Index)
				v.Err = r.Err.Error()
			}
			if v.Failed() {
				rep.Failures++
			}
			if len(v.Protocols) > 1 {
				rep.Mixed++
			}
			if v.Mode != "" {
				rep.Moded++
			}
			if v.Rogues > 0 {
				rep.Rogued++
			}
			rep.Verdicts = append(rep.Verdicts, v)
			if o.OnScenario != nil {
				o.OnScenario(v)
			}
		}
		rep.Scenarios += remaining
	}

	if o.Shrink {
		for _, v := range rep.Verdicts {
			if len(rep.Repros) >= o.MaxRepros {
				break
			}
			if len(v.Result.Violations) == 0 {
				continue
			}
			inv := v.Result.Violations[0].Invariant
			sc := Generate(v.Seed, o.Gen)
			sr := Shrink(sc, inv, o.Run, o.MaxShrinkRuns)
			r := Repro{Seed: v.Seed, Invariant: inv, Shrink: sr}
			if o.OutDir != "" {
				if err := writeRepro(&r, o.OutDir, o.Run); err != nil {
					// Repro emission is best-effort; the in-memory
					// ShrinkResult still carries the minimized scenario.
					fmt.Fprintf(os.Stderr, "chaos: writing repro for seed %d: %v\n", v.Seed, err)
				}
			}
			rep.Repros = append(rep.Repros, r)
		}
	}
	return rep
}

// writeRepro persists a minimized scenario as config JSON plus a Chrome
// trace of its replay's failing window.
func writeRepro(r *Repro, dir string, runOpts RunOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := filepath.Join(dir, fmt.Sprintf("seed-%d.json", r.Seed))
	if err := r.Shrink.Minimized.Save(cfg); err != nil {
		return err
	}
	r.ConfigPath = cfg

	// Replay with the flight recorder on; StopOnFirst keeps the ring
	// buffer's tail at the violation instant.
	tel := experiments.NewRunTelemetry()
	runOpts.Telemetry = tel
	runOpts.StopOnFirst = true
	if _, err := Run(r.Shrink.Minimized, runOpts); err != nil {
		return err
	}
	trace := filepath.Join(dir, fmt.Sprintf("seed-%d.trace.json", r.Seed))
	f, err := os.Create(trace)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteChromeTrace(f, tel.Events()); err != nil {
		return err
	}
	r.TracePath = trace
	return nil
}
