package chaos

import (
	"reflect"
	"testing"

	"rocc/internal/experiments"
)

// identityScenario exercises every terminal release point the pool has:
// sink consumption, tail drops, ACK/CNP absorption, pause delivery, fault
// drops, corrupt-clone substitution, and duplicate delivery — under a
// fixed seed so two runs of the same binary are bit-for-bit comparable.
func identityScenario(proto experiments.Protocol) Scenario {
	const ms = int64(1e6)
	return Scenario{
		Seed:       91,
		Protocol:   string(proto),
		Topology:   TopologySpec{Kind: TopoStar, N: 4, Gbps: 10},
		DurationNs: 3 * ms,
		Flows: []FlowSpec{
			{Src: 0, Dst: 4, SizeBytes: -1},
			{Src: 1, Dst: 4, SizeBytes: -1},
			{Src: 2, Dst: 4, SizeBytes: 500_000, Reliable: true},
			{Src: 3, Dst: 4, SizeBytes: 200_000, StartNs: ms / 2},
		},
		Faults: []FaultSpec{
			{Kind: FaultLink, Link: 0, Scope: ScopeData, Drop: 0.01, Duplicate: 0.01, Reorder: 0.02},
			{Kind: FaultLink, Link: 1, Scope: ScopeCNP, Drop: 0.05, Corrupt: 0.05},
			{Kind: FaultCNPLoss, Switch: 0, Prob: 0.1},
		},
	}
}

// TestPoolingByteIdentity pins the pooling refactor's core promise: reuse
// is invisible. For every protocol, a fixed-seed chaos run with pooling on
// and the same run with pooling off (every acquire allocates fresh) must
// produce identical verdicts, counters, and telemetry event streams.
func TestPoolingByteIdentity(t *testing.T) {
	for _, proto := range experiments.AllProtocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			sc := identityScenario(proto)

			pooledTel := experiments.NewRunTelemetry()
			pooled, err := Run(sc, RunOptions{Telemetry: pooledTel})
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}

			plainTel := experiments.NewRunTelemetry()
			plain, err := Run(sc, RunOptions{Telemetry: plainTel, DisablePacketPool: true})
			if err != nil {
				t.Fatalf("unpooled run: %v", err)
			}

			if !reflect.DeepEqual(pooled, plain) {
				t.Errorf("verdict diverged with pooling off:\n  pooled:   %+v\n  unpooled: %+v", pooled, plain)
			}

			pe, qe := pooledTel.Events(), plainTel.Events()
			if len(pe) == 0 {
				t.Fatal("telemetry captured no events; identity check is vacuous")
			}
			if !reflect.DeepEqual(pe, qe) {
				n := len(pe)
				if len(qe) < n {
					n = len(qe)
				}
				for i := 0; i < n; i++ {
					if !reflect.DeepEqual(pe[i], qe[i]) {
						t.Fatalf("trace diverged at event %d of %d/%d:\n  pooled:   %+v\n  unpooled: %+v",
							i, len(pe), len(qe), pe[i], qe[i])
					}
				}
				t.Fatalf("trace lengths diverged: pooled %d events, unpooled %d", len(pe), len(qe))
			}
			if pooled.DeliveredBytes == 0 {
				t.Error("scenario delivered no bytes; identity check is vacuous")
			}
		})
	}
}
