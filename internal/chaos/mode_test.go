package chaos

import (
	"reflect"
	"testing"

	"rocc/internal/experiments"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// TestModeOverlayLeavesBaseStreamIntact: ModeProb must be a pure
// overlay — enabling the mode dimension never perturbs the scenario a
// seed has always generated; it may only set Mode (and, for the lossy
// mode, force flows reliable).
func TestModeOverlayLeavesBaseStreamIntact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		base := Generate(seed, GenOptions{})
		moded := Generate(seed, GenOptions{ModeProb: 0.5})

		if moded.Mode == "" {
			// The salted coin said no: the scenario must be untouched.
			if !reflect.DeepEqual(base, moded) {
				t.Fatalf("seed %d: no mode drawn but scenario differs:\n%+v\n%+v",
					seed, base, moded)
			}
			continue
		}
		if _, err := netsim.ParseOperatingMode(moded.Mode); err != nil {
			t.Fatalf("seed %d: overlay drew unparseable mode %q", seed, moded.Mode)
		}
		if !reflect.DeepEqual(base.Topology, moded.Topology) ||
			base.DurationNs != moded.DurationNs ||
			base.Protocol != moded.Protocol ||
			!reflect.DeepEqual(base.Faults, moded.Faults) {
			t.Fatalf("seed %d: mode overlay changed more than the mode", seed)
		}
		if len(base.Flows) != len(moded.Flows) {
			t.Fatalf("seed %d: mode overlay changed the flow count", seed)
		}
		lossy := moded.Mode == netsim.ModeCCOnlyLossy.String()
		for i := range base.Flows {
			b, m := base.Flows[i], moded.Flows[i]
			if lossy {
				b.Reliable = true // the one sanctioned mutation
			}
			if !reflect.DeepEqual(b, m) {
				t.Fatalf("seed %d flow %d: overlay changed more than reliability:\n%+v\n%+v",
					seed, i, b, m)
			}
		}
		if err := moded.Validate(); err != nil {
			t.Fatalf("seed %d: moded scenario invalid: %v", seed, err)
		}
	}
}

func TestModeOverlayDeterministic(t *testing.T) {
	sawPFC, sawLossy := false, false
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, GenOptions{ModeProb: 1})
		b := Generate(seed, GenOptions{ModeProb: 1})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: mode overlay not deterministic", seed)
		}
		if a.Mode == "" {
			t.Fatalf("seed %d: ModeProb=1 left the default mode", seed)
		}
		switch a.Mode {
		case netsim.ModePFCOnly.String():
			sawPFC = true
		case netsim.ModeCCOnlyLossy.String():
			sawLossy = true
		}
	}
	if !sawPFC || !sawLossy {
		t.Fatalf("20 forced seeds never drew both modes (pfc=%v lossy=%v)", sawPFC, sawLossy)
	}
}

func TestValidateRejectsUnknownMode(t *testing.T) {
	sc := killScenario(FaultSwitchKill, int64(sim.Millisecond), int64(2*sim.Millisecond))
	sc.Mode = "chaotic-good"
	if err := sc.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown operating mode")
	}
	for _, m := range netsim.AllOperatingModes() {
		sc.Mode = m.String()
		if err := sc.Validate(); err != nil {
			t.Fatalf("Validate rejected mode %q: %v", sc.Mode, err)
		}
	}
}

// TestCleanModedScenariosTripNoInvariant extends the calibration gate to
// the mode dimension: fault-free scenarios must stay violation-free in
// every operating mode, for every protocol.
func TestCleanModedScenariosTripNoInvariant(t *testing.T) {
	gen := GenOptions{FaultScale: -1, MaxDuration: 5 * sim.Millisecond, ModeProb: 1}
	for _, p := range experiments.AllProtocols() {
		gen.Protocols = []experiments.Protocol{p}
		for seed := int64(0); seed < 3; seed++ {
			sc := Generate(seed, gen)
			if sc.Mode == "" {
				t.Fatalf("ModeProb=1 generated a default-mode scenario")
			}
			res, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", p, seed, err)
			}
			if len(res.Violations) != 0 {
				t.Errorf("%s seed %d (%s, %s): clean moded run tripped %+v",
					p, seed, sc.Topology.Kind, sc.Mode, res.Violations)
			}
		}
	}
}

// A CC-only lossy scenario that actually drops must NOT trip the
// lossless-drops invariant — drops are the regime, not a violation —
// while the rest of the suite stays green.
func TestLossyModeDropsWithoutLosslessViolation(t *testing.T) {
	sc := Scenario{
		Seed:       11,
		Protocol:   "DCQCN",
		Topology:   TopologySpec{Kind: TopoStar, N: 12, Gbps: 10},
		// 12 x 400 KB through the 10G hub is ~3.9 ms of pure
		// serialization; the window adds room for go-back-N waste and
		// DCQCN convergence so every transfer can finish.
		DurationNs: int64(16 * sim.Millisecond),
		Mode:       netsim.ModeCCOnlyLossy.String(),
	}
	// An incast of line-rate reliable senders into the hub overwhelms
	// the capped buffer before CC converges.
	for i := 0; i < 12; i++ {
		sc.Flows = append(sc.Flows, FlowSpec{Src: i, Dst: 12, SizeBytes: 400 * 1000, Reliable: true})
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("lossy incast dropped nothing — the mode is not biting")
	}
	if res.PFCFrames != 0 {
		t.Fatalf("lossy mode emitted %d PFC frames", res.PFCFrames)
	}
	if res.Violated(InvLosslessDrops) {
		t.Fatal("lossless_drops tripped in a mode where drops are sanctioned")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("lossy scenario tripped %+v", res.Violations)
	}
	if res.FlowsDone != len(sc.Flows) {
		t.Fatalf("only %d/%d reliable transfers completed over go-back-N",
			res.FlowsDone, len(sc.Flows))
	}
}

// TestModedSoakBatchClean is the acceptance gate for the mode dimension:
// a fixed-seed soak batch with modes, mixing and kills all enabled must
// come back with zero invariant failures.
func TestModedSoakBatchClean(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 30
	}
	rep := Soak(SoakOptions{
		Seed:  4242,
		Count: count,
		Gen:   GenOptions{ModeProb: 0.4, MixProb: 0.2, FailProb: 0.2},
	})
	if rep.Scenarios != count {
		t.Fatalf("ran %d scenarios, want %d", rep.Scenarios, count)
	}
	if rep.Moded == 0 {
		t.Fatal("no scenario drew a non-default mode")
	}
	for _, v := range rep.Verdicts {
		if v.Failed() {
			t.Errorf("seed %d (%s, %s, %s): %+v %s",
				v.Seed, v.ProtocolLabel(), v.Topology, v.ModeLabel(), v.Result.Violations, v.Err)
		}
	}
}
