package chaos

import (
	"reflect"
	"strings"
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// TestKillOverlayLeavesBaseStreamIntact: FailProb must be a pure
// overlay — the base scenario (flows, topology, non-flap faults,
// durations) comes from the same RNG stream whether or not kills are
// enabled, so enabling failures never perturbs what a seed means.
func TestKillOverlayLeavesBaseStreamIntact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		base := Generate(seed, GenOptions{})
		killed := Generate(seed, GenOptions{FailProb: 0.5})

		hasKill := false
		for _, f := range killed.Faults {
			if f.Kind == FaultLinkKill || f.Kind == FaultSwitchKill {
				hasKill = true
			}
		}
		if !hasKill {
			// The salted coin said no: the scenario must be untouched.
			if !reflect.DeepEqual(base, killed) {
				t.Fatalf("seed %d: no kill drawn but scenario differs:\n%+v\n%+v",
					seed, base, killed)
			}
			continue
		}
		// Kill drawn: same topology, same flow placement; only the fault
		// list (flaps stripped, one kill appended) and reliability of
		// persistent flows may differ.
		if !reflect.DeepEqual(base.Topology, killed.Topology) {
			t.Fatalf("seed %d: kill overlay changed the topology", seed)
		}
		if base.DurationNs != killed.DurationNs || base.Protocol != killed.Protocol {
			t.Fatalf("seed %d: kill overlay changed duration or protocol", seed)
		}
		if len(base.Flows) != len(killed.Flows) {
			t.Fatalf("seed %d: kill overlay changed the flow count", seed)
		}
		for i := range base.Flows {
			b, k := base.Flows[i], killed.Flows[i]
			if b.SizeBytes == -1 {
				b.Reliable = true // the one sanctioned mutation
			}
			if !reflect.DeepEqual(b, k) {
				t.Fatalf("seed %d flow %d: overlay changed more than reliability:\n%+v\n%+v",
					seed, i, b, k)
			}
		}
		for _, f := range killed.Faults {
			if f.Kind == FaultFlap {
				t.Fatalf("seed %d: flap survived alongside a kill", seed)
			}
		}
		if err := killed.Validate(); err != nil {
			t.Fatalf("seed %d: kill scenario invalid: %v", seed, err)
		}
	}
}

func TestKillOverlayDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, GenOptions{FailProb: 1})
		b := Generate(seed, GenOptions{FailProb: 1})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: kill overlay not deterministic", seed)
		}
	}
}

func killScenario(kind string, at, restore int64) Scenario {
	sc := Scenario{
		Seed:       1,
		Protocol:   "RoCC",
		Topology:   TopologySpec{Kind: TopoStar, N: 4, Gbps: 40},
		DurationNs: int64(4 * sim.Millisecond),
		Flows: []FlowSpec{
			{Src: 0, Dst: 4, SizeBytes: -1, MaxRateMbps: 10000, Reliable: true},
		},
		Faults: []FaultSpec{{Kind: kind, AtNs: at, RestoreNs: restore}},
	}
	return sc
}

func TestValidateRejectsBadKills(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no restore", func(sc *Scenario) { sc.Faults[0].RestoreNs = 0 }, "restore"},
		{"restore past end", func(sc *Scenario) { sc.Faults[0].RestoreNs = sc.DurationNs + 1 }, "restore"},
		{"link out of range", func(sc *Scenario) { sc.Faults[0].Kind = FaultLinkKill; sc.Faults[0].Link = 99 }, "link"},
		{"switch out of range", func(sc *Scenario) { sc.Faults[0].Switch = 99 }, "switch"},
		{"second kill", func(sc *Scenario) {
			sc.Faults = append(sc.Faults, FaultSpec{Kind: FaultLinkKill, Link: 0, AtNs: 100, RestoreNs: 200})
		}, "second topology kill"},
		{"kill plus flap", func(sc *Scenario) {
			sc.Faults = append(sc.Faults, FaultSpec{Kind: FaultFlap, Link: 0, PeriodNs: 100000, ActiveNs: 50000})
		}, "flap"},
	}
	for _, tc := range cases {
		sc := killScenario(FaultSwitchKill, int64(sim.Millisecond), int64(2*sim.Millisecond))
		tc.mut(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	good := killScenario(FaultSwitchKill, int64(sim.Millisecond), int64(2*sim.Millisecond))
	if err := good.Validate(); err != nil {
		t.Errorf("valid kill scenario rejected: %v", err)
	}
}

// TestKillScenariosRecover: hand-built link- and switch-kill scenarios
// across topologies must come out of Run with zero violations — the
// blackhole, recovery, and stale-pause invariants all armed.
func TestKillScenariosRecover(t *testing.T) {
	scenarios := []Scenario{
		killScenario(FaultSwitchKill, int64(sim.Millisecond), int64(2*sim.Millisecond)),
		func() Scenario {
			sc := killScenario(FaultLinkKill, int64(sim.Millisecond), int64(2*sim.Millisecond))
			sc.Faults[0].Link = 0 // source 0's access link, on the flow's path
			return sc
		}(),
		{
			Seed:       2,
			Protocol:   "HPCC",
			Topology:   TopologySpec{Kind: TopoFatTree, Cores: 2, Edges: 3, HostsPerEdge: 2, Gbps: 40},
			DurationNs: int64(5 * sim.Millisecond),
			Flows: []FlowSpec{
				{Src: 0, Dst: 3, SizeBytes: -1, MaxRateMbps: 8000, Reliable: true},
				{Src: 1, Dst: 5, SizeBytes: -1, MaxRateMbps: 8000, Reliable: true},
			},
			Faults: []FaultSpec{{Kind: FaultSwitchKill, Switch: 0, AtNs: int64(sim.Millisecond), RestoreNs: int64(2 * sim.Millisecond)}},
		},
	}
	for i, sc := range scenarios {
		res, err := Run(sc, RunOptions{})
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if len(res.Violations) > 0 {
			t.Errorf("scenario %d (%s %s): violations %+v",
				i, sc.Protocol, sc.Faults[0].Kind, res.Violations)
		}
		if res.DeliveredBytes == 0 {
			t.Errorf("scenario %d delivered nothing", i)
		}
		if res.FaultStats.LinkKills+res.FaultStats.SwitchKills != 1 {
			t.Errorf("scenario %d: kill never executed (stats %+v)", i, res.FaultStats)
		}
		if res.FaultStats.Restores != 1 {
			t.Errorf("scenario %d: restore never executed", i)
		}
	}
}

// TestRecoveryCheckersHaveTeeth drives the final checkers directly with
// a synthetic recovery snapshot: a wedged flow, a still-failed switch,
// and post-reconvergence blackholes must each trip their invariant.
func TestRecoveryCheckersHaveTeeth(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1})
	engine.RunUntil(sim.Millisecond)
	f.Stop()
	engine.RunUntil(2 * sim.Millisecond)

	rt := &Runtime{Net: net, Flows: []*netsim.Flow{f}}
	rt.recoverSet = true
	rt.liveAtRecovery = true

	// Bytes froze at the snapshot value: recovery must trip.
	rt.recoverBytes = f.DeliveredBytes()
	if _, bad := checkRecovery(rt, RunOptions{}); !bad {
		t.Error("checkRecovery passed a flow that delivered nothing after restore")
	}
	// Bytes grew past the snapshot: recovery must pass.
	rt.recoverBytes = f.DeliveredBytes() - 1
	if detail, bad := checkRecovery(rt, RunOptions{}); bad {
		t.Errorf("checkRecovery tripped on a recovered flow: %s", detail)
	}

	// Whole fabric: blackhole check passes.
	rt.blackholeAtRecovery = net.BlackholeDrops()
	if detail, bad := checkBlackhole(rt, RunOptions{}); bad {
		t.Errorf("checkBlackhole tripped on a whole fabric: %s", detail)
	}
	// A switch that never came back must trip it.
	net.FailSwitch(sw)
	if _, bad := checkBlackhole(rt, RunOptions{}); !bad {
		t.Error("checkBlackhole passed with a failed switch")
	}
	// Snapshot gating: without a snapshot neither checker may fire.
	rt.recoverSet = false
	if _, bad := checkBlackhole(rt, RunOptions{}); bad {
		t.Error("checkBlackhole fired without a recovery snapshot")
	}
	if _, bad := checkRecovery(rt, RunOptions{}); bad {
		t.Error("checkRecovery fired without a recovery snapshot")
	}
}

// TestShrinkPreservesKillRepro plants a synthetic invariant that needs
// the switch kill to have executed, pads the scenario with decoy faults
// and flows, and asserts the shrinker keeps the kill, sheds the rest,
// and never shortens the run below the restore time.
func TestShrinkPreservesKillRepro(t *testing.T) {
	sc := killScenario(FaultSwitchKill, int64(sim.Millisecond), int64(2*sim.Millisecond))
	sc.Topology.N = 6
	sc.Flows = append(sc.Flows,
		FlowSpec{Src: 1, Dst: 6, SizeBytes: 20000, StartNs: 0},
		FlowSpec{Src: 2, Dst: 6, SizeBytes: 20000, StartNs: 1000},
	)
	sc.Faults = append(sc.Faults,
		FaultSpec{Kind: FaultLink, Link: 1, Scope: ScopeData, Drop: 0.02},
		FaultSpec{Kind: FaultCNPLoss, Switch: 0, Prob: 0.2},
	)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	const inv = "kill_executed"
	opts := RunOptions{Custom: []CustomMonitor{{
		Name: inv,
		Final: func(rt *Runtime) (string, bool) {
			if rt.Injector == nil {
				return "", false
			}
			if s := rt.Injector.Stats(); s.SwitchKills > 0 {
				return "switch kill executed", true
			}
			return "", false
		},
	}}}

	sr := Shrink(sc, inv, opts, 300)
	if !sr.Reproduced {
		t.Fatal("kill invariant did not trip on the original")
	}
	m := sr.Minimized
	if len(m.Faults) != 1 || m.Faults[0].Kind != FaultSwitchKill {
		t.Fatalf("minimized faults = %+v, want just the switch kill", m.Faults)
	}
	if len(m.Flows) != 0 {
		t.Errorf("shrinker kept %d decoy flows", len(m.Flows))
	}
	if m.DurationNs < m.Faults[0].RestoreNs {
		t.Errorf("duration %d shrunk below the restore at %d",
			m.DurationNs, m.Faults[0].RestoreNs)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("minimized kill scenario invalid: %v", err)
	}
	res, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated(inv) {
		t.Error("minimized scenario does not replay the kill")
	}
}
