package chaos

import "sort"

// ShrinkResult is the outcome of minimizing a failing scenario.
type ShrinkResult struct {
	Original   Scenario `json:"original"`
	Minimized  Scenario `json:"minimized"`
	Invariant  string   `json:"invariant"`
	Runs       int      `json:"runs"`       // reproduction attempts executed
	Reproduced bool     `json:"reproduced"` // the violation reproduced on the untouched scenario
}

// Shrink delta-debugs a failing scenario down to a minimal reproduction
// of one invariant violation: it removes fault events and flows
// (ddmin), halves the duration, and compacts unused star sources, as
// long as the named invariant still trips on replay. maxRuns bounds the
// total reproduction attempts (<= 0 selects 400). The returned
// Minimized scenario is self-contained: running it with the same
// options reproduces the violation from its seed alone.
func Shrink(sc Scenario, invariant string, opts RunOptions, maxRuns int) ShrinkResult {
	if maxRuns <= 0 {
		maxRuns = 400
	}
	// Shrink replays want the cheapest run that still answers "does the
	// invariant trip": stop at the first violation, record nothing.
	opts.StopOnFirst = true
	opts.Telemetry = nil

	budget := maxRuns
	trips := func(s Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		res, err := Run(s, opts)
		return err == nil && res.Violated(invariant)
	}

	out := ShrinkResult{Original: sc, Minimized: sc, Invariant: invariant}
	if !trips(sc) {
		out.Runs = maxRuns - budget
		return out
	}
	out.Reproduced = true

	cur := sc
	for {
		before := shrinkSize(cur)

		cur.Faults = ddmin(cur.Faults, func(fs []FaultSpec) bool {
			c := cur
			c.Faults = fs
			return trips(c)
		})
		cur.Flows = ddmin(cur.Flows, func(fl []FlowSpec) bool {
			c := cur
			c.Flows = fl
			return trips(c)
		})
		cur = shrinkDuration(cur, trips)
		cur = compactStar(cur, trips)
		cur = shrinkMode(cur, trips)
		cur = shrinkDefense(cur, trips)

		if shrinkSize(cur) >= before || budget <= 0 {
			break
		}
	}
	out.Minimized = cur
	out.Runs = maxRuns - budget
	return out
}

// shrinkSize is the cost function minimization drives down.
func shrinkSize(sc Scenario) int {
	return len(sc.Flows)*100 + len(sc.Faults)*100 + sc.Topology.hostCount() + int(sc.DurationNs/1e6)
}

// ddmin is the classic delta-debugging minimizer: it tries dropping
// complements of ever-finer chunks, keeping any reduction for which the
// failure (test == true) persists. test([]) short-circuits everything.
func ddmin[T any](items []T, test func([]T) bool) []T {
	if len(items) == 0 {
		return items
	}
	if test(nil) {
		return nil
	}
	n := 2
	for len(items) >= 2 {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(items); lo += chunk {
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			complement := make([]T, 0, len(items)-(hi-lo))
			complement = append(complement, items[:lo]...)
			complement = append(complement, items[hi:]...)
			if test(complement) {
				items = complement
				n--
				if n < 2 {
					n = 2
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break
			}
			n *= 2
			if n > len(items) {
				n = len(items)
			}
		}
	}
	return items
}

// shrinkDuration halves the scenario length while the violation
// reproduces. Halving stops once any flow's start time or the floor of
// 1 ms would be crossed.
func shrinkDuration(sc Scenario, trips func(Scenario) bool) Scenario {
	for sc.DurationNs/2 >= 1e6 {
		half := sc.DurationNs / 2
		ok := true
		for _, f := range sc.Flows {
			if f.StartNs >= half {
				ok = false
				break
			}
		}
		for _, f := range sc.Faults {
			if (f.Kind == FaultLinkKill || f.Kind == FaultSwitchKill) && f.RestoreNs > half {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		c := sc
		c.DurationNs = half
		if !trips(c) {
			break
		}
		sc = c
	}
	return sc
}

// shrinkMode drops a non-default operating mode when the violation
// reproduces without it: a repro that trips in plain hybrid is simpler
// than one that needs the mode dimension.
func shrinkMode(sc Scenario, trips func(Scenario) bool) Scenario {
	if sc.Mode == "" {
		return sc
	}
	c := sc
	c.Mode = ""
	if trips(c) {
		return c
	}
	return sc
}

// shrinkDefense drops the adversarial dimension when the violation
// reproduces without it: first the defenses alone, then defenses and
// rogue marks together — a repro that trips on a plain fabric is simpler
// than one that needs an attack to be under way.
func shrinkDefense(sc Scenario, trips func(Scenario) bool) Scenario {
	if !sc.Defended && sc.RogueCount() == 0 {
		return sc
	}
	plain := sc
	plain.Defended = false
	plain.Flows = append([]FlowSpec(nil), sc.Flows...)
	for i := range plain.Flows {
		plain.Flows[i].Rogue = ""
	}
	if trips(plain) {
		return plain
	}
	if sc.Defended && sc.RogueCount() > 0 {
		c := sc
		c.Defended = false
		if trips(c) {
			return c
		}
	}
	return sc
}

// compactStar removes star sources nothing references, remapping flow
// host indices and fault link indices onto the smaller topology (source
// i's access link is link i; the destination link, index N, follows).
func compactStar(sc Scenario, trips func(Scenario) bool) Scenario {
	if sc.Topology.Kind != TopoStar {
		return sc
	}
	n := sc.Topology.N
	used := make(map[int]bool)
	for _, f := range sc.Flows {
		if f.Src < n {
			used[f.Src] = true
		}
		if f.Dst < n {
			used[f.Dst] = true
		}
	}
	for _, f := range sc.Faults {
		if (f.Kind == FaultLink || f.Kind == FaultFlap || f.Kind == FaultLinkKill) && f.Link < n {
			used[f.Link] = true
		}
	}
	if len(used) == 0 || len(used) >= n {
		return sc
	}
	var keep []int
	for i := range used {
		keep = append(keep, i)
	}
	sort.Ints(keep)
	remap := make(map[int]int, len(keep))
	for newIdx, oldIdx := range keep {
		remap[oldIdx] = newIdx
	}
	c := sc
	c.Topology.N = len(keep)
	c.Flows = append([]FlowSpec(nil), sc.Flows...)
	for i := range c.Flows {
		if c.Flows[i].Src == n {
			c.Flows[i].Src = len(keep)
		} else {
			c.Flows[i].Src = remap[c.Flows[i].Src]
		}
		if c.Flows[i].Dst == n {
			c.Flows[i].Dst = len(keep)
		} else {
			c.Flows[i].Dst = remap[c.Flows[i].Dst]
		}
	}
	c.Faults = append([]FaultSpec(nil), sc.Faults...)
	for i := range c.Faults {
		k := c.Faults[i].Kind
		if k != FaultLink && k != FaultFlap && k != FaultLinkKill {
			continue
		}
		if c.Faults[i].Link == n {
			c.Faults[i].Link = len(keep)
		} else {
			c.Faults[i].Link = remap[c.Faults[i].Link]
		}
	}
	if trips(c) {
		return c
	}
	return sc
}
