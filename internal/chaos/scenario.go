// Package chaos machine-explores the simulator's scenario space: a
// seeded generator composes random topologies, workloads, protocols and
// fault schedules into self-contained Scenario values; runtime invariant
// monitors watch every run for the pathologies the paper's robustness
// claim rules out (PFC deadlock, unbounded queues, conservation
// violations, rate-limiter escapes); and a delta-debugging shrinker
// minimizes any failing scenario into a replayable repro. One seed
// identifies everything — the topology, the flows, the faults and the
// verdict — so a nightly soak failure is a one-line reproduction.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"rocc/internal/adversary"
	"rocc/internal/experiments"
	"rocc/internal/faults"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// Topology kinds a Scenario can request.
const (
	TopoStar            = "star"
	TopoMultiBottleneck = "multibottleneck"
	TopoFatTree         = "fattree"
)

// Fault kinds a FaultSpec can request.
const (
	FaultLink       = "link"       // probabilistic per-packet faults on one link
	FaultFlap       = "flap"       // periodic outages on one link
	FaultCNPLoss    = "cnploss"    // a switch loses its generated CNPs
	FaultCPStall    = "cpstall"    // a switch's CPs go silent in windows
	FaultLinkKill   = "linkkill"   // hard link failure with rerouting, then restore
	FaultSwitchKill = "switchkill" // hard switch failure with rerouting, then restore
)

// Fault scopes restrict link faults to one packet population. PFC pause
// frames are deliberately not targetable: losing them wedges pause state
// by construction, which would make every faulted run a false positive
// for the deadlock monitors.
const (
	ScopeData = "data"
	ScopeCNP  = "cnp"
)

// TopologySpec sizes the network. Unused fields are zero for kinds that
// do not need them (multibottleneck is fully fixed by the paper).
type TopologySpec struct {
	Kind string  `json:"kind"`
	N    int     `json:"n,omitempty"`    // star: source count
	Gbps float64 `json:"gbps,omitempty"` // star/fattree host link rate

	Cores        int `json:"cores,omitempty"`          // fattree
	Edges        int `json:"edges,omitempty"`          // fattree
	HostsPerEdge int `json:"hosts_per_edge,omitempty"` // fattree
}

// FlowSpec is one flow: host indices into the topology's creation-order
// host list, a size (-1 = persistent, stopped at scenario end), an
// optional rate cap, and a start time.
type FlowSpec struct {
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	SizeBytes   int64   `json:"size_bytes"`
	MaxRateMbps float64 `json:"max_rate_mbps,omitempty"` // 0 = line rate
	StartNs     int64   `json:"start_ns"`
	Reliable    bool    `json:"reliable,omitempty"`

	// Protocol, when non-empty, runs this flow under a different scheme
	// than Scenario.Protocol — the mixed-fabric (incremental rollout)
	// scenario class. Empty inherits the scenario protocol.
	Protocol string `json:"protocol,omitempty"`

	// Rogue, when non-empty, wraps this flow's controller in the named
	// misbehaviour (an adversary.RogueKind: cnpdeaf, ecnblind, blast).
	// The rest of the fabric — receiver, ACK machinery, switch elements —
	// keeps running the flow's protocol honestly; only the sender's
	// reaction to feedback is subverted.
	Rogue string `json:"rogue,omitempty"`
}

// FaultSpec is one fault-schedule entry. Link and Switch index into the
// topology's deterministic link and switch enumerations.
type FaultSpec struct {
	Kind   string `json:"kind"`
	Link   int    `json:"link,omitempty"`   // link / flap
	Switch int    `json:"switch,omitempty"` // cnploss / cpstall
	Scope  string `json:"scope,omitempty"`  // link: data | cnp

	Drop      float64 `json:"drop,omitempty"`
	Corrupt   float64 `json:"corrupt,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	Reorder   float64 `json:"reorder,omitempty"`
	Prob      float64 `json:"prob,omitempty"` // cnploss

	PeriodNs int64 `json:"period_ns,omitempty"` // flap / cpstall cycle
	ActiveNs int64 `json:"active_ns,omitempty"` // down / stalled portion

	AtNs      int64 `json:"at_ns,omitempty"`      // linkkill / switchkill: failure time
	RestoreNs int64 `json:"restore_ns,omitempty"` // linkkill / switchkill: restore time
}

// Scenario is a self-contained, JSON-serializable description of one
// run: replaying it — same seed, same structure — reproduces the same
// packets, faults and verdict. The shrinker edits this value; nothing
// about a run lives anywhere else.
type Scenario struct {
	Seed     int64        `json:"seed"`
	Protocol string       `json:"protocol"`
	Topology TopologySpec `json:"topology"`

	DurationNs int64 `json:"duration_ns"`

	Flows  []FlowSpec  `json:"flows"`
	Faults []FaultSpec `json:"faults,omitempty"`

	// Mode is the fabric's operating mode (netsim.ParseOperatingMode
	// names). Empty is hybrid — the historical default, so every seed
	// generated before the mode dimension existed replays byte-identical.
	Mode string `json:"mode,omitempty"`

	// Defended attaches the switch-side defenses to every switch — the
	// per-flow compliance policer and the PFC storm watchdog — and
	// hardens RoCC reaction points against forged feedback (CP path
	// witness + replay rejection). On a fabric where nothing misbehaves
	// the defenses are pure observers: trajectories are byte-identical
	// with and without them (pinned by the defended-identity test).
	Defended bool `json:"defended,omitempty"`

	// Buffer overrides applied to every switch; zero keeps the
	// topology's lossless defaults. Setting PFCThresholdBytes above
	// BufferBytes is the canonical planted violation: pause can never
	// fire before the tail drops a "lossless" fabric must not take.
	PFCThresholdBytes int `json:"pfc_threshold_bytes,omitempty"`
	BufferBytes       int `json:"buffer_bytes,omitempty"`
}

// Duration returns the scenario length in engine time.
func (sc Scenario) Duration() sim.Time { return sim.Time(sc.DurationNs) }

// OperatingMode resolves the scenario's loss discipline. Call only on
// validated scenarios (unknown names degrade to hybrid).
func (sc Scenario) OperatingMode() netsim.OperatingMode {
	m, _ := netsim.ParseOperatingMode(sc.Mode)
	return m
}

// FlowProtocol resolves flow i's protocol: its own override when set,
// the scenario protocol otherwise. Call only on validated scenarios.
func (sc Scenario) FlowProtocol(i int) experiments.Protocol {
	if name := sc.Flows[i].Protocol; name != "" {
		p, _ := experiments.ParseProtocol(name)
		return p
	}
	p, _ := experiments.ParseProtocol(sc.Protocol)
	return p
}

// Protocols returns the distinct protocols the scenario runs, primary
// first and then per-flow overrides in first-appearance order.
func (sc Scenario) Protocols() []experiments.Protocol {
	primary, _ := experiments.ParseProtocol(sc.Protocol)
	out := []experiments.Protocol{primary}
	seen := map[experiments.Protocol]bool{primary: true}
	for i := range sc.Flows {
		if sc.Flows[i].Protocol == "" {
			continue
		}
		p := sc.FlowProtocol(i)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Mixed reports whether two or more protocols share the fabric.
func (sc Scenario) Mixed() bool { return len(sc.Protocols()) > 1 }

// RogueCount returns how many of the scenario's flows are rogue senders.
func (sc Scenario) RogueCount() int {
	n := 0
	for i := range sc.Flows {
		if sc.Flows[i].Rogue != "" {
			n++
		}
	}
	return n
}

// hostCount returns how many hosts the topology will create.
func (t TopologySpec) hostCount() int {
	switch t.Kind {
	case TopoStar:
		return t.N + 1
	case TopoMultiBottleneck:
		return 11
	case TopoFatTree:
		return t.Edges * t.HostsPerEdge
	}
	return 0
}

// linkCount returns how many links the topology will create (see
// enumerateLinks; pinned by TestLinkEnumerationMatchesSpec).
func (t TopologySpec) linkCount() int {
	switch t.Kind {
	case TopoStar:
		return t.N + 1
	case TopoMultiBottleneck:
		return 12
	case TopoFatTree:
		return t.Edges*t.HostsPerEdge + t.Edges*t.Cores
	}
	return 0
}

// switchCount returns how many switches the topology will create.
func (t TopologySpec) switchCount() int {
	switch t.Kind {
	case TopoStar:
		return 1
	case TopoMultiBottleneck:
		return 2
	case TopoFatTree:
		return t.Cores + t.Edges
	}
	return 0
}

func (t TopologySpec) validate() error {
	switch t.Kind {
	case TopoStar:
		if t.N < 1 {
			return fmt.Errorf("chaos: star needs at least 1 source, got %d", t.N)
		}
	case TopoMultiBottleneck:
		// Fully fixed by Fig. 10.
	case TopoFatTree:
		if t.Cores < 1 || t.Edges < 2 || t.HostsPerEdge < 1 {
			return fmt.Errorf("chaos: fat-tree needs cores>=1, edges>=2, hosts>=1, got %d/%d/%d",
				t.Cores, t.Edges, t.HostsPerEdge)
		}
	default:
		return fmt.Errorf("chaos: unknown topology kind %q", t.Kind)
	}
	return nil
}

// Validate rejects scenarios that cannot be built or run: it is the
// non-crashing gate the soak worker pool and repro loader rely on, the
// same way faults.LinkConfig.Validate guards the injector.
func (sc Scenario) Validate() error {
	if _, err := experiments.ParseProtocol(sc.Protocol); err != nil {
		return err
	}
	if _, err := netsim.ParseOperatingMode(sc.Mode); err != nil {
		return err
	}
	if err := sc.Topology.validate(); err != nil {
		return err
	}
	if sc.DurationNs <= 0 {
		return fmt.Errorf("chaos: non-positive duration %d", sc.DurationNs)
	}
	hosts := sc.Topology.hostCount()
	for i, f := range sc.Flows {
		if f.Src < 0 || f.Src >= hosts || f.Dst < 0 || f.Dst >= hosts {
			return fmt.Errorf("chaos: flow %d references host out of [0,%d)", i, hosts)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("chaos: flow %d has src == dst", i)
		}
		if f.StartNs < 0 || f.StartNs >= sc.DurationNs {
			return fmt.Errorf("chaos: flow %d starts at %d, outside [0,%d)", i, f.StartNs, sc.DurationNs)
		}
		if f.SizeBytes == 0 || f.SizeBytes < -1 {
			return fmt.Errorf("chaos: flow %d has size %d (want positive or -1)", i, f.SizeBytes)
		}
		if f.MaxRateMbps < 0 {
			return fmt.Errorf("chaos: flow %d has negative rate cap", i)
		}
		if f.Protocol != "" {
			if _, err := experiments.ParseProtocol(f.Protocol); err != nil {
				return fmt.Errorf("chaos: flow %d: %w", i, err)
			}
		}
		if f.Rogue != "" {
			if _, err := adversary.ParseRogueKind(f.Rogue); err != nil {
				return fmt.Errorf("chaos: flow %d: %w", i, err)
			}
			if sc.OperatingMode() == netsim.ModePFCOnly {
				return fmt.Errorf("chaos: flow %d is rogue but mode %q runs no controller to subvert", i, sc.Mode)
			}
		}
	}
	links, switches := sc.Topology.linkCount(), sc.Topology.switchCount()
	linkFaulted := make(map[int]bool)
	kills, flaps := 0, 0
	for i, f := range sc.Faults {
		switch f.Kind {
		case FaultFlap:
			flaps++
		case FaultLinkKill, FaultSwitchKill:
			kills++
		}
		if kills > 1 {
			return fmt.Errorf("chaos: fault %d is a second topology kill (one per scenario)", i)
		}
		if kills > 0 && flaps > 0 {
			return fmt.Errorf("chaos: fault %d mixes a flap with a topology kill (link-state conflict)", i)
		}
	}
	for i, f := range sc.Faults {
		switch f.Kind {
		case FaultLink:
			if f.Link < 0 || f.Link >= links {
				return fmt.Errorf("chaos: fault %d references link out of [0,%d)", i, links)
			}
			if linkFaulted[f.Link] {
				return fmt.Errorf("chaos: fault %d duplicates a link fault on link %d", i, f.Link)
			}
			linkFaulted[f.Link] = true
			if f.Scope != ScopeData && f.Scope != ScopeCNP {
				return fmt.Errorf("chaos: fault %d has scope %q (want %q or %q)", i, f.Scope, ScopeData, ScopeCNP)
			}
			cfg := faults.LinkConfig{Drop: f.Drop, Corrupt: f.Corrupt, Duplicate: f.Duplicate, Reorder: f.Reorder}
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultFlap:
			if f.Link < 0 || f.Link >= links {
				return fmt.Errorf("chaos: fault %d references link out of [0,%d)", i, links)
			}
			if err := faults.ValidateFlap(sim.Time(f.PeriodNs), sim.Time(f.ActiveNs)); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultCNPLoss:
			if f.Switch < 0 || f.Switch >= switches {
				return fmt.Errorf("chaos: fault %d references switch out of [0,%d)", i, switches)
			}
			if err := faults.ValidateProb(f.Prob); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultCPStall:
			if f.Switch < 0 || f.Switch >= switches {
				return fmt.Errorf("chaos: fault %d references switch out of [0,%d)", i, switches)
			}
			if err := faults.ValidateStall(sim.Time(f.PeriodNs), sim.Time(f.ActiveNs)); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		case FaultLinkKill, FaultSwitchKill:
			if f.Kind == FaultLinkKill {
				if f.Link < 0 || f.Link >= links {
					return fmt.Errorf("chaos: fault %d references link out of [0,%d)", i, links)
				}
			} else if f.Switch < 0 || f.Switch >= switches {
				return fmt.Errorf("chaos: fault %d references switch out of [0,%d)", i, switches)
			}
			// Scenario kills must restore inside the run: the end-of-run
			// invariants (blackhole clearance, recovery, drain) are only
			// well-posed on a healed fabric.
			if f.RestoreNs <= 0 || f.RestoreNs > sc.DurationNs {
				return fmt.Errorf("chaos: fault %d must restore inside (0,%d]", i, sc.DurationNs)
			}
			if err := faults.ValidateKill(sim.Time(f.AtNs), sim.Time(f.RestoreNs)); err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
		default:
			return fmt.Errorf("chaos: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// Save writes the scenario as indented JSON — the repro config format.
func (sc Scenario) Save(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a scenario previously written by Save.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, err
	}
	return sc, sc.Validate()
}

// fabric is a built topology plus the deterministic enumerations flow
// and fault specs index into.
type fabric struct {
	net   *netsim.Network
	hosts []*netsim.Host
	links [][2]*netsim.Port
	star  *topology.Star    // non-nil for TopoStar
	ft    *topology.FatTree // non-nil for TopoFatTree (pod-aligned sharding)
}

// buildFabric materializes the topology on an engine. Scenario.Seed
// seeds the network's workload RNG, so the same spec always yields the
// same fabric and the same downstream random draws.
func (sc Scenario) buildFabric(engine *sim.Engine) *fabric {
	t := sc.Topology
	f := &fabric{}
	switch t.Kind {
	case TopoStar:
		rate := netsim.Gbps(t.Gbps)
		if t.Gbps == 0 {
			rate = netsim.Gbps(40)
		}
		st := topology.BuildStar(engine, sc.Seed, t.N, rate)
		f.net, f.star = st.Net, st
	case TopoMultiBottleneck:
		f.net = topology.BuildMultiBottleneck(engine, sc.Seed).Net
	case TopoFatTree:
		rate := t.Gbps
		if rate == 0 {
			rate = 40
		}
		// Keep the paper's 2:1 oversubscription at chaos scale: uplink
		// capacity is half the edge's host capacity.
		up := float64(t.HostsPerEdge) * rate / 2
		cfg := topology.FatTreeConfig{
			Cores:        t.Cores,
			Edges:        t.Edges,
			HostsPerEdge: t.HostsPerEdge,
			LinksPerPair: 1,
			HostRate:     netsim.Gbps(rate),
			CoreRate:     netsim.Gbps(up / float64(t.Cores)),
		}
		ft := topology.BuildFatTree(engine, sc.Seed, cfg)
		f.net, f.ft = ft.Net, ft
	default:
		panic("chaos: buildFabric on unvalidated scenario")
	}
	if sc.PFCThresholdBytes > 0 || sc.BufferBytes > 0 {
		for _, s := range f.net.Switches() {
			if sc.PFCThresholdBytes > 0 {
				s.Buffer.PFCThreshold = sc.PFCThresholdBytes
				s.Buffer.PFCResume = 0
			}
			if sc.BufferBytes > 0 {
				s.Buffer.TotalBytes = sc.BufferBytes
			}
		}
	}
	// The operating mode rewrites buffer configs last, deriving from the
	// (possibly overridden) thresholds. Hybrid applies nothing: it is the
	// builders' default, and planted buffer violations must survive as
	// planted.
	if mode := sc.OperatingMode(); mode != netsim.ModeHybrid {
		mode.Apply(f.net.Switches())
		if mode == netsim.ModeCCOnlyLossy && sc.BufferBytes > 0 {
			// An explicit buffer override outranks the mode's 3x sizing.
			for _, s := range f.net.Switches() {
				s.Buffer.TotalBytes = sc.BufferBytes
			}
		}
	}
	f.hosts = f.net.Hosts()
	f.links = enumerateLinks(f.net)
	return f
}

// enumerateLinks lists every link exactly once in a deterministic order:
// nodes by creation id, each node's ports by index, a link owned by the
// first endpoint that reaches it. FaultSpec.Link indexes this list.
func enumerateLinks(net *netsim.Network) [][2]*netsim.Port {
	var nodes []netsim.Node
	for _, h := range net.Hosts() {
		nodes = append(nodes, h)
	}
	for _, s := range net.Switches() {
		nodes = append(nodes, s)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	seen := make(map[*netsim.Port]bool)
	var links [][2]*netsim.Port
	for _, n := range nodes {
		for _, p := range n.Ports() {
			if seen[p] {
				continue
			}
			peer := p.PeerNode.Ports()[p.PeerPort]
			seen[p], seen[peer] = true, true
			links = append(links, [2]*netsim.Port{p, peer})
		}
	}
	return links
}

// scopeMatch maps a FaultSpec scope onto a faults packet matcher.
func scopeMatch(scope string) func(*netsim.Packet) bool {
	if scope == ScopeCNP {
		return faults.MatchCNPs
	}
	return faults.MatchData
}
