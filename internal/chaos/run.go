package chaos

import (
	"rocc/internal/adversary"
	"rocc/internal/core"
	"rocc/internal/experiments"
	"rocc/internal/faults"
	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// faultSeedOffset decorrelates the injector's RNG from the workload
// stream, matching the experiments package's FaultSeed convention.
const faultSeedOffset = 0x5eed

// RunOptions tunes the monitors around one scenario run. The zero value
// selects defaults calibrated so clean scenarios never trip (pinned by
// TestCleanScenariosTripNoInvariant).
type RunOptions struct {
	// SampleEvery is the monitor tick. Default 100 µs.
	SampleEvery sim.Time

	// DrainGrace runs past the scenario end with all flows stopped and
	// all fault schedules quiesced before the residue checks. Default
	// 5 ms (a full shared buffer drains a 10G link in ~2.4 ms).
	DrainGrace sim.Time

	// MaxPauseSpan is the pause-storm watchdog budget for one pause
	// interval. Default 5 ms — orders of magnitude past a healthy pause,
	// well under a wedged one.
	MaxPauseSpan sim.Time

	// MinJain is the fairness floor on clean star runs. Default 0.25 —
	// catastrophic starvation, not protocol ranking.
	MinJain float64

	// QueueSlackBytes is the per-port in-flight allowance on top of the
	// shared PFC Xoff trigger. Default 64 KB.
	QueueSlackBytes int

	// StopOnFirst halts the simulation at the first violation (the
	// shrinker's mode; verdicts stay deterministic either way).
	StopOnFirst bool

	// Shards runs the scenario on the sharded parallel engine with that
	// many shards (fat-trees cut pod-aligned, other topologies
	// switch-aligned; clamped to the topology's pod/switch count). 0
	// keeps the legacy single-heap engine. Verdicts and counters are
	// byte-identical for every Shards >= 1 at a fixed scenario.
	Shards int

	// Telemetry, when set, is attached to the network so a repro run
	// captures a Chrome trace of the failing window.
	Telemetry *experiments.RunTelemetry

	// DisablePacketPool runs the scenario with packet pooling off (every
	// acquire allocates, releases fall to the GC). Pooling is pure reuse —
	// verdicts and counters must be identical either way, which the
	// byte-identity test asserts across all protocols.
	DisablePacketPool bool

	// Custom monitors run alongside the built-ins.
	Custom []CustomMonitor
}

func (o RunOptions) withDefaults() RunOptions {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 100 * sim.Microsecond
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 5 * sim.Millisecond
	}
	if o.MaxPauseSpan <= 0 {
		o.MaxPauseSpan = 5 * sim.Millisecond
	}
	if o.MinJain <= 0 {
		o.MinJain = 0.25
	}
	if o.QueueSlackBytes <= 0 {
		o.QueueSlackBytes = 64 * netsim.KB
	}
	return o
}

// Result is one scenario's verdict plus the run counters a soak log
// reports. It contains only simulation-derived values, so replaying a
// scenario reproduces it exactly.
type Result struct {
	Seed       int64       `json:"seed"`
	Violations []Violation `json:"violations,omitempty"`

	FlowsStarted   int          `json:"flows_started"`
	FlowsDone      int          `json:"flows_done"`
	DeliveredBytes int64        `json:"delivered_bytes"`
	Drops          int          `json:"drops"`
	PFCFrames      int          `json:"pfc_frames"`
	PauseStorms    uint64       `json:"pause_storms"`
	LongestPauseNs int64        `json:"longest_pause_ns"`
	FaultStats     faults.Stats `json:"fault_stats"`

	// Defense activity, all zero on undefended runs.
	Quarantines   int `json:"quarantines,omitempty"`
	Releases      int `json:"releases,omitempty"`
	PolicedDrops  int `json:"policed_drops,omitempty"`
	WatchdogTrips int `json:"watchdog_trips,omitempty"`
	WatchdogDrops int `json:"watchdog_drops,omitempty"`
}

// Violated reports whether the named invariant tripped (any invariant
// when name is "").
func (r Result) Violated(name string) bool {
	for _, v := range r.Violations {
		if name == "" || v.Invariant == name {
			return true
		}
	}
	return false
}

// Run executes one scenario under the full monitor suite and returns its
// verdict. The error is non-nil only for scenarios Validate rejects —
// invariant trips are data (Result.Violations), not errors.
func Run(sc Scenario, opts RunOptions) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	engine := sim.New()
	fab := sc.buildFabric(engine)
	net := fab.net
	if o.DisablePacketPool {
		net.SetPooling(false)
	}
	if o.Telemetry != nil {
		net.SetTelemetry(o.Telemetry.Registry, o.Telemetry.Recorder)
	}
	if o.Shards > 0 {
		// Shard before any protocol attachment so CPs, markers and
		// defenses schedule on their node's shard engine.
		if fab.ft != nil {
			topology.PartitionFatTree(fab.ft, o.Shards).Apply(net)
		} else {
			topology.PartitionAuto(net, o.Shards).Apply(net)
		}
	}

	protos := sc.Protocols()
	mode := sc.OperatingMode()
	mix := experiments.NewMix(net, 0)
	// Faulted runs lose CNPs; give RoCC flows the paper's staleness
	// re-homing so feedback loss degrades instead of wedging.
	mix.RoCCRP.StaleK = core.DefaultStaleK
	defended := sc.Defended && mode.CCEnabled()
	if defended {
		// The end-host half of the defense: RoCC reaction points refuse
		// CNPs from congestion points that are not on the flow's path and
		// stale (replayed) feedback.
		mix.RoCCRP.VerifyCPPath = true
		mix.RoCCRP.MaxCNPAge = 250 * sim.Microsecond
	}
	for _, p := range protos {
		mix.Activate(p)
	}
	stack := mix.Use(protos[0])
	if mode.CCEnabled() {
		mix.EnableAllSwitchPorts()
		for _, h := range net.Hosts() {
			mix.AttachReceivers(h)
		}
	}

	var policers []*adversary.Policer
	var watchdogs []*adversary.Watchdog
	if defended {
		advertised := func(port *netsim.Port) (netsim.Rate, bool) {
			if cp := mix.CPs[port]; cp != nil {
				return netsim.Mbps(cp.FairRateMbps()), true
			}
			return 0, false
		}
		for _, sw := range net.Switches() {
			// The chaos policer is gentler than the benchmark defaults:
			// random workloads legitimately overshoot stale shares during
			// incast convergence, and a mis-quarantined honest flow is a
			// false soak failure. Rogues overshoot by an order of
			// magnitude, so the wider margin costs only detection latency.
			// RequireAdvertised confines policing to RoCC-governed egresses
			// — on a random workload the equal-split fallback mistakes a
			// work-conserving flow absorbing idle capacity for a rogue; the
			// switch only enforces the contract it actually advertised.
			policers = append(policers, adversary.NewPolicer(net, sw, adversary.PolicerConfig{
				Margin:            2,
				TripAfter:         6,
				AdvertisedRate:    advertised,
				RequireAdvertised: true,
			}))
			// The watchdog deadline matches the monitor's pause budget: a
			// pause that would have tripped the pause-storm invariant is
			// instead broken by the deployed mitigation, and the
			// watchdog-liveness invariant guards the mitigation itself.
			watchdogs = append(watchdogs, adversary.NewWatchdog(net, sw, adversary.WatchdogConfig{
				Deadline: o.MaxPauseSpan,
			}))
		}
	}

	rt := &Runtime{
		Scenario:  sc,
		Engine:    engine,
		Net:       net,
		Stack:     stack,
		Flows:     make([]*netsim.Flow, len(sc.Flows)),
		Policers:  policers,
		Watchdogs: watchdogs,
		fab:       fab,
	}
	for _, f := range sc.Faults {
		if f.Kind == FaultLink && f.Scope == ScopeData && f.Duplicate > 0 {
			rt.hasDupData = true
		}
	}

	dur := sc.Duration()
	for i, fs := range sc.Flows {
		i, fs := i, fs
		engine.At(sim.Time(fs.StartNs), func() {
			src, dst := fab.hosts[fs.Src], fab.hosts[fs.Dst]
			var rateCap netsim.Rate
			if fs.MaxRateMbps > 0 {
				rateCap = netsim.Mbps(fs.MaxRateMbps)
			}
			var f *netsim.Flow
			if mode.CCEnabled() && fs.Rogue != "" {
				// Rogue sender: the genuine controller is built and wired,
				// then wrapped in the named misbehaviour. The kind adapts
				// to the protocol's actual feedback channel (CNP-deaf is
				// vacuous for schemes that never see a CNP).
				kind, _ := adversary.ParseRogueKind(fs.Rogue) // Validate vetted it
				kind = experiments.EffectiveRogueKind(sc.FlowProtocol(i), kind)
				blastRate := src.Ports()[0].LinkRate
				f = mix.StartWrappedFlow(sc.FlowProtocol(i), src, dst, fs.SizeBytes, rateCap, fs.Reliable,
					func(cc netsim.FlowCC) netsim.FlowCC {
						return adversary.WrapRogue(kind, cc, blastRate)
					})
			} else if mode.CCEnabled() {
				f = mix.StartCustomFlow(sc.FlowProtocol(i), src, dst, fs.SizeBytes, rateCap, fs.Reliable)
			} else {
				// PFC-only: no controller — sources blast at their caps and
				// hop-by-hop pause is the only brake.
				f = net.StartFlow(src, dst, netsim.FlowConfig{
					Size:     fs.SizeBytes,
					MaxRate:  rateCap,
					Reliable: fs.Reliable,
				})
			}
			rt.Flows[i] = f
			if cc, ok := f.CC.(*roccnet.FlowCC); ok {
				rt.RoCCRPs = append(rt.RoCCRPs, cc.RP())
			}
		})
	}
	engine.At(dur, func() {
		for _, f := range rt.Flows {
			if f != nil && !f.Done() {
				f.Stop()
			}
		}
	})
	engine.At(dur/2, func() {
		rt.midBytes = make([]int64, len(rt.Flows))
		for i, f := range rt.Flows {
			if f != nil {
				rt.midBytes[i] = f.DeliveredBytes()
			}
		}
	})

	if len(sc.Faults) > 0 {
		rt.Injector = faults.New(net, sc.Seed+faultSeedOffset)
		for _, f := range sc.Faults {
			attachFault(rt.Injector, fab, f, dur)
		}
	}
	for _, f := range sc.Faults {
		if f.Kind != FaultLinkKill && f.Kind != FaultSwitchKill {
			continue
		}
		// Recovery snapshot: shortly after the restore's reconvergence the
		// fabric is whole again. The final blackhole/recovery checkers
		// compare the end-of-run state against this point.
		snapAt := sim.Time(f.RestoreNs) + netsim.DefaultReconvergeDelay + 100*sim.Microsecond
		// The recovery (must-deliver-again) arm needs running time after
		// the snapshot to be meaningful; a restore at the very end of the
		// run still gets the blackhole check, just not this one.
		canRecover := snapAt+500*sim.Microsecond <= dur
		engine.At(snapAt, func() {
			rt.recoverSet = true
			rt.blackholeAtRecovery = net.BlackholeDrops()
			for i, fl := range rt.Flows {
				if fl == nil {
					continue
				}
				rt.recoverBytes += fl.DeliveredBytes()
				if canRecover && sc.Flows[i].SizeBytes == -1 && !fl.Done() {
					rt.liveAtRecovery = true
				}
			}
		})
	}

	var violations []Violation
	seen := make(map[string]bool)
	halted := false
	violate := func(name, detail string) {
		if seen[name] {
			return
		}
		seen[name] = true
		violations = append(violations, Violation{
			Invariant: name,
			AtNs:      int64(engine.Now()),
			Detail:    detail,
		})
		if o.StopOnFirst {
			halted = true
			engine.Stop()
		}
	}
	sample := func() {
		for _, c := range sampleCheckers {
			if detail, bad := c.fn(rt, o); bad {
				violate(c.name, detail)
			}
		}
		for _, c := range o.Custom {
			if c.Sample == nil {
				continue
			}
			if detail, bad := c.Sample(rt); bad {
				violate(c.Name, detail)
			}
		}
	}
	ticker := engine.NewTicker(o.SampleEvery, sample)
	defer ticker.Stop()

	engine.RunUntil(dur)
	if !halted {
		engine.RunUntil(dur + o.DrainGrace)
	}
	if !halted {
		sample() // one last mid-run sweep at the drained state
		for _, c := range finalCheckers {
			if detail, bad := c.fn(rt, o); bad {
				violate(c.name, detail)
			}
		}
		for _, c := range o.Custom {
			if c.Final == nil {
				continue
			}
			if detail, bad := c.Final(rt); bad {
				violate(c.Name, detail)
			}
		}
	}

	res := Result{Seed: sc.Seed, Violations: violations}
	for _, f := range rt.Flows {
		if f == nil {
			continue
		}
		res.FlowsStarted++
		if f.Done() {
			res.FlowsDone++
		}
		res.DeliveredBytes += f.DeliveredBytes()
	}
	res.Drops = net.TotalDrops()
	res.PFCFrames = net.TotalPFCFrames()
	res.PauseStorms = net.PauseStorms()
	res.LongestPauseNs = int64(net.LongestPauseSpan())
	if rt.Injector != nil {
		res.FaultStats = rt.Injector.Stats()
	}
	for _, p := range policers {
		res.Quarantines += p.Stats().Detections
		res.Releases += p.Stats().Releases
	}
	for _, w := range watchdogs {
		res.WatchdogTrips += w.Stats().Trips
	}
	res.PolicedDrops = net.PolicedDrops()
	res.WatchdogDrops = net.WatchdogDrops()
	return res, nil
}

// attachFault wires one FaultSpec into the injector. Flap and stall
// schedules are windowed to the scenario duration so the network is
// whole again for the drain-phase residue checks.
func attachFault(inj *faults.Injector, fab *fabric, f FaultSpec, dur sim.Time) {
	switch f.Kind {
	case FaultLink:
		link := fab.links[f.Link]
		inj.Link(link[0], link[1], faults.LinkConfig{
			Drop:      f.Drop,
			Corrupt:   f.Corrupt,
			Duplicate: f.Duplicate,
			Reorder:   f.Reorder,
			Match:     scopeMatch(f.Scope),
		})
	case FaultFlap:
		link := fab.links[f.Link]
		inj.FlapWindow(link[0], link[1], sim.Time(f.PeriodNs), sim.Time(f.ActiveNs), dur)
	case FaultCNPLoss:
		inj.DropCNPs(fab.net.Switches()[f.Switch], f.Prob)
	case FaultCPStall:
		inj.StallCPWindow(fab.net.Switches()[f.Switch], sim.Time(f.PeriodNs), sim.Time(f.ActiveNs), dur)
	case FaultLinkKill:
		link := fab.links[f.Link]
		inj.KillLink(link[0], link[1], sim.Time(f.AtNs), sim.Time(f.RestoreNs))
	case FaultSwitchKill:
		inj.KillSwitch(fab.net.Switches()[f.Switch], sim.Time(f.AtNs), sim.Time(f.RestoreNs))
	}
}
