package chaos

import (
	"path/filepath"
	"reflect"
	"testing"

	"rocc/internal/experiments"
	"rocc/internal/sim"
)

// TestLinkEnumerationMatchesSpec pins the contract FaultSpec indices
// rely on: linkCount/switchCount/hostCount predict exactly what
// buildFabric materializes, for every topology kind.
func TestLinkEnumerationMatchesSpec(t *testing.T) {
	specs := []TopologySpec{
		{Kind: TopoStar, N: 6, Gbps: 40},
		{Kind: TopoMultiBottleneck},
		{Kind: TopoFatTree, Cores: 2, Edges: 3, HostsPerEdge: 4, Gbps: 40},
	}
	for _, ts := range specs {
		sc := Scenario{Seed: 1, Protocol: "RoCC", Topology: ts, DurationNs: int64(sim.Millisecond)}
		fab := sc.buildFabric(sim.New())
		if got, want := len(fab.hosts), ts.hostCount(); got != want {
			t.Errorf("%s: hosts = %d, want %d", ts.Kind, got, want)
		}
		if got, want := len(fab.links), ts.linkCount(); got != want {
			t.Errorf("%s: links = %d, want %d", ts.Kind, got, want)
		}
		if got, want := len(fab.net.Switches()), ts.switchCount(); got != want {
			t.Errorf("%s: switches = %d, want %d", ts.Kind, got, want)
		}
		for i, l := range fab.links {
			if l[0].PeerNode.Ports()[l[0].PeerPort] != l[1] {
				t.Errorf("%s: link %d endpoints are not peers", ts.Kind, i)
			}
		}
	}
}

// TestGenerateDeterministic: one seed, one scenario — the replayability
// contract everything else builds on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, GenOptions{})
		b := Generate(seed, GenOptions{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
	}
}

// TestRunDeterministic: replaying a scenario — faults and all — yields
// an identical verdict and identical counters.
func TestRunDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		sc := Generate(seed, GenOptions{})
		a, errA := Run(sc, RunOptions{})
		b, errB := Run(sc, RunOptions{})
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: run errors %v / %v", seed, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Run not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestCleanScenariosTripNoInvariant is the monitor-calibration gate: on
// fault-free scenarios no invariant may trip, for any protocol the repo
// wires. A failure here is a miscalibrated monitor (or a real bug), not
// chaos.
func TestCleanScenariosTripNoInvariant(t *testing.T) {
	gen := GenOptions{FaultScale: -1, MaxDuration: 5 * sim.Millisecond}
	for _, p := range experiments.AllProtocols() {
		gen.Protocols = []experiments.Protocol{p}
		for seed := int64(0); seed < 3; seed++ {
			sc := Generate(seed, gen)
			if len(sc.Faults) != 0 {
				t.Fatalf("FaultScale<0 still generated faults: %+v", sc.Faults)
			}
			res, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatalf("%s seed %d: %v", p, seed, err)
			}
			if len(res.Violations) != 0 {
				t.Errorf("%s seed %d (%s): clean run tripped %+v",
					p, seed, sc.Topology.Kind, res.Violations)
			}
		}
	}
}

// plantedScenario misconfigures PFC the canonical way: the pause
// threshold sits above the total buffer, so Xoff can never fire before
// the fabric tail-drops — a direct lossless_drops violation. 16
// persistent sources guarantee standing congestion at the star hub.
func plantedScenario() Scenario {
	sc := Scenario{
		Seed:              7,
		Protocol:          "RoCC",
		Topology:          TopologySpec{Kind: TopoStar, N: 8, Gbps: 10},
		DurationNs:        int64(3 * sim.Millisecond),
		PFCThresholdBytes: 500 * 1000,
		BufferBytes:       32 * 1000,
	}
	for i := 0; i < 16; i++ {
		sc.Flows = append(sc.Flows, FlowSpec{Src: i % 8, Dst: 8, SizeBytes: -1})
	}
	return sc
}

// TestPlantedViolationCaughtAndShrunk is the acceptance scenario: the
// planted misconfiguration is caught by the monitors, the shrinker cuts
// the repro to a fraction of the original scenario, and the minimized
// config replays the same violation from disk.
func TestPlantedViolationCaughtAndShrunk(t *testing.T) {
	sc := plantedScenario()
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated(InvLosslessDrops) {
		t.Fatalf("planted PFC misconfiguration not caught: %+v", res.Violations)
	}

	sr := Shrink(sc, InvLosslessDrops, RunOptions{}, 200)
	if !sr.Reproduced {
		t.Fatal("shrinker could not reproduce the violation")
	}
	origSize := len(sc.Flows) * max(1, len(sc.Faults))
	minSize := len(sr.Minimized.Flows) * max(1, len(sr.Minimized.Faults))
	if minSize*4 > origSize {
		t.Errorf("minimized to %d flow×fault events, want <= 25%% of %d", minSize, origSize)
	}

	// The emitted repro must be self-contained: save, load, replay.
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := sr.Minimized.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(loaded, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(loaded, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Violated(InvLosslessDrops) {
		t.Fatalf("minimized repro does not reproduce: %+v", r1.Violations)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("minimized repro not deterministic:\n%+v\n%+v", r1, r2)
	}
}

// TestShrinkerIsolatesCoOccurringFaults plants a synthetic invariant
// that only trips when a link flap AND a CP stall both occur, buries
// those two faults among decoys, and asserts the shrinker isolates
// exactly the co-occurring pair.
func TestShrinkerIsolatesCoOccurringFaults(t *testing.T) {
	ms := int64(sim.Millisecond)
	sc := Scenario{
		Seed:       11,
		Protocol:   "DCQCN",
		Topology:   TopologySpec{Kind: TopoStar, N: 4, Gbps: 10},
		DurationNs: 6 * ms,
		Flows: []FlowSpec{
			{Src: 0, Dst: 4, SizeBytes: -1},
			{Src: 1, Dst: 4, SizeBytes: -1},
		},
		Faults: []FaultSpec{
			{Kind: FaultLink, Link: 0, Scope: ScopeData, Drop: 0.02},
			{Kind: FaultCNPLoss, Switch: 0, Prob: 0.2},
			{Kind: FaultFlap, Link: 1, PeriodNs: ms, ActiveNs: ms / 5},
			{Kind: FaultLink, Link: 2, Scope: ScopeCNP, Drop: 0.1},
			{Kind: FaultCPStall, Switch: 0, PeriodNs: ms, ActiveNs: ms / 4},
		},
	}
	const inv = "flap_and_stall"
	opts := RunOptions{Custom: []CustomMonitor{{
		Name: inv,
		Final: func(rt *Runtime) (string, bool) {
			if rt.Injector == nil {
				return "", false
			}
			s := rt.Injector.Stats()
			if s.Flaps > 0 && s.StallWindows > 0 {
				return "flap and CP stall co-occurred", true
			}
			return "", false
		},
	}}}

	sr := Shrink(sc, inv, opts, 300)
	if !sr.Reproduced {
		t.Fatal("synthetic co-occurrence invariant did not trip on the original")
	}
	if len(sr.Minimized.Faults) != 2 {
		t.Fatalf("minimized to %d faults, want exactly the co-occurring 2: %+v",
			len(sr.Minimized.Faults), sr.Minimized.Faults)
	}
	kinds := map[string]bool{}
	for _, f := range sr.Minimized.Faults {
		kinds[f.Kind] = true
	}
	if !kinds[FaultFlap] || !kinds[FaultCPStall] {
		t.Fatalf("minimized faults are %+v, want {flap, cpstall}", sr.Minimized.Faults)
	}

	// The minimized scenario replays the violation deterministically.
	r1, err := Run(sr.Minimized, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sr.Minimized, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Violated(inv) || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("minimized co-occurrence repro unstable: %+v vs %+v", r1, r2)
	}
}

// TestSoakDeterministicAcrossWorkers: the verdict sequence depends only
// on the campaign seed, never on worker count or completion order.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	opts := SoakOptions{Seed: 100, Count: 6}
	opts.Workers = 1
	a := Soak(opts)
	opts.Workers = 4
	b := Soak(opts)
	if !reflect.DeepEqual(a.Verdicts, b.Verdicts) {
		t.Fatalf("soak verdicts depend on worker count:\n%+v\n%+v", a.Verdicts, b.Verdicts)
	}
	if a.Scenarios != 6 || len(a.Verdicts) != 6 {
		t.Fatalf("soak ran %d scenarios, %d verdicts; want 6", a.Scenarios, len(a.Verdicts))
	}
	for i, v := range a.Verdicts {
		if v.Index != i || v.Seed != opts.Seed+int64(i) {
			t.Fatalf("verdict %d has index %d seed %d", i, v.Index, v.Seed)
		}
	}
}

// TestSoakEmitsRepro: a campaign seeded to hit the planted violation
// writes a minimized config plus Chrome trace, and the config replays.
func TestSoakEmitsRepro(t *testing.T) {
	dir := t.TempDir()
	// A tiny campaign over clean generated scenarios won't fail; instead
	// exercise the repro path directly through writeRepro on a planted
	// failure, the same call Soak makes.
	sc := plantedScenario()
	sr := Shrink(sc, InvLosslessDrops, RunOptions{}, 100)
	if !sr.Reproduced {
		t.Fatal("planted violation did not reproduce")
	}
	r := Repro{Seed: sc.Seed, Invariant: InvLosslessDrops, Shrink: sr}
	if err := writeRepro(&r, dir, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(r.ConfigPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(loaded, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated(InvLosslessDrops) {
		t.Fatalf("emitted repro config does not reproduce: %+v", res.Violations)
	}
	if r.TracePath == "" {
		t.Fatal("no trace written")
	}
}
