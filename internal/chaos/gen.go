package chaos

import (
	"rocc/internal/adversary"
	"rocc/internal/experiments"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/workload"
)

// GenOptions bounds the scenario generator. The zero value selects
// defaults sized so a single scenario simulates in well under a second.
type GenOptions struct {
	// Protocols to draw from. Default: every protocol the repo wires
	// (experiments.AllProtocols) — the invariants must hold for the
	// baselines too, not just RoCC.
	Protocols []experiments.Protocol

	// Topologies to draw from. Default: star, multibottleneck, fattree.
	Topologies []string

	// MinFlows/MaxFlows bound the per-scenario flow count (incast bursts
	// can add a few past MaxFlows). Defaults 2 and 16.
	MinFlows, MaxFlows int

	// MaxFaults bounds the fault-schedule length; the drawn count is
	// scaled by FaultScale. Default 6.
	MaxFaults int

	// FaultScale scales how many faults a scenario gets: 0 selects the
	// default mix (1); any negative value generates clean scenarios —
	// the invariant-baseline mode in which no monitor may ever trip.
	FaultScale float64

	// MinDuration/MaxDuration bound the scenario length. Defaults 4 ms
	// and 10 ms.
	MinDuration, MaxDuration sim.Time

	// MixProb is the probability a scenario mixes a second protocol into
	// the fabric, reassigning a random subset of its flows (the
	// incremental-rollout scenario class). Zero disables mixing; 1 makes
	// every scenario attempt it. The mix overlay draws from its own
	// derived RNG stream, so a given (seed, options) pair generates the
	// same base scenario whether or not mixing is enabled.
	MixProb float64

	// FailProb is the probability a scenario carries a topology kill — a
	// hard link or switch failure that reroutes and later restores. Like
	// the mix overlay it draws from its own salted RNG stream, so turning
	// failures on never perturbs the base scenario a seed generates. A
	// kill replaces any flap faults the base drew (link-state ownership
	// is exclusive; Validate rejects the combination).
	FailProb float64

	// ModeProb is the probability a scenario runs in a non-default
	// operating mode (PFC-only or CC-only lossy, drawn evenly). It too
	// draws from its own salted RNG stream: the base scenario a seed
	// generates is byte-identical whether or not the mode dimension is
	// enabled.
	ModeProb float64

	// RogueProb is the probability a scenario hosts rogue senders —
	// flows whose controllers ignore their protocol's feedback (CNP-deaf,
	// ECN-blind, or raw blasters) — with the switch-side defenses
	// (compliance policer, PFC storm watchdog, RoCC forged-feedback
	// hardening) attached to contain them. Like every other dimension it
	// draws from its own salted RNG stream, so rogue-free seeds stay
	// byte-identical with the dimension off.
	RogueProb float64
}

func (o GenOptions) withDefaults() GenOptions {
	if len(o.Protocols) == 0 {
		o.Protocols = experiments.AllProtocols()
	}
	if len(o.Topologies) == 0 {
		o.Topologies = []string{TopoStar, TopoMultiBottleneck, TopoFatTree}
	}
	if o.MinFlows <= 0 {
		o.MinFlows = 2
	}
	if o.MaxFlows < o.MinFlows {
		o.MaxFlows = o.MinFlows + 14
	}
	if o.MaxFaults <= 0 {
		o.MaxFaults = 6
	}
	if o.FaultScale == 0 {
		o.FaultScale = 1
	}
	if o.MinDuration <= 0 {
		o.MinDuration = 4 * sim.Millisecond
	}
	if o.MaxDuration < o.MinDuration {
		o.MaxDuration = o.MinDuration + 6*sim.Millisecond
	}
	return o
}

// Generate derives a complete scenario from one seed. Every draw comes
// from a single sequential stream, so the same (seed, options) pair
// always yields the same scenario — the replayability contract the
// shrinker and the soak verdict log depend on.
func Generate(seed int64, opts GenOptions) Scenario {
	o := opts.withDefaults()
	r := sim.NewRand(seed)

	sc := Scenario{
		Seed:     seed,
		Protocol: string(o.Protocols[r.Intn(len(o.Protocols))]),
	}
	sc.Topology = genTopology(r, o.Topologies[r.Intn(len(o.Topologies))])
	dur := o.MinDuration + sim.Time(r.Float64()*float64(o.MaxDuration-o.MinDuration))
	sc.DurationNs = int64(dur)

	sc.Flows = genFlows(r, sc.Topology, dur, o)
	if o.FaultScale > 0 {
		sc.Faults = genFaults(r, sc.Topology, dur, o)
	}
	mixProtocols(seed, o, &sc)
	overlayKill(seed, o, &sc)
	overlayMode(seed, o, &sc)
	overlayRogue(seed, o, &sc)
	return sc
}

// mixSeedSalt decorrelates the protocol-mix overlay from the base
// scenario stream: mixing must not perturb the topology, flows or faults
// a seed has always generated (the replayability contract the shrinker
// and the calibration tests pin).
const mixSeedSalt = 0x6d69780a // "mix\n"

// mixProtocols overlays a second protocol onto a random subset of the
// scenario's flows with probability MixProb, from its own derived RNG
// stream. Each reassigned flow carries its protocol explicitly, so the
// shrinker minimizes mixed scenarios like any other.
func mixProtocols(seed int64, o GenOptions, sc *Scenario) {
	if o.MixProb <= 0 || len(o.Protocols) < 2 {
		return
	}
	r := sim.NewRand(seed ^ mixSeedSalt)
	if r.Float64() >= o.MixProb {
		return
	}
	var others []experiments.Protocol
	for _, p := range o.Protocols {
		if string(p) != sc.Protocol {
			others = append(others, p)
		}
	}
	if len(others) == 0 || len(sc.Flows) < 2 {
		return
	}
	second := others[r.Intn(len(others))]
	// Reassign each flow with p=1/2, but force at least one flow onto
	// each protocol so a "mixed" scenario always is one.
	sc.Flows[0].Protocol = ""
	sc.Flows[len(sc.Flows)-1].Protocol = string(second)
	for i := 1; i < len(sc.Flows)-1; i++ {
		if r.Intn(2) == 1 {
			sc.Flows[i].Protocol = string(second)
		}
	}
}

// killSeedSalt decorrelates the topology-kill overlay from both the base
// stream and the mix overlay, for the same replayability reason.
const killSeedSalt = 0x6b696c6c // "kill"

// overlayKill adds one hard topology failure (link or switch kill with a
// scheduled restore) with probability FailProb, from its own derived RNG
// stream. The kill lands between 0.2 and 0.4 of the run and restores
// 0.1-0.25 of the run later, so the fabric is whole well before the end
// — the recovery invariants need post-restore running time. Flap faults
// the base stream drew are dropped: a kill owns the fabric's link state
// for the run (Validate rejects the combination).
func overlayKill(seed int64, o GenOptions, sc *Scenario) {
	if o.FailProb <= 0 {
		return
	}
	r := sim.NewRand(seed ^ killSeedSalt)
	if r.Float64() >= o.FailProb {
		return
	}
	kept := sc.Faults[:0]
	for _, f := range sc.Faults {
		if f.Kind != FaultFlap {
			kept = append(kept, f)
		}
	}
	sc.Faults = kept
	// Persistent flows ride go-back-N in kill scenarios: a blackhole
	// window erases in-flight bytes, and over an unreliable transport a
	// window-based sender (HPCC, DCTCP) loses that window credit forever
	// — wedged by construction, not by a CC bug. RoCEv2 is a reliable
	// transport; the recovery invariant measures the control loop, so the
	// transport must be able to recover at all.
	for i := range sc.Flows {
		if sc.Flows[i].SizeBytes == -1 {
			sc.Flows[i].Reliable = true
		}
	}
	dur := float64(sc.DurationNs)
	at := int64((0.2 + 0.2*r.Float64()) * dur)
	restore := at + int64((0.1+0.15*r.Float64())*dur)
	f := FaultSpec{AtNs: at, RestoreNs: restore}
	if r.Intn(2) == 0 {
		f.Kind = FaultLinkKill
		f.Link = r.Intn(sc.Topology.linkCount())
	} else {
		f.Kind = FaultSwitchKill
		f.Switch = r.Intn(sc.Topology.switchCount())
	}
	sc.Faults = append(sc.Faults, f)
}

// modeSeedSalt decorrelates the operating-mode overlay from the base
// stream and the other overlays, keeping existing seeds byte-identical.
const modeSeedSalt = 0x6d6f6465 // "mode"

// overlayMode switches the scenario to a non-default loss discipline
// with probability ModeProb, drawn evenly between PFC-only and CC-only
// lossy. The mode is recorded in the scenario JSON, so a shrunk repro
// carries it like any other dimension.
func overlayMode(seed int64, o GenOptions, sc *Scenario) {
	if o.ModeProb <= 0 {
		return
	}
	r := sim.NewRand(seed ^ modeSeedSalt)
	if r.Float64() >= o.ModeProb {
		return
	}
	if r.Intn(2) == 0 {
		sc.Mode = netsim.ModePFCOnly.String()
		return
	}
	sc.Mode = netsim.ModeCCOnlyLossy.String()
	// A lossy fabric tail-drops; only go-back-N transfers can always
	// finish, and the conservation/completion invariants assume finite
	// flows do. Same forcing the kill overlay applies to persistent
	// flows, recorded explicitly in the JSON.
	for i := range sc.Flows {
		sc.Flows[i].Reliable = true
	}
}

// rogueSeedSalt decorrelates the rogue overlay from the base stream and
// the other overlays: enabling the adversarial dimension must not change
// the scenarios rogue-free seeds have always generated.
const rogueSeedSalt = 0x726f6775 // "rogu"

// overlayRogue marks 1-3 of the scenario's flows as rogue senders with
// probability RogueProb, from its own derived RNG stream, and turns the
// switch-side defenses on. Each rogue becomes a persistent, uncapped
// sender of a random misbehaviour kind; flow 0 is never marked, so at
// least one honest victim survives by construction (the victim-floor
// invariant needs a subject). The overlay runs last: it respects the
// reliability forcing the kill and lossy-mode overlays applied, and
// skips PFC-only scenarios outright — with no controller running there
// is nothing for a rogue to subvert.
func overlayRogue(seed int64, o GenOptions, sc *Scenario) {
	if o.RogueProb <= 0 {
		return
	}
	r := sim.NewRand(seed ^ rogueSeedSalt)
	if r.Float64() >= o.RogueProb {
		return
	}
	if sc.OperatingMode() == netsim.ModePFCOnly || len(sc.Flows) < 2 {
		return
	}
	forceReliable := sc.OperatingMode() == netsim.ModeCCOnlyLossy
	for _, f := range sc.Faults {
		if f.Kind == FaultLinkKill || f.Kind == FaultSwitchKill {
			// Kill scenarios force persistent flows onto go-back-N (see
			// overlayKill); a flow this overlay makes persistent follows.
			forceReliable = true
		}
	}
	n := 1 + r.Intn(min(len(sc.Flows)-1, 3))
	chosen := make(map[int]bool, n)
	for len(chosen) < n {
		chosen[1+r.Intn(len(sc.Flows)-1)] = true
	}
	kinds := adversary.RogueKinds()
	for i := 1; i < len(sc.Flows); i++ {
		if !chosen[i] {
			continue
		}
		f := &sc.Flows[i]
		f.Rogue = string(kinds[r.Intn(len(kinds))])
		f.SizeBytes = -1
		f.MaxRateMbps = 0
		if forceReliable {
			f.Reliable = true
		}
	}
	sc.Defended = true
}

func genTopology(r *sim.Rand, kind string) TopologySpec {
	switch kind {
	case TopoStar:
		rates := []float64{10, 40, 100}
		return TopologySpec{
			Kind: TopoStar,
			N:    4 + r.Intn(12),
			Gbps: rates[r.Intn(len(rates))],
		}
	case TopoMultiBottleneck:
		return TopologySpec{Kind: TopoMultiBottleneck}
	case TopoFatTree:
		return TopologySpec{
			Kind:         TopoFatTree,
			Cores:        2,
			Edges:        2 + r.Intn(2),
			HostsPerEdge: 3 + r.Intn(3),
			Gbps:         40,
		}
	}
	panic("chaos: unknown topology kind " + kind)
}

// pickPair draws a (src, dst) host pair obeying the topology's roles:
// star traffic converges on the hub destination, multibottleneck sends
// A0..A4+B5 toward B0..B4 (Fig. 10's flow direction), fat-tree traffic
// is any-to-any.
func pickPair(r *sim.Rand, t TopologySpec) (int, int) {
	switch t.Kind {
	case TopoStar:
		return r.Intn(t.N), t.N
	case TopoMultiBottleneck:
		return r.Intn(6), 6 + r.Intn(5)
	default:
		hosts := t.hostCount()
		src := r.Intn(hosts)
		dst := r.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
}

func genFlows(r *sim.Rand, t TopologySpec, dur sim.Time, o GenOptions) []FlowSpec {
	cdf := workload.WebSearch()
	if r.Intn(2) == 1 {
		cdf = workload.FBHadoop()
	}
	linkMbps := 40000.0
	if t.Gbps > 0 {
		linkMbps = t.Gbps * 1000
	}
	n := o.MinFlows + r.Intn(o.MaxFlows-o.MinFlows+1)
	var flows []FlowSpec
	for i := 0; i < n; i++ {
		src, dst := pickPair(r, t)
		f := FlowSpec{Src: src, Dst: dst}
		if r.Float64() < 0.4 {
			// Persistent, rate-capped: the fairness-convergence subject.
			f.SizeBytes = -1
			f.MaxRateMbps = linkMbps * (0.5 + 0.5*r.Float64())
			f.StartNs = int64(r.Float64() * 0.2 * float64(dur))
		} else {
			f.SizeBytes = int64(cdf.Sample(r))
			f.Reliable = r.Intn(4) == 0
			f.StartNs = int64(r.Float64() * 0.5 * float64(dur))
		}
		flows = append(flows, f)
	}
	if r.Float64() < 0.5 {
		// Incast burst: k sources hit one destination at the same
		// instant. Total burst volume is capped around 1 MB so the
		// resulting PFC pause wave drains well inside the run.
		_, dst := pickPair(r, t)
		k := 2 + r.Intn(6)
		size := int64(20*1000 + r.Intn(int(1000*1000/int64(k))))
		start := int64(r.Float64() * 0.5 * float64(dur))
		for i := 0; i < k; i++ {
			src := r.Intn(t.hostCount())
			for src == dst {
				src = r.Intn(t.hostCount())
			}
			if t.Kind == TopoStar && src == t.N {
				src = r.Intn(t.N)
			}
			flows = append(flows, FlowSpec{Src: src, Dst: dst, SizeBytes: size, StartNs: start})
		}
	}
	return flows
}

func genFaults(r *sim.Rand, t TopologySpec, dur sim.Time, o GenOptions) []FaultSpec {
	n := int(float64(r.Intn(o.MaxFaults+1)) * o.FaultScale)
	if n > o.MaxFaults {
		n = o.MaxFaults
	}
	links, switches := t.linkCount(), t.switchCount()
	usedLink := make(map[int]bool)
	var fs []FaultSpec
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			li := r.Intn(links)
			if usedLink[li] {
				continue
			}
			usedLink[li] = true
			f := FaultSpec{Kind: FaultLink, Link: li}
			if r.Intn(2) == 0 {
				// Data-plane gremlins: mild loss and reordering. Heavy
				// data loss just measures the retransmit path, not the
				// control loop.
				f.Scope = ScopeData
				f.Drop = 0.05 * r.Float64()
				f.Reorder = 0.1 * r.Float64()
			} else {
				// Control-plane gremlins: CNPs are best-effort, so
				// push much harder on them.
				f.Scope = ScopeCNP
				f.Drop = 0.3 * r.Float64()
				f.Corrupt = 0.2 * r.Float64()
				f.Duplicate = 0.1 * r.Float64()
				f.Reorder = 0.2 * r.Float64()
			}
			fs = append(fs, f)
		case 1:
			period := sim.Millisecond + sim.Time(r.Float64()*float64(2*sim.Millisecond))
			fs = append(fs, FaultSpec{
				Kind:     FaultFlap,
				Link:     r.Intn(links),
				PeriodNs: int64(period),
				ActiveNs: int64(float64(period) * (0.1 + 0.15*r.Float64())),
			})
		case 2:
			fs = append(fs, FaultSpec{
				Kind:   FaultCNPLoss,
				Switch: r.Intn(switches),
				Prob:   0.05 + 0.35*r.Float64(),
			})
		case 3:
			period := sim.Millisecond + sim.Time(r.Float64()*float64(2*sim.Millisecond))
			fs = append(fs, FaultSpec{
				Kind:     FaultCPStall,
				Switch:   r.Intn(switches),
				PeriodNs: int64(period),
				ActiveNs: int64(float64(period) * (0.2 + 0.25*r.Float64())),
			})
		}
	}
	return fs
}
