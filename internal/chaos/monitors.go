package chaos

import (
	"fmt"
	"math"

	"rocc/internal/adversary"
	"rocc/internal/core"
	"rocc/internal/experiments"
	"rocc/internal/faults"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Invariant names. Each one encodes a property the paper claims or the
// simulator's construction guarantees; DESIGN.md §8 maps them to the
// paper's subsections.
const (
	InvTimeMonotonic    = "time_monotonic"
	InvBufferAccounting = "buffer_accounting"
	InvQueueBound       = "queue_bound"
	InvPFCDeadlock      = "pfc_deadlock"
	InvPauseStorm       = "pause_storm"
	InvRPRateBounds     = "rp_rate_bounds"
	InvFlowConservation = "flow_conservation"
	InvLosslessDrops    = "lossless_drops"
	InvStuckQueue       = "stuck_queue"
	InvFairness         = "fairness"
	InvPacketAccounting = "packet_accounting"
	InvBlackhole        = "blackhole"   // no permanent blackhole after reconvergence
	InvRecovery         = "recovery"    // live flows deliver again after restore
	InvStalePause       = "stale_pause" // no pause survives the drain (deadlock-free restore)

	// Adversarial-dimension invariants (defended scenarios only).
	InvVictimFloor  = "victim_floor"          // policing keeps honest flows delivering
	InvWatchdogLive = "watchdog_live"         // no port stays lossless-disabled past its cooldown
	InvQuarantine   = "quarantine_accounting" // detections, releases and current quarantines balance
)

// Violation records one invariant trip.
type Violation struct {
	Invariant string `json:"invariant"`
	AtNs      int64  `json:"at_ns"`
	Detail    string `json:"detail"`
}

// Runtime is the live state the monitors inspect: the scenario, the
// built network, and the flows/reaction points as they come up. Custom
// monitors (tests, future invariants) get the same view the built-ins
// use.
type Runtime struct {
	Scenario Scenario
	Engine   *sim.Engine
	Net      *netsim.Network
	Stack    *experiments.Stack
	Injector *faults.Injector // nil when the scenario has no faults

	// Flows holds the started flow for each Scenario.Flows index (nil
	// until its start event fires).
	Flows []*netsim.Flow

	// RoCCRPs collects the reaction points of started RoCC flows.
	// Rogue-wrapped controllers are naturally excluded: the wrapper type
	// hides the FlowCC underneath, and a rogue's limiter is exactly the
	// thing the rp_rate_bounds invariant must not vouch for.
	RoCCRPs []*core.RP

	// Policers and Watchdogs are the switch-side defenses, one of each
	// per switch on defended scenarios; empty otherwise.
	Policers  []*adversary.Policer
	Watchdogs []*adversary.Watchdog

	fab        *fabric
	midBytes   []int64 // per-flow DeliveredBytes at the fairness window start
	lastNow    sim.Time
	hasDupData bool // a data-scope duplicate fault is configured

	// Topology-kill recovery snapshot, taken shortly after the scheduled
	// restore has reconverged (see Run). The final recovery checkers
	// compare the end-of-run state against it.
	recoverSet          bool   // snapshot taken (scenario had a kill that restored in time)
	recoverBytes        int64  // total delivered bytes at the snapshot
	blackholeAtRecovery uint64 // Net.BlackholeDrops() at the snapshot
	liveAtRecovery      bool   // a persistent flow had started and was not done
}

// CustomMonitor is a caller-supplied invariant. Sample runs on every
// monitor tick, Final once after the drain; either may be nil. Returning
// violated=true files a Violation under Name.
type CustomMonitor struct {
	Name   string
	Sample func(rt *Runtime) (detail string, violated bool)
	Final  func(rt *Runtime) (detail string, violated bool)
}

// checker is one built-in invariant probe.
type checker func(rt *Runtime, o RunOptions) (string, bool)

func checkTimeMonotonic(rt *Runtime, _ RunOptions) (string, bool) {
	now := rt.Engine.Now()
	if now < rt.lastNow {
		return fmt.Sprintf("engine time went backwards: %v after %v", now, rt.lastNow), true
	}
	rt.lastNow = now
	return "", false
}

// checkBufferAccounting is the packet-conservation check inside a
// switch: shared-buffer occupancy must equal the data bytes actually
// sitting in egress queues. Any drift means bytes were created or
// destroyed outside the drop path.
func checkBufferAccounting(rt *Runtime, _ RunOptions) (string, bool) {
	for _, sw := range rt.Net.Switches() {
		sum := 0
		for _, p := range sw.Ports() {
			sum += p.DataQueueBytes()
		}
		if sw.BufferUsed() != sum || sw.BufferUsed() < 0 {
			return fmt.Sprintf("switch %s: bufferUsed=%d but queued data=%d",
				sw.Name, sw.BufferUsed(), sum), true
		}
	}
	return "", false
}

// checkQueueBound holds PFC to its promise: with pause generation on,
// occupancy stays near the shared Xoff trigger plus the in-flight skid
// of each ingress (packets already on the wire when Xoff lands).
func checkQueueBound(rt *Runtime, o RunOptions) (string, bool) {
	for _, sw := range rt.Net.Switches() {
		if !sw.Buffer.PFCEnabled {
			continue
		}
		shared := sw.Buffer.SharedFactor
		if shared <= 0 {
			shared = 2
		}
		bound := shared*sw.Buffer.PFCThreshold + len(sw.Ports())*o.QueueSlackBytes
		if sw.BufferUsed() > bound {
			return fmt.Sprintf("switch %s: buffer %d bytes past PFC bound %d",
				sw.Name, sw.BufferUsed(), bound), true
		}
	}
	return "", false
}

// checkPFCDeadlock looks for a pause-wait cycle: switch S waits on T
// when S's port toward T is paused (T told S to stop). A cycle means no
// switch in it can ever drain — the canonical PFC deadlock.
func checkPFCDeadlock(rt *Runtime, _ RunOptions) (string, bool) {
	// Under hybrid CC an instantaneous cycle is already pathological —
	// converged control keeps queues far from Xoff, so two switches
	// pausing each other means wedged state. PFC-only has no controller:
	// standing congestion makes momentary mutual pauses routine, and
	// Xon hysteresis resolves them. There a cycle only counts if it
	// outlives the run — the post-drain stuck_queue and stale_pause
	// checkers catch exactly that. Rogue-laden scenarios break the same
	// premise from the other side: a blast rogue ignores its controller
	// and drives queues to Xoff on purpose, so momentary mutual pauses
	// are the attack's expected physics, not a wedge — and where the
	// policer has no advertised contract to enforce (end-host schemes),
	// nothing stops them. The post-drain checkers and the watchdog's
	// liveness invariant still guard against a cycle that persists.
	if rt.Scenario.OperatingMode() == netsim.ModePFCOnly || rt.Scenario.RogueCount() > 0 {
		return "", false
	}
	if cycle := pauseWaitCycle(rt.Net.Switches()); cycle != "" {
		return "pause-wait cycle: " + cycle, true
	}
	return "", false
}

// PauseWaitCycle detects a directed cycle in the switch pause-wait
// graph, returning a printable cycle or "". Exported for probes outside
// the soak (the collective experiments watch for deadlock with it).
func PauseWaitCycle(switches []*netsim.Switch) string {
	return pauseWaitCycle(switches)
}

// pauseWaitCycle detects a directed cycle in the switch pause-wait
// graph, returning a printable cycle or "".
func pauseWaitCycle(switches []*netsim.Switch) string {
	adj := make(map[*netsim.Switch][]*netsim.Switch)
	for _, s := range switches {
		for _, p := range s.Ports() {
			if !p.Paused() {
				continue
			}
			if t, ok := p.PeerNode.(*netsim.Switch); ok {
				adj[s] = append(adj[s], t)
			}
		}
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*netsim.Switch]int)
	var stack []*netsim.Switch
	var dfs func(s *netsim.Switch) string
	dfs = func(s *netsim.Switch) string {
		color[s] = grey
		stack = append(stack, s)
		for _, t := range adj[s] {
			if color[t] == grey {
				cycle := ""
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = stack[i].Name + "->" + cycle
					if stack[i] == t {
						break
					}
				}
				return cycle + t.Name
			}
			if color[t] == white {
				if c := dfs(t); c != "" {
					return c
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[s] = black
		return ""
	}
	for _, s := range switches {
		if color[s] == white {
			if c := dfs(s); c != "" {
				return c
			}
		}
	}
	return ""
}

// checkPauseStorm is the max-pause-span watchdog: one pause interval
// (completed or still running) exceeding the budget means an upstream
// queue has been wedged far longer than any healthy drain takes.
func checkPauseStorm(rt *Runtime, o RunOptions) (string, bool) {
	if span := rt.Net.LongestPauseSpan(); span > o.MaxPauseSpan {
		return fmt.Sprintf("pause span %v exceeds budget %v", span, o.MaxPauseSpan), true
	}
	return "", false
}

// checkRPRate pins Alg. 2's state machine: an installed reaction point's
// rate is positive, finite, and below the ValidCNP admission ceiling. A
// rate outside that band means corrupt feedback steered the limiter.
func checkRPRate(rt *Runtime, _ RunOptions) (string, bool) {
	for i, rp := range rt.RoCCRPs {
		r := rp.RateMbps()
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return fmt.Sprintf("RP %d rate %v escaped (0, Rbound]", i, r), true
		}
		if bound := rp.RateBoundMbps(); bound > 0 && r > bound {
			return fmt.Sprintf("RP %d rate %.1f Mbps above validation bound %.1f", i, r, bound), true
		}
	}
	return "", false
}

// checkFlowConservation: a receiver can never have contiguously
// delivered more payload than the sender emitted. Skipped when a
// data-scope duplicate fault is configured (duplicates legitimately
// inflate unreliable delivery).
func checkFlowConservation(rt *Runtime, _ RunOptions) (string, bool) {
	if rt.hasDupData {
		return "", false
	}
	for i, f := range rt.Flows {
		if f == nil {
			continue
		}
		if f.DeliveredBytes() > f.SentBytes() {
			return fmt.Sprintf("flow %d delivered %d > sent %d", i, f.DeliveredBytes(), f.SentBytes()), true
		}
	}
	return "", false
}

// checkLosslessDrops: a fabric with PFC on every switch must not tail
// drop — pause is supposed to fire first. The planted misconfiguration
// (PFC threshold above the buffer size) is caught exactly here.
func checkLosslessDrops(rt *Runtime, _ RunOptions) (string, bool) {
	for _, sw := range rt.Net.Switches() {
		if !sw.Buffer.PFCEnabled {
			return "", false
		}
	}
	if d := rt.Net.TotalDrops(); d > 0 {
		return fmt.Sprintf("%d tail drops in a PFC-lossless fabric", d), true
	}
	return "", false
}

// checkStuckQueue runs after the drain grace: every fault schedule has
// quiesced and every flow is stopped, so data still queued (or a pause
// still asserted against queued data) can never clear — the residue
// form of both deadlock and conservation failure.
func checkStuckQueue(rt *Runtime, _ RunOptions) (string, bool) {
	for _, sw := range rt.Net.Switches() {
		if sw.BufferUsed() != 0 {
			return fmt.Sprintf("switch %s holds %d bytes after drain", sw.Name, sw.BufferUsed()), true
		}
		for _, p := range sw.Ports() {
			if p.DataQueueBytes() > 0 {
				return fmt.Sprintf("switch %s port %d queues %d bytes after drain",
					sw.Name, p.Index, p.DataQueueBytes()), true
			}
		}
	}
	return "", false
}

// checkPacketAccounting polices the packet pool's ledger while the run is
// live: the outstanding count can only go negative through a double
// release (each acquire adds one, each release subtracts one).
func checkPacketAccounting(rt *Runtime, _ RunOptions) (string, bool) {
	if live := rt.Net.OutstandingPackets(); live < 0 {
		return fmt.Sprintf("outstanding pooled packets %d < 0 (double release)", live), true
	}
	return "", false
}

// checkPacketAccountingFinal closes the ledger after the drain grace: the
// engine queue is empty, so every packet still charged to the simulation
// must be parked in a port queue (normally zero of both). A surplus means
// a terminal point forgot to release; a deficit means a double release.
func checkPacketAccountingFinal(rt *Runtime, _ RunOptions) (string, bool) {
	live := rt.Net.OutstandingPackets()
	queued := int64(rt.Net.QueuedPackets())
	if live != queued {
		return fmt.Sprintf("%d pooled packets outstanding after drain but %d parked in queues (leak or double release)",
			live, queued), true
	}
	return "", false
}

// checkFairness is the eventual-convergence invariant (§6.1 / Fig. 11),
// applied only where it is well-posed: a clean star run whose persistent
// flows all share the one bottleneck. Jain's index over second-half
// throughput must clear a deliberately loose floor — the monitor is for
// catastrophic starvation, not protocol ranking. In mixed-protocol
// scenarios the index is computed within each protocol group separately:
// convergence to a fair share is a promise each scheme makes among its
// own flows, while the inter-protocol split is precisely what rollout
// experiments measure and no scheme guarantees.
func checkFairness(rt *Runtime, o RunOptions) (string, bool) {
	if len(rt.Scenario.Faults) > 0 || rt.Scenario.Topology.Kind != TopoStar {
		return "", false
	}
	// Fair convergence is a congestion-control promise, and only the
	// hybrid discipline makes it cleanly: PFC-only has no controller
	// (pause fairness is famously poor — that asymmetry is a finding,
	// not a bug), and lossy timeouts skew shares.
	if rt.Scenario.OperatingMode() != netsim.ModeHybrid {
		return "", false
	}
	groups := make(map[string][]float64)
	for i, fs := range rt.Scenario.Flows {
		if fs.SizeBytes != -1 || rt.Flows[i] == nil || rt.midBytes == nil {
			continue
		}
		// Only flows live for the whole measurement window count.
		if fs.StartNs > rt.Scenario.DurationNs/2 {
			continue
		}
		// Rogue and policed flows are outside the fairness contract: a
		// rogue took itself out of the control loop, and a quarantined
		// flow is being deliberately starved to a penalty rate — counting
		// either would fail honest scenarios for containing the attack.
		if fs.Rogue != "" || rt.flowQuarantined(rt.Flows[i].ID) {
			continue
		}
		proto := string(rt.Scenario.FlowProtocol(i))
		groups[proto] = append(groups[proto], float64(rt.Flows[i].DeliveredBytes()-rt.midBytes[i]))
	}
	for proto, xs := range groups {
		if len(xs) < 2 {
			continue
		}
		var sum, sumSq float64
		for _, x := range xs {
			sum += x
			sumSq += x * x
		}
		if sumSq == 0 {
			return fmt.Sprintf("%d persistent %s flows delivered nothing in the second half", len(xs), proto), true
		}
		jain := sum * sum / (float64(len(xs)) * sumSq)
		if jain < o.MinJain {
			return fmt.Sprintf("%s Jain index %.3f below floor %.3f over %d flows", proto, jain, o.MinJain, len(xs)), true
		}
	}
	return "", false
}

// checkBlackhole runs after the drain: once a kill's restore has
// reconverged, the routing tables must be whole again and no packet may
// blackhole past the recovery snapshot — a later no-route drop means a
// permanent hole, not a window.
func checkBlackhole(rt *Runtime, _ RunOptions) (string, bool) {
	if !rt.recoverSet {
		return "", false
	}
	if detail, ok := rt.Net.RoutesComplete(); !ok {
		return "routes incomplete after restore: " + detail, true
	}
	if d := rt.Net.BlackholeDrops(); d > rt.blackholeAtRecovery {
		return fmt.Sprintf("%d blackhole drops after reconvergence (total %d)",
			d-rt.blackholeAtRecovery, d), true
	}
	return "", false
}

// checkRecovery is the bounded-recovery invariant: a persistent flow that
// was alive when the fabric healed must deliver bytes between the
// recovery snapshot and the end of the run. Silence across that whole
// stretch means the failure permanently wedged the flow (a dead rate
// limiter, an unrecovered route, a stuck pause) rather than dipping it.
func checkRecovery(rt *Runtime, _ RunOptions) (string, bool) {
	if !rt.recoverSet || !rt.liveAtRecovery {
		return "", false
	}
	var total int64
	for _, f := range rt.Flows {
		if f != nil {
			total += f.DeliveredBytes()
		}
	}
	if total <= rt.recoverBytes {
		return fmt.Sprintf("no bytes delivered after restore (stuck at %d)", total), true
	}
	return "", false
}

// flowQuarantined reports whether any attached policer currently holds
// the flow at a penalty rate.
func (rt *Runtime) flowQuarantined(fid netsim.FlowID) bool {
	for _, p := range rt.Policers {
		if p.Quarantined(fid) {
			return true
		}
	}
	return false
}

// checkVictimFloor is the containment invariant: on a defended scenario
// with rogue senders, the honest flows must still deliver — the policer
// exists so an adversary cannot starve the fabric, and a zero-byte
// victim population means either the defense failed or (worse) it
// quarantined the victims instead of the rogues.
func checkVictimFloor(rt *Runtime, _ RunOptions) (string, bool) {
	if len(rt.Policers) == 0 || rt.Scenario.RogueCount() == 0 {
		return "", false
	}
	victims := 0
	var delivered int64
	for i, f := range rt.Flows {
		if f == nil || rt.Scenario.Flows[i].Rogue != "" {
			continue
		}
		victims++
		delivered += f.DeliveredBytes()
	}
	if victims > 0 && delivered == 0 {
		return fmt.Sprintf("%d honest flows delivered zero bytes under policing", victims), true
	}
	return "", false
}

// checkWatchdogLive is the mitigation-liveness invariant: disabling a
// port's lossless class is an intervention, and interventions must
// unwind — a port still disabled past its recorded cooldown deadline
// means the re-enable was lost and the port drops data forever.
func checkWatchdogLive(rt *Runtime, _ RunOptions) (string, bool) {
	for _, w := range rt.Watchdogs {
		if w.StuckDisabled(rt.Engine.Now()) {
			return fmt.Sprintf("%d ports lossless-disabled past their cooldown deadline", w.DisabledPorts()), true
		}
	}
	return "", false
}

// checkQuarantineLedger closes the policer's books: releases can never
// outnumber detections, and the flows held right now must equal the
// difference — anything else means quarantine state leaked or was
// double-counted.
func checkQuarantineLedger(rt *Runtime, _ RunOptions) (string, bool) {
	for _, p := range rt.Policers {
		st := p.Stats()
		if st.Releases > st.Detections {
			return fmt.Sprintf("%d releases exceed %d detections", st.Releases, st.Detections), true
		}
		if got := p.CurrentQuarantined(); got != st.Detections-st.Releases {
			return fmt.Sprintf("%d flows quarantined but ledger says %d-%d",
				got, st.Detections, st.Releases), true
		}
	}
	return "", false
}

// checkStalePause runs after the drain on every scenario: with all flows
// stopped, all fault schedules quiesced and all queues empty, every PFC
// pause must have been released. A pause that survives the drain can
// never clear — the residue form of a pause-state leak (the stale-pause
// class of bug the flap/kill restore paths guard against).
func checkStalePause(rt *Runtime, _ RunOptions) (string, bool) {
	for _, sw := range rt.Net.Switches() {
		for _, p := range sw.Ports() {
			if p.Paused() {
				return fmt.Sprintf("switch %s port %d still paused after drain", sw.Name, p.Index), true
			}
		}
	}
	for _, h := range rt.Net.Hosts() {
		for _, p := range h.Ports() {
			if p.Paused() {
				return fmt.Sprintf("host %s NIC still paused after drain", h.Name), true
			}
		}
	}
	return "", false
}

// sampleCheckers run on every monitor tick; finalCheckers once after the
// drain grace.
var sampleCheckers = []struct {
	name string
	fn   checker
}{
	{InvTimeMonotonic, checkTimeMonotonic},
	{InvBufferAccounting, checkBufferAccounting},
	{InvQueueBound, checkQueueBound},
	{InvPFCDeadlock, checkPFCDeadlock},
	{InvPauseStorm, checkPauseStorm},
	{InvRPRateBounds, checkRPRate},
	{InvFlowConservation, checkFlowConservation},
	{InvLosslessDrops, checkLosslessDrops},
	{InvPacketAccounting, checkPacketAccounting},
	{InvQuarantine, checkQuarantineLedger},
}

var finalCheckers = []struct {
	name string
	fn   checker
}{
	{InvStuckQueue, checkStuckQueue},
	{InvLosslessDrops, checkLosslessDrops},
	{InvFlowConservation, checkFlowConservation},
	{InvFairness, checkFairness},
	{InvPacketAccounting, checkPacketAccountingFinal},
	{InvBlackhole, checkBlackhole},
	{InvRecovery, checkRecovery},
	{InvStalePause, checkStalePause},
	{InvVictimFloor, checkVictimFloor},
	{InvWatchdogLive, checkWatchdogLive},
	{InvQuarantine, checkQuarantineLedger},
}
