// Package control reproduces the §5 stability analysis of the RoCC PI
// controller. The open-loop transfer function derived in the paper is
//
//	G(s) = K · (1 + s/z1) / s² · e^(−sT)
//
// with K = κNα/T, z1 = α/((β+α/2)·T), and κ = ΔF/ΔQ (converted to
// bytes/s per rate unit over bytes per queue unit). Phase margins and
// gain-crossover (loop bandwidth) values regenerate Figs. 5, 6, 7a, 7b,
// and the auto-tune mapping of §5.3.
package control

import "math"

// DefaultKappa is κ for the paper's quantization: ΔF = 10 Mb/s expressed
// in bytes/s, over ΔQ = 600 B. Units: 1/s.
const DefaultKappa = 10e6 / 8 / 600

// System is the linearized RoCC control loop for one congestion point.
type System struct {
	Alpha float64 // PI proportional gain α (per update, in quantized units)
	Beta  float64 // PI derivative gain β
	N     float64 // number of flows sharing the link
	T     float64 // update interval in seconds (40 µs in §6)
	Kappa float64 // κ = ΔF/ΔQ in 1/s; zero selects DefaultKappa
}

func (s System) kappa() float64 {
	if s.Kappa > 0 {
		return s.Kappa
	}
	return DefaultKappa
}

// K returns the open-loop gain K = κNα/T.
func (s System) K() float64 { return s.kappa() * s.N * s.Alpha / s.T }

// Z1 returns the controller zero z1 = α/((β+α/2)T) in rad/s.
func (s System) Z1() float64 { return s.Alpha / ((s.Beta + s.Alpha/2) * s.T) }

// GainAt returns |G(jω)| at angular frequency w (rad/s).
func (s System) GainAt(w float64) float64 {
	z1 := s.Z1()
	return s.K() * math.Sqrt(1+(w/z1)*(w/z1)) / (w * w)
}

// PhaseAt returns the phase of G(jω) in degrees: the zero contributes
// +atan(ω/z1), the double integrator −180°, and the loop delay −ωT.
func (s System) PhaseAt(w float64) float64 {
	z1 := s.Z1()
	return math.Atan(w/z1)*180/math.Pi - 180 - w*s.T*180/math.Pi
}

// Crossover returns the gain-crossover frequency ω_c (rad/s) where
// |G(jω)| = 1. |G| is strictly decreasing in ω, so bisection applies.
func (s System) Crossover() float64 {
	lo, hi := 1e-3, 1e12
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection on log scale
		if s.GainAt(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// PhaseMarginDeg returns the phase margin in degrees: 180° + ∠G(jω_c).
// Positive margins mean the closed loop is stable.
func (s System) PhaseMarginDeg() float64 {
	return 180 + s.PhaseAt(s.Crossover())
}

// LoopBandwidthHz returns the gain-crossover frequency in Hz — the
// paper's "loop bandwidth", a proxy for response speed (Fig. 7b).
func (s System) LoopBandwidthHz() float64 {
	return s.Crossover() / (2 * math.Pi)
}

// AutoTuneGains applies the Alg. 1 quantized auto-tuning to the static
// gains for an equilibrium fair rate of fmaxUnits/n (i.e. n equal flows):
// the level doubles while F < Fmax/level, capped at maxLevel, and both
// gains are divided by level/2. It returns the effective gains and level.
func AutoTuneGains(alphaTilde, betaTilde float64, n float64, maxLevel int) (alpha, beta float64, level int) {
	level = 2
	for n > float64(level) && level < maxLevel {
		level *= 2
	}
	ratio := float64(level / 2)
	return alphaTilde / ratio, betaTilde / ratio, level
}

// GainPair is one α:β point of Figs. 7a/7b.
type GainPair struct {
	Alpha, Beta float64
}

// PaperGainPairs returns the six α:β pairs of Fig. 7: starting at 0.3:3
// and halving both values five times.
func PaperGainPairs() []GainPair {
	pairs := make([]GainPair, 6)
	a, b := 0.3, 3.0
	for i := range pairs {
		pairs[i] = GainPair{Alpha: a, Beta: b}
		a /= 2
		b /= 2
	}
	return pairs
}
