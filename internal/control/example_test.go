package control_test

import (
	"fmt"

	"rocc/internal/control"
)

// Example reproduces the paper's §5.2 headline numbers: the aggressive
// gain pair is stable for two flows but not ten, while auto-tuning keeps
// the margin constant.
func Example() {
	for _, n := range []float64{2, 10} {
		s := control.System{Alpha: 0.3, Beta: 3, N: n, T: 40e-6}
		fmt.Printf("fixed gains, N=%-2.0f phase margin %.0f deg\n", n, s.PhaseMarginDeg())
	}
	for _, n := range []float64{2, 64} {
		a, b, _ := control.AutoTuneGains(0.3, 3, n, 64)
		s := control.System{Alpha: a, Beta: b, N: n, T: 40e-6}
		fmt.Printf("auto-tuned,  N=%-2.0f phase margin %.0f deg\n", n, s.PhaseMarginDeg())
	}
	// Output:
	// fixed gains, N=2  phase margin 49 deg
	// fixed gains, N=10 phase margin -63 deg
	// auto-tuned,  N=2  phase margin 49 deg
	// auto-tuned,  N=64 phase margin 49 deg
}
