package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperConservativePairStableForAllN(t *testing.T) {
	// §5.2: α = 0.0093, β = 0.0937 "ensures a phase margin above 20
	// degrees and stability for all values of N" in [2, 128].
	for n := 2.0; n <= 128; n *= 2 {
		s := System{Alpha: 0.0093, Beta: 0.0937, N: n, T: 40e-6}
		if pm := s.PhaseMarginDeg(); pm <= 20 {
			t.Errorf("N=%v: phase margin %.1f, want > 20", n, pm)
		}
	}
}

func TestFig6Anchors(t *testing.T) {
	// Fig. 6: with the aggressive pair, N=2 has ~50 degrees of margin
	// and N=10 is deeply unstable (~-50).
	s2 := System{Alpha: 0.3, Beta: 3, N: 2, T: 40e-6}
	if pm := s2.PhaseMarginDeg(); pm < 40 || pm > 60 {
		t.Errorf("N=2 margin = %.1f, want ~50", pm)
	}
	s10 := System{Alpha: 0.3, Beta: 3, N: 10, T: 40e-6}
	if pm := s10.PhaseMarginDeg(); pm > -40 {
		t.Errorf("N=10 margin = %.1f, want strongly negative", pm)
	}
}

func TestMoreFlowsErodeMargin(t *testing.T) {
	// Fig. 7a: for fixed gains, large N erodes the phase margin (the
	// open-loop gain grows with N, pushing the crossover into the
	// delay-dominated region). The curve may rise slightly at small N
	// while the controller zero still adds lead, but the margin at
	// N=128 must sit far below the peak and below the N=2 value.
	pm := func(n float64) float64 {
		return System{Alpha: 0.075, Beta: 0.75, N: n, T: 40e-6}.PhaseMarginDeg()
	}
	if pm(128) >= pm(2)-20 {
		t.Errorf("margin at N=128 (%.1f) not well below N=2 (%.1f)", pm(128), pm(2))
	}
	if pm(128) >= pm(32) {
		t.Errorf("margin at N=128 (%.1f) not below N=32 (%.1f)", pm(128), pm(32))
	}
}

func TestSmallerGainsStabilizeLargerN(t *testing.T) {
	// Fig. 7a: each halving of the pair extends the stable N range.
	pairs := PaperGainPairs()
	var maxStable []float64
	for _, p := range pairs {
		stable := 0.0
		for n := 2.0; n <= 128; n *= 2 {
			s := System{Alpha: p.Alpha, Beta: p.Beta, N: n, T: 40e-6}
			if s.PhaseMarginDeg() > 0 {
				stable = n
			} else {
				break
			}
		}
		maxStable = append(maxStable, stable)
	}
	for i := 1; i < len(maxStable); i++ {
		if maxStable[i] < maxStable[i-1] {
			t.Errorf("stable range shrank from pair %d to %d: %v", i-1, i, maxStable)
		}
	}
	if maxStable[0] >= 16 {
		t.Errorf("most aggressive pair stable to N=%v, expected small", maxStable[0])
	}
	if maxStable[len(maxStable)-1] < 64 {
		t.Errorf("most conservative pair only stable to N=%v", maxStable[len(maxStable)-1])
	}
}

func TestSmallerGainsSlowTheLoop(t *testing.T) {
	// Fig. 7b: at fixed N, smaller gains yield lower loop bandwidth.
	prev := math.Inf(1)
	for _, p := range PaperGainPairs() {
		s := System{Alpha: p.Alpha, Beta: p.Beta, N: 2, T: 40e-6}
		bw := s.LoopBandwidthHz()
		if bw >= prev {
			t.Errorf("bandwidth not decreasing across pairs: %.0f >= %.0f", bw, prev)
		}
		prev = bw
	}
}

func TestAutoTuneFlattensMarginAndBandwidth(t *testing.T) {
	// §5.3: quantized auto-tuning holds margin and response roughly
	// constant across N in the covered range (N <= 64 with 6 levels).
	var margins, bws []float64
	for n := 2.0; n <= 64; n *= 2 {
		a, b, _ := AutoTuneGains(0.3, 3, n, 64)
		s := System{Alpha: a, Beta: b, N: n, T: 40e-6}
		margins = append(margins, s.PhaseMarginDeg())
		bws = append(bws, s.LoopBandwidthHz())
	}
	for i := 1; i < len(margins); i++ {
		if math.Abs(margins[i]-margins[0]) > 1 {
			t.Errorf("auto-tuned margin varies: %v", margins)
		}
		if math.Abs(bws[i]-bws[0])/bws[0] > 0.01 {
			t.Errorf("auto-tuned bandwidth varies: %v", bws)
		}
	}
	if margins[0] < 40 {
		t.Errorf("auto-tuned margin %.1f, want comfortably positive", margins[0])
	}
}

func TestAutoTuneGainsLevels(t *testing.T) {
	cases := []struct {
		n     float64
		level int
	}{
		{2, 2}, {3, 4}, {4, 4}, {8, 8}, {20, 32}, {64, 64}, {500, 64},
	}
	for _, c := range cases {
		_, _, lvl := AutoTuneGains(0.3, 3, c.n, 64)
		if lvl != c.level {
			t.Errorf("N=%v: level = %d, want %d", c.n, lvl, c.level)
		}
	}
	a, b, _ := AutoTuneGains(0.3, 3, 8, 64)
	if a != 0.3/4 || b != 3.0/4 {
		t.Errorf("gains at level 8 = %v/%v", a, b)
	}
}

func TestCrossoverIsUnityGain(t *testing.T) {
	s := System{Alpha: 0.3, Beta: 1.5, N: 10, T: 40e-6}
	wc := s.Crossover()
	if g := s.GainAt(wc); math.Abs(g-1) > 1e-6 {
		t.Errorf("|G(jwc)| = %v, want 1", g)
	}
}

// Property: |G(jw)| is strictly decreasing, which justifies the bisection
// in Crossover.
func TestGainMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw, nRaw uint8, w1, w2 float64) bool {
		a := 0.001 + float64(aRaw)/255*0.5
		b := 0.01 + float64(bRaw)/255*5
		n := float64(nRaw%127) + 2
		s := System{Alpha: a, Beta: b, N: n, T: 40e-6}
		w1 = 1 + math.Abs(math.Mod(w1, 1e6))
		w2 = 1 + math.Abs(math.Mod(w2, 1e6))
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		if w2-w1 < 1e-9 {
			return true
		}
		return s.GainAt(w1) >= s.GainAt(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPhaseComponents(t *testing.T) {
	s := System{Alpha: 0.3, Beta: 3, N: 2, T: 40e-6}
	// At very low frequency the double integrator dominates: phase -> -180.
	if p := s.PhaseAt(1e-6); math.Abs(p+180) > 0.1 {
		t.Errorf("low-frequency phase = %v, want ~-180", p)
	}
	// The zero can contribute at most +90; delay makes phase fall again.
	if p := s.PhaseAt(1e7); p > -90 {
		t.Errorf("high-frequency phase = %v, want below -90 (delay dominates)", p)
	}
}

func TestDefaultKappa(t *testing.T) {
	s := System{Alpha: 1, Beta: 1, N: 1, T: 1}
	if got := s.K(); math.Abs(got-DefaultKappa) > 1e-9 {
		t.Errorf("K with unit params = %v, want κ", got)
	}
	s.Kappa = 100
	if got := s.K(); got != 100 {
		t.Errorf("explicit κ ignored: %v", got)
	}
	if math.Abs(DefaultKappa-2083.333) > 0.01 {
		t.Errorf("DefaultKappa = %v, want (10e6/8)/600", DefaultKappa)
	}
}

func TestPaperGainPairs(t *testing.T) {
	pairs := PaperGainPairs()
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs, want 6", len(pairs))
	}
	if pairs[0].Alpha != 0.3 || pairs[0].Beta != 3 {
		t.Errorf("first pair = %+v", pairs[0])
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Alpha != pairs[i-1].Alpha/2 || pairs[i].Beta != pairs[i-1].Beta/2 {
			t.Errorf("pair %d not halved: %+v", i, pairs[i])
		}
	}
}

func TestZ1Formula(t *testing.T) {
	s := System{Alpha: 0.3, Beta: 3, N: 2, T: 40e-6}
	want := 0.3 / ((3 + 0.15) * 40e-6)
	if got := s.Z1(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Z1 = %v, want %v", got, want)
	}
}
