// Package harness fans independent experiment cells out across a
// bounded worker pool. The paper's evaluation reports every figure as
// an average over repeated runs; each (experiment × protocol ×
// repetition) cell owns a private sim.Engine and seed, so cells are
// embarrassingly parallel. The harness provides the scaffolding every
// repetition sweep shares:
//
//   - GOMAXPROCS-bounded workers (Options.Workers),
//   - deterministic ordered merge: results are slotted by cell index,
//     never by completion order, so a parallel sweep is byte-identical
//     to a serial one,
//   - derived per-cell seeds (Seed = base + repetition index),
//   - per-cell panic capture: a crashed repetition becomes a reported
//     error on its own Result instead of killing the whole sweep,
//   - per-cell wall-clock and progress instrumentation (Result.Elapsed,
//     Options.OnCell).
//
// With Workers = 1 the cells run sequentially in index order, which is
// exactly the pre-harness serial behaviour.
package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Result is the outcome of one cell.
type Result[T any] struct {
	Index   int           // cell index in [0, n)
	Value   T             // fn's return value; zero when Err != nil
	Err     error         // non-nil if the cell returned an error or panicked
	Elapsed time.Duration // wall-clock time the cell took on its worker
}

// Options configures a Run.
type Options struct {
	// Workers bounds the number of concurrently executing cells.
	// Values <= 0 select runtime.GOMAXPROCS(0). It is further capped at
	// the number of cells.
	Workers int

	// OnCell, if set, is invoked as each cell finishes (in completion
	// order, which is nondeterministic). Calls are serialized by the
	// harness, so the callback needs no locking of its own.
	OnCell func(index int, elapsed time.Duration, err error)
}

// Seed derives the per-repetition RNG seed from a base seed, matching
// the serial convention the runners always used (base + repetition).
func Seed(base int64, rep int) int64 { return base + int64(rep) }

// Run executes fn for every cell index in [0, n) across the worker pool
// and returns the results ordered by cell index. A cell that panics is
// recovered into its Result's Err; the remaining cells still run.
func Run[T any](n int, opts Options, fn func(cell int) (T, error)) []Result[T] {
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
	}
	if n == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	cells := make(chan int)
	var wg sync.WaitGroup
	var cbMu sync.Mutex
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range cells {
				start := time.Now()
				v, err := runCell(i, fn)
				elapsed := time.Since(start)
				results[i].Value = v
				results[i].Err = err
				results[i].Elapsed = elapsed
				if opts.OnCell != nil {
					cbMu.Lock()
					opts.OnCell(i, elapsed, err)
					cbMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return results
}

// runCell invokes fn with panic capture.
func runCell[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v = zero
			err = fmt.Errorf("harness: cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// Values unpacks results into a value slice in cell order, returning
// the first error by cell index (not completion order), if any.
func Values[T any](results []Result[T]) ([]T, error) {
	vals := make([]T, len(results))
	var first error
	for i, r := range results {
		vals[i] = r.Value
		if r.Err != nil && first == nil {
			first = r.Err
		}
	}
	return vals, first
}
