package harness

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSlotsResultsByIndex(t *testing.T) {
	// Later cells finish first (descending sleep), yet results must come
	// back in cell order.
	n := 8
	rs := Run(n, Options{Workers: 4}, func(i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return i * i, nil
	})
	if len(rs) != n {
		t.Fatalf("results = %d, want %d", len(rs), n)
	}
	for i, r := range rs {
		if r.Index != i || r.Value != i*i || r.Err != nil {
			t.Errorf("cell %d: %+v", i, r)
		}
		if r.Elapsed <= 0 {
			t.Errorf("cell %d: no elapsed time recorded", i)
		}
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	var order []int
	Run(5, Options{Workers: 1}, func(i int) (int, error) {
		order = append(order, i) // safe: one worker, no concurrency
		return 0, nil
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v, want ascending", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var active, peak atomic.Int64
	Run(16, Options{Workers: 3}, func(i int) (int, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		active.Add(-1)
		return 0, nil
	})
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d, want <= 3", p)
	}
}

func TestRunCapturesPanics(t *testing.T) {
	rs := Run(5, Options{Workers: 2}, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	for i, r := range rs {
		if i == 3 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "cell 3 panicked: boom") {
				t.Errorf("cell 3 error = %v", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("cell %d affected by sibling panic: %+v", i, r)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	sentinel := errors.New("cell error")
	rs := Run(4, Options{Workers: 4}, func(i int) (string, error) {
		if i == 1 {
			return "", sentinel
		}
		return "ok", nil
	})
	vals, err := Values(rs)
	if !errors.Is(err, sentinel) {
		t.Errorf("Values error = %v, want sentinel", err)
	}
	if vals[0] != "ok" || vals[2] != "ok" || vals[3] != "ok" {
		t.Errorf("vals = %v", vals)
	}
}

func TestValuesNoError(t *testing.T) {
	rs := Run(3, Options{}, func(i int) (int, error) { return i + 1, nil })
	vals, err := Values(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("vals = %v", vals)
	}
}

func TestOnCellSerializedAndComplete(t *testing.T) {
	// A plain (unsynchronized) counter: the harness guarantees OnCell
	// calls are serialized, so this is race-free and must total n.
	seen := 0
	var sumElapsed time.Duration
	Run(32, Options{Workers: 8, OnCell: func(i int, d time.Duration, err error) {
		seen++
		sumElapsed += d
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
	}}, func(i int) (int, error) {
		return i, nil
	})
	if seen != 32 {
		t.Errorf("OnCell fired %d times, want 32", seen)
	}
	if sumElapsed < 0 {
		t.Error("negative elapsed total")
	}
}

func TestRunZeroCells(t *testing.T) {
	rs := Run(0, Options{}, func(i int) (int, error) { return 0, nil })
	if len(rs) != 0 {
		t.Errorf("results = %v", rs)
	}
}

func TestSeedDerivation(t *testing.T) {
	if Seed(7, 0) != 7 || Seed(7, 4) != 11 {
		t.Error("Seed must be base + rep")
	}
}
