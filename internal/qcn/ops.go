package qcn

import "rocc/internal/netsim"

// Ops is QCN's netsim.CongestionOps descriptor: sampling congestion
// points on switch egress ports and byte-counter/timer reaction points
// per flow. Layer-2 feedback needs no receiver hook and no flow ACKs.
type Ops struct {
	// Config maps a link/NIC rate to QCN parameters. Nil selects
	// DefaultConfig.
	Config func(gbps float64) Config
}

func (o *Ops) config(gbps float64) Config {
	if o.Config != nil {
		return o.Config(gbps)
	}
	return DefaultConfig(gbps)
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "QCN" }

// Features implements netsim.CongestionOps.
func (o *Ops) Features() netsim.CCFeatures {
	return netsim.CCFeatures{UsesCNP: true, CNPClass: netsim.ClassCtrl}
}

// AttachPort implements netsim.CongestionOps.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	return AttachCP(net, sw, port, o.config(port.LinkRate.Gbps()))
}

// NewReceiver implements netsim.CongestionOps: no receiver action.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook { return nil }

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src.Engine(), src, o.config(src.NIC().LinkRate.Gbps()))
}

// AckEvery implements netsim.CongestionOps: QCN needs no flow ACKs.
func (o *Ops) AckEvery(src *netsim.Host) int { return 0 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (cp *CP) CCProtocol() string { return "QCN" }
