// Package qcn reimplements QCN (IEEE 802.1Qau; Alizadeh et al., Allerton
// 2008), the layer-2 switch-driven baseline RoCC descends from:
//
//   - Congestion point: sample roughly every SampleBytes of arrivals;
//     compute Fb = -(Qoff + W·Qδ) and, when negative, send its quantized
//     magnitude to the source of the sampled packet.
//   - Reaction point: multiplicative decrease proportional to Fb, then
//     byte-counter/timer driven fast recovery and active increase toward
//     the remembered target rate.
package qcn

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds QCN parameters (802.1Qau defaults, rate steps scaled by
// line rate).
type Config struct {
	// Congestion point.
	QeqBytes    int     // equilibrium queue length
	W           float64 // queue-derivative weight (2)
	SampleBytes int     // mean sampled-packet spacing (150 KB)
	FbBits      int     // feedback quantization bits (6)

	// Reaction point.
	Gd        float64  // rate-decrease gain: cut = Gd·|Fb| (max 1/2)
	ByteLimit int64    // fast-recovery byte counter (150 KB)
	Timer     sim.Time // fast-recovery timer (15 ms in spec; scaled down)
	FastSteps int      // cycles before active increase (5)
	RAIMbps   float64  // active-increase step
	RminMbps  float64  // rate floor
	RmaxMbps  float64  // line rate; 0 = host NIC rate
}

// DefaultConfig returns QCN parameters for a gbps fabric.
func DefaultConfig(gbps float64) Config {
	scale := gbps / 10
	if scale < 1 {
		scale = 1
	}
	maxFb := float64(int(1)<<6 - 1)
	return Config{
		QeqBytes:    150 * netsim.KB,
		W:           2,
		SampleBytes: 150 * netsim.KB,
		FbBits:      6,
		Gd:          0.5 / maxFb,
		ByteLimit:   150 * 1000,
		Timer:       500 * sim.Microsecond,
		FastSteps:   5,
		RAIMbps:     5 * scale,
		RminMbps:    10,
		RmaxMbps:    gbps * 1000,
	}
}

// CP is the QCN congestion point for one egress port.
type CP struct {
	net  *netsim.Network
	sw   *netsim.Switch
	cfg  Config
	acc  int
	qold int

	FbSent uint64
}

// AttachCP installs a QCN congestion point on an egress port.
func AttachCP(net *netsim.Network, sw *netsim.Switch, port *netsim.Port, cfg Config) *CP {
	cp := &CP{net: net, sw: sw, cfg: cfg}
	port.CC = cp
	return cp
}

// OnEnqueue implements netsim.PortCC: byte-driven sampling and feedback.
func (cp *CP) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	cp.acc += pkt.Size
	if cp.acc < cp.cfg.SampleBytes {
		return
	}
	cp.acc -= cp.cfg.SampleBytes
	qoff := qlen - cp.cfg.QeqBytes
	qdelta := qlen - cp.qold
	cp.qold = qlen
	fb := -(float64(qoff) + cp.cfg.W*float64(qdelta))
	if fb >= 0 {
		return // no congestion; QCN sends nothing
	}
	// Quantize |Fb| to FbBits against the maximum representable
	// congestion (Qeq·(1+2W), per the standard's scaling).
	maxFb := float64(cp.cfg.QeqBytes) * (1 + 2*cp.cfg.W)
	mag := -fb
	if mag > maxFb {
		mag = maxFb
	}
	levels := float64(int(1)<<cp.cfg.FbBits - 1)
	quantized := int(mag / maxFb * levels)
	if quantized == 0 {
		quantized = 1
	}
	f := cp.net.Flow(pkt.Flow)
	if f == nil {
		return
	}
	cp.FbSent++
	cnp := cp.net.AcquirePacketFor(cp.sw)
	cnp.Flow = pkt.Flow
	cnp.Src = cp.sw.ID()
	cnp.Dst = f.Src().ID()
	cnp.Kind = netsim.KindCNP
	cnp.Cls = netsim.ClassCtrl
	cnp.Size = netsim.CNPBytes
	cnp.EnsureCNP().RateUnits = quantized // carries |Fb|
	cnp.SendTS = now
	cp.sw.Inject(cnp)
}

// OnDequeue implements netsim.PortCC.
func (cp *CP) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {}

// FlowCC is the QCN reaction point for one flow.
type FlowCC struct {
	engine *sim.Engine
	host   *netsim.Host
	cfg    Config

	rc float64
	rt float64

	bytesSinceInc int64
	stageByte     int
	stageTime     int
	timer         sim.Handle
	pacer         netsim.Pacer

	Cuts int
}

// NewFlowCC builds a QCN rate controller starting at line rate.
func NewFlowCC(engine *sim.Engine, host *netsim.Host, cfg Config) *FlowCC {
	if cfg.RmaxMbps == 0 {
		cfg.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	cc := &FlowCC{engine: engine, host: host, cfg: cfg, rc: cfg.RmaxMbps, rt: cfg.RmaxMbps}
	cc.armTimer()
	return cc
}

// Allow implements netsim.FlowCC.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	cc.pacer.Consume(now, netsim.Mbps(cc.rc), pkt.Size)
	cc.bytesSinceInc += int64(pkt.Size)
	if cc.bytesSinceInc >= cc.cfg.ByteLimit {
		cc.bytesSinceInc = 0
		cc.stageByte++
		cc.increase()
	}
}

// OnAck implements netsim.FlowCC.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {}

// OnCNP implements netsim.FlowCC: Fb-proportional rate decrease.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {
	if pkt.CNP == nil {
		return
	}
	fb := float64(pkt.CNP.RateUnits)
	cc.rt = cc.rc
	cc.rc *= 1 - cc.cfg.Gd*fb
	if cc.rc < cc.cfg.RminMbps {
		cc.rc = cc.cfg.RminMbps
	}
	cc.stageByte = 0
	cc.stageTime = 0
	cc.bytesSinceInc = 0
	cc.Cuts++
	cc.armTimer()
}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate { return netsim.Mbps(cc.rc) }

// Stop cancels the recovery timer (flow teardown).
func (cc *FlowCC) Stop() {
	cc.timer.Cancel()
}

func (cc *FlowCC) armTimer() {
	cc.timer.Cancel()
	cc.timer = cc.engine.AfterCall(cc.cfg.Timer, recoveryTick, cc, nil)
}

// recoveryTick runs one fast-recovery cycle; a package-level callback so
// the repeating timer reuses pooled event slots instead of allocating a
// closure per tick.
func recoveryTick(a, _ any) {
	cc := a.(*FlowCC)
	cc.stageTime++
	cc.increase()
	cc.armTimer()
}

func (cc *FlowCC) increase() {
	if cc.stageByte > cc.cfg.FastSteps || cc.stageTime > cc.cfg.FastSteps {
		cc.rt += cc.cfg.RAIMbps
	}
	if cc.rt > cc.cfg.RmaxMbps {
		cc.rt = cc.cfg.RmaxMbps
	}
	cc.rc = (cc.rt + cc.rc) / 2
	if cc.rc > cc.cfg.RmaxMbps {
		cc.rc = cc.cfg.RmaxMbps
	}
	cc.host.Kick()
}
