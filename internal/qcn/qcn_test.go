package qcn

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func cpFixture() (*sim.Engine, *netsim.Network, *netsim.Host, *netsim.Host, *netsim.Switch, *CP) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	port, _ := net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	cp := AttachCP(net, sw, port, DefaultConfig(40))
	return engine, net, a, b, sw, cp
}

func TestCPSamplingCadence(t *testing.T) {
	_, net, a, b, _, cp := cpFixture()
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1})
	pkt := &netsim.Packet{Flow: f.ID, Src: a.ID(), Dst: b.ID(), Kind: netsim.KindData, Size: 1048}
	// Below one sampling period: no feedback possible.
	for sent := 0; sent < 149_000; sent += 1048 {
		cp.OnEnqueue(0, pkt, 500_000) // deep queue: Fb < 0 if sampled
	}
	if cp.FbSent != 0 {
		t.Errorf("feedback before a full sampling period: %d", cp.FbSent)
	}
	cp.OnEnqueue(0, pkt, 500_000) // crosses 150 KB
	if cp.FbSent != 1 {
		t.Errorf("FbSent = %d after crossing the sampling period", cp.FbSent)
	}
	f.Stop()
}

func TestCPNoFeedbackWhenUncongested(t *testing.T) {
	_, net, a, b, _, cp := cpFixture()
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1})
	pkt := &netsim.Packet{Flow: f.ID, Src: a.ID(), Dst: b.ID(), Kind: netsim.KindData, Size: 1048}
	for sent := 0; sent < 400_000; sent += 1048 {
		cp.OnEnqueue(0, pkt, 0) // empty queue: Fb = -(Qoff + w*Qdelta) > 0? Qoff=-Qeq<0 -> Fb>0
	}
	if cp.FbSent != 0 {
		t.Errorf("feedback sent with empty queue: %d", cp.FbSent)
	}
	f.Stop()
}

func TestRPCutProportionalToFb(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cfg := DefaultConfig(40)
	cc := NewFlowCC(engine, h, cfg)
	small := &netsim.Packet{Kind: netsim.KindCNP, CNP: &netsim.CNPInfo{RateUnits: 1}}
	big := &netsim.Packet{Kind: netsim.KindCNP, CNP: &netsim.CNPInfo{RateUnits: 63}}
	cc.OnCNP(0, small)
	afterSmall := cc.CurrentRate().Mbps()
	cc2 := NewFlowCC(engine, h, cfg)
	cc2.OnCNP(0, big)
	afterBig := cc2.CurrentRate().Mbps()
	if afterSmall <= afterBig {
		t.Errorf("cut not proportional: smallFb->%v bigFb->%v", afterSmall, afterBig)
	}
	// Max Fb cuts at most half (Gd scaling).
	if afterBig < 40000*0.49 {
		t.Errorf("max cut %v below the 1/2 bound", afterBig)
	}
	cc.Stop()
	cc2.Stop()
}

func TestRPRecovery(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cc := NewFlowCC(engine, h, DefaultConfig(40))
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP, CNP: &netsim.CNPInfo{RateUnits: 40}})
	cut := cc.CurrentRate().Mbps()
	engine.RunUntil(50 * sim.Millisecond)
	if got := cc.CurrentRate().Mbps(); got <= cut {
		t.Errorf("no recovery: %v", got)
	}
	cc.Stop()
}

func TestRPIgnoresMalformedCNP(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cc := NewFlowCC(engine, h, DefaultConfig(40))
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP}) // no payload
	if cc.Cuts != 0 {
		t.Error("cut on CNP without Fb payload")
	}
	cc.Stop()
}

func TestEndToEndQueueBounded(t *testing.T) {
	engine, net, a, b, sw, _ := cpFixture()
	cc := NewFlowCC(engine, a, DefaultConfig(40))
	f := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, MaxRate: netsim.Gbps(36), CC: cc})
	engine.RunUntil(20 * sim.Millisecond)
	// Single flow at 90% offered: QCN must keep the queue in the vicinity
	// of Qeq, far from unbounded.
	if q := sw.Port(1).DataQueueBytes(); q > 500*netsim.KB {
		t.Errorf("queue = %d bytes, QCN not controlling", q)
	}
	f.Stop()
}
