// Package ringq provides a FIFO queue with O(1) amortized push and pop.
// The simulator's port queues and the testbed's software-switch egress
// queue previously popped their front with copy(q, q[1:]) — O(n) per
// dequeue and O(n²) across a congested queue of n packets. This queue
// keeps a head index instead and compacts the backing slice only
// periodically, so a drain of n elements is O(n) total while popped
// slots are still released to the GC promptly.
package ringq

// compactAt is the head depth beyond which Pop considers sliding the
// live region back to the front of the backing slice. Compaction also
// requires the dead prefix to be at least half the slice, which keeps
// the amortized cost of moves at O(1) per element.
const compactAt = 64

// Queue is a FIFO queue. The zero value is an empty queue ready for use.
// It is not safe for concurrent use; callers that share a queue across
// goroutines (e.g. the testbed switch) must hold their own lock.
type Queue[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) { q.buf = append(q.buf, v) }

// Front returns the element at the head of the queue without removing
// it. It panics if the queue is empty.
func (q *Queue[T]) Front() T {
	if q.Len() == 0 {
		panic("ringq: Front of empty queue")
	}
	return q.buf[q.head]
}

// Pop removes and returns the element at the head of the queue. It
// panics if the queue is empty.
func (q *Queue[T]) Pop() T {
	if q.Len() == 0 {
		panic("ringq: Pop of empty queue")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release for GC
	q.head++
	switch {
	case q.head == len(q.buf):
		// Drained: reuse the full capacity from the start.
		q.buf = q.buf[:0]
		q.head = 0
	case q.head >= compactAt && q.head*2 >= len(q.buf):
		// The dead prefix dominates: slide the live region down.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}
