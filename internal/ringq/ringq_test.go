package ringq

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatal("zero queue not empty")
	}
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Front() != 0 {
		t.Errorf("Front = %d, want 0", q.Front())
	}
	for i := 0; i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len after drain = %d", q.Len())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int]
	next, want := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := q.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != want {
			t.Fatalf("drain Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Errorf("popped %d, pushed %d", want, next)
	}
}

func TestCompactionKeepsOrder(t *testing.T) {
	// Push far past the compaction threshold and drain with a residue so
	// both compaction branches fire.
	var q Queue[int]
	for i := 0; i < 4*compactAt; i++ {
		q.Push(i)
	}
	for i := 0; i < 3*compactAt; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != compactAt {
		t.Fatalf("Len = %d, want %d", q.Len(), compactAt)
	}
	for i := 3 * compactAt; i < 4*compactAt; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("post-compaction Pop = %d, want %d", got, i)
		}
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop of empty queue did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

func TestFrontEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Front of empty queue did not panic")
		}
	}()
	var q Queue[int]
	q.Front()
}

// Property: any push/pop schedule preserves FIFO order and count.
func TestQueueMatchesSliceModel(t *testing.T) {
	f := func(ops []bool) bool {
		var q Queue[int]
		var model []int
		next := 0
		for _, push := range ops {
			if push || len(model) == 0 {
				q.Push(next)
				model = append(model, next)
				next++
			} else {
				want := model[0]
				model = model[1:]
				if q.Pop() != want {
					return false
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// shiftQueue is the pre-fix O(n)-per-pop idiom, kept here as the
// benchmark baseline.
type shiftQueue[T any] struct{ buf []T }

func (q *shiftQueue[T]) Push(v T) { q.buf = append(q.buf, v) }
func (q *shiftQueue[T]) Pop() T {
	v := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	return v
}

// The congested-queue scenario from the issue: a standing backlog of
// depth packets with one push per pop. The shift baseline moves the
// whole backlog on every pop; the ring queue does not.
func benchStanding(b *testing.B, depth int, push func(int), pop func() int) {
	for i := 0; i < depth; i++ {
		push(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(depth + i)
		pop()
	}
}

func BenchmarkRingQueueDepth1k(b *testing.B) {
	var q Queue[int]
	benchStanding(b, 1000, q.Push, q.Pop)
}

func BenchmarkShiftQueueDepth1k(b *testing.B) {
	var q shiftQueue[int]
	benchStanding(b, 1000, q.Push, q.Pop)
}

func BenchmarkRingQueueDepth8k(b *testing.B) {
	var q Queue[int]
	benchStanding(b, 8000, q.Push, q.Pop)
}

func BenchmarkShiftQueueDepth8k(b *testing.B) {
	var q shiftQueue[int]
	benchStanding(b, 8000, q.Push, q.Pop)
}
