package experiments

import "rocc/internal/stats"

// FoldRow compares per-bin average FCT between a variant run and the
// lossless baseline (the "fold increase" annotations of Figs. 18 and 20).
type FoldRow struct {
	UpperBytes int
	BaseAvgMs  float64 // PFC enabled, limited buffer
	VarAvgMs   float64 // the variant (unlimited buffer or lossy)
	Fold       float64 // VarAvg / BaseAvg
}

// FoldResult is one protocol's Fig. 18 / Fig. 20 outcome.
type FoldResult struct {
	Protocol   Protocol
	Rows       []FoldRow
	Base       FCTResult
	Variant    FCTResult
	RetxShare  float64 // retransmitted bytes / delivered bytes (Fig. 20)
	BufferFold float64 // variant avg buffer / base avg buffer (Fig. 18)
}

// RunFold runs the same workload under Lossless and under the given
// variant mode, returning per-bin fold increases. Fig. 18 uses
// mode=Unlimited, Fig. 20 mode=Lossy.
func RunFold(cfg FCTConfig, mode BufferMode) FoldResult {
	cfg.fill()
	base := cfg
	base.Mode = Lossless
	variant := cfg
	variant.Mode = mode

	baseRes := RunFCT(base)
	varRes := RunFCT(variant)

	res := FoldResult{Protocol: cfg.Protocol, Base: baseRes, Variant: varRes}
	for i, b := range baseRes.Bins {
		v := varRes.Bins[i]
		row := FoldRow{UpperBytes: b.UpperBytes, BaseAvgMs: b.AvgMs, VarAvgMs: v.AvgMs}
		if b.AvgMs > 0 && b.Count > 0 && v.Count > 0 {
			row.Fold = v.AvgMs / b.AvgMs
		}
		res.Rows = append(res.Rows, row)
	}
	if varRes.TotalBytes > 0 {
		res.RetxShare = float64(varRes.RetxBytes) / float64(varRes.TotalBytes)
	}
	if baseRes.AvgBufferKB > 0 {
		res.BufferFold = varRes.AvgBufferKB / baseRes.AvgBufferKB
	}
	return res
}

// Table3Row is one protocol's flow-level rate allocation (Table 3).
type Table3Row struct {
	Protocol Protocol
	MeanMbps float64
	StdMbps  float64
}

// Table3FromResult extracts the Table 3 row from an FCT run.
func Table3FromResult(r FCTResult) Table3Row {
	return Table3Row{Protocol: r.Config.Protocol, MeanMbps: r.RateMean, StdMbps: r.RateStd}
}

// MergeBins averages per-bin statistics across repetitions and reports
// the 95% CI of the per-bin average FCT, as the paper's error bars do.
func MergeBins(runs [][]stats.BinStat) ([]stats.BinStat, []float64) {
	if len(runs) == 0 {
		return nil, nil
	}
	nBins := len(runs[0])
	merged := make([]stats.BinStat, nBins)
	ci := make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		var avgs, p90s, p99s []float64
		count := 0
		for _, run := range runs {
			if run[b].Count == 0 {
				continue
			}
			count += run[b].Count
			avgs = append(avgs, run[b].AvgMs)
			p90s = append(p90s, run[b].P90Ms)
			p99s = append(p99s, run[b].P99Ms)
		}
		merged[b] = stats.BinStat{
			UpperBytes: runs[0][b].UpperBytes,
			Count:      count,
			AvgMs:      stats.Mean(avgs),
			P90Ms:      stats.Mean(p90s),
			P99Ms:      stats.Mean(p99s),
		}
		ci[b] = stats.CI95(avgs)
	}
	return merged, ci
}
