package experiments

import (
	"rocc/internal/harness"
	"rocc/internal/stats"
)

// FoldRow compares per-bin average FCT between a variant run and the
// lossless baseline (the "fold increase" annotations of Figs. 18 and 20).
type FoldRow struct {
	UpperBytes int
	BaseAvgMs  float64 // PFC enabled, limited buffer
	VarAvgMs   float64 // the variant (unlimited buffer or lossy)
	Fold       float64 // VarAvg / BaseAvg
}

// FoldResult is one protocol's Fig. 18 / Fig. 20 outcome.
type FoldResult struct {
	Protocol   Protocol
	Rows       []FoldRow
	Base       FCTResult
	Variant    FCTResult
	RetxShare  float64 // retransmitted bytes / delivered bytes (Fig. 20)
	BufferFold float64 // variant avg buffer / base avg buffer (Fig. 18)
}

// RunFold runs the same workload under Lossless and under the given
// variant mode, returning per-bin fold increases. Fig. 18 uses
// mode=Unlimited, Fig. 20 mode=Lossy. The base and variant runs own
// private engines and the same seed, so they execute as two parallel
// harness cells with output identical to the old serial pair.
func RunFold(cfg FCTConfig, mode BufferMode) FoldResult {
	cfg.fill()
	rs := harness.Run(2, harness.Options{Workers: 2}, func(i int) (FCTResult, error) {
		c := cfg
		c.Mode = Lossless
		if i == 1 {
			c.Mode = mode
		}
		return RunFCT(c), nil
	})
	vals, err := harness.Values(rs)
	if err != nil {
		panic(err) // preserve pre-harness behaviour: a crashed run aborts the fold
	}
	return makeFold(cfg, vals[0], vals[1])
}

// RunFoldReps runs reps fold pairs with derived seeds across workers.
// Each repetition's base and variant are separate cells (2×reps cells
// total), merged back into FoldResults in repetition order.
func RunFoldReps(cfg FCTConfig, mode BufferMode, reps, workers int) []harness.Result[FoldResult] {
	if reps <= 0 {
		reps = 1
	}
	cfg.fill()
	rs := harness.Run(2*reps, harness.Options{Workers: workers}, func(cell int) (FCTResult, error) {
		c := cfg
		c.Seed = harness.Seed(cfg.Seed, cell/2)
		c.Mode = Lossless
		if cell%2 == 1 {
			c.Mode = mode
		}
		return RunFCT(c), nil
	})
	out := make([]harness.Result[FoldResult], reps)
	for rep := 0; rep < reps; rep++ {
		base, variant := rs[2*rep], rs[2*rep+1]
		out[rep].Index = rep
		out[rep].Elapsed = base.Elapsed + variant.Elapsed
		if base.Err != nil {
			out[rep].Err = base.Err
			continue
		}
		if variant.Err != nil {
			out[rep].Err = variant.Err
			continue
		}
		repCfg := cfg
		repCfg.Seed = harness.Seed(cfg.Seed, rep)
		out[rep].Value = makeFold(repCfg, base.Value, variant.Value)
	}
	return out
}

// makeFold assembles the per-bin fold comparison from a finished
// base/variant pair.
func makeFold(cfg FCTConfig, baseRes, varRes FCTResult) FoldResult {
	res := FoldResult{Protocol: cfg.Protocol, Base: baseRes, Variant: varRes}
	for i, b := range baseRes.Bins {
		v := varRes.Bins[i]
		row := FoldRow{UpperBytes: b.UpperBytes, BaseAvgMs: b.AvgMs, VarAvgMs: v.AvgMs}
		if b.AvgMs > 0 && b.Count > 0 && v.Count > 0 {
			row.Fold = v.AvgMs / b.AvgMs
		}
		res.Rows = append(res.Rows, row)
	}
	if varRes.TotalBytes > 0 {
		res.RetxShare = float64(varRes.RetxBytes) / float64(varRes.TotalBytes)
	}
	if baseRes.AvgBufferKB > 0 {
		res.BufferFold = varRes.AvgBufferKB / baseRes.AvgBufferKB
	}
	return res
}

// Table3Row is one protocol's flow-level rate allocation (Table 3).
type Table3Row struct {
	Protocol Protocol
	MeanMbps float64
	StdMbps  float64
}

// Table3FromResult extracts the Table 3 row from an FCT run.
func Table3FromResult(r FCTResult) Table3Row {
	return Table3Row{Protocol: r.Config.Protocol, MeanMbps: r.RateMean, StdMbps: r.RateStd}
}

// MergeFolds averages the per-bin fold increase across repetitions and
// reports the Student-t 95% CI of the fold, plus the mean retransmit
// share and buffer fold. Repetitions with an empty bin on either side
// are excluded from that bin's average.
func MergeFolds(runs []FoldResult) (rows []FoldRow, ci []float64, retxShare, bufferFold float64) {
	if len(runs) == 0 {
		return nil, nil, 0, 0
	}
	nBins := len(runs[0].Rows)
	rows = make([]FoldRow, nBins)
	ci = make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		var folds, bases, vars []float64
		for _, run := range runs {
			row := run.Rows[b]
			if row.Fold > 0 {
				folds = append(folds, row.Fold)
				bases = append(bases, row.BaseAvgMs)
				vars = append(vars, row.VarAvgMs)
			}
		}
		rows[b] = FoldRow{
			UpperBytes: runs[0].Rows[b].UpperBytes,
			BaseAvgMs:  stats.Mean(bases),
			VarAvgMs:   stats.Mean(vars),
			Fold:       stats.Mean(folds),
		}
		ci[b] = stats.CI95(folds)
	}
	var retxs, bufs []float64
	for _, run := range runs {
		retxs = append(retxs, run.RetxShare)
		bufs = append(bufs, run.BufferFold)
	}
	return rows, ci, stats.Mean(retxs), stats.Mean(bufs)
}

// MergeBins averages per-bin statistics across repetitions and reports
// the Student-t 95% CI of the per-bin average FCT, as the paper's error
// bars do (stats.CI95 uses t(0.975, reps-1), not the normal z, for the
// paper's n=5 repetitions).
func MergeBins(runs [][]stats.BinStat) ([]stats.BinStat, []float64) {
	if len(runs) == 0 {
		return nil, nil
	}
	nBins := len(runs[0])
	merged := make([]stats.BinStat, nBins)
	ci := make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		var avgs, p90s, p99s []float64
		count := 0
		for _, run := range runs {
			if run[b].Count == 0 {
				continue
			}
			count += run[b].Count
			avgs = append(avgs, run[b].AvgMs)
			p90s = append(p90s, run[b].P90Ms)
			p99s = append(p99s, run[b].P99Ms)
		}
		merged[b] = stats.BinStat{
			UpperBytes: runs[0][b].UpperBytes,
			Count:      count,
			AvgMs:      stats.Mean(avgs),
			P90Ms:      stats.Mean(p90s),
			P99Ms:      stats.Mean(p99s),
		}
		ci[b] = stats.CI95(avgs)
	}
	return merged, ci
}
