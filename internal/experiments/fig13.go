package experiments

import (
	"rocc/internal/core"
	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// Fig13Scenario selects the testbed traffic mix (§6.2).
type Fig13Scenario string

// The two §6.2 scenarios.
const (
	// Fig13Uniform: every client offers the full 10 Gb/s link rate.
	// Expected outcome: queue stable at 75 KB, fair rate ~3.3 Gb/s.
	Fig13Uniform Fig13Scenario = "uni"
	// Fig13Mixed: clients offer 10, 3 and 1 Gb/s. Flows 2 and 3 are
	// below their fair share (innocent); flow 1 converges to the max-min
	// rate of 6 Gb/s.
	Fig13Mixed Fig13Scenario = "mix"
)

// Fig13CPConfig returns the §6.2 testbed CP parameters: 10 Gb/s links,
// Qref/Qmid/Qmax = 75/150/210 KB, T = 100 µs.
func Fig13CPConfig() core.CPConfig {
	cfg := core.CPConfigForGbps(10)
	cfg.QrefBytes = 75 * netsim.KB
	cfg.QmidBytes = 150 * netsim.KB
	cfg.QmaxBytes = 210 * netsim.KB
	return cfg
}

// Fig13Result is the simulation twin of the DPDK testbed run.
type Fig13Result struct {
	Scenario    Fig13Scenario
	Queue       *stats.Series // KB
	FairRate    *stats.Series // Gb/s
	SteadyQueKB float64
	SteadyRate  float64 // Gb/s
}

// RunFig13Sim reproduces the simulation halves of Fig. 13 (sim-uni /
// sim-mix). The real-socket halves live in internal/testbed.
func RunFig13Sim(scenario Fig13Scenario, duration sim.Time, seed int64) Fig13Result {
	if duration == 0 {
		duration = 100 * sim.Millisecond
	}
	engine := sim.New()
	star := topology.BuildStar(engine, seed, 3, netsim.Gbps(10))
	stack := NewStack(star.Net, ProtoRoCC, 0)
	stack.RoCCOpts = roccnet.CPOptions{Core: Fig13CPConfig(), T: 100 * sim.Microsecond}
	stack.EnablePort(star.Bottleneck)

	offered := []netsim.Rate{netsim.Gbps(10), netsim.Gbps(10), netsim.Gbps(10)}
	if scenario == Fig13Mixed {
		offered = []netsim.Rate{netsim.Gbps(10), netsim.Gbps(3), netsim.Gbps(1)}
	}
	for i, src := range star.Sources {
		stack.StartFlow(src, star.Dst, -1, offered[i])
	}
	sampler := NewSampler(engine, 0)
	queue := sampler.Queue("queue", star.Bottleneck)
	cp := stack.CPs[star.Bottleneck]
	rate := sampler.Value("fair-rate", func() float64 { return cp.FairRateMbps() / 1000 })
	engine.RunUntil(duration)

	half := duration.Seconds() / 2
	return Fig13Result{
		Scenario:    scenario,
		Queue:       queue,
		FairRate:    rate,
		SteadyQueKB: queue.MeanAfter(half),
		SteadyRate:  rate.MeanAfter(half),
	}
}
