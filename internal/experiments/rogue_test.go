package experiments

import (
	"testing"

	"rocc/internal/adversary"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// shortRogue keeps test cells cheap: 4 ms, 3+K senders on a 40G star.
func shortRogue(p Protocol, k int, defended bool) RogueConfig {
	return RogueConfig{
		Protocol: p,
		Rogues:   k,
		Defended: defended,
		Victims:  3,
		Duration: 4 * sim.Millisecond,
		Seed:     1,
	}
}

// TestRogueWrapConformance: every protocol's controller survives being
// wrapped — the wrapper forwards the contract faithfully, and a
// CNP-deaf wrap means feedback cannot move the wrapped rate.
func TestRogueWrapConformance(t *testing.T) {
	for _, p := range AllProtocols() {
		engine := sim.New()
		star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
		mix := NewMix(star.Net, 0)
		mix.Activate(p)
		cc := mix.Ops(p).NewFlowCC(star.Net, star.Sources[0])
		r := adversary.WrapRogue(adversary.RogueCNPDeaf, cc, 0)
		before := r.CurrentRate()
		cnp := &netsim.Packet{Kind: netsim.KindCNP, Size: netsim.CNPBytes}
		info := cnp.EnsureCNP()
		info.RateUnits = 1 // 10 Mb/s — would collapse an honest RoCC RP
		r.OnCNP(0, cnp)
		r.OnCNP(0, cnp)
		if got := r.CurrentRate(); got != before {
			t.Errorf("%s: CNP moved a CNP-deaf rogue's rate: %v → %v", p, before, got)
		}
		if r.SuppressedCNPs != 2 {
			t.Errorf("%s: SuppressedCNPs = %d, want 2", p, r.SuppressedCNPs)
		}
		if name := r.CCProtocol(); name != "rogue-cnpdeaf" {
			t.Errorf("%s: wrapped protocol name = %q", p, name)
		}
		if st, ok := interface{}(r).(interface{ Stop() }); ok {
			st.Stop()
		}
	}
}

// TestRogueDefenseQuarantinesAndRecovers: under defended RoCC, the
// policer finds the CNP-deaf rogues and the victims keep real goodput.
func TestRogueDefenseQuarantinesAndRecovers(t *testing.T) {
	r := RunRogue(shortRogue(ProtoRoCC, 2, true))
	if r.Detections < 2 {
		t.Errorf("detected %d of 2 rogues", r.Detections)
	}
	if r.Quarantined != r.Detections-r.Releases {
		t.Errorf("quarantine accounting: %d != %d - %d", r.Quarantined, r.Detections, r.Releases)
	}
	if r.PolicedDrops == 0 {
		t.Error("no policed drops despite quarantined blasters")
	}
	if r.VictimGbps <= 0 {
		t.Error("victims starved even with the defense up")
	}
	if r.ProbeFCT < 0 {
		t.Error("probe never completed under the defense")
	}
}

// TestRogueContainmentHeadline is the acceptance criterion: defended
// RoCC victims keep at least twice the goodput of the best undefended
// end-host scheme under K=4 CNP-deaf rogues.
func TestRogueContainmentHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol sweep")
	}
	rocc := RunRogue(shortRogue(ProtoRoCC, 4, true))
	best := 0.0
	bestProto := Protocol("")
	for _, p := range AllProtocols() {
		if p == ProtoRoCC {
			continue
		}
		r := RunRogue(shortRogue(p, 4, false))
		if r.VictimGbps > best {
			best = r.VictimGbps
			bestProto = p
		}
	}
	if rocc.VictimGbps < 2*best {
		t.Errorf("defended RoCC victims at %.2f Gb/s, best undefended end-host (%s) at %.2f — want ≥2×",
			rocc.VictimGbps, bestProto, best)
	}
}

// TestRogueUndefendedIdentity: Defended=false must leave the fabric
// untouched — no defense counters, no policed or watchdog drops.
func TestRogueUndefendedIdentity(t *testing.T) {
	r := RunRogue(shortRogue(ProtoDCQCN, 1, false))
	if r.Detections != 0 || r.PolicedDrops != 0 || r.WatchdogTrips != 0 || r.SpoofRejects != 0 {
		t.Errorf("undefended run shows defense activity: %+v", r)
	}
}

// TestRogueCellsCoverTheMatrix: protocols × K × defense.
func TestRogueCellsCoverTheMatrix(t *testing.T) {
	cells := RogueCells(RogueConfig{Seed: 7})
	want := len(AllProtocols()) * 3 * 2
	if len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		key := string(c.Protocol) + string(rune('0'+c.Rogues))
		if c.Defended {
			key += "+d"
		}
		if seen[key] {
			t.Fatalf("duplicate cell %q", key)
		}
		seen[key] = true
		if c.Seed != 7 {
			t.Error("base config not inherited")
		}
	}
}
