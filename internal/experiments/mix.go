package experiments

import (
	"fmt"

	"rocc/internal/dcqcn"
	"rocc/internal/dcqcnpi"
	"rocc/internal/dctcp"
	"rocc/internal/hpcc"
	"rocc/internal/netsim"
	"rocc/internal/qcn"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/timely"
)

// OpsFactory builds a protocol's CongestionOps descriptor bound to a
// Mix's live options (base RTT, shared marking RNG, RoCC ablation hooks).
type OpsFactory func(m *Mix) netsim.CongestionOps

// opsRegistry maps every protocol the repo wires to its descriptor
// factory. RegisterOps extends it (external protocols, test doubles).
var opsRegistry = map[Protocol]OpsFactory{
	ProtoRoCC: func(m *Mix) netsim.CongestionOps {
		o := roccnet.NewOps(&m.RoCCOpts, &m.RoCCRP)
		o.CPs = m.CPs
		return o
	},
	ProtoDCQCN: func(m *Mix) netsim.CongestionOps {
		return &dcqcn.Ops{Rand: m.rand}
	},
	ProtoDCQCNPI: func(m *Mix) netsim.CongestionOps {
		return &dcqcnpi.Ops{Rand: m.rand}
	},
	ProtoHPCC: func(m *Mix) netsim.CongestionOps {
		return &hpcc.Ops{BaseRTT: m.BaseRTT}
	},
	ProtoTIMELY: func(m *Mix) netsim.CongestionOps {
		return &timely.Ops{Config: m.timelyConfig}
	},
	ProtoQCN: func(m *Mix) netsim.CongestionOps {
		return &qcn.Ops{}
	},
	ProtoDCTCP: func(m *Mix) netsim.CongestionOps {
		return &dctcp.Ops{BaseRTT: m.BaseRTT}
	},
}

// RegisterOps installs (or replaces) a protocol's descriptor factory.
func RegisterOps(p Protocol, f OpsFactory) { opsRegistry[p] = f }

// Mix composes congestion control for a whole fabric, protocol by
// protocol: it instantiates one CongestionOps descriptor per protocol in
// play, attaches the union of their switch and receiver elements, sizes
// packet-feature capacities (Network.INTHopCap) to the max over the set,
// and hands each flow its own controller. A port or host shared by a
// single protocol keeps that protocol's element installed directly — the
// pre-mix fast path, byte-identical to a single-protocol Stack — while
// sharing by two or more protocols inserts a per-flow demultiplexer.
type Mix struct {
	Engine  *sim.Engine
	Net     *netsim.Network
	BaseRTT sim.Time // HPCC's T parameter; also used for DCTCP scaling

	rand *sim.Rand

	// RoCCOpts overrides the default RoCC CP options (ablation hooks).
	RoCCOpts roccnet.CPOptions
	// RoCCRP overrides the default RoCC RP options.
	RoCCRP roccnet.RPOptions
	// TimelyConfig, when set, overrides TIMELY's per-source parameters
	// (and with them the flow ACK cadence).
	TimelyConfig func(src *netsim.Host) timely.Config

	// CPs collects attached RoCC congestion points for instrumentation.
	CPs map[*netsim.Port]*roccnet.CP

	ops       map[Protocol]netsim.CongestionOps
	active    []Protocol // instantiation order; the EnableAllSwitchPorts sweep order
	ports     map[*netsim.Port]*portState
	receivers map[*netsim.Host]*receiverState
	flows     map[netsim.FlowID]netsim.CongestionOps
}

// NewMix builds an empty composer for the network. baseRTT parameterizes
// window-based protocols; zero uses a 10 µs default.
func NewMix(net *netsim.Network, baseRTT sim.Time) *Mix {
	if baseRTT == 0 {
		baseRTT = 10 * sim.Microsecond
	}
	m := &Mix{
		Engine:    net.Engine,
		Net:       net,
		BaseRTT:   baseRTT,
		rand:      net.Rand.Split(),
		CPs:       make(map[*netsim.Port]*roccnet.CP),
		ops:       make(map[Protocol]netsim.CongestionOps),
		ports:     make(map[*netsim.Port]*portState),
		receivers: make(map[*netsim.Host]*receiverState),
		flows:     make(map[netsim.FlowID]netsim.CongestionOps),
	}
	prev := net.OnFlowRemoved
	net.OnFlowRemoved = func(f *netsim.Flow) {
		delete(m.flows, f.ID)
		if prev != nil {
			prev(f)
		}
	}
	return m
}

// timelyConfig adapts the Mix-level override to the descriptor's shape.
func (m *Mix) timelyConfig(src *netsim.Host) timely.Config {
	if m.TimelyConfig != nil {
		return m.TimelyConfig(src)
	}
	return timely.DefaultConfig(src.NIC().LinkRate.Gbps())
}

// Ops returns the protocol's descriptor, instantiating it on first use.
// Instantiation raises the network's packet-feature capacities to the max
// over the protocols in play — so HPCC joining a fabric presizes INT
// buffers even when another protocol got there first.
func (m *Mix) Ops(proto Protocol) netsim.CongestionOps {
	if ops, ok := m.ops[proto]; ok {
		return ops
	}
	factory, ok := opsRegistry[proto]
	if !ok {
		panic("experiments: unknown protocol " + string(proto))
	}
	ops := factory(m)
	m.ops[proto] = ops
	m.active = append(m.active, proto)
	if f := ops.Features(); f.INTHops > m.Net.INTHopCap {
		m.Net.INTHopCap = f.INTHops
	}
	return ops
}

// Activate instantiates a protocol's descriptor without wiring anything,
// adding it to the set the Mix-level EnableAllSwitchPorts and
// AttachReceivers sweeps cover.
func (m *Mix) Activate(proto Protocol) { m.Ops(proto) }

// Active returns the protocols instantiated so far, in first-use order.
func (m *Mix) Active() []Protocol { return m.active }

// Use returns a single-protocol view of the composer — the Stack API —
// so per-protocol wiring and flow starts read naturally in mixed-fabric
// code.
func (m *Mix) Use(proto Protocol) *Stack {
	m.Activate(proto)
	return &Stack{Mix: m, Proto: proto}
}

// portState tracks one port's attachments: which protocols enabled it
// (idempotency) and the switch-side elements in attach order (mux
// construction).
type portState struct {
	protos []Protocol
	ccs    []netsim.PortCC // parallel to protos; nil for no-switch-action protocols
}

func (ps *portState) has(proto Protocol) bool {
	for _, p := range ps.protos {
		if p == proto {
			return true
		}
	}
	return false
}

// EnablePort attaches one protocol's switch-side element to an egress
// port. Repeat calls for the same (port, protocol) are no-ops, so wiring
// sweeps can overlap without stacking fair-rate tickers. A port already
// carrying an attachment this Mix does not manage panics with both
// protocol names — the silent-overwrite path is gone; mixed fabrics must
// share one Mix.
func (m *Mix) EnablePort(proto Protocol, port *netsim.Port) {
	sw, ok := port.Owner().(*netsim.Switch)
	if !ok {
		panic("experiments: EnablePort needs a switch egress port")
	}
	ps := m.ports[port]
	if ps == nil {
		if port.CC != nil {
			panic(fmt.Sprintf(
				"experiments: %s port %d already has a %s attachment not managed by this Mix; enabling %s would overwrite it (use one Mix per fabric)",
				sw.Name, port.Index, netsim.CCProtocolName(port.CC), proto))
		}
		ps = &portState{}
		m.ports[port] = ps
	}
	if ps.has(proto) {
		return
	}
	cc := m.Ops(proto).AttachPort(m.Net, sw, port)
	ps.protos = append(ps.protos, proto)
	ps.ccs = append(ps.ccs, cc)
	m.placePortCC(port, ps)
}

// placePortCC decides what lands on the port's single CC slot: nothing,
// the lone element directly, or a per-flow demultiplexer over the set.
// (Attach-style constructors set port.CC themselves; placement here is
// authoritative either way.)
func (m *Mix) placePortCC(port *netsim.Port, ps *portState) {
	var entries []muxEntry
	for i, cc := range ps.ccs {
		if cc != nil {
			entries = append(entries, muxEntry{ops: m.ops[ps.protos[i]], cc: cc})
		}
	}
	switch len(entries) {
	case 0:
		port.CC = nil
	case 1:
		port.CC = entries[0].cc
	default:
		port.CC = &portMux{mix: m, entries: entries}
	}
}

// EnablePorts attaches one protocol's switch-side element to many ports.
func (m *Mix) EnablePorts(proto Protocol, ports ...*netsim.Port) {
	for _, p := range ports {
		m.EnablePort(proto, p)
	}
}

// EnableAllSwitchPorts attaches every active protocol on every switch
// egress port — the mixed-fabric wiring sweep. Activate (or Use) the
// protocols first.
func (m *Mix) EnableAllSwitchPorts() {
	for _, sw := range m.Net.Switches() {
		for _, p := range sw.Ports() {
			for _, proto := range m.active {
				m.EnablePort(proto, p)
			}
		}
	}
}

// muxEntry pairs a switch-side element (or receiver hook) with the
// descriptor that owns it, for per-flow dispatch.
type muxEntry struct {
	ops netsim.CongestionOps
	cc  netsim.PortCC
}

// portMux demultiplexes a shared port's PortCC callbacks to the element
// of the protocol that owns each packet's flow. Packets of flows the Mix
// did not start (or that completed past the removal grace) see no
// switch-side action — each protocol's element observes exactly its own
// traffic, so e.g. a DCQCN marker never marks RoCC packets and a RoCC
// flow table never tracks DCQCN flows.
type portMux struct {
	mix     *Mix
	entries []muxEntry
}

func (x *portMux) lookup(fid netsim.FlowID) netsim.PortCC {
	ops, ok := x.mix.flows[fid]
	if !ok {
		return nil
	}
	for _, e := range x.entries {
		if e.ops == ops {
			return e.cc
		}
	}
	return nil
}

// OnEnqueue implements netsim.PortCC.
func (x *portMux) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if cc := x.lookup(pkt.Flow); cc != nil {
		cc.OnEnqueue(now, pkt, qlen)
	}
}

// OnDequeue implements netsim.PortCC.
func (x *portMux) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if cc := x.lookup(pkt.Flow); cc != nil {
		cc.OnDequeue(now, pkt, qlen)
	}
}

// CCProtocol implements netsim.ProtocolNamer.
func (x *portMux) CCProtocol() string {
	name := "mix("
	for i, e := range x.entries {
		if i > 0 {
			name += "+"
		}
		name += e.ops.Name()
	}
	return name + ")"
}

// receiverState tracks one host's receiver hooks by protocol.
type receiverState struct {
	protos []Protocol
	hooks  []netsim.ReceiverHook // parallel to protos; nil for hook-less protocols
}

func (rs *receiverState) has(proto Protocol) bool {
	for _, p := range rs.protos {
		if p == proto {
			return true
		}
	}
	return false
}

// AttachReceiver installs one protocol's destination-side hook on a
// host. Idempotent per (host, protocol); hook-less protocols leave the
// host untouched. Like EnablePort, a receiver installed outside this Mix
// is a conflict, not an overwrite.
func (m *Mix) AttachReceiver(proto Protocol, h *netsim.Host) {
	rs := m.receivers[h]
	if rs == nil {
		rs = &receiverState{}
		m.receivers[h] = rs
	}
	if rs.has(proto) {
		return
	}
	hook := m.Ops(proto).NewReceiver(m.Net, h)
	if hook != nil && h.Receiver != nil && !rs.installed(h.Receiver) {
		panic(fmt.Sprintf(
			"experiments: host %s already has a receiver hook not managed by this Mix; attaching %s would overwrite it",
			h.Name, proto))
	}
	rs.protos = append(rs.protos, proto)
	rs.hooks = append(rs.hooks, hook)
	m.placeReceiver(h, rs)
}

// installed reports whether the host's current receiver is one this
// state owns (directly or as its mux).
func (rs *receiverState) installed(hook netsim.ReceiverHook) bool {
	if _, ok := hook.(*receiverMux); ok {
		return true
	}
	for _, h := range rs.hooks {
		if h == hook {
			return true
		}
	}
	return false
}

func (m *Mix) placeReceiver(h *netsim.Host, rs *receiverState) {
	var entries []recvEntry
	for i, hook := range rs.hooks {
		if hook != nil {
			entries = append(entries, recvEntry{ops: m.ops[rs.protos[i]], hook: hook})
		}
	}
	switch len(entries) {
	case 0:
		// Leave h.Receiver as is (nil, or a hook someone else owns).
	case 1:
		h.Receiver = entries[0].hook
	default:
		h.Receiver = &receiverMux{mix: m, entries: entries}
	}
}

// AttachReceivers installs every active protocol's receiver hook on the
// given hosts (all hosts when none are given).
func (m *Mix) AttachReceivers(hosts ...*netsim.Host) {
	if len(hosts) == 0 {
		hosts = m.Net.Hosts()
	}
	for _, h := range hosts {
		for _, proto := range m.active {
			m.AttachReceiver(proto, h)
		}
	}
}

type recvEntry struct {
	ops  netsim.CongestionOps
	hook netsim.ReceiverHook
}

// receiverMux demultiplexes a shared host's OnData to the hook of the
// protocol owning the packet's flow.
type receiverMux struct {
	mix     *Mix
	entries []recvEntry
}

// OnData implements netsim.ReceiverHook.
func (x *receiverMux) OnData(now sim.Time, pkt *netsim.Packet) *netsim.Packet {
	ops, ok := x.mix.flows[pkt.Flow]
	if !ok {
		return nil
	}
	for _, e := range x.entries {
		if e.ops == ops {
			return e.hook.OnData(now, pkt)
		}
	}
	return nil
}

// NewFlowCC builds a per-flow congestion controller for a source host
// under the given protocol.
func (m *Mix) NewFlowCC(proto Protocol, src *netsim.Host) netsim.FlowCC {
	return m.Ops(proto).NewFlowCC(m.Net, src)
}

// StartFlow launches a flow under one protocol: its controller, its ACK
// cadence, its per-packet header overhead.
func (m *Mix) StartFlow(proto Protocol, src, dst *netsim.Host, size int64, maxRate netsim.Rate) *netsim.Flow {
	ops := m.Ops(proto)
	return m.register(ops, m.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		MaxRate:     maxRate,
		CC:          ops.NewFlowCC(m.Net, src),
		AckEvery:    ops.AckEvery(src),
		ExtraHeader: ops.Features().ExtraHeaderBytes,
	}))
}

// StartCustomFlow launches a flow with a caller-chosen rate cap and
// reliability mode — the generalized entry point chaos scenarios use to
// mix capped persistent flows with reliable finite transfers.
func (m *Mix) StartCustomFlow(proto Protocol, src, dst *netsim.Host, size int64, maxRate netsim.Rate, reliable bool) *netsim.Flow {
	ops := m.Ops(proto)
	return m.register(ops, m.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		MaxRate:     maxRate,
		CC:          ops.NewFlowCC(m.Net, src),
		Reliable:    reliable,
		AckEvery:    ops.AckEvery(src),
		ExtraHeader: ops.Features().ExtraHeaderBytes,
	}))
}

// StartWrappedFlow is StartCustomFlow with an interposer on the flow's
// controller: wrap receives the protocol's freshly built FlowCC and
// returns the controller the flow actually runs — how the adversary
// layer turns any protocol's sender into a rogue (CNP-deaf, ECN-blind,
// blasting) without the protocol knowing. A nil wrap is StartCustomFlow.
func (m *Mix) StartWrappedFlow(proto Protocol, src, dst *netsim.Host, size int64, maxRate netsim.Rate, reliable bool, wrap func(netsim.FlowCC) netsim.FlowCC) *netsim.Flow {
	ops := m.Ops(proto)
	cc := ops.NewFlowCC(m.Net, src)
	if wrap != nil {
		cc = wrap(cc)
	}
	return m.register(ops, m.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		MaxRate:     maxRate,
		CC:          cc,
		Reliable:    reliable,
		AckEvery:    ops.AckEvery(src),
		ExtraHeader: ops.Features().ExtraHeaderBytes,
	}))
}

// StartReliableFlow launches a go-back-N flow (App. A.2's lossy runs).
func (m *Mix) StartReliableFlow(proto Protocol, src, dst *netsim.Host, size int64) *netsim.Flow {
	ops := m.Ops(proto)
	return m.register(ops, m.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		CC:          ops.NewFlowCC(m.Net, src),
		Reliable:    true,
		ExtraHeader: ops.Features().ExtraHeaderBytes,
	}))
}

func (m *Mix) register(ops netsim.CongestionOps, f *netsim.Flow) *netsim.Flow {
	m.flows[f.ID] = ops
	return f
}

// FlowProtocol reports which protocol a Mix-started flow runs under
// ("" for flows the Mix did not start or has already retired).
func (m *Mix) FlowProtocol(fid netsim.FlowID) Protocol {
	ops, ok := m.flows[fid]
	if !ok {
		return ""
	}
	for p, o := range m.ops {
		if o == ops {
			return p
		}
	}
	return Protocol(ops.Name())
}
