package experiments

import (
	"reflect"
	"testing"

	"rocc/internal/sim"
	"rocc/internal/topology"
)

// shardFCTConfig is a small-but-real fat-tree FCT run: enough flows and
// congestion to exercise cross-shard traffic, CNPs, PFC and completions,
// small enough to run at several shard counts in one test.
func shardFCTConfig(shards int) FCTConfig {
	return FCTConfig{
		Protocol: ProtoRoCC,
		FatTree:  topology.ScaledFatTree(6),
		Duration: 8 * sim.Millisecond,
		Load:     0.7,
		Seed:     42,
		Shards:   shards,
	}
}

// stripShards clears the one config field that legitimately differs
// between compared runs.
func stripShards(r FCTResult) FCTResult {
	r.Config.Shards = 0
	return r
}

// TestFCTShardDeterminism is the tentpole's contract: a fixed-seed
// fat-tree run produces byte-identical results at every shard count.
func TestFCTShardDeterminism(t *testing.T) {
	base := stripShards(RunFCT(shardFCTConfig(1)))
	if base.FlowsDone == 0 {
		t.Fatal("no flows completed; config too small to prove anything")
	}
	for _, k := range []int{2, 8} {
		got := stripShards(RunFCT(shardFCTConfig(k)))
		if !reflect.DeepEqual(base, got) {
			t.Errorf("shards=%d diverged from shards=1:\n  1: flows=%d bytes=%d drops=%d rate=%v/%v\n  %d: flows=%d bytes=%d drops=%d rate=%v/%v",
				k, base.FlowsDone, base.TotalBytes, base.Drops, base.RateMean, base.RateStd,
				k, got.FlowsDone, got.TotalBytes, got.Drops, got.RateMean, got.RateStd)
		}
	}
}

// TestFCTShardDeterminismAllProtocols runs a shorter cut of the same
// contract for every protocol whose stack has shard-sensitive parts
// (markers with RNG, per-port tickers, receiver hooks).
func TestFCTShardDeterminismAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol determinism sweep is not short")
	}
	for _, p := range []Protocol{ProtoRoCC, ProtoDCQCN, ProtoDCQCNPI, ProtoHPCC, ProtoTIMELY, ProtoDCTCP, ProtoQCN} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := shardFCTConfig(1)
			cfg.Protocol = p
			cfg.Duration = 4 * sim.Millisecond
			base := stripShards(RunFCT(cfg))
			cfg.Shards = 2
			got := stripShards(RunFCT(cfg))
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%v: shards=2 diverged from shards=1 (flows %d vs %d, bytes %d vs %d)",
					p, base.FlowsDone, got.FlowsDone, base.TotalBytes, got.TotalBytes)
			}
		})
	}
}
