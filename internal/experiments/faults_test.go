package experiments

import (
	"testing"

	"rocc/internal/sim"
)

// faultsBase keeps the robustness cells short enough for the test suite
// while leaving the control loop a few dozen update intervals to settle.
func faultsBase() FaultsConfig {
	return FaultsConfig{N: 10, Gbps: 40, Duration: 8 * sim.Millisecond, Seed: 1}
}

// TestFaultsZeroCellDeterministic: the fault-free cell must reproduce
// bit-for-bit across runs — the injector draws no randomness at zero
// probabilities, so the schedule is untouched.
func TestFaultsZeroCellDeterministic(t *testing.T) {
	a := RunFaults(faultsBase())
	b := RunFaults(faultsBase())
	if a.ThroughputGbps != b.ThroughputGbps || a.QueueMeanKB != b.QueueMeanKB ||
		a.CNPsAccepted != b.CNPsAccepted || a.Jain != b.Jain {
		t.Errorf("fault-free cell diverged:\n%+v\n%+v", a, b)
	}
	// Staleness may fire even fault-free (the scenario opts in and CPs go
	// legitimately silent when queues drain), but validation must not:
	// nothing mangles CNPs here.
	if a.CNPsRejected != 0 {
		t.Errorf("fault-free cell rejected %d CNPs", a.CNPsRejected)
	}
	if a.ThroughputGbps < 30 {
		t.Errorf("fault-free baseline only %.1f Gb/s on a 40G bottleneck", a.ThroughputGbps)
	}
}

// TestFaultsGracefulDegradationAtTenPercentLoss is the PR's acceptance
// criterion: with 10% CNP loss the scenario completes, staleness
// recovery fires, and throughput stays within 20% of the fault-free
// baseline.
func TestFaultsGracefulDegradationAtTenPercentLoss(t *testing.T) {
	base := RunFaults(faultsBase())
	cfg := faultsBase()
	cfg.CNPLoss = 0.1
	lossy := RunFaults(cfg)
	if lossy.Faults.CNPsLost == 0 {
		t.Fatal("10% CNP loss dropped nothing")
	}
	if lossy.StaleRecoveries == 0 {
		t.Error("no staleness recoveries under sustained CNP loss")
	}
	if lossy.ThroughputGbps < base.ThroughputGbps*0.8 {
		t.Errorf("throughput degraded past 20%%: %.2f Gb/s vs baseline %.2f",
			lossy.ThroughputGbps, base.ThroughputGbps)
	}
}

// TestFaultsCorruptFeedbackRejected: corrupted CNPs must be caught by RP
// validation (counted, rate untouched), not steer flows off a cliff.
func TestFaultsCorruptFeedbackRejected(t *testing.T) {
	cfg := faultsBase()
	cfg.CNPCorrupt = 0.05
	res := RunFaults(cfg)
	if res.Faults.Corrupted == 0 {
		t.Fatal("5% corruption mangled nothing")
	}
	if res.CNPsRejected == 0 {
		t.Error("no corrupted CNPs rejected by validation")
	}
	base := RunFaults(faultsBase())
	if res.ThroughputGbps < base.ThroughputGbps*0.8 {
		t.Errorf("corruption collapsed throughput: %.2f vs %.2f Gb/s",
			res.ThroughputGbps, base.ThroughputGbps)
	}
}

// TestFaultsCellsShape pins the default sweep layout the CLI relies on:
// baseline first, then one row per loss rate, corruption, flap, stall.
func TestFaultsCellsShape(t *testing.T) {
	cells := FaultsCells(faultsBase(), []float64{0.05, 0.1}, 0)
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	if cells[0].Label() != "fault-free" {
		t.Errorf("first cell is %q, want fault-free", cells[0].Label())
	}
	if cells[1].CNPLoss != 0.05 || cells[2].CNPLoss != 0.1 {
		t.Errorf("loss rows wrong: %v %v", cells[1].CNPLoss, cells[2].CNPLoss)
	}
	if cells[3].CNPCorrupt == 0 || cells[4].FlapPeriod == 0 || cells[5].StallPeriod == 0 {
		t.Error("corrupt/flap/stall rows missing")
	}
	// Negative flapPeriod trims the flap and stall rows.
	if n := len(FaultsCells(faultsBase(), nil, -1)); n != 2 {
		t.Errorf("trimmed sweep has %d cells, want 2", n)
	}
}
