package experiments

import (
	"fmt"

	"rocc/internal/core"
	"rocc/internal/faults"
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// FaultsConfig parameterizes the robustness scenario: RoCC on the star
// micro-benchmark with faults injected into the control and data paths.
// All fault fields at zero reproduce the fault-free baseline exactly.
type FaultsConfig struct {
	N        int
	Gbps     float64
	Duration sim.Time
	Seed     int64

	// FaultSeed seeds the injector's RNG streams, independent of the
	// workload seed. Zero derives it from Seed.
	FaultSeed int64

	// CNPLoss is the probability each CNP the switch generates is lost
	// (control-path feedback loss, §2's "CNPs are best-effort").
	CNPLoss float64

	// CNPCorrupt is the probability each CNP leaving the switch toward a
	// source arrives with garbage rate units (tests RP validation).
	CNPCorrupt float64

	// FlapPeriod/FlapDown flap source 0's access link: every period the
	// link is down for FlapDown, losing data, CNPs and PFC frames.
	FlapPeriod sim.Time
	FlapDown   sim.Time

	// StallPeriod/StallFor silence the switch's CP for StallFor out of
	// every StallPeriod (a stalled CP timer: late feedback).
	StallPeriod sim.Time
	StallFor    sim.Time
}

func (c FaultsConfig) fill() FaultsConfig {
	if c.N == 0 {
		c.N = 10
	}
	if c.Gbps == 0 {
		c.Gbps = 40
	}
	if c.Duration == 0 {
		c.Duration = 20 * sim.Millisecond
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed + 0x5eed
	}
	return c
}

// Label names the dominant fault of a configuration for report rows.
func (c FaultsConfig) Label() string {
	switch {
	case c.CNPLoss > 0:
		return fmt.Sprintf("cnp-loss %.0f%%", c.CNPLoss*100)
	case c.CNPCorrupt > 0:
		return fmt.Sprintf("cnp-corrupt %.0f%%", c.CNPCorrupt*100)
	case c.FlapPeriod > 0:
		return fmt.Sprintf("link-flap %.1f/%.0fms", c.FlapDown.Seconds()*1e3, c.FlapPeriod.Seconds()*1e3)
	case c.StallPeriod > 0:
		return fmt.Sprintf("cp-stall %.1f/%.0fms", c.StallFor.Seconds()*1e3, c.StallPeriod.Seconds()*1e3)
	}
	return "fault-free"
}

// FaultsResult is one robustness cell: how much throughput and queue
// stability survived the injected faults, and which degradation paths
// (staleness recovery, feedback validation) fired.
type FaultsResult struct {
	Config FaultsConfig

	ThroughputGbps float64 // aggregate goodput over the second half
	QueueMeanKB    float64
	QueueMaxKB     float64
	Jain           float64 // fairness across surviving flows

	StaleRecoveries int // RP staleness re-homings (summed over flows)
	CNPsRejected    int // malformed CNPs discarded by RP validation
	CNPsAccepted    int
	PFCFrames       int
	Faults          faults.Stats
}

// RunFaults executes one robustness cell.
func RunFaults(cfg FaultsConfig) FaultsResult {
	cfg = cfg.fill()
	engine := sim.New()
	star := topology.BuildStar(engine, cfg.Seed, cfg.N, netsim.Gbps(cfg.Gbps))
	roccnet.Attach(star.Net, star.Switch, star.Bottleneck, roccnet.CPOptions{})

	// Flows are wired by hand (not through Stack) so the per-flow RPs
	// stay reachable for the staleness and rejection counters.
	offered := netsim.Gbps(cfg.Gbps * 0.9)
	ccs := make([]*roccnet.FlowCC, cfg.N)
	flows := make([]*netsim.Flow, cfg.N)
	for i, src := range star.Sources {
		// Staleness handling on: the point of the scenario is measuring
		// how fast flows re-home when feedback stops.
		ccs[i] = roccnet.NewFlowCC(engine, src, roccnet.RPOptions{StaleK: core.DefaultStaleK})
		flows[i] = star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size:    -1,
			MaxRate: offered,
			CC:      ccs[i],
		})
	}

	inj := faults.New(star.Net, cfg.FaultSeed)
	inj.DropCNPs(star.Switch, cfg.CNPLoss)
	if cfg.CNPCorrupt > 0 {
		// Corruption strikes CNPs in flight on the switch→source wires.
		for _, src := range star.Sources {
			inj.Direction(star.Switch.PortTo(src), faults.LinkConfig{
				Corrupt: cfg.CNPCorrupt,
				Match:   faults.MatchCNPs,
			})
		}
	}
	if cfg.FlapPeriod > 0 {
		sw := star.Switch.PortTo(star.Sources[0])
		inj.Flap(sw, star.Sources[0].NIC(), cfg.FlapPeriod, cfg.FlapDown)
	}
	inj.StallCP(star.Switch, cfg.StallPeriod, cfg.StallFor)

	sampler := NewSampler(engine, 0)
	queue := sampler.Queue("queue", star.Bottleneck)

	half := cfg.Duration / 2
	engine.RunUntil(half)
	mid := make([]int64, cfg.N)
	for i, f := range flows {
		mid[i] = f.DeliveredBytes()
	}
	engine.RunUntil(cfg.Duration)

	window := (cfg.Duration - half).Seconds()
	perFlow := make([]float64, cfg.N)
	res := FaultsResult{Config: cfg, Faults: inj.Stats(), PFCFrames: star.Net.TotalPFCFrames()}
	for i, f := range flows {
		perFlow[i] = float64(f.DeliveredBytes()-mid[i]) * 8 / window / 1e9
		res.ThroughputGbps += perFlow[i]
		rp := ccs[i].RP()
		res.StaleRecoveries += rp.StaleRecoveries
		res.CNPsRejected += rp.CNPsRejected
		res.CNPsAccepted += rp.CNPsAccepted
	}
	res.Jain = stats.JainIndex(perFlow)
	res.QueueMeanKB = queue.MeanAfter(half.Seconds())
	for _, p := range queue.Points {
		if p.V > res.QueueMaxKB {
			res.QueueMaxKB = p.V
		}
	}
	return res
}

// RunFaultsGrid runs robustness cells across workers; cell i uses
// cfgs[i] and lands at out[i] regardless of completion order.
func RunFaultsGrid(cfgs []FaultsConfig, workers int) []harness.Result[FaultsResult] {
	return harness.Run(len(cfgs), harness.Options{Workers: workers}, func(i int) (FaultsResult, error) {
		return RunFaults(cfgs[i]), nil
	})
}

// FaultsCells builds the default robustness sweep around a base
// configuration: the fault-free baseline first, then CNP loss at each
// probability in losses, CNP corruption, a link flap, and a CP stall.
// A negative flapPeriod drops the flap and stall rows.
func FaultsCells(base FaultsConfig, losses []float64, flapPeriod sim.Time) []FaultsConfig {
	cells := []FaultsConfig{base}
	for _, p := range losses {
		c := base
		c.CNPLoss = p
		cells = append(cells, c)
	}
	c := base
	c.CNPCorrupt = 0.05
	cells = append(cells, c)
	if flapPeriod >= 0 {
		if flapPeriod == 0 {
			flapPeriod = 5 * sim.Millisecond
		}
		c = base
		c.FlapPeriod = flapPeriod
		c.FlapDown = flapPeriod / 10
		cells = append(cells, c)
		c = base
		c.StallPeriod = 2 * sim.Millisecond
		c.StallFor = 1 * sim.Millisecond
		cells = append(cells, c)
	}
	return cells
}
