package experiments

import (
	"rocc/internal/netsim"
	"rocc/internal/telemetry"
)

// RunTelemetry bundles the observability attachments an experiment run
// accepts: a metrics registry (counters, gauges, histograms aggregated
// over the run) and an optional flight recorder feeding the Chrome-trace
// exporter. A nil *RunTelemetry — the default on every config — keeps
// the entire pipeline disabled at its documented ~zero cost.
//
// Telemetry is purely observational: attaching it never schedules
// events, draws random numbers, or alters packet handling, so a seeded
// run produces byte-identical results with telemetry on or off
// (TestFig8TelemetryByteIdentical holds this line).
type RunTelemetry struct {
	Registry *telemetry.Registry
	Recorder *telemetry.Recorder
}

// NewRunTelemetry builds a registry plus a flight recorder sized for a
// single-run trace. The global ring is kept at 16 Ki events (~2 MB):
// large enough for several milliseconds of per-packet queue-depth
// samples, small enough not to evict the simulator's working set from
// cache (the ring is written on every data enqueue).
func NewRunTelemetry() *RunTelemetry {
	return &RunTelemetry{
		Registry: telemetry.New(),
		Recorder: telemetry.NewRecorder(1<<14, 256, 4096),
	}
}

// attach wires the bundle into a network. Nil-safe on a nil receiver.
func (t *RunTelemetry) attach(net *netsim.Network) {
	if t == nil {
		return
	}
	net.SetTelemetry(t.Registry, t.Recorder)
}

// Events returns the recorder's retained events (nil-safe).
func (t *RunTelemetry) Events() []telemetry.Event {
	if t == nil {
		return nil
	}
	return t.Recorder.Events()
}

// Snapshot returns the registry's current snapshot (zero when disabled).
func (t *RunTelemetry) Snapshot() telemetry.Snapshot {
	if t == nil {
		return telemetry.Snapshot{}
	}
	return t.Registry.Snapshot()
}
