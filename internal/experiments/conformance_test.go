package experiments

import (
	"strings"
	"testing"

	"rocc/internal/dcqcn"
	"rocc/internal/hpcc"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/timely"
	"rocc/internal/topology"
)

// TestOpsRegistryCoversAllProtocols is the registry half of the
// CongestionOps conformance suite: every protocol the repo wires has a
// descriptor whose static surface (name, features, ACK cadence) is sane.
func TestOpsRegistryCoversAllProtocols(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	for _, p := range AllProtocols() {
		ops := mix.Ops(p)
		if ops == nil {
			t.Fatalf("%s: no descriptor", p)
		}
		if ops.Name() == "" {
			t.Errorf("%s: empty Name", p)
		}
		f := ops.Features()
		if f.INTHops < 0 || f.ExtraHeaderBytes < 0 {
			t.Errorf("%s: negative feature capacity %+v", p, f)
		}
		if f.INTHops > 0 && p != ProtoHPCC {
			t.Errorf("%s: unexpected INT requirement", p)
		}
		if ae := ops.AckEvery(star.Sources[0]); ae < 0 {
			t.Errorf("%s: negative AckEvery %d", p, ae)
		}
		if cc := ops.NewFlowCC(star.Net, star.Sources[0]); cc == nil {
			t.Errorf("%s: NewFlowCC returned nil", p)
		}
	}
}

// TestOpsFlowCCContract drives each descriptor's fresh controller
// through the FlowCC surface directly: a new flow must be allowed to
// send, survive the OnSent/OnAck cycle, and report a non-negative rate.
func TestOpsFlowCCContract(t *testing.T) {
	for _, p := range AllProtocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			engine := sim.New()
			star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
			mix := NewMix(star.Net, 0)
			cc := mix.NewFlowCC(p, star.Sources[0])
			at, ok := cc.Allow(0, 1000)
			if !ok {
				t.Fatal("fresh controller refuses the first packet")
			}
			if at < 0 {
				t.Fatalf("negative eligible time %v", at)
			}
			pkt := star.Net.AcquirePacket()
			pkt.Kind = netsim.KindData
			pkt.Payload = 1000
			cc.OnSent(0, pkt)
			pkt.Kind = netsim.KindAck
			cc.OnAck(sim.Microsecond, pkt)
			star.Net.ReleasePacket(pkt)
			if cc.CurrentRate() < 0 {
				t.Errorf("negative rate %v", cc.CurrentRate())
			}
		})
	}
}

// TestMixSingleProtocolMatchesStack pins the fast path: a Mix hosting
// one protocol must produce exactly the results of the Stack API (which
// is now a view over Mix — this guards the equivalence as both evolve).
func TestMixSingleProtocolMatchesStack(t *testing.T) {
	for _, p := range AllProtocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			run := func(useMix bool) ([]int64, int) {
				engine := sim.New()
				star := topology.BuildStar(engine, 3, 4, netsim.Gbps(40))
				var flows []*netsim.Flow
				if useMix {
					mix := NewMix(star.Net, 0)
					mix.Activate(p)
					mix.EnableAllSwitchPorts()
					mix.AttachReceivers()
					for _, src := range star.Sources {
						flows = append(flows, mix.StartFlow(p, src, star.Dst, 150_000, 0))
					}
				} else {
					stack := NewStack(star.Net, p, 0)
					stack.EnableAllSwitchPorts()
					for _, h := range star.Net.Hosts() {
						stack.AttachReceiver(h)
					}
					for _, src := range star.Sources {
						flows = append(flows, stack.StartFlow(src, star.Dst, 150_000, 0))
					}
				}
				engine.RunUntil(10 * sim.Millisecond)
				var got []int64
				for _, f := range flows {
					got = append(got, f.DeliveredBytes())
				}
				return got, star.Net.TotalDrops()
			}
			stackBytes, stackDrops := run(false)
			mixBytes, mixDrops := run(true)
			for i := range stackBytes {
				if stackBytes[i] != mixBytes[i] {
					t.Errorf("flow %d: stack delivered %d, mix delivered %d", i, stackBytes[i], mixBytes[i])
				}
			}
			if stackDrops != mixDrops {
				t.Errorf("drops: stack %d, mix %d", stackDrops, mixDrops)
			}
		})
	}
}

// TestMixedFabricEngagesBothMachineries is the tentpole's end-to-end
// check: RoCC and DCQCN flows sharing one bottleneck, each seeing only
// its own protocol's elements — RoCC's CP paces its flows via switch
// CNPs while DCQCN's receiver echoes marks for the others.
func TestMixedFabricEngagesBothMachineries(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 4, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	mix.Activate(ProtoRoCC)
	mix.Activate(ProtoDCQCN)
	mix.EnableAllSwitchPorts()
	mix.AttachReceivers()

	var flows []*netsim.Flow
	for i, src := range star.Sources {
		p := ProtoRoCC
		if i%2 == 1 {
			p = ProtoDCQCN
		}
		flows = append(flows, mix.StartFlow(p, src, star.Dst, -1, netsim.Gbps(36)))
	}
	engine.RunUntil(20 * sim.Millisecond)

	if name := netsim.CCProtocolName(star.Bottleneck.CC); !strings.Contains(name, "RoCC") || !strings.Contains(name, "DCQCN") {
		t.Errorf("bottleneck attachment %q does not compose both protocols", name)
	}
	cp := mix.CPs[star.Bottleneck]
	if cp == nil {
		t.Fatal("RoCC CP missing from the mixed bottleneck")
	}
	if cp.CNPsSent == 0 {
		t.Error("RoCC CP sent no CNPs — its machinery never engaged")
	}
	rs := mix.receivers[star.Dst]
	if rs == nil {
		t.Fatal("no receiver state at the destination")
	}
	var dcqcnCNPs uint64
	for i, proto := range rs.protos {
		if proto == ProtoDCQCN {
			dcqcnCNPs = rs.hooks[i].(*dcqcn.Receiver).CNPsSent
		}
	}
	if dcqcnCNPs == 0 {
		t.Error("DCQCN receiver sent no CNPs — its machinery never engaged")
	}
	for i, f := range flows {
		if f.DeliveredBytes() == 0 {
			t.Errorf("flow %d (%s) delivered nothing", i, mix.FlowProtocol(f.ID))
		}
	}
	if d := star.Net.TotalDrops(); d != 0 {
		t.Errorf("%d drops on the mixed lossless fabric", d)
	}
}

// TestMixedRunDeterministic replays the mixed-fabric workload under one
// seed and requires byte-identical per-flow outcomes — the soak log's
// replayability contract extended to mixed protocols.
func TestMixedRunDeterministic(t *testing.T) {
	run := func() []int64 {
		engine := sim.New()
		star := topology.BuildStar(engine, 7, 6, netsim.Gbps(40))
		mix := NewMix(star.Net, 0)
		mix.Activate(ProtoRoCC)
		mix.Activate(ProtoHPCC)
		mix.EnableAllSwitchPorts()
		mix.AttachReceivers()
		var flows []*netsim.Flow
		for i, src := range star.Sources {
			p := ProtoRoCC
			if i%2 == 1 {
				p = ProtoHPCC
			}
			flows = append(flows, mix.StartFlow(p, src, star.Dst, 400_000, 0))
		}
		engine.RunUntil(15 * sim.Millisecond)
		var out []int64
		for _, f := range flows {
			out = append(out, f.DeliveredBytes())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d: %d bytes vs %d on replay", i, a[i], b[i])
		}
	}
}

// TestTimelyAckCadenceFollowsConfig pins the satellite bugfix: the flow
// ACK cadence must come from the TIMELY configuration actually in use,
// not a hardcoded default.
func TestTimelyAckCadenceFollowsConfig(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	mix.TimelyConfig = func(src *netsim.Host) timely.Config {
		cfg := timely.DefaultConfig(src.NIC().LinkRate.Gbps())
		cfg.AckEvery = 8
		return cfg
	}
	stack := mix.Use(ProtoTIMELY)
	if got := stack.AckEvery(star.Sources[0]); got != 8 {
		t.Errorf("AckEvery = %d, want the configured 8", got)
	}
	f := stack.StartFlow(star.Sources[0], star.Dst, 10_000, 0)
	if f.AckEvery != 8 {
		t.Errorf("flow AckEvery = %d, want 8", f.AckEvery)
	}
}

// TestEnablePortForeignAttachmentPanics pins the double-attach
// satellite: a port owned by something outside the Mix is a named
// conflict, never a silent overwrite.
func TestEnablePortForeignAttachmentPanics(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	foreign := NewMix(star.Net, 0)
	foreign.EnablePort(ProtoDCQCN, star.Bottleneck)

	mix := NewMix(star.Net, 0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("enabling over a foreign attachment did not panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "DCQCN") || !strings.Contains(msg, "RoCC") {
			t.Errorf("panic %q does not name both protocols", msg)
		}
	}()
	mix.EnablePort(ProtoRoCC, star.Bottleneck)
}

// TestEnablePortIdempotentPerProtocol pins the other half of the
// satellite: re-enabling the same protocol must not stack a second
// element (RoCC's CP runs a fair-rate ticker; stacking doubled it).
func TestEnablePortIdempotentPerProtocol(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	mix.EnablePort(ProtoRoCC, star.Bottleneck)
	first := star.Bottleneck.CC
	cp := mix.CPs[star.Bottleneck]
	mix.EnablePort(ProtoRoCC, star.Bottleneck)
	mix.EnableAllSwitchPorts()
	if star.Bottleneck.CC != first {
		t.Error("repeat EnablePort replaced the attachment")
	}
	if mix.CPs[star.Bottleneck] != cp {
		t.Error("repeat EnablePort built a second CP")
	}
	if n := len(mix.ports[star.Bottleneck].protos); n != 1 {
		t.Errorf("port records %d attachments, want 1", n)
	}
}

// TestINTHopCapIsMaxOverMix pins the presizing satellite: HPCC joining a
// fabric raises the INT capacity no matter which protocol activated
// first, and non-INT mixes leave it at zero.
func TestINTHopCapIsMaxOverMix(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	mix.Activate(ProtoDCQCN)
	if star.Net.INTHopCap != 0 {
		t.Errorf("INTHopCap = %d before any INT protocol", star.Net.INTHopCap)
	}
	mix.Activate(ProtoHPCC)
	if star.Net.INTHopCap != hpcc.DefaultINTHops {
		t.Errorf("INTHopCap = %d after HPCC joined, want %d", star.Net.INTHopCap, hpcc.DefaultINTHops)
	}
	mix.Activate(ProtoRoCC)
	if star.Net.INTHopCap != hpcc.DefaultINTHops {
		t.Errorf("INTHopCap dropped to %d after a later activation", star.Net.INTHopCap)
	}
}

// TestMixedSteadyStateAllocs is the alloc-gate regression for the INT
// presizing fix: a mixed DCQCN+HPCC fabric in steady state must not
// allocate per event — INT arrays come presized from the pool even
// though HPCC was not the first (or only) protocol on the network.
func TestMixedSteadyStateAllocs(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 4, netsim.Gbps(40))
	mix := NewMix(star.Net, 0)
	mix.Activate(ProtoDCQCN)
	mix.Activate(ProtoHPCC)
	mix.EnableAllSwitchPorts()
	mix.AttachReceivers()
	for i, src := range star.Sources {
		p := ProtoDCQCN
		if i%2 == 1 {
			p = ProtoHPCC
		}
		mix.StartFlow(p, src, star.Dst, -1, 0)
	}
	for i := 0; i < 200_000; i++ {
		engine.Step()
	}
	const batch = 1000
	allocsPerBatch := testing.AllocsPerRun(50, func() {
		for i := 0; i < batch; i++ {
			engine.Step()
		}
	})
	perEvent := allocsPerBatch / batch
	t.Logf("mixed steady state: %.4f allocs/event", perEvent)
	if perEvent > 1 {
		t.Fatalf("mixed steady-state stepping allocates %.2f objects/event, want <=1 (target 0)", perEvent)
	}
}

// TestRolloutProducesPerProtocolRows smoke-tests the rollout experiment:
// a 50/50 RoCC/DCQCN fabric must report one row per protocol with live
// goodput and completed FCT probes.
func TestRolloutProducesPerProtocolRows(t *testing.T) {
	rows := RunRollout(RolloutConfig{
		Shares:       RoCCShares(0.5),
		Seed:         1,
		Duration:     8 * sim.Millisecond,
		HostsPerEdge: 4,
		FCTBytes:     200_000,
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Flows != 2 {
			t.Errorf("%s: %d flows, want 2", r.Proto, r.Flows)
		}
		if r.MeanGbps <= 0 {
			t.Errorf("%s: no goodput", r.Proto)
		}
		if r.Jain <= 0 || r.Jain > 1 {
			t.Errorf("%s: Jain %v out of range", r.Proto, r.Jain)
		}
		if r.FCTMeanMs <= 0 {
			t.Errorf("%s: no FCT probes completed", r.Proto)
		}
	}
}

// TestParseMixSpec covers the CLI mix grammar.
func TestParseMixSpec(t *testing.T) {
	shares, err := ParseMixSpec("rocc:0.5, dcqcn:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 2 || shares[0].Proto != ProtoRoCC || shares[0].Frac != 0.5 {
		t.Errorf("unexpected shares %+v", shares)
	}
	shares, err = ParseMixSpec("rocc:3,hpcc:1")
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Frac != 0.75 || shares[1].Frac != 0.25 {
		t.Errorf("fractions not normalized: %+v", shares)
	}
	if _, err := ParseMixSpec("rocc:0.5,rocc:0.5"); err == nil {
		t.Error("duplicate protocol accepted")
	}
	if _, err := ParseMixSpec("nosuch:1"); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := ParseMixSpec(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := ParseMixSpec("rocc:0,dcqcn:0"); err == nil {
		t.Error("all-zero fractions accepted")
	}
}

// TestAssignShares pins the deterministic slot split.
func TestAssignShares(t *testing.T) {
	got := AssignShares([]MixShare{{ProtoRoCC, 0.25}, {ProtoDCQCN, 0.75}}, 8)
	want := []Protocol{ProtoRoCC, ProtoRoCC, ProtoDCQCN, ProtoDCQCN, ProtoDCQCN, ProtoDCQCN, ProtoDCQCN, ProtoDCQCN}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
	// Every slot is assigned even under rounding pressure.
	for _, p := range AssignShares([]MixShare{{ProtoRoCC, 1.0 / 3}, {ProtoDCQCN, 1.0 / 3}, {ProtoHPCC, 1.0 / 3}}, 7) {
		if p == "" {
			t.Fatal("unassigned slot")
		}
	}
}
