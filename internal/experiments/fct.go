package experiments

import (
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

// BufferMode selects the switch buffering regime of §6.3.
type BufferMode int

// Buffer regimes.
const (
	// Lossless: PFC enabled, effectively unlimited buffer (the paper's
	// default; PFC prevents drops).
	Lossless BufferMode = iota
	// Unlimited: PFC disabled, unlimited buffer (Fig. 18).
	Unlimited
	// Lossy: PFC disabled, buffer capped at 3× the PFC threshold,
	// go-back-N recovery (App. A.2, Fig. 20).
	Lossy
)

func (m BufferMode) String() string {
	switch m {
	case Lossless:
		return "lossless"
	case Unlimited:
		return "unlimited"
	case Lossy:
		return "lossy"
	}
	return "unknown"
}

// FCTConfig parameterizes a large-scale fat-tree run (§6.3): every host
// behind the first two edges sends Poisson flows to random hosts behind
// the third edge.
type FCTConfig struct {
	Protocol Protocol
	Workload *workload.CDF
	Load     float64 // average offered load on host links (0.5, 0.7)
	Mode     BufferMode
	FatTree  topology.FatTreeConfig
	Duration sim.Time
	Warmup   sim.Time // flows starting before Warmup are not recorded
	Seed     int64

	// Shards selects the parallel event engine: > 0 runs the fabric on
	// a pod-aligned sharded engine group with that many shards (clamped
	// to the edge count), 0 keeps the legacy single-heap engine. Fixed
	// seeds produce byte-identical results for every Shards >= 1; the
	// legacy engine is its own (also deterministic) baseline.
	Shards int

	// IncastFanIn, when > 1, groups arrivals into synchronized incasts:
	// each arrival event starts FanIn flows from distinct random senders
	// to one random sink (the shuffle pattern of map-reduce traffic).
	// The aggregate offered load is unchanged — the per-event arrival
	// rate is divided by FanIn.
	IncastFanIn int
}

func (c *FCTConfig) fill() {
	if c.Workload == nil {
		c.Workload = workload.WebSearch()
	}
	if c.Load == 0 {
		c.Load = 0.7
	}
	if c.FatTree.Cores == 0 {
		c.FatTree = topology.ScaledFatTree(8)
	}
	if c.Duration == 0 {
		c.Duration = 30 * sim.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 6
	}
}

// TierStats aggregates queue occupancy and PFC counts per CP tier, as
// Fig. 17 reports.
type TierStats struct {
	AvgQueueKB float64
	PFCFrames  int
}

// FCTResult is the outcome of one large-scale run.
type FCTResult struct {
	Config      FCTConfig
	FCT         *stats.FCTRecorder
	Bins        []stats.BinStat
	RateMean    float64 // Table 3: per-flow average rate, Mb/s
	RateStd     float64
	Core        TierStats // Fig. 17 tiers
	IngressEdge TierStats
	EgressEdge  TierStats
	MaxBufferKB float64 // peak shared-buffer use across switches
	AvgBufferKB float64 // time-average of the most-loaded switch's buffer (Fig. 18)
	Drops       int
	RetxBytes   int64
	TotalBytes  int64
	FlowsDone   int
}

// RunFCT executes one §6.3 fat-tree experiment.
func RunFCT(cfg FCTConfig) FCTResult {
	cfg.fill()
	engine := sim.New()
	ft := topology.BuildFatTree(engine, cfg.Seed, cfg.FatTree)
	applyBufferMode(ft, cfg.Mode)
	if cfg.Shards > 0 {
		// Shard before any protocol attachment so CP tickers and markers
		// land on their node's shard engine.
		topology.PartitionFatTree(ft, cfg.Shards).Apply(ft.Net)
	}

	stack := NewStack(ft.Net, cfg.Protocol, 16*sim.Microsecond)
	stack.EnableAllSwitchPorts()
	for _, hosts := range ft.Hosts {
		for _, h := range hosts {
			stack.AttachReceiver(h)
		}
	}

	rec := &stats.FCTRecorder{}
	warmupSec := cfg.Warmup.Seconds()
	ft.Net.OnFlowDone = func(f *netsim.Flow) {
		if f.StartTime.Seconds() < warmupSec {
			return
		}
		rec.Record(int(f.Size), f.FCT().Seconds())
	}

	// Traffic: hosts behind edges 0..n-2 send to hosts behind the last
	// edge, per §6.3. The load level is defined against the bottleneck
	// tier — the egress edge's aggregate uplink capacity (with 2:1
	// oversubscription the core-to-egress-edge path saturates first) —
	// so 70% load produces persistent congestion at the core CPs without
	// collapsing the fabric, matching Fig. 17a's observation that
	// congestion concentrates at the core tier.
	lastEdge := len(ft.Hosts) - 1
	sinks := ft.Hosts[lastEdge]
	rand := ft.Net.Rand.Split()
	uplinkCapacity := float64(ft.CoreRate) * float64(cfg.FatTree.Cores*cfg.FatTree.LinksPerPair)
	senders := (len(ft.Hosts) - 1) * cfg.FatTree.HostsPerEdge
	lambda := workload.ArrivalRate(cfg.Workload, uplinkCapacity/float64(senders), cfg.Load)
	start := func(src, dst *netsim.Host, size int) {
		if cfg.Mode == Lossy {
			stack.StartReliableFlow(src, dst, int64(size))
		} else {
			stack.StartFlow(src, dst, int64(size), 0)
		}
	}
	var gens []*workload.Poisson
	if cfg.IncastFanIn > 1 {
		// One network-wide arrival process; each event is a synchronized
		// fan-in of IncastFanIn flows into one sink.
		fan := cfg.IncastFanIn
		if fan > senders {
			fan = senders
		}
		var allSenders []*netsim.Host
		for e := 0; e < lastEdge; e++ {
			allSenders = append(allSenders, ft.Hosts[e]...)
		}
		eventRate := lambda * float64(senders) / float64(fan)
		gens = append(gens, workload.NewPoisson(engine, rand.Split(), cfg.Workload, eventRate,
			func(size int) {
				dst := sinks[rand.Intn(len(sinks))]
				perm := rand.Perm(len(allSenders))
				for i := 0; i < fan; i++ {
					sz := size
					if i > 0 {
						sz = cfg.Workload.Sample(rand)
					}
					start(allSenders[perm[i]], dst, sz)
				}
			}))
	} else {
		for e := 0; e < lastEdge; e++ {
			for _, src := range ft.Hosts[e] {
				src := src
				gens = append(gens, workload.NewPoisson(engine, rand.Split(), cfg.Workload, lambda,
					func(size int) {
						dst := sinks[rand.Intn(len(sinks))]
						start(src, dst, size)
					}))
			}
		}
	}

	// Queue sampling per tier.
	sampler := NewSampler(engine, 200*sim.Microsecond)
	coreQ := sampler.Value("core", func() float64 { return meanQueueKB(ft.CorePorts) })
	bufSeries := sampler.Value("buffer", func() float64 {
		max := 0
		for _, sw := range ft.Net.Switches() {
			if b := sw.BufferUsed(); b > max {
				max = b
			}
		}
		return float64(max) / float64(netsim.KB)
	})
	upQ := sampler.Value("ingress", func() float64 { return meanQueueKB(ft.EdgeUp) })
	downQ := sampler.Value("egress", func() float64 { return meanQueueKB(ft.EdgeDown) })

	engine.RunUntil(cfg.Duration)
	for _, g := range gens {
		g.Stop()
	}

	res := FCTResult{
		Config:    cfg,
		FCT:       rec,
		Bins:      rec.BinBySize(cfg.Workload.Bins()),
		FlowsDone: len(rec.Samples),
		Drops:     ft.Net.TotalDrops(),
	}
	res.RateMean, res.RateStd = rec.RateStats()
	res.Core = TierStats{AvgQueueKB: coreQ.MeanAfter(warmupSec), PFCFrames: sumPFC(ft.Cores)}
	// Edge switches host both ingress (uplink) and egress (downlink) CPs;
	// queue averages are split by port direction, pause frames by switch
	// role relative to the sinks: the last edge is the egress edge.
	res.IngressEdge = TierStats{AvgQueueKB: upQ.MeanAfter(warmupSec)}
	res.EgressEdge = TierStats{AvgQueueKB: downQ.MeanAfter(warmupSec)}
	for i, sw := range ft.Edges {
		if i == len(ft.Edges)-1 {
			res.EgressEdge.PFCFrames += sw.PauseFrames
		} else {
			res.IngressEdge.PFCFrames += sw.PauseFrames
		}
	}
	maxBuf := 0
	for _, sw := range ft.Net.Switches() {
		if sw.MaxBufferUsed > maxBuf {
			maxBuf = sw.MaxBufferUsed
		}
	}
	res.MaxBufferKB = float64(maxBuf) / float64(netsim.KB)
	res.AvgBufferKB = bufSeries.MeanAfter(warmupSec)
	for _, hosts := range ft.Hosts {
		for _, h := range hosts {
			res.TotalBytes += int64(h.RxDataBytes)
		}
	}
	res.RetxBytes = ft.Net.RetxBytesTotal
	return res
}

// RunFCTReps runs cfg for reps repetitions with derived seeds
// (cfg.Seed + rep) fanned across workers (<= 0 selects GOMAXPROCS).
// Results come back ordered by repetition index regardless of
// completion order, so the rows are byte-identical to a serial sweep; a
// repetition that panics is reported on its own Result instead of
// killing the sweep.
func RunFCTReps(cfg FCTConfig, reps, workers int) []harness.Result[FCTResult] {
	if reps <= 0 {
		reps = 1
	}
	return harness.Run(reps, harness.Options{Workers: workers}, func(rep int) (FCTResult, error) {
		c := cfg
		c.Seed = harness.Seed(cfg.Seed, rep)
		return RunFCT(c), nil
	})
}

func applyBufferMode(ft *topology.FatTree, mode BufferMode) {
	switch mode {
	case Lossless:
		// Keep the builder's PFC-enabled configuration (identical to
		// netsim.ModeHybrid.Apply on a fresh fabric).
	case Unlimited:
		// Not an operating mode a deployment runs — a diagnostic regime
		// (Fig. 18) with neither PFC nor a buffer cap.
		ft.SetBuffers(netsim.BufferConfig{})
	case Lossy:
		// The CC-only lossy operating mode: PFC off, buffer capped at 3x
		// the tier threshold, sized in one place by the mode helper.
		netsim.ModeCCOnlyLossy.Apply(ft.Net.Switches())
	}
}

// meanQueueKB averages the backlog over the tier's ports that currently
// hold a queue. Idle ports are excluded so the statistic reflects the
// depth a congestion point operates at (Fig. 17a), not a dilution over
// dozens of idle ports.
func meanQueueKB(ports []*netsim.Port) float64 {
	total, busy := 0, 0
	for _, p := range ports {
		if q := p.DataQueueBytes(); q > 0 {
			total += q
			busy++
		}
	}
	if busy == 0 {
		return 0
	}
	return float64(total) / float64(busy) / float64(netsim.KB)
}

func sumPFC(switches []*netsim.Switch) int {
	n := 0
	for _, s := range switches {
		n += s.PauseFrames
	}
	return n
}
