package experiments

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
)

// Sampler records time series from the running simulation on a fixed
// period (100 µs unless overridden).
type Sampler struct {
	engine *sim.Engine
	period sim.Time
	tick   *sim.Ticker
	fns    []func(now sim.Time)
}

// NewSampler starts a periodic sampler.
func NewSampler(engine *sim.Engine, period sim.Time) *Sampler {
	if period == 0 {
		period = 100 * sim.Microsecond
	}
	s := &Sampler{engine: engine, period: period}
	s.tick = engine.NewTicker(period, func() {
		now := engine.Now()
		for _, fn := range s.fns {
			fn(now)
		}
	})
	return s
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.tick.Stop() }

// Queue records a port's data-class backlog in KB.
func (s *Sampler) Queue(name string, port *netsim.Port) *stats.Series {
	series := &stats.Series{Name: name}
	s.fns = append(s.fns, func(now sim.Time) {
		series.Add(now.Seconds(), float64(port.DataQueueBytes())/float64(netsim.KB))
	})
	return series
}

// Value records an arbitrary gauge.
func (s *Sampler) Value(name string, fn func() float64) *stats.Series {
	series := &stats.Series{Name: name}
	s.fns = append(s.fns, func(now sim.Time) {
		series.Add(now.Seconds(), fn())
	})
	return series
}

// Throughput records the goodput of a flow in Gb/s, differentiating the
// delivered-bytes counter between samples.
func (s *Sampler) Throughput(name string, flow *netsim.Flow) *stats.Series {
	series := &stats.Series{Name: name}
	var last int64
	s.fns = append(s.fns, func(now sim.Time) {
		cur := flow.DeliveredBytes()
		gbps := float64(cur-last) * 8 / s.period.Seconds() / 1e9
		last = cur
		series.Add(now.Seconds(), gbps)
	})
	return series
}

// PortThroughput records a port's transmitted data rate in Gb/s.
func (s *Sampler) PortThroughput(name string, port *netsim.Port) *stats.Series {
	series := &stats.Series{Name: name}
	var last uint64
	s.fns = append(s.fns, func(now sim.Time) {
		cur := port.TxDataBytes
		gbps := float64(cur-last) * 8 / s.period.Seconds() / 1e9
		last = cur
		series.Add(now.Seconds(), gbps)
	})
	return series
}
