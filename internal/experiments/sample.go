package experiments

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
)

// Sampler records time series from the running simulation on a fixed
// period (100 µs unless overridden).
//
// A Sampler is bound to one engine and is not safe for concurrent use;
// under the parallel harness each (experiment × repetition) cell builds
// its own engine and its own Sampler, which is what keeps fan-out
// deterministic.
type Sampler struct {
	engine *sim.Engine
	period sim.Time
	tick   *sim.Ticker
	fns    []func(now sim.Time)
}

// NewSampler starts a periodic sampler.
func NewSampler(engine *sim.Engine, period sim.Time) *Sampler {
	if period == 0 {
		period = 100 * sim.Microsecond
	}
	s := &Sampler{engine: engine, period: period}
	s.tick = engine.NewTicker(period, func() {
		now := engine.Now()
		for _, fn := range s.fns {
			fn(now)
		}
	})
	return s
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.tick.Stop() }

// Queue records a port's data-class backlog in KB.
func (s *Sampler) Queue(name string, port *netsim.Port) *stats.Series {
	series := &stats.Series{Name: name}
	s.fns = append(s.fns, func(now sim.Time) {
		series.Add(now.Seconds(), float64(port.DataQueueBytes())/float64(netsim.KB))
	})
	return series
}

// Value records an arbitrary gauge.
func (s *Sampler) Value(name string, fn func() float64) *stats.Series {
	series := &stats.Series{Name: name}
	s.fns = append(s.fns, func(now sim.Time) {
		series.Add(now.Seconds(), fn())
	})
	return series
}

// Throughput records the goodput of a flow in Gb/s, differentiating the
// delivered-bytes counter between samples.
func (s *Sampler) Throughput(name string, flow *netsim.Flow) *stats.Series {
	series := &stats.Series{Name: name}
	var last int64
	s.fns = append(s.fns, func(now sim.Time) {
		cur := flow.DeliveredBytes()
		gbps := float64(cur-last) * 8 / s.period.Seconds() / 1e9
		last = cur
		series.Add(now.Seconds(), gbps)
	})
	return series
}

// AverageSeries returns the point-wise mean of several repetitions'
// series — the averaged queue/rate curve the paper plots over its five
// runs. All runs must be sampled on the same schedule (same period and
// duration), which derived-seed harness repetitions guarantee; the
// output is truncated to the shortest run and keeps the first run's
// timestamps and name. A single run is returned unchanged in value.
func AverageSeries(runs ...*stats.Series) *stats.Series {
	if len(runs) == 0 {
		return &stats.Series{}
	}
	n := len(runs[0].Points)
	for _, r := range runs[1:] {
		if len(r.Points) < n {
			n = len(r.Points)
		}
	}
	out := &stats.Series{Name: runs[0].Name}
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, r := range runs {
			sum += r.Points[i].V
		}
		out.Add(runs[0].Points[i].T, sum/float64(len(runs)))
	}
	return out
}

// PortThroughput records a port's transmitted data rate in Gb/s.
func (s *Sampler) PortThroughput(name string, port *netsim.Port) *stats.Series {
	series := &stats.Series{Name: name}
	var last uint64
	s.fns = append(s.fns, func(now sim.Time) {
		cur := port.TxDataBytes
		gbps := float64(cur-last) * 8 / s.period.Seconds() / 1e9
		last = cur
		series.Add(now.Seconds(), gbps)
	})
	return series
}
