package experiments

import (
	"fmt"

	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// Fig8Config parameterizes the fairness/stability micro-benchmark:
// N sources at 90% offered load into one bottleneck (§6.1, Fig. 8).
type Fig8Config struct {
	N        int
	Gbps     float64
	Duration sim.Time
	Seed     int64

	// Protocol selects the scheme under test. Empty means RoCC (the
	// figure's subject); baselines reuse the same topology and load, with
	// the fair-rate series replaced by bottleneck throughput (they expose
	// no explicit fair rate).
	Protocol Protocol

	// Telemetry, when non-nil, attaches a metrics registry and flight
	// recorder to the run (see RunTelemetry). Observation only — seeded
	// results are byte-identical with or without it.
	Telemetry *RunTelemetry
}

// Fig8Result holds the queue and fair-rate series plus steady-state
// summaries for one (N, B) point of Fig. 8.
type Fig8Result struct {
	Config       Fig8Config
	Queue        *stats.Series // KB
	FairRate     *stats.Series // Gb/s
	ConvergedAt  float64       // seconds until the fair rate stays within 10% of final
	SteadyQueKB  float64
	SteadyRate   float64 // Gb/s
	ExpectedRate float64 // Gb/s: B/N
	PFCFrames    int
}

// RunFig8 reproduces one curve of Fig. 8.
func RunFig8(cfg Fig8Config) Fig8Result {
	if cfg.Duration == 0 {
		cfg.Duration = 20 * sim.Millisecond
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtoRoCC
	}
	engine := sim.New()
	star := topology.BuildStar(engine, cfg.Seed, cfg.N, netsim.Gbps(cfg.Gbps))
	cfg.Telemetry.attach(star.Net)
	stack := NewStack(star.Net, cfg.Protocol, 0)
	stack.EnablePort(star.Bottleneck)
	stack.AttachReceiver(star.Dst)
	offered := netsim.Gbps(cfg.Gbps * 0.9)
	for _, src := range star.Sources {
		stack.StartFlow(src, star.Dst, -1, offered)
	}
	sampler := NewSampler(engine, 0)
	queue := sampler.Queue("queue", star.Bottleneck)
	var rate *stats.Series
	if cfg.Protocol == ProtoRoCC {
		cp := stack.CPs[star.Bottleneck]
		rate = sampler.Value("fair-rate", func() float64 { return cp.FairRateMbps() / 1000 })
	} else {
		rate = sampler.PortThroughput("bottleneck", star.Bottleneck)
	}
	engine.RunUntil(cfg.Duration)

	half := cfg.Duration.Seconds() / 2
	res := Fig8Result{
		Config:       cfg,
		Queue:        queue,
		FairRate:     rate,
		SteadyQueKB:  queue.MeanAfter(half),
		SteadyRate:   rate.MeanAfter(half),
		ExpectedRate: cfg.Gbps / float64(cfg.N),
		PFCFrames:    star.Net.TotalPFCFrames(),
	}
	// A 15% band absorbs the ΔF-quantization limit cycle at large N (all
	// flows receive the same rounded rate, so the aggregate input carries
	// up to ±N·ΔF/2 of quantization noise the PI keeps correcting).
	res.ConvergedAt = convergenceTime(rate, res.SteadyRate, 0.15)
	return res
}

// RunFig8Grid runs one Fig. 8 point per config across workers. Each
// cell owns a private engine, so the results are identical to running
// the configs serially, in the same order.
func RunFig8Grid(cfgs []Fig8Config, workers int) []harness.Result[Fig8Result] {
	return harness.Run(len(cfgs), harness.Options{Workers: workers}, func(i int) (Fig8Result, error) {
		return RunFig8(cfgs[i]), nil
	})
}

// convergenceTime returns the earliest time after which the series'
// 5-sample moving average stays within tol (fractional) of target.
// Smoothing keeps isolated quantization-cycle excursions from counting
// as non-convergence.
func convergenceTime(s *stats.Series, target, tol float64) float64 {
	if target == 0 || len(s.Points) == 0 {
		return 0
	}
	conv := 0.0
	var window [5]float64
	for i, p := range s.Points {
		window[i%5] = p.V
		n := i + 1
		if n > 5 {
			n = 5
		}
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += window[j]
		}
		avg := sum / float64(n)
		if d := avg/target - 1; d > tol || d < -tol {
			conv = p.T
		}
	}
	return conv
}

// Fig9Config parameterizes the convergence ladder (Fig. 9): flows start
// in waves so N doubles from Start to Peak, then stop so it halves back.
type Fig9Config struct {
	Gbps     float64
	Start    int      // initial flow count (3 in the paper)
	Peak     int      // maximum flow count (100 in the paper; 96 = 3·2⁵ waves plus 4)
	Phase    sim.Time // time between load changes (10 ms in the paper)
	Seed     int64
	Protocol Protocol // defaults to RoCC

	// Telemetry optionally attaches an observability bundle (see
	// RunTelemetry); nil keeps telemetry disabled.
	Telemetry *RunTelemetry
}

// Fig9Result holds the queue/fair-rate series and per-phase steady rates.
type Fig9Result struct {
	Config     Fig9Config
	Queue      *stats.Series // KB
	FairRate   *stats.Series // Gb/s
	PhaseEnds  []float64     // phase boundary times (s)
	PhaseN     []int         // flow count during each phase
	PhaseRates []float64     // mean fair rate over each phase's second half (Gb/s)
	PFCFrames  int
}

// RunFig9 reproduces Fig. 9: exponential load increase then decrease.
func RunFig9(cfg Fig9Config) Fig9Result {
	if cfg.Gbps == 0 {
		cfg.Gbps = 40
	}
	if cfg.Start == 0 {
		cfg.Start = 3
	}
	if cfg.Peak == 0 {
		cfg.Peak = 100
	}
	if cfg.Phase == 0 {
		cfg.Phase = 10 * sim.Millisecond
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtoRoCC
	}
	// Build the ladder of flow counts: double up to Peak, then halve.
	var counts []int
	for n := cfg.Start; n < cfg.Peak; n *= 2 {
		counts = append(counts, n)
	}
	counts = append(counts, cfg.Peak)
	for i := len(counts) - 2; i >= 0; i-- {
		counts = append(counts, counts[i])
	}

	engine := sim.New()
	star := topology.BuildStar(engine, cfg.Seed, cfg.Peak, netsim.Gbps(cfg.Gbps))
	cfg.Telemetry.attach(star.Net)
	stack := NewStack(star.Net, cfg.Protocol, 0)
	stack.EnablePort(star.Bottleneck)
	stack.AttachReceiver(star.Dst)
	offered := netsim.Gbps(cfg.Gbps * 0.9)

	flows := make([]*netsim.Flow, 0, cfg.Peak)
	setCount := func(n int) {
		for len(flows) < n {
			src := star.Sources[len(flows)]
			flows = append(flows, stack.StartFlow(src, star.Dst, -1, offered))
		}
		for len(flows) > n {
			flows[len(flows)-1].Stop()
			flows = flows[:len(flows)-1]
		}
	}
	for i, n := range counts {
		n := n
		at := sim.Time(i) * cfg.Phase
		if at == 0 {
			setCount(n)
			continue
		}
		engine.At(at, func() { setCount(n) })
	}

	sampler := NewSampler(engine, 0)
	queue := sampler.Queue("queue", star.Bottleneck)
	var rate *stats.Series
	if cfg.Protocol == ProtoRoCC {
		cp := stack.CPs[star.Bottleneck]
		rate = sampler.Value("fair-rate", func() float64 { return cp.FairRateMbps() / 1000 })
	} else {
		rate = sampler.PortThroughput("bottleneck", star.Bottleneck)
	}
	total := sim.Time(len(counts)) * cfg.Phase
	engine.RunUntil(total)

	res := Fig9Result{
		Config:    cfg,
		Queue:     queue,
		FairRate:  rate,
		PFCFrames: star.Net.TotalPFCFrames(),
	}
	for i, n := range counts {
		start := sim.Time(i) * cfg.Phase
		mid := (start + cfg.Phase/2).Seconds()
		end := (start + cfg.Phase).Seconds()
		mean := 0.0
		cnt := 0
		for _, p := range rate.Points {
			if p.T >= mid && p.T < end {
				mean += p.V
				cnt++
			}
		}
		if cnt > 0 {
			mean /= float64(cnt)
		}
		res.PhaseEnds = append(res.PhaseEnds, end)
		res.PhaseN = append(res.PhaseN, n)
		res.PhaseRates = append(res.PhaseRates, mean)
	}
	return res
}

// Fig11Config parameterizes the six-way comparison (Fig. 11): N=10
// sources, B=40 Gb/s.
type Fig11Config struct {
	N        int
	Gbps     float64
	Duration sim.Time
	Seed     int64
}

// Fig11Row is one protocol's outcome: per-flow rate statistics
// (fairness), queue behaviour (stability), and link utilization.
type Fig11Row struct {
	Protocol     Protocol
	JainIndex    float64 // Jain's fairness index over per-flow rates
	FlowRateMean float64 // Gb/s, mean of per-flow steady rates
	FlowRateMin  float64
	FlowRateMax  float64
	FlowRateStd  float64
	QueueMeanKB  float64
	QueueStdKB   float64
	Utilization  float64 // bottleneck, fraction of line rate
	Queue        *stats.Series
	Throughput   *stats.Series // aggregate bottleneck Gb/s
}

// RunFig11 reproduces Fig. 11 for one protocol.
func RunFig11(proto Protocol, cfg Fig11Config) Fig11Row {
	if cfg.N == 0 {
		cfg.N = 10
	}
	if cfg.Gbps == 0 {
		cfg.Gbps = 40
	}
	if cfg.Duration == 0 {
		cfg.Duration = 40 * sim.Millisecond
	}
	engine := sim.New()
	star := topology.BuildStar(engine, cfg.Seed, cfg.N, netsim.Gbps(cfg.Gbps))
	stack := NewStack(star.Net, proto, 8*sim.Microsecond)
	stack.EnablePort(star.Bottleneck)
	stack.AttachReceiver(star.Dst)
	offered := netsim.Gbps(cfg.Gbps * 0.9)
	flows := make([]*netsim.Flow, cfg.N)
	for i, src := range star.Sources {
		flows[i] = stack.StartFlow(src, star.Dst, -1, offered)
	}
	sampler := NewSampler(engine, 0)
	queue := sampler.Queue("queue", star.Bottleneck)
	tput := sampler.PortThroughput("bottleneck", star.Bottleneck)

	half := cfg.Duration / 2
	engine.RunUntil(half)
	mid := make([]int64, len(flows))
	for i, f := range flows {
		mid[i] = f.DeliveredBytes()
	}
	engine.RunUntil(cfg.Duration)

	window := (cfg.Duration - half).Seconds()
	perFlow := make([]float64, len(flows))
	for i, f := range flows {
		perFlow[i] = float64(f.DeliveredBytes()-mid[i]) * 8 / window / 1e9
	}
	sum := stats.Summarize(perFlow)
	row := Fig11Row{
		Protocol:     proto,
		JainIndex:    stats.JainIndex(perFlow),
		FlowRateMean: sum.Mean,
		FlowRateMin:  sum.Min,
		FlowRateMax:  sum.Max,
		FlowRateStd:  sum.StdDev,
		QueueMeanKB:  queue.MeanAfter(half.Seconds()),
		QueueStdKB:   queue.StdDevAfter(half.Seconds()),
		Utilization:  tput.MeanAfter(half.Seconds()) / cfg.Gbps,
		Queue:        queue,
		Throughput:   tput,
	}
	return row
}

// RunFig11Grid fans the (protocol × repetition) cells of the six-way
// comparison across workers. Repetition rep of protocol protos[p] uses
// seed cfg.Seed + rep and lands at out[p][rep] regardless of completion
// order, so the grid is deterministic for any worker count.
func RunFig11Grid(protos []Protocol, cfg Fig11Config, reps, workers int) [][]harness.Result[Fig11Row] {
	if reps <= 0 {
		reps = 1
	}
	rs := harness.Run(len(protos)*reps, harness.Options{Workers: workers}, func(cell int) (Fig11Row, error) {
		c := cfg
		c.Seed = harness.Seed(cfg.Seed, cell%reps)
		return RunFig11(protos[cell/reps], c), nil
	})
	out := make([][]harness.Result[Fig11Row], len(protos))
	for p := range protos {
		out[p] = rs[p*reps : (p+1)*reps]
	}
	return out
}

// Fig12aRow is one protocol's per-flow average throughput on the
// multi-bottleneck topology (Fig. 12a). Fair shares: D0 and D5 get
// 5 Gb/s; D1..D4 get 8.75 Gb/s.
type Fig12aRow struct {
	Protocol Protocol
	D        [6]float64 // Gb/s for D0..D5
}

// RunFig12a reproduces Fig. 12a for one protocol.
func RunFig12a(proto Protocol, duration sim.Time, seed int64) Fig12aRow {
	if duration == 0 {
		duration = 40 * sim.Millisecond
	}
	engine := sim.New()
	m := topology.BuildMultiBottleneck(engine, seed)
	stack := NewStack(m.Net, proto, 10*sim.Microsecond)
	stack.EnablePorts(m.Inter, m.Access)
	// Also enable every other egress port so the protocol sees all
	// potential CPs, as a deployment would.
	for _, sw := range m.Net.Switches() {
		for _, p := range sw.Ports() {
			if p != m.Inter && p != m.Access && p.CC == nil {
				stack.EnablePort(p)
			}
		}
	}
	for _, b := range m.B {
		stack.AttachReceiver(b)
	}
	offered := netsim.Gbps(10 * 0.9)
	var flows [6]*netsim.Flow
	flows[0] = stack.StartFlow(m.A[0], m.B[0], -1, offered) // D0: two CPs
	for i := 1; i <= 4; i++ {
		flows[i] = stack.StartFlow(m.A[i], m.B[i], -1, offered)
	}
	flows[5] = stack.StartFlow(m.B5, m.B[0], -1, offered) // D5: access CP only

	half := duration / 2
	engine.RunUntil(half)
	var mid [6]int64
	for i, f := range flows {
		mid[i] = f.DeliveredBytes()
	}
	engine.RunUntil(duration)
	row := Fig12aRow{Protocol: proto}
	window := (duration - half).Seconds()
	for i, f := range flows {
		row.D[i] = float64(f.DeliveredBytes()-mid[i]) * 8 / window / 1e9
	}
	return row
}

// Fig12bRow is one protocol's per-flow average throughput on the
// asymmetric topology (Fig. 12b). The fair share is 100/7 ≈ 14.3 Gb/s
// for every flow.
type Fig12bRow struct {
	Protocol Protocol
	SlowAvg  float64 // Gb/s, mean of D0..D4 (40G access)
	FastAvg  float64 // Gb/s, mean of D5..D6 (100G access)
	D        [7]float64
}

// RunFig12b reproduces Fig. 12b for one protocol.
func RunFig12b(proto Protocol, duration sim.Time, seed int64) Fig12bRow {
	if duration == 0 {
		duration = 40 * sim.Millisecond
	}
	engine := sim.New()
	a := topology.BuildAsymmetric(engine, seed)
	stack := NewStack(a.Net, proto, 12*sim.Microsecond)
	stack.EnableAllSwitchPorts()
	stack.AttachReceiver(a.Dst)
	var flows [7]*netsim.Flow
	for i, src := range a.Slow {
		flows[i] = stack.StartFlow(src, a.Dst, -1, netsim.Gbps(40*0.9))
	}
	for i, src := range a.Fast {
		flows[5+i] = stack.StartFlow(src, a.Dst, -1, netsim.Gbps(100*0.9))
	}
	half := duration / 2
	engine.RunUntil(half)
	var mid [7]int64
	for i, f := range flows {
		mid[i] = f.DeliveredBytes()
	}
	engine.RunUntil(duration)
	row := Fig12bRow{Protocol: proto}
	window := (duration - half).Seconds()
	for i, f := range flows {
		row.D[i] = float64(f.DeliveredBytes()-mid[i]) * 8 / window / 1e9
	}
	for i := 0; i < 5; i++ {
		row.SlowAvg += row.D[i] / 5
	}
	for i := 5; i < 7; i++ {
		row.FastAvg += row.D[i] / 2
	}
	return row
}

// Fig19Result verifies a baseline implementation (App. A.1): per-flow
// throughput as N ramps 1→4→1 with one change per phase.
type Fig19Result struct {
	Protocol   Protocol
	PhaseN     []int
	PhaseRates [][]float64 // per-phase, per-active-flow Gb/s
}

// RunFig19 reproduces App. A.1's verification ladder for one protocol.
// phase is the time between flow count changes (1 s in the paper; the
// default benches use shorter phases — the controllers converge in
// milliseconds).
func RunFig19(proto Protocol, phase sim.Time, seed int64) Fig19Result {
	if phase == 0 {
		phase = 20 * sim.Millisecond
	}
	counts := []int{1, 2, 3, 4, 3, 2, 1}
	engine := sim.New()
	star := topology.BuildStar(engine, seed, 4, netsim.Gbps(40))
	stack := NewStack(star.Net, proto, 8*sim.Microsecond)
	stack.EnablePort(star.Bottleneck)
	stack.AttachReceiver(star.Dst)

	var flows []*netsim.Flow
	setCount := func(n int) {
		for len(flows) < n {
			src := star.Sources[len(flows)]
			flows = append(flows, stack.StartFlow(src, star.Dst, -1, 0))
		}
		for len(flows) > n {
			flows[len(flows)-1].Stop()
			flows = flows[:len(flows)-1]
		}
	}
	res := Fig19Result{Protocol: proto}
	type snapshot struct{ delivered []int64 }
	var snaps []snapshot
	takeSnap := func() {
		s := snapshot{delivered: make([]int64, 4)}
		for i, f := range flows {
			s.delivered[i] = f.DeliveredBytes()
		}
		_ = s
		snaps = append(snaps, s)
	}
	for i, n := range counts {
		setCount(n)
		// Measure over the second half of the phase.
		engine.RunUntil(sim.Time(i)*phase + phase/2)
		takeSnap()
		engine.RunUntil(sim.Time(i+1) * phase)
		rates := make([]float64, n)
		last := snaps[len(snaps)-1]
		for j := 0; j < n && j < len(flows); j++ {
			rates[j] = float64(flows[j].DeliveredBytes()-last.delivered[j]) * 8 / (phase / 2).Seconds() / 1e9
		}
		res.PhaseN = append(res.PhaseN, n)
		res.PhaseRates = append(res.PhaseRates, rates)
	}
	return res
}

// FormatGbps renders a rate list compactly for CLI output.
func FormatGbps(rates []float64) string {
	out := ""
	for i, r := range rates {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", r)
	}
	return out
}
