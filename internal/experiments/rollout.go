package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// MixShare is one protocol's slice of a mixed-protocol fabric.
type MixShare struct {
	Proto Protocol
	Frac  float64
}

// ParseMixSpec parses a "proto:frac,proto:frac" mix description (the
// CLI's -mix flag), e.g. "rocc:0.5,dcqcn:0.5". Fractions are normalized
// to sum to 1; a bare protocol name means weight 1. Protocol names go
// through ParseProtocol, so the usual aliases work.
func ParseMixSpec(spec string) ([]MixShare, error) {
	var shares []MixShare
	seen := make(map[Protocol]bool)
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, fracStr, hasFrac := strings.Cut(part, ":")
		frac := 1.0
		if hasFrac {
			f, err := strconv.ParseFloat(strings.TrimSpace(fracStr), 64)
			if err != nil {
				return nil, fmt.Errorf("mix %q: bad fraction %q", part, fracStr)
			}
			if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("mix %q: fraction must be >= 0", part)
			}
			frac = f
		}
		proto, err := ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if seen[proto] {
			return nil, fmt.Errorf("mix: protocol %s listed twice", proto)
		}
		seen[proto] = true
		shares = append(shares, MixShare{Proto: proto, Frac: frac})
		total += frac
	}
	if len(shares) == 0 {
		return nil, fmt.Errorf("mix: empty spec")
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix: fractions sum to zero")
	}
	for i := range shares {
		shares[i].Frac /= total
	}
	return shares, nil
}

// AssignShares deterministically assigns n slots to the shares'
// protocols by cumulative rounding, so a 0.25/0.75 split of 8 slots is
// exactly 2 and 6. Slots are contiguous per protocol; ECMP hashing
// spreads the flows regardless of slot order.
func AssignShares(shares []MixShare, n int) []Protocol {
	out := make([]Protocol, n)
	cum, prev := 0.0, 0
	for k, s := range shares {
		cum += s.Frac
		hi := int(math.Round(cum * float64(n)))
		if k == len(shares)-1 {
			hi = n
		}
		for i := prev; i < hi && i < n; i++ {
			out[i] = s.Proto
		}
		if hi > prev {
			prev = hi
		}
	}
	return out
}

// RoCCShares builds the incremental-rollout mix: a frac slice of RoCC
// senders sharing the fabric with (1-frac) DCQCN senders. Zero-weight
// protocols are omitted so frac 0 and 1 are true single-protocol runs.
func RoCCShares(frac float64) []MixShare {
	var shares []MixShare
	if frac > 0 {
		shares = append(shares, MixShare{Proto: ProtoRoCC, Frac: frac})
	}
	if frac < 1 {
		shares = append(shares, MixShare{Proto: ProtoDCQCN, Frac: 1 - frac})
	}
	return shares
}

// DefaultRolloutFracs is the RoCC-fraction sweep the rollout experiment
// reports: from an all-DCQCN fabric to an all-RoCC one.
var DefaultRolloutFracs = []float64{0, 0.25, 0.5, 0.75, 1}

// RolloutConfig parameterizes one incremental-rollout run: senders
// behind one fat-tree edge push persistent flows through the shared
// core bottleneck to the other edge, split across protocols by Shares.
type RolloutConfig struct {
	Shares       []MixShare
	Seed         int64
	Duration     sim.Time // default 20 ms
	HostsPerEdge int      // senders (= receivers); default 8
	LinkGbps     float64  // host link rate; default 40
	FCTBytes     int64    // finite-flow size for the FCT probe; default 1 MB
}

func (c *RolloutConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 20 * sim.Millisecond
	}
	if c.HostsPerEdge <= 0 {
		c.HostsPerEdge = 8
	}
	if c.LinkGbps <= 0 {
		c.LinkGbps = 40
	}
	if c.FCTBytes <= 0 {
		c.FCTBytes = 1 << 20
	}
}

// RolloutRow is one protocol's outcome in a mixed run: goodput and
// within-protocol Jain fairness over the persistent flows' steady-state
// window, plus FCT of the finite probe flows injected mid-run.
type RolloutRow struct {
	Proto     Protocol
	Share     float64 // configured fraction of senders
	Flows     int
	MeanGbps  float64 // mean per-flow goodput over the steady window
	Jain      float64 // fairness across this protocol's flows
	FCTMeanMs float64 // mean FCT of the probe flows (0 if none finished)
	FCTP99Ms  float64
}

// RunRollout executes one incremental-rollout experiment: a 2-edge
// fat-tree with a 2:1 oversubscribed core, every edge-0 host sending a
// persistent flow to its edge-1 peer, protocols assigned per sender by
// AssignShares — the per-flow protocol mix the CongestionOps contract
// exists to support. Goodput is measured over [T/4, T/2] (before the
// probes perturb it); at T/2 each sender additionally launches one
// finite probe flow, whose completion times yield per-protocol FCT.
func RunRollout(cfg RolloutConfig) []RolloutRow {
	cfg.fill()
	if len(cfg.Shares) == 0 {
		cfg.Shares = RoCCShares(0.5)
	}
	n := cfg.HostsPerEdge
	engine := sim.New()
	ft := topology.BuildFatTree(engine, cfg.Seed, topology.FatTreeConfig{
		Cores:        2,
		Edges:        2,
		HostsPerEdge: n,
		LinksPerPair: 1,
		// 2:1 oversubscription: core capacity is half the hosts' aggregate.
		HostRate: netsim.Gbps(cfg.LinkGbps),
		CoreRate: netsim.Gbps(cfg.LinkGbps * float64(n) / 4),
	})
	net := ft.Net

	mix := NewMix(net, 16*sim.Microsecond)
	assign := AssignShares(cfg.Shares, n)
	for _, p := range assign {
		mix.Activate(p)
	}
	mix.EnableAllSwitchPorts()
	mix.AttachReceivers()

	// Persistent cross-core flows, one per sender, protocol per assign.
	persistent := make([]*netsim.Flow, n)
	for i := 0; i < n; i++ {
		persistent[i] = mix.StartFlow(assign[i], ft.Hosts[0][i], ft.Hosts[1][i], -1, 0)
	}

	winStart, winEnd := cfg.Duration/4, cfg.Duration/2
	startBytes := make([]int64, n)
	endBytes := make([]int64, n)
	engine.At(winStart, func() {
		for i, f := range persistent {
			startBytes[i] = f.DeliveredBytes()
		}
	})
	engine.At(winEnd, func() {
		for i, f := range persistent {
			endBytes[i] = f.DeliveredBytes()
		}
	})

	// FCT probes: one finite flow per sender, staggered a few µs apart so
	// the measurement is a rollout's background churn, not a pure incast.
	fctOf := make(map[netsim.FlowID]int, n)
	fctSec := make([]float64, n)
	fctDone := 0
	net.OnFlowDone = func(f *netsim.Flow) {
		if i, ok := fctOf[f.ID]; ok && fctSec[i] == 0 {
			fctSec[i] = f.FCT().Seconds()
			fctDone++
		}
	}
	for i := 0; i < n; i++ {
		i := i
		engine.At(winEnd+sim.Time(i)*5*sim.Microsecond, func() {
			f := mix.StartFlow(assign[i], ft.Hosts[0][i], ft.Hosts[1][i], cfg.FCTBytes, 0)
			fctOf[f.ID] = i
		})
	}

	engine.RunUntil(cfg.Duration)
	for _, f := range persistent {
		if !f.Done() {
			f.Stop()
		}
	}
	// Let straggling probes finish (bounded: a probe that hasn't completed
	// by 4x the run length is genuinely wedged and reported as missing).
	for t := cfg.Duration; fctDone < n && t < 4*cfg.Duration; t += cfg.Duration / 4 {
		engine.RunUntil(t + cfg.Duration/4)
	}

	windowSec := (winEnd - winStart).Seconds()
	rows := make([]RolloutRow, 0, len(cfg.Shares))
	for _, s := range cfg.Shares {
		var rates, fcts []float64
		for i, p := range assign {
			if p != s.Proto {
				continue
			}
			rates = append(rates, float64(endBytes[i]-startBytes[i])*8/windowSec/1e9)
			if fctSec[i] > 0 {
				fcts = append(fcts, fctSec[i])
			}
		}
		if len(rates) == 0 {
			continue
		}
		rows = append(rows, RolloutRow{
			Proto:     s.Proto,
			Share:     s.Frac,
			Flows:     len(rates),
			MeanGbps:  stats.Mean(rates),
			Jain:      stats.JainIndex(rates),
			FCTMeanMs: stats.Mean(fcts) * 1e3,
			FCTP99Ms:  stats.Percentile(fcts, 99) * 1e3,
		})
	}
	return rows
}
