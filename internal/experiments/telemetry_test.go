package experiments

import (
	"reflect"
	"testing"

	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

// TestFig8TelemetryByteIdentical holds the subsystem's core guarantee:
// telemetry observes, it never perturbs. Two seeded runs, one with the
// full registry + recorder attached, must produce identical series and
// summaries.
func TestFig8TelemetryByteIdentical(t *testing.T) {
	base := Fig8Config{N: 10, Gbps: 40, Duration: 5 * sim.Millisecond, Seed: 42}
	plain := RunFig8(base)

	instrumented := base
	instrumented.Telemetry = NewRunTelemetry()
	traced := RunFig8(instrumented)

	if !reflect.DeepEqual(plain.Queue.Points, traced.Queue.Points) {
		t.Error("queue series diverged with telemetry attached")
	}
	if !reflect.DeepEqual(plain.FairRate.Points, traced.FairRate.Points) {
		t.Error("fair-rate series diverged with telemetry attached")
	}
	if plain.SteadyRate != traced.SteadyRate || plain.SteadyQueKB != traced.SteadyQueKB ||
		plain.ConvergedAt != traced.ConvergedAt || plain.PFCFrames != traced.PFCFrames {
		t.Errorf("summaries diverged: %+v vs %+v", plain, traced)
	}
	// And the instrumented run actually observed something.
	snap := instrumented.Telemetry.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Gauges) == 0 {
		t.Error("telemetry attached but captured nothing")
	}
	if len(instrumented.Telemetry.Events()) == 0 {
		t.Error("flight recorder captured no events")
	}
}

// TestFig8Baselines checks the -protocol plumbing: the same fig8 config
// runs DCQCN and HPCC end to end and reports a sane bottleneck rate.
func TestFig8Baselines(t *testing.T) {
	for _, proto := range []Protocol{ProtoDCQCN, ProtoHPCC} {
		cfg := Fig8Config{N: 4, Gbps: 40, Duration: 5 * sim.Millisecond, Seed: 1,
			Protocol: proto, Telemetry: NewRunTelemetry()}
		res := RunFig8(cfg)
		if res.SteadyRate <= 0 || res.SteadyRate > cfg.Gbps*1.05 {
			t.Errorf("%s: steady bottleneck rate = %.2f Gb/s", proto, res.SteadyRate)
		}
		if len(cfg.Telemetry.Events()) == 0 {
			t.Errorf("%s: recorder captured no events", proto)
		}
	}
}

func TestParseProtocolCaseInsensitive(t *testing.T) {
	for in, want := range map[string]Protocol{
		"rocc": ProtoRoCC, "DCQCN": ProtoDCQCN, "hpcc": ProtoHPCC,
		"Timely": ProtoTIMELY, "dcqcn+pi": ProtoDCQCNPI, "dctcp": ProtoDCTCP,
	} {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProtocol("swift"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// The telemetry-overhead pair: run fig8 with the registry disabled and
// enabled. CI runs these once per push (no regression gate; the numbers
// land in DESIGN.md §7).
func benchFig8(b *testing.B, tel bool) {
	for i := 0; i < b.N; i++ {
		cfg := Fig8Config{N: 10, Gbps: 40, Duration: 5 * sim.Millisecond, Seed: 7}
		if tel {
			cfg.Telemetry = NewRunTelemetry()
		}
		res := RunFig8(cfg)
		if res.SteadyRate <= 0 {
			b.Fatal("run produced no traffic")
		}
	}
}

func BenchmarkFig8TelemetryOff(b *testing.B) { benchFig8(b, false) }
func BenchmarkFig8TelemetryOn(b *testing.B)  { benchFig8(b, true) }

// Registry without the flight recorder: the common "counters in CI"
// configuration, expected indistinguishable from Off.
func BenchmarkFig8TelemetryRegistryOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Fig8Config{N: 10, Gbps: 40, Duration: 5 * sim.Millisecond, Seed: 7}
		cfg.Telemetry = &RunTelemetry{Registry: telemetry.New()}
		res := RunFig8(cfg)
		if res.SteadyRate <= 0 {
			b.Fatal("run produced no traffic")
		}
	}
}
