package experiments

import (
	"reflect"
	"testing"

	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

func TestFig11GridDeterministicAcrossWorkers(t *testing.T) {
	cfg := Fig11Config{Duration: 4 * sim.Millisecond, Seed: 1}
	protos := []Protocol{ProtoRoCC, ProtoDCQCN}
	serial := RunFig11Grid(protos, cfg, 2, 1)
	parallel := RunFig11Grid(protos, cfg, 2, 8)
	for p := range protos {
		for rep := range serial[p] {
			s, par := serial[p][rep], parallel[p][rep]
			if s.Err != nil || par.Err != nil {
				t.Fatalf("cell (%d,%d) errored: %v / %v", p, rep, s.Err, par.Err)
			}
			if !reflect.DeepEqual(s.Value, par.Value) {
				t.Errorf("proto %s rep %d: workers=8 row differs from workers=1", protos[p], rep)
			}
		}
	}
}

func TestFCTRepsDeterministicAcrossWorkers(t *testing.T) {
	cfg := FCTConfig{
		Protocol: ProtoRoCC,
		Workload: workload.FBHadoop(),
		Load:     0.7,
		FatTree:  topology.ScaledFatTree(4),
		Duration: 4 * sim.Millisecond,
		Seed:     1,
	}
	serial := RunFCTReps(cfg, 2, 1)
	parallel := RunFCTReps(cfg, 2, 4)
	for rep := range serial {
		if serial[rep].Err != nil || parallel[rep].Err != nil {
			t.Fatalf("rep %d errored: %v / %v", rep, serial[rep].Err, parallel[rep].Err)
		}
		if !reflect.DeepEqual(serial[rep].Value, parallel[rep].Value) {
			t.Errorf("rep %d: workers=4 result differs from workers=1", rep)
		}
	}
	// Derived seeds must follow the serial convention base+rep.
	if serial[0].Value.Config.Seed != 1 || serial[1].Value.Config.Seed != 2 {
		t.Errorf("derived seeds = %d, %d; want 1, 2",
			serial[0].Value.Config.Seed, serial[1].Value.Config.Seed)
	}
	// And the repetitions must actually differ (the seeds are live).
	if reflect.DeepEqual(serial[0].Value.Bins, serial[1].Value.Bins) {
		t.Error("rep 0 and rep 1 produced identical bins; seeds not applied")
	}
}

func TestRunFoldRepsMatchesRunFold(t *testing.T) {
	cfg := smallFCT(ProtoRoCC, workload.FBHadoop(), Lossless)
	cfg.Duration = 4 * sim.Millisecond
	direct := RunFold(cfg, Unlimited)
	reps := RunFoldReps(cfg, Unlimited, 2, 4)
	if len(reps) != 2 {
		t.Fatalf("reps = %d", len(reps))
	}
	for _, r := range reps {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Rep 0 uses the base seed, so it must reproduce RunFold exactly.
	if !reflect.DeepEqual(direct.Rows, reps[0].Value.Rows) {
		t.Errorf("RunFoldReps rep 0 != RunFold:\n%+v\n%+v", direct.Rows, reps[0].Value.Rows)
	}
	rows, ci, _, bufFold := MergeFolds([]FoldResult{reps[0].Value, reps[1].Value})
	if len(rows) != len(direct.Rows) || len(ci) != len(rows) {
		t.Fatalf("merged rows = %d, ci = %d", len(rows), len(ci))
	}
	if bufFold <= 0 {
		t.Error("merged buffer fold not computed")
	}
}

func TestAverageSeries(t *testing.T) {
	a := &stats.Series{Name: "q"}
	b := &stats.Series{Name: "q"}
	for i := 0; i < 5; i++ {
		a.Add(float64(i), 10)
		b.Add(float64(i), 20)
	}
	b.Add(5, 99) // extra tail must be truncated away
	avg := AverageSeries(a, b)
	if avg.Name != "q" || len(avg.Points) != 5 {
		t.Fatalf("avg = %q with %d points", avg.Name, len(avg.Points))
	}
	for i, p := range avg.Points {
		if p.T != float64(i) || p.V != 15 {
			t.Errorf("point %d = %+v, want (%d, 15)", i, p, i)
		}
	}
	single := AverageSeries(a)
	if !reflect.DeepEqual(single.Points, a.Points) {
		t.Error("single-run average changed the series")
	}
	if empty := AverageSeries(); len(empty.Points) != 0 {
		t.Error("empty average not empty")
	}
}
