package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

// ScaleFatTree is the acceptance-scale fabric of the sharded engine:
// a k=16 two-level fat-tree — 8 cores, 16 edges, 64 hosts per edge =
// 1024 hosts — at the paper's 2:1 oversubscription (64×40G hosts over
// 8×2×80G uplinks per edge).
func ScaleFatTree() topology.FatTreeConfig {
	return topology.FatTreeConfig{
		Cores:        8,
		Edges:        16,
		HostsPerEdge: 64,
		LinksPerPair: 2,
		HostRate:     netsim.Gbps(40),
		CoreRate:     netsim.Gbps(80),
	}
}

// ScaleBenchConfig parameterizes one cell of the engine-scaling bench:
// the ScaleFatTree fabric saturated with persistent random-pair flows,
// run for a fixed slice of virtual time at one shard count.
type ScaleBenchConfig struct {
	Shards   int // >= 1: sharded engine group (clamped to pods); 0: legacy single heap
	Seed     int64
	Protocol Protocol
	FatTree  topology.FatTreeConfig
	Flows    int      // concurrent persistent flows (default 100,000)
	Duration sim.Time // virtual time driven (default 1 ms)
}

func (c *ScaleBenchConfig) fill() {
	if c.Protocol == "" {
		c.Protocol = ProtoRoCC
	}
	if c.FatTree.Cores == 0 {
		c.FatTree = ScaleFatTree()
	}
	if c.Flows == 0 {
		c.Flows = 100_000
	}
	if c.Duration == 0 {
		c.Duration = sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ScaleBenchResult is one BENCH_10.json row: throughput of the event
// engine at one shard count, plus a digest of the end state for the
// cross-shard-count byte-identity check.
type ScaleBenchResult struct {
	Shards       int     `json:"shards"`
	Hosts        int     `json:"hosts"`
	Flows        int     `json:"flows"`
	VirtualMS    float64 `json:"virtual_ms"`
	Events       uint64  `json:"events"`
	WallSec      float64 `json:"wall_sec"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Digest fingerprints the run's observable end state (per-host
	// delivered bytes, drops, events fired). Fixed-seed runs must report
	// the same digest at every Shards >= 1 — the determinism contract,
	// checked here over the full 1024-host fabric.
	Digest string `json:"digest"`
}

// RunScaleBench runs one scaling cell and measures wall-clock event
// throughput (setup and teardown excluded).
func RunScaleBench(cfg ScaleBenchConfig) ScaleBenchResult {
	cfg.fill()
	engine := sim.New()
	ft := topology.BuildFatTree(engine, cfg.Seed, cfg.FatTree)
	var g *sim.Group
	if cfg.Shards > 0 {
		// Shard before protocol attachment so switch-side elements land on
		// their node's shard engine.
		g = topology.PartitionFatTree(ft, cfg.Shards).Apply(ft.Net)
	}

	stack := NewStack(ft.Net, cfg.Protocol, 16*sim.Microsecond)
	stack.EnableAllSwitchPorts()
	var hosts []*netsim.Host
	for _, hs := range ft.Hosts {
		for _, h := range hs {
			stack.AttachReceiver(h)
			hosts = append(hosts, h)
		}
	}

	// Persistent flows between seeded random distinct hosts: the flow
	// population is constant for the whole run (the "concurrent flows"
	// the bench is sized by), and the pair sequence depends only on the
	// seed — never on the shard count.
	rand := ft.Net.Rand.Split()
	for i := 0; i < cfg.Flows; i++ {
		src := hosts[rand.Intn(len(hosts))]
		dst := hosts[rand.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rand.Intn(len(hosts))]
		}
		stack.StartFlow(src, dst, -1, 0)
	}

	start := time.Now()
	engine.RunUntil(cfg.Duration)
	wall := time.Since(start).Seconds()

	fired := engine.Fired()
	if g != nil {
		fired = g.Fired()
	}

	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, host := range hosts {
		put(uint64(host.RxDataBytes))
	}
	put(uint64(ft.Net.TotalDrops()))
	put(fired)

	return ScaleBenchResult{
		Shards:       cfg.Shards,
		Hosts:        len(hosts),
		Flows:        cfg.Flows,
		VirtualMS:    cfg.Duration.Seconds() * 1e3,
		Events:       fired,
		WallSec:      wall,
		EventsPerSec: float64(fired) / wall,
		Digest:       fmt.Sprintf("%016x", h.Sum64()),
	}
}
