package experiments

import (
	"math"
	"testing"

	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

func TestParseProtocol(t *testing.T) {
	for _, p := range MicroProtocols() {
		got, err := ParseProtocol(string(p))
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("TCP"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFig8QueuePinsAtReference(t *testing.T) {
	r := RunFig8(Fig8Config{N: 10, Gbps: 40, Duration: 15 * sim.Millisecond, Seed: 1})
	if math.Abs(r.SteadyQueKB-150) > 25 {
		t.Errorf("steady queue %.0f KB, want ~150", r.SteadyQueKB)
	}
	if math.Abs(r.SteadyRate-4) > 0.3 {
		t.Errorf("steady fair rate %.2f, want ~4", r.SteadyRate)
	}
	if r.ConvergedAt > 0.008 {
		t.Errorf("convergence %.1f ms, want well under 8", r.ConvergedAt*1e3)
	}
}

func TestFig8At100G(t *testing.T) {
	r := RunFig8(Fig8Config{N: 10, Gbps: 100, Duration: 15 * sim.Millisecond, Seed: 1})
	if math.Abs(r.SteadyQueKB-300) > 50 {
		t.Errorf("100G steady queue %.0f KB, want ~300 (Qref)", r.SteadyQueKB)
	}
	if math.Abs(r.SteadyRate-10) > 0.8 {
		t.Errorf("100G fair rate %.2f, want ~10", r.SteadyRate)
	}
}

func TestFig9LadderTracksFairShare(t *testing.T) {
	// Paper-length phases: the first phase includes the startup
	// transient (MD floor + quantized-gain climb, ~6 ms).
	r := RunFig9(Fig9Config{Phase: 10 * sim.Millisecond, Seed: 1})
	if len(r.PhaseN) < 11 {
		t.Fatalf("phases = %d", len(r.PhaseN))
	}
	// The ladder must be symmetric: 3,6,12,24,48,96|100?,...,3.
	if r.PhaseN[0] != 3 || r.PhaseN[len(r.PhaseN)-1] != 3 {
		t.Errorf("ladder endpoints: %v", r.PhaseN)
	}
	peak := 0
	for _, n := range r.PhaseN {
		if n > peak {
			peak = n
		}
	}
	if peak != 100 {
		t.Errorf("peak N = %d, want 100", peak)
	}
	for i, n := range r.PhaseN {
		ideal := 40.0 / float64(n)
		if offered := 36.0 / float64(n) * float64(n); offered < 40 {
			// At N=3 the offered load (3x36=108G) still saturates 40G.
			_ = offered
		}
		got := r.PhaseRates[i]
		if math.Abs(got-ideal)/ideal > 0.30 {
			t.Errorf("phase %d (N=%d): fair rate %.2f, want ~%.2f", i, n, got, ideal)
		}
	}
}

func TestFig11RoCCIsFairest(t *testing.T) {
	cfg := Fig11Config{Duration: 20 * sim.Millisecond, Seed: 1}
	rocc := RunFig11(ProtoRoCC, cfg)
	timely := RunFig11(ProtoTIMELY, cfg)
	if rocc.FlowRateStd > 0.2 {
		t.Errorf("RoCC per-flow spread %.2f, want tight", rocc.FlowRateStd)
	}
	if timely.FlowRateStd < rocc.FlowRateStd {
		t.Error("TIMELY fairer than RoCC; contradicts Fig 11a")
	}
	if math.Abs(rocc.QueueMeanKB-150) > 25 {
		t.Errorf("RoCC queue %.0f, want ~Qref", rocc.QueueMeanKB)
	}
	if rocc.Utilization < 0.93 {
		t.Errorf("RoCC utilization %.2f, want high", rocc.Utilization)
	}
}

func TestFig11HPCCShallowQueue(t *testing.T) {
	cfg := Fig11Config{Duration: 15 * sim.Millisecond, Seed: 1}
	hpcc := RunFig11(ProtoHPCC, cfg)
	if hpcc.QueueMeanKB > 30 {
		t.Errorf("HPCC queue %.0f KB, want shallow", hpcc.QueueMeanKB)
	}
	if hpcc.Utilization > 0.99 {
		t.Errorf("HPCC utilization %.2f: headroom missing", hpcc.Utilization)
	}
	if hpcc.Utilization < 0.85 {
		t.Errorf("HPCC utilization %.2f too low", hpcc.Utilization)
	}
}

func TestFig12aRoCCHandlesMultipleCPs(t *testing.T) {
	r := RunFig12a(ProtoRoCC, 25*sim.Millisecond, 1)
	if math.Abs(r.D[0]-5) > 1.0 {
		t.Errorf("D0 = %.2f, want ~5", r.D[0])
	}
	if math.Abs(r.D[5]-5) > 1.0 {
		t.Errorf("D5 = %.2f, want ~5", r.D[5])
	}
	for i := 1; i <= 4; i++ {
		if math.Abs(r.D[i]-8.75) > 1.3 {
			t.Errorf("D%d = %.2f, want ~8.75", i, r.D[i])
		}
	}
}

func TestFig12aHPCCPenalizesMultiCPFlow(t *testing.T) {
	r := RunFig12a(ProtoHPCC, 25*sim.Millisecond, 1)
	// The paper: D0 gets ~50% less than its 5 Gb/s fair share.
	if r.D[0] > 3.5 {
		t.Errorf("HPCC D0 = %.2f; expected unfairness toward multi-CP flow", r.D[0])
	}
}

func TestFig12bRoCCFairOnAsymmetric(t *testing.T) {
	r := RunFig12b(ProtoRoCC, 25*sim.Millisecond, 1)
	if math.Abs(r.SlowAvg-r.FastAvg) > 2 {
		t.Errorf("RoCC slow=%.2f fast=%.2f, want equal", r.SlowAvg, r.FastAvg)
	}
	if math.Abs(r.SlowAvg-14.3) > 2.5 {
		t.Errorf("RoCC share %.2f, want ~14.3", r.SlowAvg)
	}
}

func TestFig12bHPCCFavorsFastLinks(t *testing.T) {
	r := RunFig12b(ProtoHPCC, 25*sim.Millisecond, 1)
	if r.FastAvg < r.SlowAvg*1.5 {
		t.Errorf("HPCC slow=%.2f fast=%.2f; expected strong bias to 100G hosts", r.SlowAvg, r.FastAvg)
	}
}

func TestFig13SimTwin(t *testing.T) {
	uni := RunFig13Sim(Fig13Uniform, 40*sim.Millisecond, 1)
	if math.Abs(uni.SteadyQueKB-75) > 20 {
		t.Errorf("uni queue %.0f, want ~75", uni.SteadyQueKB)
	}
	if math.Abs(uni.SteadyRate-3.33) > 0.4 {
		t.Errorf("uni fair rate %.2f, want ~3.33", uni.SteadyRate)
	}
	mix := RunFig13Sim(Fig13Mixed, 40*sim.Millisecond, 1)
	if math.Abs(mix.SteadyRate-6) > 0.6 {
		t.Errorf("mix fair rate %.2f, want ~6 (max-min)", mix.SteadyRate)
	}
}

func smallFCT(p Protocol, wl *workload.CDF, mode BufferMode) FCTConfig {
	return FCTConfig{
		Protocol: p,
		Workload: wl,
		Load:     0.7,
		Mode:     mode,
		FatTree:  topology.ScaledFatTree(4),
		Duration: 10 * sim.Millisecond,
		Seed:     1,
	}
}

func TestFCTRunProducesSamples(t *testing.T) {
	r := RunFCT(smallFCT(ProtoRoCC, workload.FBHadoop(), Lossless))
	if r.FlowsDone < 500 {
		t.Fatalf("only %d flows completed", r.FlowsDone)
	}
	if r.Drops != 0 {
		t.Errorf("drops = %d in lossless mode", r.Drops)
	}
	nonEmpty := 0
	for _, b := range r.Bins {
		if b.Count > 0 {
			nonEmpty++
			if b.AvgMs <= 0 || b.P99Ms < b.P90Ms || b.P90Ms < 0 {
				t.Errorf("bin %d stats inconsistent: %+v", b.UpperBytes, b)
			}
		}
	}
	if nonEmpty < 8 {
		t.Errorf("only %d bins populated", nonEmpty)
	}
	if r.RateMean <= 0 || r.RateStd < 0 {
		t.Errorf("rate stats: %v ± %v", r.RateMean, r.RateStd)
	}
}

func TestFCTLargerFlowsSlower(t *testing.T) {
	r := RunFCT(smallFCT(ProtoRoCC, workload.WebSearch(), Lossless))
	var first, last float64
	for _, b := range r.Bins {
		if b.Count > 0 {
			if first == 0 {
				first = b.AvgMs
			}
			last = b.AvgMs
		}
	}
	if last <= first {
		t.Errorf("FCT not increasing with size: first=%v last=%v", first, last)
	}
}

func TestFCTLossyModeRetransmits(t *testing.T) {
	r := RunFCT(smallFCT(ProtoDCQCN, workload.FBHadoop(), Lossy))
	if r.Drops == 0 {
		t.Skip("no drops at this scale; lossy path not exercised")
	}
	if r.RetxBytes == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
}

func TestFCTUnlimitedModeNoPFC(t *testing.T) {
	r := RunFCT(smallFCT(ProtoDCQCN, workload.FBHadoop(), Unlimited))
	if r.Core.PFCFrames+r.IngressEdge.PFCFrames+r.EgressEdge.PFCFrames != 0 {
		t.Error("PFC frames in unlimited mode")
	}
	if r.Drops != 0 {
		t.Error("drops with unlimited buffer")
	}
}

func TestRunFoldShapes(t *testing.T) {
	r := RunFold(smallFCT(ProtoRoCC, workload.FBHadoop(), Lossless), Unlimited)
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.BufferFold <= 0 {
		t.Error("buffer fold not computed")
	}
}

func TestMergeBins(t *testing.T) {
	a := []stats.BinStat{{UpperBytes: 100, Count: 2, AvgMs: 1, P90Ms: 2, P99Ms: 3}}
	b := []stats.BinStat{{UpperBytes: 100, Count: 4, AvgMs: 3, P90Ms: 4, P99Ms: 5}}
	merged, ci := MergeBins([][]stats.BinStat{a, b})
	if merged[0].Count != 6 || merged[0].AvgMs != 2 {
		t.Errorf("merged = %+v", merged[0])
	}
	if ci[0] <= 0 {
		t.Error("CI not computed")
	}
	if m, c := MergeBins(nil); m != nil || c != nil {
		t.Error("MergeBins(nil) should be nil")
	}
}

func TestStabilityRunners(t *testing.T) {
	if pts := RunFig5(); len(pts) != 100 {
		t.Errorf("fig5 grid = %d points", len(pts))
	}
	rows := RunFig6()
	if len(rows) != 2 || rows[0].MarginDeg < 0 || rows[1].MarginDeg > 0 {
		t.Errorf("fig6 rows = %+v", rows)
	}
	f7 := RunFig7()
	if len(f7) != 6*7 {
		t.Errorf("fig7 rows = %d", len(f7))
	}
	at := RunAutoTune(0.3, 3)
	for _, r := range at {
		if r.MarginDeg < 20 {
			t.Errorf("auto-tuned margin at N=%v: %.1f", r.N, r.MarginDeg)
		}
	}
}

func TestFig19BaselineVerification(t *testing.T) {
	for _, p := range []Protocol{ProtoDCQCN, ProtoHPCC} {
		r := RunFig19(p, 8*sim.Millisecond, 1)
		if len(r.PhaseN) != 7 {
			t.Fatalf("%s: phases = %d", p, len(r.PhaseN))
		}
		// N=1 phases must reach most of the line rate; N=4 near 10 each.
		first := r.PhaseRates[0][0]
		if first < 30 {
			t.Errorf("%s: single flow at %.1f Gb/s, want near 40", p, first)
		}
		n4 := r.PhaseRates[3]
		sum := 0.0
		for _, v := range n4 {
			sum += v
		}
		if sum < 32 {
			t.Errorf("%s: N=4 aggregate %.1f Gb/s, want near 40", p, sum)
		}
	}
}

func TestSamplerSeries(t *testing.T) {
	engine := sim.New()
	s := NewSampler(engine, sim.Millisecond)
	calls := 0
	series := s.Value("x", func() float64 { calls++; return float64(calls) })
	engine.RunUntil(5 * sim.Millisecond)
	s.Stop()
	engine.RunUntil(10 * sim.Millisecond)
	if len(series.Points) != 5 {
		t.Errorf("samples = %d, want 5", len(series.Points))
	}
}

func TestConvergenceTimeSmoothing(t *testing.T) {
	s := &stats.Series{}
	for i := 0; i < 100; i++ {
		v := 10.0
		if i == 50 {
			v = 30 // single-sample excursion must be smoothed away
		}
		s.Add(float64(i), v)
	}
	if got := convergenceTime(s, 10, 0.15); got > 55 {
		t.Errorf("single outlier counted as non-convergence: %v", got)
	}
}

func TestIncastFanInGroupsArrivals(t *testing.T) {
	// Compare in Unlimited mode: in lossless mode PFC caps the peak
	// for both arrival patterns, hiding the difference.
	cfg := smallFCT(ProtoRoCC, workload.WebSearch(), Unlimited)
	cfg.IncastFanIn = 8
	cfg.Duration = 8 * sim.Millisecond
	r := RunFCT(cfg)
	if r.FlowsDone < 10 {
		t.Fatalf("only %d flows with fan-in", r.FlowsDone)
	}
	// Synchronized fan-in produces deeper peak buffers than smooth
	// Poisson at the same load.
	smooth := smallFCT(ProtoRoCC, workload.WebSearch(), Unlimited)
	smooth.Duration = 8 * sim.Millisecond
	s := RunFCT(smooth)
	if r.MaxBufferKB <= s.MaxBufferKB {
		t.Errorf("fan-in peak buffer %.0f <= smooth %.0f", r.MaxBufferKB, s.MaxBufferKB)
	}
}

func TestIncastFanInClampedToSenders(t *testing.T) {
	cfg := smallFCT(ProtoRoCC, workload.FBHadoop(), Lossless)
	cfg.IncastFanIn = 10_000 // far more than senders: must clamp, not panic
	cfg.Duration = 4 * sim.Millisecond
	r := RunFCT(cfg)
	if r.FlowsDone == 0 {
		t.Fatal("no flows completed")
	}
}

func TestAvgBufferReported(t *testing.T) {
	r := RunFCT(smallFCT(ProtoRoCC, workload.WebSearch(), Lossless))
	if r.AvgBufferKB < 0 || r.AvgBufferKB > r.MaxBufferKB {
		t.Errorf("avg buffer %.1f inconsistent with max %.1f", r.AvgBufferKB, r.MaxBufferKB)
	}
}
