package experiments

import (
	"rocc/internal/core"
	"rocc/internal/faults"
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// Recovery benchmark: every protocol on a fat-tree through a hard
// topology failure and restore. Persistent cross-edge flows establish a
// steady state, a core link or a whole core switch dies mid-run and
// comes back, and the experiment reports how deep goodput dipped, how
// long the fabric took to climb back to 90% of its pre-failure rate,
// and how fairly the protocols shared capacity once healed.

// Kill kinds for RecoveryConfig.Kill.
const (
	KillNone   = "none"   // no failure: the byte-identity baseline
	KillLink   = "link"   // one edge→core uplink (EdgeUp[0])
	KillSwitch = "switch" // a whole core switch (Cores[0])
)

// RecoveryConfig parameterizes one recovery cell.
type RecoveryConfig struct {
	Protocol Protocol
	Kill     string // KillNone, KillLink or KillSwitch

	// Duration is the run length. FailAt and RestoreAt bound the outage;
	// both must leave room for a steady state before and a recovery
	// after. Defaults: 12 ms run, fail at 4 ms, restore at 6 ms.
	Duration  sim.Time
	FailAt    sim.Time
	RestoreAt sim.Time

	// BinWidth is the goodput sampling window (default 200 µs).
	BinWidth sim.Time

	// HostsPerEdge sizes the fat-tree (default 4; cores=2, edges=3,
	// one link per edge-core pair).
	HostsPerEdge int

	// RateMbps caps each flow's offered rate (default 16000, keeping the
	// fabric under its 2:1 oversubscribed uplinks so dips are
	// failure-caused, not congestion-caused).
	RateMbps float64

	Seed int64
}

func (c RecoveryConfig) fill() RecoveryConfig {
	if c.Kill == "" {
		c.Kill = KillNone
	}
	if c.Duration == 0 {
		c.Duration = 12 * sim.Millisecond
	}
	if c.FailAt == 0 {
		c.FailAt = 4 * sim.Millisecond
	}
	if c.RestoreAt == 0 {
		c.RestoreAt = 6 * sim.Millisecond
	}
	if c.BinWidth == 0 {
		c.BinWidth = 200 * sim.Microsecond
	}
	if c.HostsPerEdge == 0 {
		c.HostsPerEdge = 4
	}
	if c.RateMbps == 0 {
		c.RateMbps = 16000
	}
	return c
}

// Filled returns the configuration with all defaults applied, for
// report headers.
func (c RecoveryConfig) Filled() RecoveryConfig { return c.fill() }

// RecoveryResult is one protocol × kill-kind cell.
type RecoveryResult struct {
	Config RecoveryConfig

	BaselineGbps float64 // mean goodput over the pre-failure window
	DipGbps      float64 // lowest bin during the outage+reconvergence
	DipDepth     float64 // 1 - DipGbps/BaselineGbps (0 = no dip)

	// T90 is the time from the restore instant until the first bin back
	// at >= 90% of baseline goodput; -1 if the run ended first.
	T90 sim.Time

	// JainPostRecovery is fairness across per-flow goodput from the
	// recovery snapshot (restore + reconvergence + margin) to the end.
	JainPostRecovery float64

	BlackholeDrops uint64
	LinkDownDrops  uint64
	Reconverges    uint64
	RetxBytes      int64
	DeliveredBytes int64

	// Bins is the full goodput series in Gb/s (for -csv export).
	Bins []float64
}

// RunRecovery executes one recovery cell.
func RunRecovery(cfg RecoveryConfig) RecoveryResult {
	cfg = cfg.fill()
	engine := sim.New()
	hostRate := netsim.Gbps(40)
	// 2:1 oversubscription: HostsPerEdge×40G offered, half that across
	// the cores×links uplinks.
	up := float64(cfg.HostsPerEdge) * hostRate.Gbps() / 2
	ft := topology.BuildFatTree(engine, cfg.Seed, topology.FatTreeConfig{
		Cores:        2,
		Edges:        3,
		HostsPerEdge: cfg.HostsPerEdge,
		LinksPerPair: 1,
		HostRate:     hostRate,
		CoreRate:     netsim.Gbps(up / 2),
	})
	net := ft.Net

	mix := NewMix(net, 0)
	// Outages lose feedback wholesale; RoCC runs with the paper's
	// staleness re-homing so CP loss degrades instead of wedging.
	mix.RoCCRP.StaleK = core.DefaultStaleK
	mix.Activate(cfg.Protocol)
	mix.Use(cfg.Protocol)
	mix.EnableAllSwitchPorts()
	for _, h := range net.Hosts() {
		mix.AttachReceivers(h)
	}

	// Cross-edge persistent flows: host h of edge e sends to host h of
	// edge e+1, so every flow crosses the core and feels the failure.
	var flows []*netsim.Flow
	for e := range ft.Hosts {
		for h, src := range ft.Hosts[e] {
			dst := ft.Hosts[(e+1)%len(ft.Hosts)][h]
			flows = append(flows, mix.StartCustomFlow(cfg.Protocol, src, dst,
				-1, netsim.Mbps(cfg.RateMbps), true))
		}
	}

	if cfg.Kill != KillNone {
		inj := faults.New(net, cfg.Seed+0x5eed)
		switch cfg.Kill {
		case KillLink:
			a := ft.EdgeUp[0]
			b := a.PeerNode.Ports()[a.PeerPort]
			inj.KillLink(a, b, cfg.FailAt, cfg.RestoreAt)
		case KillSwitch:
			inj.KillSwitch(ft.Cores[0], cfg.FailAt, cfg.RestoreAt)
		default:
			panic("experiments: unknown recovery kill kind " + cfg.Kill)
		}
	}

	// Goodput bins: delivered-byte deltas per BinWidth tick.
	var bins []float64
	var lastBytes int64
	binSeconds := cfg.BinWidth.Seconds()
	total := func() int64 {
		var t int64
		for _, f := range flows {
			t += f.DeliveredBytes()
		}
		return t
	}
	ticker := engine.NewTicker(cfg.BinWidth, func() {
		cur := total()
		bins = append(bins, float64(cur-lastBytes)*8/binSeconds/1e9)
		lastBytes = cur
	})
	defer ticker.Stop()

	// Recovery snapshot: per-flow delivered bytes once the restored
	// fabric has reconverged (plus a scheduling margin).
	snapAt := cfg.RestoreAt + netsim.DefaultReconvergeDelay + 100*sim.Microsecond
	snap := make([]int64, len(flows))
	engine.At(snapAt, func() {
		for i, f := range flows {
			snap[i] = f.DeliveredBytes()
		}
	})

	engine.RunUntil(cfg.Duration)
	for _, f := range flows {
		f.Stop()
	}

	res := RecoveryResult{
		Config:         cfg,
		Bins:           bins,
		BlackholeDrops: net.BlackholeDrops(),
		LinkDownDrops:  net.LinkDownDrops(),
		Reconverges:    net.Reconverges(),
		RetxBytes:      net.RetxBytesTotal,
		DeliveredBytes: total(),
		T90:            -1,
	}

	binAt := func(t sim.Time) int { return int(t / cfg.BinWidth) }
	// Baseline: mean goodput over the settled half of the pre-failure
	// window, [FailAt/2, FailAt).
	lo, hi := binAt(cfg.FailAt/2), binAt(cfg.FailAt)
	if hi > len(bins) {
		hi = len(bins)
	}
	for i := lo; i < hi; i++ {
		res.BaselineGbps += bins[i]
	}
	if hi > lo {
		res.BaselineGbps /= float64(hi - lo)
	}

	// Dip: the worst bin from the failure through reconvergence after
	// the restore (two extra bins of margin for in-flight losses).
	dipEnd := binAt(cfg.RestoreAt+netsim.DefaultReconvergeDelay) + 2
	if dipEnd > len(bins) {
		dipEnd = len(bins)
	}
	res.DipGbps = res.BaselineGbps
	for i := binAt(cfg.FailAt); i < dipEnd; i++ {
		if bins[i] < res.DipGbps {
			res.DipGbps = bins[i]
		}
	}
	if res.BaselineGbps > 0 {
		res.DipDepth = 1 - res.DipGbps/res.BaselineGbps
	}

	// T90: first bin at or after the restore back at 90% of baseline.
	// Meaningless without a failure, so the baseline cell keeps -1.
	if cfg.Kill != KillNone {
		for i := binAt(cfg.RestoreAt); i < len(bins); i++ {
			if bins[i] >= 0.9*res.BaselineGbps {
				res.T90 = sim.Time(i+1)*cfg.BinWidth - cfg.RestoreAt
				break
			}
		}
	}

	// Post-recovery fairness over per-flow deltas since the snapshot.
	perFlow := make([]float64, len(flows))
	window := (cfg.Duration - snapAt).Seconds()
	for i, f := range flows {
		perFlow[i] = float64(f.DeliveredBytes()-snap[i]) * 8 / window / 1e9
	}
	res.JainPostRecovery = stats.JainIndex(perFlow)
	return res
}

// RunRecoveryGrid runs recovery cells across workers; cell i uses
// cfgs[i] and lands at out[i] regardless of completion order.
func RunRecoveryGrid(cfgs []RecoveryConfig, workers int) []harness.Result[RecoveryResult] {
	return harness.Run(len(cfgs), harness.Options{Workers: workers}, func(i int) (RecoveryResult, error) {
		return RunRecovery(cfgs[i]), nil
	})
}

// RecoveryCells builds the full sweep: every protocol through a link
// kill and a switch kill on the shared base configuration.
func RecoveryCells(base RecoveryConfig) []RecoveryConfig {
	var cells []RecoveryConfig
	for _, p := range AllProtocols() {
		for _, kill := range []string{KillLink, KillSwitch} {
			c := base
			c.Protocol = p
			c.Kill = kill
			cells = append(cells, c)
		}
	}
	return cells
}
