package experiments

import (
	"reflect"
	"testing"

	"rocc/internal/sim"
)

// shortRecovery keeps test cells cheap: 4 ms run, outage 1.2→2 ms.
func shortRecovery(p Protocol, kill string) RecoveryConfig {
	return RecoveryConfig{
		Protocol:  p,
		Kill:      kill,
		Duration:  4 * sim.Millisecond,
		FailAt:    1200 * sim.Microsecond,
		RestoreAt: 2 * sim.Millisecond,
		Seed:      1,
	}
}

func TestRecoveryBaselineHasNoDip(t *testing.T) {
	for _, p := range []Protocol{ProtoRoCC, ProtoHPCC} {
		r := RunRecovery(shortRecovery(p, KillNone))
		if r.BaselineGbps <= 0 {
			t.Errorf("%s: zero baseline goodput", p)
		}
		if r.DipDepth > 0.15 {
			t.Errorf("%s: %.0f%% dip without any failure", p, r.DipDepth*100)
		}
		if r.T90 != -1 {
			t.Errorf("%s: T90 = %v for the no-kill baseline, want -1", p, r.T90)
		}
		if r.Reconverges != 0 || r.BlackholeDrops != 0 || r.LinkDownDrops != 0 {
			t.Errorf("%s: failure counters nonzero on a clean run: %+v", p, r)
		}
	}
}

// TestRecoveryIdleKillScheduleByteIdentical: a kill scheduled past the
// end of the run must be byte-identical to no kill at all, for every
// protocol — the failure layer costs nothing until it fires.
func TestRecoveryIdleKillScheduleByteIdentical(t *testing.T) {
	for _, p := range AllProtocols() {
		base := RunRecovery(shortRecovery(p, KillNone))
		idle := shortRecovery(p, KillLink)
		idle.FailAt = 10 * sim.Millisecond // beyond Duration: never fires
		idle.RestoreAt = 11 * sim.Millisecond
		armed := RunRecovery(idle)
		if base.DeliveredBytes != armed.DeliveredBytes {
			t.Errorf("%s: idle kill schedule changed delivery: %d vs %d",
				p, base.DeliveredBytes, armed.DeliveredBytes)
		}
		if !reflect.DeepEqual(base.Bins, armed.Bins) {
			t.Errorf("%s: idle kill schedule perturbed the goodput series", p)
		}
		if armed.Reconverges != 0 || armed.BlackholeDrops != 0 {
			t.Errorf("%s: idle schedule executed: %+v", p, armed)
		}
	}
}

// TestRecoveryAllProtocolsSurviveKills is the sweep's core contract:
// every protocol rides out both kill kinds — the outage is detected
// (reconvergences fired, packets were lost) and traffic flows afterward.
func TestRecoveryAllProtocolsSurviveKills(t *testing.T) {
	for _, p := range AllProtocols() {
		for _, kill := range []string{KillLink, KillSwitch} {
			r := RunRecovery(shortRecovery(p, kill))
			if r.Reconverges != 2 {
				t.Errorf("%s/%s: reconverges = %d, want 2 (fail + restore)", p, kill, r.Reconverges)
			}
			if r.BlackholeDrops+r.LinkDownDrops == 0 {
				t.Errorf("%s/%s: outage lost no packets; kill never bit", p, kill)
			}
			if r.BaselineGbps <= 0 {
				t.Errorf("%s/%s: no pre-failure goodput", p, kill)
			}
			if r.DipDepth < 0 {
				t.Errorf("%s/%s: negative dip %.2f", p, kill, r.DipDepth)
			}
			if r.JainPostRecovery <= 0 || r.JainPostRecovery > 1 {
				t.Errorf("%s/%s: post-recovery Jain %.3f out of range — flows wedged?",
					p, kill, r.JainPostRecovery)
			}
			if r.DeliveredBytes == 0 {
				t.Errorf("%s/%s: nothing delivered", p, kill)
			}
		}
	}
}

func TestRecoveryDeterministicAcrossWorkers(t *testing.T) {
	cells := []RecoveryConfig{
		shortRecovery(ProtoRoCC, KillLink),
		shortRecovery(ProtoHPCC, KillSwitch),
		shortRecovery(ProtoDCQCN, KillLink),
		shortRecovery(ProtoTIMELY, KillSwitch),
	}
	serial := RunRecoveryGrid(cells, 1)
	parallel := RunRecoveryGrid(cells, 4)
	for i := range cells {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("cell %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Value, parallel[i].Value) {
			t.Errorf("cell %d (%s/%s) differs between -workers 1 and 4",
				i, cells[i].Protocol, cells[i].Kill)
		}
	}
}

func TestRecoveryCellsCoverTheMatrix(t *testing.T) {
	cells := RecoveryCells(RecoveryConfig{Seed: 3})
	want := len(AllProtocols()) * 2
	if len(cells) != want {
		t.Fatalf("RecoveryCells built %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[string(c.Protocol)+"/"+c.Kill] = true
		if c.Seed != 3 {
			t.Errorf("cell lost the base seed")
		}
	}
	for _, p := range AllProtocols() {
		if !seen[string(p)+"/"+KillLink] || !seen[string(p)+"/"+KillSwitch] {
			t.Errorf("protocol %s missing a kill kind", p)
		}
	}
}
