package experiments

import (
	"math"

	"rocc/internal/control"
)

// Fig5Point is one cell of the phase-margin grid over (α, β) (Fig. 5;
// T = 40 µs, N = 2).
type Fig5Point struct {
	Alpha, Beta float64
	MarginDeg   float64
}

// RunFig5 evaluates the phase margin over a log-spaced (α, β) grid.
func RunFig5() []Fig5Point {
	alphas := logSpace(0.001, 1, 10)
	betas := logSpace(0.01, 10, 10)
	var out []Fig5Point
	for _, a := range alphas {
		for _, b := range betas {
			s := control.System{Alpha: a, Beta: b, N: 2, T: 40e-6}
			out = append(out, Fig5Point{Alpha: a, Beta: b, MarginDeg: s.PhaseMarginDeg()})
		}
	}
	return out
}

func logSpace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// Fig6Row compares the stability margin for two flow counts at fixed
// gains (Fig. 6): N = 2 is comfortably stable, N = 10 is unstable.
type Fig6Row struct {
	N           float64
	MarginDeg   float64
	CrossoverHz float64
}

// RunFig6 reproduces Fig. 6 with the paper's α:β = 0.3:3 point.
func RunFig6() []Fig6Row {
	var out []Fig6Row
	for _, n := range []float64{2, 10} {
		s := control.System{Alpha: 0.3, Beta: 3, N: n, T: 40e-6}
		out = append(out, Fig6Row{N: n, MarginDeg: s.PhaseMarginDeg(), CrossoverHz: s.LoopBandwidthHz()})
	}
	return out
}

// Fig7Row is one (pair, N) point of Figs. 7a/7b.
type Fig7Row struct {
	Pair        control.GainPair
	N           float64
	MarginDeg   float64
	BandwidthHz float64
}

// RunFig7 evaluates phase margin (7a) and loop bandwidth (7b) as a
// function of N for the six α:β pairs.
func RunFig7() []Fig7Row {
	var out []Fig7Row
	for _, pair := range control.PaperGainPairs() {
		for n := 2.0; n <= 128; n *= 2 {
			s := control.System{Alpha: pair.Alpha, Beta: pair.Beta, N: n, T: 40e-6}
			out = append(out, Fig7Row{
				Pair:        pair,
				N:           n,
				MarginDeg:   s.PhaseMarginDeg(),
				BandwidthHz: s.LoopBandwidthHz(),
			})
		}
	}
	return out
}

// AutoTuneRow shows the §5.3 result: with quantized auto-tuning the
// margin and bandwidth stay flat across N.
type AutoTuneRow struct {
	N           float64
	Level       int
	MarginDeg   float64
	BandwidthHz float64
}

// RunAutoTune evaluates the auto-tuned loop across N (the §5.3 claim).
func RunAutoTune(alphaTilde, betaTilde float64) []AutoTuneRow {
	var out []AutoTuneRow
	for n := 2.0; n <= 128; n *= 2 {
		a, b, lvl := control.AutoTuneGains(alphaTilde, betaTilde, n, 64)
		s := control.System{Alpha: a, Beta: b, N: n, T: 40e-6}
		out = append(out, AutoTuneRow{
			N:           n,
			Level:       lvl,
			MarginDeg:   s.PhaseMarginDeg(),
			BandwidthHz: s.LoopBandwidthHz(),
		})
	}
	return out
}
