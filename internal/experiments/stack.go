// Package experiments contains one runner per table and figure of the
// RoCC paper's evaluation (§6 and App. A). Each runner builds the
// topology, wires the protocol under test, drives the workload, and
// returns structured rows that cmd/roccsim and the root benchmarks print.
package experiments

import (
	"fmt"
	"strings"

	"rocc/internal/dcqcn"
	"rocc/internal/dcqcnpi"
	"rocc/internal/dctcp"
	"rocc/internal/hpcc"
	"rocc/internal/netsim"
	"rocc/internal/qcn"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/timely"
)

// Protocol names a congestion-control scheme under test.
type Protocol string

// The protocols the paper evaluates.
const (
	ProtoRoCC    Protocol = "RoCC"
	ProtoDCQCN   Protocol = "DCQCN"
	ProtoDCQCNPI Protocol = "DCQCN+PI"
	ProtoHPCC    Protocol = "HPCC"
	ProtoTIMELY  Protocol = "TIMELY"
	ProtoQCN     Protocol = "QCN"
	// ProtoDCTCP is the Table 1 lineage baseline (not in the paper's
	// quantitative evaluation; provided for completeness).
	ProtoDCTCP Protocol = "DCTCP"
)

// ComparisonProtocols is the trio of the large-scale comparisons
// (Figs. 12, 14-18, Table 3).
func ComparisonProtocols() []Protocol {
	return []Protocol{ProtoDCQCN, ProtoHPCC, ProtoRoCC}
}

// MicroProtocols is the five-way comparison of Fig. 11 plus RoCC.
func MicroProtocols() []Protocol {
	return []Protocol{ProtoTIMELY, ProtoQCN, ProtoDCQCN, ProtoDCQCNPI, ProtoHPCC, ProtoRoCC}
}

// AllProtocols adds the Table 1 lineage baseline (DCTCP) to the paper's
// evaluated set.
func AllProtocols() []Protocol {
	return append(MicroProtocols(), ProtoDCTCP)
}

// ParseProtocol resolves a protocol by name, case-insensitively, so CLI
// spellings like "rocc" and "dcqcn+pi" work.
func ParseProtocol(name string) (Protocol, error) {
	for _, p := range AllProtocols() {
		if strings.EqualFold(string(p), name) {
			return p, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown protocol %q", name)
}

// Stack wires one protocol into a built network: switch-side elements per
// egress port, receiver hooks per destination host, and a flow-controller
// factory for sources.
type Stack struct {
	Engine  *sim.Engine
	Net     *netsim.Network
	Proto   Protocol
	BaseRTT sim.Time // HPCC's T parameter; also used for TIMELY scaling

	rand *sim.Rand

	// RoCCOpts overrides the default RoCC CP options (ablation hooks).
	RoCCOpts roccnet.CPOptions
	// RoCCRP overrides the default RoCC RP options.
	RoCCRP roccnet.RPOptions

	// CPs collects attached RoCC congestion points for instrumentation.
	CPs map[*netsim.Port]*roccnet.CP
}

// NewStack builds a protocol stack for the network.
func NewStack(net *netsim.Network, proto Protocol, baseRTT sim.Time) *Stack {
	if baseRTT == 0 {
		baseRTT = 10 * sim.Microsecond
	}
	if proto == ProtoHPCC && net.INTHopCap == 0 {
		// Presize pooled packets' INT buffers to the deepest path the
		// experiment topologies use (fat-tree: host-leaf-spine-leaf-host is
		// 4 stamping hops; 8 leaves headroom) so per-hop stamping never
		// grows a backing array.
		net.INTHopCap = 8
	}
	return &Stack{
		Engine:  net.Engine,
		Net:     net,
		Proto:   proto,
		BaseRTT: baseRTT,
		rand:    net.Rand.Split(),
		CPs:     make(map[*netsim.Port]*roccnet.CP),
	}
}

// EnablePort attaches the protocol's switch-side element to one egress
// port. For TIMELY this is a no-op (the switch takes no action).
func (s *Stack) EnablePort(port *netsim.Port) {
	sw, ok := port.Owner().(*netsim.Switch)
	if !ok {
		panic("experiments: EnablePort needs a switch egress port")
	}
	gbps := port.LinkRate.Gbps()
	switch s.Proto {
	case ProtoRoCC:
		s.CPs[port] = roccnet.Attach(s.Net, sw, port, s.RoCCOpts)
	case ProtoDCQCN:
		port.CC = dcqcn.NewMarker(dcqcn.DefaultConfig(gbps), s.rand)
	case ProtoDCQCNPI:
		dcqcnpi.Attach(s.Net, port, dcqcnpi.DefaultConfig(gbps), s.rand)
	case ProtoHPCC:
		port.CC = hpcc.NewStamper(port)
	case ProtoQCN:
		qcn.AttachCP(s.Net, sw, port, qcn.DefaultConfig(gbps))
	case ProtoDCTCP:
		port.CC = dctcp.NewMarker(dctcp.DefaultConfig(gbps, s.BaseRTT))
	case ProtoTIMELY:
		// RTT-only: no switch involvement.
	default:
		panic("experiments: unknown protocol " + string(s.Proto))
	}
}

// EnablePorts attaches the switch-side element to many ports.
func (s *Stack) EnablePorts(ports ...*netsim.Port) {
	for _, p := range ports {
		s.EnablePort(p)
	}
}

// EnableAllSwitchPorts attaches the protocol on every switch egress port.
func (s *Stack) EnableAllSwitchPorts() {
	for _, sw := range s.Net.Switches() {
		for _, p := range sw.Ports() {
			s.EnablePort(p)
		}
	}
}

// AttachReceiver installs the protocol's destination-side hook on a host.
func (s *Stack) AttachReceiver(h *netsim.Host) {
	switch s.Proto {
	case ProtoDCQCN, ProtoDCQCNPI:
		gbps := h.NIC().LinkRate.Gbps()
		h.Receiver = dcqcn.NewReceiver(dcqcn.DefaultConfig(gbps), h)
	case ProtoDCTCP:
		h.Receiver = dctcp.NewReceiver(h)
	default:
		// RoCC: CNPs come from switches. HPCC/TIMELY: the flow layer's
		// ACK echoes carry what the sender needs. QCN: layer-2 feedback.
	}
}

// FlowCC builds a per-flow congestion controller for a source host.
func (s *Stack) FlowCC(src *netsim.Host) netsim.FlowCC {
	gbps := src.NIC().LinkRate.Gbps()
	switch s.Proto {
	case ProtoRoCC:
		return roccnet.NewFlowCC(s.Engine, src, s.RoCCRP)
	case ProtoDCQCN, ProtoDCQCNPI:
		return dcqcn.NewFlowCC(s.Engine, src, dcqcn.DefaultConfig(gbps))
	case ProtoHPCC:
		return hpcc.NewFlowCC(src, hpcc.DefaultConfig(gbps, s.BaseRTT))
	case ProtoTIMELY:
		return timely.NewFlowCC(src, timely.DefaultConfig(gbps))
	case ProtoQCN:
		return qcn.NewFlowCC(s.Engine, src, qcn.DefaultConfig(gbps))
	case ProtoDCTCP:
		return dctcp.NewFlowCC(src, dctcp.DefaultConfig(gbps, s.BaseRTT))
	}
	panic("experiments: unknown protocol " + string(s.Proto))
}

// AckEvery returns the flow ACK cadence the protocol needs: HPCC requires
// per-packet INT echoes, TIMELY periodic RTT samples, the rest none.
func (s *Stack) AckEvery() int {
	switch s.Proto {
	case ProtoHPCC, ProtoDCTCP:
		return 1
	case ProtoTIMELY:
		return timely.DefaultConfig(40).AckEvery
	}
	return 0
}

// INTOverheadBytes is the per-data-packet wire cost of HPCC's telemetry
// (the paper cites 42 B of INT for a 5-hop path).
const INTOverheadBytes = 42

// extraHeader returns the per-packet overhead the protocol imposes.
func (s *Stack) extraHeader() int {
	if s.Proto == ProtoHPCC {
		return INTOverheadBytes
	}
	return 0
}

// StartFlow launches a flow with the stack's controller and ACK policy.
func (s *Stack) StartFlow(src, dst *netsim.Host, size int64, maxRate netsim.Rate) *netsim.Flow {
	return s.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		MaxRate:     maxRate,
		CC:          s.FlowCC(src),
		AckEvery:    s.AckEvery(),
		ExtraHeader: s.extraHeader(),
	})
}

// StartCustomFlow launches a flow with the stack's controller, ACK
// policy and header overhead, plus a caller-chosen rate cap and
// reliability mode — the generalized entry point chaos scenarios use to
// mix capped persistent flows with reliable finite transfers.
func (s *Stack) StartCustomFlow(src, dst *netsim.Host, size int64, maxRate netsim.Rate, reliable bool) *netsim.Flow {
	return s.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		MaxRate:     maxRate,
		CC:          s.FlowCC(src),
		Reliable:    reliable,
		AckEvery:    s.AckEvery(),
		ExtraHeader: s.extraHeader(),
	})
}

// StartReliableFlow launches a go-back-N flow (App. A.2's lossy runs).
func (s *Stack) StartReliableFlow(src, dst *netsim.Host, size int64) *netsim.Flow {
	return s.Net.StartFlow(src, dst, netsim.FlowConfig{
		Size:        size,
		CC:          s.FlowCC(src),
		Reliable:    true,
		ExtraHeader: s.extraHeader(),
	})
}
