// Package experiments contains one runner per table and figure of the
// RoCC paper's evaluation (§6 and App. A). Each runner builds the
// topology, wires the protocol under test, drives the workload, and
// returns structured rows that cmd/roccsim and the root benchmarks print.
package experiments

import (
	"fmt"
	"strings"

	"rocc/internal/hpcc"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Protocol names a congestion-control scheme under test.
type Protocol string

// The protocols the paper evaluates.
const (
	ProtoRoCC    Protocol = "RoCC"
	ProtoDCQCN   Protocol = "DCQCN"
	ProtoDCQCNPI Protocol = "DCQCN+PI"
	ProtoHPCC    Protocol = "HPCC"
	ProtoTIMELY  Protocol = "TIMELY"
	ProtoQCN     Protocol = "QCN"
	// ProtoDCTCP is the Table 1 lineage baseline (not in the paper's
	// quantitative evaluation; provided for completeness).
	ProtoDCTCP Protocol = "DCTCP"
)

// ComparisonProtocols is the trio of the large-scale comparisons
// (Figs. 12, 14-18, Table 3).
func ComparisonProtocols() []Protocol {
	return []Protocol{ProtoDCQCN, ProtoHPCC, ProtoRoCC}
}

// MicroProtocols is the five-way comparison of Fig. 11 plus RoCC.
func MicroProtocols() []Protocol {
	return []Protocol{ProtoTIMELY, ProtoQCN, ProtoDCQCN, ProtoDCQCNPI, ProtoHPCC, ProtoRoCC}
}

// AllProtocols adds the Table 1 lineage baseline (DCTCP) to the paper's
// evaluated set.
func AllProtocols() []Protocol {
	return append(MicroProtocols(), ProtoDCTCP)
}

// ParseProtocol resolves a protocol by name, case-insensitively, so CLI
// spellings like "rocc" and "dcqcn+pi" work.
func ParseProtocol(name string) (Protocol, error) {
	for _, p := range AllProtocols() {
		if strings.EqualFold(string(p), name) {
			return p, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown protocol %q", name)
}

// Stack is the single-protocol view of a Mix: the wiring and flow-start
// API every experiment runner uses, with the protocol fixed once instead
// of threaded through each call. A Stack built by NewStack owns a fresh
// Mix — the classic one-protocol-per-network setup — while Mix.Use
// returns additional views sharing one fabric-level composer.
type Stack struct {
	*Mix
	Proto Protocol
}

// NewStack builds a protocol stack for the network. baseRTT parameterizes
// window-based protocols; zero uses a 10 µs default.
func NewStack(net *netsim.Network, proto Protocol, baseRTT sim.Time) *Stack {
	return &Stack{Mix: NewMix(net, baseRTT), Proto: proto}
}

// EnablePort attaches the protocol's switch-side element to one egress
// port. For TIMELY this is a no-op (the switch takes no action).
func (s *Stack) EnablePort(port *netsim.Port) {
	s.Mix.EnablePort(s.Proto, port)
}

// EnablePorts attaches the switch-side element to many ports.
func (s *Stack) EnablePorts(ports ...*netsim.Port) {
	for _, p := range ports {
		s.EnablePort(p)
	}
}

// EnableAllSwitchPorts attaches the protocol on every switch egress port.
func (s *Stack) EnableAllSwitchPorts() {
	for _, sw := range s.Net.Switches() {
		for _, p := range sw.Ports() {
			s.EnablePort(p)
		}
	}
}

// AttachReceiver installs the protocol's destination-side hook on a host.
func (s *Stack) AttachReceiver(h *netsim.Host) {
	s.Mix.AttachReceiver(s.Proto, h)
}

// FlowCC builds a per-flow congestion controller for a source host.
func (s *Stack) FlowCC(src *netsim.Host) netsim.FlowCC {
	return s.Mix.NewFlowCC(s.Proto, src)
}

// AckEvery returns the flow ACK cadence the protocol needs for a flow
// sourced at src: HPCC requires per-packet INT echoes, TIMELY periodic
// RTT samples at its configured segment size, the rest none.
func (s *Stack) AckEvery(src *netsim.Host) int {
	return s.Ops(s.Proto).AckEvery(src)
}

// INTOverheadBytes is the per-data-packet wire cost of HPCC's telemetry
// (the paper cites 42 B of INT for a 5-hop path).
const INTOverheadBytes = hpcc.INTOverheadBytes

// StartFlow launches a flow with the stack's controller and ACK policy.
func (s *Stack) StartFlow(src, dst *netsim.Host, size int64, maxRate netsim.Rate) *netsim.Flow {
	return s.Mix.StartFlow(s.Proto, src, dst, size, maxRate)
}

// StartCustomFlow launches a flow with the stack's controller, ACK
// policy and header overhead, plus a caller-chosen rate cap and
// reliability mode — the generalized entry point chaos scenarios use to
// mix capped persistent flows with reliable finite transfers.
func (s *Stack) StartCustomFlow(src, dst *netsim.Host, size int64, maxRate netsim.Rate, reliable bool) *netsim.Flow {
	return s.Mix.StartCustomFlow(s.Proto, src, dst, size, maxRate, reliable)
}

// StartReliableFlow launches a go-back-N flow (App. A.2's lossy runs).
func (s *Stack) StartReliableFlow(src, dst *netsim.Host, size int64) *netsim.Flow {
	return s.Mix.StartReliableFlow(s.Proto, src, dst, size)
}
