package experiments

import (
	"rocc/internal/adversary"
	"rocc/internal/core"
	"rocc/internal/harness"
	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/topology"
)

// Rogue containment benchmark: honest flows of one protocol share a
// star bottleneck with K rogue senders that run the same protocol but
// ignore its feedback (CNP-deaf, ECN-blind, or a raw blaster). Each
// cell runs defended (switch-side compliance policer + PFC storm
// watchdog + RoCC's forged-feedback hardening) or undefended, and
// reports what the victims kept: goodput, fairness among themselves,
// and the flow-completion time of a probe transfer. The headline the
// sweep exists to produce: a switch-driven scheme can police because it
// knows the rate it advertised; pure end-host schemes have nothing to
// hold a rogue to, so their victims collapse.

// RogueConfig parameterizes one rogue-containment cell.
type RogueConfig struct {
	Protocol Protocol
	Rogues   int                 // K rogue senders (default 4)
	Kind     adversary.RogueKind // rogue behaviour (default CNP-deaf)
	Defended bool                // policer + watchdog + RP hardening

	// Victims is the honest sender count (default 4).
	Victims int

	// Duration is the run length (default 8 ms); goodput is measured
	// over the second half, after detection and convergence.
	Duration sim.Time

	// ProbeKB is the probe transfer size in KB (default 100). The probe
	// starts from the first victim host at Duration/2.
	ProbeKB int

	// LinkRate is every link's rate (default 40 Gb/s).
	LinkRate netsim.Rate

	Seed int64
}

func (c RogueConfig) fill() RogueConfig {
	if c.Rogues == 0 {
		c.Rogues = 4
	}
	if c.Kind == "" {
		c.Kind = adversary.RogueCNPDeaf
	}
	if c.Victims == 0 {
		c.Victims = 4
	}
	if c.Duration == 0 {
		c.Duration = 8 * sim.Millisecond
	}
	if c.ProbeKB == 0 {
		c.ProbeKB = 100
	}
	if c.LinkRate == 0 {
		c.LinkRate = netsim.Gbps(40)
	}
	return c
}

// Filled returns the configuration with all defaults applied.
func (c RogueConfig) Filled() RogueConfig { return c.fill() }

// RogueResult is one protocol × K × defense cell.
type RogueResult struct {
	Config RogueConfig

	// Per-victim mean goodput over the second half, and fairness across
	// the victims only (rogues excluded by construction).
	VictimGbps  float64
	RogueGbps   float64 // per-rogue mean over the same window
	JainVictims float64

	// ProbeFCT is the mid-run probe's completion time; -1 if it never
	// finished (a starved victim path).
	ProbeFCT sim.Time

	// Defense activity (zero when undefended).
	Detections    int
	Releases      int
	Quarantined   int // still quarantined at the end
	PolicedDrops  int
	WatchdogTrips int
	SpoofRejects  int // forged/replayed CNPs the hardened RPs refused
}

// EffectiveRogueKind adapts the attack to its host protocol: a rogue is
// deaf to the feedback channel its protocol actually listens on, so
// "CNP-deaf" degrades gracefully for protocols that never see a CNP.
// HPCC's feedback rides INT echoes on ACKs — blinding those is the
// equivalent evasion — and TIMELY's rides the RTT itself, which cannot
// be selectively ignored any cheaper than not listening at all, so its
// deaf rogue is a line-rate blaster. Explicitly requested kinds other
// than CNP-deaf are taken literally.
func EffectiveRogueKind(p Protocol, k adversary.RogueKind) adversary.RogueKind {
	if k != adversary.RogueCNPDeaf {
		return k
	}
	switch p {
	case ProtoHPCC:
		return adversary.RogueECNBlind
	case ProtoTIMELY:
		return adversary.RogueBlast
	default:
		return k
	}
}

// RunRogue executes one rogue-containment cell.
func RunRogue(cfg RogueConfig) RogueResult {
	cfg = cfg.fill()
	engine := sim.New()
	n := cfg.Victims + cfg.Rogues
	star := topology.BuildStar(engine, cfg.Seed, n, cfg.LinkRate)
	net := star.Net

	mix := NewMix(net, 0)
	mix.RoCCRP.StaleK = core.DefaultStaleK
	if cfg.Defended {
		// The end-host half of the defense: reject CNPs from off-path
		// congestion points and stale (replayed) feedback.
		mix.RoCCRP.VerifyCPPath = true
		mix.RoCCRP.MaxCNPAge = 250 * sim.Microsecond
	}
	mix.Activate(cfg.Protocol)
	mix.Use(cfg.Protocol)
	mix.EnableAllSwitchPorts()
	for _, h := range net.Hosts() {
		mix.AttachReceivers(h)
	}

	var policer *adversary.Policer
	var watchdog *adversary.Watchdog
	if cfg.Defended {
		policer = adversary.NewPolicer(net, star.Switch, adversary.PolicerConfig{
			// RoCC's congestion points advertise the per-flow fair rate;
			// the policer holds flows to exactly what the switch promised.
			// Other protocols never told the switch anything, so the hook
			// reports nothing and the policer falls back to equal split.
			AdvertisedRate: func(port *netsim.Port) (netsim.Rate, bool) {
				if cp := mix.CPs[port]; cp != nil {
					return netsim.Mbps(cp.FairRateMbps()), true
				}
				return 0, false
			},
		})
		watchdog = adversary.NewWatchdog(net, star.Switch, adversary.WatchdogConfig{})
	}

	victims := make([]*netsim.Flow, cfg.Victims)
	for i := range victims {
		victims[i] = mix.StartCustomFlow(cfg.Protocol, star.Sources[i], star.Dst, -1, 0, false)
	}
	rogues := make([]*netsim.Flow, cfg.Rogues)
	kind := EffectiveRogueKind(cfg.Protocol, cfg.Kind)
	wrap := func(cc netsim.FlowCC) netsim.FlowCC {
		return adversary.WrapRogue(kind, cc, cfg.LinkRate)
	}
	for i := range rogues {
		rogues[i] = mix.StartWrappedFlow(cfg.Protocol, star.Sources[cfg.Victims+i],
			star.Dst, -1, 0, false, wrap)
	}

	// Second-half measurement window plus the FCT probe at its start.
	half := cfg.Duration / 2
	snapV := make([]int64, len(victims))
	snapR := make([]int64, len(rogues))
	var probe *netsim.Flow
	engine.At(half, func() {
		for i, f := range victims {
			snapV[i] = f.DeliveredBytes()
		}
		for i, f := range rogues {
			snapR[i] = f.DeliveredBytes()
		}
		probe = mix.StartCustomFlow(cfg.Protocol, star.Sources[0], star.Dst,
			int64(cfg.ProbeKB)*netsim.KB, 0, false)
	})

	engine.RunUntil(cfg.Duration)

	res := RogueResult{Config: cfg, ProbeFCT: -1}
	window := (cfg.Duration - half).Seconds()
	perVictim := make([]float64, len(victims))
	for i, f := range victims {
		perVictim[i] = float64(f.DeliveredBytes()-snapV[i]) * 8 / window / 1e9
		res.VictimGbps += perVictim[i]
	}
	res.VictimGbps /= float64(len(victims))
	res.JainVictims = stats.JainIndex(perVictim)
	for i, f := range rogues {
		res.RogueGbps += float64(f.DeliveredBytes()-snapR[i]) * 8 / window / 1e9
	}
	res.RogueGbps /= float64(len(rogues))
	if probe != nil && probe.Done() {
		res.ProbeFCT = probe.FCT()
	}

	if policer != nil {
		st := policer.Stats()
		res.Detections = st.Detections
		res.Releases = st.Releases
		res.Quarantined = policer.CurrentQuarantined()
		res.PolicedDrops = net.PolicedDrops()
		policer.Stop()
	}
	if watchdog != nil {
		res.WatchdogTrips = watchdog.Stats().Trips
		watchdog.Stop()
	}
	for _, f := range victims {
		if cc, ok := f.CC.(*roccnet.FlowCC); ok {
			res.SpoofRejects += cc.RP().CNPsSpoofed + cc.Replays
		}
	}

	for _, f := range victims {
		f.Stop()
	}
	for _, f := range rogues {
		f.Stop()
	}
	return res
}

// RunRogueGrid runs rogue cells across workers; cell i uses cfgs[i] and
// lands at out[i] regardless of completion order.
func RunRogueGrid(cfgs []RogueConfig, workers int) []harness.Result[RogueResult] {
	return harness.Run(len(cfgs), harness.Options{Workers: workers}, func(i int) (RogueResult, error) {
		return RunRogue(cfgs[i]), nil
	})
}

// RogueCells builds the full sweep: every protocol × K ∈ {1, 2, 4}
// rogues × defense off/on, on the shared base configuration.
func RogueCells(base RogueConfig) []RogueConfig {
	var cells []RogueConfig
	for _, p := range AllProtocols() {
		for _, k := range []int{1, 2, 4} {
			for _, defended := range []bool{false, true} {
				c := base
				c.Protocol = p
				c.Rogues = k
				c.Defended = defended
				cells = append(cells, c)
			}
		}
	}
	return cells
}
