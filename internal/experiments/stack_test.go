package experiments

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

func TestStackWiresEveryProtocol(t *testing.T) {
	for _, p := range AllProtocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			engine := sim.New()
			star := topology.BuildStar(engine, 1, 3, netsim.Gbps(40))
			stack := NewStack(star.Net, p, 8*sim.Microsecond)
			stack.EnablePort(star.Bottleneck)
			stack.AttachReceiver(star.Dst)
			if p == ProtoRoCC {
				if stack.CPs[star.Bottleneck] == nil {
					t.Fatal("RoCC CP not registered")
				}
			} else if p != ProtoTIMELY && star.Bottleneck.CC == nil {
				t.Fatal("switch-side element missing")
			}
			if cc := stack.FlowCC(star.Sources[0]); cc == nil {
				t.Fatal("no flow controller")
			}
			// A short run with real traffic must complete flows and keep
			// the fabric lossless.
			var flows []*netsim.Flow
			for _, src := range star.Sources {
				flows = append(flows, stack.StartFlow(src, star.Dst, 200_000, 0))
			}
			engine.RunUntil(20 * sim.Millisecond)
			for i, f := range flows {
				if !f.Done() {
					t.Errorf("flow %d incomplete under %s", i, p)
				}
			}
			if d := star.Net.TotalDrops(); d != 0 {
				t.Errorf("%d drops under %s", d, p)
			}
		})
	}
}

func TestStackAckPolicies(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	cases := map[Protocol]int{
		ProtoRoCC:   0,
		ProtoDCQCN:  0,
		ProtoQCN:    0,
		ProtoHPCC:   1,
		ProtoDCTCP:  1,
		ProtoTIMELY: 16,
	}
	for p, want := range cases {
		stack := NewStack(star.Net, p, 0)
		if got := stack.AckEvery(star.Sources[0]); got != want {
			t.Errorf("%s: AckEvery = %d, want %d", p, got, want)
		}
	}
}

func TestStackHPCCAddsINTOverhead(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	stack := NewStack(star.Net, ProtoHPCC, 8*sim.Microsecond)
	stack.EnablePort(star.Bottleneck)
	f := stack.StartFlow(star.Sources[0], star.Dst, 10_000, 0)
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	// 10 packets x 42 B of INT on top of payload+headers.
	wantWire := uint64(10_000 + 10*(netsim.HeaderBytes+INTOverheadBytes))
	if got := star.Dst.RxDataBytes; got != wantWire {
		t.Errorf("wire bytes = %d, want %d (INT overhead)", got, wantWire)
	}
}

func TestStackNoINTOverheadForOthers(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	stack := NewStack(star.Net, ProtoRoCC, 0)
	stack.EnablePort(star.Bottleneck)
	f := stack.StartFlow(star.Sources[0], star.Dst, 10_000, 0)
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if got := star.Dst.RxDataBytes; got != 10_000+10*netsim.HeaderBytes {
		t.Errorf("wire bytes = %d; unexpected overhead", got)
	}
}

func TestEnablePortRejectsHostPorts(t *testing.T) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 2, netsim.Gbps(40))
	stack := NewStack(star.Net, ProtoRoCC, 0)
	defer func() {
		if recover() == nil {
			t.Error("EnablePort on a host NIC did not panic")
		}
	}()
	stack.EnablePort(star.Sources[0].NIC())
}

func TestEnableAllSwitchPorts(t *testing.T) {
	engine := sim.New()
	ft := topology.BuildFatTree(engine, 1, topology.ScaledFatTree(2))
	stack := NewStack(ft.Net, ProtoDCQCN, 0)
	stack.EnableAllSwitchPorts()
	for _, sw := range ft.Net.Switches() {
		for _, port := range sw.Ports() {
			if port.CC == nil {
				t.Fatalf("port %d on %s not enabled", port.Index, sw.Name)
			}
		}
	}
}

func TestCNPClassAblationStillConverges(t *testing.T) {
	// With CNPs demoted into the data class they queue behind data, but
	// the loop must still converge (just with more sluggish feedback).
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 4, netsim.Gbps(40))
	stack := NewStack(star.Net, ProtoRoCC, 0)
	stack.RoCCOpts.CNPClass = netsim.ClassData
	stack.EnablePort(star.Bottleneck)
	for _, src := range star.Sources {
		stack.StartFlow(src, star.Dst, -1, netsim.Gbps(36))
	}
	engine.RunUntil(20 * sim.Millisecond)
	cp := stack.CPs[star.Bottleneck]
	got := cp.FairRateMbps() / 1000
	if got < 7 || got > 13 {
		t.Errorf("fair rate %.2f with demoted CNPs, want roughly 10", got)
	}
}
