package timely

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func fixture() (*sim.Engine, *FlowCC, Config) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cfg := DefaultConfig(40)
	return engine, NewFlowCC(h, cfg), cfg
}

// ack fabricates an RTT sample: EchoTS = now - rtt.
func ack(now, rtt sim.Time) *netsim.Packet {
	return &netsim.Packet{Kind: netsim.KindAck, EchoTS: now - rtt}
}

func TestFirstSampleOnlyPrimes(t *testing.T) {
	_, cc, cfg := fixture()
	cc.OnAck(100*sim.Microsecond, ack(100*sim.Microsecond, 30*sim.Microsecond))
	if cc.CurrentRate().Mbps() != cfg.RmaxMbps {
		t.Error("rate moved on the priming sample")
	}
}

func TestBelowTlowAlwaysIncreases(t *testing.T) {
	_, cc, cfg := fixture()
	now := sim.Time(0)
	cc.rate = 10000 // start mid-range
	cc.OnAck(now, ack(now, 15*sim.Microsecond))
	before := cc.CurrentRate().Mbps()
	// Rising RTT but still below Tlow: additive increase regardless of
	// gradient.
	now += 100 * sim.Microsecond
	cc.OnAck(now, ack(now, 19*sim.Microsecond))
	after := cc.CurrentRate().Mbps()
	if after != before+cfg.DeltaMbps {
		t.Errorf("rate %v -> %v, want +delta below Tlow", before, after)
	}
}

func TestAboveThighDecreasesProportionally(t *testing.T) {
	_, cc, cfg := fixture()
	now := sim.Time(0)
	cc.rate = 20000
	cc.OnAck(now, ack(now, 100*sim.Microsecond))
	before := cc.CurrentRate().Mbps()
	now += 100 * sim.Microsecond
	rtt := 300 * sim.Microsecond // 2x Thigh
	cc.OnAck(now, ack(now, rtt))
	after := cc.CurrentRate().Mbps()
	want := before * (1 - cfg.Beta*(1-cfg.Thigh.Seconds()/rtt.Seconds()))
	if after <= before*0.5 || after >= before {
		t.Errorf("rate %v -> %v, want ~%v", before, after, want)
	}
	if cc.Decreases != 1 {
		t.Errorf("Decreases = %d", cc.Decreases)
	}
}

func TestGradientDecreaseOnRisingRTT(t *testing.T) {
	_, cc, _ := fixture()
	cc.rate = 20000
	now := sim.Time(0)
	rtt := 40 * sim.Microsecond
	cc.OnAck(now, ack(now, rtt))
	// Steadily rising RTTs in the gradient band.
	for i := 0; i < 5; i++ {
		now += 50 * sim.Microsecond
		rtt += 10 * sim.Microsecond
		cc.OnAck(now, ack(now, rtt))
	}
	if cc.CurrentRate().Mbps() >= 20000 {
		t.Error("rate did not fall with a positive RTT gradient")
	}
}

func TestHAIAfterConsecutiveNegativeGradients(t *testing.T) {
	_, cc, cfg := fixture()
	cc.rate = 10000
	now := sim.Time(0)
	rtt := 120 * sim.Microsecond
	cc.OnAck(now, ack(now, rtt))
	var increments []float64
	prev := cc.rate
	for i := 0; i < cfg.HAICount+2; i++ {
		now += 50 * sim.Microsecond
		rtt -= 2 * sim.Microsecond // falling RTT, still above Tlow
		cc.OnAck(now, ack(now, rtt))
		increments = append(increments, cc.rate-prev)
		prev = cc.rate
	}
	last := increments[len(increments)-1]
	first := increments[0]
	if last <= first {
		t.Errorf("no HAI: increments %v", increments)
	}
	if last != cfg.DeltaMbps*float64(cfg.HAICount) {
		t.Errorf("HAI step = %v, want %v", last, cfg.DeltaMbps*float64(cfg.HAICount))
	}
}

func TestRateStaysInBounds(t *testing.T) {
	_, cc, cfg := fixture()
	now := sim.Time(0)
	cc.OnAck(now, ack(now, 50*sim.Microsecond))
	for i := 0; i < 500; i++ {
		now += 50 * sim.Microsecond
		rtt := sim.Time(10+(i*37)%500) * sim.Microsecond
		cc.OnAck(now, ack(now, rtt))
		r := cc.CurrentRate().Mbps()
		if r < cfg.RminMbps || r > cfg.RmaxMbps {
			t.Fatalf("rate %v escaped [%v, %v]", r, cfg.RminMbps, cfg.RmaxMbps)
		}
	}
}

func TestIgnoresAcksWithoutEcho(t *testing.T) {
	_, cc, _ := fixture()
	cc.OnAck(0, &netsim.Packet{Kind: netsim.KindAck})
	if cc.haveRTT {
		t.Error("consumed an ack without an RTT echo")
	}
}

func TestNoSwitchInvolvement(t *testing.T) {
	_, cc, _ := fixture()
	cc.OnCNP(0, &netsim.Packet{Kind: netsim.KindCNP})
	if cc.CurrentRate().Mbps() != DefaultConfig(40).RmaxMbps {
		t.Error("TIMELY reacted to a CNP")
	}
}
