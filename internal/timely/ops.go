package timely

import "rocc/internal/netsim"

// Ops is TIMELY's netsim.CongestionOps descriptor: no switch element, no
// receiver hook — just the RTT-gradient controller per flow plus the ACK
// cadence its RTT sampling needs. The cadence comes from the same Config
// the flow's controller is built with, so a host's NIC rate (or a custom
// Config override) drives both consistently.
type Ops struct {
	// Config maps a source host to TIMELY parameters. Nil selects
	// DefaultConfig at the host's NIC rate.
	Config func(src *netsim.Host) Config
}

func (o *Ops) config(src *netsim.Host) Config {
	if o.Config != nil {
		return o.Config(src)
	}
	return DefaultConfig(src.NIC().LinkRate.Gbps())
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "TIMELY" }

// Features implements netsim.CongestionOps: RTT-only, no CNPs, no INT.
func (o *Ops) Features() netsim.CCFeatures { return netsim.CCFeatures{} }

// AttachPort implements netsim.CongestionOps: the switch takes no action.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	return nil
}

// NewReceiver implements netsim.CongestionOps: no receiver action.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook { return nil }

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src, o.config(src))
}

// AckEvery implements netsim.CongestionOps: the RTT sampling cadence of
// the controller configuration for this source.
func (o *Ops) AckEvery(src *netsim.Host) int { return o.config(src).AckEvery }
