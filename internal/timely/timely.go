// Package timely reimplements TIMELY (Mittal et al., SIGCOMM 2015), the
// RTT-gradient baseline. The switch takes no action; the sender measures
// RTT from ACK echoes and adjusts its rate:
//
//   - below Tlow: additive increase;
//   - above Thigh: multiplicative decrease proportional to the overshoot;
//   - in between: gradient tracking — increase (HAI after N consecutive
//     negative gradients) when RTTs fall, multiplicative decrease scaled
//     by the normalized gradient when they rise.
//
// As [45] showed and the RoCC paper reproduces, the gradient regime has no
// fixed point, so per-flow rates oscillate and long-term fairness suffers.
package timely

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds TIMELY parameters, scaled for the simulated fabrics.
type Config struct {
	EwmaAlpha float64  // RTT-difference EWMA weight (0.3)
	Beta      float64  // multiplicative-decrease factor (0.8)
	DeltaMbps float64  // additive-increase step
	Tlow      sim.Time // no-decrease RTT floor
	Thigh     sim.Time // always-decrease RTT ceiling
	MinRTT    sim.Time // normalization for the gradient
	HAICount  int      // consecutive negative gradients before HAI (5)
	RminMbps  float64  // rate floor
	RmaxMbps  float64  // line rate; 0 = host NIC rate
	AckEvery  int      // RTT sampling cadence in packets (segment size)
}

// DefaultConfig returns parameters adapted to a gbps fabric with ~10 µs
// base RTTs (the paper's TIMELY used 10 GbE with 50-500 µs thresholds; we
// scale thresholds to the simulated fabric's RTT range).
func DefaultConfig(gbps float64) Config {
	return Config{
		EwmaAlpha: 0.3,
		Beta:      0.8,
		DeltaMbps: 10 * gbps / 10, // 10 Mb/s per 10G of line rate
		Tlow:      20 * sim.Microsecond,
		Thigh:     150 * sim.Microsecond,
		MinRTT:    10 * sim.Microsecond,
		HAICount:  5,
		RminMbps:  10,
		RmaxMbps:  gbps * 1000,
		AckEvery:  16,
	}
}

// FlowCC is the TIMELY rate controller for one flow.
type FlowCC struct {
	host *netsim.Host
	cfg  Config

	rate     float64 // Mb/s
	prevRTT  sim.Time
	rttDiff  float64 // seconds, EWMA
	negCount int
	haveRTT  bool

	pacer netsim.Pacer

	// Counters.
	Decreases int
	Increases int
}

// NewFlowCC builds a TIMELY controller starting at line rate.
func NewFlowCC(host *netsim.Host, cfg Config) *FlowCC {
	if cfg.RmaxMbps == 0 {
		cfg.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	return &FlowCC{host: host, cfg: cfg, rate: cfg.RmaxMbps}
}

// Allow implements netsim.FlowCC.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	cc.pacer.Consume(now, netsim.Mbps(cc.rate), pkt.Size)
}

// OnAck implements netsim.FlowCC: one RTT sample per completion event.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {
	if pkt.EchoTS == 0 {
		return
	}
	rtt := now - pkt.EchoTS
	if !cc.haveRTT {
		cc.prevRTT = rtt
		cc.haveRTT = true
		return
	}
	newDiff := (rtt - cc.prevRTT).Seconds()
	cc.rttDiff = (1-cc.cfg.EwmaAlpha)*cc.rttDiff + cc.cfg.EwmaAlpha*newDiff
	cc.prevRTT = rtt
	normGrad := cc.rttDiff / cc.cfg.MinRTT.Seconds()

	switch {
	case rtt < cc.cfg.Tlow:
		cc.rate += cc.cfg.DeltaMbps
		cc.negCount = 0
		cc.Increases++
	case rtt > cc.cfg.Thigh:
		cc.rate *= 1 - cc.cfg.Beta*(1-cc.cfg.Thigh.Seconds()/rtt.Seconds())
		cc.negCount = 0
		cc.Decreases++
	case normGrad <= 0:
		cc.negCount++
		step := cc.cfg.DeltaMbps
		if cc.negCount >= cc.cfg.HAICount {
			step *= float64(cc.cfg.HAICount) // hyper-active increase
		}
		cc.rate += step
		cc.Increases++
	default:
		grad := normGrad
		if grad > 1 {
			grad = 1
		}
		cc.rate *= 1 - cc.cfg.Beta*grad
		cc.negCount = 0
		cc.Decreases++
	}
	if cc.rate > cc.cfg.RmaxMbps {
		cc.rate = cc.cfg.RmaxMbps
	}
	if cc.rate < cc.cfg.RminMbps {
		cc.rate = cc.cfg.RminMbps
	}
	cc.host.Kick()
}

// OnReroute implements netsim.RouteAware: after a route reconvergence
// the flow's RTT baseline describes the old path — the first sample on
// the new path would register as a huge (possibly negative) gradient and
// trigger a spurious HAI ramp or multiplicative decrease. Resetting the
// gradient state makes the next ACK a fresh baseline sample; the rate
// itself survives, so the flow keeps pacing while it re-learns.
func (cc *FlowCC) OnReroute(now sim.Time) {
	cc.haveRTT = false
	cc.rttDiff = 0
	cc.negCount = 0
}

// OnCNP implements netsim.FlowCC. TIMELY has no CNPs.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate { return netsim.Mbps(cc.rate) }
