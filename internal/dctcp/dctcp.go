// Package dctcp reimplements DCTCP (Alizadeh et al., SIGCOMM 2010), the
// first row of the paper's Table 1. DCTCP is not part of the RoCC
// paper's quantitative evaluation (it is a TCP-stack design, not an RDMA
// one), but it completes the Table 1 lineage: the switch marks ECN above
// a fixed threshold, the receiver echoes the marks, and the sender
// scales its multiplicative decrease by the EWMA fraction α of marked
// packets:
//
//	cwnd ← cwnd · (1 − α/2)
//
// Here it runs as a window-based netsim.FlowCC with per-packet ACKs
// (AckEvery = 1), using the ACK's CE echo.
package dctcp

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds DCTCP parameters.
type Config struct {
	MarkBytes int      // switch marking threshold K (fixed, not RED)
	G         float64  // α EWMA gain (1/16 in the paper)
	BaseRTT   sim.Time // for the initial window and pacing
	RmaxMbps  float64  // line rate; 0 = host NIC rate
	MinCwnd   float64  // floor in bytes (2 packets)
}

// DefaultConfig returns DCTCP parameters for a gbps fabric: K scaled to
// ~20 packets per 10G as the paper recommends (65 packets at 10G ≈ 65KB;
// we use the common K = 20% of BDP guidance adapted to the fabric).
func DefaultConfig(gbps float64, baseRTT sim.Time) Config {
	k := int(gbps / 10 * 65 * 1000) // 65 KB per 10G of line rate
	return Config{
		MarkBytes: k,
		G:         1.0 / 16,
		BaseRTT:   baseRTT,
		RmaxMbps:  gbps * 1000,
		MinCwnd:   2 * (netsim.MTUPayload + netsim.HeaderBytes),
	}
}

// Marker is the DCTCP congestion point: a fixed-threshold ECN marker.
type Marker struct {
	cfg    Config
	Marked uint64
}

// NewMarker builds the threshold marker for egress ports.
func NewMarker(cfg Config) *Marker { return &Marker{cfg: cfg} }

// OnEnqueue implements netsim.PortCC: mark every ECT packet above K.
func (m *Marker) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if pkt.ECT && qlen > m.cfg.MarkBytes {
		pkt.CE = true
		m.Marked++
	}
}

// OnDequeue implements netsim.PortCC.
func (m *Marker) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {}

// Receiver echoes CE marks back to the sender. The real protocol
// piggybacks an ECE flag on ACKs; netsim's generic ACKs do not carry the
// CE bit, so the receiver sends an explicit tiny echo packet per marked
// data packet — same information, same direction, same priority class.
type Receiver struct {
	host *netsim.Host
}

// NewReceiver builds the receiver-side echo hook.
func NewReceiver(host *netsim.Host) *Receiver { return &Receiver{host: host} }

// OnData implements netsim.ReceiverHook: echo CE marks to the sender.
func (r *Receiver) OnData(now sim.Time, pkt *netsim.Packet) *netsim.Packet {
	if !pkt.CE {
		return nil
	}
	echo := r.host.Network().AcquirePacketFor(r.host)
	echo.Flow = pkt.Flow
	echo.Src = r.host.ID()
	echo.Dst = pkt.Src
	echo.Kind = netsim.KindCNP // carried in the control class, like an ECE-marked ACK
	echo.Cls = netsim.ClassAck
	echo.Size = netsim.AckBytes
	echo.SendTS = now
	return echo
}

// FlowCC is the DCTCP sender for one flow: window-based with the α-scaled
// multiplicative decrease once per RTT.
type FlowCC struct {
	cfg  Config
	host *netsim.Host

	cwnd     float64 // bytes
	alpha    float64
	acked    int64
	sentHigh int64

	// Per-RTT accounting.
	windowEnd   int64 // decrease at most once per window of data
	ackedInWin  int
	markedInWin int
	decreaseArm bool
	pacer       netsim.Pacer

	// Counters.
	Decreases int
}

// NewFlowCC builds a DCTCP window controller starting at one BDP.
func NewFlowCC(host *netsim.Host, cfg Config) *FlowCC {
	if cfg.RmaxMbps == 0 {
		cfg.RmaxMbps = host.NIC().LinkRate.Mbps()
	}
	bdp := cfg.RmaxMbps * 1e6 / 8 * cfg.BaseRTT.Seconds()
	if bdp < cfg.MinCwnd {
		bdp = cfg.MinCwnd
	}
	return &FlowCC{cfg: cfg, host: host, cwnd: bdp}
}

// Cwnd returns the congestion window in bytes.
func (cc *FlowCC) Cwnd() float64 { return cc.cwnd }

// Alpha returns the EWMA marked fraction.
func (cc *FlowCC) Alpha() float64 { return cc.alpha }

// Allow implements netsim.FlowCC.
func (cc *FlowCC) Allow(now sim.Time, payload int) (sim.Time, bool) {
	if float64(cc.sentHigh-cc.acked)+float64(payload) > cc.cwnd {
		return 0, false
	}
	return cc.pacer.Next(now), true
}

// OnSent implements netsim.FlowCC.
func (cc *FlowCC) OnSent(now sim.Time, pkt *netsim.Packet) {
	if end := pkt.Seq + int64(pkt.Payload); end > cc.sentHigh {
		cc.sentHigh = end
	}
	rate := netsim.Rate(cc.cwnd * 8 / cc.cfg.BaseRTT.Seconds())
	if max := netsim.Mbps(cc.cfg.RmaxMbps); rate > max {
		rate = max
	}
	cc.pacer.Consume(now, rate, pkt.Size)
}

// OnAck implements netsim.FlowCC: per-ACK additive increase and the
// once-per-window α update.
func (cc *FlowCC) OnAck(now sim.Time, pkt *netsim.Packet) {
	if pkt.AckSeq > cc.acked {
		cc.acked = pkt.AckSeq
	}
	cc.ackedInWin++
	// Slow additive increase: one MSS per window.
	cc.cwnd += float64(netsim.MTUPayload) * float64(netsim.MTUPayload) / cc.cwnd
	if cc.acked >= cc.windowEnd {
		frac := 0.0
		if cc.ackedInWin > 0 {
			frac = float64(cc.markedInWin) / float64(cc.ackedInWin)
		}
		cc.alpha = (1-cc.cfg.G)*cc.alpha + cc.cfg.G*frac
		if cc.decreaseArm {
			cc.cwnd *= 1 - cc.alpha/2
			cc.Decreases++
			cc.decreaseArm = false
		}
		if cc.cwnd < cc.cfg.MinCwnd {
			cc.cwnd = cc.cfg.MinCwnd
		}
		cc.markedInWin = 0
		cc.ackedInWin = 0
		cc.windowEnd = cc.sentHigh
	}
	cc.host.Kick()
}

// OnRewind implements netsim.RetxAware: a go-back-N rewind declared every
// byte at or above seq lost, so they leave the in-flight account. Without
// this a blackhole window (failed link or switch) pins sentHigh-acked at
// cwnd and Allow blocks the retransmissions that would free it.
func (cc *FlowCC) OnRewind(now sim.Time, seq int64) {
	if seq >= cc.sentHigh {
		return
	}
	cc.sentHigh = seq
	if cc.sentHigh < cc.acked {
		cc.sentHigh = cc.acked
	}
	if cc.windowEnd > cc.sentHigh {
		cc.windowEnd = cc.sentHigh
	}
}

// OnCNP implements netsim.FlowCC: the receiver's CE echoes arrive here.
func (cc *FlowCC) OnCNP(now sim.Time, pkt *netsim.Packet) {
	cc.markedInWin++
	cc.decreaseArm = true
}

// CurrentRate implements netsim.FlowCC.
func (cc *FlowCC) CurrentRate() netsim.Rate {
	return netsim.Rate(cc.cwnd * 8 / cc.cfg.BaseRTT.Seconds())
}
