package dctcp

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Ops is DCTCP's netsim.CongestionOps descriptor: threshold ECN markers
// on switch egress ports, CE-echoing receivers, and the α-scaled window
// controller with per-packet ACKs.
type Ops struct {
	// BaseRTT parameterizes the window controller's RTT target.
	BaseRTT sim.Time

	// Config maps a link/NIC rate and the base RTT to DCTCP parameters.
	// Nil selects DefaultConfig.
	Config func(gbps float64, baseRTT sim.Time) Config
}

func (o *Ops) config(gbps float64) Config {
	if o.Config != nil {
		return o.Config(gbps, o.BaseRTT)
	}
	return DefaultConfig(gbps, o.BaseRTT)
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "DCTCP" }

// Features implements netsim.CongestionOps: the CE echo rides a
// KindCNP packet in the ACK class.
func (o *Ops) Features() netsim.CCFeatures {
	return netsim.CCFeatures{UsesCNP: true, CNPClass: netsim.ClassAck}
}

// AttachPort implements netsim.CongestionOps.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	return NewMarker(o.config(port.LinkRate.Gbps()))
}

// NewReceiver implements netsim.CongestionOps: echo CE marks back to the
// sender.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook {
	return NewReceiver(h)
}

// NewFlowCC implements netsim.CongestionOps.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return NewFlowCC(src, o.config(src.NIC().LinkRate.Gbps()))
}

// AckEvery implements netsim.CongestionOps: DCTCP windows on per-packet
// ACKs.
func (o *Ops) AckEvery(src *netsim.Host) int { return 1 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (m *Marker) CCProtocol() string { return "DCTCP" }
