package dctcp

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestMarkerThreshold(t *testing.T) {
	m := NewMarker(DefaultConfig(40, 10*sim.Microsecond))
	k := DefaultConfig(40, 10*sim.Microsecond).MarkBytes
	below := &netsim.Packet{ECT: true}
	m.OnEnqueue(0, below, k)
	if below.CE {
		t.Error("marked at the threshold (must be strictly above)")
	}
	above := &netsim.Packet{ECT: true}
	m.OnEnqueue(0, above, k+1)
	if !above.CE {
		t.Error("not marked above the threshold")
	}
	nonECT := &netsim.Packet{}
	m.OnEnqueue(0, nonECT, k*10)
	if nonECT.CE {
		t.Error("non-ECT packet marked")
	}
	if m.Marked != 1 {
		t.Errorf("Marked = %d", m.Marked)
	}
}

func TestReceiverEchoesOnlyMarked(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	r := NewReceiver(h)
	if r.OnData(0, &netsim.Packet{Flow: 1, CE: false}) != nil {
		t.Error("echo for unmarked packet")
	}
	echo := r.OnData(0, &netsim.Packet{Flow: 1, Src: 5, CE: true})
	if echo == nil || echo.Dst != 5 || echo.Flow != 1 {
		t.Errorf("echo = %+v", echo)
	}
}

func TestAlphaTracksMarkingFraction(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cc := NewFlowCC(h, DefaultConfig(40, 10*sim.Microsecond))
	// Simulate several fully-marked windows: alpha must rise toward 1
	// and the window must shrink.
	w0 := cc.Cwnd()
	seq := int64(0)
	for win := 0; win < 20; win++ {
		for i := 0; i < 10; i++ {
			cc.OnSent(0, &netsim.Packet{Seq: seq, Payload: 1000, Size: 1048})
			seq += 1000
		}
		for i := 0; i < 10; i++ {
			cc.OnCNP(0, &netsim.Packet{})
			cc.OnAck(0, &netsim.Packet{AckSeq: seq - int64((9-i)*1000)})
		}
	}
	if cc.Alpha() < 0.5 {
		t.Errorf("alpha = %v after sustained marking, want high", cc.Alpha())
	}
	if cc.Cwnd() >= w0 {
		t.Errorf("cwnd did not shrink: %v >= %v", cc.Cwnd(), w0)
	}
	if cc.Cwnd() < DefaultConfig(40, 10*sim.Microsecond).MinCwnd {
		t.Error("cwnd under floor")
	}
	if cc.Decreases == 0 {
		t.Error("no decrease events")
	}
}

func TestWindowBlocksWhenFull(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	h := net.AddHost("h")
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	net.Connect(h, sw, netsim.Gbps(40), 1500)
	cc := NewFlowCC(h, DefaultConfig(40, 10*sim.Microsecond))
	seq := int64(0)
	for {
		_, ok := cc.Allow(0, 1000)
		if !ok {
			break
		}
		cc.OnSent(0, &netsim.Packet{Seq: seq, Payload: 1000, Size: 1048})
		seq += 1000
		if seq > 100_000_000 {
			t.Fatal("window never closed")
		}
	}
	cc.OnAck(0, &netsim.Packet{AckSeq: 5000})
	if _, ok := cc.Allow(0, 1000); !ok {
		t.Error("still blocked after acks")
	}
}

func TestEndToEndStableShallowQueue(t *testing.T) {
	// Two DCTCP flows share a bottleneck: the queue must hover around
	// the marking threshold K (not deeper), with high utilization —
	// DCTCP's signature behaviour.
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	a2 := net.AddHost("a2")
	b := net.AddHost("b")
	net.Connect(a, sw, netsim.Gbps(40), 1500)
	net.Connect(a2, sw, netsim.Gbps(40), 1500)
	port, _ := net.Connect(sw, b, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	cfg := DefaultConfig(40, 8*sim.Microsecond)
	port.CC = NewMarker(cfg)
	b.Receiver = NewReceiver(b)
	f1 := net.StartFlow(a, b, netsim.FlowConfig{Size: -1, AckEvery: 1, CC: NewFlowCC(a, cfg)})
	f2 := net.StartFlow(a2, b, netsim.FlowConfig{Size: -1, AckEvery: 1, CC: NewFlowCC(a2, cfg)})
	engine.RunUntil(10 * sim.Millisecond)
	mid := f1.DeliveredBytes() + f2.DeliveredBytes()
	var qSum, qN float64
	tick := engine.NewTicker(100*sim.Microsecond, func() {
		qSum += float64(port.DataQueueBytes())
		qN++
	})
	engine.RunUntil(20 * sim.Millisecond)
	tick.Stop()
	gbps := float64(f1.DeliveredBytes()+f2.DeliveredBytes()-mid) * 8 / 0.010 / 1e9
	if gbps < 30 {
		t.Errorf("aggregate throughput %.1f Gb/s, want near line rate", gbps)
	}
	avgQ := qSum / qN
	if avgQ > float64(cfg.MarkBytes)*3 {
		t.Errorf("avg queue %.0f runaway (K=%d)", avgQ, cfg.MarkBytes)
	}
	if avgQ < 1000 {
		t.Errorf("avg queue %.0f: marking loop apparently inactive", avgQ)
	}
	f1.Stop()
	f2.Stop()
}
