package topology

import (
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Partition maps every node of a built network onto one of K shards for
// the parallel event engine (sim.Group). The cut respects the lookahead
// contract: every link crossing shards keeps at least Lookahead() of
// propagation delay, so conservative windowed execution never delivers a
// packet into a shard's past.
type Partition struct {
	K      int
	Assign []int // shard per NodeID, len == net.NodeCount()

	lookahead sim.Time
}

// Lookahead returns the minimum propagation delay over cross-shard
// links — the window width the engine group may run ahead by. A
// single-shard partition has no cross-shard links; it reports LinkDelay
// so NewGroup still gets a positive window.
func (p Partition) Lookahead() sim.Time { return p.lookahead }

// Apply shards the network onto a fresh engine group built over its
// existing engine and returns the group. Call after the topology is
// complete and before any protocol attachments or traffic.
func (p Partition) Apply(net *netsim.Network) *sim.Group {
	g := sim.NewGroup(net.Engine, p.K, p.lookahead)
	net.EnableSharding(g, p.Assign)
	return g
}

// finish computes the cut's lookahead from the assignment.
func finish(net *netsim.Network, k int, assign []int) Partition {
	la := sim.Time(0)
	for id := range assign {
		for _, port := range net.Node(netsim.NodeID(id)).Ports() {
			if assign[port.PeerNode.ID()] == assign[id] {
				continue
			}
			if la == 0 || port.PropDelay < la {
				la = port.PropDelay
			}
		}
	}
	if la == 0 {
		// No cross-shard links (k == 1, or a degenerate cut): any positive
		// window works; the fabric's uniform link delay is the natural one.
		la = LinkDelay
	}
	return Partition{K: k, Assign: assign, lookahead: la}
}

// PartitionFatTree cuts a fat-tree pod-aligned: each edge switch and the
// hosts behind it form one pod, pods are dealt round-robin onto shards,
// and core switches are spread round-robin as well. Host↔edge links are
// therefore never cut — only edge↔core links cross shards, and those all
// carry the fabric's full propagation delay. k is clamped to the number
// of edge switches (one pod is the finest indivisible unit); k <= 1
// collapses to a single shard.
func PartitionFatTree(ft *FatTree, k int) Partition {
	if k > len(ft.Edges) {
		k = len(ft.Edges)
	}
	if k < 1 {
		k = 1
	}
	assign := make([]int, ft.Net.NodeCount())
	for i, core := range ft.Cores {
		assign[core.ID()] = i % k
	}
	for e, edge := range ft.Edges {
		sh := e % k
		assign[edge.ID()] = sh
		for _, h := range ft.Hosts[e] {
			assign[h.ID()] = sh
		}
	}
	return finish(ft.Net, k, assign)
}

// PartitionAuto cuts an arbitrary built network switch-aligned: switches
// are dealt round-robin onto shards in ID order and every host follows
// the switch its NIC connects to, so host↔switch links are never cut.
// k is clamped to the number of switches; degenerate topologies (a
// single switch — the star, for instance) collapse to one shard.
func PartitionAuto(net *netsim.Network, k int) Partition {
	sws := net.Switches()
	if k > len(sws) {
		k = len(sws)
	}
	if k < 1 {
		k = 1
	}
	assign := make([]int, net.NodeCount())
	for i, sw := range sws {
		assign[sw.ID()] = i % k
	}
	for _, h := range net.Hosts() {
		if nic := h.NIC(); nic != nil && nic.PeerNode != nil {
			assign[h.ID()] = assign[nic.PeerNode.ID()]
		}
	}
	return finish(net, k, assign)
}
