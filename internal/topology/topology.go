// Package topology builds the four network topologies of the paper's
// evaluation: the single-bottleneck star (§6.1 micro-benchmarks), the
// multi-bottleneck network of Fig. 10, the asymmetric 2:1 oversubscribed
// network (§6.1), and the two-level fat-tree of §6.3.
package topology

import (
	"fmt"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// LinkDelay is the paper's per-link propagation delay (1.5 µs, §6).
const LinkDelay = 1500 * sim.Nanosecond

// PFCThreshold returns the paper's PFC Xoff watermark for a fabric built
// from links of the given rate: 500 KB at 40 Gb/s, 800 KB at 100 Gb/s.
func PFCThreshold(rate netsim.Rate) int {
	if rate.Gbps() >= 100 {
		return 800 * netsim.KB
	}
	return 500 * netsim.KB
}

// Buffer returns a lossless PFC-enabled buffer configuration for switches
// whose ingress links run at rate.
func Buffer(rate netsim.Rate) netsim.BufferConfig {
	return netsim.BufferConfig{
		PFCEnabled:   true,
		PFCThreshold: PFCThreshold(rate),
	}
}

// Star is the §6.1 micro-benchmark topology: N sources and one
// destination on a single switch; the switch-to-destination link is the
// bottleneck.
type Star struct {
	Net        *netsim.Network
	Switch     *netsim.Switch
	Sources    []*netsim.Host
	Dst        *netsim.Host
	Bottleneck *netsim.Port // switch egress toward Dst
	LinkRate   netsim.Rate
}

// BuildStar constructs a star with n sources on links of the given rate.
func BuildStar(engine *sim.Engine, seed int64, n int, rate netsim.Rate) *Star {
	net := netsim.New(engine, seed)
	sw := net.AddSwitch("s0", Buffer(rate))
	st := &Star{Net: net, Switch: sw, LinkRate: rate}
	for i := 0; i < n; i++ {
		h := net.AddHost(fmt.Sprintf("src%d", i))
		net.Connect(h, sw, rate, LinkDelay)
		st.Sources = append(st.Sources, h)
	}
	st.Dst = net.AddHost("dst")
	st.Bottleneck, _ = net.Connect(sw, st.Dst, rate, LinkDelay)
	net.ComputeRoutes()
	return st
}

// MultiBottleneck is the Fig. 10 topology: sources A0..A4 and B5,
// destinations B0..B4, switches S0 and S1. D0 (A0→B0) crosses both the
// S0→S1 inter-switch link and the S1→B0 access link; D5 (B5→B0) only the
// access link; D1..D4 only the inter-switch link.
type MultiBottleneck struct {
	Net    *netsim.Network
	S0, S1 *netsim.Switch
	A      []*netsim.Host // A0..A4 behind S0
	B5     *netsim.Host   // source behind S1
	B      []*netsim.Host // B0..B4 behind S1
	Inter  *netsim.Port   // S0 egress toward S1 (the 40G CP)
	Access *netsim.Port   // S1 egress toward B0 (the 10G CP)
}

// BuildMultiBottleneck constructs Fig. 10: 10 Gb/s access links and a
// 40 Gb/s inter-switch link.
func BuildMultiBottleneck(engine *sim.Engine, seed int64) *MultiBottleneck {
	net := netsim.New(engine, seed)
	access := netsim.Gbps(10)
	inter := netsim.Gbps(40)
	s0 := net.AddSwitch("S0", Buffer(inter))
	s1 := net.AddSwitch("S1", Buffer(inter))
	m := &MultiBottleneck{Net: net, S0: s0, S1: s1}
	for i := 0; i < 5; i++ {
		h := net.AddHost(fmt.Sprintf("A%d", i))
		net.Connect(h, s0, access, LinkDelay)
		m.A = append(m.A, h)
	}
	m.B5 = net.AddHost("B5")
	net.Connect(m.B5, s1, access, LinkDelay)
	for i := 0; i < 5; i++ {
		h := net.AddHost(fmt.Sprintf("B%d", i))
		var sp *netsim.Port
		sp, _ = net.Connect(s1, h, access, LinkDelay)
		if i == 0 {
			m.Access = sp
		}
		m.B = append(m.B, h)
	}
	m.Inter, _ = net.Connect(s0, s1, inter, LinkDelay)
	net.ComputeRoutes()
	return m
}

// Asymmetric is the §6.1 asymmetric topology: 5 sources on 40 Gb/s links
// behind S0 and 2 sources on 100 Gb/s links behind S1, all feeding one
// destination behind S2 over 100 Gb/s links (2:1 oversubscription at the
// S2→B0 bottleneck).
type Asymmetric struct {
	Net        *netsim.Network
	S0, S1, S2 *netsim.Switch
	Slow       []*netsim.Host // A0..A4, 40G access
	Fast       []*netsim.Host // A5..A6, 100G access
	Dst        *netsim.Host
	Bottleneck *netsim.Port // S2 egress toward B0
}

// BuildAsymmetric constructs the asymmetric topology.
func BuildAsymmetric(engine *sim.Engine, seed int64) *Asymmetric {
	net := netsim.New(engine, seed)
	g40 := netsim.Gbps(40)
	g100 := netsim.Gbps(100)
	s0 := net.AddSwitch("S0", Buffer(g40))
	s1 := net.AddSwitch("S1", Buffer(g100))
	s2 := net.AddSwitch("S2", Buffer(g100))
	a := &Asymmetric{Net: net, S0: s0, S1: s1, S2: s2}
	for i := 0; i < 5; i++ {
		h := net.AddHost(fmt.Sprintf("A%d", i))
		net.Connect(h, s0, g40, LinkDelay)
		a.Slow = append(a.Slow, h)
	}
	for i := 5; i < 7; i++ {
		h := net.AddHost(fmt.Sprintf("A%d", i))
		net.Connect(h, s1, g100, LinkDelay)
		a.Fast = append(a.Fast, h)
	}
	net.Connect(s0, s2, g100, LinkDelay)
	net.Connect(s1, s2, g100, LinkDelay)
	a.Dst = net.AddHost("B0")
	a.Bottleneck, _ = net.Connect(s2, a.Dst, g100, LinkDelay)
	net.ComputeRoutes()
	return a
}

// FatTree is the §6.3 large-scale topology: a two-level fat-tree with
// core switches, edge switches, and hosts behind each edge. Each
// edge-core pair is connected by LinksPerPair parallel 100 Gb/s links
// (ECMP spreads flows across them); hosts attach at 40 Gb/s (2:1
// oversubscription with the paper's counts).
type FatTree struct {
	Net       *netsim.Network
	Cores     []*netsim.Switch
	Edges     []*netsim.Switch
	Hosts     [][]*netsim.Host // indexed by edge
	HostRate  netsim.Rate
	CoreRate  netsim.Rate
	AllPorts  []*netsim.Port // every switch egress port (for CC attachment)
	CorePorts []*netsim.Port // core egress ports (down toward edges)
	EdgeUp    []*netsim.Port // edge egress ports toward cores
	EdgeDown  []*netsim.Port // edge egress ports toward hosts
}

// FatTreeConfig sizes a fat-tree. The paper uses 3 cores, 3 edges, 30
// hosts per edge, and 2 parallel 100G core links per edge-core pair; the
// default benches shrink the host count to stay laptop-friendly while
// keeping the 2:1 oversubscription.
type FatTreeConfig struct {
	Cores        int
	Edges        int
	HostsPerEdge int
	LinksPerPair int
	HostRate     netsim.Rate
	CoreRate     netsim.Rate
}

// PaperFatTree returns the §6.3 configuration.
func PaperFatTree() FatTreeConfig {
	return FatTreeConfig{
		Cores:        3,
		Edges:        3,
		HostsPerEdge: 30,
		LinksPerPair: 2,
		HostRate:     netsim.Gbps(40),
		CoreRate:     netsim.Gbps(100),
	}
}

// ScaledFatTree returns the paper's fat-tree shrunk to hostsPerEdge hosts
// while preserving the 2:1 oversubscription ratio by scaling core links.
func ScaledFatTree(hostsPerEdge int) FatTreeConfig {
	cfg := PaperFatTree()
	cfg.HostsPerEdge = hostsPerEdge
	// Paper: 30 hosts × 40G = 1200G offered; 3 cores × 2 × 100G = 600G up.
	// Keep uplink capacity = half the host capacity.
	up := float64(hostsPerEdge) * cfg.HostRate.Gbps() / 2
	perLink := up / float64(cfg.Cores*cfg.LinksPerPair)
	cfg.CoreRate = netsim.Gbps(perLink)
	return cfg
}

// BuildFatTree constructs the fat-tree.
func BuildFatTree(engine *sim.Engine, seed int64, cfg FatTreeConfig) *FatTree {
	net := netsim.New(engine, seed)
	ft := &FatTree{
		Net:      net,
		HostRate: cfg.HostRate,
		CoreRate: cfg.CoreRate,
	}
	for i := 0; i < cfg.Cores; i++ {
		ft.Cores = append(ft.Cores, net.AddSwitch(fmt.Sprintf("core%d", i), Buffer(cfg.CoreRate)))
	}
	for e := 0; e < cfg.Edges; e++ {
		edge := net.AddSwitch(fmt.Sprintf("edge%d", e), Buffer(cfg.HostRate))
		ft.Edges = append(ft.Edges, edge)
		var hosts []*netsim.Host
		for hIdx := 0; hIdx < cfg.HostsPerEdge; hIdx++ {
			h := net.AddHost(fmt.Sprintf("h%d_%d", e, hIdx))
			down, _ := net.Connect(edge, h, cfg.HostRate, LinkDelay)
			ft.EdgeDown = append(ft.EdgeDown, down)
			hosts = append(hosts, h)
		}
		ft.Hosts = append(ft.Hosts, hosts)
		for _, core := range ft.Cores {
			for l := 0; l < cfg.LinksPerPair; l++ {
				up, downP := net.Connect(edge, core, cfg.CoreRate, LinkDelay)
				ft.EdgeUp = append(ft.EdgeUp, up)
				ft.CorePorts = append(ft.CorePorts, downP)
			}
		}
	}
	net.ComputeRoutes()
	ft.AllPorts = append(ft.AllPorts, ft.CorePorts...)
	ft.AllPorts = append(ft.AllPorts, ft.EdgeUp...)
	ft.AllPorts = append(ft.AllPorts, ft.EdgeDown...)
	return ft
}

// SetBuffers overrides every switch's buffer configuration (used by the
// unlimited-buffer and lossy experiments).
func (ft *FatTree) SetBuffers(cfg netsim.BufferConfig) {
	for _, s := range ft.Net.Switches() {
		s.Buffer = cfg
	}
}
