package topology

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// TestPartitionFatTreePodAligned: pods are dealt onto shards in balanced
// round-robin fashion and no host↔edge (intra-pod) link is ever cut.
func TestPartitionFatTreePodAligned(t *testing.T) {
	cfg := FatTreeConfig{
		Cores: 4, Edges: 8, HostsPerEdge: 6, LinksPerPair: 2,
		HostRate: netsim.Gbps(40), CoreRate: netsim.Gbps(100),
	}
	for _, k := range []int{1, 2, 4, 8} {
		ft := BuildFatTree(sim.New(), 1, cfg)
		p := PartitionFatTree(ft, k)
		if p.K != k {
			t.Fatalf("k=%d: partition K = %d", k, p.K)
		}
		if len(p.Assign) != ft.Net.NodeCount() {
			t.Fatalf("k=%d: assignment covers %d of %d nodes", k, len(p.Assign), ft.Net.NodeCount())
		}

		// Balance: pods per shard differ by at most one.
		podsPer := make([]int, k)
		for e, edge := range ft.Edges {
			sh := p.Assign[edge.ID()]
			if sh != e%k {
				t.Errorf("k=%d: edge %d on shard %d, want round-robin %d", k, e, sh, e%k)
			}
			podsPer[sh]++
		}
		min, max := podsPer[0], podsPer[0]
		for _, n := range podsPer {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("k=%d: unbalanced pods per shard %v", k, podsPer)
		}

		// Pod alignment: every host shares its edge switch's shard, so
		// host↔edge links are intra-shard by construction.
		for e, edge := range ft.Edges {
			for _, h := range ft.Hosts[e] {
				if p.Assign[h.ID()] != p.Assign[edge.ID()] {
					t.Errorf("k=%d: host %s split from its edge", k, h.Name)
				}
			}
		}

		// No intra-pod cross-shard links anywhere: walk every port and
		// require cut links to be edge↔core.
		for id := 0; id < ft.Net.NodeCount(); id++ {
			node := ft.Net.Node(netsim.NodeID(id))
			for _, port := range node.Ports() {
				if p.Assign[id] == p.Assign[port.PeerNode.ID()] {
					continue
				}
				_, aSwitch := node.(*netsim.Switch)
				_, bSwitch := port.PeerNode.(*netsim.Switch)
				if !aSwitch || !bSwitch {
					t.Errorf("k=%d: cross-shard link touches a host (%T ↔ %T)",
						k, node, port.PeerNode)
				}
			}
		}

		// Lookahead: all links carry LinkDelay, so any cut reports it.
		if p.Lookahead() != LinkDelay {
			t.Errorf("k=%d: lookahead %v, want %v", k, p.Lookahead(), LinkDelay)
		}
	}
}

// TestPartitionFatTreeClamps: more shards than pods clamps to the pod
// count; k <= 0 collapses to one shard.
func TestPartitionFatTreeClamps(t *testing.T) {
	ft := BuildFatTree(sim.New(), 1, FatTreeConfig{
		Cores: 2, Edges: 3, HostsPerEdge: 2, LinksPerPair: 1,
		HostRate: netsim.Gbps(40), CoreRate: netsim.Gbps(40),
	})
	if p := PartitionFatTree(ft, 16); p.K != 3 {
		t.Errorf("k=16 on 3 edges: K = %d, want 3", p.K)
	}
	if p := PartitionFatTree(ft, 0); p.K != 1 {
		t.Errorf("k=0: K = %d, want 1", p.K)
	}
}

// TestPartitionAutoStarCollapses: a single-switch topology has nothing
// to cut — any requested k collapses to one shard and the whole fabric
// lands on it.
func TestPartitionAutoStarCollapses(t *testing.T) {
	st := BuildStar(sim.New(), 1, 8, netsim.Gbps(40))
	p := PartitionAuto(st.Net, 8)
	if p.K != 1 {
		t.Fatalf("star: K = %d, want 1", p.K)
	}
	for id, sh := range p.Assign {
		if sh != 0 {
			t.Errorf("star: node %d on shard %d", id, sh)
		}
	}
}

// TestPartitionAutoSwitchAligned: hosts follow their switch, and the
// multi-bottleneck topology splits across two shards without cutting any
// host link.
func TestPartitionAutoSwitchAligned(t *testing.T) {
	m := BuildMultiBottleneck(sim.New(), 1)
	p := PartitionAuto(m.Net, 2)
	if p.K != 2 {
		t.Fatalf("K = %d, want 2", p.K)
	}
	if p.Assign[m.S0.ID()] == p.Assign[m.S1.ID()] {
		t.Error("both switches on one shard")
	}
	for _, h := range m.Net.Hosts() {
		if p.Assign[h.ID()] != p.Assign[h.NIC().PeerNode.ID()] {
			t.Errorf("host %s split from its switch", h.Name)
		}
	}
}

// TestPartitionApplyRunsSharded: Apply builds a group over the fabric's
// engine and the network actually runs on it.
func TestPartitionApplyRunsSharded(t *testing.T) {
	ft := BuildFatTree(sim.New(), 1, FatTreeConfig{
		Cores: 2, Edges: 4, HostsPerEdge: 2, LinksPerPair: 1,
		HostRate: netsim.Gbps(40), CoreRate: netsim.Gbps(40),
	})
	g := PartitionFatTree(ft, 4).Apply(ft.Net)
	if !ft.Net.Sharded() || ft.Net.Group() != g {
		t.Fatal("network not sharded after Apply")
	}
	if g.Shards() != 4 || g.Lookahead() != LinkDelay {
		t.Fatalf("group shards=%d lookahead=%v", g.Shards(), g.Lookahead())
	}
	src := ft.Hosts[0][0]
	dst := ft.Hosts[3][1]
	f := ft.Net.StartFlow(src, dst, netsim.FlowConfig{Size: 256 * netsim.KB})
	ft.Net.Engine.Run()
	if !f.Done() {
		t.Errorf("cross-shard flow did not complete (delivered %d)", f.DeliveredBytes())
	}
}
