package topology

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestPFCThresholds(t *testing.T) {
	if PFCThreshold(netsim.Gbps(40)) != 500*netsim.KB {
		t.Error("40G threshold != 500KB")
	}
	if PFCThreshold(netsim.Gbps(100)) != 800*netsim.KB {
		t.Error("100G threshold != 800KB")
	}
	if PFCThreshold(netsim.Gbps(10)) != 500*netsim.KB {
		t.Error("10G threshold != 500KB")
	}
}

func TestBuildStarShape(t *testing.T) {
	engine := sim.New()
	st := BuildStar(engine, 1, 5, netsim.Gbps(40))
	if len(st.Sources) != 5 {
		t.Fatalf("sources = %d", len(st.Sources))
	}
	if len(st.Net.Hosts()) != 6 || len(st.Net.Switches()) != 1 {
		t.Errorf("nodes = %d hosts, %d switches", len(st.Net.Hosts()), len(st.Net.Switches()))
	}
	if st.Bottleneck.PeerNode != netsim.Node(st.Dst) {
		t.Error("bottleneck port does not face the destination")
	}
	if !st.Switch.Buffer.PFCEnabled {
		t.Error("PFC not enabled")
	}
	// End to end sanity.
	f := st.Net.StartFlow(st.Sources[0], st.Dst, netsim.FlowConfig{Size: 10000})
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Error("flow across the star failed")
	}
}

func TestBuildMultiBottleneckShape(t *testing.T) {
	engine := sim.New()
	m := BuildMultiBottleneck(engine, 1)
	if len(m.A) != 5 || len(m.B) != 5 {
		t.Fatalf("A=%d B=%d", len(m.A), len(m.B))
	}
	if m.Inter.LinkRate != netsim.Gbps(40) {
		t.Errorf("inter-switch rate = %v", m.Inter.LinkRate)
	}
	if m.Access.LinkRate != netsim.Gbps(10) {
		t.Errorf("access rate = %v", m.Access.LinkRate)
	}
	if m.Inter.PeerNode != netsim.Node(m.S1) {
		t.Error("inter port does not face S1")
	}
	if m.Access.PeerNode != netsim.Node(m.B[0]) {
		t.Error("access port does not face B0")
	}
	// D0 (A0->B0) must traverse both CPs: check hop count via flow.
	f := m.Net.StartFlow(m.A[0], m.B[0], netsim.FlowConfig{Size: 5000})
	f5 := m.Net.StartFlow(m.B5, m.B[0], netsim.FlowConfig{Size: 5000})
	engine.RunUntil(sim.Millisecond)
	if !f.Done() || !f5.Done() {
		t.Error("multi-bottleneck flows failed")
	}
}

func TestBuildAsymmetricShape(t *testing.T) {
	engine := sim.New()
	a := BuildAsymmetric(engine, 1)
	if len(a.Slow) != 5 || len(a.Fast) != 2 {
		t.Fatalf("slow=%d fast=%d", len(a.Slow), len(a.Fast))
	}
	if a.Slow[0].NIC().LinkRate != netsim.Gbps(40) {
		t.Error("slow access not 40G")
	}
	if a.Fast[0].NIC().LinkRate != netsim.Gbps(100) {
		t.Error("fast access not 100G")
	}
	if a.Bottleneck.LinkRate != netsim.Gbps(100) {
		t.Error("bottleneck not 100G")
	}
	for _, src := range append(append([]*netsim.Host{}, a.Slow...), a.Fast...) {
		f := a.Net.StartFlow(src, a.Dst, netsim.FlowConfig{Size: 2000})
		engine.RunUntil(engine.Now() + sim.Millisecond)
		if !f.Done() {
			t.Fatalf("flow from %s failed", src.Name)
		}
	}
}

func TestPaperFatTreeShape(t *testing.T) {
	engine := sim.New()
	ft := BuildFatTree(engine, 1, PaperFatTree())
	if len(ft.Cores) != 3 || len(ft.Edges) != 3 {
		t.Fatalf("cores=%d edges=%d", len(ft.Cores), len(ft.Edges))
	}
	if len(ft.Hosts) != 3 || len(ft.Hosts[0]) != 30 {
		t.Fatalf("hosts per edge = %d", len(ft.Hosts[0]))
	}
	// 3 edges x 3 cores x 2 links.
	if len(ft.EdgeUp) != 18 || len(ft.CorePorts) != 18 {
		t.Errorf("uplinks = %d, core ports = %d, want 18", len(ft.EdgeUp), len(ft.CorePorts))
	}
	if len(ft.EdgeDown) != 90 {
		t.Errorf("downlinks = %d, want 90", len(ft.EdgeDown))
	}
	if len(ft.AllPorts) != 18+18+90 {
		t.Errorf("AllPorts = %d", len(ft.AllPorts))
	}
	// ECMP: an edge switch must see 6 equal-cost uplink ports toward a
	// host behind another edge.
	f := ft.Net.StartFlow(ft.Hosts[0][0], ft.Hosts[2][7], netsim.FlowConfig{Size: 4000})
	engine.RunUntil(sim.Millisecond)
	if !f.Done() {
		t.Error("cross-edge flow failed")
	}
}

func TestScaledFatTreeKeepsOversubscription(t *testing.T) {
	cfg := ScaledFatTree(8)
	hostCap := float64(cfg.HostsPerEdge) * cfg.HostRate.Gbps()
	upCap := float64(cfg.Cores*cfg.LinksPerPair) * cfg.CoreRate.Gbps()
	if hostCap/upCap != 2 {
		t.Errorf("oversubscription = %.2f, want 2", hostCap/upCap)
	}
}

func TestFatTreeECMPBalance(t *testing.T) {
	engine := sim.New()
	ft := BuildFatTree(engine, 1, ScaledFatTree(4))
	// Many flows from edge0 to edge2: uplink utilization should spread.
	for i := 0; i < 64; i++ {
		src := ft.Hosts[0][i%4]
		dst := ft.Hosts[2][(i+1)%4]
		ft.Net.StartFlow(src, dst, netsim.FlowConfig{Size: 200_000})
	}
	engine.RunUntil(20 * sim.Millisecond)
	used := 0
	for _, p := range ft.EdgeUp[:6] { // edge0's uplinks
		if p.TxDataBytes > 0 {
			used++
		}
	}
	if used < 4 {
		t.Errorf("only %d of 6 uplinks carried traffic; ECMP not spreading", used)
	}
}

func TestSetBuffers(t *testing.T) {
	engine := sim.New()
	ft := BuildFatTree(engine, 1, ScaledFatTree(2))
	ft.SetBuffers(netsim.BufferConfig{TotalBytes: 1234})
	for _, sw := range ft.Net.Switches() {
		if sw.Buffer.TotalBytes != 1234 || sw.Buffer.PFCEnabled {
			t.Fatalf("buffer override not applied to %s", sw.Name)
		}
	}
}
