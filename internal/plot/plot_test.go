package plot

import (
	"strings"
	"testing"

	"rocc/internal/stats"
)

func mkSeries(name string, vals ...float64) *stats.Series {
	s := &stats.Series{Name: name}
	for i, v := range vals {
		s.Add(float64(i), v)
	}
	return s
}

func TestLineBasics(t *testing.T) {
	out := Line("queue", 40, 8, mkSeries("q", 0, 50, 100, 150, 150, 150))
	if !strings.Contains(out, "queue") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs")
	}
	if !strings.Contains(out, "150") {
		t.Error("max axis label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + labels
	if len(lines) != 1+8+1+1 {
		t.Errorf("chart has %d lines", len(lines))
	}
}

func TestLineEmpty(t *testing.T) {
	out := Line("x", 40, 8, &stats.Series{Name: "empty"})
	if !strings.Contains(out, "no data") {
		t.Error("empty chart not flagged")
	}
}

func TestLineLegendForMultipleSeries(t *testing.T) {
	out := Line("two", 30, 6, mkSeries("a", 1, 2), mkSeries("b", 2, 1))
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestLineClampsTinyDimensions(t *testing.T) {
	out := Line("t", 1, 1, mkSeries("a", 1, 2, 3))
	if len(out) == 0 {
		t.Error("clamped chart empty")
	}
}

func TestLineNegativeSeries(t *testing.T) {
	// The y-axis must follow the data below zero: with values in
	// [-10, 10] the bottom label is the true minimum, and the -10 point
	// lands on the bottom row rather than being clamped onto the top.
	out := Line("signed", 40, 8, mkSeries("a", -10, 0, 10))
	if !strings.Contains(out, "-10") {
		t.Errorf("min axis label missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	top, bottom := lines[1], lines[8]
	if !strings.Contains(bottom, "*") {
		t.Errorf("minimum not drawn on bottom row:\n%s", out)
	}
	if strings.Count(top, "*") != 1 {
		t.Errorf("top row should hold only the maximum:\n%s", out)
	}
}

func TestLineNonNegativeAnchorsAtZero(t *testing.T) {
	// Positive-only data keeps the zero baseline (queue depths and rates
	// read against zero, not against their own minimum).
	out := Line("q", 40, 8, mkSeries("a", 5, 10))
	if !strings.Contains(out, "      0 ") {
		t.Errorf("zero baseline lost:\n%s", out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	// A flat series must not divide by zero.
	out := Line("flat", 20, 5, mkSeries("a", 5, 5, 5))
	if !strings.Contains(out, "*") {
		t.Error("flat series not drawn")
	}
}

func TestBars(t *testing.T) {
	out := Bars("pfc", 20, "frames", []Bar{
		{Label: "DCQCN", Value: 700},
		{Label: "RoCC", Value: 100},
	})
	if !strings.Contains(out, "DCQCN") || !strings.Contains(out, "RoCC") {
		t.Error("labels missing")
	}
	dcqcnLine, roccLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "DCQCN") {
			dcqcnLine = l
		}
		if strings.Contains(l, "RoCC") {
			roccLine = l
		}
	}
	if strings.Count(dcqcnLine, "=") <= strings.Count(roccLine, "=") {
		t.Error("bars not proportional")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("x", 20, "", []Bar{{Label: "a", Value: 0}})
	if !strings.Contains(out, "a") {
		t.Error("zero-value bar dropped")
	}
}
