// Package plot renders time series and bar groups as ASCII charts for
// cmd/roccsim and the examples, so the paper's figures can be eyeballed
// straight from a terminal.
package plot

import (
	"fmt"
	"math"
	"strings"

	"rocc/internal/stats"
)

// Line renders one or more series as an ASCII line chart of the given
// width and height. Series are drawn with distinct glyphs; a legend and
// axis labels are appended.
func Line(title string, width, height int, series ...*stats.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}

	// Bounds across all series.
	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			points++
			minT = math.Min(minT, p.T)
			maxT = math.Max(maxT, p.T)
			minV = math.Min(minV, p.V)
			maxV = math.Max(maxV, p.V)
		}
	}
	if points == 0 {
		return title + "\n(no data)\n"
	}
	// Keep the y-axis anchored at zero for non-negative data (rates,
	// queue depths read better against a zero baseline), but follow the
	// data down when a series actually goes negative.
	if minV > 0 {
		minV = 0
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	if maxT <= minT {
		maxT = minT + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x := int(float64(width-1) * (p.T - minT) / (maxT - minT))
			y := int(float64(height-1) * (p.V - minV) / (maxV - minV))
			row := height - 1 - y
			grid[row][x] = g
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.4g ", maxV)
		case height - 1:
			label = fmt.Sprintf("%7.4g ", minV)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.4g%*.4g\n", minT, width-9, maxT)
	if len(series) > 1 {
		b.WriteString("        ")
		for si, s := range series {
			fmt.Fprintf(&b, "%c=%s  ", glyphs[si%len(glyphs)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bar is one labeled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart scaled to the given width.
func Bars(title string, width int, unit string, bars []Bar) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(float64(width) * b.Value / max)
		}
		fmt.Fprintf(&sb, "  %-*s |%s %.4g %s\n", labelW, b.Label, strings.Repeat("=", n), b.Value, unit)
	}
	return sb.String()
}
