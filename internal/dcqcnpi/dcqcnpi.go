// Package dcqcnpi implements DCQCN+PI ([45]: Zhu et al., CoNEXT 2016),
// the variant the RoCC paper cites as evidence for PI control: DCQCN's
// endpoints are kept unchanged, but the switch's RED-style marking curve
// is replaced by a PIE-like PI controller that adapts the marking
// probability from the queue's deviation from a reference and its trend.
package dcqcnpi

import (
	"rocc/internal/dcqcn"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Config holds the PI marking parameters.
type Config struct {
	QrefBytes int      // reference queue length
	A         float64  // proportional gain on (Q-Qref)/Qref per update
	B         float64  // derivative gain on (Q-Qold)/Qref per update
	T         sim.Time // update interval
}

// DefaultConfig returns PI marking parameters for a gbps egress link,
// using the same reference queue the RoCC CP would target.
func DefaultConfig(gbps float64) Config {
	qref := 150 * netsim.KB
	if gbps > 40 {
		qref = 300 * netsim.KB
	}
	return Config{
		QrefBytes: qref,
		A:         0.01,
		B:         0.1,
		T:         40 * sim.Microsecond,
	}
}

// Marker is the PI-controlled ECN marker for one egress port. Attach via
// Port.CC; endpoints use dcqcn.Receiver and dcqcn.FlowCC unchanged.
type Marker struct {
	cfg  Config
	port *netsim.Port
	rand *sim.Rand
	tick *sim.Ticker

	p    float64 // marking probability
	qold int

	Marked uint64
}

// Attach installs a PI marker on the given egress port and starts its
// update timer.
func Attach(net *netsim.Network, port *netsim.Port, cfg Config, rand *sim.Rand) *Marker {
	m := &Marker{cfg: cfg, port: port, rand: rand}
	port.CC = m
	m.tick = port.Engine().NewTicker(cfg.T, m.update)
	return m
}

// Stop cancels the update timer.
func (m *Marker) Stop() { m.tick.Stop() }

// MarkProbability returns the current marking probability.
func (m *Marker) MarkProbability() float64 { return m.p }

// update is the PI iteration: p tracks queue error and queue growth.
func (m *Marker) update() {
	q := m.port.DataQueueBytes()
	ref := float64(m.cfg.QrefBytes)
	m.p += m.cfg.A*(float64(q)-ref)/ref + m.cfg.B*float64(q-m.qold)/ref
	if m.p < 0 {
		m.p = 0
	}
	if m.p > 1 {
		m.p = 1
	}
	m.qold = q
}

// OnEnqueue implements netsim.PortCC: mark with the controlled probability.
func (m *Marker) OnEnqueue(now sim.Time, pkt *netsim.Packet, qlen int) {
	if !pkt.ECT || m.p <= 0 {
		return
	}
	if m.rand.Float64() < m.p {
		pkt.CE = true
		m.Marked++
	}
}

// OnDequeue implements netsim.PortCC.
func (m *Marker) OnDequeue(now sim.Time, pkt *netsim.Packet, qlen int) {}

// DefaultEndpoint returns the DCQCN endpoint configuration to pair with
// the PI marker (unchanged endpoints, per [45]).
func DefaultEndpoint(gbps float64) dcqcn.Config { return dcqcn.DefaultConfig(gbps) }
