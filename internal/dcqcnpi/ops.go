package dcqcnpi

import (
	"rocc/internal/dcqcn"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

// Ops is DCQCN+PI's netsim.CongestionOps descriptor: the PI marker on
// switch egress ports with DCQCN's unchanged endpoints (receiver CNPs and
// the g/α rate controller).
type Ops struct {
	// Rand drives probabilistic marking; shared across this fabric's
	// markers.
	Rand *sim.Rand

	// Config maps a port link rate to PI marker parameters. Nil selects
	// DefaultConfig.
	Config func(gbps float64) Config

	// Endpoint maps a NIC rate to the DCQCN endpoint parameters. Nil
	// selects DefaultEndpoint.
	Endpoint func(gbps float64) dcqcn.Config
}

func (o *Ops) config(gbps float64) Config {
	if o.Config != nil {
		return o.Config(gbps)
	}
	return DefaultConfig(gbps)
}

func (o *Ops) endpoint(gbps float64) dcqcn.Config {
	if o.Endpoint != nil {
		return o.Endpoint(gbps)
	}
	return DefaultEndpoint(gbps)
}

// Name implements netsim.CongestionOps.
func (o *Ops) Name() string { return "DCQCN+PI" }

// Features implements netsim.CongestionOps.
func (o *Ops) Features() netsim.CCFeatures {
	return netsim.CCFeatures{UsesCNP: true, CNPClass: netsim.ClassCtrl}
}

// AttachPort implements netsim.CongestionOps: install the PI marker and
// start its probability-update timer.
func (o *Ops) AttachPort(net *netsim.Network, sw *netsim.Switch, port *netsim.Port) netsim.PortCC {
	r := o.Rand
	if net.Sharded() {
		// Per-marker stream in sharded runs (see dcqcn.Ops.AttachPort).
		r = o.Rand.Split()
	}
	return Attach(net, port, o.config(port.LinkRate.Gbps()), r)
}

// NewReceiver implements netsim.CongestionOps: DCQCN's receiver,
// unchanged.
func (o *Ops) NewReceiver(net *netsim.Network, h *netsim.Host) netsim.ReceiverHook {
	return dcqcn.NewReceiver(o.endpoint(h.NIC().LinkRate.Gbps()), h)
}

// NewFlowCC implements netsim.CongestionOps: DCQCN's sender, unchanged.
func (o *Ops) NewFlowCC(net *netsim.Network, src *netsim.Host) netsim.FlowCC {
	return dcqcn.NewFlowCC(src.Engine(), src, o.endpoint(src.NIC().LinkRate.Gbps()))
}

// AckEvery implements netsim.CongestionOps: no flow ACKs needed.
func (o *Ops) AckEvery(src *netsim.Host) int { return 0 }

// CCProtocol implements netsim.ProtocolNamer for conflict diagnostics.
func (m *Marker) CCProtocol() string { return "DCQCN+PI" }
