package dcqcnpi

import (
	"testing"

	"rocc/internal/dcqcn"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func fixture() (*sim.Engine, *netsim.Network, *netsim.Port, *Marker) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	h := net.AddHost("h")
	port, _ := net.Connect(sw, h, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	m := Attach(net, port, DefaultConfig(40), sim.NewRand(1))
	return engine, net, port, m
}

func TestProbabilityRisesAboveReference(t *testing.T) {
	engine, net, port, m := fixture()
	// Build a standing queue above Qref by stuffing the (slow) port.
	h := net.Hosts()[0]
	for i := 0; i < 400; i++ {
		port.Enqueue(&netsim.Packet{Kind: netsim.KindData, Cls: netsim.ClassData, Size: 1048, Dst: h.ID()})
	}
	// Check while the backlog is still above the reference (it drains at
	// line rate in ~84 us; two PI updates happen first).
	engine.RunUntil(80 * sim.Microsecond)
	if m.MarkProbability() <= 0 {
		t.Errorf("p = %v with queue above reference", m.MarkProbability())
	}
	m.Stop()
}

func TestProbabilityDecaysWhenEmpty(t *testing.T) {
	engine, _, _, m := fixture()
	m.p = 0.5
	m.qold = 200 * netsim.KB
	engine.RunUntil(2 * sim.Millisecond) // many updates with empty queue
	if m.MarkProbability() != 0 {
		t.Errorf("p = %v with empty queue, want 0", m.MarkProbability())
	}
	m.Stop()
}

func TestProbabilityClamped(t *testing.T) {
	engine, net, port, m := fixture()
	h := net.Hosts()[0]
	for i := 0; i < 5000; i++ {
		port.Enqueue(&netsim.Packet{Kind: netsim.KindData, Cls: netsim.ClassData, Size: 1048, Dst: h.ID()})
	}
	engine.RunUntil(10 * sim.Millisecond)
	if p := m.MarkProbability(); p < 0 || p > 1 {
		t.Errorf("p = %v out of [0,1]", p)
	}
	m.Stop()
}

func TestMarkingFollowsProbability(t *testing.T) {
	_, _, _, m := fixture()
	m.p = 1
	pkt := &netsim.Packet{ECT: true}
	m.OnEnqueue(0, pkt, 0)
	if !pkt.CE {
		t.Error("p=1 did not mark")
	}
	m.p = 0
	pkt2 := &netsim.Packet{ECT: true}
	m.OnEnqueue(0, pkt2, 0)
	if pkt2.CE {
		t.Error("p=0 marked")
	}
	m.Stop()
}

func TestStopHaltsUpdates(t *testing.T) {
	engine, _, _, m := fixture()
	m.Stop()
	m.p = 0.3
	engine.RunUntil(5 * sim.Millisecond)
	if m.MarkProbability() != 0.3 {
		t.Error("updates continued after Stop")
	}
}

func TestDefaultEndpointMatchesDCQCN(t *testing.T) {
	ep := DefaultEndpoint(40)
	if ep.RAIMbps != 40 || ep.G != 1.0/256 {
		t.Errorf("endpoint config diverges from DCQCN: %+v", ep)
	}
}

func TestPIMarkerStabilizesQueue(t *testing.T) {
	// End to end: DCQCN endpoints + PI marker hold the queue near Qref,
	// the [45] result the paper cites.
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{PFCEnabled: true, PFCThreshold: 500 * netsim.KB})
	dst := net.AddHost("dst")
	var srcs []*netsim.Host
	for i := 0; i < 4; i++ {
		h := net.AddHost("src")
		net.Connect(h, sw, netsim.Gbps(40), 1500)
		srcs = append(srcs, h)
	}
	port, _ := net.Connect(sw, dst, netsim.Gbps(40), 1500)
	net.ComputeRoutes()
	cfg := DefaultConfig(40)
	Attach(net, port, cfg, net.Rand.Split())
	ep := DefaultEndpoint(40)
	dst.Receiver = dcqcn.NewReceiver(ep, dst)
	for _, s := range srcs {
		net.StartFlow(s, dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: dcqcn.NewFlowCC(engine, s, ep),
		})
	}
	var sum, n float64
	sampler := engine.NewTicker(100*sim.Microsecond, func() {
		if engine.Now() > 15*sim.Millisecond {
			sum += float64(port.DataQueueBytes())
			n++
		}
	})
	engine.RunUntil(30 * sim.Millisecond)
	sampler.Stop()
	avg := sum / n
	if avg < float64(cfg.QrefBytes)/4 || avg > float64(cfg.QrefBytes)*3 {
		t.Errorf("average queue %.0f far from Qref %d", avg, cfg.QrefBytes)
	}
}
