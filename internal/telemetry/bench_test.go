package telemetry

import "testing"

// The disabled/enabled benchmark pair backs the overhead claim in
// DESIGN.md §7: a nil metric is one predicted branch (sub-nanosecond),
// an enabled counter one uncontended atomic add. The end-to-end number
// on a real scenario is BenchmarkFig8Telemetry* in internal/experiments.

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter // what every subsystem holds when telemetry is off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := New().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkGaugeEnabled(b *testing.B) {
	g := New().Gauge("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder(4096, 64, 256)
	e := Event{At: 1, Kind: KindCounter, Cat: "netsim", Name: "qdepth_bytes", Node: 1, Tid: 2, Flow: 3, Value: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	e := Event{At: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}
