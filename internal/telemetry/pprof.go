package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer serves net/http/pprof profiling endpoints and, when a
// registry is attached, a plain-text /metrics snapshot. It exists so the
// real-time testbed can be profiled while a run is in flight — the
// simulator is profiled with ordinary `go test -cpuprofile`.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a profiling/metrics HTTP server on addr (use
// "127.0.0.1:0" for an ephemeral port). reg may be nil for pprof only.
// The server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's listen address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }
