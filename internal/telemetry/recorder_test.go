package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderGlobalRingEvicts(t *testing.T) {
	r := NewRecorder(4, 0, 0)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: int64(i), Name: "e"})
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.At != int64(6+i) {
			t.Errorf("event %d at %d, want %d (oldest first)", i, e.At, 6+i)
		}
	}
}

func TestRecorderPerFlowRings(t *testing.T) {
	r := NewRecorder(2, 3, 2)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: int64(i), Flow: 1})
	}
	r.Record(Event{At: 100, Flow: 2})
	// Third distinct flow exceeds maxFlows: global ring still sees it,
	// per-flow history does not.
	r.Record(Event{At: 200, Flow: 3})
	if got := r.FlowEvents(1); len(got) != 3 || got[0].At != 2 || got[2].At != 4 {
		t.Errorf("flow 1 events = %+v", got)
	}
	if got := r.FlowEvents(2); len(got) != 1 {
		t.Errorf("flow 2 events = %+v", got)
	}
	if got := r.FlowEvents(3); got != nil {
		t.Errorf("flow 3 beyond maxFlows should have no per-flow ring, got %+v", got)
	}
	if flows := r.Flows(); len(flows) != 2 || flows[0] != 1 || flows[1] != 2 {
		t.Errorf("flows = %v", flows)
	}
	if r.Total() != 7 {
		t.Errorf("total = %d", r.Total())
	}
}

func TestChromeTraceShape(t *testing.T) {
	events := []Event{
		{At: 1000, Kind: KindCounter, Cat: "netsim", Name: "qdepth_bytes", Node: 2, Tid: 1, Value: 1500},
		{At: 2000, Dur: 500, Kind: KindSpan, Cat: "pfc", Name: "pause", Node: 2, Tid: 0},
		{At: 3000, Kind: KindInstant, Cat: "netsim", Name: "drop", Node: 2, Tid: 1, Value: 1},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	// 3 events + 1 process_name metadata record for node 2.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 4", len(out.TraceEvents))
	}
	byPh := map[string]map[string]any{}
	for _, e := range out.TraceEvents {
		byPh[e["ph"].(string)] = e
	}
	c, ok := byPh["C"]
	if !ok {
		t.Fatal("no counter event")
	}
	if c["ts"].(float64) != 1.0 { // 1000 ns = 1 µs
		t.Errorf("counter ts = %v µs, want 1", c["ts"])
	}
	if c["args"].(map[string]any)["qdepth_bytes"].(float64) != 1500 {
		t.Error("counter args missing value")
	}
	x, ok := byPh["X"]
	if !ok {
		t.Fatal("no span event")
	}
	if x["dur"].(float64) != 0.5 {
		t.Errorf("span dur = %v µs, want 0.5", x["dur"])
	}
	if _, ok := byPh["i"]; !ok {
		t.Error("no instant event")
	}
	m, ok := byPh["M"]
	if !ok {
		t.Fatal("no process metadata")
	}
	if m["args"].(map[string]any)["name"].(string) != "node 2" {
		t.Error("process metadata not named")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace should still carry an (empty) traceEvents array: %s", sb.String())
	}
}
