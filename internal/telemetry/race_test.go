package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"rocc/internal/harness"
)

// TestConcurrentRegistryUnderHarness hammers shared counters, gauges,
// histograms, and a recorder from the same worker pool the experiment
// harness uses, then verifies the aggregate totals. Run with -race (CI
// does): the registry's whole contract is that per-flow and per-worker
// components may share metrics without coordination.
func TestConcurrentRegistryUnderHarness(t *testing.T) {
	const cells, perCell = 64, 1000
	reg := New()
	rec := NewRecorder(256, 8, 32)
	c := reg.Counter("hammer.count")
	h := reg.Histogram("hammer.hist")
	rs := harness.Run(cells, harness.Options{Workers: 8}, func(cell int) (int, error) {
		g := reg.Gauge("hammer.gauge") // get-or-create races with other cells
		for i := 0; i < perCell; i++ {
			c.Inc()
			reg.Counter("hammer.count2").Add(2)
			h.Observe(int64(cell*perCell + i))
			g.Set(float64(i))
			rec.Record(Event{At: int64(i), Flow: int64(cell%8 + 1), Name: "e"})
			if i%100 == 0 {
				_ = reg.Snapshot() // snapshots race with writers by design
				_ = rec.Events()
			}
		}
		return cell, nil
	})
	if _, err := harness.Values(rs); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != cells*perCell {
		t.Errorf("counter = %d, want %d", got, cells*perCell)
	}
	if got := reg.Counter("hammer.count2").Value(); got != 2*cells*perCell {
		t.Errorf("counter2 = %d, want %d", got, 2*cells*perCell)
	}
	s := h.Snapshot()
	if s.Count != cells*perCell {
		t.Errorf("histogram count = %d, want %d", s.Count, cells*perCell)
	}
	if s.Min != 0 || s.Max != cells*perCell-1 {
		t.Errorf("histogram min/max = %d/%d", s.Min, s.Max)
	}
	if rec.Total() != cells*perCell {
		t.Errorf("recorder total = %d, want %d", rec.Total(), cells*perCell)
	}
	if len(rec.Flows()) != 8 {
		t.Errorf("per-flow rings = %d, want 8", len(rec.Flows()))
	}
}

func TestDebugServerServesPprofAndMetrics(t *testing.T) {
	reg := New()
	reg.Counter("debug.hits").Add(3)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "debug.hits",
		"/debug/pprof/": "profiles",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
