// Package telemetry is the unified observability layer: a metrics
// registry whose hot-path operations are single atomic instructions and
// allocate nothing, a bounded per-flow flight recorder for dataplane
// events, and exporters (text/CSV snapshots, Chrome trace-event JSON,
// net/http/pprof).
//
// Everything is nil-safe: a nil *Registry hands out nil metrics, and
// every metric method on a nil receiver is a no-op. Subsystems therefore
// instrument unconditionally — a disabled registry costs one predicted
// branch per operation (see BenchmarkCounterDisabled), and enabling
// telemetry never changes simulation behaviour, only observes it.
//
// Naming scheme: dotted lowercase `<subsystem>.<quantity>[_<unit>]`,
// e.g. "netsim.drops", "netsim.queue_depth_bytes", "rocc.rp.recoveries",
// "testbed.switch.fair_rate_mbps". Units are suffixed (_bytes, _ns,
// _mbps) so snapshots read unambiguously.
//
// The package depends only on the standard library, so any layer of the
// stack (internal/sim upward) may import it without cycles.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil Counter ignores all writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64. The zero value reads 0; a nil
// Gauge ignores all writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of metrics. Lookups are get-or-create:
// registering the same name twice returns the same metric, so per-flow
// components share aggregate counters without coordination. Registration
// takes a lock and may allocate; the returned metrics never do.
//
// A nil *Registry is the disabled mode: it hands out nil metrics whose
// operations are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge evaluated lazily at snapshot time — zero
// hot-path cost for values a subsystem already tracks (engine event
// counts, atomic testbed counters). fn must be safe to call from the
// snapshotting goroutine. Re-registering a name replaces the function
// (the most recently attached subsystem wins).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string
	Value float64
}

// NamedHist is one histogram in a snapshot.
type NamedHist struct {
	Name string
	HistogramSnapshot
}

// Snapshot is a race-safe point-in-time copy of every metric, sorted by
// name within each kind. Writers may run concurrently; each individual
// value is read atomically (the snapshot as a whole is not a consistent
// cut, which per-metric monitoring never needs).
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHist
}

// Snapshot captures all metrics. A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var s Snapshot
	for name, c := range counters {
		s.Counters = append(s.Counters, NamedValue{name, float64(c.Value())})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Value()})
	}
	for name, fn := range funcs {
		s.Gauges = append(s.Gauges, NamedValue{name, fn()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, NamedHist{name, h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteText renders the snapshot as aligned human-readable text.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-*s %20.0f\n", width, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-*s %20.6g\n", width, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		_, err := fmt.Fprintf(w, "%-*s count=%d min=%d max=%d mean=%.4g p50=%d p95=%d p99=%d\n",
			width, h.Name, h.Count, h.Min, h.Max, h.Mean, h.P50, h.P95, h.P99)
		if err != nil {
			return err
		}
	}
	return nil
}
