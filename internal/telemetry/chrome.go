package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing / Perfetto "JSON Array with metadata" flavour).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders flight-recorder events as Chrome trace-event
// JSON loadable in chrome://tracing or https://ui.perfetto.dev. Spans
// become complete ("X") slices, instants thread-scoped ("i") marks, and
// counters counter ("C") tracks, one per (node, name). Process metadata
// names each node so the timeline is readable without the source.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	pids := map[int64]bool{}
	for _, e := range events {
		if !pids[e.Node] {
			pids[e.Node] = true
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ts:   float64(e.At) / 1e3,
			Pid:  e.Node,
			Tid:  e.Tid,
		}
		switch e.Kind {
		case KindSpan:
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		case KindCounter:
			ce.Ph = "C"
			ce.Args = map[string]any{e.Name: e.Value}
		default:
			ce.Ph = "i"
			ce.S = "t"
			if e.Value != 0 {
				ce.Args = map[string]any{"value": e.Value}
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	ids := make([]int64, 0, len(pids))
	for id := range pids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  id,
			Args: map[string]any{"name": fmt.Sprintf("node %d", id)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
