package telemetry

import (
	"sort"
	"sync"
)

// EventKind discriminates flight-recorder events for export.
type EventKind uint8

// Event kinds, mapping one-to-one onto Chrome trace-event phases.
const (
	KindInstant EventKind = iota // point-in-time occurrence (ph "i")
	KindSpan                     // interval with a duration (ph "X")
	KindCounter                  // sampled quantity (ph "C")
)

// Event is one flight-recorder entry. Node/Tid become the Chrome trace
// pid/tid; Flow, when non-zero, additionally files the event in that
// flow's bounded ring.
type Event struct {
	At    int64 // event time in ns (virtual or wall, producer-defined)
	Dur   int64 // span duration in ns (KindSpan only)
	Kind  EventKind
	Cat   string  // subsystem, e.g. "netsim", "cp", "rp"
	Name  string  // e.g. "qdepth_bytes", "pfc_pause", "fair_rate_mbps"
	Node  int64   // originating node (Chrome pid)
	Tid   int64   // port or flow lane within the node (Chrome tid)
	Flow  int64   // flow id for per-flow recording; 0 = not flow-scoped
	Value float64 // counter sample (KindCounter only)
}

// ring is a fixed-capacity event ring buffer.
type ring struct {
	buf   []Event
	next  int
	total uint64
}

func newRing(n int) *ring {
	if n < 1 {
		n = 1
	}
	return &ring{buf: make([]Event, 0, n)}
}

func (r *ring) push(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

func (r *ring) events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Recorder is the bounded flight recorder: a global ring holding the
// most recent events across the system, plus an optional per-flow ring
// so the recent history of any one flow survives even when a busy
// neighbour floods the global ring. All memory is allocated up front or
// bounded by maxFlows; recording never grows without bound.
//
// Recorder is safe for concurrent use. A nil *Recorder drops all events.
type Recorder struct {
	mu       sync.Mutex
	global   *ring
	perFlow  int
	maxFlows int
	flows    map[int64]*ring
	dropped  uint64 // flow-scoped events not filed per-flow (maxFlows hit)
}

// NewRecorder creates a flight recorder retaining the last global
// events overall and, when perFlow > 0, the last perFlow events of each
// of up to maxFlows distinct flows (maxFlows <= 0 means 1024).
func NewRecorder(global, perFlow, maxFlows int) *Recorder {
	if maxFlows <= 0 {
		maxFlows = 1024
	}
	r := &Recorder{
		global:   newRing(global),
		perFlow:  perFlow,
		maxFlows: maxFlows,
	}
	if perFlow > 0 {
		r.flows = make(map[int64]*ring)
	}
	return r
}

// Record files one event.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.global.push(e)
	if r.perFlow > 0 && e.Flow != 0 {
		fr, ok := r.flows[e.Flow]
		if !ok {
			if len(r.flows) >= r.maxFlows {
				r.dropped++
				r.mu.Unlock()
				return
			}
			fr = newRing(r.perFlow)
			r.flows[e.Flow] = fr
		}
		fr.push(e)
	}
	r.mu.Unlock()
}

// Total returns how many events were recorded over the recorder's
// lifetime, including those since evicted from the rings.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global.total
}

// Events returns the retained global events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.global.events()
}

// FlowEvents returns the retained events of one flow, oldest first.
func (r *Recorder) FlowEvents(flow int64) []Event {
	if r == nil || r.flows == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fr, ok := r.flows[flow]
	if !ok {
		return nil
	}
	return fr.events()
}

// Flows returns the ids with per-flow history, ascending.
func (r *Recorder) Flows() []int64 {
	if r == nil || r.flows == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int64, 0, len(r.flows))
	for id := range r.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
