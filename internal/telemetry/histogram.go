package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram layout: HDR-style base-2 log bucketing with 2^subBits linear
// sub-buckets per octave. Values below 2^subBits are recorded exactly;
// above that the relative quantization error is bounded by 2^-subBits
// (~3.1% at subBits=5), which is ample for latency/queue-depth
// percentiles while keeping the bucket array small enough (15 KB) to
// embed one histogram per metric.
const (
	subBits    = 5
	subBuckets = 1 << subBits
	numBuckets = (64 - subBits + 1) * subBuckets
)

// Histogram records non-negative int64 observations into log-spaced
// buckets with a lock-free Observe, reporting count/min/max/mean and
// p50/p95/p99 in snapshots. A nil Histogram ignores all observations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(^uint64(0))
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	e := bits.Len64(v) - 1 // e >= subBits
	s := (v >> (e - subBits)) - subBuckets
	return (e-subBits+1)*subBuckets + int(s)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	e := i/subBuckets + subBits - 1
	s := i % subBuckets
	return (uint64(subBuckets) + uint64(s)) << (e - subBits)
}

// Observe records one value. Negative values clamp to zero. The
// operation is a handful of atomic adds and two bounded CAS loops —
// no locks, no allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
	for {
		cur := h.min.Load()
		if u >= cur || h.min.CompareAndSwap(cur, u) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
	Mean  float64
	P50   uint64
	P95   uint64
	P99   uint64
}

// Snapshot summarizes the histogram. Concurrent Observe calls may land
// between the count read and the bucket scan; percentiles are therefore
// approximate under write load, exact once writers quiesce.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.P50 = h.quantile(0.50, s.Count, s.Max)
	s.P95 = h.quantile(0.95, s.Count, s.Max)
	s.P99 = h.quantile(0.99, s.Count, s.Max)
	return s
}

// Quantile returns the value at quantile q (0..1) using the current
// bucket contents, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.quantile(q, n, h.max.Load())
}

func (h *Histogram) quantile(q float64, total, max uint64) uint64 {
	target := uint64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			// Representative value: the bucket midpoint, clamped to the
			// observed maximum so p99 never exceeds max.
			low := bucketLow(i)
			var high uint64
			if i+1 < numBuckets {
				high = bucketLow(i+1) - 1
			} else {
				high = ^uint64(0)
			}
			v := low + (high-low)/2
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}
